package simsub

// This file maps every table and figure of the paper's evaluation to a Go
// benchmark (see DESIGN.md §4 for the experiment index). Each benchmark
// drives the experiment harness at a small fixed scale so `go test -bench`
// terminates quickly; `cmd/experiments` runs the same experiments at
// configurable (up to paper) scale and prints the full tables.

import (
	"sync"
	"testing"

	"simsub/internal/bench"
	"simsub/internal/core"
	"simsub/internal/dataset"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

var (
	suiteOnce sync.Once
	suite     *bench.Suite
)

// benchSuite returns the shared scaled-down experiment suite; policies and
// datasets are cached across benchmarks.
func benchSuite() *bench.Suite {
	suiteOnce.Do(func() {
		suite = bench.NewSuite(bench.Options{
			Pairs:       8,
			DatasetN:    60,
			DBSizes:     []int{20, 40},
			EffQueries:  2,
			TopK:        10,
			Episodes:    30,
			TrainPool:   20,
			T2vecEpochs: 1,
			MaxQueryLen: 20,
			Seed:        1,
		})
	})
	return suite
}

// --- Figure 3: effectiveness (AR/MR/RR) per measure -----------------------

func BenchmarkFig3Effectiveness(b *testing.B) {
	s := benchSuite()
	for _, measure := range bench.MeasureNames() {
		b.Run(measure, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Fig3Effectiveness(dataset.Porto, measure); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 4 / Figure 10: efficiency, with and without the R-tree --------

func BenchmarkFig4Efficiency(b *testing.B) {
	s := benchSuite()
	for _, idx := range []struct {
		name string
		on   bool
	}{{"noindex", false}, {"rtree", true}} {
		b.Run(idx.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Fig4Efficiency(dataset.Porto, "dtw", idx.on); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig10EfficiencyOtherDatasets(b *testing.B) {
	s := benchSuite()
	for _, kind := range []dataset.Kind{dataset.Harbin, dataset.Sports} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Fig4Efficiency(kind, "dtw", true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figures 5, 6, 11: query-length groups --------------------------------

func BenchmarkFig5QueryLenEffectiveness(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig5QueryLenEffectiveness(dataset.Harbin, "dtw"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6QueryLenEfficiency(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig6QueryLenEfficiency(dataset.Harbin, "dtw"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11GroupEffectivenessAllMeasures(b *testing.B) {
	s := benchSuite()
	for _, measure := range bench.MeasureNames() {
		b.Run(measure, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Fig5QueryLenEffectiveness(dataset.Harbin, measure); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 5: skip parameter k ---------------------------------------------

func BenchmarkTable5SkipK(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table5SkipK(dataset.Porto, "dtw", []int{0, 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7 / Figure 12: SizeS soft margin ξ -----------------------------

func BenchmarkFig7SizeSXi(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig7SizeSXi(dataset.Porto, "dtw", []int{0, 2, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 6: SimTra vs SimSub ---------------------------------------------

func BenchmarkTable6SimTra(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table6SimTra([]dataset.Kind{dataset.Porto}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 8 / Figure 13: UCR and Spring vs RLS-Skip+ ---------------------

func BenchmarkFig8UCRSpring(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig8UCRSpring(dataset.Porto, []float64{0.2, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 9 / Figure 14: Random-S ----------------------------------------

func BenchmarkFig9RandomS(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig9RandomS(dataset.Porto, []int{10, 50}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 7: training time -------------------------------------------------

func BenchmarkTable7Training(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table7TrainingTime([]dataset.Kind{dataset.Porto}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 1: Φ / Φinc / Φini validation ------------------------------------
// Incremental extension must be ~O(m) for DTW/Fréchet and ~O(1) for t2vec,
// independent of the prefix length n. The per-op numbers across prefix
// lengths make the constant-vs-linear behaviour visible.

func BenchmarkIncrementalComplexity(b *testing.B) {
	s := benchSuite()
	data := dataset.Generate(dataset.Config{Kind: dataset.Porto, N: 1, Seed: 9, MinLen: 512, MaxLen: 512})[0]
	q := dataset.Generate(dataset.Config{Kind: dataset.Porto, N: 1, Seed: 10, MinLen: 64, MaxLen: 64})[0]
	for _, name := range bench.MeasureNames() {
		m, err := s.Measure(dataset.Porto, name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name+"/extend", func(b *testing.B) {
			inc := m.NewIncremental(data, q)
			inc.Init(0)
			j := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if j++; j >= data.Len()-1 {
					b.StopTimer()
					inc = m.NewIncremental(data, q)
					inc.Init(0)
					j = 0
					b.StartTimer()
				}
				inc.Extend()
			}
		})
		b.Run(name+"/scratch", func(b *testing.B) {
			sub := data.Sub(0, 255)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Dist(sub, q)
			}
		})
	}
}

// --- Table 2: algorithm scaling in n ----------------------------------------
// ExactS is O(n²·m) for DTW while the splitting algorithms are O(n·m); the
// per-size sub-benchmarks expose the quadratic vs linear growth.

func BenchmarkAlgoScaling(b *testing.B) {
	s := benchSuite()
	p, err := s.PolicyFor(dataset.Porto, "dtw", 0)
	if err != nil {
		b.Fatal(err)
	}
	q := dataset.Generate(dataset.Config{Kind: dataset.Porto, N: 1, Seed: 12, MinLen: 16, MaxLen: 16})[0]
	for _, n := range []int{32, 64, 128} {
		data := dataset.Generate(dataset.Config{Kind: dataset.Porto, N: 1, Seed: 11, MinLen: n, MaxLen: n})[0]
		for _, alg := range []core.Algorithm{
			core.ExactS{M: sim.DTW{}},
			core.SizeS{M: sim.DTW{}, Xi: 5},
			core.PSS{M: sim.DTW{}},
			core.POS{M: sim.DTW{}},
			core.RLS{M: sim.DTW{}, Policy: p},
		} {
			b.Run(alg.Name()+"/n="+itoa(n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					alg.Search(data, q)
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Ablations (DESIGN.md §5) ------------------------------------------------

func BenchmarkAblationSuffix(b *testing.B) {
	// PSS (with suffix) vs POS (without): the cost of the suffix component
	data := dataset.Generate(dataset.Config{Kind: dataset.Porto, N: 1, Seed: 13, MinLen: 128, MaxLen: 128})[0]
	q := dataset.Generate(dataset.Config{Kind: dataset.Porto, N: 1, Seed: 14, MinLen: 32, MaxLen: 32})[0]
	b.Run("PSS", func(b *testing.B) {
		alg := core.PSS{M: sim.DTW{}}
		for i := 0; i < b.N; i++ {
			alg.Search(data, q)
		}
	})
	b.Run("POS", func(b *testing.B) {
		alg := core.POS{M: sim.DTW{}}
		for i := 0; i < b.N; i++ {
			alg.Search(data, q)
		}
	})
}

func BenchmarkAblationDelay(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationDelay(dataset.Porto, "dtw", []int{0, 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIncremental(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationIncremental(dataset.Porto, "dtw"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSkipState(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationSkipState(dataset.Porto, "dtw"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the individual primitives ---------------------------

func BenchmarkMeasureDist(b *testing.B) {
	data := RandomWalk(128, 0.02, 15)
	q := RandomWalk(32, 0.02, 16)
	for _, m := range []sim.Measure{sim.DTW{}, sim.Frechet{}, sim.ERP{}, sim.EDR{Eps: 0.1}, sim.LCSS{Eps: 0.1}, sim.EDS{}, sim.EDwP{}} {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.Dist(data, q)
			}
		})
	}
}

func BenchmarkSpringVsExact(b *testing.B) {
	data := RandomWalk(256, 0.02, 17)
	q := RandomWalk(32, 0.02, 18)
	b.Run("Spring", func(b *testing.B) {
		alg := core.Spring{}
		for i := 0; i < b.N; i++ {
			alg.Search(data, q)
		}
	})
	b.Run("ExactS", func(b *testing.B) {
		alg := core.ExactS{M: sim.DTW{}}
		for i := 0; i < b.N; i++ {
			alg.Search(data, q)
		}
	})
}

func BenchmarkUCRPruning(b *testing.B) {
	data := RandomWalk(512, 0.02, 19)
	q := RandomWalk(32, 0.02, 20)
	for _, r := range []float64{0.1, 0.5, 1} {
		b.Run("R="+fmtFloat(r), func(b *testing.B) {
			alg := core.UCR{Band: r}
			for i := 0; i < b.N; i++ {
				alg.Search(data, q)
			}
		})
	}
}

func fmtFloat(r float64) string {
	switch r {
	case 0.1:
		return "0.1"
	case 0.5:
		return "0.5"
	default:
		return "1"
	}
}

func BenchmarkRTreeTopK(b *testing.B) {
	var ts []traj.Trajectory
	for i := 0; i < 200; i++ {
		ts = append(ts, RandomWalk(40, 0.005, int64(i+1)))
	}
	q := ts[7].Sub(5, 12)
	alg := core.PSS{M: sim.DTW{}}
	b.Run("noindex", func(b *testing.B) {
		db := core.NewDatabase(ts, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.TopK(alg, q, 10)
		}
	})
	b.Run("rtree", func(b *testing.B) {
		db := core.NewDatabase(ts, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			db.TopK(alg, q, 10)
		}
	})
}
