package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"simsub/api"
	"simsub/client"
	"simsub/internal/engine"
	"simsub/internal/server"
)

// hintedFront rejects the first fail query attempts with a 503 carrying an
// explicit Retry-After hint, the drain-rate-derived backoff a shedding
// node computes.
type hintedFront struct {
	inner   http.Handler
	hintMS  int
	fail    int32
	rejects atomic.Int32
}

func (f *hintedFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v2/query" && f.rejects.Add(1) <= f.fail {
		ae := *api.Errorf(api.CodeOverloaded, "shedding load")
		ae.RetryAfterMS = f.hintMS
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(api.ErrorResponse{Err: ae})
		return
	}
	f.inner.ServeHTTP(w, r)
}

func newHintedClient(t *testing.T, hintMS int, fail int32, opts ...client.Option) *client.Client {
	t.Helper()
	eng := engine.New(engine.Config{Shards: 2, Index: engine.ScanAll})
	rng := rand.New(rand.NewSource(95))
	front := &hintedFront{inner: server.New(eng, server.Options{}), hintMS: hintMS, fail: fail}
	srv := httptest.NewServer(front)
	t.Cleanup(srv.Close)
	c := client.New(srv.URL, opts...)
	var ts []api.Trajectory
	for i := 0; i < 20; i++ {
		ts = append(ts, api.FromTraj(randWalk(rng, 8)))
	}
	if _, err := c.Load(context.Background(), ts); err != nil {
		t.Fatalf("load: %v", err)
	}
	return c
}

// TestClientHonorsRetryAfterHint: a 503 with retry_after_ms overrides the
// client's own (tiny) backoff — the retry waits at least the hinted
// duration before hitting the server again.
func TestClientHonorsRetryAfterHint(t *testing.T) {
	const hintMS = 150
	c := newHintedClient(t, hintMS, 1, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    time.Millisecond,
	}))
	start := time.Now()
	_, err := c.Query(context.Background(), api.Query{Specs: []api.QuerySpec{
		{Query: api.FromTraj(randWalk(rand.New(rand.NewSource(96)), 5)), K: 3},
	}})
	took := time.Since(start)
	if err != nil {
		t.Fatalf("query after hinted 503: %v", err)
	}
	if took < hintMS*time.Millisecond {
		t.Fatalf("retry fired after %v, before the server's %dms hint", took, hintMS)
	}
	// hint plus at most 25% desynchronization jitter (and some slack)
	if took > 3*hintMS*time.Millisecond {
		t.Fatalf("retry waited %v for a %dms hint", took, hintMS)
	}
}

// TestClientRetryAfterCappedByDeadline: when the hinted wait cannot fit in
// the caller's remaining deadline, the client surfaces the overload error
// immediately instead of sleeping into a guaranteed context failure.
func TestClientRetryAfterCappedByDeadline(t *testing.T) {
	c := newHintedClient(t, 10_000, 1<<30, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    time.Millisecond,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Query(ctx, api.Query{Specs: []api.QuerySpec{
		{Query: api.FromTraj(randWalk(rand.New(rand.NewSource(97)), 5)), K: 3},
	}})
	took := time.Since(start)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeOverloaded {
		t.Fatalf("got %v, want the overloaded error back", err)
	}
	if took > 150*time.Millisecond {
		t.Fatalf("client slept %v toward a 10s hint inside a 200ms deadline", took)
	}
}
