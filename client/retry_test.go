package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"simsub/api"
	"simsub/client"
	"simsub/internal/engine"
	"simsub/internal/server"
)

// flakyFront wraps a real served engine and rejects the first fail
// requests to the flaky path with a 503 overloaded, the failure mode
// retries exist for. Other paths pass through untouched (but are still
// counted).
type flakyFront struct {
	inner http.Handler
	flaky string
	mu    sync.Mutex
	seen  map[string]int
	fail  int
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.seen[r.URL.Path]++
	n := f.seen[r.URL.Path]
	f.mu.Unlock()
	if r.URL.Path == f.flaky && n <= f.fail {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(api.ErrorResponse{
			Err: *api.Errorf(api.CodeOverloaded, "shedding load"),
		})
		return
	}
	f.inner.ServeHTTP(w, r)
}

func (f *flakyFront) attempts(path string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen[path]
}

func newFlakyClient(t *testing.T, flakyPath string, fail int, opts ...client.Option) (*client.Client, *flakyFront) {
	t.Helper()
	eng := engine.New(engine.Config{Shards: 2, Index: engine.ScanAll})
	front := &flakyFront{inner: server.New(eng, server.Options{}), flaky: flakyPath, seen: map[string]int{}, fail: fail}
	srv := httptest.NewServer(front)
	t.Cleanup(srv.Close)
	return client.New(srv.URL, opts...), front
}

func fastRetry(onRetry func(error)) client.Option {
	return client.WithRetry(client.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		OnRetry:     onRetry,
	})
}

// TestClientRetriesOverloadedQuery: two 503s then success — an opted-in
// client must absorb them and return the ranking, observing each retry.
func TestClientRetriesOverloadedQuery(t *testing.T) {
	var retries int
	var mu sync.Mutex
	c, front := newFlakyClient(t, "/v2/query", 2, fastRetry(func(err error) {
		mu.Lock()
		retries++
		mu.Unlock()
		var ae *api.Error
		if !errors.As(err, &ae) || ae.Code != api.CodeOverloaded {
			t.Errorf("OnRetry observed %v, want overloaded", err)
		}
	}))

	rng := rand.New(rand.NewSource(90))
	var ts []api.Trajectory
	for i := 0; i < 40; i++ {
		ts = append(ts, api.FromTraj(randWalk(rng, 10)))
	}
	if _, err := c.Load(context.Background(), ts); err != nil {
		t.Fatalf("load: %v", err)
	}

	resp, err := c.Query(context.Background(), api.Query{Specs: []api.QuerySpec{
		{Query: api.FromTraj(randWalk(rng, 6)), K: 5},
	}})
	if err != nil {
		t.Fatalf("query after two 503s: %v", err)
	}
	if got := len(resp.Results[0].Matches); got != 5 {
		t.Fatalf("query returned %d matches, want 5", got)
	}
	if front.attempts("/v2/query") != 3 {
		t.Fatalf("server saw %d query attempts, want 3", front.attempts("/v2/query"))
	}
	if retries != 2 {
		t.Fatalf("OnRetry observed %d retries, want 2", retries)
	}
}

// TestClientLoadNeverRetried: bulk loads are not idempotent (a duplicate
// delivery double-loads the corpus), so even an opted-in client must
// surface the 503 after a single attempt.
func TestClientLoadNeverRetried(t *testing.T) {
	c, front := newFlakyClient(t, "/v1/trajectories", 1<<30, fastRetry(nil))
	_, err := c.Load(context.Background(), []api.Trajectory{api.FromTraj(randWalk(rand.New(rand.NewSource(91)), 8))})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeOverloaded {
		t.Fatalf("load: got %v, want overloaded", err)
	}
	if n := front.attempts("/v1/trajectories"); n != 1 {
		t.Fatalf("server saw %d load attempts, want exactly 1", n)
	}
}

// TestClientNoRetryOnTypedRejection: deterministic rejections
// (invalid_argument here, via an empty batch) never burn retry budget.
func TestClientNoRetryOnTypedRejection(t *testing.T) {
	c, front := newFlakyClient(t, "/v2/query", 0, fastRetry(nil))
	_, err := c.Query(context.Background(), api.Query{})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeInvalidArgument {
		t.Fatalf("empty batch: got %v, want invalid_argument", err)
	}
	if n := front.attempts("/v2/query"); n != 1 {
		t.Fatalf("server saw %d attempts for a deterministic rejection, want 1", n)
	}
}

// TestClientRetryHonorsDeadline: with the server hard down and seconds of
// backoff configured, an expiring context must end the attempts promptly
// with the last real error, not sleep out the full budget.
func TestClientRetryHonorsDeadline(t *testing.T) {
	c, _ := newFlakyClient(t, "/v2/query", 1<<30, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   2 * time.Second,
		MaxDelay:    2 * time.Second,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Query(ctx, api.Query{Specs: []api.QuerySpec{
		{Query: api.FromTraj(randWalk(rand.New(rand.NewSource(92)), 5)), K: 1},
	}})
	if err == nil {
		t.Fatal("query against a dead server succeeded")
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeOverloaded {
		t.Fatalf("got %v, want the last overloaded error", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("deadline did not cut the backoff short (took %v)", took)
	}
}

// TestClientNoOptInNoRetry: without WithRetry a transient 503 surfaces on
// the first attempt — retries are strictly opt-in.
func TestClientNoOptInNoRetry(t *testing.T) {
	c, front := newFlakyClient(t, "/v2/query", 1)
	_, err := c.Query(context.Background(), api.Query{Specs: []api.QuerySpec{
		{Query: api.FromTraj(randWalk(rand.New(rand.NewSource(93)), 5)), K: 1},
	}})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeOverloaded {
		t.Fatalf("got %v, want overloaded", err)
	}
	if n := front.attempts("/v2/query"); n != 1 {
		t.Fatalf("server saw %d attempts without opt-in, want 1", n)
	}
}
