// Package client is the Go client of a simsubd server. Client speaks the
// versioned wire types of package api and satisfies the same api.Searcher
// and api.StreamSearcher interfaces as the in-process *engine.Engine, so a
// program can swap local and remote search without touching call sites:
//
//	var s api.Searcher = client.New("http://localhost:8080")
//	// ... or, in-process, without a server:
//	var s api.Searcher = simsub.NewEngine(simsub.EngineConfig{})
//
//	resp, err := s.Query(ctx, api.Query{Specs: []api.QuerySpec{{
//		Query: api.Trajectory{Points: [][]float64{{2, 0}, {3, 1}}},
//		K:     5,
//	}}})
//
// Server-side failures come back as typed *api.Error values, so callers
// branch on machine-readable codes (errors.As + Code), never on message
// text or raw HTTP statuses.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"simsub/api"
)

var (
	_ api.Searcher       = (*Client)(nil)
	_ api.StreamSearcher = (*Client)(nil)
)

// Client is an HTTP client of one simsubd server. It is safe for
// concurrent use.
type Client struct {
	base  string
	hc    *http.Client
	retry *RetryPolicy
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). The default is http.DefaultClient;
// streaming responses require a client without a forced response timeout
// shorter than the search.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// RetryPolicy configures opt-in request retries (WithRetry): exponential
// backoff with full jitter, capped at MaxDelay. Zero fields take the
// documented defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, the first included
	// (default 3).
	MaxAttempts int
	// BaseDelay is the backoff cap before the first retry (default 50ms);
	// it doubles per attempt up to MaxDelay, and the actual sleep is
	// uniform in (0, cap] (full jitter), so synchronized clients spread
	// out instead of retrying in lockstep.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// OnRetry, when non-nil, observes every retry with the error that
	// caused it (the router counts fleet-wide retries through it). It may
	// be called from any goroutine using the client.
	OnRetry func(err error)
}

func (p RetryPolicy) fill() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// backoff returns the sleep before retry attempt a (1-based): full jitter
// over BaseDelay·2^(a-1), capped at MaxDelay.
func (p RetryPolicy) backoff(a int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < a && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return time.Duration(rand.Int63n(int64(d))) + 1
}

// WithRetry enables retries for idempotent requests (queries, reads, policy
// swaps — never bulk loads, which are not idempotent) on 503 overloaded
// responses and transient network errors. A 503 carrying the server's
// Retry-After hint (api.Error.RetryAfterMS, derived from the observed
// queue drain rate) overrides the exponential schedule: the client sleeps
// the hinted duration plus jitter instead of its own guess. Backoff honors
// the request context: an expired deadline ends the attempts immediately
// with the last error, and a hinted wait that would outlive the deadline
// is not begun. Streaming queries retry only until the first byte of the
// response arrives; a stream severed mid-flight is returned as its error.
func WithRetry(p RetryPolicy) Option {
	filled := p.fill()
	return func(c *Client) { c.retry = &filled }
}

// retryable reports whether the failure is worth retrying: the server
// shedding load (503 overloaded) or a transport-level failure that was not
// the caller's own context expiring. Typed server rejections
// (invalid_argument, not_found, ...) are deterministic and never retried.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae.Code == api.CodeOverloaded
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// withRetries runs fn up to the policy's attempt budget (exactly once when
// retries are off or the call is not idempotent), backing off between
// attempts and aborting as soon as ctx expires.
func (c *Client) withRetries(ctx context.Context, idempotent bool, fn func() error) error {
	attempts := 1
	if idempotent && c.retry != nil {
		attempts = c.retry.MaxAttempts
	}
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if c.retry.OnRetry != nil {
				c.retry.OnRetry(err)
			}
			d := c.retry.backoff(a)
			var ae *api.Error
			if errors.As(err, &ae) && ae.RetryAfterMS > 0 {
				// the server's drain-rate hint beats the exponential guess;
				// keep jitter (up to +25%) so hinted clients still spread out
				hint := time.Duration(ae.RetryAfterMS) * time.Millisecond
				d = hint + time.Duration(rand.Int63n(int64(hint)/4+1))
			}
			if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
				return err // the wait would outlive the caller's deadline
			}
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return err
			}
		}
		err = fn()
		if err == nil || !retryable(err) {
			return err
		}
	}
	return err
}

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// errorFrom turns a non-2xx response into a typed error: the server's
// error envelope when it parses, a generic internal error otherwise.
func errorFrom(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var er api.ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Err.Code != "" {
		return &er.Err
	}
	return api.Errorf(api.CodeInternal, "http %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// roundTrip POSTs (or GETs, with a nil in) the path and decodes a 2xx
// JSON body into out, retrying idempotent requests per the retry policy.
func (c *Client) roundTrip(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	return c.withRetries(ctx, idempotent, func() error {
		resp, err := c.send(ctx, method, path, in)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			return errorFrom(resp)
		}
		if out == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decoding %s response: %w", path, err)
		}
		return nil
	})
}

func (c *Client) send(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("client: encoding %s request: %w", path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.hc.Do(req)
}

// Load bulk-loads trajectories and returns their server-assigned global
// IDs in input order.
func (c *Client) Load(ctx context.Context, ts []api.Trajectory) (*api.LoadResponse, error) {
	var out api.LoadResponse
	if err := c.roundTrip(ctx, http.MethodPost, "/v1/trajectories", api.LoadRequest{Trajectories: ts}, &out, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// LoadStream streams an NDJSON corpus (one {"points":[[x,y,t],...]}
// object per line, as written by internal/traj.WriteNDJSON or cmd/datagen
// -format ndjson) to POST /v2/load/stream. The body is forwarded without
// buffering, so a 100k–1M trajectory corpus loads through constant client
// memory. Bulk loads are not idempotent and are never retried; a
// mid-stream server error may leave earlier batches committed (the typed
// error's message carries the committed count).
func (c *Client) LoadStream(ctx context.Context, corpus io.Reader) (*api.BulkLoadResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/load/stream", corpus)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, errorFrom(resp)
	}
	var out api.BulkLoadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding /v2/load/stream response: %w", err)
	}
	return &out, nil
}

// Query implements api.Searcher over POST /v2/query: the batch's specs are
// answered concurrently by the server, Results[i] answering Specs[i], with
// per-spec failures inside their result.
func (c *Client) Query(ctx context.Context, req api.Query) (*api.QueryResponse, error) {
	var out api.QueryResponse
	if err := c.roundTrip(ctx, http.MethodPost, "/v2/query", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryStream implements api.StreamSearcher over POST /v2/query/stream:
// emit receives each provisional match as its NDJSON record arrives —
// while the server-side scan is still running — and the returned summary
// carries the authoritative final ranking. An emit error aborts the stream
// and is returned unchanged. When ctx carries a deadline it is also
// forwarded (slightly shaved) as the search's server-side timeout_ms, so
// expiry normally surfaces as the typed trailing timeout record rather
// than a severed connection.
func (c *Client) QueryStream(ctx context.Context, spec api.QuerySpec, emit func(api.Match) error) (*api.StreamSummary, error) {
	req := api.StreamQuery{Spec: spec}
	if dl, ok := ctx.Deadline(); ok {
		// the shave lets the server's typed error record beat the local
		// context cutting the connection
		if ms := int(time.Until(dl).Milliseconds()) - 50; ms > 0 {
			req.TimeoutMS = ms
		}
	}
	// retries cover only the connection attempt and the status line: once a
	// 2xx arrived the stream may have delivered provisional records, and
	// re-issuing the search could emit them twice
	var resp *http.Response
	err := c.withRetries(ctx, true, func() error {
		r, rerr := c.send(ctx, http.MethodPost, "/v2/query/stream", req)
		if rerr != nil {
			return rerr
		}
		if r.StatusCode/100 != 2 {
			rerr = errorFrom(r)
			r.Body.Close()
			return rerr
		}
		resp = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // the summary line carries the full ranking
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev api.StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("client: decoding stream record: %w", err)
		}
		switch {
		case ev.Match != nil:
			if err := emit(*ev.Match); err != nil {
				return nil, err
			}
		case ev.Error != nil:
			return nil, ev.Error
		case ev.Summary != nil:
			return ev.Summary, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, api.Errorf(api.CodeInternal, "stream ended without a summary record")
}

// GetTrajectory fetches a stored trajectory by its global ID; an
// unassigned ID returns a typed not_found error.
func (c *Client) GetTrajectory(ctx context.Context, id int) (*api.TrajectoryRecord, error) {
	var out api.TrajectoryRecord
	if err := c.roundTrip(ctx, http.MethodGet, fmt.Sprintf("/v2/trajectories/%d", id), nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// SwapPolicy registers a new DQN splitting policy on the server (POST
// /v2/admin/policy), enabling — or hot-swapping — the learned "rls" /
// "rls-skip" algorithms. The request names a server-local file path or
// carries the policy bytes inline (base64); the returned info carries the
// new policy's name, MDP shape and content fingerprint. Invalid policies
// are rejected with a typed invalid_argument error and leave the previous
// registration serving.
func (c *Client) SwapPolicy(ctx context.Context, req api.PolicySwapRequest) (*api.PolicyInfo, error) {
	var out api.PolicyInfo
	if err := c.roundTrip(ctx, http.MethodPost, "/v2/admin/policy", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Policy fetches the registered policy's description (GET
// /v2/admin/policy); a server with no policy loaded returns a typed
// not_found error.
func (c *Client) Policy(ctx context.Context) (*api.PolicyInfo, error) {
	var out api.PolicyInfo
	if err := c.roundTrip(ctx, http.MethodGet, "/v2/admin/policy", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// SwapEncoder registers a new t2vec trajectory encoder on the server
// (POST /v2/admin/encoder), enabling — or hot-swapping — the "ann"
// prefilter and the "embed" ranking. The request names a server-local file
// path or carries the encoder bytes inline (base64); the returned info
// carries the new encoder's dimension, token grid and content fingerprint.
// Invalid encoders are rejected with a typed invalid_argument error and
// leave the previous registration serving.
func (c *Client) SwapEncoder(ctx context.Context, req api.EncoderSwapRequest) (*api.EncoderInfo, error) {
	var out api.EncoderInfo
	if err := c.roundTrip(ctx, http.MethodPost, "/v2/admin/encoder", req, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Encoder fetches the registered encoder's description (GET
// /v2/admin/encoder); a server with no encoder loaded returns a typed
// not_found error.
func (c *Client) Encoder(ctx context.Context) (*api.EncoderInfo, error) {
	var out api.EncoderInfo
	if err := c.roundTrip(ctx, http.MethodGet, "/v2/admin/encoder", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the engine and server counters.
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var out api.StatsResponse
	if err := c.roundTrip(ctx, http.MethodGet, "/v2/stats", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes the liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	return c.roundTrip(ctx, http.MethodGet, "/healthz", nil, nil, true)
}
