package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"

	"simsub/api"
	"simsub/client"
	"simsub/internal/engine"
	"simsub/internal/geo"
	"simsub/internal/rl"
	"simsub/internal/server"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

func randWalk(rng *rand.Rand, n int) traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64() * 0.3
		y += rng.NormFloat64() * 0.3
		pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
	}
	return traj.New(pts...)
}

func newServedEngine(t *testing.T, cfg engine.Config) (*client.Client, *engine.Engine) {
	t.Helper()
	eng := engine.New(cfg)
	srv := httptest.NewServer(server.New(eng, server.Options{}))
	t.Cleanup(srv.Close)
	return client.New(srv.URL), eng
}

// TestClientEquivalence is the interchangeability satellite: a /v2/query
// batch issued through the HTTP client must return rankings byte-identical
// to N direct Engine.TopK calls, under DTW and Fréchet, with the result
// cache on and off.
func TestClientEquivalence(t *testing.T) {
	for _, cacheSize := range []int{0, 64} {
		rng := rand.New(rand.NewSource(100))
		c, eng := newServedEngine(t, engine.Config{Shards: 4, CacheSize: cacheSize, Index: engine.ScanAll})

		// load through the client, as a remote program would
		data := make([]api.Trajectory, 200)
		for i := range data {
			data[i] = api.FromTraj(randWalk(rng, rng.Intn(12)+6))
		}
		lr, err := c.Load(context.Background(), data)
		if err != nil || lr.Loaded != len(data) {
			t.Fatalf("cache=%d: load: %+v err=%v", cacheSize, lr, err)
		}

		var specs []api.QuerySpec
		for _, measure := range []string{"dtw", "frechet"} {
			for i := 0; i < 4; i++ {
				specs = append(specs, api.QuerySpec{
					Query: api.FromTraj(randWalk(rng, 5)), K: 6, Measure: measure, Algorithm: "pss",
				})
			}
		}

		// two rounds so the cache-on config also compares its hit path
		for round := 0; round < 2; round++ {
			resp, err := c.Query(context.Background(), api.Query{Specs: specs})
			if err != nil {
				t.Fatalf("cache=%d round %d: %v", cacheSize, round, err)
			}
			for i, spec := range specs {
				if resp.Results[i].Error != nil {
					t.Fatalf("spec %d: %v", i, resp.Results[i].Error)
				}
				q, aerr := spec.Query.ToTraj()
				if aerr != nil {
					t.Fatal(aerr)
				}
				direct, _, err := eng.TopK(context.Background(), engine.Query{
					Q: q, K: spec.K, Measure: spec.Measure, Algorithm: "pss",
				})
				if err != nil {
					t.Fatal(err)
				}
				got, _ := json.Marshal(resp.Results[i].Matches)
				want, _ := json.Marshal(engine.MatchesToAPI(direct))
				if string(got) != string(want) {
					t.Fatalf("cache=%d round %d spec %d (%s): client ranking differs from Engine.TopK:\n got %s\nwant %s",
						cacheSize, round, i, spec.Measure, got, want)
				}
			}
		}
	}
}

// TestSearcherSwap drives the same code path against the in-process engine
// and the remote client through the api.Searcher interface and checks the
// answers coincide — the "swap without code changes" guarantee.
func TestSearcherSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	c, eng := newServedEngine(t, engine.Config{Shards: 3, Index: engine.ScanAll})
	ts := make([]traj.Trajectory, 80)
	for i := range ts {
		ts[i] = randWalk(rng, 10)
	}
	eng.Add(ts)

	req := api.Query{Specs: []api.QuerySpec{
		{Query: api.FromTraj(randWalk(rng, 5)), K: 4},
		{Query: api.FromTraj(randWalk(rng, 7)), K: 2, Measure: "frechet", Algorithm: "exacts"},
	}}
	run := func(s api.Searcher) [][]api.Match {
		t.Helper()
		resp, err := s.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]api.Match, len(resp.Results))
		for i, r := range resp.Results {
			if r.Error != nil {
				t.Fatalf("spec %d: %v", i, r.Error)
			}
			out[i] = r.Matches
		}
		return out
	}
	local := run(eng) // *engine.Engine as api.Searcher
	remote := run(c)  // *client.Client as api.Searcher
	if !reflect.DeepEqual(local, remote) {
		t.Fatalf("swapped searchers disagree:\nlocal  %+v\nremote %+v", local, remote)
	}
}

// TestClientStream checks the client-side NDJSON decoding: provisional
// matches arrive through emit and the summary equals the blocking answer.
func TestClientStream(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	c, eng := newServedEngine(t, engine.Config{Shards: 4, Index: engine.ScanAll})
	ts := make([]traj.Trajectory, 120)
	for i := range ts {
		ts[i] = randWalk(rng, 9)
	}
	eng.Add(ts)

	spec := api.QuerySpec{Query: api.FromTraj(randWalk(rng, 5)), K: 7}
	var emitted []api.Match
	sum, err := c.QueryStream(context.Background(), spec, func(m api.Match) error {
		emitted = append(emitted, m)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Matches) != 7 || sum.Total != 7 || sum.Emitted != len(emitted) {
		t.Fatalf("summary %+v, emitted %d", sum, len(emitted))
	}
	// the stream's final ranking equals the batch answer for the same spec
	resp, err := c.Query(context.Background(), api.Query{Specs: []api.QuerySpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum.Matches, resp.Results[0].Matches) {
		t.Fatalf("stream summary differs from batch answer:\n%+v\n%+v", sum.Matches, resp.Results[0].Matches)
	}
	// every final match streamed out provisionally
	seen := map[api.Match]bool{}
	for _, m := range emitted {
		seen[m] = true
	}
	for _, m := range sum.Matches {
		if !seen[m] {
			t.Fatalf("final match %+v never emitted", m)
		}
	}
}

// TestClientTypedErrors checks server-side failures surface as typed
// *api.Error values clients can branch on.
func TestClientTypedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	c, eng := newServedEngine(t, engine.Config{})
	eng.Add([]traj.Trajectory{randWalk(rng, 8)})

	// empty trajectory at the wire boundary (NaN/Inf can't even be encoded
	// as JSON — strict clients reject them before the wire; the server-side
	// guard for non-strict callers is covered by the api and engine tests)
	_, err := c.Load(context.Background(), []api.Trajectory{{}})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeInvalidArgument {
		t.Fatalf("empty-trajectory load: %v, want typed invalid_argument", err)
	}

	// per-spec lane error inside a batch
	resp, err := c.Query(context.Background(), api.Query{Specs: []api.QuerySpec{
		{Query: api.FromTraj(randWalk(rng, 4)), K: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if e := resp.Results[0].Error; e == nil || e.Code != api.CodeInvalidArgument {
		t.Fatalf("k=0 lane: %+v, want invalid_argument", resp.Results[0])
	}

	// stream-request validation error arrives as the typed envelope
	_, err = c.QueryStream(context.Background(),
		api.QuerySpec{Query: api.FromTraj(randWalk(rng, 4)), K: -1},
		func(api.Match) error { return nil })
	if !errors.As(err, &ae) || ae.Code != api.CodeInvalidArgument {
		t.Fatalf("stream k=-1: %v, want typed invalid_argument", err)
	}

	// not_found for an unassigned trajectory ID
	_, err = c.GetTrajectory(context.Background(), 99)
	if !errors.As(err, &ae) || ae.Code != api.CodeNotFound {
		t.Fatalf("missing trajectory: %v, want typed not_found", err)
	}

	// round-trip sanity for the happy paths next to them
	if rec, err := c.GetTrajectory(context.Background(), 0); err != nil || rec.ID != 0 {
		t.Fatalf("GetTrajectory(0): %+v err=%v", rec, err)
	}
	if st, err := c.Stats(context.Background()); err != nil || st.Engine.Trajectories != 1 {
		t.Fatalf("stats: %+v err=%v", st, err)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health: %v", err)
	}
}

// TestClientPolicyAdmin round-trips the learned-search administration:
// register a policy through the client, inspect it, query with "rls", and
// observe typed errors before registration.
func TestClientPolicyAdmin(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	c, eng := newServedEngine(t, engine.Config{Shards: 2, Index: engine.ScanAll})
	set := make([]api.Trajectory, 30)
	for i := range set {
		set[i] = api.FromTraj(randWalk(rng, rng.Intn(10)+6))
	}
	if _, err := c.Load(context.Background(), set); err != nil {
		t.Fatal(err)
	}

	// before registration: Policy is typed not_found, rls is invalid_argument
	var ae *api.Error
	if _, err := c.Policy(context.Background()); !errors.As(err, &ae) || ae.Code != api.CodeNotFound {
		t.Fatalf("Policy with none loaded: %v", err)
	}
	spec := api.QuerySpec{Query: set[0], K: 3, Algorithm: "rls"}
	resp, err := c.Query(context.Background(), api.Query{Specs: []api.QuerySpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	if e := resp.Results[0].Error; e == nil || e.Code != api.CodeInvalidArgument {
		t.Fatalf("rls with no policy: %+v", resp.Results[0])
	}

	// train a tiny policy in-process, register it by path
	pairsData := make([]traj.Trajectory, 8)
	pairsQuery := make([]traj.Trajectory, 8)
	for i := range pairsData {
		pairsData[i] = randWalk(rng, 12)
		pairsQuery[i] = randWalk(rng, 4)
	}
	p, _, err := rl.Train(pairsData, pairsQuery, sim.DTW{}, rl.Config{Episodes: 5, Seed: 3, UseSuffix: true})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/p.policy"
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	info, err := c.SwapPolicy(context.Background(), api.PolicySwapRequest{Path: path})
	if err != nil {
		t.Fatalf("SwapPolicy: %v", err)
	}
	if info.Name != "RLS" || info.Fingerprint == "" {
		t.Fatalf("swap info %+v", info)
	}
	got, err := c.Policy(context.Background())
	if err != nil || *got != *info {
		t.Fatalf("Policy() = %+v, %v; want %+v", got, err, info)
	}

	// the client-served ranking equals the in-process engine's
	resp, err = c.Query(context.Background(), api.Query{Specs: []api.QuerySpec{spec}})
	if err != nil {
		t.Fatal(err)
	}
	if e := resp.Results[0].Error; e != nil {
		t.Fatalf("rls query: %v", e)
	}
	q, aerr := spec.Query.ToTraj()
	if aerr != nil {
		t.Fatal(aerr)
	}
	direct, _, err := eng.TopK(context.Background(), engine.Query{Q: q, K: 3, Measure: "dtw", Algorithm: "rls"})
	if err != nil {
		t.Fatal(err)
	}
	want := engine.MatchesToAPI(direct)
	if !reflect.DeepEqual(resp.Results[0].Matches, want) {
		t.Fatalf("client ranking %+v != engine ranking %+v", resp.Results[0].Matches, want)
	}
}
