package router

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"

	"simsub/internal/traj"
)

// ring is a consistent-hash ring over replica groups: each group owns
// VNodes points on a 64-bit circle, and a trajectory lands on the group
// owning the first point at or after its content hash. Virtual nodes keep
// the per-group share near uniform, and — the property consistent hashing
// buys over modulo placement — growing the fleet by one group moves only
// ~1/(groups+1) of the keyspace instead of reshuffling everything.
type ring struct {
	points []ringPoint // ascending by hash
}

type ringPoint struct {
	hash  uint64
	group int
}

// buildRing places vnodes points per group on the circle.
func buildRing(groups, vnodes int) ring {
	r := ring{points: make([]ringPoint, 0, groups*vnodes)}
	for g := 0; g < groups; g++ {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "group-%d-vnode-%d", g, v)
			r.points = append(r.points, ringPoint{hash: h.Sum64(), group: g})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// locate returns the group owning key: the first ring point clockwise from
// it, wrapping past the top of the circle.
func (r ring) locate(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].group
}

// placementKey content-hashes a trajectory for ring placement: FNV-1a over
// the raw bits of its coordinates, so placement is deterministic across
// router restarts fed the same data in any batch arrangement.
func placementKey(t traj.Trajectory) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range t.Points {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.X))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.Y))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.T))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// latencyTracker keeps a sliding window of a node's recent round-trip
// times, feeding the hedge-delay quantile and the per-node RTT stats. It is
// safe for concurrent use.
type latencyTracker struct {
	mu      sync.Mutex
	samples []time.Duration // ring buffer
	next    int
	full    bool
}

const latencyWindow = 128

func newLatencyTracker() *latencyTracker {
	return &latencyTracker{samples: make([]time.Duration, latencyWindow)}
}

func (l *latencyTracker) record(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples[l.next] = d
	l.next++
	if l.next == len(l.samples) {
		l.next, l.full = 0, true
	}
}

// snapshot copies the valid window, oldest-independent order.
func (l *latencyTracker) snapshot() []time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.samples)
	}
	out := make([]time.Duration, n)
	copy(out, l.samples[:n])
	return out
}

// quantile returns the q-quantile (0..1) of the recorded window, 0 with no
// samples yet.
func (l *latencyTracker) quantile(q float64) time.Duration {
	s := l.snapshot()
	if len(s) == 0 {
		return 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// mean returns the window mean, 0 with no samples yet.
func (l *latencyTracker) mean() time.Duration {
	s := l.snapshot()
	if len(s) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range s {
		sum += d
	}
	return sum / time.Duration(len(s))
}
