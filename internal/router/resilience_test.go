package router

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"simsub/api"
	"simsub/client"
	"simsub/internal/failpoint"
)

func TestBreakerUnit(t *testing.T) {
	b := newBreaker(3, 20*time.Millisecond)
	if !b.allow() {
		t.Fatal("closed breaker rejected")
	}
	b.record(true)
	b.record(true)
	if b.stateName() != "closed" {
		t.Fatalf("state after 2/3 failures = %s", b.stateName())
	}
	b.record(true) // third consecutive failure trips it
	if b.stateName() != "open" || b.openCount() != 1 {
		t.Fatalf("state=%s opens=%d, want open/1", b.stateName(), b.openCount())
	}
	if b.allow() {
		t.Fatal("open breaker inside cooldown admitted a request")
	}

	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.record(true) // failed probe re-opens immediately
	if b.stateName() != "open" || b.openCount() != 2 {
		t.Fatalf("after failed probe: state=%s opens=%d, want open/2", b.stateName(), b.openCount())
	}

	time.Sleep(25 * time.Millisecond)
	if !b.allow() {
		t.Fatal("second probe refused")
	}
	b.record(false) // successful probe closes
	if b.stateName() != "closed" {
		t.Fatalf("after successful probe: %s", b.stateName())
	}
	// a success resets the failure run
	b.record(true)
	b.record(true)
	b.record(false)
	b.record(true)
	if b.stateName() != "closed" {
		t.Fatal("failure run survived an intervening success")
	}

	// recordNeutral releases a probe slot without closing the breaker
	b2 := newBreaker(1, time.Millisecond)
	b2.record(true)
	time.Sleep(5 * time.Millisecond)
	if !b2.allow() {
		t.Fatal("probe refused")
	}
	b2.recordNeutral()
	if b2.stateName() != "half-open" {
		t.Fatalf("neutral outcome changed state to %s", b2.stateName())
	}
	if !b2.allow() {
		t.Fatal("probe slot not released by recordNeutral")
	}
}

// flakyNode fronts a real shard node with a toggleable failure mode, so a
// "dead" node can come back (an httptest server cannot reopen its port).
type flakyNode struct {
	backend *testNode
	broken  atomic.Bool
	srv     *httptest.Server
}

func startFlakyNode(t *testing.T, backend *testNode) *flakyNode {
	t.Helper()
	f := &flakyNode{backend: backend}
	u, err := url.Parse(backend.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(u)
	proxy.ErrorLog = nil
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.broken.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(w).Encode(api.ErrorResponse{Err: *api.Errorf(api.CodeInternal, "injected node failure")})
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// TestBreakerEjectsAndRecovers: a replica that keeps failing is ejected
// after BreakerThreshold consecutive failures (queries stop contacting it),
// and after the cooldown a half-open probe lets it back in once it heals.
func TestBreakerEjectsAndRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ts := randSet(rng, 40)
	backends := startFleet(t, 2)
	flaky := startFlakyNode(t, backends[0])

	cfg := Config{
		Nodes:            []string{flaky.srv.URL, backends[1].srv.URL},
		Replication:      2,
		NoHedge:          true,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		Retry:            client.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustLoad(t, r, ts)

	flaky.broken.Store(true)
	spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 6)), K: 5}
	// enough queries that the rotating primary hits the flaky node at
	// least BreakerThreshold times; every query still succeeds by failover
	for i := 0; i < 6; i++ {
		if res := r.QueryOne(context.Background(), spec); res.Error != nil {
			t.Fatalf("query %d failed despite a healthy replica: %v", i, res.Error)
		}
	}
	flakyNode := r.nodes[0]
	if flakyNode.brk.stateName() != "open" {
		t.Fatalf("breaker = %s after repeated failures, want open", flakyNode.brk.stateName())
	}
	if flakyNode.brk.openCount() == 0 {
		t.Fatal("breaker open count not incremented")
	}

	// while open (inside the cooldown) the node receives no requests
	before := flakyNode.requests.Load()
	for i := 0; i < 4; i++ {
		if res := r.QueryOne(context.Background(), spec); res.Error != nil {
			t.Fatalf("query with ejected replica failed: %v", res.Error)
		}
	}
	if got := flakyNode.requests.Load(); got != before {
		t.Fatalf("ejected node received %d requests during cooldown", got-before)
	}

	// stats surface the breaker
	st, err := r.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Router.Nodes[0].Breaker == "closed" || st.Router.Nodes[0].BreakerOpens == 0 {
		t.Fatalf("stats row does not reflect the tripped breaker: %+v", st.Router.Nodes[0])
	}

	// heal the node; after the cooldown a probe closes the breaker again
	flaky.broken.Store(false)
	time.Sleep(60 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for flakyNode.brk.stateName() != "closed" {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after heal; state=%s", flakyNode.brk.stateName())
		}
		if res := r.QueryOne(context.Background(), spec); res.Error != nil {
			t.Fatalf("query during recovery failed: %v", res.Error)
		}
	}
}

// TestBreakerForcedProbe: with every replica's breaker open, queries still
// go out (forced probe) instead of failing without any network attempt —
// and that probe is what lets a healed single-replica fleet recover.
func TestBreakerForcedProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	ts := randSet(rng, 30)
	backends := startFleet(t, 1)
	flaky := startFlakyNode(t, backends[0])
	r, err := New(Config{
		Nodes:            []string{flaky.srv.URL},
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // never cools down: only the forced probe can reach the node
		Retry:            client.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustLoad(t, r, ts)

	flaky.broken.Store(true)
	spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 6)), K: 5}
	if res := r.QueryOne(context.Background(), spec); res.Error == nil {
		t.Fatal("query succeeded against a broken single node")
	}
	if r.nodes[0].brk.stateName() != "open" {
		t.Fatalf("breaker = %s, want open", r.nodes[0].brk.stateName())
	}

	flaky.broken.Store(false)
	if res := r.QueryOne(context.Background(), spec); res.Error != nil {
		t.Fatalf("forced probe did not reach the healed node: %v", res.Error)
	}
}

// TestRouterDeadlineBudget: a request whose remaining deadline is inside
// the router's merge reserve is rejected up front with a typed
// deadline_exceeded — no scatter, no slot burned.
func TestRouterDeadlineBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	nodes := startFleet(t, 1)
	r := newTestRouter(t, nodes, func(c *Config) { c.MergeReserve = 50 * time.Millisecond })
	mustLoad(t, r, randSet(rng, 20))

	before := r.nodes[0].requests.Load()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 6)), K: 5}
	res := r.QueryOne(ctx, spec)
	if res.Error == nil || res.Error.Code != api.CodeDeadlineExceeded {
		t.Fatalf("got %+v, want typed deadline_exceeded", res.Error)
	}
	if got := r.nodes[0].requests.Load(); got != before {
		t.Fatal("doomed request was still scattered to the fleet")
	}
	if _, err := r.QueryStream(ctx, spec, func(api.Match) error { return nil }); err == nil {
		t.Fatal("stream path accepted a doomed deadline")
	}
	st, err := r.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Router.DeadlineRejects < 2 {
		t.Fatalf("DeadlineRejects = %d, want >= 2", st.Router.DeadlineRejects)
	}
}

// TestRouterPropagatesDegraded: a shard node that answers with a degraded
// (fallback-algorithm) ranking under the caller's allow_degraded opt-in
// has its marker surfaced in the router's merged result. The node's cost
// model is trained through the engine/scan failpoint (a slow scan is a
// slow scan, injected or not).
func TestRouterPropagatesDegraded(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	nodes := startFleet(t, 1)
	r := newTestRouter(t, nodes, nil)
	mustLoad(t, r, randSet(rng, 20))

	// two slow uncached exact scans teach the node that exacts is expensive
	defer failpoint.DisableAll()
	if err := failpoint.Enable("engine/scan", "sleep(300ms)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 5)), K: 3, Algorithm: "exacts"}
		if res := r.QueryOne(context.Background(), spec); res.Error != nil {
			t.Fatalf("training query %d: %v", i, res.Error)
		}
	}
	failpoint.DisableAll()

	// now a tight deadline cannot fit the predicted exacts scan: with the
	// opt-in the node falls back and the router surfaces the marker
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 5)), K: 3, Algorithm: "exacts", AllowDegraded: true}
	res := r.QueryOne(ctx, spec)
	if res.Error != nil {
		t.Fatalf("degradable query failed: %v", res.Error)
	}
	if res.Degraded == nil || res.Degraded.Reason != api.DegradedBudget || res.Degraded.From != "exacts" || res.Degraded.To != "pss" {
		t.Fatalf("Degraded = %+v, want budget exacts->pss", res.Degraded)
	}

	// without the opt-in the same query is a typed rejection, never a
	// silent fallback
	ctx2, cancel2 := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel2()
	spec.AllowDegraded = false
	res = r.QueryOne(ctx2, spec)
	if res.Error == nil || res.Error.Code != api.CodeDeadlineExceeded {
		t.Fatalf("without opt-in: got %+v, want deadline_exceeded", res.Error)
	}
}

// TestRouterStreamPartialOnMidStreamDeath: a shard node dying in the
// middle of /v2/query/stream — after provisional matches already reached
// the client — must end with a trailing Partial summary over the surviving
// groups, not a hang or a truncated stream.
func TestRouterStreamPartialOnMidStreamDeath(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	ts := randSet(rng, 120)
	backends := startFleet(t, 2)

	// group 0's node emits one provisional match and then severs the
	// connection mid-stream; everything else passes through
	u, err := url.Parse(backends[0].srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(u)
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/query/stream" {
			proxy.ServeHTTP(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		m := api.Match{TrajID: 0, Start: 0, End: 1, Dist: 0.5}
		_ = json.NewEncoder(w).Encode(api.StreamEvent{Match: &m})
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // sever mid-stream
	}))
	t.Cleanup(dying.Close)

	r, err := New(Config{
		Nodes: []string{dying.URL, backends[1].srv.URL},
		Retry: client.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustLoad(t, r, ts)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	emitted := 0
	spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 6)), K: 10}
	sum, err := r.QueryStream(ctx, spec, func(api.Match) error { emitted++; return nil })
	if err != nil {
		t.Fatalf("stream with a dying shard errored instead of degrading: %v", err)
	}
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatal("stream hung until the deadline")
	}
	if sum.Partial == nil || sum.Partial.NodesFailed != 1 || sum.Partial.NodesTotal != 2 {
		t.Fatalf("Partial = %+v, want 1/2 groups failed", sum.Partial)
	}
	if len(sum.Matches) == 0 {
		t.Fatal("degraded stream carried no ranking from the surviving group")
	}
}
