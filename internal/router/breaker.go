package router

import (
	"sync"
	"time"
)

// breaker is a per-node circuit breaker. The router's failover already
// survives a dead node, but without a breaker every query keeps paying the
// dead node's connect timeout before failing over; the breaker remembers
// the failure run and ejects the node up front, then re-admits it through
// single half-open probes instead of a thundering herd.
//
// States: closed (requests flow; a run of threshold consecutive degradable
// failures trips it), open (requests rejected without a network attempt
// until cooldown passes), half-open (exactly one probe in flight; its
// outcome closes or re-opens the breaker).
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    int
	fails    int // consecutive degradable failures
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	opens    int64
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be sent to the node now. An open
// breaker past its cooldown moves to half-open and admits exactly one
// probe. Every allowed request must be followed by record (or
// recordNeutral), or a consumed probe slot would block the node forever.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// record folds one finished request's outcome: success closes the breaker
// and ends the failure run; a degradable failure extends the run, trips
// the breaker at the threshold, and re-opens a half-open breaker
// immediately.
func (b *breaker) record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if !failed {
		b.state = breakerClosed
		b.fails = 0
		return
	}
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		if b.state != breakerOpen {
			b.opens++
		}
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.fails = 0
	}
}

// recordNeutral releases a probe slot without judging the node — the
// attempt was canceled (a hedge sibling won, the caller gave up) before it
// could prove anything.
func (b *breaker) recordNeutral() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// stateName reports the state for telemetry.
func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func (b *breaker) openCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
