package router

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"time"

	"simsub/api"
	"simsub/internal/core"
	"simsub/internal/engine"
)

// streamGate is the router's running global top-k during a streamed
// scatter: a bounded max-heap ordered by core.RankBefore that decides
// which per-node provisional matches are worth forwarding to the caller.
// It only gates provisional emission — the final ranking is merged from
// the per-group summaries, so gate state never affects correctness.
type streamGate struct {
	k  int
	ms []engine.Match
}

func gateRankBefore(a, b engine.Match) bool {
	return core.RankBefore(a.Result.Dist, a.TrajID, a.Result.Interval,
		b.Result.Dist, b.TrajID, b.Result.Interval)
}

func (h *streamGate) Len() int           { return len(h.ms) }
func (h *streamGate) Less(i, j int) bool { return gateRankBefore(h.ms[j], h.ms[i]) }
func (h *streamGate) Swap(i, j int)      { h.ms[i], h.ms[j] = h.ms[j], h.ms[i] }
func (h *streamGate) Push(x any)         { h.ms = append(h.ms, x.(engine.Match)) }
func (h *streamGate) Pop() any {
	m := h.ms[len(h.ms)-1]
	h.ms = h.ms[:len(h.ms)-1]
	return m
}

// offer reports whether m entered the running top-k.
func (h *streamGate) offer(m engine.Match) bool {
	switch {
	case h.k <= 0:
		return false
	case len(h.ms) < h.k:
		heap.Push(h, m)
		return true
	case gateRankBefore(m, h.ms[0]):
		h.ms[0] = m
		heap.Fix(h, 0)
		return true
	}
	return false
}

// streamGroup streams one spec from one replica group (failover, no
// hedging — a duplicated stream would duplicate provisional matches),
// forwarding each provisional match in router-global ID space, and returns
// the group's authoritative top-k list translated to global IDs. Deadline
// budgets propagate through the client, which forwards the attempt
// context's deadline (shaved) as the node-side timeout_ms.
func (r *Router) streamGroup(ctx context.Context, g *group, spec api.QuerySpec, forward func(engine.Match) error) ([]engine.Match, bool, *api.Degraded, error) {
	type answer struct {
		ms     []engine.Match
		cached bool
		deg    *api.Degraded
	}
	a, err := groupDo(ctx, r, g, false, func(ctx context.Context, n *node) (answer, error) {
		start := time.Now()
		if ferr := n.transportFault(ctx, start); ferr != nil {
			return answer{}, ferr
		}
		sum, err := n.c.QueryStream(ctx, spec, func(wm api.Match) error {
			gm, terr := r.toGlobal(g, engine.MatchFromAPI(wm))
			if terr != nil {
				return terr
			}
			return forward(gm)
		})
		n.observe(start, err)
		if err != nil {
			return answer{}, &nodeError{node: n.base, err: err}
		}
		ms := make([]engine.Match, len(sum.Matches))
		for i, wm := range sum.Matches {
			gm, terr := r.toGlobal(g, engine.MatchFromAPI(wm))
			if terr != nil {
				return answer{}, &nodeError{node: n.base, err: terr}
			}
			ms[i] = gm
		}
		return answer{ms: ms, cached: sum.Cached, deg: sum.Degraded}, nil
	})
	return a.ms, a.cached, a.deg, err
}

// QueryStream implements api.StreamSearcher across the fleet: per-node
// provisional matches stream through the router's global top-k gate to the
// caller (single-goroutine, entry order), and the summary carries the
// authoritative merged ranking — identical to QueryOne's answer for the
// same spec. The two-wave bound propagation of the unary path applies: the
// pilot group streams first and its k-th best bounds the rest. An emit
// error aborts the scatter and is returned unchanged; unreachable groups
// degrade to a Partial summary.
func (r *Router) QueryStream(ctx context.Context, spec api.QuerySpec, emit func(api.Match) error) (*api.StreamSummary, error) {
	start := time.Now()
	spec = spec.WithDefaults()
	if aerr := r.validateSpec(spec); aerr != nil {
		return nil, aerr
	}
	if aerr := r.checkBudget(ctx); aerr != nil {
		return nil, aerr
	}
	r.queries.Add(1)

	counts := r.groupCounts()
	var active []int
	for gi, c := range counts {
		if c > 0 {
			active = append(active, gi)
		}
	}
	g := gather{cached: true, active: len(active)}
	emitted := 0
	gate := streamGate{k: spec.K}
	forward := func(gm engine.Match) error {
		if gate.offer(gm) {
			emitted++
			if err := emit(engine.MatchToAPI(gm)); err != nil {
				return &abortError{err: err}
			}
		}
		return nil
	}
	bound := spec.Bound

	rest := active
	if !r.cfg.NoBoundPropagation && len(active) >= 2 {
		pi := pilotOf(active, counts)
		gi := active[pi]
		rest = make([]int, 0, len(active)-1)
		rest = append(rest, active[:pi]...)
		rest = append(rest, active[pi+1:]...)
		ms, cached, deg, err := r.streamGroup(ctx, r.groups[gi], nodeSpec(spec, bound, counts[gi]), forward)
		switch {
		case err == nil:
			g.lists = append(g.lists, ms)
			g.cached = g.cached && cached
			g.noteDegraded(deg)
			if len(ms) >= spec.K {
				bound = tighten(bound, ms[spec.K-1].Result.Dist)
			}
		case !degradable(err):
			return nil, unwrapAbort(err)
		default:
			g.failures = append(g.failures, failureOf(r.groups[gi], err))
			g.cached = false
		}
	}
	if bound != nil && len(rest) > 0 {
		r.bounds.Add(1)
	}

	// the remaining groups stream concurrently; their provisional matches
	// funnel through one channel so the caller's emit stays
	// single-goroutine
	type groupOut struct {
		ms     []engine.Match
		cached bool
		deg    *api.Degraded
		err    error
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan engine.Match, 64)
	outs := make([]groupOut, len(rest))
	var wg sync.WaitGroup
	for i, gi := range rest {
		wg.Add(1)
		go func(i, gi int) {
			defer wg.Done()
			ms, cached, deg, err := r.streamGroup(cctx, r.groups[gi], nodeSpec(spec, bound, counts[gi]), func(gm engine.Match) error {
				select {
				case ch <- gm:
					return nil
				case <-cctx.Done():
					return cctx.Err()
				}
			})
			outs[i] = groupOut{ms: ms, cached: cached, deg: deg, err: err}
		}(i, gi)
	}
	go func() { wg.Wait(); close(ch) }()

	var emitErr error
	for gm := range ch {
		if emitErr != nil {
			continue // drain so the cancelled group streams can exit
		}
		if err := forward(gm); err != nil {
			emitErr = unwrapAbort(err)
			cancel()
		}
	}
	if emitErr != nil {
		return nil, emitErr
	}
	for i, o := range outs {
		switch {
		case o.err == nil:
			g.lists = append(g.lists, o.ms)
			g.cached = g.cached && o.cached
			g.noteDegraded(o.deg)
		case !degradable(o.err):
			return nil, unwrapAbort(o.err)
		default:
			g.failures = append(g.failures, failureOf(r.groups[rest[i]], o.err))
			g.cached = false
		}
	}

	partial, aerr := r.finishGather(g)
	if aerr != nil {
		return nil, aerr
	}
	full := engine.MergeTopK(g.lists, spec.K)
	if spec.Distinct {
		full = r.collapseDistinct(ctx, full)
	}
	page := pageOf(full, spec.Offset, spec.Limit)
	return &api.StreamSummary{
		Matches:  engine.MatchesToAPI(page),
		Total:    len(full),
		Cached:   g.cached,
		Emitted:  emitted,
		Partial:  partial,
		Degraded: g.degraded,
		TookMS:   tookMS(start),
	}, nil
}

// unwrapAbort restores a stream consumer's emit error to its original
// value; other errors pass through as typed API errors.
func unwrapAbort(err error) error {
	var abort *abortError
	if errors.As(err, &abort) {
		return abort.err
	}
	return api.FromError(err)
}
