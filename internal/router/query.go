package router

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"simsub/api"
	"simsub/internal/engine"
	"simsub/internal/traj"
)

// nodeError tags a per-node failure with the node that produced it, so a
// degraded answer's Partial summary can name the culprit. errors.As sees
// through it, so typed api.Error classification is unaffected.
type nodeError struct {
	node string
	err  error
}

func (e *nodeError) Error() string { return e.node + ": " + e.err.Error() }
func (e *nodeError) Unwrap() error { return e.err }

// failureOf converts a group's exhausted error into the wire degradation
// record.
func failureOf(g *group, err error) api.NodeFailure {
	node := g.replicas[0].base
	var ne *nodeError
	if errors.As(err, &ne) {
		node, err = ne.node, ne.err
	}
	return api.NodeFailure{Node: node, Err: *api.FromError(err)}
}

// validateSpec applies the router-level wire checks: shape, page, bound
// and the store-size bound on k. Measure/algorithm names are validated by
// the nodes — their rejections are deterministic, so the first one is the
// spec's answer.
func (r *Router) validateSpec(spec api.QuerySpec) *api.Error {
	if _, aerr := spec.Query.ToTraj(); aerr != nil {
		return aerr
	}
	if spec.K <= 0 {
		return api.Errorf(api.CodeInvalidArgument, "k must be positive, got %d", spec.K)
	}
	if n := r.Len(); spec.K > n {
		return api.Errorf(api.CodeInvalidArgument, "k %d exceeds store size %d", spec.K, n)
	}
	if spec.Offset < 0 {
		return api.Errorf(api.CodeInvalidArgument, "offset must be non-negative, got %d", spec.Offset)
	}
	if spec.Limit < 0 {
		return api.Errorf(api.CodeInvalidArgument, "limit must be non-negative, got %d", spec.Limit)
	}
	if spec.Filter != nil {
		if aerr := spec.Filter.Validate(); aerr != nil {
			return aerr
		}
	}
	if aerr := spec.ValidateANN(); aerr != nil {
		return aerr
	}
	return spec.ValidateBound()
}

// checkBudget rejects a deadline-carrying request whose remaining budget
// is already inside the router's merge reserve: no node could answer in
// time, so the typed rejection is immediate instead of a scatter that
// burns fleet slots only to time out anyway.
func (r *Router) checkBudget(ctx context.Context) *api.Error {
	dl, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	if remaining := time.Until(dl); remaining <= r.cfg.MergeReserve {
		r.deadlineRejects.Add(1)
		return api.Errorf(api.CodeDeadlineExceeded,
			"remaining deadline budget %v is inside the router's %v merge reserve — retry with a larger deadline",
			remaining, r.cfg.MergeReserve)
	}
	return nil
}

// budgetMS converts an attempt context's remaining deadline into the
// per-node timeout_ms, shaving the router's MergeReserve so the node's
// budget expires (with a typed error) before the router's own merge window
// does. Zero — no node-side bound — when the request carries no deadline.
func (r *Router) budgetMS(ctx context.Context) int {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := int((time.Until(dl) - r.cfg.MergeReserve) / time.Millisecond)
	if ms <= 0 {
		ms = 1 // doomed: let the node reject instantly with its typed error
	}
	return ms
}

// nodeSpec derives the per-node spec of a scatter wave: paging and
// distinct collapsing are global concerns applied at the router after the
// merge, k is clamped to the group's holdings (a node rejects k beyond its
// store), and the wave's running bound rides along as QuerySpec.Bound.
func nodeSpec(spec api.QuerySpec, bound *float64, count int) api.QuerySpec {
	spec.Offset, spec.Limit, spec.Distinct = 0, 0, false
	if spec.K > count {
		spec.K = count
	}
	spec.Bound = bound
	return spec
}

// pilotOf picks the pilot group of a two-wave scatter: the one holding the
// most trajectories (ties to the lowest index), so the first wave's k-th
// best is as tight a bound as a single group can provide.
func pilotOf(active, counts []int) int {
	best := 0
	for i, gi := range active[1:] {
		if counts[gi] > counts[active[best]] {
			best = i + 1
		}
	}
	return best
}

// tighten folds a freshly observed k-th-best distance into the running
// bound pointer.
func tighten(bound *float64, d float64) *float64 {
	if bound == nil || d < *bound {
		return &d
	}
	return bound
}

// queryGroup answers one spec against one replica group (with hedging and
// failover) and rewrites the matches into router-global ID space. The
// request's remaining deadline budget (shaved by MergeReserve) rides to
// the node as timeout_ms, so the node's admission control can reject a
// doomed query with a typed error instead of burning a slot on it.
func (r *Router) queryGroup(ctx context.Context, g *group, spec api.QuerySpec) ([]engine.Match, bool, *api.Degraded, error) {
	type answer struct {
		ms     []engine.Match
		cached bool
		deg    *api.Degraded
	}
	a, err := groupDo(ctx, r, g, true, func(ctx context.Context, n *node) (answer, error) {
		start := time.Now()
		if ferr := n.transportFault(ctx, start); ferr != nil {
			return answer{}, ferr
		}
		resp, err := n.c.Query(ctx, api.Query{Specs: []api.QuerySpec{spec}, TimeoutMS: r.budgetMS(ctx)})
		if err == nil && len(resp.Results) != 1 {
			err = api.Errorf(api.CodeInternal, "node answered %d results for 1 spec", len(resp.Results))
		}
		if err == nil && resp.Results[0].Error != nil {
			err = resp.Results[0].Error
		}
		n.observe(start, err)
		if err != nil {
			return answer{}, &nodeError{node: n.base, err: err}
		}
		res := resp.Results[0]
		ms := make([]engine.Match, len(res.Matches))
		for i, wm := range res.Matches {
			gm, terr := r.toGlobal(g, engine.MatchFromAPI(wm))
			if terr != nil {
				return answer{}, &nodeError{node: n.base, err: terr}
			}
			ms[i] = gm
		}
		return answer{ms: ms, cached: res.Cached, deg: res.Degraded}, nil
	})
	return a.ms, a.cached, a.deg, err
}

// gather is the outcome of one scatter: the per-group top-k lists (global
// IDs, ascending), whether every list came from a node cache, which groups
// lost all replicas, and whether any node answered with a degraded
// (fallback-algorithm) ranking.
type gather struct {
	lists    [][]engine.Match
	cached   bool
	active   int
	failures []api.NodeFailure
	degraded *api.Degraded
}

// noteDegraded folds one group's degradation marker into the gather (the
// first marker wins — it names the algorithm substitution, which every
// degrading node performs identically).
func (g *gather) noteDegraded(deg *api.Degraded) {
	if g.degraded == nil {
		g.degraded = deg
	}
}

// scatterGather fans one spec out over every non-empty group and collects
// the per-group rankings. With ≥ 2 active groups (and propagation on), it
// runs two waves: the largest group first — the pilot — then the rest
// carrying the pilot's k-th-best distance as their bound, so remote
// engines seed their shared thresholds with a near-final global k-th-best
// instead of discovering it from scratch. Since engine pruning is strict
// against the bound and the pilot's k-th best upper-bounds the final
// global k-th best, the merged ranking is byte-identical to an unbounded
// scatter. A non-degradable node rejection (bad measure name, ...) returns
// immediately as the spec's error; degradable failures become Partial
// degradation, handled by the caller.
func (r *Router) scatterGather(ctx context.Context, spec api.QuerySpec) (gather, *api.Error) {
	counts := r.groupCounts()
	var active []int
	for gi, c := range counts {
		if c > 0 {
			active = append(active, gi)
		}
	}
	out := gather{cached: true, active: len(active)}
	bound := spec.Bound

	rest := active
	if !r.cfg.NoBoundPropagation && len(active) >= 2 {
		pi := pilotOf(active, counts)
		gi := active[pi]
		rest = make([]int, 0, len(active)-1)
		rest = append(rest, active[:pi]...)
		rest = append(rest, active[pi+1:]...)
		g := r.groups[gi]
		ms, cached, deg, err := r.queryGroup(ctx, g, nodeSpec(spec, bound, counts[gi]))
		switch {
		case err == nil:
			out.lists = append(out.lists, ms)
			out.cached = out.cached && cached
			out.noteDegraded(deg)
			if len(ms) >= spec.K {
				bound = tighten(bound, ms[spec.K-1].Result.Dist)
			}
		case !degradable(err):
			return gather{}, api.FromError(err)
		default:
			out.failures = append(out.failures, failureOf(g, err))
			out.cached = false
		}
	}
	if bound != nil && len(rest) > 0 {
		r.bounds.Add(1)
	}

	type groupOut struct {
		ms     []engine.Match
		cached bool
		deg    *api.Degraded
		err    error
	}
	outs := make([]groupOut, len(rest))
	var wg sync.WaitGroup
	for i, gi := range rest {
		wg.Add(1)
		go func(i, gi int) {
			defer wg.Done()
			ms, cached, deg, err := r.queryGroup(ctx, r.groups[gi], nodeSpec(spec, bound, counts[gi]))
			outs[i] = groupOut{ms: ms, cached: cached, deg: deg, err: err}
		}(i, gi)
	}
	wg.Wait()
	for i, o := range outs {
		switch {
		case o.err == nil:
			out.lists = append(out.lists, o.ms)
			out.cached = out.cached && o.cached
			out.noteDegraded(o.deg)
		case !degradable(o.err):
			return gather{}, api.FromError(o.err)
		default:
			out.failures = append(out.failures, failureOf(r.groups[rest[i]], o.err))
			out.cached = false
		}
	}
	return out, nil
}

// finishGather turns a scatter's outcome into the spec's degradation
// state: all groups lost is a hard error, some lost is a Partial summary.
func (r *Router) finishGather(g gather) (*api.Partial, *api.Error) {
	if len(g.failures) == 0 {
		return nil, nil
	}
	if len(g.failures) == g.active {
		f := g.failures[0]
		ae := api.Errorf(f.Err.Code, "every shard group failed; first: %s: %s", f.Node, f.Err.Message)
		// keep the nodes' back-off guidance: the caller should wait for
		// the slowest-draining group before retrying the whole scatter
		for _, fl := range g.failures {
			if fl.Err.RetryAfterMS > ae.RetryAfterMS {
				ae.RetryAfterMS = fl.Err.RetryAfterMS
			}
		}
		return nil, ae
	}
	r.partial.Add(1)
	return &api.Partial{NodesTotal: g.active, NodesFailed: len(g.failures), Failures: g.failures}, nil
}

// QueryOne answers a single spec by scatter-gather: per-group top-k lists
// merged with the engine's k-way merge, then global distinct collapsing
// and paging. The ranking is byte-identical to a single engine holding the
// same corpus in the same load order. Failures land in the result's Error
// field; unreachable shard groups degrade to a Partial summary instead.
func (r *Router) QueryOne(ctx context.Context, spec api.QuerySpec) api.QueryResult {
	start := time.Now()
	spec = spec.WithDefaults()
	if aerr := r.validateSpec(spec); aerr != nil {
		return api.QueryResult{Error: aerr, TookMS: tookMS(start)}
	}
	if aerr := r.checkBudget(ctx); aerr != nil {
		return api.QueryResult{Error: aerr, TookMS: tookMS(start)}
	}
	r.queries.Add(1)
	g, aerr := r.scatterGather(ctx, spec)
	if aerr != nil {
		return api.QueryResult{Error: aerr, TookMS: tookMS(start)}
	}
	partial, aerr := r.finishGather(g)
	if aerr != nil {
		return api.QueryResult{Error: aerr, TookMS: tookMS(start)}
	}
	full := engine.MergeTopK(g.lists, spec.K)
	if spec.Distinct {
		full = r.collapseDistinct(ctx, full)
	}
	page := pageOf(full, spec.Offset, spec.Limit)
	return api.QueryResult{
		Matches:  engine.MatchesToAPI(page),
		Total:    len(full),
		Cached:   g.cached,
		Partial:  partial,
		Degraded: g.degraded,
		TookMS:   tookMS(start),
	}
}

// Query implements api.Searcher: the batch's specs scatter concurrently;
// Results[i] answers Specs[i], a failed spec carries its typed error
// without failing the batch, and TimeoutMS bounds the whole batch.
func (r *Router) Query(ctx context.Context, req api.Query) (*api.QueryResponse, error) {
	if len(req.Specs) == 0 {
		return nil, api.Errorf(api.CodeInvalidArgument, "query batch has no specs")
	}
	ctx, cancel := msContext(ctx, req.TimeoutMS)
	defer cancel()
	start := time.Now()
	results := make([]api.QueryResult, len(req.Specs))
	var wg sync.WaitGroup
	for i, spec := range req.Specs {
		wg.Add(1)
		go func(i int, spec api.QuerySpec) {
			defer wg.Done()
			results[i] = r.QueryOne(ctx, spec)
		}(i, spec)
	}
	wg.Wait()
	return &api.QueryResponse{Results: results, TookMS: tookMS(start)}, nil
}

// collapseDistinct keeps the best-ranked match per distinct matched
// subtrajectory content, mirroring the engine's Distinct semantics at the
// global level (duplicates may live on different groups, so no node can
// collapse them alone). The referenced trajectories are fetched from their
// groups once each, concurrently; a match whose trajectory cannot be
// fetched is kept, like the engine keeps matches it cannot resolve.
func (r *Router) collapseDistinct(ctx context.Context, ms []engine.Match) []engine.Match {
	if len(ms) < 2 {
		return ms
	}
	need := make(map[int]traj.Trajectory, len(ms))
	ids := make([]int, 0, len(ms))
	for _, m := range ms {
		if _, ok := need[m.TrajID]; !ok {
			need[m.TrajID] = traj.Trajectory{}
			ids = append(ids, m.TrajID)
		}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rec, err := r.GetTrajectory(ctx, id)
			if err != nil {
				return
			}
			t, aerr := rec.Trajectory.ToTraj()
			if aerr != nil {
				return
			}
			mu.Lock()
			need[id] = t
			mu.Unlock()
		}(id)
	}
	wg.Wait()

	seen := make(map[uint64][]traj.Trajectory, len(ms))
	out := ms[:0]
next:
	for _, m := range ms {
		t := need[m.TrajID]
		if t.Len() == 0 {
			out = append(out, m)
			continue
		}
		sub := t.Sub(m.Result.Interval.I, m.Result.Interval.J)
		d := placementKey(sub)
		for _, prev := range seen[d] {
			if prev.Equal(sub) {
				continue next
			}
		}
		seen[d] = append(seen[d], sub)
		out = append(out, m)
	}
	return out
}

// pageOf selects the ranking window [offset, offset+limit) (limit 0 = to
// the end), exactly like the engine's paging.
func pageOf(full []engine.Match, offset, limit int) []engine.Match {
	if offset >= len(full) {
		return nil
	}
	out := full[offset:]
	if limit > 0 && limit < len(out) {
		out = out[:limit]
	}
	return out
}

func tookMS(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// msContext tightens ctx by ms milliseconds when positive, clamped so an
// absurd value cannot overflow into an already-expired deadline.
func msContext(ctx context.Context, ms int) (context.Context, context.CancelFunc) {
	if ms <= 0 {
		return context.WithCancel(ctx)
	}
	maxMS := int(math.MaxInt64 / int64(time.Millisecond))
	if ms > maxMS {
		ms = maxMS
	}
	return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
}
