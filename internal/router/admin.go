package router

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"simsub/api"
)

// SwapPolicy broadcasts a learned-search policy swap to every node of the
// fleet. A Path request is resolved against the ROUTER's filesystem — the
// file is read once here and shipped to the nodes as bytes, since the
// nodes' local filesystems are not the operator's. The swap is
// all-or-nothing in intent but not atomic across the fleet: every node
// must accept it, and a mixed outcome is reported as an error naming the
// nodes that rejected it (the accepted nodes keep serving the new policy —
// re-issue the swap to converge). On success every node's fingerprint is
// verified to agree.
func (r *Router) SwapPolicy(ctx context.Context, req api.PolicySwapRequest) (*api.PolicyInfo, error) {
	if (req.Path == "") == (req.PolicyB64 == "") {
		return nil, api.Errorf(api.CodeInvalidArgument, "exactly one of path or policy_b64 must be set")
	}
	if req.Path != "" {
		raw, err := os.ReadFile(req.Path)
		if err != nil {
			return nil, api.Errorf(api.CodeInvalidArgument, "reading policy file: %v", err)
		}
		req = api.PolicySwapRequest{PolicyB64: base64.StdEncoding.EncodeToString(raw)}
	}

	infos := make([]*api.PolicyInfo, len(r.nodes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	for i, n := range r.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			actx, cancel := r.attemptCtx(ctx)
			defer cancel()
			start := time.Now()
			info, err := n.c.SwapPolicy(actx, req)
			n.observe(start, err)
			if err != nil {
				errs[i] = fmt.Errorf("node %s: %w", n.base, err)
				return
			}
			infos[i] = info
		}(i, n)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, api.Errorf(api.CodeInternal, "policy broadcast incomplete, fleet may be serving mixed policies — re-issue the swap: %v", err)
	}
	for i, info := range infos[1:] {
		if info.Fingerprint != infos[0].Fingerprint {
			return nil, api.Errorf(api.CodeInternal,
				"fleet diverged after swap: node %s reports fingerprint %s, node %s reports %s",
				r.nodes[0].base, infos[0].Fingerprint, r.nodes[i+1].base, info.Fingerprint)
		}
	}
	return infos[0], nil
}

// Policy reports the fleet's registered policy. Every reachable node must
// agree on the fingerprint; a divergent fleet is an internal error (it
// would serve learned queries inconsistently).
func (r *Router) Policy(ctx context.Context) (*api.PolicyInfo, error) {
	infos := make([]*api.PolicyInfo, len(r.nodes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	for i, n := range r.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			actx, cancel := r.attemptCtx(ctx)
			defer cancel()
			start := time.Now()
			info, err := n.c.Policy(actx)
			n.observe(start, err)
			infos[i], errs[i] = info, err
		}(i, n)
	}
	wg.Wait()
	var first *api.PolicyInfo
	firstNode := ""
	for i, info := range infos {
		if info == nil {
			continue
		}
		if first == nil {
			first, firstNode = info, r.nodes[i].base
			continue
		}
		if info.Fingerprint != first.Fingerprint {
			return nil, api.Errorf(api.CodeInternal,
				"fleet policies diverged: node %s reports fingerprint %s, node %s reports %s — re-issue the swap",
				firstNode, first.Fingerprint, r.nodes[i].base, info.Fingerprint)
		}
	}
	if first != nil {
		return first, nil
	}
	// no node answered with a policy: propagate the first typed rejection
	// (usually not_found: no policy registered)
	for _, err := range errs {
		if err != nil {
			return nil, api.FromError(err)
		}
	}
	return nil, api.Errorf(api.CodeNotFound, "no policy registered")
}

// SwapEncoder broadcasts a t2vec encoder swap to every node of the fleet,
// enabling the "ann" prefilter and the "embed" ranking fleet-wide. A Path
// request is resolved against the ROUTER's filesystem — the file is read
// once here and shipped to the nodes as bytes. Like SwapPolicy the
// broadcast is all-or-nothing in intent but not atomic: a mixed outcome is
// reported as an error naming the rejecting nodes (re-issue to converge),
// and on success every node's fingerprint is verified to agree — a
// diverged fleet would rank the same ann query against different
// embedding spaces per shard group.
func (r *Router) SwapEncoder(ctx context.Context, req api.EncoderSwapRequest) (*api.EncoderInfo, error) {
	if (req.Path == "") == (req.EncoderB64 == "") {
		return nil, api.Errorf(api.CodeInvalidArgument, "exactly one of path or encoder_b64 must be set")
	}
	if req.Path != "" {
		raw, err := os.ReadFile(req.Path)
		if err != nil {
			return nil, api.Errorf(api.CodeInvalidArgument, "reading encoder file: %v", err)
		}
		req = api.EncoderSwapRequest{EncoderB64: base64.StdEncoding.EncodeToString(raw)}
	}

	infos := make([]*api.EncoderInfo, len(r.nodes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	for i, n := range r.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			actx, cancel := r.attemptCtx(ctx)
			defer cancel()
			start := time.Now()
			info, err := n.c.SwapEncoder(actx, req)
			n.observe(start, err)
			if err != nil {
				errs[i] = fmt.Errorf("node %s: %w", n.base, err)
				return
			}
			infos[i] = info
		}(i, n)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, api.Errorf(api.CodeInternal, "encoder broadcast incomplete, fleet may be serving mixed encoders — re-issue the swap: %v", err)
	}
	for i, info := range infos[1:] {
		if info.Fingerprint != infos[0].Fingerprint {
			return nil, api.Errorf(api.CodeInternal,
				"fleet diverged after swap: node %s reports encoder fingerprint %s, node %s reports %s",
				r.nodes[0].base, infos[0].Fingerprint, r.nodes[i+1].base, info.Fingerprint)
		}
	}
	return infos[0], nil
}

// Encoder reports the fleet's registered encoder. Every reachable node
// must agree on the fingerprint; a divergent fleet is an internal error
// (ann candidates would come from inconsistent embedding spaces).
func (r *Router) Encoder(ctx context.Context) (*api.EncoderInfo, error) {
	infos := make([]*api.EncoderInfo, len(r.nodes))
	errs := make([]error, len(r.nodes))
	var wg sync.WaitGroup
	for i, n := range r.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			actx, cancel := r.attemptCtx(ctx)
			defer cancel()
			start := time.Now()
			info, err := n.c.Encoder(actx)
			n.observe(start, err)
			infos[i], errs[i] = info, err
		}(i, n)
	}
	wg.Wait()
	var first *api.EncoderInfo
	firstNode := ""
	for i, info := range infos {
		if info == nil {
			continue
		}
		if first == nil {
			first, firstNode = info, r.nodes[i].base
			continue
		}
		if info.Fingerprint != first.Fingerprint {
			return nil, api.Errorf(api.CodeInternal,
				"fleet encoders diverged: node %s reports fingerprint %s, node %s reports %s — re-issue the swap",
				firstNode, first.Fingerprint, r.nodes[i].base, info.Fingerprint)
		}
	}
	if first != nil {
		return first, nil
	}
	for _, err := range errs {
		if err != nil {
			return nil, api.FromError(err)
		}
	}
	return nil, api.Errorf(api.CodeNotFound, "no encoder registered")
}

// Stats aggregates fleet telemetry, best-effort: unreachable nodes
// contribute nothing (and are marked unhealthy) rather than failing the
// call. The Engine section sums the nodes' counters — store-shape fields
// (trajectories, points, shards, workers) over one replica per group to
// avoid double counting, work counters over every node, since replicas do
// independent work. The Router section is the coordinator's own telemetry.
func (r *Router) Stats(ctx context.Context) (*api.StatsResponse, error) {
	stats := make([]*api.StatsResponse, len(r.nodes))
	var wg sync.WaitGroup
	for i, n := range r.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			actx, cancel := r.attemptCtx(ctx)
			defer cancel()
			start := time.Now()
			st, err := n.c.Stats(actx)
			n.observe(start, err)
			if err == nil {
				stats[i] = st
			}
		}(i, n)
	}
	wg.Wait()

	var agg api.Stats
	var measures []string
	var recallWeighted float64
	idx := 0
	for _, g := range r.groups {
		shaped := false
		for range g.replicas {
			st := stats[idx]
			idx++
			if st == nil {
				continue
			}
			e := st.Engine
			if !shaped {
				shaped = true
				agg.Points += e.Points
				agg.Shards += e.Shards
				agg.Workers += e.Workers
				agg.CacheEntries += e.CacheEntries
			}
			agg.Queries += e.Queries
			agg.CacheHits += e.CacheHits
			agg.CacheMisses += e.CacheMisses
			agg.InFlight += e.InFlight
			agg.CandidatesSeen += e.CandidatesSeen
			agg.LBSkipped += e.LBSkipped
			agg.EarlyAbandoned += e.EarlyAbandoned
			agg.RLSQueries += e.RLSQueries
			agg.QualitySamples += e.QualitySamples
			agg.ANNQueries += e.ANNQueries
			agg.RecallSamples += e.RecallSamples
			recallWeighted += e.MeanRecall * float64(e.RecallSamples)
			agg.Shed += e.Shed
			agg.ShedExpensive += e.ShedExpensive
			agg.DeadlineRejects += e.DeadlineRejects
			agg.DegradedQueries += e.DegradedQueries
			agg.QueueDepth += e.QueueDepth
			if e.QueueWaitMS > agg.QueueWaitMS {
				agg.QueueWaitMS = e.QueueWaitMS // worst node's smoothed wait
			}
			agg.Shedding = agg.Shedding || e.Shedding
			if !agg.PolicyLoaded && e.PolicyLoaded {
				agg.PolicyLoaded = true
				agg.PolicyName = e.PolicyName
				agg.PolicyFingerprint = e.PolicyFingerprint
				agg.PolicyCompiled = e.PolicyCompiled
				agg.PolicyCompileResolution = e.PolicyCompileResolution
				agg.PolicyCompileDivergence = e.PolicyCompileDivergence
				agg.PolicyCompiledFingerprint = e.PolicyCompiledFingerprint
			}
			if !agg.EncoderLoaded && e.EncoderLoaded {
				agg.EncoderLoaded = true
				agg.EncoderFingerprint = e.EncoderFingerprint
				agg.EncoderDim = e.EncoderDim
				agg.EncoderGrid = e.EncoderGrid
			}
			if measures == nil {
				measures = st.Measures
			}
		}
	}
	if agg.RecallSamples > 0 {
		agg.MeanRecall = recallWeighted / float64(agg.RecallSamples)
	}
	agg.Trajectories = r.Len()

	rs := &api.RouterStats{
		Groups:           len(r.groups),
		Replication:      r.cfg.Replication,
		Trajectories:     r.Len(),
		Queries:          r.queries.Load(),
		Hedges:           r.hedges.Load(),
		Retries:          r.retries.Load(),
		PartialResults:   r.partial.Load(),
		BoundsPropagated: r.bounds.Load(),
		DeadlineRejects:  r.deadlineRejects.Load(),
	}
	for i, n := range r.nodes {
		// Surface each node's self-reported lifecycle state so operators can
		// tell a replaying node (its data paths 503 and the scatter fails
		// over) from a dead one.
		state := "unreachable"
		if st := stats[i]; st != nil {
			state = st.State
			if state == "" {
				state = api.StateReady
			}
		}
		rs.Nodes = append(rs.Nodes, api.NodeStats{
			Node:         n.base,
			Group:        n.group,
			State:        state,
			Healthy:      n.healthy.Load(),
			Requests:     n.requests.Load(),
			Failures:     n.failures.Load(),
			Hedges:       n.hedges.Load(),
			Retries:      n.retries.Load(),
			RTTMeanMS:    durMS(n.rtt.mean()),
			RTTP50MS:     durMS(n.rtt.quantile(0.50)),
			RTTP95MS:     durMS(n.rtt.quantile(0.95)),
			Breaker:      n.brk.stateName(),
			BreakerOpens: n.brk.openCount(),
		})
	}
	return &api.StatsResponse{Engine: agg, Measures: measures, Router: rs}, nil
}

func durMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// Health probes every node; it succeeds when every group has at least one
// healthy replica (the fleet can still answer complete queries).
func (r *Router) Health(ctx context.Context) error {
	ok := make([]bool, len(r.nodes))
	var wg sync.WaitGroup
	for i, n := range r.nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			actx, cancel := r.attemptCtx(ctx)
			defer cancel()
			start := time.Now()
			err := n.c.Health(actx)
			n.observe(start, err)
			ok[i] = err == nil
		}(i, n)
	}
	wg.Wait()
	idx := 0
	for gi, g := range r.groups {
		healthy := false
		for range g.replicas {
			healthy = healthy || ok[idx]
			idx++
		}
		if !healthy {
			return api.Errorf(api.CodeInternal, "shard group %d has no reachable replica", gi)
		}
	}
	return nil
}
