// Package router is the coordinator tier of a simsubd fleet: one front
// door over N remote simsubd nodes that places trajectories with
// consistent hashing, scatter-gathers top-k queries with the engine's
// k-way merge, and propagates its running global k-th-best distance over
// the wire (api.QuerySpec.Bound) so remote shards prune exactly like the
// local shards of a single engine.
//
// The Router implements the same api.Searcher / api.StreamSearcher
// interfaces as *engine.Engine and *client.Client, and cmd/simsubrouter
// exposes it over the same HTTP surface as simsubd — a client.Client
// pointed at a router is indistinguishable from one pointed at a single
// node, and its rankings are byte-identical to a single engine holding the
// same corpus.
//
// Robustness: per-node requests retry with exponential backoff (the
// client package's opt-in retry), nodes in a replica group serve hedged
// duplicates of slow requests after a configurable latency quantile, and a
// shard group that stays unreachable degrades the answer to a typed
// Partial summary over the reachable corpus instead of failing the query.
package router

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"simsub/api"
	"simsub/client"
	"simsub/internal/engine"
	"simsub/internal/failpoint"
	"simsub/internal/traj"
)

var (
	_ api.Searcher       = (*Router)(nil)
	_ api.StreamSearcher = (*Router)(nil)
)

// Config sizes a Router. Nodes is required; zero values elsewhere select
// the documented defaults.
type Config struct {
	// Nodes are the backend simsubd base URLs, e.g.
	// ["http://10.0.0.1:8080", "http://10.0.0.2:8080"]. Consecutive runs
	// of Replication nodes form one replica group; every node of a group
	// receives every trajectory placed on the group, so any of them can
	// answer the group's share of a query. The nodes must be dedicated to
	// the router (it owns their trajectory ID space).
	Nodes []string
	// Replication is the replica-group size (default 1). It must divide
	// len(Nodes). With Replication ≥ 2, slow requests are hedged to the
	// next replica and a dead node degrades nothing as long as one
	// replica of its group answers.
	Replication int
	// VNodes is the number of consistent-hash ring points per group
	// (default 64).
	VNodes int
	// Retry is the per-node retry policy (see client.WithRetry); zero
	// takes the client defaults with a tighter 25ms/250ms backoff window.
	Retry client.RetryPolicy
	// HedgeQuantile is the RTT quantile of a node's recent latency window
	// that arms the hedge timer (default 0.95): if the primary replica
	// has not answered within max(HedgeMin, quantile), the request is
	// duplicated to the next replica and the first answer wins.
	HedgeQuantile float64
	// HedgeMin floors the hedge delay (default 10ms), and is the whole
	// delay until a node has latency samples.
	HedgeMin time.Duration
	// NoHedge disables hedged requests.
	NoHedge bool
	// NoBoundPropagation disables the two-wave scatter: by default, when
	// a top-k spec fans out over ≥ 2 groups, the largest group is queried
	// first (the pilot) and its k-th-best distance is shipped to the
	// remaining groups as QuerySpec.Bound, seeding their engines' shared
	// thresholds so remote shards prune like local ones.
	NoBoundPropagation bool
	// NodeTimeout bounds each per-node request attempt (default 15s), so
	// a hung node degrades to a Partial answer instead of pinning the
	// query until the client deadline. Negative disables the bound.
	NodeTimeout time.Duration
	// BreakerThreshold is the run of consecutive degradable failures that
	// trips a node's circuit breaker open (default 5). An open breaker
	// ejects the node without a network attempt until BreakerCooldown
	// passes, then admits a single half-open probe whose outcome closes or
	// re-opens it. When every replica of a group is ejected the group is
	// probed anyway — a request is the only signal that can close a
	// breaker again.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker ejects its node before
	// the next probe (default 2s).
	BreakerCooldown time.Duration
	// MergeReserve is the slice of a deadline-carrying request's budget the
	// router holds back for its own merge and serialization work when
	// deriving the per-node timeout_ms; a request whose remaining budget is
	// already inside the reserve is rejected with a typed deadline_exceeded
	// before any node is contacted (default 20ms).
	MergeReserve time.Duration
	// HTTPClient overrides the transport shared by the per-node clients.
	HTTPClient *http.Client
}

func (c *Config) fill() error {
	if len(c.Nodes) == 0 {
		return errors.New("router: config needs at least one node")
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if len(c.Nodes)%c.Replication != 0 {
		return fmt.Errorf("router: replication %d does not divide the %d configured nodes", c.Replication, len(c.Nodes))
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile > 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 10 * time.Millisecond
	}
	if c.NodeTimeout == 0 {
		c.NodeTimeout = 15 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MergeReserve <= 0 {
		c.MergeReserve = 20 * time.Millisecond
	}
	if c.Retry.BaseDelay <= 0 {
		c.Retry.BaseDelay = 25 * time.Millisecond
	}
	if c.Retry.MaxDelay <= 0 {
		c.Retry.MaxDelay = 250 * time.Millisecond
	}
	return nil
}

// node is one backend simsubd as seen by the router.
type node struct {
	base    string
	group   int
	c       *client.Client
	rtt     *latencyTracker
	healthy atomic.Bool
	brk     *breaker

	requests atomic.Int64
	failures atomic.Int64
	hedges   atomic.Int64
	retries  atomic.Int64
}

// observe folds one finished request into the node's telemetry. A typed
// deterministic rejection (invalid_argument, ...) still proves the node is
// reachable, so only degradable failures mark it unhealthy. A canceled
// attempt (a hedge sibling won, the caller gave up) says nothing about the
// node, so it counts as a failure but does not move the circuit breaker.
func (n *node) observe(start time.Time, err error) {
	n.requests.Add(1)
	if err != nil && degradable(err) {
		n.failures.Add(1)
		n.healthy.Store(false)
		if errors.Is(err, context.Canceled) {
			n.brk.recordNeutral()
		} else {
			n.brk.record(true)
		}
		return
	}
	n.rtt.record(time.Since(start))
	n.healthy.Store(true)
	n.brk.record(false)
}

// transportFault evaluates the router/transport failpoint for one per-node
// attempt: an injected error or connection drop is observed like a real
// transport failure (it trips the breaker and triggers failover).
func (n *node) transportFault(ctx context.Context, start time.Time) error {
	err := failpoint.InjectCtx(ctx, fpTransport)
	if err != nil {
		n.observe(start, err)
		return &nodeError{node: n.base, err: err}
	}
	return nil
}

// fpTransport is the failpoint in front of every per-node data-path call.
const fpTransport = "router/transport"

// group is one replica set: Replication nodes holding identical data.
type group struct {
	index    int
	replicas []*node
	rr       atomic.Uint64 // primary-replica rotation
	// globals maps the group's node-local trajectory IDs (dense, assigned
	// by the nodes in load order) to router-global IDs. Guarded by
	// Router.mu.
	globals []int
}

// place locates one global trajectory ID: which group holds it, under
// which node-local ID.
type place struct {
	group int32
	local int32
}

// Router is the coordinator over a simsubd fleet. All methods are safe for
// concurrent use.
type Router struct {
	cfg    Config
	groups []*group
	nodes  []*node // flat, configuration order
	ring   ring

	loadMu     sync.Mutex   // serializes loads: placement must commit in order
	mu         sync.RWMutex // guards placements and group.globals
	placements []place

	queries         atomic.Int64
	hedges          atomic.Int64
	retries         atomic.Int64
	partial         atomic.Int64
	bounds          atomic.Int64
	deadlineRejects atomic.Int64
}

// New builds a Router over the configured fleet. It performs no I/O; the
// first load or query contacts the nodes.
func New(cfg Config) (*Router, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	r := &Router{cfg: cfg}
	nGroups := len(cfg.Nodes) / cfg.Replication
	for gi := 0; gi < nGroups; gi++ {
		g := &group{index: gi}
		for ri := 0; ri < cfg.Replication; ri++ {
			base := cfg.Nodes[gi*cfg.Replication+ri]
			n := &node{base: base, group: gi, rtt: newLatencyTracker(),
				brk: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)}
			n.healthy.Store(true)
			retry := cfg.Retry
			retry.OnRetry = func(error) {
				r.retries.Add(1)
				n.retries.Add(1)
			}
			opts := []client.Option{client.WithRetry(retry)}
			if cfg.HTTPClient != nil {
				opts = append(opts, client.WithHTTPClient(cfg.HTTPClient))
			}
			n.c = client.New(base, opts...)
			g.replicas = append(g.replicas, n)
			r.nodes = append(r.nodes, n)
		}
		r.groups = append(r.groups, g)
	}
	r.ring = buildRing(nGroups, cfg.VNodes)
	return r, nil
}

// Len returns the number of trajectories the router has placed.
func (r *Router) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.placements)
}

// groupCounts snapshots the per-group trajectory counts.
func (r *Router) groupCounts() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	counts := make([]int, len(r.groups))
	for i, g := range r.groups {
		counts[i] = len(g.globals)
	}
	return counts
}

// toGlobal rewrites a node-local match into router-global ID space.
func (r *Router) toGlobal(g *group, m engine.Match) (engine.Match, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if m.TrajID < 0 || m.TrajID >= len(g.globals) {
		return m, api.Errorf(api.CodeInternal,
			"node of group %d answered with unknown local trajectory id %d (nodes must be dedicated to the router)", g.index, m.TrajID)
	}
	m.TrajID = g.globals[m.TrajID]
	return m, nil
}

// degradable reports whether a per-node failure may be survived by
// degrading to a partial answer (and is worth failing over to a replica):
// timeouts, overload, transport and internal failures are; deterministic
// typed rejections are not — every node would reject identically, so the
// first rejection is the query's answer. A node's deadline_exceeded is in
// the deterministic class: replicas hold the same corpus and similar cost
// estimates, so failing over would burn the rest of the budget on an
// attempt that is equally doomed.
func degradable(err error) bool {
	var abort *abortError
	if errors.As(err, &abort) {
		return false
	}
	var ae *api.Error
	if errors.As(err, &ae) {
		switch ae.Code {
		case api.CodeInvalidArgument, api.CodeNotFound, api.CodeTooLarge, api.CodeDeadlineExceeded:
			return false
		}
	}
	return true
}

// abortError wraps an error that must abort the whole call unchanged (a
// stream consumer's emit error), exempting it from failover and
// degradation.
type abortError struct{ err error }

func (e *abortError) Error() string { return e.err.Error() }

// hedgeDelay is how long the primary replica gets before a hedge launches:
// the node's recent RTT quantile, floored at HedgeMin (which is the whole
// delay until the node has samples).
func (r *Router) hedgeDelay(n *node) time.Duration {
	d := n.rtt.quantile(r.cfg.HedgeQuantile)
	if d < r.cfg.HedgeMin {
		d = r.cfg.HedgeMin
	}
	return d
}

// attemptCtx bounds one per-node attempt by NodeTimeout.
func (r *Router) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.cfg.NodeTimeout > 0 {
		return context.WithTimeout(ctx, r.cfg.NodeTimeout)
	}
	return context.WithCancel(ctx)
}

// groupDo runs fn against g's replicas until one answers: the primary
// (rotating per call) immediately, the next replica as a hedged duplicate
// once the primary's latency-quantile delay expires (when hedging is on),
// and further replicas on failure. The first success wins and cancels the
// rest. Non-degradable errors — deterministic rejections and emit aborts —
// return immediately: no replica would answer differently. Replicas whose
// circuit breaker rejects them are skipped — unless every replica is
// ejected, in which case the primary is probed anyway (a request is the
// only signal that can close a breaker again).
func groupDo[T any](ctx context.Context, r *Router, g *group, hedge bool, fn func(context.Context, *node) (T, error)) (T, error) {
	var zero T
	start := int(g.rr.Add(1)-1) % len(g.replicas)
	order := make([]*node, 0, len(g.replicas))
	for i := range g.replicas {
		order = append(order, g.replicas[(start+i)%len(g.replicas)])
	}
	hedge = hedge && !r.cfg.NoHedge && len(order) > 1

	if !hedge {
		var lastErr error
		attempted := 0
		for forced := false; ; forced = true {
			for _, n := range order {
				if !forced && !n.brk.allow() {
					continue
				}
				attempted++
				actx, cancel := r.attemptCtx(ctx)
				v, err := fn(actx, n)
				cancel()
				if err == nil {
					return v, nil
				}
				lastErr = err
				if !degradable(err) || ctx.Err() != nil {
					return zero, err
				}
			}
			if attempted > 0 || forced {
				break
			}
		}
		return zero, lastErr
	}

	type outcome struct {
		v   T
		err error
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, len(order))
	launched := 0
	next := 0
	launch := func(n *node, hedged bool) {
		launched++
		if hedged {
			r.hedges.Add(1)
			n.hedges.Add(1)
		}
		go func() {
			actx, acancel := r.attemptCtx(cctx)
			defer acancel()
			v, err := fn(actx, n)
			ch <- outcome{v, err}
		}()
	}
	// launchNext starts the next replica whose breaker admits it, or
	// reports nil when none is left.
	launchNext := func(hedged bool) *node {
		for next < len(order) {
			n := order[next]
			next++
			if n.brk.allow() {
				launch(n, hedged)
				return n
			}
		}
		return nil
	}
	primary := launchNext(false)
	if primary == nil {
		primary = order[0] // every breaker is open: forced probe
		launch(primary, false)
	}
	timer := time.NewTimer(r.hedgeDelay(primary))
	defer timer.Stop()
	var lastErr error
	returned := 0
	for {
		select {
		case <-timer.C:
			launchNext(true)
		case o := <-ch:
			returned++
			if o.err == nil {
				return o.v, nil
			}
			lastErr = o.err
			// an attempt canceled because a sibling won can't reach here
			// (the winner already returned), so a non-degradable error is
			// a real rejection — unless the parent context expired
			if !degradable(o.err) && ctx.Err() == nil {
				return zero, o.err
			}
			if launchNext(false) == nil && returned == launched {
				return zero, lastErr
			}
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// Load validates, places and bulk-loads trajectories across the fleet:
// each trajectory is consistent-hashed to a replica group, loaded to every
// replica of that group, and assigned a router-global ID (returned in
// input order, dense in load order — the same IDs a single engine would
// assign). Loads are serialized; a failed replica fails the whole load and
// may leave already-loaded nodes ahead of the router's committed mapping,
// which the error reports.
func (r *Router) Load(ctx context.Context, wts []api.Trajectory) (*api.LoadResponse, error) {
	if len(wts) == 0 {
		return nil, api.Errorf(api.CodeInvalidArgument, "no trajectories in request")
	}
	ts := make([]traj.Trajectory, len(wts))
	for i, wt := range wts {
		t, aerr := wt.ToTraj()
		if aerr != nil {
			return nil, api.Errorf(api.CodeInvalidArgument, "trajectory %d: %s", i, aerr.Message)
		}
		ts[i] = t
	}

	r.loadMu.Lock()
	defer r.loadMu.Unlock()

	base := r.Len()
	ids := make([]int, len(wts))
	buckets := make([][]api.Trajectory, len(r.groups))
	newPlaces := make([]place, len(wts))
	counts := r.groupCounts()
	for i := range wts {
		gi := r.ring.locate(placementKey(ts[i]))
		ids[i] = base + i
		newPlaces[i] = place{group: int32(gi), local: int32(counts[gi] + len(buckets[gi]))}
		buckets[gi] = append(buckets[gi], wts[i])
	}

	// every replica of every affected group loads its bucket; replicas of a
	// group must agree on the assigned local IDs or the fleet is not
	// dedicated to this router
	var wg sync.WaitGroup
	errs := make([]error, len(r.groups))
	for gi, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(gi int, bucket []api.Trajectory) {
			defer wg.Done()
			errs[gi] = r.loadGroup(ctx, r.groups[gi], bucket, counts[gi])
		}(gi, bucket)
	}
	wg.Wait()
	for gi, err := range errs {
		if err != nil {
			return nil, api.Errorf(api.CodeInternal,
				"loading shard group %d: %v (the load was not committed; some nodes may hold it — reconcile or restart the fleet)", gi, err)
		}
	}

	r.mu.Lock()
	r.placements = append(r.placements, newPlaces...)
	for i := range wts {
		// local IDs are dense per group and assigned in bucket order, so
		// this append lands exactly at index newPlaces[i].local
		g := r.groups[newPlaces[i].group]
		g.globals = append(g.globals, base+i)
	}
	r.mu.Unlock()
	return &api.LoadResponse{Loaded: len(ids), IDs: ids, Total: base + len(ids)}, nil
}

// loadGroup ships one group's bucket to all of its replicas and checks
// they assigned the expected dense local IDs.
func (r *Router) loadGroup(ctx context.Context, g *group, bucket []api.Trajectory, wantBase int) error {
	var wg sync.WaitGroup
	errs := make([]error, len(g.replicas))
	for ri, n := range g.replicas {
		wg.Add(1)
		go func(ri int, n *node) {
			defer wg.Done()
			start := time.Now()
			if ferr := n.transportFault(ctx, start); ferr != nil {
				errs[ri] = ferr
				return
			}
			resp, err := n.c.Load(ctx, bucket)
			n.observe(start, err)
			if err != nil {
				errs[ri] = fmt.Errorf("node %s: %w", n.base, err)
				return
			}
			for j, lid := range resp.IDs {
				if lid != wantBase+j {
					errs[ri] = fmt.Errorf("node %s assigned local id %d, want %d: node is not dedicated to this router", n.base, lid, wantBase+j)
					return
				}
			}
		}(ri, n)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// GetTrajectory fetches a stored trajectory by router-global ID from the
// group holding it.
func (r *Router) GetTrajectory(ctx context.Context, id int) (*api.TrajectoryRecord, error) {
	r.mu.RLock()
	if id < 0 || id >= len(r.placements) {
		r.mu.RUnlock()
		return nil, api.Errorf(api.CodeNotFound, "no trajectory with id %d", id)
	}
	pl := r.placements[id]
	r.mu.RUnlock()
	g := r.groups[pl.group]
	rec, err := groupDo(ctx, r, g, true, func(ctx context.Context, n *node) (*api.TrajectoryRecord, error) {
		start := time.Now()
		if ferr := n.transportFault(ctx, start); ferr != nil {
			return nil, ferr
		}
		rec, err := n.c.GetTrajectory(ctx, int(pl.local))
		n.observe(start, err)
		return rec, err
	})
	if err != nil {
		return nil, api.FromError(err)
	}
	rec.ID = id
	return rec, nil
}
