package router

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"simsub/api"
	"simsub/client"
	"simsub/internal/engine"
	"simsub/internal/geo"
	"simsub/internal/nn"
	"simsub/internal/rl"
	"simsub/internal/server"
	"simsub/internal/traj"
)

func randTraj(rng *rand.Rand, n int) traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64() * 0.3
		y += rng.NormFloat64() * 0.3
		pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
	}
	return traj.New(pts...)
}

func randSet(rng *rand.Rand, n int) []traj.Trajectory {
	ts := make([]traj.Trajectory, n)
	for i := range ts {
		ts[i] = randTraj(rng, rng.Intn(14)+8)
	}
	return ts
}

func toWire(ts []traj.Trajectory) []api.Trajectory {
	out := make([]api.Trajectory, len(ts))
	for i, t := range ts {
		out[i] = api.FromTraj(t)
	}
	return out
}

// testNode is one fleet member: a real engine behind a real HTTP server.
type testNode struct {
	eng *engine.Engine
	h   *server.Server
	srv *httptest.Server
}

func startFleet(t *testing.T, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := range nodes {
		// ScanAll keeps the candidate set full (as the engine's own
		// equivalence tests do) so rankings fill K and bounds have teeth;
		// spatial-index pruning is exercised by the engine tests.
		eng := engine.New(engine.Config{Shards: 2, CacheSize: 64, Index: engine.ScanAll})
		h := server.New(eng, server.Options{})
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		nodes[i] = &testNode{eng: eng, h: h, srv: srv}
	}
	return nodes
}

func fleetURLs(nodes []*testNode) []string {
	urls := make([]string, len(nodes))
	for i, n := range nodes {
		urls[i] = n.srv.URL
	}
	return urls
}

func newTestRouter(t *testing.T, nodes []*testNode, mut func(*Config)) *Router {
	t.Helper()
	cfg := Config{Nodes: fleetURLs(nodes)}
	if mut != nil {
		mut(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustLoad(t *testing.T, r *Router, ts []traj.Trajectory) {
	t.Helper()
	resp, err := r.Load(context.Background(), toWire(ts))
	if err != nil {
		t.Fatalf("router load: %v", err)
	}
	for i, id := range resp.IDs {
		if id != i {
			t.Fatalf("router assigned global id %d to trajectory %d; ids must be dense in load order", id, i)
		}
	}
}

// TestRouterRankingsMatchSingleEngine is the distributed-correctness
// anchor: a router over three shard nodes must answer every spec with the
// byte-identical ranking a single engine holding the same corpus produces,
// across measures and algorithms, with bound propagation both on and off.
func TestRouterRankingsMatchSingleEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ts := randSet(rng, 1000)
	queries := []traj.Trajectory{randTraj(rng, 6), randTraj(rng, 9)}

	single := engine.New(engine.Config{Shards: 4, Index: engine.ScanAll})
	single.Add(ts)

	for _, propagate := range []bool{true, false} {
		nodes := startFleet(t, 3)
		r := newTestRouter(t, nodes, func(c *Config) { c.NoBoundPropagation = !propagate })
		mustLoad(t, r, ts)
		for _, measure := range []string{"dtw", "frechet"} {
			for _, algo := range []string{"exacts", "pss", "pos"} {
				for qi, q := range queries {
					spec := api.QuerySpec{Query: api.FromTraj(q), K: 25, Measure: measure, Algorithm: algo}
					want := single.QueryOne(context.Background(), spec)
					got := r.QueryOne(context.Background(), spec)
					if want.Error != nil || got.Error != nil {
						t.Fatalf("%s/%s q%d propagate=%v: errors %v / %v", measure, algo, qi, propagate, want.Error, got.Error)
					}
					if got.Partial != nil {
						t.Fatalf("%s/%s q%d: unexpected partial %+v", measure, algo, qi, got.Partial)
					}
					if !reflect.DeepEqual(got.Matches, want.Matches) || got.Total != want.Total {
						t.Fatalf("%s/%s q%d propagate=%v: router ranking diverged from single engine\ngot  %+v\nwant %+v",
							measure, algo, qi, propagate, got.Matches, want.Matches)
					}
				}
			}
		}
		if propagate {
			st, err := r.Stats(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if st.Router.BoundsPropagated == 0 {
				t.Error("multi-group scatter propagated no bounds")
			}
			if st.Router.Queries == 0 || st.Router.Groups != 3 {
				t.Errorf("router stats off: %+v", st.Router)
			}
		}
	}
}

// TestRouterSpecDimensions checks the global handling of the spec
// dimensions the router must apply after the merge — paging, distinct
// collapsing over cross-load duplicates, spatial filters — and the
// per-node k clamp when a group holds fewer than k trajectories.
func TestRouterSpecDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	base := randSet(rng, 60)
	ts := append(append([]traj.Trajectory{}, base...), base...) // every trajectory loaded twice

	single := engine.New(engine.Config{Shards: 4, Index: engine.ScanAll})
	single.Add(ts)
	nodes := startFleet(t, 3)
	r := newTestRouter(t, nodes, nil)
	mustLoad(t, r, ts)

	q := api.FromTraj(randTraj(rng, 6))
	f := &api.Rect{MinX: -100, MinY: -100, MaxX: 100, MaxY: 100}
	specs := []api.QuerySpec{
		{Query: q, K: 20, Offset: 3, Limit: 5},
		{Query: q, K: 20, Distinct: true},
		{Query: q, K: 10, Filter: f, Algorithm: "pss"},
		{Query: q, K: 120}, // exceeds every group's share: per-node k clamps
	}
	resp, err := r.Query(context.Background(), api.Query{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	wantResp, err := single.Query(context.Background(), api.Query{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		got, want := resp.Results[i], wantResp.Results[i]
		if got.Error != nil || want.Error != nil {
			t.Fatalf("spec %d: errors %v / %v", i, got.Error, want.Error)
		}
		if !reflect.DeepEqual(got.Matches, want.Matches) || got.Total != want.Total {
			t.Errorf("spec %d: router diverged\ngot  %+v (total %d)\nwant %+v (total %d)",
				i, got.Matches, got.Total, want.Matches, want.Total)
		}
	}
}

// TestRouterStreamMatchesUnary checks the streamed scatter: the summary
// must carry the same authoritative ranking as the unary path (and the
// single engine), with provisional records preceding it.
func TestRouterStreamMatchesUnary(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	ts := randSet(rng, 150)
	single := engine.New(engine.Config{Shards: 4, Index: engine.ScanAll})
	single.Add(ts)
	nodes := startFleet(t, 3)
	r := newTestRouter(t, nodes, nil)
	mustLoad(t, r, ts)

	spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 7)), K: 12}
	want := single.QueryOne(context.Background(), spec)
	var provisional []api.Match
	sum, err := r.QueryStream(context.Background(), spec, func(m api.Match) error {
		provisional = append(provisional, m)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum.Matches, want.Matches) || sum.Total != want.Total {
		t.Fatalf("stream summary diverged from single engine\ngot  %+v\nwant %+v", sum.Matches, want.Matches)
	}
	if sum.Partial != nil {
		t.Fatalf("unexpected partial: %+v", sum.Partial)
	}
	if len(provisional) == 0 || sum.Emitted != len(provisional) {
		t.Fatalf("emitted %d provisional records, summary says %d", len(provisional), sum.Emitted)
	}
	// every final match must have been provisionally emitted at some point
	seen := map[api.Match]bool{}
	for _, m := range provisional {
		seen[m] = true
	}
	for _, m := range sum.Matches {
		if !seen[m] {
			t.Errorf("final match %+v never streamed provisionally", m)
		}
	}

	// an emit error aborts the stream and returns unchanged
	boom := errors.New("boom")
	if _, err := r.QueryStream(context.Background(), spec, func(api.Match) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("emit error came back as %v, want boom", err)
	}
}

// TestRouterPartialOnDeadNode kills one of two shard groups and checks the
// query degrades to a typed partial answer — the exact ranking over the
// surviving group's corpus — instead of failing.
func TestRouterPartialOnDeadNode(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	ts := randSet(rng, 120)
	nodes := startFleet(t, 2)
	r := newTestRouter(t, nodes, func(c *Config) {
		c.Retry = client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	})
	mustLoad(t, r, ts)

	nodes[0].srv.Close()
	spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 6)), K: 10}
	res := r.QueryOne(context.Background(), spec)
	if res.Error != nil {
		t.Fatalf("dead shard group failed the query: %v", res.Error)
	}
	if res.Partial == nil {
		t.Fatal("dead shard group produced no partial summary")
	}
	if res.Partial.NodesTotal != 2 || res.Partial.NodesFailed != 1 || len(res.Partial.Failures) != 1 {
		t.Fatalf("partial summary off: %+v", res.Partial)
	}
	if res.Partial.Failures[0].Node != nodes[0].srv.URL {
		t.Errorf("partial blames %q, want %q", res.Partial.Failures[0].Node, nodes[0].srv.URL)
	}

	// the degraded answer must be the exact ranking over the survivor
	survivor := engine.New(engine.Config{Shards: 2, Index: engine.ScanAll})
	r.mu.RLock()
	var kept []traj.Trajectory
	for _, gid := range r.groups[1].globals {
		kept = append(kept, ts[gid])
	}
	r.mu.RUnlock()
	survivor.Add(kept)
	wantLocal := survivor.QueryOne(context.Background(), spec)
	if len(res.Matches) != len(wantLocal.Matches) {
		t.Fatalf("degraded ranking has %d matches, survivor engine %d", len(res.Matches), len(wantLocal.Matches))
	}
	for i := range res.Matches {
		got, want := res.Matches[i], wantLocal.Matches[i]
		if got.Dist != want.Dist || got.Start != want.Start || got.End != want.End {
			t.Errorf("rank %d: degraded %+v vs survivor %+v", i, got, want)
		}
	}

	st, err := r.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Router.PartialResults == 0 {
		t.Error("partial answer not counted in router stats")
	}
	if st.Router.Nodes[0].Healthy {
		t.Error("dead node still marked healthy after failed contact")
	}

	// with every group dead the query must fail, not answer empty
	nodes[1].srv.Close()
	res = r.QueryOne(context.Background(), spec)
	if res.Error == nil {
		t.Fatal("query answered with the whole fleet dead")
	}
	if err := r.Health(context.Background()); err == nil {
		t.Fatal("health reported ok with the whole fleet dead")
	}
}

// TestRouterReplicaFailover checks replication: with two replicas per
// group, a dead replica costs nothing — queries fail over and stay
// complete (no partial), and both replicas hold every trajectory.
func TestRouterReplicaFailover(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	ts := randSet(rng, 80)
	nodes := startFleet(t, 2)
	r := newTestRouter(t, nodes, func(c *Config) {
		c.Replication = 2
		c.NoHedge = true
		c.Retry = client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	})
	mustLoad(t, r, ts)
	if n0, n1 := nodes[0].eng.Len(), nodes[1].eng.Len(); n0 != len(ts) || n1 != len(ts) {
		t.Fatalf("replicas hold %d / %d trajectories, want %d each", n0, n1, len(ts))
	}

	nodes[0].srv.Close()
	spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 6)), K: 8}
	for i := 0; i < 3; i++ { // rotation makes the dead replica primary sometimes
		res := r.QueryOne(context.Background(), spec)
		if res.Error != nil {
			t.Fatalf("query %d failed despite a live replica: %v", i, res.Error)
		}
		if res.Partial != nil {
			t.Fatalf("query %d degraded despite a live replica: %+v", i, res.Partial)
		}
	}
	if err := r.Health(context.Background()); err != nil {
		t.Fatalf("health failed with one live replica per group: %v", err)
	}
}

// TestRouterFailsOverRecoveringNode checks the durability follow-through:
// a node replaying its persistent log answers data-path requests with 503
// overloaded, which the router must treat as degradable — failing over to
// the ready replica with complete (non-partial) answers — while fleet
// stats surface the node's self-reported "recovering" state.
func TestRouterFailsOverRecoveringNode(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ts := randSet(rng, 80)
	nodes := startFleet(t, 2)
	r := newTestRouter(t, nodes, func(c *Config) {
		c.Replication = 2
		c.NoHedge = true
		c.Retry = client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	})
	mustLoad(t, r, ts)

	nodes[0].h.SetReady(false) // node 0 is now "replaying its log"
	spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 6)), K: 8}
	for i := 0; i < 3; i++ { // rotation makes the recovering replica primary sometimes
		res := r.QueryOne(context.Background(), spec)
		if res.Error != nil {
			t.Fatalf("query %d failed despite a ready replica: %v", i, res.Error)
		}
		if res.Partial != nil {
			t.Fatalf("query %d degraded despite a ready replica: %+v", i, res.Partial)
		}
	}

	st, err := r.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Router.Nodes[0].State; got != api.StateRecovering {
		t.Errorf("recovering node reports state %q, want %q", got, api.StateRecovering)
	}
	if got := st.Router.Nodes[1].State; got != api.StateReady {
		t.Errorf("ready node reports state %q, want %q", got, api.StateReady)
	}

	// recovery finishes: the node serves again and stats flip back
	nodes[0].h.SetReady(true)
	if res := r.QueryOne(context.Background(), spec); res.Error != nil || res.Partial != nil {
		t.Fatalf("query after recovery: err=%v partial=%+v", res.Error, res.Partial)
	}
	st, err = r.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Router.Nodes[0].State; got != api.StateReady {
		t.Errorf("recovered node reports state %q, want %q", got, api.StateReady)
	}
}

// TestRouterHedgedRequests wraps one replica in a long delay and checks
// the hedge timer rescues the query via the other replica, fast.
func TestRouterHedgedRequests(t *testing.T) {
	eng0 := engine.New(engine.Config{Shards: 2, Index: engine.ScanAll})
	eng1 := engine.New(engine.Config{Shards: 2, Index: engine.ScanAll})
	h0 := server.New(eng0, server.Options{})
	delay := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, rq *http.Request) {
		if rq.URL.Path != "/v1/trajectories" { // loads pass; queries hang until released
			select {
			case <-delay:
			case <-rq.Context().Done():
				return
			}
		}
		h0.ServeHTTP(w, rq)
	}))
	defer slow.Close()
	defer close(delay)
	fast := httptest.NewServer(server.New(eng1, server.Options{}))
	defer fast.Close()

	r, err := New(Config{
		Nodes:       []string{slow.URL, fast.URL},
		Replication: 2,
		HedgeMin:    5 * time.Millisecond,
		NodeTimeout: 2 * time.Second, // the stalled replica must not stall best-effort fan-outs
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	ts := randSet(rng, 40)
	mustLoad(t, r, ts)

	spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 6)), K: 5}
	start := time.Now()
	res := r.QueryOne(context.Background(), spec)
	if res.Error != nil {
		t.Fatalf("hedged query failed: %v", res.Error)
	}
	if res.Partial != nil {
		t.Fatalf("hedged query degraded: %+v", res.Partial)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("hedge did not rescue the query (took %v)", took)
	}
	if r.hedges.Load() == 0 {
		t.Fatal("no hedge launched against the stalled primary")
	}
	st, err := r.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Router.Hedges == 0 {
		t.Error("hedges missing from router stats")
	}
}

// TestRouterBoundPropagationPrunes checks the wire bound does real work on
// the remote shards: after a propagated scatter, the non-pilot nodes must
// report lb_skipped > 0 — candidates dropped against the shipped global
// k-th-best before any dynamic programming ran.
func TestRouterBoundPropagationPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	ts := randSet(rng, 600)
	nodes := startFleet(t, 3)
	r := newTestRouter(t, nodes, nil)
	mustLoad(t, r, ts)

	spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 6)), K: 3, Algorithm: "pss"}
	if res := r.QueryOne(context.Background(), spec); res.Error != nil {
		t.Fatal(res.Error)
	}
	if r.bounds.Load() == 0 {
		t.Fatal("scatter shipped no bound")
	}
	var skipped int64
	for _, n := range nodes {
		skipped += n.eng.Stats().LBSkipped
	}
	if skipped == 0 {
		t.Error("no shard pruned against the propagated bound (lb_skipped == 0 fleet-wide)")
	}
}

// TestRouterPolicyBroadcast swaps a learned-search policy through the
// router and checks every node serves it, fingerprints agree, and a
// diverged fleet is detected.
func TestRouterPolicyBroadcast(t *testing.T) {
	nodes := startFleet(t, 3)
	r := newTestRouter(t, nodes, nil)

	if _, err := r.Policy(context.Background()); err == nil {
		t.Fatal("policy reported before any was registered")
	}

	p := testPolicy(1, 0, true)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	req := api.PolicySwapRequest{PolicyB64: base64.StdEncoding.EncodeToString(buf.Bytes())}
	info, err := r.SwapPolicy(context.Background(), req)
	if err != nil {
		t.Fatalf("broadcast swap: %v", err)
	}
	if info.Fingerprint == "" {
		t.Fatal("swap returned no fingerprint")
	}
	for i, n := range nodes {
		ni, ok := n.eng.Policy()
		if !ok || ni.Fingerprint != info.Fingerprint {
			t.Fatalf("node %d does not serve the broadcast policy (%+v)", i, ni)
		}
	}
	got, err := r.Policy(context.Background())
	if err != nil || got.Fingerprint != info.Fingerprint {
		t.Fatalf("router policy readback: %+v, %v", got, err)
	}

	// diverge one node behind the router's back: the readback must refuse
	// to pretend the fleet is consistent
	if _, err := nodes[2].eng.SetPolicy(testPolicy(0, 2, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Policy(context.Background()); err == nil {
		t.Fatal("diverged fleet not detected")
	}

	// swap requests must name exactly one source
	if _, err := r.SwapPolicy(context.Background(), api.PolicySwapRequest{}); err == nil {
		t.Fatal("empty swap request accepted")
	}
}

// testPolicy builds a deterministic constant-action policy (the same
// construction as the engine and core tests).
func testPolicy(action, k int, useSuffix bool) *rl.Policy {
	dim := rl.StateDim(useSuffix)
	net := nn.NewMLP([]int{dim, 2, 2 + k}, []nn.Activation{nn.ReLU, nn.Sigmoid}, rand.New(rand.NewSource(1)))
	for _, l := range net.Layers {
		for i := range l.W.W {
			l.W.W[i] = 0
		}
		for i := range l.B.W {
			l.B.W[i] = -5
		}
	}
	net.Layers[len(net.Layers)-1].B.W[action] = 5
	return &rl.Policy{Net: net, K: k, UseSuffix: useSuffix, SimplifyState: k > 0}
}

// TestRouterGetTrajectory checks global-ID translation round-trips.
func TestRouterGetTrajectory(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	ts := randSet(rng, 50)
	nodes := startFleet(t, 3)
	r := newTestRouter(t, nodes, nil)
	mustLoad(t, r, ts)

	for _, id := range []int{0, 7, 23, 49} {
		rec, err := r.GetTrajectory(context.Background(), id)
		if err != nil {
			t.Fatalf("fetch %d: %v", id, err)
		}
		if rec.ID != id {
			t.Fatalf("fetch %d returned id %d", id, rec.ID)
		}
		got, aerr := rec.Trajectory.ToTraj()
		if aerr != nil {
			t.Fatal(aerr)
		}
		if !got.Equal(ts[id]) {
			t.Fatalf("fetch %d returned the wrong trajectory", id)
		}
	}
	if _, err := r.GetTrajectory(context.Background(), 50); err == nil {
		t.Fatal("out-of-range id fetched")
	}
	var ae *api.Error
	if _, err := r.GetTrajectory(context.Background(), -1); !errors.As(err, &ae) || ae.Code != api.CodeNotFound {
		t.Fatalf("negative id: %v, want typed not_found", err)
	}
}

// TestRouterValidation checks the router-level wire checks reject bad
// specs and configs with typed errors before any node is contacted.
func TestRouterValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := New(Config{Nodes: []string{"a", "b", "c"}, Replication: 2}); err == nil {
		t.Fatal("replication 2 over 3 nodes accepted")
	}

	nodes := startFleet(t, 2)
	r := newTestRouter(t, nodes, nil)
	rng := rand.New(rand.NewSource(50))
	mustLoad(t, r, randSet(rng, 10))
	q := api.FromTraj(randTraj(rng, 5))

	neg := -1.0
	for name, spec := range map[string]api.QuerySpec{
		"zero k":         {Query: q},
		"k beyond store": {Query: q, K: 11},
		"bad offset":     {Query: q, K: 3, Offset: -1},
		"bad limit":      {Query: q, K: 3, Limit: -2},
		"negative bound": {Query: q, K: 3, Bound: &neg},
		"empty query":    {K: 3},
	} {
		res := r.QueryOne(context.Background(), spec)
		if res.Error == nil || res.Error.Code != api.CodeInvalidArgument {
			t.Errorf("%s: error %+v, want typed invalid_argument", name, res.Error)
		}
	}
	// unknown measures are the nodes' call — still a deterministic typed
	// rejection, never a partial
	res := r.QueryOne(context.Background(), api.QuerySpec{Query: q, K: 3, Measure: "nope"})
	if res.Error == nil || res.Error.Code != api.CodeInvalidArgument || res.Partial != nil {
		t.Errorf("unknown measure: %+v", res)
	}
	if _, err := r.Query(context.Background(), api.Query{}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := r.Load(context.Background(), nil); err == nil {
		t.Error("empty load accepted")
	}
}
