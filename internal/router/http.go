package router

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"simsub/api"
	"simsub/internal/server"
)

// HandlerOptions tunes the router's HTTP front end. The zero value is
// usable.
type HandlerOptions struct {
	// MaxTimeout caps every request's search time (default 60s — a fleet
	// fan-out tolerates more than a single node). A request may ask for
	// less via timeout_ms but never for more.
	MaxTimeout time.Duration
	// MaxBodyBytes limits request body size (default 64 MiB).
	MaxBodyBytes int64
	// MaxBatchSpecs caps the specs per /v2/query batch (default 256).
	MaxBatchSpecs int
	// EnableFailpoints exposes POST/GET /v2/admin/failpoints for arming the
	// router's own fault sites (router/transport). Off by default: fault
	// injection is a test/chaos facility, never enabled in production.
	EnableFailpoints bool
}

func (o *HandlerOptions) fill() {
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 60 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.MaxBatchSpecs <= 0 {
		o.MaxBatchSpecs = 256
	}
}

// Handler is the HTTP front end of a Router: the same wire surface as a
// single simsubd (package internal/server), so a client.Client pointed at
// a router cannot tell it from a node. It implements http.Handler.
type Handler struct {
	r     *Router
	opts  HandlerOptions
	mux   *http.ServeMux
	start time.Time
}

// NewHandler builds the HTTP tier over a Router.
func NewHandler(r *Router, opts HandlerOptions) *Handler {
	opts.fill()
	h := &Handler{r: r, opts: opts, mux: http.NewServeMux(), start: time.Now()}
	h.mux.HandleFunc("POST /v1/trajectories", h.handleLoad)
	h.mux.HandleFunc("GET /v1/stats", h.handleStats)
	h.mux.HandleFunc("POST /v2/query", h.handleQuery)
	h.mux.HandleFunc("POST /v2/query/stream", h.handleQueryStream)
	h.mux.HandleFunc("GET /v2/trajectories/{id}", h.handleGetTrajectory)
	h.mux.HandleFunc("GET /v2/stats", h.handleStats)
	h.mux.HandleFunc("POST /v2/admin/policy", h.handlePolicySwap)
	h.mux.HandleFunc("GET /v2/admin/policy", h.handlePolicyGet)
	h.mux.HandleFunc("POST /v2/admin/encoder", h.handleEncoderSwap)
	h.mux.HandleFunc("GET /v2/admin/encoder", h.handleEncoderGet)
	h.mux.HandleFunc("GET /healthz", h.handleHealthz)
	if opts.EnableFailpoints {
		h.mux.Handle("/v2/admin/failpoints", server.FailpointsHandler())
	}
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)
	h.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr renders the typed error envelope with its mapped HTTP status.
// Like the node server, every overloaded (503) response carries a
// Retry-After header: the error's drain-rate-derived hint when it has one,
// a conservative 1s otherwise.
func writeErr(w http.ResponseWriter, ae *api.Error) {
	if ae.Code == api.CodeOverloaded {
		if ae.RetryAfterMS <= 0 {
			cp := *ae
			cp.RetryAfterMS = 1000
			ae = &cp
		}
		w.Header().Set("Retry-After", strconv.Itoa((ae.RetryAfterMS+999)/1000))
	}
	writeJSON(w, ae.HTTPStatus(), api.ErrorResponse{Err: *ae})
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeErr(w, api.Errorf(api.CodeTooLarge, "request body exceeds %d bytes", maxErr.Limit))
			return false
		}
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "bad request body: %v", err))
		return false
	}
	return true
}

// requestContext derives the fan-out context: the client connection's
// context bounded by min(timeout_ms, MaxTimeout).
func (h *Handler) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := h.opts.MaxTimeout
	if timeoutMS > 0 && int64(timeoutMS) < int64(d/time.Millisecond) {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

func (h *Handler) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req api.LoadRequest
	if !decode(w, r, &req) {
		return
	}
	ctx, cancel := h.requestContext(r, 0)
	defer cancel()
	resp, err := h.r.Load(ctx, req.Trajectories)
	if err != nil {
		writeErr(w, api.FromError(err))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req api.Query
	if !decode(w, r, &req) {
		return
	}
	if len(req.Specs) == 0 {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "query batch has no specs"))
		return
	}
	if len(req.Specs) > h.opts.MaxBatchSpecs {
		writeErr(w, api.Errorf(api.CodeInvalidArgument,
			"batch of %d specs exceeds the limit of %d", len(req.Specs), h.opts.MaxBatchSpecs))
		return
	}
	ctx, cancel := h.requestContext(r, req.TimeoutMS)
	defer cancel()
	req.TimeoutMS = 0 // already applied (and capped) by requestContext
	resp, err := h.r.Query(ctx, req)
	if err != nil {
		writeErr(w, api.FromError(err))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQueryStream mirrors the node server's NDJSON protocol: provisional
// match records as they pass the router's global top-k gate, then the
// summary with the authoritative merged ranking (or a trailing error
// record after a mid-stream failure).
func (h *Handler) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var req api.StreamQuery
	if !decode(w, r, &req) {
		return
	}
	ctx, cancel := h.requestContext(r, req.TimeoutMS)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wrote := false
	emit := func(m api.Match) error {
		if err := enc.Encode(api.StreamEvent{Match: &m}); err != nil {
			return err
		}
		wrote = true
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	sum, err := h.r.QueryStream(ctx, req.Spec, emit)
	if err != nil {
		ae := api.FromError(err)
		if !wrote {
			writeErr(w, ae)
			return
		}
		_ = enc.Encode(api.StreamEvent{Error: ae})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	_ = enc.Encode(api.StreamEvent{Summary: sum})
	if flusher != nil {
		flusher.Flush()
	}
}

func (h *Handler) handleGetTrajectory(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "trajectory id %q is not an integer", r.PathValue("id")))
		return
	}
	ctx, cancel := h.requestContext(r, 0)
	defer cancel()
	rec, terr := h.r.GetTrajectory(ctx, id)
	if terr != nil {
		writeErr(w, api.FromError(terr))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (h *Handler) handlePolicySwap(w http.ResponseWriter, r *http.Request) {
	var req api.PolicySwapRequest
	if !decode(w, r, &req) {
		return
	}
	ctx, cancel := h.requestContext(r, 0)
	defer cancel()
	info, err := h.r.SwapPolicy(ctx, req)
	if err != nil {
		writeErr(w, api.FromError(err))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (h *Handler) handlePolicyGet(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := h.requestContext(r, 0)
	defer cancel()
	info, err := h.r.Policy(ctx)
	if err != nil {
		writeErr(w, api.FromError(err))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (h *Handler) handleEncoderSwap(w http.ResponseWriter, r *http.Request) {
	var req api.EncoderSwapRequest
	if !decode(w, r, &req) {
		return
	}
	ctx, cancel := h.requestContext(r, 0)
	defer cancel()
	info, err := h.r.SwapEncoder(ctx, req)
	if err != nil {
		writeErr(w, api.FromError(err))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (h *Handler) handleEncoderGet(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := h.requestContext(r, 0)
	defer cancel()
	info, err := h.r.Encoder(ctx)
	if err != nil {
		writeErr(w, api.FromError(err))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := h.requestContext(r, 0)
	defer cancel()
	resp, err := h.r.Stats(ctx)
	if err != nil {
		writeErr(w, api.FromError(err))
		return
	}
	resp.UptimeSeconds = time.Since(h.start).Seconds()
	resp.Goroutines = runtime.NumGoroutine()
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness of the coordinator AND readiness of the
// fleet: 200 only while every shard group has a reachable replica.
func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	if err := h.r.Health(ctx); err != nil {
		writeErr(w, api.FromError(err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
