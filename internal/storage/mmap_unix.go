//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// mmapPath maps path read-only in its entirety. The returned release
// function unmaps; data must not be touched afterwards. An empty file
// yields a nil slice and a no-op release.
func mmapPath(path string) (data []byte, release func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: opening %s: %w", path, err)
	}
	defer f.Close() // the mapping survives the fd
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := int(fi.Size())
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
