package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"unsafe"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

// File framing, shared by segments and snapshots.
//
//	file   := header record*
//	header := magic[4] version:u32 reserved:u64          (16 bytes)
//	record := payload_len:u32 crc32:u32 payload          (payload_len % 8 == 0)
//
// All integers and float bit patterns are little-endian. Because the
// header and every record are multiples of 8 bytes, any 8-byte-aligned
// field inside a payload is 8-byte-aligned in the file — which makes the
// zero-copy []geo.Point cast over an mmap'd region legal on little-endian
// hosts.
//
// Segment record payload (one trajectory):
//
//	id:i64 npts:u32 reserved:u32 point[npts]             point := x:f64 y:f64 t:f64
const (
	segMagic   = "SSEG"
	snapMagic  = "SSNP"
	fmtVersion = 1

	fileHeaderSize = 16
	recHeaderSize  = 8 // payload_len + crc32
	trajHeaderSize = 16
	pointSize      = 24
)

// nativeLE reports whether this host can reinterpret the on-disk
// little-endian float64 stream in place.
var nativeLE = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

func init() {
	// the zero-copy cast assumes geo.Point is exactly {x, y, t float64}
	if unsafe.Sizeof(geo.Point{}) != pointSize {
		panic("storage: geo.Point layout changed; segment format needs a version bump")
	}
}

func fileHeader(magic string) []byte {
	hdr := make([]byte, fileHeaderSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[4:], fmtVersion)
	return hdr
}

func checkFileHeader(data []byte, magic, path string) error {
	if len(data) < fileHeaderSize {
		return fmt.Errorf("storage: %s: short file header", path)
	}
	if string(data[:4]) != magic {
		return fmt.Errorf("storage: %s: bad magic %q, want %q", path, data[:4], magic)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != fmtVersion {
		return fmt.Errorf("storage: %s: unsupported format version %d", path, v)
	}
	return nil
}

// appendTrajRecord appends the framed record for t to buf.
func appendTrajRecord(buf []byte, t traj.Trajectory) []byte {
	plen := trajHeaderSize + t.Len()*pointSize
	buf = binary.LittleEndian.AppendUint32(buf, uint32(plen))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // crc backpatched below
	payloadAt := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(t.ID)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Len()))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // reserved
	buf = appendPoints(buf, t.Points)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc32.ChecksumIEEE(buf[payloadAt:]))
	return buf
}

// appendPoints appends the little-endian encoding of pts to buf.
func appendPoints(buf []byte, pts []geo.Point) []byte {
	if nativeLE && len(pts) > 0 {
		raw := unsafe.Slice((*byte)(unsafe.Pointer(&pts[0])), len(pts)*pointSize)
		return append(buf, raw...)
	}
	for _, p := range pts {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.T))
	}
	return buf
}

// viewPoints reinterprets n points starting at data[off]. On little-endian
// hosts with aligned data this is a zero-copy view over data (typically an
// mmap); otherwise it decodes into a fresh slice.
func viewPoints(data []byte, off, n int) []geo.Point {
	if n == 0 {
		return nil
	}
	base := &data[off]
	if nativeLE && uintptr(unsafe.Pointer(base))%8 == 0 {
		return unsafe.Slice((*geo.Point)(unsafe.Pointer(base)), n)
	}
	pts := make([]geo.Point, n)
	for i := range pts {
		o := off + i*pointSize
		pts[i].X = math.Float64frombits(binary.LittleEndian.Uint64(data[o:]))
		pts[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(data[o+8:]))
		pts[i].T = math.Float64frombits(binary.LittleEndian.Uint64(data[o+16:]))
	}
	return pts
}

// rawRecord is one decoded segment record; points may alias the mapping.
type rawRecord struct {
	id     int64
	points []geo.Point
}

// readSegment maps segment idx and decodes its records. When allowTorn
// (the active, last segment) a partial or corrupt tail is truncated away
// and recovery continues; in a sealed segment the same condition is an
// error. The mapping is retained in s.unmaps; returned point slices alias
// it.
func (s *Store) readSegment(idx int, allowTorn bool, stats *RecoveryStats) ([]rawRecord, error) {
	path := filepath.Join(s.dir, segName(idx))
	data, unmap, err := mmapPath(path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.unmaps = append(s.unmaps, unmap)
	s.mu.Unlock()

	if err := checkFileHeader(data, segMagic, path); err != nil {
		if allowTorn && len(data) < fileHeaderSize {
			// crashed before the header hit the disk: an empty segment
			stats.TornTailTruncations++
			stats.TornTailBytes += int64(len(data))
			return nil, s.truncateSegment(idx, 0)
		}
		return nil, err
	}

	var recs []rawRecord
	off := fileHeaderSize
	for off < len(data) {
		plen, ok := frameAt(data, off)
		if !ok {
			if !allowTorn {
				return nil, fmt.Errorf("storage: %s: corrupt record at offset %d in sealed segment", path, off)
			}
			stats.TornTailTruncations++
			stats.TornTailBytes += int64(len(data) - off)
			return recs, s.truncateSegment(idx, off)
		}
		payload := data[off+recHeaderSize : off+recHeaderSize+plen]
		id := int64(binary.LittleEndian.Uint64(payload))
		npts := int(binary.LittleEndian.Uint32(payload[8:]))
		if plen != trajHeaderSize+npts*pointSize {
			if !allowTorn {
				return nil, fmt.Errorf("storage: %s: record at offset %d: length %d inconsistent with %d points", path, off, plen, npts)
			}
			stats.TornTailTruncations++
			stats.TornTailBytes += int64(len(data) - off)
			return recs, s.truncateSegment(idx, off)
		}
		recs = append(recs, rawRecord{
			id:     id,
			points: viewPoints(data, off+recHeaderSize+trajHeaderSize, npts),
		})
		off += recHeaderSize + plen
	}
	return recs, nil
}

// frameAt validates the record frame at data[off] (length sanity + CRC)
// and returns its payload length.
func frameAt(data []byte, off int) (plen int, ok bool) {
	if off+recHeaderSize > len(data) {
		return 0, false
	}
	plen = int(binary.LittleEndian.Uint32(data[off:]))
	if plen < trajHeaderSize || plen%8 != 0 || off+recHeaderSize+plen > len(data) {
		return 0, false
	}
	want := binary.LittleEndian.Uint32(data[off+4:])
	if crc32.ChecksumIEEE(data[off+recHeaderSize:off+recHeaderSize+plen]) != want {
		return 0, false
	}
	return plen, true
}

// truncateSegment discards a torn tail by truncating the file at off. The
// segment's mapping stays registered and valid: only pages past the new
// EOF become inaccessible, and no decoded record aliases them.
func (s *Store) truncateSegment(idx, off int) error {
	path := filepath.Join(s.dir, segName(idx))
	if off == 0 {
		// nothing valid, not even a header: rewrite the file as a fresh
		// headered segment (no decoded record aliases the mapping, so the
		// registered unmap at Close remains safe)
		if err := os.Truncate(path, 0); err != nil {
			return fmt.Errorf("storage: truncating torn segment: %w", err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := f.Write(fileHeader(segMagic)); err != nil {
			return err
		}
		return f.Sync()
	}
	if err := os.Truncate(path, int64(off)); err != nil {
		return fmt.Errorf("storage: truncating torn tail: %w", err)
	}
	return nil
}
