//go:build !unix

package storage

import (
	"fmt"
	"os"
)

// mmapPath on platforms without syscall.Mmap falls back to reading the
// whole file into memory; recovery is then copy-based rather than
// zero-copy, with identical semantics.
func mmapPath(path string) (data []byte, release func() error, err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: reading %s: %w", path, err)
	}
	if len(data) == 0 {
		data = nil
	}
	return data, func() error { return nil }, nil
}
