package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"simsub/internal/core"
	"simsub/internal/failpoint"
	"simsub/internal/geo"
	"simsub/internal/traj"
)

// Snapshot file layout ("SSNP" header, then the shared record framing):
//
//	manifest record payload := applied:u64 generation:u64
//	meta record payload     := id:i64 n:u32 nrev:u32 mbr:4*f64 revpoint[nrev]
//	emb record payload      := tag:8B fp:u64 dim:u32 count:u32 entry[count]
//	entry                   := id:u64 val[dim]:f64
//
// The manifest comes first and states how many records the snapshot covers
// (applied) — exactly that many meta records follow, in ID order. The
// generation counter increases with every snapshot so a fallback file is
// recognizably older. Reversal points start 48 bytes into the payload
// (8-aligned), so recovery serves TrajMeta.Rev zero-copy from the snapshot
// mapping just as trajectory points are served from segment mappings.
//
// The embedding record is optional and trails the meta records: readers
// that predate it stop after `applied` meta records and never see it, so
// old and new snapshots interoperate both ways. It persists the encoder
// embeddings the engine derived for the covered records (keyed by the
// encoder fingerprint), so recovery under the same encoder skips
// re-encoding the whole corpus. Entries are sparse (id-tagged): a record
// the engine had not embedded yet is simply absent.
const (
	manifestPayloadSize = 16
	metaHeaderSize      = 48
	embHeaderSize       = 24
	embMagic            = "SEMB0001"
)

// writeSnapshot persists metas for recs to a new snapshot file, atomically
// (temp file + fsync + rename).
func (s *Store) writeSnapshot(recs []Record) error {
	gen := uint64(len(recs)) // record count is monotone, so it doubles as generation
	buf := fileHeader(snapMagic)
	var payload []byte
	payload = binary.LittleEndian.AppendUint64(payload, uint64(len(recs)))
	payload = binary.LittleEndian.AppendUint64(payload, gen)
	buf = appendFramed(buf, payload)
	for _, r := range recs {
		payload = payload[:0]
		payload = binary.LittleEndian.AppendUint64(payload, uint64(int64(r.ID)))
		payload = binary.LittleEndian.AppendUint32(payload, uint32(r.Meta.N))
		payload = binary.LittleEndian.AppendUint32(payload, uint32(r.Meta.Rev.Len()))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(r.Meta.MBR.MinX))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(r.Meta.MBR.MinY))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(r.Meta.MBR.MaxX))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(r.Meta.MBR.MaxY))
		payload = appendPoints(payload, r.Meta.Rev.Points)
		buf = appendFramed(buf, payload)
	}
	buf = s.appendEmbRecord(buf, len(recs))

	tmp := filepath.Join(s.dir, ".tmp"+snapSuffix)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	final := filepath.Join(s.dir, snapName(len(recs)))
	if err := failpoint.Inject(fpSnapRename); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: committing snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: committing snapshot: %w", err)
	}
	return syncDir(s.dir)
}

// appendEmbRecord frames the store's current embedding set — restricted to
// record IDs below covered — onto buf. A no-op when no embedding was ever
// recorded, which keeps snapshots of encoder-less deployments byte-for-byte
// in the pre-embedding format.
func (s *Store) appendEmbRecord(buf []byte, covered int) []byte {
	s.embMu.Lock()
	defer s.embMu.Unlock()
	if !s.hasEmb {
		return buf
	}
	dim := 0
	count := 0
	for id, e := range s.embs {
		if id >= covered {
			break
		}
		if len(e) == 0 {
			continue
		}
		if dim == 0 {
			dim = len(e)
		}
		if len(e) == dim {
			count++
		}
	}
	payload := make([]byte, 0, embHeaderSize+count*(8+dim*8))
	payload = append(payload, embMagic...)
	payload = binary.LittleEndian.AppendUint64(payload, s.embFP)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(dim))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(count))
	for id, e := range s.embs {
		if id >= covered {
			break
		}
		if len(e) != dim || dim == 0 {
			continue
		}
		payload = binary.LittleEndian.AppendUint64(payload, uint64(id))
		for _, v := range e {
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(v))
		}
	}
	return appendFramed(buf, payload)
}

// readEmbRecord parses the optional embedding record at data[off] and
// grafts its vectors onto metas. Anything unexpected — no record, an
// unknown tag, an inconsistent shape — means "no persisted embeddings",
// never an error: the record is an optional extension and a snapshot
// without one is simply pre-embedding.
func readEmbRecord(data []byte, off int, metas []core.TrajMeta) (fp uint64, ok bool) {
	plen, valid := frameAt(data, off)
	if !valid || plen < embHeaderSize {
		return 0, false
	}
	p := data[off+recHeaderSize : off+recHeaderSize+plen]
	if string(p[:8]) != embMagic {
		return 0, false
	}
	fp = binary.LittleEndian.Uint64(p[8:])
	dim := int(binary.LittleEndian.Uint32(p[16:]))
	count := int(binary.LittleEndian.Uint32(p[20:]))
	if dim < 0 || count < 0 || plen != embHeaderSize+count*(8+dim*8) {
		return 0, false
	}
	for i := 0; i < count; i++ {
		eo := embHeaderSize + i*(8+dim*8)
		id := int(binary.LittleEndian.Uint64(p[eo:]))
		if id < 0 || id >= len(metas) {
			return 0, false
		}
		emb := make([]float64, dim)
		for d := range emb {
			emb[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[eo+8+d*8:]))
		}
		metas[id].Emb = emb
	}
	return fp, true
}

// appendFramed appends one framed record (len | crc | payload) to buf.
func appendFramed(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// loadBestSnapshot tries snapshots newest-first and returns the metadata
// of the first one that validates AND is covered by the recovered log
// (applied <= logRecords — a snapshot ahead of the log means the log lost
// a tail the snapshot saw; trusting it would resurrect truncated records'
// metadata with wrong indices). Invalid candidates count as discarded.
// Returns (nil, 0, 0, false) when no snapshot is usable.
func (s *Store) loadBestSnapshot(snaps []int, logRecords int, stats *RecoveryStats) ([]core.TrajMeta, int, uint64, bool) {
	for i := len(snaps) - 1; i >= 0; i-- {
		path := filepath.Join(s.dir, snapName(snaps[i]))
		metas, applied, embFP, hasEmb, err := s.readSnapshot(path)
		if err != nil || applied > logRecords {
			stats.SnapshotsDiscarded++
			continue
		}
		return metas, applied, embFP, hasEmb
	}
	return nil, 0, 0, false
}

// readSnapshot maps and decodes one snapshot file. The mapping is retained
// (returned Rev points alias it). Any framing or consistency violation is
// an error: snapshots are atomic, so a partial one is simply not trusted.
func (s *Store) readSnapshot(path string) ([]core.TrajMeta, int, uint64, bool, error) {
	data, unmap, err := mmapPath(path)
	if err != nil {
		return nil, 0, 0, false, err
	}
	s.mu.Lock()
	s.unmaps = append(s.unmaps, unmap)
	s.mu.Unlock()

	if err := checkFileHeader(data, snapMagic, path); err != nil {
		return nil, 0, 0, false, err
	}
	off := fileHeaderSize
	plen, ok := frameAt(data, off)
	if !ok || plen != manifestPayloadSize {
		return nil, 0, 0, false, fmt.Errorf("storage: %s: bad snapshot manifest", path)
	}
	applied := int(binary.LittleEndian.Uint64(data[off+recHeaderSize:]))
	off += recHeaderSize + plen

	metas := make([]core.TrajMeta, 0, applied)
	for i := 0; i < applied; i++ {
		plen, ok := frameAt(data, off)
		if !ok || plen < metaHeaderSize {
			return nil, 0, 0, false, fmt.Errorf("storage: %s: torn snapshot at meta record %d", path, i)
		}
		p := data[off+recHeaderSize : off+recHeaderSize+plen]
		id := int64(binary.LittleEndian.Uint64(p))
		n := int(binary.LittleEndian.Uint32(p[8:]))
		nrev := int(binary.LittleEndian.Uint32(p[12:]))
		if id != int64(i) || plen != metaHeaderSize+nrev*pointSize {
			return nil, 0, 0, false, fmt.Errorf("storage: %s: inconsistent meta record %d", path, i)
		}
		mbr := geo.Rect{
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(p[24:])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(p[32:])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(p[40:])),
		}
		metas = append(metas, core.TrajMeta{
			N:   n,
			MBR: mbr,
			Rev: traj.Trajectory{ID: int(id), Points: viewPoints(data, off+recHeaderSize+metaHeaderSize, nrev)},
		})
		off += recHeaderSize + plen
	}
	embFP, hasEmb := readEmbRecord(data, off, metas)
	return metas, applied, embFP, hasEmb, nil
}
