package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

func genTrajs(rng *rand.Rand, n int) []traj.Trajectory {
	ts := make([]traj.Trajectory, n)
	for i := range ts {
		npts := 2 + rng.Intn(30)
		pts := make([]geo.Point, npts)
		x, y := rng.Float64()*100, rng.Float64()*100
		for j := range pts {
			x += rng.NormFloat64()
			y += rng.NormFloat64()
			pts[j] = geo.Point{X: x, Y: y, T: float64(j)}
		}
		ts[i] = traj.Trajectory{Points: pts}
	}
	return ts
}

func mustOpen(t *testing.T, dir string, opts Options) (*Store, *RecoveryStats) {
	t.Helper()
	s, rs, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rs
}

// equalRecords asserts ids, points and metadata match between stores.
func equalRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("record count: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ID != w.ID {
			t.Fatalf("record %d: id %d, want %d", i, g.ID, w.ID)
		}
		if !reflect.DeepEqual(g.Traj.Points, w.Traj.Points) {
			t.Fatalf("record %d: points differ", i)
		}
		if g.Meta.MBR != w.Meta.MBR || g.Meta.N != w.Meta.N {
			t.Fatalf("record %d: meta differs: %+v vs %+v", i, g.Meta, w.Meta)
		}
		if len(g.Meta.Rev.Points) != 0 || len(w.Meta.Rev.Points) != 0 {
			if !reflect.DeepEqual(g.Meta.Rev.Points, w.Meta.Rev.Points) {
				t.Fatalf("record %d: reversal differs", i)
			}
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	ts := genTrajs(rng, 200)

	s1, rs := mustOpen(t, dir, Options{SegmentBytes: 8 << 10}) // force several rolls
	if rs.Records != 0 {
		t.Fatalf("fresh dir recovered %d records", rs.Records)
	}
	var want []Record
	for i := 0; i < len(ts); i += 7 {
		end := min(i+7, len(ts))
		recs, err := s1.Append(ts[i:end])
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		want = append(want, recs...)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rs2 := mustOpen(t, dir, Options{SegmentBytes: 8 << 10})
	defer s2.Close()
	if rs2.Records != len(ts) || rs2.Segments < 2 {
		t.Fatalf("recovery stats: %+v", rs2)
	}
	// Close wrote a final snapshot: nothing should have been re-derived
	if rs2.SnapshotRecords != len(ts) || rs2.Replayed != 0 {
		t.Fatalf("expected full snapshot coverage, got %+v", rs2)
	}
	equalRecords(t, s2.Records(), want)

	// appends must continue the dense ID sequence after recovery
	more, err := s2.Append(genTrajs(rng, 3))
	if err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if more[0].ID != len(ts) || more[2].ID != len(ts)+2 {
		t.Fatalf("post-recovery ids: %d..%d, want %d..%d", more[0].ID, more[2].ID, len(ts), len(ts)+2)
	}
}

func TestRecoveryWithoutSnapshotReplays(t *testing.T) {
	dir := t.TempDir()
	s1, _ := mustOpen(t, dir, Options{})
	ts := genTrajs(rand.New(rand.NewSource(2)), 50)
	if _, err := s1.Append(ts); err != nil {
		t.Fatal(err)
	}
	want := s1.Records()
	// simulate kill -9: no Close, no snapshot
	if err := s1.Sync(); err != nil {
		t.Fatal(err)
	}

	s2, rs := mustOpen(t, dir, Options{})
	defer s2.Close()
	if rs.Replayed != 50 || rs.SnapshotRecords != 0 {
		t.Fatalf("expected full replay, got %+v", rs)
	}
	equalRecords(t, s2.Records(), want)
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 3, 9, 17, 23} { // bytes to chop off the tail
		dir := t.TempDir()
		s1, _ := mustOpen(t, dir, Options{})
		ts := genTrajs(rand.New(rand.NewSource(3)), 20)
		if _, err := s1.Append(ts); err != nil {
			t.Fatal(err)
		}
		full := s1.Records()
		s1.Sync()

		seg := filepath.Join(dir, segName(0))
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(seg, fi.Size()-int64(cut)); err != nil {
			t.Fatal(err)
		}

		s2, rs := mustOpen(t, dir, Options{})
		if rs.TornTailTruncations != 1 {
			t.Fatalf("cut=%d: expected a torn-tail truncation, got %+v", cut, rs)
		}
		got := s2.Records()
		if len(got) != len(full)-1 {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(got), len(full)-1)
		}
		equalRecords(t, got, full[:len(full)-1])
		// the store must accept appends after truncation
		if _, err := s2.Append(genTrajs(rand.New(rand.NewSource(4)), 2)); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		s2.Close()

		s3, rs3 := mustOpen(t, dir, Options{})
		if rs3.TornTailTruncations != 0 || rs3.Records != len(full)+1 {
			t.Fatalf("cut=%d: second recovery: %+v", cut, rs3)
		}
		s3.Close()
	}
}

func TestTornSnapshotDiscarded(t *testing.T) {
	dir := t.TempDir()
	s1, _ := mustOpen(t, dir, Options{})
	ts := genTrajs(rand.New(rand.NewSource(5)), 30)
	if _, err := s1.Append(ts); err != nil {
		t.Fatal(err)
	}
	want := s1.Records()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(dir, snapName(30))
	fi, err := os.Stat(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(snap, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	s2, rs := mustOpen(t, dir, Options{})
	defer s2.Close()
	if rs.SnapshotsDiscarded != 1 || rs.Replayed != 30 {
		t.Fatalf("expected discarded snapshot + full replay, got %+v", rs)
	}
	equalRecords(t, s2.Records(), want)
}

func TestSnapshotAheadOfLogDiscarded(t *testing.T) {
	dir := t.TempDir()
	s1, _ := mustOpen(t, dir, Options{})
	ts := genTrajs(rand.New(rand.NewSource(6)), 10)
	if _, err := s1.Append(ts); err != nil {
		t.Fatal(err)
	}
	if err := s1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	full := s1.Records()
	s1.Sync()

	// chop the last record off the log: the snapshot now covers more
	// records than the log holds and must not be trusted
	seg := filepath.Join(dir, segName(0))
	fi, _ := os.Stat(seg)
	last := full[len(full)-1]
	recBytes := int64(recHeaderSize + trajHeaderSize + last.Traj.Len()*pointSize)
	if err := os.Truncate(seg, fi.Size()-recBytes); err != nil {
		t.Fatal(err)
	}

	s2, rs := mustOpen(t, dir, Options{})
	defer s2.Close()
	if rs.SnapshotsDiscarded != 1 {
		t.Fatalf("expected over-reaching snapshot discarded, got %+v", rs)
	}
	if rs.Records != 9 {
		t.Fatalf("recovered %d records, want 9", rs.Records)
	}
	equalRecords(t, s2.Records(), full[:9])
}

func TestSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		if _, err := s.Append(genTrajs(rng, 4)); err != nil {
			t.Fatal(err)
		}
		if err := s.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, snaps, err := s.listFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) > 2 {
		t.Fatalf("snapshot pruning left %d files: %v", len(snaps), snaps)
	}
}

func TestSnapshotNoopWhenCurrent(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpen(t, dir, Options{})
	if _, err := s.Append(genTrajs(rand.New(rand.NewSource(8)), 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := s.SnapshotCovered(); got != 5 {
		t.Fatalf("SnapshotCovered = %d, want 5", got)
	}
	_, snaps, _ := s.listFiles()
	if err := s.Snapshot(); err != nil { // no new records: must be a no-op
		t.Fatal(err)
	}
	_, snaps2, _ := s.listFiles()
	if len(snaps2) != len(snaps) {
		t.Fatalf("no-op snapshot wrote a file: %v -> %v", snaps, snaps2)
	}
	s.Close()
}

func TestEmptyTrajectoryRecord(t *testing.T) {
	dir := t.TempDir()
	s1, _ := mustOpen(t, dir, Options{})
	ts := []traj.Trajectory{
		{Points: []geo.Point{{X: 1, Y: 2, T: 0}}},
		{Points: nil}, // degenerate but must round-trip
		{Points: []geo.Point{{X: 3, Y: 4, T: 0}, {X: 5, Y: 6, T: 1}}},
	}
	if _, err := s1.Append(ts); err != nil {
		t.Fatal(err)
	}
	want := s1.Records()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := mustOpen(t, dir, Options{})
	defer s2.Close()
	equalRecords(t, s2.Records(), want)
}
