// Package storage is the durability layer under the engine: an append-only
// segment log of trajectories plus periodic snapshots of their derived scan
// metadata (core.TrajMeta: MBRs and reversals), so a simsubd node survives
// restarts and recovers real-scale corpora without re-deriving per-point
// state.
//
// Layout of a data directory:
//
//	seg-00000000.log   append-only trajectory records (the write path)
//	seg-00000001.log   ... sealed segments, rolled at Options.SegmentBytes
//	snap-<count>.snap  metadata snapshots, named by the record count covered
//
// Both file kinds share one record framing: a fixed 16-byte file header
// (magic, format version), then length-prefixed records
// [payload_len u32][crc32 u32][payload], every payload a multiple of 8
// bytes so point arrays stay 8-aligned. Sealed files are mmap'd on
// recovery and point arrays are served as zero-copy views over the
// mapping (on little-endian hosts; others decode-copy), so the PR 3
// zero-allocation scan path runs directly over on-disk points.
//
// Recovery contract: a record is visible iff its bytes fully reached the
// file. Append issues one write(2) per batch before returning, so a
// kill -9 loses at most records the caller was never told about; fsync
// happens on segment roll, snapshot commit and Close (graceful shutdown),
// bounding loss on machine crash to the active segment's page-cache tail.
// A torn tail record (crash mid-write) is detected by the length/CRC
// framing and truncated away on Open. Snapshots commit by atomic rename;
// a torn or stale snapshot is discarded and the affected records simply
// re-derive their metadata — recovery never trusts a snapshot it cannot
// checksum.
//
// Ownership rules: everything a Store returns — record point slices and
// snapshot-restored reversals — may be backed by an mmap'd file owned by
// the Store. Treat them as immutable and do not use them after Close. This
// mirrors the sync.Pool ownership rules of internal/sim: pooled DP scratch
// is per-search and returned on Release, while backing point data is
// owned by the store for its whole lifetime.
package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"simsub/internal/core"
	"simsub/internal/failpoint"
	"simsub/internal/traj"
)

// Fault sites of the chaos suite (internal/failpoint), all no-ops unless a
// test or operator arms them: fpAppend fails an append before any byte is
// written, fpAppendPartial tears the append's batch buffer mid-write
// (exactly the torn tail a crash leaves — the store must be reopened to
// recover, like after a real crash), fpFsync fails segment fsyncs, and
// fpSnapRename fails the snapshot's atomic commit rename.
const (
	fpAppend        = "storage/append"
	fpAppendPartial = "storage/append-partial"
	fpFsync         = "storage/fsync"
	fpSnapRename    = "storage/snapshot-rename"
)

// syncFile fsyncs f through the fpFsync fault site.
func syncFile(f *os.File) error {
	if err := failpoint.Inject(fpFsync); err != nil {
		return err
	}
	return f.Sync()
}

// Options tunes a Store. The zero value selects the documented defaults.
type Options struct {
	// SegmentBytes is the roll threshold of the active segment (default
	// 64 MiB). A segment is fsync'd when sealed.
	SegmentBytes int64
	// SyncEveryAppend fsyncs after every Append (default false). The
	// default already survives process kill; this additionally bounds
	// machine-crash loss at a large throughput cost.
	SyncEveryAppend bool
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
}

// Record is one stored trajectory with its derived scan metadata.
type Record struct {
	// ID is the trajectory's global ID, dense in append order (ID == the
	// record's position in the store).
	ID int
	// Traj is the trajectory; points may be a zero-copy view over an
	// mmap'd segment.
	Traj traj.Trajectory
	// Meta is the derived scan metadata. After recovery it comes from the
	// newest valid snapshot when one covers the record (FromSnapshot),
	// otherwise it is re-derived during replay.
	Meta core.TrajMeta
	// FromSnapshot reports whether Meta was restored rather than derived.
	FromSnapshot bool
}

// RecoveryStats describes what Open did to bring the store back.
type RecoveryStats struct {
	// Segments is the number of segment files read.
	Segments int
	// Records is the total number of trajectory records recovered.
	Records int
	// SnapshotRecords is how many records had their metadata restored from
	// a snapshot (no re-derivation).
	SnapshotRecords int
	// Replayed is how many log-tail records had their metadata re-derived.
	Replayed int
	// TornTailTruncations counts partial tail records truncated away
	// (0 or 1: only the last segment can carry a torn tail).
	TornTailTruncations int
	// TornTailBytes is how many bytes the truncation discarded.
	TornTailBytes int64
	// SnapshotsDiscarded counts snapshot files that failed validation
	// (torn, corrupt, or ahead of the recovered log) and were ignored.
	SnapshotsDiscarded int
	// Wall is the total recovery wall-clock time.
	Wall time.Duration
}

// String renders the stats as one boot-log line.
func (rs RecoveryStats) String() string {
	return fmt.Sprintf("%d records from %d segments in %v (%d from snapshot, %d replayed, %d torn-tail truncations/%dB, %d snapshots discarded)",
		rs.Records, rs.Segments, rs.Wall.Round(time.Millisecond),
		rs.SnapshotRecords, rs.Replayed, rs.TornTailTruncations, rs.TornTailBytes, rs.SnapshotsDiscarded)
}

// Store is a persistent trajectory store: an append-only segment log plus
// metadata snapshots. All methods are safe for concurrent use; appends and
// snapshots are internally serialized.
type Store struct {
	dir  string
	opts Options

	mu          sync.Mutex
	recs        []Record
	active      *os.File
	activeIdx   int
	activeSize  int64
	snapApplied int // records covered by the newest durable snapshot
	unmaps      []func() error
	closed      bool

	// Encoder embeddings, persisted as the snapshot's trailing embedding
	// record so recovery under the same encoder skips re-encoding. Indexed
	// by record ID; a nil entry means "not embedded". embFP is the encoder
	// fingerprint the vectors were derived under — a fingerprint change
	// (encoder hot-swap) discards the whole set.
	embMu  sync.Mutex
	embFP  uint64
	embs   [][]float64
	hasEmb bool
}

const (
	segPrefix  = "seg-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func segName(i int) string  { return fmt.Sprintf("%s%08d%s", segPrefix, i, segSuffix) }
func snapName(n int) string { return fmt.Sprintf("%s%016d%s", snapPrefix, n, snapSuffix) }

// Open opens (creating if needed) the store rooted at dir and recovers its
// contents: every segment is read (sealed ones through mmap), a torn tail
// record is truncated away, and the newest valid snapshot supplies derived
// metadata for the records it covers — only the log tail past the snapshot
// re-derives MBRs and reversals.
func Open(dir string, opts Options) (*Store, *RecoveryStats, error) {
	opts.fill()
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("storage: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, opts: opts}
	stats := &RecoveryStats{}

	segs, snaps, err := s.listFiles()
	if err != nil {
		return nil, nil, err
	}

	// read every segment; only the last may carry a torn tail
	var raws []rawRecord
	for i, idx := range segs {
		last := i == len(segs)-1
		rs, err := s.readSegment(idx, last, stats)
		if err != nil {
			s.unmapAll()
			return nil, nil, err
		}
		raws = append(raws, rs...)
		stats.Segments++
	}
	// dense-ID invariant: record ID == position, in every writer's output
	for i, rr := range raws {
		if rr.id != int64(i) {
			s.unmapAll()
			return nil, nil, fmt.Errorf("storage: %s: record %d carries id %d, want dense append order", dir, i, rr.id)
		}
	}

	// newest valid snapshot that the recovered log actually covers wins;
	// torn or over-reaching snapshots are discarded, not trusted
	metas, applied, embFP, hasEmb := s.loadBestSnapshot(snaps, len(raws), stats)

	s.recs = make([]Record, len(raws))
	for i, rr := range raws {
		t := traj.Trajectory{ID: int(rr.id), Points: rr.points}
		rec := Record{ID: int(rr.id), Traj: t}
		if i < applied && metas[i].N == t.Len() {
			rec.Meta = metas[i]
			rec.FromSnapshot = true
			stats.SnapshotRecords++
		} else {
			rec.Meta = core.DeriveMeta(t)
			stats.Replayed++
		}
		s.recs[i] = rec
	}
	s.snapApplied = applied
	if hasEmb {
		// carry the recovered embedding set forward so the next snapshot
		// re-persists it even if the engine never re-registers an encoder
		s.embFP, s.hasEmb = embFP, true
		s.embs = make([][]float64, len(s.recs))
		for i := range s.recs {
			if s.recs[i].FromSnapshot {
				s.embs[i] = s.recs[i].Meta.Emb
			}
		}
	}
	stats.Records = len(s.recs)

	// (re)open the active segment for appending
	if len(segs) == 0 {
		if err := s.newSegment(0); err != nil {
			s.unmapAll()
			return nil, nil, err
		}
	} else {
		idx := segs[len(segs)-1]
		f, err := os.OpenFile(filepath.Join(dir, segName(idx)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			s.unmapAll()
			return nil, nil, fmt.Errorf("storage: reopening active segment: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			s.unmapAll()
			return nil, nil, err
		}
		s.active, s.activeIdx, s.activeSize = f, idx, fi.Size()
	}
	stats.Wall = time.Since(start)
	return s, stats, nil
}

// listFiles enumerates segment indices (ascending, must be dense from 0)
// and snapshot record counts (ascending).
func (s *Store) listFiles() (segs, snaps []int, err error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: reading %s: %w", s.dir, err)
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			n, perr := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
			if perr != nil {
				return nil, nil, fmt.Errorf("storage: unparseable segment name %q", name)
			}
			segs = append(segs, n)
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			n, perr := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix))
			if perr != nil {
				return nil, nil, fmt.Errorf("storage: unparseable snapshot name %q", name)
			}
			snaps = append(snaps, n)
		}
	}
	sort.Ints(segs)
	sort.Ints(snaps)
	for i, n := range segs {
		if n != i {
			return nil, nil, fmt.Errorf("storage: segment files not dense: found %s at position %d", segName(n), i)
		}
	}
	return segs, snaps, nil
}

// newSegment creates and headers segment idx and makes it active.
func (s *Store) newSegment(idx int) error {
	path := filepath.Join(s.dir, segName(idx))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating segment: %w", err)
	}
	hdr := fileHeader(segMagic)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("storage: writing segment header: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.active, s.activeIdx, s.activeSize = f, idx, int64(len(hdr))
	return nil
}

// roll seals the active segment (fsync + close) and starts the next one.
func (s *Store) roll() error {
	if err := syncFile(s.active); err != nil {
		return fmt.Errorf("storage: sealing segment %d: %w", s.activeIdx, err)
	}
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("storage: sealing segment %d: %w", s.activeIdx, err)
	}
	return s.newSegment(s.activeIdx + 1)
}

// Append assigns dense IDs to ts (in order, continuing the store's record
// sequence), writes them to the log and returns the stored records with
// their freshly derived metadata. The records are readable by Records and
// coverable by the next Snapshot. Append returns only after the bytes
// reached the file, so a process kill cannot lose an acknowledged record.
func (s *Store) Append(ts []traj.Trajectory) ([]Record, error) {
	if len(ts) == 0 {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("storage: store is closed")
	}
	var buf []byte
	out := make([]Record, len(ts))
	for i, t := range ts {
		t.ID = len(s.recs) + i
		buf = appendTrajRecord(buf, t)
		out[i] = Record{ID: t.ID, Traj: t, Meta: core.DeriveMeta(t)}
	}
	if s.activeSize >= s.opts.SegmentBytes {
		if err := s.roll(); err != nil {
			return nil, err
		}
	}
	if err := failpoint.Inject(fpAppend); err != nil {
		return nil, fmt.Errorf("storage: appending %d records: %w", len(ts), err)
	}
	if n := failpoint.Partial(fpAppendPartial, len(buf)); n < len(buf) {
		// a torn write, exactly as a crash mid-append leaves it: some bytes
		// of the batch reach the file, the caller is never acked, and the
		// tail is truncated away on the next Open
		_, _ = s.active.Write(buf[:n])
		return nil, fmt.Errorf("storage: appending %d records: torn write after %d/%d bytes (injected)", len(ts), n, len(buf))
	}
	if _, err := s.active.Write(buf); err != nil {
		return nil, fmt.Errorf("storage: appending %d records: %w", len(ts), err)
	}
	s.activeSize += int64(len(buf))
	if s.opts.SyncEveryAppend {
		if err := syncFile(s.active); err != nil {
			return nil, fmt.Errorf("storage: fsync after append: %w", err)
		}
	}
	s.recs = append(s.recs, out...)
	return out, nil
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Records returns a stable view of every stored record, in ID order. The
// returned slice must not be mutated; its point data may be mmap-backed
// and is owned by the store until Close.
func (s *Store) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recs[:len(s.recs):len(s.recs)]
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// SetEmbedding records the embedding of record id under the encoder
// fingerprint fp. A fingerprint different from the current set's discards
// every previously recorded vector first (they were derived by another
// encoder and must not be persisted alongside the new ones). The vectors
// become durable with the next Snapshot.
func (s *Store) SetEmbedding(id int, fp uint64, emb []float64) {
	if id < 0 {
		return
	}
	s.embMu.Lock()
	defer s.embMu.Unlock()
	if !s.hasEmb || s.embFP != fp {
		s.embs = nil
		s.embFP = fp
		s.hasEmb = true
	}
	for len(s.embs) <= id {
		s.embs = append(s.embs, nil)
	}
	s.embs[id] = emb
}

// EmbeddingInfo returns the fingerprint of the encoder the store's
// embedding set was derived under, and whether such a set exists at all
// (recovered from a snapshot or recorded since).
func (s *Store) EmbeddingInfo() (fp uint64, ok bool) {
	s.embMu.Lock()
	defer s.embMu.Unlock()
	return s.embFP, s.hasEmb
}

// EmbeddingCount returns how many records currently carry an embedding.
func (s *Store) EmbeddingCount() int {
	s.embMu.Lock()
	defer s.embMu.Unlock()
	n := 0
	for _, e := range s.embs {
		if len(e) > 0 {
			n++
		}
	}
	return n
}

// Sync fsyncs the active segment.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("storage: store is closed")
	}
	return syncFile(s.active)
}

// Snapshot durably persists the derived metadata of every current record,
// so the next recovery replays nothing before this point. It is a no-op
// when no record was appended since the last snapshot. The write happens
// outside the append lock (appends proceed concurrently) and commits by
// atomic rename; all but the two newest snapshots are then pruned.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("storage: store is closed")
	}
	recs := s.recs[:len(s.recs):len(s.recs)]
	already := s.snapApplied
	s.mu.Unlock()
	if len(recs) == already {
		return nil
	}
	if err := s.writeSnapshot(recs); err != nil {
		return err
	}
	s.mu.Lock()
	if len(recs) > s.snapApplied {
		s.snapApplied = len(recs)
	}
	s.mu.Unlock()
	return s.pruneSnapshots()
}

// pruneSnapshots removes all but the two newest snapshot files (the newest
// plus one fallback in case the newest is torn by a concurrent crash).
func (s *Store) pruneSnapshots() error {
	_, snaps, err := s.listFiles()
	if err != nil {
		return err
	}
	for i := 0; i+2 < len(snaps); i++ {
		if err := os.Remove(filepath.Join(s.dir, snapName(snaps[i]))); err != nil {
			return fmt.Errorf("storage: pruning snapshot: %w", err)
		}
	}
	return nil
}

// SnapshotCovered returns how many records the newest durable snapshot
// covers.
func (s *Store) SnapshotCovered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapApplied
}

// Close flushes a final snapshot, fsyncs and closes the active segment and
// releases every mapping. The store is unusable afterwards; so is any
// mmap-backed point slice it handed out.
func (s *Store) Close() error {
	snapErr := s.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return snapErr
	}
	s.closed = true
	var errs []error
	if snapErr != nil {
		errs = append(errs, snapErr)
	}
	if s.active != nil {
		if err := syncFile(s.active); err != nil {
			errs = append(errs, err)
		}
		if err := s.active.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	errs = append(errs, s.unmapLocked())
	return errors.Join(errs...)
}

func (s *Store) unmapAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.unmapLocked()
}

func (s *Store) unmapLocked() error {
	var errs []error
	for _, fn := range s.unmaps {
		errs = append(errs, fn())
	}
	s.unmaps = nil
	return errors.Join(errs...)
}

// syncDir fsyncs a directory so a just-created or just-renamed file's
// directory entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: syncing dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		// some filesystems reject directory fsync; treat as best-effort
		return nil
	}
	return nil
}
