package storage

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestEmbeddingRoundTrip: embeddings recorded against the store survive a
// snapshot + reopen, keyed to the right records and fingerprint, and
// records appended after the snapshot come back without one.
func TestEmbeddingRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	s, _ := mustOpen(t, dir, Options{})
	recs, err := s.Append(genTrajs(rng, 8))
	if err != nil {
		t.Fatal(err)
	}
	const fp = uint64(0xabcdef)
	want := make([][]float64, len(recs))
	for i, r := range recs {
		if i == 5 {
			continue // leave one record unembedded
		}
		emb := []float64{float64(r.ID), float64(r.ID) * 2, 0.5}
		want[i] = emb
		s.SetEmbedding(r.ID, fp, emb)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// records past the snapshot have no persisted embedding
	if _, err := s.Append(genTrajs(rng, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rs := mustOpen(t, dir, Options{})
	defer s2.Close()
	if gotFP, ok := s2.EmbeddingInfo(); !ok || gotFP != fp {
		t.Fatalf("EmbeddingInfo = (%#x, %v), want (%#x, true)", gotFP, ok, fp)
	}
	if got := s2.EmbeddingCount(); got != 7 {
		t.Fatalf("EmbeddingCount = %d, want 7", got)
	}
	got := s2.Records()
	for i := 0; i < 8; i++ {
		if !reflect.DeepEqual(got[i].Meta.Emb, want[i]) {
			t.Fatalf("record %d: emb %v, want %v", i, got[i].Meta.Emb, want[i])
		}
	}
	for i := 8; i < 10; i++ {
		if len(got[i].Meta.Emb) != 0 {
			t.Fatalf("record %d appended after snapshot should carry no embedding, got %v", i, got[i].Meta.Emb)
		}
	}
	if rs.SnapshotRecords == 0 {
		t.Fatalf("expected snapshot-restored records, got %+v", rs)
	}
}

// TestEmbeddingFingerprintSwapDiscards: a vector recorded under a new
// fingerprint discards the old set, and the next snapshot persists only
// the new encoder's vectors.
func TestEmbeddingFingerprintSwapDiscards(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	s, _ := mustOpen(t, dir, Options{})
	recs, err := s.Append(genTrajs(rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		s.SetEmbedding(r.ID, 1, []float64{1, 1})
	}
	s.SetEmbedding(recs[0].ID, 2, []float64{9, 9})
	if got := s.EmbeddingCount(); got != 1 {
		t.Fatalf("EmbeddingCount after fingerprint swap = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := mustOpen(t, dir, Options{})
	defer s2.Close()
	if fp, ok := s2.EmbeddingInfo(); !ok || fp != 2 {
		t.Fatalf("EmbeddingInfo = (%d, %v), want (2, true)", fp, ok)
	}
	got := s2.Records()
	if !reflect.DeepEqual(got[0].Meta.Emb, []float64{9, 9}) {
		t.Fatalf("record 0 emb = %v", got[0].Meta.Emb)
	}
	for i := 1; i < 4; i++ {
		if len(got[i].Meta.Emb) != 0 {
			t.Fatalf("record %d should have been discarded by the swap, got %v", i, got[i].Meta.Emb)
		}
	}
}

// TestSnapshotWithoutEmbeddingsUnchanged: an encoder-less store writes a
// snapshot with no trailing embedding record, which an embedding-aware
// reader treats as "none".
func TestSnapshotWithoutEmbeddingsUnchanged(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	s, _ := mustOpen(t, dir, Options{})
	if _, err := s.Append(genTrajs(rng, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := mustOpen(t, dir, Options{})
	defer s2.Close()
	if _, ok := s2.EmbeddingInfo(); ok {
		t.Fatal("EmbeddingInfo reported a set for an encoder-less store")
	}
	for i, r := range s2.Records() {
		if len(r.Meta.Emb) != 0 {
			t.Fatalf("record %d unexpectedly carries an embedding", i)
		}
	}
}
