package failpoint

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	DisableAll()
	if err := Inject("nonexistent/site"); err != nil {
		t.Fatalf("disarmed Inject = %v, want nil", err)
	}
	if got := Partial("nonexistent/site", 100); got != 100 {
		t.Fatalf("disarmed Partial = %d, want 100", got)
	}
}

func TestErrorSpec(t *testing.T) {
	DisableAll()
	if err := Enable("t/error", "error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	defer DisableAll()
	err := Inject("t/error")
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("Inject = %v, want *Error", err)
	}
	if fe.Name != "t/error" || fe.Msg != "disk gone" {
		t.Fatalf("Error = %+v", fe)
	}
	if Hits("t/error") != 1 {
		t.Fatalf("Hits = %d, want 1", Hits("t/error"))
	}
}

func TestCountDisarmsAfterExhaustion(t *testing.T) {
	DisableAll()
	if err := Enable("t/count", "2*error(boom)"); err != nil {
		t.Fatal(err)
	}
	defer DisableAll()
	for i := 0; i < 2; i++ {
		if err := Inject("t/count"); err == nil {
			t.Fatalf("eval %d: want injected error", i)
		}
	}
	if err := Inject("t/count"); err != nil {
		t.Fatalf("after exhaustion: %v, want nil", err)
	}
	if infos := List(); len(infos) != 0 {
		t.Fatalf("exhausted site still listed: %+v", infos)
	}
}

func TestPercentRotation(t *testing.T) {
	DisableAll()
	if err := Enable("t/pct", "25%error(x)"); err != nil {
		t.Fatal(err)
	}
	defer DisableAll()
	fired := 0
	for i := 0; i < 100; i++ {
		if Inject("t/pct") != nil {
			fired++
		}
	}
	if fired != 25 {
		t.Fatalf("25%% over 100 evals fired %d times, want exactly 25 (deterministic rotation)", fired)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	DisableAll()
	if err := Enable("t/sleep", "sleep(10s)"); err != nil {
		t.Fatal(err)
	}
	defer DisableAll()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := InjectCtx(ctx, "t/sleep")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("InjectCtx = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("sleep ignored the context")
	}
}

func TestSleepThenError(t *testing.T) {
	DisableAll()
	if err := Enable("t/se", "sleep(1ms)->error(late fail)"); err != nil {
		t.Fatal(err)
	}
	defer DisableAll()
	err := Inject("t/se")
	var fe *Error
	if !errors.As(err, &fe) || fe.Msg != "late fail" {
		t.Fatalf("Inject = %v, want injected 'late fail'", err)
	}
}

func TestDrop(t *testing.T) {
	DisableAll()
	if err := Enable("t/drop", "drop"); err != nil {
		t.Fatal(err)
	}
	defer DisableAll()
	if err := Inject("t/drop"); !errors.Is(err, ErrDrop) {
		t.Fatalf("Inject = %v, want ErrDrop", err)
	}
}

func TestPartial(t *testing.T) {
	DisableAll()
	if err := Enable("t/partial", "partial(0.5)"); err != nil {
		t.Fatal(err)
	}
	defer DisableAll()
	if got := Partial("t/partial", 100); got != 50 {
		t.Fatalf("Partial = %d, want 50", got)
	}
	// a partial term never makes Inject fail
	if err := Inject("t/partial"); err != nil {
		t.Fatalf("Inject on partial site = %v, want nil", err)
	}
}

func TestOffAndClear(t *testing.T) {
	DisableAll()
	if err := Enable("t/a", "error(x)"); err != nil {
		t.Fatal(err)
	}
	if err := Enable("t/a", "off"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("t/a"); err != nil {
		t.Fatalf("after off: %v, want nil", err)
	}
	if err := Enable("t/a", "error(x)"); err != nil {
		t.Fatal(err)
	}
	if err := Enable("t/b", "drop"); err != nil {
		t.Fatal(err)
	}
	DisableAll()
	if len(List()) != 0 {
		t.Fatal("DisableAll left armed sites")
	}
	if err := Inject("t/a"); err != nil {
		t.Fatalf("after DisableAll: %v, want nil", err)
	}
}

func TestBadSpecs(t *testing.T) {
	DisableAll()
	for _, spec := range []string{
		"explode", "0*error(x)", "-3*drop", "101%drop", "0%drop",
		"sleep(notadur)", "partial(1.5)", "partial(-0.1)",
	} {
		if err := Enable("t/bad", spec); err == nil {
			Disable("t/bad")
			t.Errorf("Enable(%q) accepted a bad spec", spec)
		}
	}
}

func TestEnableFromEnv(t *testing.T) {
	DisableAll()
	defer DisableAll()
	t.Setenv(EnvVar, "t/env1=error(a); t/env2=3*drop")
	names, err := EnableFromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("armed %v, want 2 sites", names)
	}
	if err := Inject("t/env1"); err == nil {
		t.Fatal("t/env1 not armed")
	}
	if err := Inject("t/env2"); !errors.Is(err, ErrDrop) {
		t.Fatalf("t/env2 = %v, want ErrDrop", err)
	}

	DisableAll()
	t.Setenv(EnvVar, "malformed-entry-without-equals")
	if _, err := EnableFromEnv(); err == nil {
		t.Fatal("malformed env accepted")
	}
}
