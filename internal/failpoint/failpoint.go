// Package failpoint is the fault-injection layer of the chaos suite:
// named fault sites compiled into the storage, engine, server and router
// hot paths that cost one atomic load while disarmed and, when armed,
// inject errors, added latency, dropped connections or partial writes at
// runtime.
//
// A site is a bare string name ("storage/append", "router/transport", ...)
// evaluated at its call point:
//
//	if err := failpoint.Inject("storage/append"); err != nil {
//		return err
//	}
//
// Sites need no registration: arming an unknown name simply waits for a
// call point to evaluate it, and evaluating an unarmed name is a no-op.
// Arming happens three ways: programmatically (Enable, from tests), from
// the SIMSUB_FAILPOINTS environment variable at process boot
// (EnableFromEnv), and over HTTP through the /v2/admin/failpoints endpoint
// of simsubd and simsubrouter (which both require the endpoint to be
// explicitly switched on — a production fleet cannot be chaos-tested by
// accident).
//
// # Spec grammar
//
//	spec     := term | count "*" term | pct "%" term
//	term     := "off" | "error(" msg ")" | "sleep(" duration ")"
//	          | "sleep(" duration ")->error(" msg ")"
//	          | "drop" | "partial(" fraction ")"
//	count    := positive integer — the term fires for the first count
//	            evaluations, then the site disarms itself
//	pct      := integer in [1,100] — the term fires on that percentage of
//	            evaluations (deterministic rotation, not randomness: a
//	            pct of 50 fires every second evaluation)
//
// "error" makes Inject return an *Error carrying the message; "sleep" adds
// the latency then succeeds (honoring the context in InjectCtx, in which
// case the context's error is returned on expiry); "drop" returns ErrDrop,
// which HTTP handlers translate into an aborted connection; "partial"
// applies only to sites that call Partial and truncates the write to the
// given fraction of its bytes.
//
// The environment form is a semicolon-separated list of name=spec pairs:
//
//	SIMSUB_FAILPOINTS='storage/fsync=error(injected);router/transport=3*sleep(50ms)'
package failpoint

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar names the environment variable EnableFromEnv reads.
const EnvVar = "SIMSUB_FAILPOINTS"

// Error is an injected failure. Call sites return it unchanged, so a test
// (or errors.As) can always tell an injected fault from an organic one.
type Error struct {
	// Name is the fault site that injected the error.
	Name string
	// Msg is the message from the spec's error(...) term.
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("failpoint %s: injected: %s", e.Name, e.Msg)
}

// ErrDrop is returned by a site armed with "drop". HTTP layers translate
// it into an abruptly severed connection (http.ErrAbortHandler); non-HTTP
// call sites treat it like any injected error.
var ErrDrop = errors.New("failpoint: injected connection drop")

// kind is the parsed term's action.
type kind int

const (
	kindError kind = iota
	kindSleep
	kindSleepError
	kindDrop
	kindPartial
)

// point is one armed fault site.
type point struct {
	name string
	spec string

	kind     kind
	msg      string
	sleep    time.Duration
	fraction float64

	mu        sync.Mutex
	remaining int // >0: fire this many more times, then disarm; -1: unbounded
	pct       int // 0: always; else fire when (evals*pct)%100 wraps
	evals     int
	hits      int
}

// fire decides whether this evaluation triggers the term, consuming one
// count when counted. It reports (triggered, nowDisarmed).
func (p *point) fire() (bool, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.evals++
	if p.pct > 0 {
		// deterministic rotation: fire pct evaluations out of every 100
		before := (p.evals - 1) * p.pct / 100
		after := p.evals * p.pct / 100
		if after == before {
			return false, false
		}
	}
	if p.remaining == 0 {
		return false, true
	}
	if p.remaining > 0 {
		p.remaining--
	}
	p.hits++
	return true, p.remaining == 0
}

// registry is the global site table. The armed counter gates the fast
// path: while zero, Inject is one atomic load and a return.
var (
	armed    atomic.Int32
	regMu    sync.RWMutex
	registry = map[string]*point{}
)

// parseSpec parses the spec grammar (see the package comment).
func parseSpec(name, spec string) (*point, error) {
	p := &point{name: name, spec: spec, remaining: -1}
	term := strings.TrimSpace(spec)
	if i := strings.Index(term, "*"); i > 0 {
		if n, err := strconv.Atoi(strings.TrimSpace(term[:i])); err == nil {
			if n <= 0 {
				return nil, fmt.Errorf("failpoint %s: count must be positive, got %d", name, n)
			}
			p.remaining = n
			term = strings.TrimSpace(term[i+1:])
		}
	}
	if i := strings.Index(term, "%"); i > 0 {
		if n, err := strconv.Atoi(strings.TrimSpace(term[:i])); err == nil {
			if n < 1 || n > 100 {
				return nil, fmt.Errorf("failpoint %s: percentage must be in [1,100], got %d", name, n)
			}
			p.pct = n
			term = strings.TrimSpace(term[i+1:])
		}
	}
	arg := func(prefix string) (string, bool) {
		if strings.HasPrefix(term, prefix+"(") && strings.HasSuffix(term, ")") {
			return term[len(prefix)+1 : len(term)-1], true
		}
		return "", false
	}
	switch {
	case term == "drop":
		p.kind = kindDrop
	case strings.HasPrefix(term, "sleep("):
		rest := term
		var errMsg string
		if i := strings.Index(term, ")->error("); i > 0 && strings.HasSuffix(term, ")") {
			rest = term[:i+1]
			errMsg = term[i+len(")->error(") : len(term)-1]
			p.kind = kindSleepError
			p.msg = errMsg
		} else {
			p.kind = kindSleep
		}
		inner := strings.TrimSuffix(strings.TrimPrefix(rest, "sleep("), ")")
		d, err := time.ParseDuration(inner)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("failpoint %s: bad sleep duration %q", name, inner)
		}
		p.sleep = d
	default:
		if msg, ok := arg("error"); ok {
			p.kind = kindError
			p.msg = msg
			break
		}
		if fr, ok := arg("partial"); ok {
			f, err := strconv.ParseFloat(fr, 64)
			if err != nil || f < 0 || f >= 1 {
				return nil, fmt.Errorf("failpoint %s: partial fraction must be in [0,1), got %q", name, fr)
			}
			p.kind = kindPartial
			p.fraction = f
			break
		}
		return nil, fmt.Errorf("failpoint %s: unparseable spec %q", name, spec)
	}
	return p, nil
}

// Enable arms (or re-arms) the named site with spec. The specs "" and
// "off" disarm it.
func Enable(name, spec string) error {
	if name == "" {
		return errors.New("failpoint: empty name")
	}
	if s := strings.TrimSpace(spec); s == "" || s == "off" {
		Disable(name)
		return nil
	}
	p, err := parseSpec(name, spec)
	if err != nil {
		return err
	}
	regMu.Lock()
	_, existed := registry[name]
	registry[name] = p
	if !existed {
		armed.Add(1)
	}
	regMu.Unlock()
	return nil
}

// Disable disarms the named site; unknown names are a no-op.
func Disable(name string) {
	regMu.Lock()
	if _, ok := registry[name]; ok {
		delete(registry, name)
		armed.Add(-1)
	}
	regMu.Unlock()
}

// DisableAll disarms every site.
func DisableAll() {
	regMu.Lock()
	armed.Add(-int32(len(registry)))
	registry = map[string]*point{}
	regMu.Unlock()
}

// Info describes one armed site.
type Info struct {
	// Name is the fault site.
	Name string `json:"name"`
	// Spec is the armed spec, as given to Enable.
	Spec string `json:"spec"`
	// Hits counts evaluations that triggered the term so far.
	Hits int `json:"hits"`
}

// List snapshots every armed site, sorted by name.
func List() []Info {
	regMu.RLock()
	out := make([]Info, 0, len(registry))
	for _, p := range registry {
		p.mu.Lock()
		out = append(out, Info{Name: p.name, Spec: p.spec, Hits: p.hits})
		p.mu.Unlock()
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Hits reports how many times the named site has triggered (0 for
// unknown or never-triggered sites).
func Hits(name string) int {
	regMu.RLock()
	p := registry[name]
	regMu.RUnlock()
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}

// lookup resolves an armed site, disarming exhausted ones.
func lookup(name string) *point {
	regMu.RLock()
	p := registry[name]
	regMu.RUnlock()
	return p
}

// Inject evaluates the named site: nil while disarmed (the fast path is
// one atomic load), otherwise the armed term's effect — an *Error, ErrDrop,
// or an uninterruptible sleep followed by nil or an *Error. Partial-write
// sites return nil here; their effect applies through Partial.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return InjectCtx(context.Background(), name)
}

// InjectCtx is Inject with context-aware sleeps: an armed sleep returns
// early with ctx.Err() when the context expires first.
func InjectCtx(ctx context.Context, name string) error {
	if armed.Load() == 0 {
		return nil
	}
	p := lookup(name)
	if p == nil {
		return nil
	}
	fired, done := p.fire()
	if done {
		Disable(name)
	}
	if !fired {
		return nil
	}
	switch p.kind {
	case kindError:
		return &Error{Name: name, Msg: p.msg}
	case kindDrop:
		return ErrDrop
	case kindSleep, kindSleepError:
		t := time.NewTimer(p.sleep)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		if p.kind == kindSleepError {
			return &Error{Name: name, Msg: p.msg}
		}
	}
	return nil
}

// Partial evaluates a partial-write site: it returns how many of n bytes
// the caller should actually write — n while the site is disarmed or armed
// with a non-partial term, a truncated count when a partial term fires.
func Partial(name string, n int) int {
	if armed.Load() == 0 {
		return n
	}
	p := lookup(name)
	if p == nil || p.kind != kindPartial {
		return n
	}
	fired, done := p.fire()
	if done {
		Disable(name)
	}
	if !fired {
		return n
	}
	return int(float64(n) * p.fraction)
}

// EnableFromEnv arms every site listed in SIMSUB_FAILPOINTS
// (semicolon-separated name=spec pairs) and returns the armed names. Call
// it once at process boot; a malformed entry fails loudly rather than
// silently running a chaos experiment with half its faults missing.
func EnableFromEnv() ([]string, error) {
	v := os.Getenv(EnvVar)
	if v == "" {
		return nil, nil
	}
	var names []string
	for _, pair := range strings.Split(v, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, spec, ok := strings.Cut(pair, "=")
		if !ok {
			return names, fmt.Errorf("failpoint: %s entry %q is not name=spec", EnvVar, pair)
		}
		if err := Enable(strings.TrimSpace(name), spec); err != nil {
			return names, err
		}
		names = append(names, strings.TrimSpace(name))
	}
	return names, nil
}
