package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation is an elementwise nonlinearity.
type Activation int

// Supported activations. The paper's DQN uses ReLU in the hidden layer and
// sigmoid at the output (§6.1).
const (
	Linear Activation = iota
	ReLU
	Sigmoid
	Tanh
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// apply computes the activation of v.
func (a Activation) apply(v float64) float64 {
	switch a {
	case Linear:
		return v
	case ReLU:
		if v > 0 {
			return v
		}
		return 0
	case Sigmoid:
		return 1 / (1 + math.Exp(-v))
	case Tanh:
		return math.Tanh(v)
	default:
		panic("nn: unknown activation")
	}
}

// deriv computes the activation derivative given the activated output y.
func (a Activation) deriv(y float64) float64 {
	switch a {
	case Linear:
		return 1
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	default:
		panic("nn: unknown activation")
	}
}

// Dense is a fully connected layer y = act(W·x + b).
type Dense struct {
	W   *Tensor // Out×In
	B   *Tensor // 1×Out
	Act Activation

	// caches for backward
	inx  []float64
	outy []float64
}

// NewDense builds a dense layer with Xavier-initialized weights.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		W:   NewTensor(out, in),
		B:   NewTensor(1, out),
		Act: act,
	}
	d.W.InitXavier(rng)
	return d
}

// In returns the input width.
func (d *Dense) In() int { return d.W.Cols }

// Out returns the output width.
func (d *Dense) Out() int { return d.W.Rows }

// Forward computes the layer output, caching values for Backward.
func (d *Dense) Forward(x []float64) []float64 {
	out := d.W.Rows
	if cap(d.outy) < out {
		d.outy = make([]float64, out)
		d.inx = make([]float64, d.W.Cols)
	}
	d.outy = d.outy[:out]
	d.inx = d.inx[:d.W.Cols]
	copy(d.inx, x)
	d.W.MatVec(x, d.outy)
	for i := range d.outy {
		d.outy[i] = d.Act.apply(d.outy[i] + d.B.W[i])
	}
	y := make([]float64, out)
	copy(y, d.outy)
	return y
}

// Infer computes the layer output without touching the Backward caches,
// making it safe for concurrent use (inference only).
func (d *Dense) Infer(x []float64) []float64 {
	y := make([]float64, d.W.Rows)
	d.W.MatVec(x, y)
	for i := range y {
		y[i] = d.Act.apply(y[i] + d.B.W[i])
	}
	return y
}

// Backward accumulates parameter gradients for the most recent Forward and
// returns dL/dx. dy is dL/dy and is not retained.
func (d *Dense) Backward(dy []float64) []float64 {
	out := d.W.Rows
	if len(dy) != out {
		panic("nn: Dense.Backward gradient width mismatch")
	}
	dz := make([]float64, out)
	for i := range dz {
		dz[i] = dy[i] * d.Act.deriv(d.outy[i])
	}
	for i := range dz {
		d.B.G[i] += dz[i]
	}
	d.W.AccumOuter(dz, d.inx)
	dx := make([]float64, d.W.Cols)
	d.W.MatTVecAdd(dz, dx)
	return dx
}

// Params returns the layer's parameter tensors.
func (d *Dense) Params() Params { return Params{d.W, d.B} }

// MLP is a feed-forward stack of dense layers.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds an MLP with the given layer widths and per-layer
// activations; len(acts) must equal len(widths)-1.
func NewMLP(widths []int, acts []Activation, rng *rand.Rand) *MLP {
	if len(acts) != len(widths)-1 {
		panic("nn: NewMLP needs one activation per layer")
	}
	m := &MLP{}
	for i := 0; i < len(widths)-1; i++ {
		m.Layers = append(m.Layers, NewDense(widths[i], widths[i+1], acts[i], rng))
	}
	return m
}

// Forward runs the network, caching per-layer values for Backward.
func (m *MLP) Forward(x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Infer runs the network without recording anything for Backward; unlike
// Forward it is safe for concurrent use.
func (m *MLP) Infer(x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.Infer(x)
	}
	return x
}

// Backward accumulates gradients for the most recent Forward given dL/dOut
// and returns dL/dIn.
func (m *MLP) Backward(dy []float64) []float64 {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].Backward(dy)
	}
	return dy
}

// Params returns all parameter tensors in a stable order.
func (m *MLP) Params() Params {
	var p Params
	for _, l := range m.Layers {
		p = append(p, l.Params()...)
	}
	return p
}

// In returns the network input width.
func (m *MLP) In() int { return m.Layers[0].In() }

// Out returns the network output width.
func (m *MLP) Out() int { return m.Layers[len(m.Layers)-1].Out() }

// Clone returns a structural copy with the same parameter values and fresh
// gradient/cache state. Used for DQN target networks.
func (m *MLP) Clone() *MLP {
	out := &MLP{}
	for _, l := range m.Layers {
		nl := &Dense{
			W:   NewTensor(l.W.Rows, l.W.Cols),
			B:   NewTensor(l.B.Rows, l.B.Cols),
			Act: l.Act,
		}
		nl.W.CopyFrom(l.W)
		nl.B.CopyFrom(l.B)
		out.Layers = append(out.Layers, nl)
	}
	return out
}

// MSELoss computes ½·Σ(pred-target)² and its gradient with respect to pred.
// The ½ makes the gradient simply (pred - target).
func MSELoss(pred, target []float64) (loss float64, grad []float64) {
	if len(pred) != len(target) {
		panic("nn: MSELoss length mismatch")
	}
	grad = make([]float64, len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		grad[i] = d
		loss += 0.5 * d * d
	}
	return loss, grad
}
