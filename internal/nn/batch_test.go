package nn

import (
	"math/rand"
	"testing"
)

// randNet builds a small random MLP with the serving activation pair.
func randNet(seed int64, in, hidden, out int) *MLP {
	return NewMLP([]int{in, hidden, out}, []Activation{ReLU, Sigmoid}, rand.New(rand.NewSource(seed)))
}

func TestInferBatchBitIdenticalToInfer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range [][3]int{{2, 20, 2}, {3, 20, 5}, {4, 7, 3}, {1, 1, 1}} {
		net := randNet(7, shape[0], shape[1], shape[2])
		for _, b := range []int{1, 2, 3, 7, 64} {
			xs := make([]float64, b*shape[0])
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
			s := NewInferScratch()
			got := net.InferBatch(s, xs, b)
			for r := 0; r < b; r++ {
				want := net.Infer(xs[r*shape[0] : (r+1)*shape[0]])
				for j, w := range want {
					// bit-identical, not approximately equal: the batched
					// path must accumulate in the scalar path's order
					if got[r*shape[2]+j] != w {
						t.Fatalf("shape %v b=%d row %d out %d: batched %v != scalar %v",
							shape, b, r, j, got[r*shape[2]+j], w)
					}
				}
			}
			s.Release()
		}
	}
}

func TestInferBatchArgmaxMatchesScalarArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := randNet(9, 3, 20, 5)
	const b = 33
	xs := make([]float64, b*3)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	s := NewInferScratch()
	defer s.Release()
	actions := make([]int, b)
	net.InferBatchArgmax(s, xs, b, actions)
	for r := 0; r < b; r++ {
		q := net.Infer(xs[r*3 : (r+1)*3])
		best, bi := q[0], 0
		for j := 1; j < len(q); j++ {
			if q[j] > best {
				best, bi = q[j], j
			}
		}
		if actions[r] != bi {
			t.Fatalf("row %d: batched argmax %d != scalar argmax %d (q=%v)", r, actions[r], bi, q)
		}
	}
}

func TestInferBatchArgmaxTiesFirstMaxWins(t *testing.T) {
	// a zero-weight network outputs identical values for every action; the
	// argmax must pick index 0, matching the sequential first-max-wins rule
	net := randNet(3, 2, 2, 4)
	for _, l := range net.Layers {
		for i := range l.W.W {
			l.W.W[i] = 0
		}
		for i := range l.B.W {
			l.B.W[i] = 0
		}
	}
	s := NewInferScratch()
	defer s.Release()
	actions := make([]int, 2)
	net.InferBatchArgmax(s, []float64{0.1, 0.2, 0.3, 0.4}, 2, actions)
	for i, a := range actions {
		if a != 0 {
			t.Fatalf("row %d: tied outputs picked action %d, want 0", i, a)
		}
	}
}

func TestInferBatchZeroAlloc(t *testing.T) {
	net := randNet(11, 3, 20, 5)
	const b = 16
	xs := make([]float64, b*3)
	for i := range xs {
		xs[i] = float64(i) / 7
	}
	actions := make([]int, b)
	s := NewInferScratch()
	defer s.Release()
	net.InferBatchArgmax(s, xs, b, actions) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		net.InferBatchArgmax(s, xs, b, actions)
	})
	if allocs != 0 {
		t.Fatalf("InferBatchArgmax allocates %v times per call after warmup, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		net.InferInto(s, xs[:3])
	})
	if allocs != 0 {
		t.Fatalf("InferInto allocates %v times per call after warmup, want 0", allocs)
	}
}

func TestInferIntoBitIdentical(t *testing.T) {
	net := randNet(13, 2, 20, 3)
	s := NewInferScratch()
	defer s.Release()
	x := []float64{0.25, 0.75}
	got := net.InferInto(s, x)
	want := net.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out %d: InferInto %v != Infer %v", i, got[i], want[i])
		}
	}
}

func TestMatMulTShapePanics(t *testing.T) {
	net := randNet(17, 2, 3, 2)
	w := net.Layers[0].W
	defer func() {
		if recover() == nil {
			t.Fatal("MatMulT with mismatched shapes did not panic")
		}
	}()
	w.MatMulT(make([]float64, 3), 1, make([]float64, 3))
}
