package nn

import "math"

// Adam implements the Adam stochastic optimizer (Kingma & Ba, 2015) with
// bias-corrected first and second moment estimates. The paper trains both
// the DQN and t2vec models with Adam at learning rate 0.001 (§6.1).
type Adam struct {
	// LR is the learning rate (step size).
	LR float64
	// Beta1, Beta2 are the exponential decay rates for the moment estimates.
	Beta1, Beta2 float64
	// Eps avoids division by zero.
	Eps float64
	// Clip, when positive, clips each raw gradient element to [-Clip, Clip]
	// before the update — a common stabilizer for DQN training.
	Clip float64

	params Params
	m, v   [][]float64
	t      int
}

// NewAdam creates an optimizer over the given parameters with the standard
// defaults (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(params Params, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		params: params,
	}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, p.Size())
		a.v[i] = make([]float64, p.Size())
	}
	return a
}

// Step applies one Adam update from the accumulated gradients, then clears
// them.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j := range p.W {
			g := p.G[j]
			if a.Clip > 0 {
				if g > a.Clip {
					g = a.Clip
				} else if g < -a.Clip {
					g = -a.Clip
				}
			}
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mhat := m[j] / bc1
			vhat := v[j] / bc2
			p.W[j] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
	a.params.ZeroGrad()
}

// SGD is a plain stochastic-gradient-descent optimizer, provided as a
// baseline and for tests that need predictable single steps.
type SGD struct {
	// LR is the learning rate.
	LR     float64
	params Params
}

// NewSGD creates a plain SGD optimizer over the parameters.
func NewSGD(params Params, lr float64) *SGD {
	return &SGD{LR: lr, params: params}
}

// Step applies one gradient-descent update and clears the gradients.
func (s *SGD) Step() {
	for _, p := range s.params {
		for j := range p.W {
			p.W[j] -= s.LR * p.G[j]
		}
	}
	s.params.ZeroGrad()
}
