package nn

import (
	"fmt"
	"sync"
)

// This file is the batched inference path: the serving-side restructuring
// that turns per-state mat-vec policy evaluation into cross-request mat-mat
// products. A batch of B state vectors is packed into one row-major B×In
// matrix, each dense layer becomes a single blocked MatMulT against its
// weight matrix, and the final argmax is fused into the output-layer loop.
// Scratch activations come from a sync.Pool, so steady-state batched
// inference performs no allocation at all.
//
// Equivalence contract: for every row, InferBatch computes bit-identical
// outputs to the scalar Infer path. MatMulT accumulates each dot product
// in the same index order as Tensor.MatVec, so no floating-point
// reassociation can make a batched Q value (and hence a greedy action)
// differ from the sequential one.

// MatMulT computes y = x·Wᵀ for a row-major batch: x holds b rows of
// t.Cols values, y receives b rows of t.Rows values. It is the batched
// form of MatVec — row r of y equals MatVec over row r of x, bit for bit —
// blocked over output rows so one weight row streams against all b inputs
// while it is cache-resident. y must not alias x.
func (t *Tensor) MatMulT(x []float64, b int, y []float64) {
	if len(x) != b*t.Cols || len(y) != b*t.Rows {
		panic(fmt.Sprintf("nn: MatMulT shape mismatch: %dx%d with b=%d x[%d] y[%d]",
			t.Rows, t.Cols, b, len(x), len(y)))
	}
	in, out := t.Cols, t.Rows
	for r := 0; r < out; r++ {
		row := t.W[r*in : (r+1)*in]
		// unroll pairs of batch rows against the resident weight row
		i := 0
		for ; i+1 < b; i += 2 {
			x0 := x[i*in : (i+1)*in]
			x1 := x[(i+1)*in : (i+2)*in]
			var s0, s1 float64
			for c, v := range row {
				s0 += v * x0[c]
				s1 += v * x1[c]
			}
			y[i*out+r] = s0
			y[(i+1)*out+r] = s1
		}
		if i < b {
			xi := x[i*in : (i+1)*in]
			var s float64
			for c, v := range row {
				s += v * xi[c]
			}
			y[i*out+r] = s
		}
	}
}

// InferScratch is reusable activation scratch for batched (and repeated
// scalar) forward passes: two flat ping-pong buffers that grow to the
// largest batch×width product seen. Obtain one from NewInferScratch and
// return it with Release; a scratch is single-goroutine.
type InferScratch struct {
	a, b []float64
}

var inferScratchPool = sync.Pool{New: func() any { return &InferScratch{} }}

// NewInferScratch takes a scratch from the pool.
func NewInferScratch() *InferScratch { return inferScratchPool.Get().(*InferScratch) }

// Release returns the scratch to the pool; it must not be used afterwards,
// and any slice returned by InferBatch through it becomes invalid.
func (s *InferScratch) Release() { inferScratchPool.Put(s) }

// grow returns the two buffers resized to at least na and nb values.
func (s *InferScratch) grow(na, nb int) (a, b []float64) {
	if cap(s.a) < na {
		s.a = make([]float64, na)
	}
	if cap(s.b) < nb {
		s.b = make([]float64, nb)
	}
	return s.a[:na], s.b[:nb]
}

// maxWidth returns the widest layer output of the network.
func (m *MLP) maxWidth() int {
	w := m.In()
	for _, l := range m.Layers {
		if o := l.Out(); o > w {
			w = o
		}
	}
	return w
}

// InferBatch runs the network over a packed row-major batch of b input
// rows and returns the b×Out output matrix, valid until the scratch is
// reused or released. Each dense layer is one MatMulT plus a fused
// bias-and-activation sweep; nothing is recorded for Backward, and no
// allocation happens once the scratch has warmed up. Row i of the result
// is bit-identical to Infer over row i of xs.
func (m *MLP) InferBatch(s *InferScratch, xs []float64, b int) []float64 {
	if b <= 0 || len(xs) != b*m.In() {
		panic(fmt.Sprintf("nn: InferBatch shape mismatch: b=%d In=%d xs[%d]", b, m.In(), len(xs)))
	}
	w := m.maxWidth()
	cur, next := s.grow(b*w, b*w)
	cur = cur[:b*m.In()]
	copy(cur, xs)
	for _, l := range m.Layers {
		out := l.Out()
		next = next[:cap(next)]
		l.inferBatchInto(cur, b, next[:b*out])
		cur, next = next[:b*out], cur
	}
	// cur aliases one of the scratch buffers; hand it to the caller read-only
	return cur
}

// inferBatchInto computes the layer over a packed batch: y = act(x·Wᵀ + b).
func (d *Dense) inferBatchInto(x []float64, b int, y []float64) {
	out := d.W.Rows
	d.W.MatMulT(x, b, y)
	for i := 0; i < b; i++ {
		row := y[i*out : (i+1)*out]
		for j := range row {
			row[j] = d.Act.apply(row[j] + d.B.W[j])
		}
	}
}

// InferBatchArgmax is InferBatch fused with a per-row argmax over the
// output layer: actions[i] receives the first index of the maximum output
// of row i — the same first-max-wins rule as a scalar argmax over Infer —
// without materializing the output matrix for the caller. actions must
// hold b values.
func (m *MLP) InferBatchArgmax(s *InferScratch, xs []float64, b int, actions []int) {
	if len(actions) < b {
		panic(fmt.Sprintf("nn: InferBatchArgmax actions[%d] shorter than batch %d", len(actions), b))
	}
	q := m.InferBatch(s, xs, b)
	out := m.Out()
	for i := 0; i < b; i++ {
		row := q[i*out : (i+1)*out]
		best, bi := row[0], 0
		for j := 1; j < out; j++ {
			if row[j] > best {
				best, bi = row[j], j
			}
		}
		actions[i] = bi
	}
}

// InferInto is the zero-allocation scalar inference path: Infer with the
// activations carried in the caller's scratch. The returned slice is valid
// until the scratch is reused or released; it is bit-identical to Infer(x).
func (m *MLP) InferInto(s *InferScratch, x []float64) []float64 {
	return m.InferBatch(s, x, 1)
}
