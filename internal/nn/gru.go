package nn

import (
	"math"
	"math/rand"
)

// GRU is a gated recurrent unit cell (Cho et al. 2014), the recurrent
// building block of the t2vec encoder/decoder (§3.2 of the paper cites the
// RNN encoder-decoder framework):
//
//	z = σ(Wz·x + Uz·h + bz)          update gate
//	r = σ(Wr·x + Ur·h + br)          reset gate
//	ĥ = tanh(Wh·x + Uh·(r⊙h) + bh)   candidate state
//	h' = (1-z)⊙h + z⊙ĥ
type GRU struct {
	InDim, HiddenDim int
	Wz, Uz, Bz       *Tensor
	Wr, Ur, Br       *Tensor
	Wh, Uh, Bh       *Tensor
}

// NewGRU builds a GRU cell with Xavier-initialized weights.
func NewGRU(in, hidden int, rng *rand.Rand) *GRU {
	g := &GRU{
		InDim: in, HiddenDim: hidden,
		Wz: NewTensor(hidden, in), Uz: NewTensor(hidden, hidden), Bz: NewTensor(1, hidden),
		Wr: NewTensor(hidden, in), Ur: NewTensor(hidden, hidden), Br: NewTensor(1, hidden),
		Wh: NewTensor(hidden, in), Uh: NewTensor(hidden, hidden), Bh: NewTensor(1, hidden),
	}
	g.Wz.InitXavier(rng)
	g.Uz.InitXavier(rng)
	g.Wr.InitXavier(rng)
	g.Ur.InitXavier(rng)
	g.Wh.InitXavier(rng)
	g.Uh.InitXavier(rng)
	return g
}

// Params returns all parameter tensors in a stable order.
func (g *GRU) Params() Params {
	return Params{g.Wz, g.Uz, g.Bz, g.Wr, g.Ur, g.Br, g.Wh, g.Uh, g.Bh}
}

// StepInfer advances the hidden state by one input without recording
// anything for backprop: hOut = GRU(h, x). hOut must have length HiddenDim
// and may alias h. This is the O(1)-per-point primitive behind t2vec's
// incremental subtrajectory extension (Φinc = O(1) in Table 1).
func (g *GRU) StepInfer(h, x, hOut []float64) {
	hd := g.HiddenDim
	z := make([]float64, hd)
	r := make([]float64, hd)
	rh := make([]float64, hd)
	cand := make([]float64, hd)

	g.Wz.MatVec(x, z)
	g.Uz.MatVecAdd(h, z)
	g.Wr.MatVec(x, r)
	g.Ur.MatVecAdd(h, r)
	for i := 0; i < hd; i++ {
		z[i] = sigmoid(z[i] + g.Bz.W[i])
		r[i] = sigmoid(r[i] + g.Br.W[i])
		rh[i] = r[i] * h[i]
	}
	g.Wh.MatVec(x, cand)
	g.Uh.MatVecAdd(rh, cand)
	for i := 0; i < hd; i++ {
		c := math.Tanh(cand[i] + g.Bh.W[i])
		hOut[i] = (1-z[i])*h[i] + z[i]*c
	}
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// gruCache records one forward step for BPTT.
type gruCache struct {
	x, hPrev, z, r, rh, cand, h []float64
}

// GRURun is a recorded forward pass over a sequence, supporting
// backpropagation through time.
type GRURun struct {
	g      *GRU
	h0     []float64
	caches []gruCache
}

// NewRun begins a recorded sequence from initial hidden state h0 (copied).
// Pass nil for a zero initial state.
func (g *GRU) NewRun(h0 []float64) *GRURun {
	h := make([]float64, g.HiddenDim)
	copy(h, h0)
	return &GRURun{g: g, h0: h}
}

// H returns the current hidden state (the last step's output, or h0).
func (r *GRURun) H() []float64 {
	if len(r.caches) == 0 {
		return r.h0
	}
	return r.caches[len(r.caches)-1].h
}

// Steps returns the number of recorded steps.
func (r *GRURun) Steps() int { return len(r.caches) }

// HiddenAt returns the hidden state after step t (0-based).
func (r *GRURun) HiddenAt(t int) []float64 { return r.caches[t].h }

// Step consumes one input and returns the new hidden state. x is copied.
func (r *GRURun) Step(x []float64) []float64 {
	g := r.g
	hd := g.HiddenDim
	c := gruCache{
		x:     append([]float64(nil), x...),
		hPrev: append([]float64(nil), r.H()...),
		z:     make([]float64, hd),
		r:     make([]float64, hd),
		rh:    make([]float64, hd),
		cand:  make([]float64, hd),
		h:     make([]float64, hd),
	}
	g.Wz.MatVec(c.x, c.z)
	g.Uz.MatVecAdd(c.hPrev, c.z)
	g.Wr.MatVec(c.x, c.r)
	g.Ur.MatVecAdd(c.hPrev, c.r)
	for i := 0; i < hd; i++ {
		c.z[i] = sigmoid(c.z[i] + g.Bz.W[i])
		c.r[i] = sigmoid(c.r[i] + g.Br.W[i])
		c.rh[i] = c.r[i] * c.hPrev[i]
	}
	g.Wh.MatVec(c.x, c.cand)
	g.Uh.MatVecAdd(c.rh, c.cand)
	for i := 0; i < hd; i++ {
		c.cand[i] = math.Tanh(c.cand[i] + g.Bh.W[i])
		c.h[i] = (1-c.z[i])*c.hPrev[i] + c.z[i]*c.cand[i]
	}
	r.caches = append(r.caches, c)
	return c.h
}

// Backward runs BPTT over the recorded steps. dH[t] is dL/dh_t for each
// recorded step (entries may be nil when a step's hidden state does not
// receive a direct gradient); gradients are accumulated into the GRU
// parameter tensors. It returns dL/dh0 and, when dX is non-nil, fills
// dX[t] (length InDim each) with input gradients.
func (r *GRURun) Backward(dH [][]float64, dX [][]float64) []float64 {
	g := r.g
	hd := g.HiddenDim
	dh := make([]float64, hd) // gradient flowing into h_t from the future
	dhPrev := make([]float64, hd)
	daz := make([]float64, hd)
	dar := make([]float64, hd)
	dah := make([]float64, hd)
	drh := make([]float64, hd)
	for t := len(r.caches) - 1; t >= 0; t-- {
		c := r.caches[t]
		if dH != nil && dH[t] != nil {
			for i := range dh {
				dh[i] += dH[t][i]
			}
		}
		for i := range dhPrev {
			dhPrev[i] = 0
			drh[i] = 0
		}
		for i := 0; i < hd; i++ {
			// h = (1-z)·hPrev + z·cand
			dcand := dh[i] * c.z[i]
			dz := dh[i] * (c.cand[i] - c.hPrev[i])
			dhPrev[i] += dh[i] * (1 - c.z[i])
			dah[i] = dcand * (1 - c.cand[i]*c.cand[i])
			daz[i] = dz * c.z[i] * (1 - c.z[i])
		}
		// candidate path: ah = Wh·x + Uh·rh + bh
		g.Wh.AccumOuter(dah, c.x)
		g.Uh.AccumOuter(dah, c.rh)
		for i := 0; i < hd; i++ {
			g.Bh.G[i] += dah[i]
		}
		g.Uh.MatTVecAdd(dah, drh)
		for i := 0; i < hd; i++ {
			dr := drh[i] * c.hPrev[i]
			dhPrev[i] += drh[i] * c.r[i]
			dar[i] = dr * c.r[i] * (1 - c.r[i])
		}
		// reset gate path: ar = Wr·x + Ur·hPrev + br
		g.Wr.AccumOuter(dar, c.x)
		g.Ur.AccumOuter(dar, c.hPrev)
		for i := 0; i < hd; i++ {
			g.Br.G[i] += dar[i]
		}
		g.Ur.MatTVecAdd(dar, dhPrev)
		// update gate path: az = Wz·x + Uz·hPrev + bz
		g.Wz.AccumOuter(daz, c.x)
		g.Uz.AccumOuter(daz, c.hPrev)
		for i := 0; i < hd; i++ {
			g.Bz.G[i] += daz[i]
		}
		g.Uz.MatTVecAdd(daz, dhPrev)
		if dX != nil {
			dx := make([]float64, g.InDim)
			g.Wh.MatTVecAdd(dah, dx)
			g.Wr.MatTVecAdd(dar, dx)
			g.Wz.MatTVecAdd(daz, dx)
			dX[t] = dx
		}
		dh, dhPrev = dhPrev, dh
	}
	out := make([]float64, hd)
	copy(out, dh)
	return out
}
