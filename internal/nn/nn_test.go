package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestTensorMatVec(t *testing.T) {
	m := NewTensor(2, 3)
	copy(m.W, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	y := make([]float64, 2)
	m.MatVec(x, y)
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MatVec = %v, want [-2 -2]", y)
	}
	m.MatVecAdd(x, y)
	if y[0] != -4 || y[1] != -4 {
		t.Errorf("MatVecAdd = %v, want [-4 -4]", y)
	}
}

func TestTensorTransposedOps(t *testing.T) {
	m := NewTensor(2, 3)
	copy(m.W, []float64{1, 2, 3, 4, 5, 6})
	dy := []float64{1, -1}
	dx := make([]float64, 3)
	m.MatTVecAdd(dy, dx)
	// W^T dy = [1-4, 2-5, 3-6]
	want := []float64{-3, -3, -3}
	for i := range want {
		if dx[i] != want[i] {
			t.Errorf("MatTVecAdd[%d] = %v, want %v", i, dx[i], want[i])
		}
	}
	x := []float64{1, 2, 3}
	m.AccumOuter(dy, x)
	// G = dy x^T = [[1,2,3],[-1,-2,-3]]
	wantG := []float64{1, 2, 3, -1, -2, -3}
	for i := range wantG {
		if m.G[i] != wantG[i] {
			t.Errorf("AccumOuter G[%d] = %v, want %v", i, m.G[i], wantG[i])
		}
	}
}

func TestTensorShapePanics(t *testing.T) {
	m := NewTensor(2, 3)
	for name, fn := range map[string]func(){
		"MatVec":     func() { m.MatVec(make([]float64, 2), make([]float64, 2)) },
		"MatVecAdd":  func() { m.MatVecAdd(make([]float64, 3), make([]float64, 3)) },
		"AccumOuter": func() { m.AccumOuter(make([]float64, 3), make([]float64, 3)) },
		"MatTVecAdd": func() { m.MatTVecAdd(make([]float64, 3), make([]float64, 3)) },
		"CopyFrom":   func() { m.CopyFrom(NewTensor(3, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected shape panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestActivations(t *testing.T) {
	cases := []struct {
		act  Activation
		in   float64
		want float64
	}{
		{Linear, 3, 3},
		{ReLU, 3, 3},
		{ReLU, -3, 0},
		{Sigmoid, 0, 0.5},
		{Tanh, 0, 0},
	}
	for _, c := range cases {
		if got := c.act.apply(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v(%v) = %v, want %v", c.act, c.in, got, c.want)
		}
	}
	// derivative consistency by finite differences
	for _, act := range []Activation{Linear, Sigmoid, Tanh} {
		for _, v := range []float64{-1.3, -0.2, 0.4, 2.1} {
			const h = 1e-6
			num := (act.apply(v+h) - act.apply(v-h)) / (2 * h)
			ana := act.deriv(act.apply(v))
			if math.Abs(num-ana) > 1e-5 {
				t.Errorf("%v'(%v): numeric %v vs analytic %v", act, v, num, ana)
			}
		}
	}
}

// numGradMLP computes the numeric gradient of ½Σ(f(x)-target)² wrt every
// parameter with central differences.
func numGradMLP(m *MLP, x, target []float64, eps float64) [][]float64 {
	loss := func() float64 {
		out := m.Forward(x)
		l, _ := MSELoss(out, target)
		return l
	}
	var grads [][]float64
	for _, p := range m.Params() {
		g := make([]float64, p.Size())
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + eps
			lp := loss()
			p.W[i] = orig - eps
			lm := loss()
			p.W[i] = orig
			g[i] = (lp - lm) / (2 * eps)
		}
		grads = append(grads, g)
	}
	return grads
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, acts := range [][]Activation{
		{ReLU, Linear},
		{Tanh, Sigmoid},
		{Sigmoid, Linear},
	} {
		m := NewMLP([]int{3, 5, 2}, acts, rng)
		x := []float64{0.3, -0.7, 1.1}
		target := []float64{0.2, -0.4}
		out := m.Forward(x)
		_, dOut := MSELoss(out, target)
		m.Params().ZeroGrad()
		m.Forward(x)
		m.Backward(dOut)
		numeric := numGradMLP(m, x, target, 1e-6)
		for pi, p := range m.Params() {
			for i := range p.G {
				if math.Abs(p.G[i]-numeric[pi][i]) > 1e-4*(1+math.Abs(numeric[pi][i])) {
					t.Fatalf("acts %v: param %d[%d]: analytic %v vs numeric %v",
						acts, pi, i, p.G[i], numeric[pi][i])
				}
			}
		}
	}
}

func TestMLPInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m := NewMLP([]int{3, 4, 2}, []Activation{Tanh, Linear}, rng)
	x := []float64{0.5, -0.2, 0.9}
	target := []float64{1, 0}
	m.Forward(x)
	out := m.Forward(x)
	_, dOut := MSELoss(out, target)
	dx := m.Backward(dOut)
	// numeric input gradient
	const eps = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		lp, _ := MSELoss(m.Forward(x), target)
		x[i] = orig - eps
		lm, _ := MSELoss(m.Forward(x), target)
		x[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(dx[i]-num) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("dx[%d] = %v, numeric %v", i, dx[i], num)
		}
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m := NewMLP([]int{2, 8, 1}, []Activation{Tanh, Sigmoid}, rng)
	opt := NewAdam(m.Params(), 0.05)
	inputs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	targets := []float64{0, 1, 1, 0}
	for epoch := 0; epoch < 800; epoch++ {
		for i, in := range inputs {
			out := m.Forward(in)
			_, grad := MSELoss(out, []float64{targets[i]})
			m.Backward(grad)
		}
		opt.Step()
	}
	for i, in := range inputs {
		out := m.Forward(in)[0]
		if math.Abs(out-targets[i]) > 0.2 {
			t.Errorf("XOR(%v) = %v, want %v", in, out, targets[i])
		}
	}
}

func TestMLPInferMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	m := NewMLP([]int{3, 5, 2}, []Activation{ReLU, Sigmoid}, rng)
	x := []float64{0.2, -0.7, 1.3}
	a := m.Forward(x)
	b := m.Infer(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Infer differs from Forward: %v vs %v", a, b)
		}
	}
}

func TestMLPInferConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	m := NewMLP([]int{2, 8, 3}, []Activation{Tanh, Linear}, rng)
	x := []float64{0.4, -0.1}
	want := m.Infer(x)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			ok := true
			for i := 0; i < 200; i++ {
				got := m.Infer(x)
				for j := range got {
					if got[j] != want[j] {
						ok = false
					}
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent Infer produced inconsistent outputs")
		}
	}
}

func TestMLPClone(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	m := NewMLP([]int{2, 3, 2}, []Activation{ReLU, Linear}, rng)
	c := m.Clone()
	x := []float64{0.4, -0.9}
	a, b := m.Forward(x), c.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clone output differs: %v vs %v", a, b)
		}
	}
	// mutate original; clone must not change
	m.Layers[0].W.W[0] += 1
	b2 := c.Forward(x)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatal("clone shares storage with original")
		}
	}
	// target-network style sync
	c.Params().CopyFrom(m.Params())
	a3, b3 := m.Forward(x), c.Forward(x)
	for i := range a3 {
		if a3[i] != b3[i] {
			t.Fatal("CopyFrom did not synchronize parameters")
		}
	}
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	m := NewMLP([]int{4, 8, 3}, []Activation{Tanh, Linear}, rng)
	opt := NewAdam(m.Params(), 0.01)
	x := []float64{0.1, 0.5, -0.3, 0.8}
	target := []float64{1, -1, 0.5}
	first, _ := MSELoss(m.Forward(x), target)
	for i := 0; i < 200; i++ {
		out := m.Forward(x)
		_, grad := MSELoss(out, target)
		m.Backward(grad)
		opt.Step()
	}
	last, _ := MSELoss(m.Forward(x), target)
	if last > first/100 {
		t.Errorf("Adam failed to fit: loss %v -> %v", first, last)
	}
}

func TestSGDReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m := NewMLP([]int{2, 6, 1}, []Activation{Tanh, Linear}, rng)
	opt := NewSGD(m.Params(), 0.05)
	x := []float64{0.3, -0.6}
	target := []float64{0.7}
	first, _ := MSELoss(m.Forward(x), target)
	for i := 0; i < 300; i++ {
		out := m.Forward(x)
		_, grad := MSELoss(out, target)
		m.Backward(grad)
		opt.Step()
	}
	last, _ := MSELoss(m.Forward(x), target)
	if last > first/10 {
		t.Errorf("SGD failed to reduce loss: %v -> %v", first, last)
	}
}

func TestAdamGradientClip(t *testing.T) {
	p := NewTensor(1, 1)
	opt := NewAdam(Params{p}, 0.1)
	opt.Clip = 1
	p.G[0] = 1000
	opt.Step()
	// with clipping, the first Adam step is bounded by ~LR
	if math.Abs(p.W[0]) > 0.2 {
		t.Errorf("clipped Adam step moved parameter by %v", p.W[0])
	}
	if p.G[0] != 0 {
		t.Error("Step should clear gradients")
	}
}

func TestGRUStepInferMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	g := NewGRU(3, 5, rng)
	run := g.NewRun(nil)
	h := make([]float64, 5)
	xs := [][]float64{{1, 0, -1}, {0.5, 0.5, 0.5}, {-0.2, 0.8, 0.1}}
	for _, x := range xs {
		run.Step(x)
		g.StepInfer(h, x, h)
	}
	for i := range h {
		if math.Abs(h[i]-run.H()[i]) > 1e-12 {
			t.Fatalf("StepInfer diverges from recorded run at %d: %v vs %v", i, h[i], run.H()[i])
		}
	}
	if run.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", run.Steps())
	}
}

func TestGRUGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	g := NewGRU(2, 4, rng)
	xs := [][]float64{{0.5, -0.3}, {0.1, 0.9}, {-0.7, 0.2}}
	target := []float64{0.3, -0.1, 0.5, 0.2}

	loss := func() float64 {
		run := g.NewRun(nil)
		for _, x := range xs {
			run.Step(x)
		}
		l, _ := MSELoss(run.H(), target)
		return l
	}

	// analytic gradients: backprop only through the final hidden state
	g.Params().ZeroGrad()
	run := g.NewRun(nil)
	for _, x := range xs {
		run.Step(x)
	}
	_, dLast := MSELoss(run.H(), target)
	dH := make([][]float64, len(xs))
	dH[len(xs)-1] = dLast
	dX := make([][]float64, len(xs))
	run.Backward(dH, dX)

	const eps = 1e-6
	for pi, p := range g.Params() {
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + eps
			lp := loss()
			p.W[i] = orig - eps
			lm := loss()
			p.W[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(p.G[i]-num) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %d[%d]: analytic %v vs numeric %v", pi, i, p.G[i], num)
			}
		}
	}

	// input gradient check
	for ti, x := range xs {
		for i := range x {
			orig := x[i]
			x[i] = orig + eps
			lp := loss()
			x[i] = orig - eps
			lm := loss()
			x[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(dX[ti][i]-num) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("input %d[%d]: analytic %v vs numeric %v", ti, i, dX[ti][i], num)
			}
		}
	}
}

func TestGRUGradientCheckMultiStepLoss(t *testing.T) {
	// gradients with a loss attached to every step's hidden state
	rng := rand.New(rand.NewSource(50))
	g := NewGRU(2, 3, rng)
	xs := [][]float64{{0.4, 0.1}, {-0.5, 0.3}}
	targets := [][]float64{{0.1, 0.2, -0.1}, {-0.3, 0.4, 0.2}}

	loss := func() float64 {
		run := g.NewRun(nil)
		total := 0.0
		for t2, x := range xs {
			h := run.Step(x)
			l, _ := MSELoss(h, targets[t2])
			total += l
		}
		return total
	}

	g.Params().ZeroGrad()
	run := g.NewRun(nil)
	dH := make([][]float64, len(xs))
	for t2, x := range xs {
		h := run.Step(x)
		_, dH[t2] = MSELoss(h, targets[t2])
	}
	run.Backward(dH, nil)

	const eps = 1e-6
	for pi, p := range g.Params() {
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + eps
			lp := loss()
			p.W[i] = orig - eps
			lm := loss()
			p.W[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(p.G[i]-num) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %d[%d]: analytic %v vs numeric %v", pi, i, p.G[i], num)
			}
		}
	}
}

func TestGRUInitialHiddenGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := NewGRU(2, 3, rng)
	h0 := []float64{0.2, -0.4, 0.6}
	x := []float64{0.3, 0.7}
	target := []float64{0, 0, 0}

	loss := func() float64 {
		run := g.NewRun(h0)
		run.Step(x)
		l, _ := MSELoss(run.H(), target)
		return l
	}

	g.Params().ZeroGrad()
	run := g.NewRun(h0)
	run.Step(x)
	_, dLast := MSELoss(run.H(), target)
	dh0 := run.Backward([][]float64{dLast}, nil)

	const eps = 1e-6
	for i := range h0 {
		orig := h0[i]
		h0[i] = orig + eps
		lp := loss()
		h0[i] = orig - eps
		lm := loss()
		h0[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(dh0[i]-num) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("dh0[%d]: analytic %v vs numeric %v", i, dh0[i], num)
		}
	}
}

func TestMLPSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	m := NewMLP([]int{3, 20, 5}, []Activation{ReLU, Sigmoid}, rng)
	var buf bytes.Buffer
	if err := SaveMLP(&buf, m); err != nil {
		t.Fatalf("SaveMLP: %v", err)
	}
	got, err := LoadMLP(&buf)
	if err != nil {
		t.Fatalf("LoadMLP: %v", err)
	}
	x := []float64{0.1, -0.5, 0.8}
	a, b := m.Forward(x), got.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round-tripped MLP output differs: %v vs %v", a, b)
		}
	}
}

func TestGRUSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := NewGRU(4, 6, rng)
	var buf bytes.Buffer
	if err := SaveGRU(&buf, g); err != nil {
		t.Fatalf("SaveGRU: %v", err)
	}
	got, err := LoadGRU(&buf)
	if err != nil {
		t.Fatalf("LoadGRU: %v", err)
	}
	h1 := make([]float64, 6)
	h2 := make([]float64, 6)
	x := []float64{1, -1, 0.5, 0.2}
	g.StepInfer(h1, x, h1)
	got.StepInfer(h2, x, h2)
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("round-tripped GRU hidden differs: %v vs %v", h1, h2)
		}
	}
}

func TestLoadMLPCorrupt(t *testing.T) {
	if _, err := LoadMLP(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("expected error decoding garbage")
	}
}

func TestSaveLoadMLPFile(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	m := NewMLP([]int{2, 3, 1}, []Activation{ReLU, Linear}, rng)
	path := t.TempDir() + "/model.gob"
	if err := SaveMLPFile(path, m); err != nil {
		t.Fatalf("SaveMLPFile: %v", err)
	}
	got, err := LoadMLPFile(path)
	if err != nil {
		t.Fatalf("LoadMLPFile: %v", err)
	}
	x := []float64{0.5, 0.5}
	if m.Forward(x)[0] != got.Forward(x)[0] {
		t.Error("file round trip changed outputs")
	}
}

func TestMSELoss(t *testing.T) {
	loss, grad := MSELoss([]float64{1, 2}, []float64{0, 4})
	if math.Abs(loss-2.5) > 1e-12 { // 0.5*(1+4)
		t.Errorf("loss = %v, want 2.5", loss)
	}
	if grad[0] != 1 || grad[1] != -2 {
		t.Errorf("grad = %v, want [1 -2]", grad)
	}
}

func TestParamsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	m := NewMLP([]int{3, 20, 5}, []Activation{ReLU, Sigmoid}, rng)
	want := 3*20 + 20 + 20*5 + 5
	if got := m.Params().Count(); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
}
