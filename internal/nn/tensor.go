// Package nn is a small, dependency-free neural-network substrate: dense
// layers, multi-layer perceptrons, a GRU cell with backpropagation through
// time, mean-squared-error loss and the Adam optimizer.
//
// It exists because the paper's learned components — the DQN policy network
// (§5.2) and the t2vec trajectory encoder (§3.2) — need a deep-learning
// stack, and this reproduction is stdlib-only. The networks involved are
// tiny (two dense layers for DQN, one GRU layer for t2vec), so a clear
// float64 CPU implementation is both faithful and fast enough.
//
// All randomness flows through explicitly seeded *rand.Rand values, making
// training runs reproducible.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix of parameters together with its
// gradient accumulator. A vector is a 1×n or n×1 tensor.
type Tensor struct {
	Rows, Cols int
	// W holds the parameter values, len Rows*Cols.
	W []float64
	// G accumulates gradients of the loss with respect to W.
	G []float64
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(rows, cols int) *Tensor {
	return &Tensor{
		Rows: rows, Cols: cols,
		W: make([]float64, rows*cols),
		G: make([]float64, rows*cols),
	}
}

// At returns the element at (r, c).
func (t *Tensor) At(r, c int) float64 { return t.W[r*t.Cols+c] }

// Set assigns the element at (r, c).
func (t *Tensor) Set(r, c int, v float64) { t.W[r*t.Cols+c] = v }

// ZeroGrad clears the gradient accumulator.
func (t *Tensor) ZeroGrad() {
	for i := range t.G {
		t.G[i] = 0
	}
}

// Size returns the number of parameters.
func (t *Tensor) Size() int { return len(t.W) }

// InitXavier fills the tensor with Glorot-uniform values scaled by the
// tensor fan-in and fan-out, using the provided source of randomness.
func (t *Tensor) InitXavier(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(t.Rows+t.Cols))
	for i := range t.W {
		t.W[i] = (rng.Float64()*2 - 1) * limit
	}
}

// CopyFrom copies parameter values (not gradients) from src. Shapes must
// match.
func (t *Tensor) CopyFrom(src *Tensor) {
	if t.Rows != src.Rows || t.Cols != src.Cols {
		panic(fmt.Sprintf("nn: CopyFrom shape mismatch %dx%d vs %dx%d", t.Rows, t.Cols, src.Rows, src.Cols))
	}
	copy(t.W, src.W)
}

// MatVec computes y = W·x where x has length Cols and y length Rows.
// y must not alias x.
func (t *Tensor) MatVec(x, y []float64) {
	if len(x) != t.Cols || len(y) != t.Rows {
		panic(fmt.Sprintf("nn: MatVec shape mismatch: %dx%d with x[%d] y[%d]", t.Rows, t.Cols, len(x), len(y)))
	}
	for r := 0; r < t.Rows; r++ {
		row := t.W[r*t.Cols : (r+1)*t.Cols]
		var s float64
		for c, v := range row {
			s += v * x[c]
		}
		y[r] = s
	}
}

// MatVecAdd computes y += W·x.
func (t *Tensor) MatVecAdd(x, y []float64) {
	if len(x) != t.Cols || len(y) != t.Rows {
		panic(fmt.Sprintf("nn: MatVecAdd shape mismatch: %dx%d with x[%d] y[%d]", t.Rows, t.Cols, len(x), len(y)))
	}
	for r := 0; r < t.Rows; r++ {
		row := t.W[r*t.Cols : (r+1)*t.Cols]
		var s float64
		for c, v := range row {
			s += v * x[c]
		}
		y[r] += s
	}
}

// AccumOuter accumulates the outer product dy·xᵀ into the gradient: used for
// dL/dW when y = W·x and dy = dL/dy.
func (t *Tensor) AccumOuter(dy, x []float64) {
	if len(dy) != t.Rows || len(x) != t.Cols {
		panic("nn: AccumOuter shape mismatch")
	}
	for r, dyr := range dy {
		if dyr == 0 {
			continue
		}
		g := t.G[r*t.Cols : (r+1)*t.Cols]
		for c, xc := range x {
			g[c] += dyr * xc
		}
	}
}

// MatTVecAdd computes dx += Wᵀ·dy: the input gradient when y = W·x.
func (t *Tensor) MatTVecAdd(dy, dx []float64) {
	if len(dy) != t.Rows || len(dx) != t.Cols {
		panic("nn: MatTVecAdd shape mismatch")
	}
	for r, dyr := range dy {
		if dyr == 0 {
			continue
		}
		row := t.W[r*t.Cols : (r+1)*t.Cols]
		for c, v := range row {
			dx[c] += dyr * v
		}
	}
}

// Params is a collection of parameter tensors that an optimizer updates as a
// unit.
type Params []*Tensor

// ZeroGrad clears every tensor's gradient.
func (p Params) ZeroGrad() {
	for _, t := range p {
		t.ZeroGrad()
	}
}

// Count returns the total number of scalar parameters.
func (p Params) Count() int {
	n := 0
	for _, t := range p {
		n += t.Size()
	}
	return n
}

// CopyFrom copies parameter values tensor-by-tensor (used for DQN target
// network synchronization). Lengths and shapes must match.
func (p Params) CopyFrom(src Params) {
	if len(p) != len(src) {
		panic("nn: Params.CopyFrom length mismatch")
	}
	for i := range p {
		p[i].CopyFrom(src[i])
	}
}
