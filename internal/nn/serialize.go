package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// mlpWire is the gob wire form of an MLP.
type mlpWire struct {
	Ins, Outs []int
	Acts      []int
	Weights   [][]float64
	Biases    [][]float64
}

// SaveMLP serializes an MLP (architecture and parameters) with encoding/gob.
func SaveMLP(w io.Writer, m *MLP) error {
	var wire mlpWire
	for _, l := range m.Layers {
		wire.Ins = append(wire.Ins, l.In())
		wire.Outs = append(wire.Outs, l.Out())
		wire.Acts = append(wire.Acts, int(l.Act))
		wire.Weights = append(wire.Weights, append([]float64(nil), l.W.W...))
		wire.Biases = append(wire.Biases, append([]float64(nil), l.B.W...))
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadMLP reads an MLP previously written by SaveMLP.
func LoadMLP(r io.Reader) (*MLP, error) {
	var wire mlpWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("nn: decoding MLP: %w", err)
	}
	m := &MLP{}
	for i := range wire.Ins {
		l := &Dense{
			W:   NewTensor(wire.Outs[i], wire.Ins[i]),
			B:   NewTensor(1, wire.Outs[i]),
			Act: Activation(wire.Acts[i]),
		}
		if len(wire.Weights[i]) != l.W.Size() || len(wire.Biases[i]) != l.B.Size() {
			return nil, fmt.Errorf("nn: MLP layer %d has inconsistent sizes", i)
		}
		copy(l.W.W, wire.Weights[i])
		copy(l.B.W, wire.Biases[i])
		m.Layers = append(m.Layers, l)
	}
	if len(m.Layers) == 0 {
		return nil, fmt.Errorf("nn: decoded MLP has no layers")
	}
	return m, nil
}

// SaveMLPFile writes the MLP to the named file.
func SaveMLPFile(path string, m *MLP) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return SaveMLP(f, m)
}

// LoadMLPFile reads an MLP from the named file.
func LoadMLPFile(path string) (*MLP, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadMLP(f)
}

// gruWire is the gob wire form of a GRU cell.
type gruWire struct {
	In, Hidden int
	Tensors    [][]float64
}

// SaveGRU serializes a GRU cell with encoding/gob.
func SaveGRU(w io.Writer, g *GRU) error {
	wire := gruWire{In: g.InDim, Hidden: g.HiddenDim}
	for _, t := range g.Params() {
		wire.Tensors = append(wire.Tensors, append([]float64(nil), t.W...))
	}
	return gob.NewEncoder(w).Encode(wire)
}

// LoadGRU reads a GRU cell previously written by SaveGRU.
func LoadGRU(r io.Reader) (*GRU, error) {
	var wire gruWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("nn: decoding GRU: %w", err)
	}
	g := &GRU{
		InDim: wire.In, HiddenDim: wire.Hidden,
		Wz: NewTensor(wire.Hidden, wire.In), Uz: NewTensor(wire.Hidden, wire.Hidden), Bz: NewTensor(1, wire.Hidden),
		Wr: NewTensor(wire.Hidden, wire.In), Ur: NewTensor(wire.Hidden, wire.Hidden), Br: NewTensor(1, wire.Hidden),
		Wh: NewTensor(wire.Hidden, wire.In), Uh: NewTensor(wire.Hidden, wire.Hidden), Bh: NewTensor(1, wire.Hidden),
	}
	ps := g.Params()
	if len(wire.Tensors) != len(ps) {
		return nil, fmt.Errorf("nn: GRU wire has %d tensors, want %d", len(wire.Tensors), len(ps))
	}
	for i, t := range ps {
		if len(wire.Tensors[i]) != t.Size() {
			return nil, fmt.Errorf("nn: GRU tensor %d has %d values, want %d", i, len(wire.Tensors[i]), t.Size())
		}
		copy(t.W, wire.Tensors[i])
	}
	return g, nil
}
