package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"simsub/api"
	"simsub/client"
	"simsub/internal/engine"
	"simsub/internal/failpoint"
	"simsub/internal/geo"
	"simsub/internal/router"
	"simsub/internal/server"
	"simsub/internal/storage"
	"simsub/internal/traj"
)

// fleet is an in-process router over real shard nodes: every component
// runs in this test binary, so the race detector sees all of it and armed
// failpoints hit every layer at once.
type fleet struct {
	engines []*engine.Engine
	r       *router.Router
}

func newFleet(t *testing.T, nodes int, mut func(*router.Config)) *fleet {
	return newFleetEng(t, nodes, engine.Config{Shards: 2, CacheSize: 64, Index: engine.ScanAll}, mut)
}

func newFleetEng(t *testing.T, nodes int, engCfg engine.Config, mut func(*router.Config)) *fleet {
	t.Helper()
	fl := &fleet{}
	var urls []string
	for i := 0; i < nodes; i++ {
		eng := engine.New(engCfg)
		srv := httptest.NewServer(server.New(eng, server.Options{EnableFailpoints: true}))
		t.Cleanup(srv.Close)
		fl.engines = append(fl.engines, eng)
		urls = append(urls, srv.URL)
	}
	cfg := router.Config{
		Nodes: urls,
		Retry: client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fl.r = r
	return fl
}

func randWalk(rng *rand.Rand, n int) traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64() * 0.3
		y += rng.NormFloat64() * 0.3
		pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
	}
	return traj.New(pts...)
}

func corpus(rng *rand.Rand, n int) []api.Trajectory {
	out := make([]api.Trajectory, n)
	for i := range out {
		out[i] = api.FromTraj(randWalk(rng, 8+rng.Intn(8)))
	}
	return out
}

// rankingBytes reduces a set of specs to the canonical JSON of their
// rankings — the "byte-identical once faults clear" currency.
func rankingBytes(t *testing.T, r *router.Router, specs []api.QuerySpec) ([]byte, *api.Error) {
	t.Helper()
	var all [][]api.Match
	for _, spec := range specs {
		res := r.QueryOne(context.Background(), spec)
		if res.Error != nil {
			return nil, res.Error
		}
		if res.Partial != nil {
			return nil, api.Errorf(api.CodeOverloaded, "partial over %d/%d groups", res.Partial.NodesFailed, res.Partial.NodesTotal)
		}
		all = append(all, res.Matches)
	}
	buf, err := json.Marshal(all)
	if err != nil {
		t.Fatal(err)
	}
	return buf, nil
}

// TestChaosQueryStorm is the flagship: a 2-node fleet answers a concurrent
// query storm while transport errors, severed connections and slow scans
// are being injected at every layer. Invariants under fire: every query
// returns within its deadline (bounded tail), every failure is a typed
// api.Error, and nothing deadlocks. Once the faults clear, the admission
// queues drain to zero, the circuit breakers close, and the fleet answers
// the pre-chaos specs with byte-identical rankings.
func TestChaosQueryStorm(t *testing.T) {
	failpoint.DisableAll()
	defer failpoint.DisableAll()

	rng := rand.New(rand.NewSource(42))
	fl := newFleet(t, 2, func(c *router.Config) {
		c.BreakerThreshold = 3
		c.BreakerCooldown = 100 * time.Millisecond
	})
	if _, err := fl.r.Load(context.Background(), corpus(rng, 150)); err != nil {
		t.Fatalf("load: %v", err)
	}

	specs := make([]api.QuerySpec, 6)
	for i := range specs {
		specs[i] = api.QuerySpec{Query: api.FromTraj(randWalk(rng, 6)), K: 5 + i}
	}
	baseline, aerr := rankingBytes(t, fl.r, specs)
	if aerr != nil {
		t.Fatalf("baseline: %v", aerr)
	}

	// chaos on: every layer at once
	for site, spec := range map[string]string{
		"router/transport": "25%error(chaos: transport torn)",
		"server/request":   "20%drop",
		"engine/scan":      "10%sleep(3ms)",
	} {
		if err := failpoint.Enable(site, spec); err != nil {
			t.Fatal(err)
		}
	}

	const (
		workers    = 8
		perWorker  = 25
		perQueryTO = 5 * time.Second
	)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		succeeded int
		failed    int
		worstWall time.Duration
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		t.Errorf(format, args...)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perWorker; i++ {
				spec := api.QuerySpec{Query: api.FromTraj(randWalk(wrng, 6)), K: 5}
				ctx, cancel := context.WithTimeout(context.Background(), perQueryTO)
				start := time.Now()
				var qerr *api.Error
				if i%2 == 0 {
					res := fl.r.QueryOne(ctx, spec)
					qerr = res.Error
				} else {
					_, err := fl.r.QueryStream(ctx, spec, func(api.Match) error { return nil })
					if err != nil {
						var ae *api.Error
						if !errors.As(err, &ae) {
							fail("worker %d query %d: untyped error %v", w, i, err)
							cancel()
							continue
						}
						qerr = ae
					}
				}
				wall := time.Since(start)
				cancel()
				mu.Lock()
				if wall > worstWall {
					worstWall = wall
				}
				if qerr == nil {
					succeeded++
				} else {
					failed++
				}
				mu.Unlock()
				if wall >= perQueryTO {
					fail("worker %d query %d took %v: unbounded under chaos", w, i, wall)
				}
				if qerr != nil && qerr.Code == "" {
					fail("worker %d query %d: failure without a typed code: %+v", w, i, qerr)
				}
			}
		}(w)
	}
	wg.Wait()
	t.Logf("storm: %d ok, %d typed failures, worst wall %v", succeeded, failed, worstWall)
	if succeeded == 0 {
		t.Fatal("no query survived the storm: the fault rates should leave most traffic alive")
	}

	// chaos off: the fleet must converge back to exact pre-chaos behavior
	failpoint.DisableAll()
	deadline := time.Now().Add(15 * time.Second)
	var after []byte
	for {
		var aerr *api.Error
		after, aerr = rankingBytes(t, fl.r, specs)
		if aerr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered after faults cleared: %v", aerr)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !bytes.Equal(baseline, after) {
		t.Fatal("post-chaos rankings differ from the pre-chaos baseline")
	}

	// no stuck slots anywhere: admission queues empty, nothing in flight
	for i, eng := range fl.engines {
		st := eng.Stats()
		if st.QueueDepth != 0 || st.InFlight != 0 {
			t.Errorf("node %d: queue_depth=%d in_flight=%d after the storm, want 0/0", i, st.QueueDepth, st.InFlight)
		}
	}
	// breakers close again (the recovery queries above act as probes)
	stats, err := fl.r.Stats(context.Background())
	if err != nil {
		t.Fatalf("stats after recovery: %v", err)
	}
	for _, n := range stats.Router.Nodes {
		if n.Breaker == "open" {
			t.Errorf("node %s breaker still open after recovery", n.Node)
		}
	}
}

// TestChaosOverloadShedsAndRecovers floods a tiny-capacity fleet far past
// its admission limits: the overflow must be shed with typed overloaded
// errors carrying Retry-After hints — not queued unboundedly, not hung —
// and service must be clean again afterwards.
func TestChaosOverloadShedsAndRecovers(t *testing.T) {
	failpoint.DisableAll()
	defer failpoint.DisableAll()

	rng := rand.New(rand.NewSource(43))
	// a deliberately tiny node: 2 admission slots, 8 queue spots — the
	// 32-worker burst below must overflow it
	fl := newFleetEng(t, 1,
		engine.Config{Shards: 2, CacheSize: 0, Index: engine.ScanAll, QuerySlots: 2, QueueLimit: 8},
		func(c *router.Config) {
			c.Retry = client.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
		})
	engines := fl.engines
	// slow every scan so the burst piles up on the queue
	if _, err := fl.r.Load(context.Background(), corpus(rng, 80)); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := failpoint.Enable("engine/scan", "sleep(20ms)"); err != nil {
		t.Fatal(err)
	}

	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		ok, shed   int
		otherFails []string
	)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(int64(200 + w)))
			for i := 0; i < 4; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				res := fl.r.QueryOne(ctx, api.QuerySpec{Query: api.FromTraj(randWalk(wrng, 6)), K: 3})
				cancel()
				mu.Lock()
				switch {
				case res.Error == nil:
					ok++
				case res.Error.Code == api.CodeOverloaded:
					shed++
					if res.Error.RetryAfterMS <= 0 {
						otherFails = append(otherFails, fmt.Sprintf("overloaded without Retry-After: %+v", res.Error))
					}
				default:
					otherFails = append(otherFails, fmt.Sprintf("unexpected failure: %+v", res.Error))
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	failpoint.DisableAll()
	t.Logf("burst: %d ok, %d shed", ok, shed)
	for _, f := range otherFails {
		t.Error(f)
	}
	if ok == 0 {
		t.Fatal("nothing was admitted during the burst")
	}
	if shed == 0 {
		t.Fatal("a 32-way burst against 2 slots + 8 queue spots shed nothing")
	}

	// afterwards: queue drained, and a fresh query is served cleanly
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := engines[0].Stats()
		if st.QueueDepth == 0 && st.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission never drained: queue_depth=%d in_flight=%d", st.QueueDepth, st.InFlight)
		}
		time.Sleep(5 * time.Millisecond)
	}
	res := fl.r.QueryOne(context.Background(), api.QuerySpec{Query: api.FromTraj(randWalk(rng, 6)), K: 3})
	if res.Error != nil {
		t.Fatalf("query after the burst: %v", res.Error)
	}
}

// TestChaosStorageFaults drives the durable write path through injected
// disk trouble: fsync stalls only slow ingest down, a failing append is a
// typed error that leaves the engine/store agreed on the committed prefix,
// and after the faults clear a snapshot + reopen serves the full corpus.
func TestChaosStorageFaults(t *testing.T) {
	failpoint.DisableAll()
	defer failpoint.DisableAll()

	dir := t.TempDir()
	st, _, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Shards: 2})
	if err := eng.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	batch := func(n int) []traj.Trajectory {
		out := make([]traj.Trajectory, n)
		for i := range out {
			out[i] = randWalk(rng, 10)
		}
		return out
	}

	// disk stalls: ingest survives, just slower
	if err := failpoint.Enable("storage/fsync", "2*sleep(30ms)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Add(batch(20)); err != nil {
		t.Fatalf("ingest under fsync stalls: %v", err)
	}

	// hard append failure: typed error, consistent prefix
	if err := failpoint.Enable("storage/append", "error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Add(batch(10)); err == nil {
		t.Fatal("append with a dead disk succeeded")
	}
	if eng.Len() != 20 || st.Len() != 20 {
		t.Fatalf("after failed append: engine=%d store=%d, want 20/20", eng.Len(), st.Len())
	}

	// faults clear: ingest resumes, snapshot commits, reopen recovers all
	failpoint.DisableAll()
	if _, err := eng.Add(batch(15)); err != nil {
		t.Fatalf("ingest after faults cleared: %v", err)
	}
	if err := st.Snapshot(); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st2, rs, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 35 {
		t.Fatalf("recovered %d trajectories, want 35 (recovery: %s)", st2.Len(), rs.String())
	}
}

// TestChaosSnapshotRenameFault: a failed snapshot commit rename must leave
// the previous snapshot intact — recovery still replays the full log.
func TestChaosSnapshotRenameFault(t *testing.T) {
	failpoint.DisableAll()
	defer failpoint.DisableAll()

	dir := t.TempDir()
	st, _, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(45))
	ts := make([]traj.Trajectory, 12)
	for i := range ts {
		ts[i] = randWalk(rng, 8)
	}
	if _, err := st.Append(ts); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("storage/snapshot-rename", "error(rename lost)"); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(); err == nil {
		t.Fatal("snapshot with a failing rename succeeded")
	}
	failpoint.DisableAll()
	if err := st.Close(); err != nil {
		t.Fatalf("close after failed snapshot: %v", err)
	}
	st2, _, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatalf("reopen after failed snapshot: %v", err)
	}
	defer st2.Close()
	if st2.Len() != len(ts) {
		t.Fatalf("recovered %d trajectories, want %d", st2.Len(), len(ts))
	}
}
