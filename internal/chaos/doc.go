// Package chaos holds the fault-injection test suite: an in-process
// router-plus-shard-nodes fleet driven under armed failpoints (transport
// errors, dropped connections, slow scans, disk faults) to prove the
// system's overload and resilience story end to end — bounded tail
// latency, typed-only failures, no stuck admission slots, and
// byte-identical rankings once the faults clear.
//
// The suite lives entirely in _test files; this package intentionally
// exports nothing. Every component shares the process-global failpoint
// registry (internal/failpoint), so arming a site here affects the router,
// the shard servers, their engines and their stores alike — which is
// exactly what the chaos tests want. Run it with the race detector:
//
//	go test -race ./internal/chaos/
package chaos
