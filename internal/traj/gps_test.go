package traj

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"simsub/internal/geo"
)

func TestReadCSVRejectsNonFinite(t *testing.T) {
	for _, bad := range []string{"NaN", "Inf", "-Inf"} {
		in := "id,seq,x,y,t\n0,0,1,2,0\n0,1," + bad + ",3,1\n"
		_, err := ReadCSV(strings.NewReader(in))
		if !errors.Is(err, ErrNonFiniteCoordinate) {
			t.Errorf("%s coordinate: got %v, want ErrNonFiniteCoordinate", bad, err)
		}
	}
}

func TestReadCSVRejectsDuplicateID(t *testing.T) {
	in := "id,seq,x,y,t\n0,0,1,2,0\n1,0,3,4,0\n0,0,5,6,0\n"
	_, err := ReadCSV(strings.NewReader(in))
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("re-appearing id: got %v, want ErrDuplicateID", err)
	}
}

func TestReadCSVStillAcceptsValidInput(t *testing.T) {
	ts := []Trajectory{
		{ID: 3, Points: []geo.Point{{X: 1, Y: 2, T: 0}, {X: 3, Y: 4, T: 1}}},
		{ID: 7, Points: []geo.Point{{X: 5, Y: 6, T: 0}}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].ID != 3 || !back[0].Equal(ts[0]) || !back[1].Equal(ts[1]) {
		t.Fatalf("round trip: %+v", back)
	}
}

const portoSample = `TRIP_ID,CALL_TYPE,ORIGIN_CALL,ORIGIN_STAND,TAXI_ID,TIMESTAMP,DAY_TYPE,MISSING_DATA,POLYLINE
1372636858620000589,C,,,20000589,1372636858,A,False,"[[-8.618643,41.141412],[-8.618499,41.141376],[-8.620326,41.14251]]"
1372637303620000596,B,,7,20000596,1372637303,A,True,"[[-8.639847,41.159826]]"
1372636951620000320,C,,,20000320,1372636951,A,False,"[]"
1372637091620000337,C,,,20000337,1372637091,A,False,"[[-8.612964,41.140359],[-8.613378,41.14035]]"
`

func TestReadPortoCSV(t *testing.T) {
	ts, err := ReadPortoCSV(strings.NewReader(portoSample), 0)
	if err != nil {
		t.Fatal(err)
	}
	// trip 2 has MISSING_DATA=True, trip 3 an empty polyline: both skipped
	if len(ts) != 2 {
		t.Fatalf("got %d trips, want 2: %+v", len(ts), ts)
	}
	first := ts[0]
	if first.ID != 0 || first.Len() != 3 {
		t.Fatalf("first trip: %+v", first)
	}
	if first.Pt(0).X != -8.618643 || first.Pt(0).Y != 41.141412 {
		t.Fatalf("lon/lat mapping wrong: %+v", first.Pt(0))
	}
	// 15 s sampling anchored at the trip's TIMESTAMP
	if first.Pt(0).T != 1372636858 || first.Pt(2).T != 1372636858+2*portoSampleInterval {
		t.Fatalf("timestamps: %v, %v", first.Pt(0).T, first.Pt(2).T)
	}
	if ts[1].ID != 1 || ts[1].Len() != 2 {
		t.Fatalf("second trip: %+v", ts[1])
	}
}

func TestReadPortoCSVMaxTrips(t *testing.T) {
	ts, err := ReadPortoCSV(strings.NewReader(portoSample), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("maxTrips=1 returned %d trips", len(ts))
	}
}

func TestReadPortoCSVRejectsBadPolyline(t *testing.T) {
	in := "TRIP_ID,POLYLINE\n1,\"[[1,2],[3]]\"\n"
	if _, err := ReadPortoCSV(strings.NewReader(in), 0); err == nil {
		t.Fatal("malformed polyline accepted")
	}
}

const tdriveSample = `1,2008-02-02 15:36:08,116.51172,39.92123
1,2008-02-02 15:46:08,116.51135,39.93883
2,2008-02-02 13:33:52,116.36422,39.88781
2,2008-02-02 13:43:52,116.37481,39.88782
`

func TestReadTDriveCSV(t *testing.T) {
	ts, err := ReadTDriveCSV(strings.NewReader(tdriveSample), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Len() != 2 || ts[1].Len() != 2 {
		t.Fatalf("got %+v", ts)
	}
	if ts[0].Pt(0).X != 116.51172 || ts[0].Pt(0).Y != 39.92123 {
		t.Fatalf("lon/lat mapping wrong: %+v", ts[0].Pt(0))
	}
	if dt := ts[0].Pt(1).T - ts[0].Pt(0).T; dt != 600 {
		t.Fatalf("timestamp delta %v, want 600s", dt)
	}
}

func TestReadTDriveCSVRejectsReappearingTaxi(t *testing.T) {
	in := tdriveSample + "1,2008-02-02 16:00:00,116.5,39.9\n"
	_, err := ReadTDriveCSV(strings.NewReader(in), 0)
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("got %v, want ErrDuplicateID", err)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	ts := []Trajectory{
		{ID: 0, Points: []geo.Point{{X: 1, Y: 2, T: 3}, {X: 4, Y: 5, T: 6}}},
		{ID: 1, Points: []geo.Point{{X: 7, Y: 8, T: 9}}},
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, ts); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("NDJSON has %d lines, want 2", lines)
	}
	back, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || !back[0].Equal(ts[0]) || !back[1].Equal(ts[1]) || back[1].ID != 1 {
		t.Fatalf("round trip: %+v", back)
	}
}
