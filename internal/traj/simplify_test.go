package traj

import (
	"math/rand"
	"testing"

	"simsub/internal/geo"
)

func TestSimplifyStraightLineCollapses(t *testing.T) {
	tr := FromXY(0, 0, 1, 0, 2, 0, 3, 0, 4, 0)
	s := tr.Simplify(0.01)
	if s.Len() != 2 {
		t.Fatalf("straight line simplified to %d points, want 2", s.Len())
	}
	if s.Pt(0) != tr.Pt(0) || s.Pt(1) != tr.Pt(4) {
		t.Error("endpoints not preserved")
	}
}

func TestSimplifyKeepsSignificantCorner(t *testing.T) {
	tr := FromXY(0, 0, 1, 0, 2, 0, 2, 1, 2, 2)
	s := tr.Simplify(0.1)
	if s.Len() != 3 {
		t.Fatalf("corner trajectory simplified to %d points, want 3", s.Len())
	}
	if s.Pt(1) != (geo.Point{X: 2, Y: 0, T: 2}) {
		t.Errorf("corner point lost: %v", s.Points)
	}
}

func TestSimplifyErrorBound(t *testing.T) {
	// every original point must be within eps of the simplified polyline
	rng := rand.New(rand.NewSource(1))
	const eps = 0.05
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(40) + 3
		pts := make([]geo.Point, n)
		x, y := 0.0, 0.0
		for i := range pts {
			x += rng.Float64() * 0.1
			y += rng.NormFloat64() * 0.05
			pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
		}
		tr := New(pts...)
		s := tr.Simplify(eps)
		for _, p := range tr.Points {
			best := 1e18
			for i := 1; i < s.Len(); i++ {
				if d := geo.PointSegDist(p, s.Pt(i-1), s.Pt(i)); d < best {
					best = d
				}
			}
			if best > eps+1e-9 {
				t.Fatalf("trial %d: point %v is %v from simplification, eps %v", trial, p, best, eps)
			}
		}
	}
}

func TestSimplifyEdgeCases(t *testing.T) {
	if s := New().Simplify(1); s.Len() != 0 {
		t.Error("empty trajectory")
	}
	two := FromXY(0, 0, 1, 1)
	if s := two.Simplify(1); s.Len() != 2 {
		t.Error("two points must survive")
	}
	// eps <= 0 returns a copy
	tr := FromXY(0, 0, 1, 1, 2, 0)
	if s := tr.Simplify(0); !s.Equal(tr) {
		t.Error("eps=0 should be identity")
	}
}

func TestSimplifyRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geo.Point, 200)
	x, y := 0.0, 0.0
	for i := range pts {
		x += rng.Float64() * 0.01
		y += rng.NormFloat64() * 0.002
		pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
	}
	tr := New(pts...)
	s := tr.SimplifyRatio(0.25)
	if s.Len() > 50 {
		t.Errorf("ratio 0.25 left %d of 200 points", s.Len())
	}
	if s.Len() < 2 {
		t.Error("simplification too aggressive")
	}
	// ratio >= 1 is identity
	if tr.SimplifyRatio(1).Len() != 200 {
		t.Error("ratio 1 should not drop points")
	}
}
