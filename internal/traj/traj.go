// Package traj provides the trajectory substrate: the Trajectory type,
// subtrajectory views, reversal, resampling, normalization and input/output.
//
// A trajectory is an ordered sequence of timestamped points. Subtrajectories
// are half-open-free inclusive index ranges T[i,j] (1-based in the paper,
// 0-based here) and are represented as cheap slice views over the parent.
package traj

import (
	"fmt"
	"math"

	"simsub/internal/geo"
)

// Trajectory is a sequence of timestamped points. The zero value is an empty
// trajectory. Trajectories share underlying storage with their
// subtrajectories; treat point data as immutable once a trajectory is built.
type Trajectory struct {
	// ID identifies the trajectory within a database; 0 when standalone.
	ID int
	// Points is the ordered point sequence.
	Points []geo.Point
}

// New builds a trajectory from points with ID 0.
func New(pts ...geo.Point) Trajectory {
	return Trajectory{Points: pts}
}

// FromXY builds a trajectory from alternating x,y coordinates with unit
// time spacing. It panics if len(xy) is odd. Intended for tests and examples.
func FromXY(xy ...float64) Trajectory {
	if len(xy)%2 != 0 {
		panic("traj.FromXY: odd number of coordinates")
	}
	pts := make([]geo.Point, 0, len(xy)/2)
	for i := 0; i < len(xy); i += 2 {
		pts = append(pts, geo.Point{X: xy[i], Y: xy[i+1], T: float64(i / 2)})
	}
	return Trajectory{Points: pts}
}

// Len returns the number of points (|T| in the paper).
func (t Trajectory) Len() int { return len(t.Points) }

// Empty reports whether the trajectory has no points.
func (t Trajectory) Empty() bool { return len(t.Points) == 0 }

// Pt returns the i-th point (0-based).
func (t Trajectory) Pt(i int) geo.Point { return t.Points[i] }

// Sub returns the subtrajectory T[i,j] (0-based, inclusive on both ends) as a
// view sharing storage with t. It panics when the range is invalid.
func (t Trajectory) Sub(i, j int) Trajectory {
	if i < 0 || j >= len(t.Points) || i > j {
		panic(fmt.Sprintf("traj.Sub: invalid range [%d,%d] for length %d", i, j, len(t.Points)))
	}
	return Trajectory{ID: t.ID, Points: t.Points[i : j+1]}
}

// Reverse returns a new trajectory with the points in reverse order.
// The paper uses reversed trajectories (T^R, Tq^R) for incremental suffix
// similarity computation in PSS and the RLS state Θsuf.
func (t Trajectory) Reverse() Trajectory {
	pts := make([]geo.Point, len(t.Points))
	for i, p := range t.Points {
		pts[len(pts)-1-i] = p
	}
	return Trajectory{ID: t.ID, Points: pts}
}

// Clone returns a deep copy of t.
func (t Trajectory) Clone() Trajectory {
	pts := make([]geo.Point, len(t.Points))
	copy(pts, t.Points)
	return Trajectory{ID: t.ID, Points: pts}
}

// MBR returns the minimum bounding rectangle of the trajectory.
func (t Trajectory) MBR() geo.Rect { return geo.MBR(t.Points) }

// Length returns the travelled Euclidean length (sum of segment lengths).
func (t Trajectory) Length() float64 {
	var s float64
	for i := 1; i < len(t.Points); i++ {
		s += geo.Dist(t.Points[i-1], t.Points[i])
	}
	return s
}

// Duration returns the elapsed time from first to last point.
func (t Trajectory) Duration() float64 {
	if len(t.Points) < 2 {
		return 0
	}
	return t.Points[len(t.Points)-1].T - t.Points[0].T
}

// NumSubtrajectories returns n(n+1)/2, the number of distinct contiguous
// subtrajectories of a length-n trajectory (paper §3).
func (t Trajectory) NumSubtrajectories() int {
	n := len(t.Points)
	return n * (n + 1) / 2
}

// Interval is an inclusive index range [I,J] identifying the subtrajectory
// T[I,J] of some trajectory T.
type Interval struct {
	I, J int
}

// Valid reports whether the interval is a valid subtrajectory range for a
// trajectory of length n.
func (iv Interval) Valid(n int) bool { return iv.I >= 0 && iv.I <= iv.J && iv.J < n }

// Len returns the number of points in the subtrajectory.
func (iv Interval) Len() int { return iv.J - iv.I + 1 }

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.I, iv.J) }

// Translate returns a copy of t shifted by (dx, dy).
func (t Trajectory) Translate(dx, dy float64) Trajectory {
	out := t.Clone()
	for i := range out.Points {
		out.Points[i].X += dx
		out.Points[i].Y += dy
	}
	return out
}

// Scale returns a copy of t with coordinates multiplied by s (about origin).
func (t Trajectory) Scale(s float64) Trajectory {
	out := t.Clone()
	for i := range out.Points {
		out.Points[i].X *= s
		out.Points[i].Y *= s
	}
	return out
}

// Normalize maps the trajectory into the unit square given the dataset
// bounding rectangle. Degenerate (zero-extent) axes map to 0.5.
func (t Trajectory) Normalize(bounds geo.Rect) Trajectory {
	out := t.Clone()
	w := bounds.MaxX - bounds.MinX
	h := bounds.MaxY - bounds.MinY
	for i := range out.Points {
		if w > 0 {
			out.Points[i].X = (out.Points[i].X - bounds.MinX) / w
		} else {
			out.Points[i].X = 0.5
		}
		if h > 0 {
			out.Points[i].Y = (out.Points[i].Y - bounds.MinY) / h
		} else {
			out.Points[i].Y = 0.5
		}
	}
	return out
}

// Resample returns a trajectory with exactly k points, linearly interpolated
// along the original polyline by arc length. k must be >= 2 unless the
// trajectory has fewer than 2 points, in which case t is cloned.
func (t Trajectory) Resample(k int) Trajectory {
	n := len(t.Points)
	if n == 0 || k <= 0 {
		return Trajectory{ID: t.ID}
	}
	if n == 1 || k == 1 {
		return Trajectory{ID: t.ID, Points: []geo.Point{t.Points[0]}}
	}
	total := t.Length()
	out := make([]geo.Point, 0, k)
	if total == 0 {
		for i := 0; i < k; i++ {
			out = append(out, t.Points[0])
		}
		return Trajectory{ID: t.ID, Points: out}
	}
	// cumulative arc lengths
	cum := make([]float64, n)
	for i := 1; i < n; i++ {
		cum[i] = cum[i-1] + geo.Dist(t.Points[i-1], t.Points[i])
	}
	seg := 0
	for i := 0; i < k; i++ {
		target := total * float64(i) / float64(k-1)
		for seg < n-2 && cum[seg+1] < target {
			seg++
		}
		span := cum[seg+1] - cum[seg]
		var frac float64
		if span > 0 {
			frac = (target - cum[seg]) / span
		}
		out = append(out, geo.Lerp(t.Points[seg], t.Points[seg+1], frac))
	}
	return Trajectory{ID: t.ID, Points: out}
}

// Equal reports whether two trajectories have identical point sequences
// (coordinates and timestamps), ignoring IDs.
func (t Trajectory) Equal(u Trajectory) bool {
	if len(t.Points) != len(u.Points) {
		return false
	}
	for i := range t.Points {
		if t.Points[i] != u.Points[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether two trajectories match point-wise within eps
// in space (timestamps ignored).
func (t Trajectory) ApproxEqual(u Trajectory, eps float64) bool {
	if len(t.Points) != len(u.Points) {
		return false
	}
	for i := range t.Points {
		if math.Abs(t.Points[i].X-u.Points[i].X) > eps ||
			math.Abs(t.Points[i].Y-u.Points[i].Y) > eps {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer with a compact preview.
func (t Trajectory) String() string {
	if len(t.Points) <= 4 {
		return fmt.Sprintf("Traj#%d%v", t.ID, t.Points)
	}
	return fmt.Sprintf("Traj#%d[%d pts %v..%v]", t.ID, len(t.Points), t.Points[0], t.Points[len(t.Points)-1])
}
