package traj

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"simsub/internal/geo"
)

// Readers for the two real GPS corpora the SimSub paper evaluates on:
// the Porto taxi dataset (ECML/PKDD 15, one CSV row per trip with a JSON
// polyline sampled every 15 s) and Microsoft T-Drive (Beijing taxis, one
// CSV row per GPS fix). Both readers apply the same validation as
// ReadCSV — non-finite coordinates and re-appearing trajectory groups are
// typed errors — and assign dense output IDs, since the engine (or the
// persistent store) re-assigns global IDs at load time anyway.

// portoSampleInterval is the Porto dataset's fixed GPS sampling period.
const portoSampleInterval = 15.0 // seconds

// ReadPortoCSV reads the Porto taxi trip format: a headered CSV whose
// POLYLINE column holds a JSON array of [lon, lat] pairs sampled every
// 15 s, with x = longitude, y = latitude and timestamps synthesized at
// the 15 s cadence from the trip's TIMESTAMP column (0-based when the
// column is absent). Trips whose MISSING_DATA column is "True" and empty
// polylines are skipped. maxTrips > 0 caps how many trajectories are
// read; 0 reads all.
func ReadPortoCSV(r io.Reader, maxTrips int) ([]Trajectory, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("traj: reading Porto header: %w", err)
	}
	polyCol, tsCol, missCol := -1, -1, -1
	for i, name := range header {
		switch strings.ToUpper(strings.TrimSpace(name)) {
		case "POLYLINE":
			polyCol = i
		case "TIMESTAMP":
			tsCol = i
		case "MISSING_DATA":
			missCol = i
		}
	}
	if polyCol < 0 {
		return nil, fmt.Errorf("traj: Porto CSV has no POLYLINE column (header %v)", header)
	}
	var out []Trajectory
	line := 1
	for maxTrips <= 0 || len(out) < maxTrips {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("traj: reading Porto CSV: %w", err)
		}
		line++
		if missCol >= 0 && missCol < len(rec) && strings.EqualFold(strings.TrimSpace(rec[missCol]), "true") {
			continue
		}
		if polyCol >= len(rec) {
			return nil, fmt.Errorf("traj: line %d: row has no POLYLINE column", line)
		}
		var pairs [][]float64
		if err := json.Unmarshal([]byte(rec[polyCol]), &pairs); err != nil {
			return nil, fmt.Errorf("traj: line %d: bad POLYLINE: %w", line, err)
		}
		if len(pairs) == 0 {
			continue
		}
		t0 := 0.0
		if tsCol >= 0 && tsCol < len(rec) {
			if ts, err := strconv.ParseFloat(rec[tsCol], 64); err == nil && isFinite(ts) {
				t0 = ts
			}
		}
		pts := make([]geo.Point, len(pairs))
		for i, pr := range pairs {
			if len(pr) != 2 {
				return nil, fmt.Errorf("traj: line %d, point %d: POLYLINE pair has %d coordinates, want 2", line, i, len(pr))
			}
			if !isFinite(pr[0]) || !isFinite(pr[1]) {
				return nil, fmt.Errorf("traj: line %d, point %d: %w", line, i, ErrNonFiniteCoordinate)
			}
			pts[i] = geo.Point{X: pr[0], Y: pr[1], T: t0 + float64(i)*portoSampleInterval}
		}
		out = append(out, Trajectory{ID: len(out), Points: pts})
	}
	return out, nil
}

// ReadTDriveCSV reads the T-Drive taxi log format: headerless CSV rows
// "taxi_id,datetime,longitude,latitude" ordered by taxi then time, one
// trajectory per taxi (x = longitude, y = latitude, t = unix seconds). A
// taxi ID that re-appears after its row group ended wraps ErrDuplicateID;
// non-finite coordinates wrap ErrNonFiniteCoordinate. maxTaxis > 0 caps
// how many trajectories are read; 0 reads all.
func ReadTDriveCSV(r io.Reader, maxTaxis int) ([]Trajectory, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var out []Trajectory
	seen := make(map[string]bool)
	cur := ""
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("traj: reading T-Drive CSV: %w", err)
		}
		line++
		if len(rec) != 4 {
			return nil, fmt.Errorf("traj: line %d: expected 4 T-Drive columns, got %d", line, len(rec))
		}
		taxi := strings.TrimSpace(rec[0])
		if taxi != cur {
			if seen[taxi] {
				return nil, fmt.Errorf("traj: line %d: %w %s", line, ErrDuplicateID, taxi)
			}
			if maxTaxis > 0 && len(out) == maxTaxis {
				break
			}
			seen[taxi] = true
			out = append(out, Trajectory{ID: len(out)})
			cur = taxi
		}
		ts, err := time.Parse("2006-01-02 15:04:05", strings.TrimSpace(rec[1]))
		if err != nil {
			return nil, fmt.Errorf("traj: line %d: bad datetime %q: %w", line, rec[1], err)
		}
		x, err1 := strconv.ParseFloat(rec[2], 64)
		y, err2 := strconv.ParseFloat(rec[3], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("traj: line %d: bad coordinates", line)
		}
		if !isFinite(x) || !isFinite(y) {
			return nil, fmt.Errorf("traj: line %d: %w", line, ErrNonFiniteCoordinate)
		}
		last := &out[len(out)-1]
		last.Points = append(last.Points, geo.Point{X: x, Y: y, T: float64(ts.Unix())})
	}
	return out, nil
}

// WriteNDJSON writes one JSON trajectory object per line —
// {"id":..,"points":[[x,y,t],..]} — the format POST /v2/load/stream
// ingests. Unlike WriteJSON's single array, an NDJSON corpus can be
// produced and consumed incrementally at any size.
func WriteNDJSON(w io.Writer, ts []Trajectory) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range ts {
		jt := jsonTraj{ID: t.ID, Points: make([][3]float64, len(t.Points))}
		for j, p := range t.Points {
			jt.Points[j] = [3]float64{p.X, p.Y, p.T}
		}
		if err := enc.Encode(jt); err != nil { // Encode appends the newline
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON reads the format produced by WriteNDJSON.
func ReadNDJSON(r io.Reader) ([]Trajectory, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []Trajectory
	for {
		var jt jsonTraj
		if err := dec.Decode(&jt); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("traj: decoding NDJSON record %d: %w", len(out)+1, err)
		}
		t := Trajectory{ID: jt.ID, Points: make([]geo.Point, len(jt.Points))}
		for j, p := range jt.Points {
			t.Points[j] = geo.Point{X: p[0], Y: p[1], T: p[2]}
		}
		out = append(out, t)
	}
	return out, nil
}
