package traj

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"simsub/internal/geo"
)

// WriteCSV writes trajectories in the flat CSV format
// "id,seq,x,y,t" with one row per point, preceded by a header row.
func WriteCSV(w io.Writer, ts []Trajectory) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "seq", "x", "y", "t"}); err != nil {
		return err
	}
	row := make([]string, 5)
	for _, t := range ts {
		for i, p := range t.Points {
			row[0] = strconv.Itoa(t.ID)
			row[1] = strconv.Itoa(i)
			row[2] = strconv.FormatFloat(p.X, 'g', -1, 64)
			row[3] = strconv.FormatFloat(p.Y, 'g', -1, 64)
			row[4] = strconv.FormatFloat(p.T, 'g', -1, 64)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Typed ingestion errors. ReadCSV and the GPS-dump readers wrap these
// with line context, so callers can errors.Is-match the cause — the same
// validation the wire boundary applies in api.Trajectory.ToTraj.
var (
	// ErrNonFiniteCoordinate marks a NaN or ±Inf coordinate in an input
	// file. Non-finite values poison every distance kernel downstream.
	ErrNonFiniteCoordinate = errors.New("non-finite coordinate")
	// ErrDuplicateID marks a trajectory ID that re-appears after its point
	// group ended — a corrupt or mis-sorted file that would silently split
	// one logical trajectory into several.
	ErrDuplicateID = errors.New("duplicate trajectory id")
)

// ReadCSV reads trajectories from the format produced by WriteCSV. Points
// must be grouped by trajectory id and ordered by seq within each group.
// NaN/Inf coordinates and re-appearing trajectory IDs are rejected with
// errors wrapping ErrNonFiniteCoordinate / ErrDuplicateID.
func ReadCSV(r io.Reader) ([]Trajectory, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("traj: reading CSV header: %w", err)
	}
	if len(header) != 5 {
		return nil, fmt.Errorf("traj: expected 5 CSV columns, got %d", len(header))
	}
	var out []Trajectory
	seen := make(map[int]bool)
	cur := -1
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("traj: reading CSV: %w", err)
		}
		line++
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("traj: line %d: bad id %q", line, rec[0])
		}
		x, err1 := strconv.ParseFloat(rec[2], 64)
		y, err2 := strconv.ParseFloat(rec[3], 64)
		tm, err3 := strconv.ParseFloat(rec[4], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("traj: line %d: bad coordinates", line)
		}
		if !isFinite(x) || !isFinite(y) || !isFinite(tm) {
			return nil, fmt.Errorf("traj: line %d: %w", line, ErrNonFiniteCoordinate)
		}
		if id != cur {
			if seen[id] {
				return nil, fmt.Errorf("traj: line %d: %w %d", line, ErrDuplicateID, id)
			}
			seen[id] = true
			out = append(out, Trajectory{ID: id})
			cur = id
		}
		last := &out[len(out)-1]
		last.Points = append(last.Points, geo.Point{X: x, Y: y, T: tm})
	}
	return out, nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// SaveCSV writes trajectories to the named file in CSV format.
func SaveCSV(path string, ts []Trajectory) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	bw := bufio.NewWriter(f)
	if err := WriteCSV(bw, ts); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCSV reads trajectories from the named CSV file.
func LoadCSV(path string) ([]Trajectory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(bufio.NewReader(f))
}

// jsonTraj is the JSON wire form of a trajectory: a compact array-of-arrays.
type jsonTraj struct {
	ID     int          `json:"id"`
	Points [][3]float64 `json:"points"`
}

// WriteJSON writes trajectories as a JSON array of {id, points:[[x,y,t]..]}.
func WriteJSON(w io.Writer, ts []Trajectory) error {
	js := make([]jsonTraj, len(ts))
	for i, t := range ts {
		js[i].ID = t.ID
		js[i].Points = make([][3]float64, len(t.Points))
		for j, p := range t.Points {
			js[i].Points[j] = [3]float64{p.X, p.Y, p.T}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(js)
}

// ReadJSON reads trajectories from the format produced by WriteJSON.
func ReadJSON(r io.Reader) ([]Trajectory, error) {
	var js []jsonTraj
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("traj: decoding JSON: %w", err)
	}
	out := make([]Trajectory, len(js))
	for i, jt := range js {
		out[i].ID = jt.ID
		out[i].Points = make([]geo.Point, len(jt.Points))
		for j, p := range jt.Points {
			out[i].Points[j] = geo.Point{X: p[0], Y: p[1], T: p[2]}
		}
	}
	return out, nil
}
