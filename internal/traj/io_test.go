package traj

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"simsub/internal/geo"
)

func randomTrajs(seed int64, count int) []Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Trajectory, count)
	for i := range out {
		n := rng.Intn(20) + 1
		pts := make([]geo.Point, n)
		for j := range pts {
			pts[j] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100, T: float64(j) * 15}
		}
		out[i] = Trajectory{ID: i, Points: pts}
	}
	return out
}

func TestCSVRoundTrip(t *testing.T) {
	ts := randomTrajs(1, 10)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ts); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != len(ts) {
		t.Fatalf("round trip count = %d, want %d", len(got), len(ts))
	}
	for i := range ts {
		if got[i].ID != ts[i].ID || !got[i].Equal(ts[i]) {
			t.Errorf("trajectory %d mismatched after round trip", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ts := randomTrajs(2, 7)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ts); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(got) != len(ts) {
		t.Fatalf("round trip count = %d, want %d", len(got), len(ts))
	}
	for i := range ts {
		if !got[i].Equal(ts[i]) {
			t.Errorf("trajectory %d mismatched after JSON round trip", i)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trajs.csv")
	ts := randomTrajs(3, 5)
	if err := SaveCSV(path, ts); err != nil {
		t.Fatalf("SaveCSV: %v", err)
	}
	got, err := LoadCSV(path)
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if len(got) != len(ts) {
		t.Fatalf("count = %d, want %d", len(got), len(ts))
	}
	for i := range ts {
		if !got[i].Equal(ts[i]) {
			t.Errorf("trajectory %d mismatched after file round trip", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty input", ""},
		{"wrong column count", "a,b\n"},
		{"bad id", "id,seq,x,y,t\nxx,0,1,2,3\n"},
		{"bad coordinate", "id,seq,x,y,t\n1,0,abc,2,3\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(c.in)); err == nil {
				t.Errorf("expected error for %q", c.name)
			}
		})
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("expected error for malformed JSON")
	}
}

func TestLoadCSVMissingFile(t *testing.T) {
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Error("expected error for missing file")
	}
}
