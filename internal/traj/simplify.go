package traj

import (
	"simsub/internal/geo"
)

// Simplify returns the Douglas-Peucker simplification of t with tolerance
// eps: the subset of points (always keeping the endpoints) such that every
// dropped point lies within eps of the simplified polyline. The paper's
// RLS-Skip motivates its skipped-point prefix as "a simplification" of the
// full subtrajectory (§5.4, citing direction-preserving trajectory
// simplification); this utility provides the classical position-preserving
// counterpart for preprocessing large databases.
func (t Trajectory) Simplify(eps float64) Trajectory {
	n := len(t.Points)
	if n <= 2 || eps <= 0 {
		return t.Clone()
	}
	keep := make([]bool, n)
	keep[0], keep[n-1] = true, true
	douglasPeucker(t.Points, 0, n-1, eps, keep)
	pts := make([]geo.Point, 0, n)
	for i, k := range keep {
		if k {
			pts = append(pts, t.Points[i])
		}
	}
	return Trajectory{ID: t.ID, Points: pts}
}

// douglasPeucker marks the points to keep between endpoints lo and hi
// (exclusive), recursing on the farthest outlier.
func douglasPeucker(pts []geo.Point, lo, hi int, eps float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	maxD, maxI := 0.0, -1
	for i := lo + 1; i < hi; i++ {
		d := geo.PointSegDist(pts[i], pts[lo], pts[hi])
		if d > maxD {
			maxD, maxI = d, i
		}
	}
	if maxD <= eps {
		return // all interior points within tolerance of the chord
	}
	keep[maxI] = true
	douglasPeucker(pts, lo, maxI, eps, keep)
	douglasPeucker(pts, maxI, hi, eps, keep)
}

// SimplifyRatio simplifies with increasing tolerance until at most
// ratio·|T| points remain (ratio in (0,1]); it returns the first
// simplification meeting the budget. Useful for bounding preprocessing
// cost on dense data (e.g. 10 Hz sports traces).
func (t Trajectory) SimplifyRatio(ratio float64) Trajectory {
	n := len(t.Points)
	if n <= 2 || ratio >= 1 {
		return t.Clone()
	}
	target := int(float64(n) * ratio)
	if target < 2 {
		target = 2
	}
	// exponential search on the tolerance, seeded by the MBR diagonal
	mbr := t.MBR()
	eps := (mbr.MaxX - mbr.MinX + mbr.MaxY - mbr.MinY) / 1000
	if eps <= 0 {
		eps = 1e-9
	}
	out := t.Simplify(eps)
	for i := 0; i < 40 && out.Len() > target; i++ {
		eps *= 2
		out = t.Simplify(eps)
	}
	return out
}
