package traj

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"simsub/internal/geo"
)

func TestFromXYAndLen(t *testing.T) {
	tr := FromXY(0, 0, 1, 1, 2, 0)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Pt(1) != (geo.Point{X: 1, Y: 1, T: 1}) {
		t.Errorf("Pt(1) = %v", tr.Pt(1))
	}
}

func TestFromXYPanicsOnOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on odd coordinate count")
		}
	}()
	FromXY(1, 2, 3)
}

func TestSub(t *testing.T) {
	tr := FromXY(0, 0, 1, 0, 2, 0, 3, 0, 4, 0)
	s := tr.Sub(1, 3)
	if s.Len() != 3 {
		t.Fatalf("Sub len = %d, want 3", s.Len())
	}
	if s.Pt(0).X != 1 || s.Pt(2).X != 3 {
		t.Errorf("Sub points wrong: %v", s.Points)
	}
	// whole range
	if !tr.Sub(0, 4).Equal(tr) {
		t.Error("Sub(0,n-1) should equal the trajectory")
	}
	// single point
	if tr.Sub(2, 2).Len() != 1 {
		t.Error("single-point sub")
	}
}

func TestSubPanicsOnInvalid(t *testing.T) {
	tr := FromXY(0, 0, 1, 0)
	for _, rng := range [][2]int{{-1, 0}, {0, 2}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sub(%d,%d) should panic", rng[0], rng[1])
				}
			}()
			tr.Sub(rng[0], rng[1])
		}()
	}
}

func TestReverse(t *testing.T) {
	tr := FromXY(0, 0, 1, 1, 2, 2)
	r := tr.Reverse()
	if r.Pt(0).X != 2 || r.Pt(2).X != 0 {
		t.Errorf("Reverse = %v", r.Points)
	}
	if !r.Reverse().Equal(tr) {
		t.Error("double reverse should be identity")
	}
	// reversal leaves the original untouched
	if tr.Pt(0).X != 0 {
		t.Error("Reverse mutated the source")
	}
}

func TestReverseInvolutionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64(), Y: rng.Float64(), T: float64(i)}
		}
		tr := New(pts...)
		return tr.Reverse().Reverse().Equal(tr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumSubtrajectories(t *testing.T) {
	for n := 0; n <= 10; n++ {
		pts := make([]geo.Point, n)
		tr := New(pts...)
		// count explicitly
		count := 0
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				count++
			}
		}
		if got := tr.NumSubtrajectories(); got != count {
			t.Errorf("n=%d: NumSubtrajectories = %d, want %d", n, got, count)
		}
	}
}

func TestLengthAndDuration(t *testing.T) {
	tr := FromXY(0, 0, 3, 4, 3, 4)
	if got := tr.Length(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Length = %v, want 5", got)
	}
	if got := tr.Duration(); got != 2 {
		t.Errorf("Duration = %v, want 2", got)
	}
	if New().Length() != 0 || New().Duration() != 0 {
		t.Error("empty trajectory length/duration should be 0")
	}
}

func TestMBRTrajectory(t *testing.T) {
	tr := FromXY(1, 2, -1, 5, 3, 0)
	want := geo.Rect{MinX: -1, MinY: 0, MaxX: 3, MaxY: 5}
	if got := tr.MBR(); got != want {
		t.Errorf("MBR = %v, want %v", got, want)
	}
}

func TestNormalize(t *testing.T) {
	tr := FromXY(0, 0, 10, 20)
	b := geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 20}
	n := tr.Normalize(b)
	if n.Pt(0).X != 0 || n.Pt(1).X != 1 || n.Pt(1).Y != 1 {
		t.Errorf("Normalize = %v", n.Points)
	}
	// degenerate bounds map to 0.5
	flat := FromXY(5, 5, 5, 5).Normalize(geo.Rect{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5})
	if flat.Pt(0).X != 0.5 || flat.Pt(0).Y != 0.5 {
		t.Errorf("degenerate Normalize = %v", flat.Points)
	}
}

func TestResample(t *testing.T) {
	tr := FromXY(0, 0, 10, 0)
	r := tr.Resample(5)
	if r.Len() != 5 {
		t.Fatalf("Resample len = %d, want 5", r.Len())
	}
	for i, want := range []float64{0, 2.5, 5, 7.5, 10} {
		if math.Abs(r.Pt(i).X-want) > 1e-9 {
			t.Errorf("Resample pt %d x = %v, want %v", i, r.Pt(i).X, want)
		}
	}
	// endpoints preserved
	if r.Pt(0) != tr.Pt(0) {
		t.Error("Resample should keep the first point")
	}
	// zero-length trajectory
	still := New(geo.Point{X: 1, Y: 1}, geo.Point{X: 1, Y: 1})
	rs := still.Resample(3)
	if rs.Len() != 3 || rs.Pt(2).X != 1 {
		t.Errorf("Resample of stationary trajectory = %v", rs.Points)
	}
	// k == 1
	if tr.Resample(1).Len() != 1 {
		t.Error("Resample(1) should return a single point")
	}
	// empty
	if New().Resample(4).Len() != 0 {
		t.Error("Resample of empty should be empty")
	}
}

func TestResamplePreservesEndpointsProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%30 + 2
		k := int(kRaw)%30 + 2
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		tr := New(pts...)
		r := tr.Resample(k)
		if r.Len() != k {
			return false
		}
		first, last := r.Pt(0), r.Pt(k-1)
		const eps = 1e-6
		return math.Abs(first.X-pts[0].X) < eps && math.Abs(first.Y-pts[0].Y) < eps &&
			math.Abs(last.X-pts[n-1].X) < eps && math.Abs(last.Y-pts[n-1].Y) < eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslateScale(t *testing.T) {
	tr := FromXY(1, 1, 2, 2)
	tt := tr.Translate(3, -1)
	if tt.Pt(0) != (geo.Point{X: 4, Y: 0, T: 0}) {
		t.Errorf("Translate = %v", tt.Points)
	}
	ts := tr.Scale(2)
	if ts.Pt(1) != (geo.Point{X: 4, Y: 4, T: 1}) {
		t.Errorf("Scale = %v", ts.Points)
	}
	// source untouched
	if tr.Pt(0).X != 1 {
		t.Error("Translate/Scale mutated source")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{I: 2, J: 5}
	if !iv.Valid(6) {
		t.Error("interval should be valid for n=6")
	}
	if iv.Valid(5) {
		t.Error("interval should be invalid for n=5")
	}
	if (Interval{I: 3, J: 2}).Valid(10) {
		t.Error("inverted interval should be invalid")
	}
	if iv.Len() != 4 {
		t.Errorf("Len = %d, want 4", iv.Len())
	}
	if iv.String() != "[2,5]" {
		t.Errorf("String = %q", iv.String())
	}
}

func TestApproxEqual(t *testing.T) {
	a := FromXY(0, 0, 1, 1)
	b := FromXY(0, 1e-9, 1, 1)
	if !a.ApproxEqual(b, 1e-6) {
		t.Error("should be approx equal")
	}
	if a.ApproxEqual(b, 1e-12) {
		t.Error("should not be approx equal at tight eps")
	}
	if a.ApproxEqual(FromXY(0, 0), 1) {
		t.Error("different lengths are never approx equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromXY(0, 0, 1, 1)
	c := a.Clone()
	c.Points[0].X = 99
	if a.Pt(0).X == 99 {
		t.Error("Clone shares storage with source")
	}
}
