package server

import (
	"encoding/json"
	"net/http"
	"strconv"

	"simsub/api"
	"simsub/internal/engine"
)

// This file holds the v2 endpoints, which speak the api package's wire
// types natively: batched top-k queries, NDJSON match streaming, and
// trajectory retrieval by global ID.

// handleQuery answers POST /v2/query: a batch of specs fanned out across
// the engine's worker pool, one QueryResult per spec in order. Spec-level
// failures are reported inside their result; only envelope-level problems
// (no specs, oversized batch, bad JSON) fail the request.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req api.Query
	if !decode(w, r, &req) {
		return
	}
	if len(req.Specs) == 0 {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "query batch has no specs"))
		return
	}
	if len(req.Specs) > s.opts.MaxBatchSpecs {
		writeErr(w, api.Errorf(api.CodeInvalidArgument,
			"batch of %d specs exceeds the limit of %d", len(req.Specs), s.opts.MaxBatchSpecs))
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	req.TimeoutMS = 0 // already applied (and capped) by requestContext
	resp, err := s.eng.Query(ctx, req)
	if err != nil {
		writeErr(w, api.FromError(err))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQueryStream answers POST /v2/query/stream: one spec whose matches
// are delivered as NDJSON StreamEvent records the moment they enter the
// running top-k, each followed by a flush so clients see answers while the
// scan is still running, terminated by a summary record carrying the
// authoritative final ranking. Failures before the first record use the
// ordinary error envelope and status; failures mid-stream arrive as a
// trailing error record (the status line is long gone by then).
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var req api.StreamQuery
	if !decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wrote := false
	emit := func(m api.Match) error {
		if err := enc.Encode(api.StreamEvent{Match: &m}); err != nil {
			return err
		}
		wrote = true
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	sum, err := s.eng.QueryStream(ctx, req.Spec, emit)
	if err != nil {
		ae := api.FromError(err)
		if !wrote {
			writeErr(w, ae)
			return
		}
		_ = enc.Encode(api.StreamEvent{Error: ae})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	_ = enc.Encode(api.StreamEvent{Summary: sum})
	if flusher != nil {
		flusher.Flush()
	}
}

// handleGetTrajectory answers GET /v2/trajectories/{id} with the stored
// trajectory, or a not_found typed error for an unassigned ID.
func (s *Server) handleGetTrajectory(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "trajectory id %q is not an integer", r.PathValue("id")))
		return
	}
	t, ok := s.eng.Traj(id)
	if !ok {
		writeErr(w, api.Errorf(api.CodeNotFound, "no trajectory with id %d", id))
		return
	}
	writeJSON(w, http.StatusOK, api.TrajectoryRecord{ID: id, Trajectory: api.FromTraj(t)})
}

// compile-time guarantee that the engine backing this server satisfies the
// interfaces the client package mirrors
var _ api.StreamSearcher = (*engine.Engine)(nil)
