package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"io/fs"
	"net/http"
	"strconv"

	"simsub/api"
	"simsub/internal/engine"
	"simsub/internal/rl"
	"simsub/internal/t2vec"
)

// This file holds the v2 endpoints, which speak the api package's wire
// types natively: batched top-k queries, NDJSON match streaming, and
// trajectory retrieval by global ID.

// handleQuery answers POST /v2/query: a batch of specs fanned out across
// the engine's worker pool, one QueryResult per spec in order. Spec-level
// failures are reported inside their result; only envelope-level problems
// (no specs, oversized batch, bad JSON) fail the request.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	var req api.Query
	if !decode(w, r, &req) {
		return
	}
	if len(req.Specs) == 0 {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "query batch has no specs"))
		return
	}
	if len(req.Specs) > s.opts.MaxBatchSpecs {
		writeErr(w, api.Errorf(api.CodeInvalidArgument,
			"batch of %d specs exceeds the limit of %d", len(req.Specs), s.opts.MaxBatchSpecs))
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	req.TimeoutMS = 0 // already applied (and capped) by requestContext
	resp, err := s.eng.Query(ctx, req)
	if err != nil {
		writeErr(w, api.FromError(err))
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQueryStream answers POST /v2/query/stream: one spec whose matches
// are delivered as NDJSON StreamEvent records the moment they enter the
// running top-k, each followed by a flush so clients see answers while the
// scan is still running, terminated by a summary record carrying the
// authoritative final ranking. Failures before the first record use the
// ordinary error envelope and status; failures mid-stream arrive as a
// trailing error record (the status line is long gone by then).
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	var req api.StreamQuery
	if !decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	wrote := false
	emit := func(m api.Match) error {
		if err := enc.Encode(api.StreamEvent{Match: &m}); err != nil {
			return err
		}
		wrote = true
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	sum, err := s.eng.QueryStream(ctx, req.Spec, emit)
	if err != nil {
		ae := api.FromError(err)
		if !wrote {
			writeErr(w, ae)
			return
		}
		_ = enc.Encode(api.StreamEvent{Error: ae})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	_ = enc.Encode(api.StreamEvent{Summary: sum})
	if flusher != nil {
		flusher.Flush()
	}
}

// handleGetTrajectory answers GET /v2/trajectories/{id} with the stored
// trajectory, or a not_found typed error for an unassigned ID.
func (s *Server) handleGetTrajectory(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "trajectory id %q is not an integer", r.PathValue("id")))
		return
	}
	t, ok := s.eng.Traj(id)
	if !ok {
		writeErr(w, api.Errorf(api.CodeNotFound, "no trajectory with id %d", id))
		return
	}
	writeJSON(w, http.StatusOK, api.TrajectoryRecord{ID: id, Trajectory: api.FromTraj(t)})
}

// policyInfoToAPI converts the engine's policy description to wire form.
func policyInfoToAPI(info engine.PolicyInfo) api.PolicyInfo {
	return api.PolicyInfo{
		Name:                info.Name,
		K:                   info.K,
		UseSuffix:           info.UseSuffix,
		SimplifyState:       info.SimplifyState,
		Fingerprint:         info.Fingerprint,
		Compiled:            info.Compiled,
		CompileResolution:   info.CompileResolution,
		CompileDivergence:   info.CompileDivergence,
		CompiledFingerprint: info.CompiledFingerprint,
	}
}

// handlePolicySwap answers POST /v2/admin/policy: load a policy from a
// server-local file path or inline base64 bytes, validate it, and register
// it as the serving policy of the "rls" / "rls-skip" algorithms. The swap
// purges the result cache and changes the policy fingerprint, so no cached
// ranking computed under the previous policy can ever be served again. A
// policy that fails validation (corrupted file, inconsistent network
// shape, non-finite weights) is rejected with invalid_argument and the
// previous registration keeps serving.
func (s *Server) handlePolicySwap(w http.ResponseWriter, r *http.Request) {
	var req api.PolicySwapRequest
	if !decode(w, r, &req) {
		return
	}
	if (req.Path == "") == (req.PolicyB64 == "") {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "exactly one of path or policy_b64 must be set"))
		return
	}
	if req.CompileResolution < 0 {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "compile_resolution must be non-negative, got %d", req.CompileResolution))
		return
	}
	var (
		p   *rl.Policy
		err error
	)
	if req.Path != "" {
		p, err = rl.LoadFile(req.Path)
		if errors.Is(err, fs.ErrNotExist) {
			writeErr(w, api.Errorf(api.CodeNotFound, "policy file %q does not exist", req.Path))
			return
		}
		var perr *fs.PathError
		if errors.As(err, &perr) {
			// an I/O-level failure (permissions, directory, ...), not a bad
			// policy — don't misdirect the operator toward re-training
			writeErr(w, api.Errorf(api.CodeInternal, "reading policy file %q: %v", req.Path, perr.Err))
			return
		}
		if err != nil {
			// the parse error can echo fragments of the named file (e.g. a
			// bad header tag), and this endpoint reads server-local paths —
			// keep file contents out of the response
			writeErr(w, api.Errorf(api.CodeInvalidArgument, "file %q is not a valid policy", req.Path))
			return
		}
	} else {
		var raw []byte
		raw, err = base64.StdEncoding.DecodeString(req.PolicyB64)
		if err != nil {
			writeErr(w, api.Errorf(api.CodeInvalidArgument, "decoding policy_b64: %v", err))
			return
		}
		// the caller supplied these bytes, so the parse error leaks nothing
		p, err = rl.Load(bytes.NewReader(raw))
		if err != nil {
			writeErr(w, api.Errorf(api.CodeInvalidArgument, "loading policy: %v", err))
			return
		}
	}
	info, serr := s.eng.SetPolicyCompiled(p, req.CompileResolution)
	if serr != nil {
		writeErr(w, api.FromError(serr))
		return
	}
	writeJSON(w, http.StatusOK, policyInfoToAPI(info))
}

// handlePolicyGet answers GET /v2/admin/policy with the registered
// policy's description, or a typed not_found when none is loaded.
func (s *Server) handlePolicyGet(w http.ResponseWriter, r *http.Request) {
	info, ok := s.eng.Policy()
	if !ok {
		writeErr(w, api.Errorf(api.CodeNotFound, "no policy loaded"))
		return
	}
	writeJSON(w, http.StatusOK, policyInfoToAPI(info))
}

// encoderInfoToAPI converts the engine's encoder description to wire form.
func encoderInfoToAPI(info engine.EncoderInfo) api.EncoderInfo {
	return api.EncoderInfo{
		Dim:         info.Dim,
		Grid:        info.Grid,
		Fingerprint: info.Fingerprint,
	}
}

// handleEncoderSwap answers POST /v2/admin/encoder: load a t2vec encoder
// from a server-local file path or inline base64 bytes and register it as
// the corpus embedder. Registration re-embeds every stored trajectory,
// rebuilds the per-shard ANN indexes, purges the result cache and changes
// the encoder fingerprint — so the ann prefilter and the "embed" ranking
// switch atomically and no stale cached ranking survives. An encoder that
// fails to parse is rejected with invalid_argument and the previous
// registration keeps serving.
func (s *Server) handleEncoderSwap(w http.ResponseWriter, r *http.Request) {
	var req api.EncoderSwapRequest
	if !decode(w, r, &req) {
		return
	}
	if (req.Path == "") == (req.EncoderB64 == "") {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "exactly one of path or encoder_b64 must be set"))
		return
	}
	var (
		m   *t2vec.Model
		err error
	)
	if req.Path != "" {
		m, err = t2vec.LoadFile(req.Path)
		if errors.Is(err, fs.ErrNotExist) {
			writeErr(w, api.Errorf(api.CodeNotFound, "encoder file %q does not exist", req.Path))
			return
		}
		var perr *fs.PathError
		if errors.As(err, &perr) {
			writeErr(w, api.Errorf(api.CodeInternal, "reading encoder file %q: %v", req.Path, perr.Err))
			return
		}
		if err != nil {
			// same redaction rationale as the policy path: the parse error can
			// echo fragments of a server-local file
			writeErr(w, api.Errorf(api.CodeInvalidArgument, "file %q is not a valid encoder", req.Path))
			return
		}
	} else {
		var raw []byte
		raw, err = base64.StdEncoding.DecodeString(req.EncoderB64)
		if err != nil {
			writeErr(w, api.Errorf(api.CodeInvalidArgument, "decoding encoder_b64: %v", err))
			return
		}
		m, err = t2vec.Load(bytes.NewReader(raw))
		if err != nil {
			writeErr(w, api.Errorf(api.CodeInvalidArgument, "loading encoder: %v", err))
			return
		}
	}
	info, serr := s.eng.SetEncoder(m)
	if serr != nil {
		writeErr(w, api.FromError(serr))
		return
	}
	writeJSON(w, http.StatusOK, encoderInfoToAPI(info))
}

// handleEncoderGet answers GET /v2/admin/encoder with the registered
// encoder's description, or a typed not_found when none is loaded.
func (s *Server) handleEncoderGet(w http.ResponseWriter, r *http.Request) {
	info, ok := s.eng.Encoder()
	if !ok {
		writeErr(w, api.Errorf(api.CodeNotFound, "no encoder loaded"))
		return
	}
	writeJSON(w, http.StatusOK, encoderInfoToAPI(info))
}

// compile-time guarantee that the engine backing this server satisfies the
// interfaces the client package mirrors
var _ api.StreamSearcher = (*engine.Engine)(nil)
