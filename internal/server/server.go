// Package server exposes the engine over an HTTP/JSON API. The wire types
// and the typed error model live in package api; /v2 speaks them directly
// and /v1 remains as a thin adapter over the same query core:
//
//	POST /v1/trajectories  bulk-load trajectories into the engine
//	POST /v1/topk          single top-k search (adapter over the v2 core)
//	POST /v1/search        stateless subtrajectory search on an inline pair
//	GET  /v1/stats         engine and server counters
//	POST /v2/query         batch of query specs, one result per spec
//	POST /v2/query/stream  one spec, matches streamed as NDJSON records
//	POST /v2/load/stream   streaming NDJSON bulk ingest (one trajectory per record)
//	GET  /v2/trajectories/{id}  fetch a stored trajectory by global ID
//	GET  /v2/stats         engine and server counters
//	GET  /healthz          liveness probe (503 while recovering)
//
// A server booting over a persistent data directory starts in the
// "recovering" state: the data-path endpoints (loads, queries, trajectory
// fetches) are rejected with code overloaded — which the distributed
// router treats as degradable, failing over to replicas — until the
// process finishes replaying its log and flips to "ready" via SetReady.
//
// Every error is the typed envelope {"error": {"code", "message"}} with a
// machine-readable code (api.Code) mapped onto the HTTP status.
//
// Requests inherit the client connection's context, optionally tightened by
// a per-request timeout_ms and the server's MaxTimeout cap, so abandoned or
// slow queries are cancelled instead of holding worker slots.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"simsub/api"
	"simsub/internal/core"
	"simsub/internal/engine"
	"simsub/internal/failpoint"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// Options tunes a Server. The zero value is usable.
type Options struct {
	// MaxTimeout caps every request's search time (default 30s). A request
	// may ask for less via timeout_ms but never for more.
	MaxTimeout time.Duration
	// MaxBodyBytes limits request body size (default 64 MiB).
	MaxBodyBytes int64
	// MaxSearches bounds concurrent /v1/search computations (default
	// 2×GOMAXPROCS). An abandoned search holds its slot until it finishes,
	// so timed-out requests cannot pile up unbounded background work.
	MaxSearches int
	// MaxBatchSpecs caps the specs per /v2/query batch (default 256).
	MaxBatchSpecs int
	// EnableFailpoints exposes the /v2/admin/failpoints endpoint (and honors
	// the server/request fault site). Off by default: a production fleet
	// cannot be chaos-tested by accident — arm it with the -failpoints flag
	// or the SIMSUB_FAILPOINTS_ADMIN env var of simsubd.
	EnableFailpoints bool
}

func (o *Options) fill() {
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.MaxSearches <= 0 {
		o.MaxSearches = 2 * runtime.GOMAXPROCS(0)
	}
	if o.MaxBatchSpecs <= 0 {
		o.MaxBatchSpecs = 256
	}
}

// Server is the HTTP front end of an engine. It implements http.Handler.
type Server struct {
	eng       *engine.Engine
	opts      Options
	mux       *http.ServeMux
	searchSem chan struct{}
	start     time.Time

	// ready gates the data-path endpoints; false while the node replays
	// its persistent log on boot (see SetReady).
	ready    atomic.Bool
	recovery atomic.Pointer[api.RecoveryInfo]

	// draining gates the load endpoints during graceful shutdown: once set,
	// new loads are rejected and Drain waits out the in-flight ones, so the
	// final snapshot+fsync can never race a batched commit still streaming
	// in. loadMu orders the draining check against the active-load count:
	// an admit either lands before Drain reads the count or observes
	// draining and rejects — never neither.
	draining   atomic.Bool
	loadMu     sync.Mutex
	loadActive int
	loadIdle   chan struct{}
}

// New builds a server over the engine. It starts ready; a process that
// recovers a data directory in the background calls SetReady(false)
// before serving and flips it back once the engine holds the full corpus.
func New(eng *engine.Engine, opts Options) *Server {
	opts.fill()
	s := &Server{
		eng:       eng,
		opts:      opts,
		mux:       http.NewServeMux(),
		searchSem: make(chan struct{}, opts.MaxSearches),
		start:     time.Now(),
	}
	s.ready.Store(true)
	s.mux.HandleFunc("POST /v1/trajectories", s.handleLoad)
	s.mux.HandleFunc("POST /v1/topk", s.handleTopK)
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v2/query", s.handleQuery)
	s.mux.HandleFunc("POST /v2/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("POST /v2/load/stream", s.handleLoadStream)
	s.mux.HandleFunc("GET /v2/trajectories/{id}", s.handleGetTrajectory)
	s.mux.HandleFunc("GET /v2/stats", s.handleStats)
	s.mux.HandleFunc("POST /v2/admin/policy", s.handlePolicySwap)
	s.mux.HandleFunc("GET /v2/admin/policy", s.handlePolicyGet)
	s.mux.HandleFunc("POST /v2/admin/encoder", s.handleEncoderSwap)
	s.mux.HandleFunc("GET /v2/admin/encoder", s.handleEncoderGet)
	if opts.EnableFailpoints {
		s.mux.Handle("/v2/admin/failpoints", FailpointsHandler())
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// SetReady flips the node's serving state. While not ready, data-path
// endpoints answer code overloaded (degradable: the router fails over to
// replicas) and /healthz answers 503 {"status":"recovering"}.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// SetRecovery records what boot-time crash recovery did; surfaced under
// "recovery" in /v2/stats.
func (s *Server) SetRecovery(info api.RecoveryInfo) { s.recovery.Store(&info) }

func (s *Server) state() string {
	if s.ready.Load() {
		return api.StateReady
	}
	return api.StateRecovering
}

// gate rejects data-path requests while the node is recovering.
func (s *Server) gate(w http.ResponseWriter) bool {
	if s.ready.Load() {
		return true
	}
	writeErr(w, api.Errorf(api.CodeOverloaded, "node is recovering its persistent log; retry shortly"))
	return false
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.opts.EnableFailpoints {
		if err := failpoint.InjectCtx(r.Context(), "server/request"); err != nil {
			if errors.Is(err, failpoint.ErrDrop) {
				// sever the connection without a response, as a dying node would
				panic(http.ErrAbortHandler)
			}
			writeErr(w, api.Errorf(api.CodeInternal, "%v", err))
			return
		}
	}
	// the streaming bulk-ingest endpoint is exempt from the body cap: it
	// decodes incrementally and never buffers the corpus, so its size is
	// bounded by the store, not by memory
	if !(r.Method == http.MethodPost && r.URL.Path == "/v2/load/stream") {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// Drain stops admitting new load requests (they answer 503 overloaded with
// a Retry-After) and waits for the in-flight ones to commit, or for ctx to
// expire. Call it BEFORE http.Server.Shutdown and the store's final
// snapshot: connection drain alone cannot order an in-flight streaming
// bulk load's batched commit before the snapshot's fsync.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	idle := make(chan struct{})
	s.loadMu.Lock()
	if s.loadActive == 0 {
		s.loadMu.Unlock()
		return nil
	}
	s.loadIdle = idle
	s.loadMu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admitLoad gates a load request behind the drain and load-shedding
// states, registering it in the active-load count on success; the caller
// must `defer s.endLoad()`.
func (s *Server) admitLoad(w http.ResponseWriter) bool {
	reject := func(ae *api.Error) bool {
		ae.RetryAfterMS = int(s.eng.RetryAfterHint().Milliseconds())
		writeErr(w, ae)
		return false
	}
	if s.eng.Shedding() {
		// loads shed first: bulk ingestion is the most deferrable work
		return reject(api.Errorf(api.CodeOverloaded, "shedding bulk loads while queries are backed up"))
	}
	s.loadMu.Lock()
	if s.draining.Load() {
		s.loadMu.Unlock()
		return reject(api.Errorf(api.CodeOverloaded, "node is draining for shutdown"))
	}
	s.loadActive++
	s.loadMu.Unlock()
	return true
}

// endLoad retires one admitted load, waking a pending Drain when the last
// one finishes.
func (s *Server) endLoad() {
	s.loadMu.Lock()
	s.loadActive--
	if s.loadActive == 0 && s.loadIdle != nil {
		close(s.loadIdle)
		s.loadIdle = nil
	}
	s.loadMu.Unlock()
}

// Trajectory is the wire form of a trajectory (see api.Trajectory).
type Trajectory = api.Trajectory

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr renders the typed error envelope with its mapped HTTP status.
// Every overloaded (503) response carries a Retry-After header: the
// error's drain-rate-derived hint when it has one, a conservative 1s
// otherwise.
func writeErr(w http.ResponseWriter, ae *api.Error) {
	if ae.Code == api.CodeOverloaded {
		if ae.RetryAfterMS <= 0 {
			cp := *ae
			cp.RetryAfterMS = 1000
			ae = &cp
		}
		w.Header().Set("Retry-After", strconv.Itoa((ae.RetryAfterMS+999)/1000))
	}
	writeJSON(w, ae.HTTPStatus(), api.ErrorResponse{Err: *ae})
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeErr(w, api.Errorf(api.CodeTooLarge, "request body exceeds %d bytes", maxErr.Limit))
			return false
		}
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "bad request body: %v", err))
		return false
	}
	return true
}

// requestContext derives the search context: the client connection's
// context bounded by min(timeout_ms, MaxTimeout). The comparison happens
// in millisecond space so an absurd client value cannot overflow the
// duration multiply — it just gets the MaxTimeout cap.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.opts.MaxTimeout
	if timeoutMS > 0 && int64(timeoutMS) < int64(d/time.Millisecond) {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

type loadRequest = api.LoadRequest

type loadResponse = api.LoadResponse

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	if !s.admitLoad(w) {
		return
	}
	defer s.endLoad()
	var req loadRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Trajectories) == 0 {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "no trajectories in request"))
		return
	}
	ts := make([]traj.Trajectory, len(req.Trajectories))
	for i, wt := range req.Trajectories {
		t, aerr := wt.ToTraj()
		if aerr != nil {
			writeErr(w, api.Errorf(api.CodeInvalidArgument, "trajectory %d: %s", i, aerr.Message))
			return
		}
		ts[i] = t
	}
	ids, err := s.eng.Add(ts)
	if err != nil {
		writeErr(w, api.FromError(err))
		return
	}
	writeJSON(w, http.StatusOK, loadResponse{Loaded: len(ids), IDs: ids, Total: s.eng.Len()})
}

// streamLoadBatch is how many NDJSON records are buffered before each
// engine.Add: large enough to amortize the per-batch index rebuild and
// log write, small enough that memory stays flat at any corpus size.
const streamLoadBatch = 512

// handleLoadStream is the streaming bulk-ingest endpoint: an NDJSON body
// with one api.Trajectory object per record ({"points":[[x,y,t],...]},
// unknown fields such as "id" ignored — the engine assigns global IDs).
// Records are validated and committed in batches as they arrive, so a
// 1M-trajectory corpus streams through constant memory straight into the
// engine (and its write-ahead log when persistence is on). On a
// mid-stream error, records of already-committed batches remain loaded;
// the error message carries the committed count.
func (s *Server) handleLoadStream(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	if !s.admitLoad(w) {
		return
	}
	defer s.endLoad()
	start := time.Now()
	dec := json.NewDecoder(r.Body)
	batch := make([]traj.Trajectory, 0, streamLoadBatch)
	firstID, loaded := -1, 0
	flush := func() *api.Error {
		if len(batch) == 0 {
			return nil
		}
		ids, err := s.eng.Add(batch)
		if err != nil {
			return api.FromError(err)
		}
		if firstID < 0 {
			firstID = ids[0]
		}
		loaded += len(ids)
		batch = batch[:0]
		return nil
	}
	recNo := 0
	for {
		var wt Trajectory
		if err := dec.Decode(&wt); err == io.EOF {
			break
		} else if err != nil {
			writeErr(w, api.Errorf(api.CodeInvalidArgument,
				"stream record %d: bad JSON (%d records already committed): %v", recNo+1, loaded, err))
			return
		}
		recNo++
		t, aerr := wt.ToTraj()
		if aerr != nil {
			writeErr(w, api.Errorf(api.CodeInvalidArgument,
				"stream record %d (%d records already committed): %s", recNo, loaded, aerr.Message))
			return
		}
		batch = append(batch, t)
		if len(batch) == streamLoadBatch {
			if aerr := flush(); aerr != nil {
				writeErr(w, aerr)
				return
			}
		}
	}
	if aerr := flush(); aerr != nil {
		writeErr(w, aerr)
		return
	}
	if recNo == 0 {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "empty load stream"))
		return
	}
	writeJSON(w, http.StatusOK, api.BulkLoadResponse{
		Loaded:  loaded,
		FirstID: firstID,
		Total:   s.eng.Len(),
		TookMS:  float64(time.Since(start).Microseconds()) / 1000,
	})
}

type topkRequest struct {
	Query     Trajectory `json:"query"`
	K         int        `json:"k"`
	Measure   string     `json:"measure"`
	Algorithm string     `json:"algorithm"`
	TimeoutMS int        `json:"timeout_ms"`
}

type topkResponse struct {
	Matches []api.Match `json:"matches"`
	Cached  bool        `json:"cached"`
	TookMS  float64     `json:"took_ms"`
}

// handleTopK is the /v1 single-query adapter: the request is recast as a
// one-spec api.QuerySpec and answered by the same engine path as /v2.
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if !s.gate(w) {
		return
	}
	var req topkRequest
	if !decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	res := s.eng.QueryOne(ctx, api.QuerySpec{
		Query: req.Query, K: req.K, Measure: req.Measure, Algorithm: req.Algorithm,
	})
	if res.Error != nil {
		writeErr(w, res.Error)
		return
	}
	writeJSON(w, http.StatusOK, topkResponse{
		Matches: res.Matches,
		Cached:  res.Cached,
		TookMS:  res.TookMS,
	})
}

type searchRequest struct {
	Data      Trajectory `json:"data"`
	Query     Trajectory `json:"query"`
	Measure   string     `json:"measure"`
	Algorithm string     `json:"algorithm"`
	TimeoutMS int        `json:"timeout_ms"`
}

type searchResponse struct {
	Start    int     `json:"start"`
	End      int     `json:"end"`
	Dist     float64 `json:"dist"`
	Sim      float64 `json:"sim"`
	Explored int     `json:"explored"`
	TookMS   float64 `json:"took_ms"`
}

// handleSearch answers the stateless pairwise SimSub problem: the best
// subtrajectory of an inline data trajectory for an inline query.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !decode(w, r, &req) {
		return
	}
	data, aerr := req.Data.ToTraj()
	if aerr != nil {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "data: %s", aerr.Message))
		return
	}
	q, aerr := req.Query.ToTraj()
	if aerr != nil {
		writeErr(w, api.Errorf(api.CodeInvalidArgument, "query: %s", aerr.Message))
		return
	}
	if req.Measure == "" {
		req.Measure = api.DefaultMeasure
	}
	if req.Algorithm == "" {
		req.Algorithm = api.DefaultSearchAlgorithm
	}
	// resolution goes through the engine so the learned searches ("rls",
	// "rls-skip") bind the registered policy here exactly as on /v1/topk
	// and /v2/query, and unknown names fail with the same typed
	// invalid_argument errors on every route
	alg, err := s.eng.ResolveAlgorithm(req.Measure, req.Algorithm, engine.Params{})
	if err != nil {
		writeErr(w, api.FromError(err))
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()
	// algorithms are not interruptible mid-trajectory, so the search runs in
	// a goroutine the handler can abandon on timeout; the semaphore slot is
	// held until the search actually finishes, bounding background work
	select {
	case s.searchSem <- struct{}{}:
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.Canceled) {
			// the client went away while queued — a cancel, not overload
			writeErr(w, api.FromError(ctx.Err()))
			return
		}
		// the request expired before a slot freed up: the server is at its
		// pairwise-search capacity bound, which is overload, not a search
		// timeout
		writeErr(w, api.Errorf(api.CodeOverloaded,
			"no pairwise-search slot within the request deadline (%d concurrent searches)", s.opts.MaxSearches))
		return
	}
	done := make(chan core.Result, 1)
	go func() {
		defer func() { <-s.searchSem }()
		done <- alg.Search(data, q)
	}()
	select {
	case res := <-done:
		writeJSON(w, http.StatusOK, searchResponse{
			Start:    res.Interval.I,
			End:      res.Interval.J,
			Dist:     res.Dist,
			Sim:      sim.Sim(res.Dist),
			Explored: res.Explored,
			TookMS:   float64(time.Since(start).Microseconds()) / 1000,
		})
	case <-ctx.Done():
		writeErr(w, api.FromError(ctx.Err()))
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	es := s.eng.Stats()
	writeJSON(w, http.StatusOK, api.StatsResponse{
		Engine: api.Stats{
			Trajectories:              es.Trajectories,
			Points:                    es.Points,
			Shards:                    es.Shards,
			Workers:                   es.Workers,
			Queries:                   es.Queries,
			CacheHits:                 es.CacheHits,
			CacheMisses:               es.CacheMisses,
			CacheEntries:              es.CacheEntries,
			InFlight:                  es.InFlight,
			CandidatesSeen:            es.CandidatesSeen,
			LBSkipped:                 es.LBSkipped,
			EarlyAbandoned:            es.EarlyAbandoned,
			Shed:                      es.Shed,
			ShedExpensive:             es.ShedExpensive,
			DeadlineRejects:           es.DeadlineRejects,
			DegradedQueries:           es.DegradedQueries,
			QueueDepth:                es.QueueDepth,
			QueueWaitMS:               es.QueueWaitMS,
			Shedding:                  es.Shedding,
			PolicyLoaded:              es.PolicyLoaded,
			PolicyName:                es.PolicyName,
			PolicyFingerprint:         es.PolicyFingerprint,
			PolicyCompiled:            es.PolicyCompiled,
			PolicyCompileResolution:   es.PolicyCompileResolution,
			PolicyCompileDivergence:   es.PolicyCompileDivergence,
			PolicyCompiledFingerprint: es.PolicyCompiledFingerprint,
			RLSQueries:                es.RLSQueries,
			QualitySamples:            es.QualitySamples,
			ApproxRatio:               es.ApproxRatio,
			MeanRank:                  es.MeanRank,
			SkippedFraction:           es.SkippedFraction,
			EncoderLoaded:             es.EncoderLoaded,
			EncoderFingerprint:        es.EncoderFingerprint,
			EncoderDim:                es.EncoderDim,
			EncoderGrid:               es.EncoderGrid,
			ANNQueries:                es.ANNQueries,
			RecallSamples:             es.RecallSamples,
			MeanRecall:                es.MeanRecall,
		},
		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		Measures:      sim.Names(),
		State:         s.state(),
		Recovery:      s.recovery.Load(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": api.StateRecovering})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
