// Package server exposes the engine over an HTTP/JSON API:
//
//	POST /v1/trajectories  bulk-load trajectories into the engine
//	POST /v1/topk          top-k search over the stored trajectories
//	POST /v1/search        stateless subtrajectory search on an inline pair
//	GET  /v1/stats         engine and server counters
//	GET  /healthz          liveness probe
//
// Requests inherit the client connection's context, optionally tightened by
// a per-request timeout_ms and the server's MaxTimeout cap, so abandoned or
// slow queries are cancelled instead of holding worker slots.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"simsub/internal/core"
	"simsub/internal/engine"
	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// Options tunes a Server. The zero value is usable.
type Options struct {
	// MaxTimeout caps every request's search time (default 30s). A request
	// may ask for less via timeout_ms but never for more.
	MaxTimeout time.Duration
	// MaxBodyBytes limits request body size (default 64 MiB).
	MaxBodyBytes int64
	// MaxSearches bounds concurrent /v1/search computations (default
	// 2×GOMAXPROCS). An abandoned search holds its slot until it finishes,
	// so timed-out requests cannot pile up unbounded background work.
	MaxSearches int
}

func (o *Options) fill() {
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.MaxSearches <= 0 {
		o.MaxSearches = 2 * runtime.GOMAXPROCS(0)
	}
}

// Server is the HTTP front end of an engine. It implements http.Handler.
type Server struct {
	eng       *engine.Engine
	opts      Options
	mux       *http.ServeMux
	searchSem chan struct{}
	start     time.Time
}

// New builds a server over the engine.
func New(eng *engine.Engine, opts Options) *Server {
	opts.fill()
	s := &Server{
		eng:       eng,
		opts:      opts,
		mux:       http.NewServeMux(),
		searchSem: make(chan struct{}, opts.MaxSearches),
		start:     time.Now(),
	}
	s.mux.HandleFunc("POST /v1/trajectories", s.handleLoad)
	s.mux.HandleFunc("POST /v1/topk", s.handleTopK)
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// Trajectory is the wire form of a trajectory: points are [x, y] or
// [x, y, t] triples; a missing t defaults to the point's index. IDs are
// always server-assigned (returned by the load response), so the wire form
// deliberately has no id field — sending one is rejected as unknown.
type Trajectory struct {
	Points [][]float64 `json:"points"`
}

// toTraj converts the wire form, validating point arity.
func (wt Trajectory) toTraj() (traj.Trajectory, error) {
	pts := make([]geo.Point, len(wt.Points))
	for i, p := range wt.Points {
		switch len(p) {
		case 2:
			pts[i] = geo.Point{X: p[0], Y: p[1], T: float64(i)}
		case 3:
			pts[i] = geo.Point{X: p[0], Y: p[1], T: p[2]}
		default:
			return traj.Trajectory{}, fmt.Errorf("point %d has %d coordinates, want [x,y] or [x,y,t]", i, len(p))
		}
	}
	return traj.Trajectory{Points: pts}, nil
}

// matchJSON is the wire form of one ranked answer.
type matchJSON struct {
	TrajID   int     `json:"traj_id"`
	Start    int     `json:"start"`
	End      int     `json:"end"`
	Dist     float64 `json:"dist"`
	Sim      float64 `json:"sim"`
	Explored int     `json:"explored"`
}

func toMatchJSON(m engine.Match) matchJSON {
	return matchJSON{
		TrajID:   m.TrajID,
		Start:    m.Result.Interval.I,
		End:      m.Result.Interval.J,
		Dist:     m.Result.Dist,
		Sim:      sim.Sim(m.Result.Dist),
		Explored: m.Result.Explored,
	}
}

type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxErr.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// requestContext derives the search context: the client connection's
// context bounded by min(timeout_ms, MaxTimeout). The comparison happens
// in millisecond space so an absurd client value cannot overflow the
// duration multiply — it just gets the MaxTimeout cap.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.opts.MaxTimeout
	if timeoutMS > 0 && int64(timeoutMS) < int64(d/time.Millisecond) {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// searchStatus maps a search error to an HTTP status: timeouts are 504,
// client disconnects 499 (nginx convention; net/http won't deliver it).
func searchStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusBadRequest
	}
}

type loadRequest struct {
	Trajectories []Trajectory `json:"trajectories"`
}

type loadResponse struct {
	Loaded int   `json:"loaded"`
	IDs    []int `json:"ids"`
	Total  int   `json:"total"`
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Trajectories) == 0 {
		writeError(w, http.StatusBadRequest, "no trajectories in request")
		return
	}
	ts := make([]traj.Trajectory, len(req.Trajectories))
	for i, wt := range req.Trajectories {
		t, err := wt.toTraj()
		if err != nil {
			writeError(w, http.StatusBadRequest, "trajectory %d: %v", i, err)
			return
		}
		if t.Len() == 0 {
			writeError(w, http.StatusBadRequest, "trajectory %d is empty", i)
			return
		}
		ts[i] = t
	}
	ids := s.eng.Add(ts)
	writeJSON(w, http.StatusOK, loadResponse{Loaded: len(ids), IDs: ids, Total: s.eng.Len()})
}

type topkRequest struct {
	Query     Trajectory `json:"query"`
	K         int        `json:"k"`
	Measure   string     `json:"measure"`
	Algorithm string     `json:"algorithm"`
	TimeoutMS int        `json:"timeout_ms"`
}

type topkResponse struct {
	Matches []matchJSON `json:"matches"`
	Cached  bool        `json:"cached"`
	TookMS  float64     `json:"took_ms"`
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req topkRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := req.Query.toTraj()
	if err != nil {
		writeError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	if q.Len() == 0 {
		writeError(w, http.StatusBadRequest, "query trajectory is empty")
		return
	}
	if req.K <= 0 {
		req.K = 10
	}
	if req.Measure == "" {
		req.Measure = "dtw"
	}
	if req.Algorithm == "" {
		req.Algorithm = "pss"
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()
	matches, cached, err := s.eng.TopK(ctx, engine.Query{
		Q: q, K: req.K, Measure: req.Measure, Algorithm: req.Algorithm,
	})
	if err != nil {
		writeError(w, searchStatus(err), "topk: %v", err)
		return
	}
	out := make([]matchJSON, len(matches))
	for i, m := range matches {
		out[i] = toMatchJSON(m)
	}
	writeJSON(w, http.StatusOK, topkResponse{
		Matches: out,
		Cached:  cached,
		TookMS:  float64(time.Since(start).Microseconds()) / 1000,
	})
}

type searchRequest struct {
	Data      Trajectory `json:"data"`
	Query     Trajectory `json:"query"`
	Measure   string     `json:"measure"`
	Algorithm string     `json:"algorithm"`
	TimeoutMS int        `json:"timeout_ms"`
}

type searchResponse struct {
	Start    int     `json:"start"`
	End      int     `json:"end"`
	Dist     float64 `json:"dist"`
	Sim      float64 `json:"sim"`
	Explored int     `json:"explored"`
	TookMS   float64 `json:"took_ms"`
}

// handleSearch answers the stateless pairwise SimSub problem: the best
// subtrajectory of an inline data trajectory for an inline query.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !decode(w, r, &req) {
		return
	}
	data, err := req.Data.toTraj()
	if err != nil {
		writeError(w, http.StatusBadRequest, "data: %v", err)
		return
	}
	q, err := req.Query.toTraj()
	if err != nil {
		writeError(w, http.StatusBadRequest, "query: %v", err)
		return
	}
	if data.Len() == 0 || q.Len() == 0 {
		writeError(w, http.StatusBadRequest, "data and query trajectories must be non-empty")
		return
	}
	if req.Measure == "" {
		req.Measure = "dtw"
	}
	if req.Algorithm == "" {
		req.Algorithm = "exacts"
	}
	alg, err := engine.ResolveNames(req.Measure, req.Algorithm)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()
	// algorithms are not interruptible mid-trajectory, so the search runs in
	// a goroutine the handler can abandon on timeout; the semaphore slot is
	// held until the search actually finishes, bounding background work
	select {
	case s.searchSem <- struct{}{}:
	case <-ctx.Done():
		writeError(w, searchStatus(ctx.Err()), "search: %v", ctx.Err())
		return
	}
	done := make(chan core.Result, 1)
	go func() {
		defer func() { <-s.searchSem }()
		done <- alg.Search(data, q)
	}()
	select {
	case res := <-done:
		writeJSON(w, http.StatusOK, searchResponse{
			Start:    res.Interval.I,
			End:      res.Interval.J,
			Dist:     res.Dist,
			Sim:      sim.Sim(res.Dist),
			Explored: res.Explored,
			TookMS:   float64(time.Since(start).Microseconds()) / 1000,
		})
	case <-ctx.Done():
		writeError(w, searchStatus(ctx.Err()), "search: %v", ctx.Err())
	}
}

type statsResponse struct {
	Engine        engine.Stats `json:"engine"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Goroutines    int          `json:"goroutines"`
	Measures      []string     `json:"measures"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		Engine:        s.eng.Stats(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		Measures:      sim.Names(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
