package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"simsub/api"
	"simsub/internal/engine"
	"simsub/internal/failpoint"
)

// TestDrainWaitsForInFlightLoad: Drain stops admitting new bulk loads
// immediately but blocks until the in-flight streaming load commits — the
// ordering that keeps the final shutdown snapshot from racing a batched
// commit.
func TestDrainWaitsForInFlightLoad(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	h := New(eng, Options{})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	// an in-flight streaming load whose body we control via a pipe
	pr, pw := io.Pipe()
	loadDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v2/load/stream", "application/x-ndjson", pr)
		if err == nil {
			resp.Body.Close()
		}
		loadDone <- err
	}()
	if _, err := pw.Write([]byte(`{"points":[[0,0,0],[1,1,1]]}` + "\n")); err != nil {
		t.Fatal(err)
	}
	waitActive := time.Now().Add(5 * time.Second)
	for {
		h.loadMu.Lock()
		active := h.loadActive
		h.loadMu.Unlock()
		if active == 1 {
			break
		}
		if time.Now().After(waitActive) {
			t.Fatal("streaming load never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- h.Drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a load still in flight", err)
	case <-time.After(30 * time.Millisecond):
	}

	// a new load during the drain is rejected with a typed 503 + hint
	resp, err := http.Post(srv.URL+"/v2/load/stream", "application/x-ndjson",
		strings.NewReader(`{"points":[[0,0,0],[1,1,1]]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("load during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 during drain carries no Retry-After header")
	}
	var envelope struct {
		Error *api.Error `json:"error"`
	}
	decodeBody(t, resp, &envelope)
	if envelope.Error == nil || envelope.Error.Code != api.CodeOverloaded || envelope.Error.RetryAfterMS <= 0 {
		t.Fatalf("drain rejection envelope %+v", envelope.Error)
	}

	// finishing the in-flight body lets both the load and the drain complete
	pw.Close()
	if err := <-loadDone; err != nil {
		t.Fatalf("in-flight load failed: %v", err)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never observed the load finishing")
	}
	if eng.Len() != 1 {
		t.Fatalf("in-flight load committed %d trajectories, want 1", eng.Len())
	}
}

// TestDrainHonorsContext: a drain that cannot finish before its context
// expires returns the context error instead of hanging shutdown forever.
func TestDrainHonorsContext(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	h := New(eng, Options{})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	pr, pw := io.Pipe()
	defer pw.Close()
	go func() {
		resp, err := http.Post(srv.URL+"/v2/load/stream", "application/x-ndjson", pr)
		if err == nil {
			resp.Body.Close()
		}
	}()
	pw.Write([]byte(`{"points":[[0,0,0],[1,1,1]]}` + "\n"))
	waitActive := time.Now().Add(5 * time.Second)
	for {
		h.loadMu.Lock()
		active := h.loadActive
		h.loadMu.Unlock()
		if active == 1 {
			break
		}
		if time.Now().After(waitActive) {
			t.Fatal("streaming load never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := h.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want context.DeadlineExceeded", err)
	}
}

// TestOverloadedCarriesRetryAfter: every 503 the server writes carries a
// Retry-After header (seconds, ceiling) matching the retry_after_ms field
// in the envelope — here via the recovering gate, which uses writeErr's
// default hint.
func TestOverloadedCarriesRetryAfter(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	h := New(eng, Options{})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	h.SetReady(false)

	resp, err := http.Post(srv.URL+"/v2/query", "application/json", strings.NewReader(`{"queries":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\" (ceiling of the default 1000ms hint)", got)
	}
	var envelope struct {
		Error *api.Error `json:"error"`
	}
	decodeBody(t, resp, &envelope)
	if envelope.Error == nil || envelope.Error.RetryAfterMS != 1000 {
		t.Fatalf("envelope %+v, want retry_after_ms 1000", envelope.Error)
	}
}

// TestFailpointsEndpoint drives the admin surface end to end: disabled by
// default, and with the opt-in GET lists, POST arms/disarms/clears.
func TestFailpointsEndpoint(t *testing.T) {
	failpoint.DisableAll()
	defer failpoint.DisableAll()

	eng := engine.New(engine.Config{Shards: 2})
	plain := httptest.NewServer(New(eng, Options{}))
	t.Cleanup(plain.Close)
	resp, err := http.Get(plain.URL + "/v2/admin/failpoints")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("failpoints endpoint without opt-in: status %d, want 404", resp.StatusCode)
	}

	srv := httptest.NewServer(New(eng, Options{EnableFailpoints: true}))
	t.Cleanup(srv.Close)

	post := func(body string) (*http.Response, api.FailpointsResponse) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v2/admin/failpoints", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out api.FailpointsResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		return resp, out
	}

	resp, out := post(`{"name":"storage/fsync","spec":"2*error(disk gone)"}`)
	if resp.StatusCode != http.StatusOK || len(out.Failpoints) != 1 {
		t.Fatalf("arm: status %d, sites %+v", resp.StatusCode, out.Failpoints)
	}
	if out.Failpoints[0].Name != "storage/fsync" || out.Failpoints[0].Spec != "2*error(disk gone)" {
		t.Fatalf("armed site %+v", out.Failpoints[0])
	}
	if err := failpoint.Inject("storage/fsync"); err == nil {
		t.Fatal("armed site did not fire")
	}

	var listed api.FailpointsResponse
	getResp, err := http.Get(srv.URL + "/v2/admin/failpoints")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(getResp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if len(listed.Failpoints) != 1 || listed.Failpoints[0].Hits != 1 {
		t.Fatalf("GET listed %+v, want 1 site with 1 hit", listed.Failpoints)
	}

	if resp, _ := post(`{"name":"storage/fsync","spec":"not a spec"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d, want 400", resp.StatusCode)
	}
	if resp, out := post(`{"clear_all":true}`); resp.StatusCode != http.StatusOK || len(out.Failpoints) != 0 {
		t.Fatalf("clear_all: status %d, sites %+v", resp.StatusCode, out.Failpoints)
	}
	if err := failpoint.Inject("storage/fsync"); err != nil {
		t.Fatalf("site still armed after clear_all: %v", err)
	}
}
