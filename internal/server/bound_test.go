package server

import (
	"math/rand"
	"net/http"
	"reflect"
	"testing"

	"simsub/api"
	"simsub/internal/engine"
)

// TestV2QueryBoundOverWire is the wire half of bound propagation: a
// coordinator's running k-th-best arrives as QuerySpec.bound, seeds the
// shard's threshold (visible as lb_skipped > 0 in /v2/stats), and leaves
// the ranking byte-identical.
func TestV2QueryBoundOverWire(t *testing.T) {
	srv, _ := newTestServer(t, engine.Config{Shards: 2, Index: engine.ScanAll})
	rng := rand.New(rand.NewSource(81))
	var ts []api.Trajectory
	for i := 0; i < 300; i++ {
		ts = append(ts, api.FromTraj(randWalk(rng, 12)))
	}

	resp := postJSON(t, srv.URL+"/v1/trajectories", api.LoadRequest{Trajectories: ts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	spec := api.QuerySpec{Query: api.FromTraj(randWalk(rng, 6)), K: 15, Algorithm: "pss"}
	var unbounded api.QueryResponse
	resp = postJSON(t, srv.URL+"/v2/query", api.Query{Specs: []api.QuerySpec{spec}})
	decodeBody(t, resp, &unbounded)
	want := unbounded.Results[0]
	if want.Error != nil || len(want.Matches) != spec.K {
		t.Fatalf("unbounded query: err=%v matches=%d", want.Error, len(want.Matches))
	}

	kth := want.Matches[len(want.Matches)-1].Dist
	bspec := spec
	bspec.Bound = &kth
	var bounded api.QueryResponse
	resp = postJSON(t, srv.URL+"/v2/query", api.Query{Specs: []api.QuerySpec{bspec}})
	decodeBody(t, resp, &bounded)
	got := bounded.Results[0]
	if got.Error != nil {
		t.Fatalf("bounded query: %v", got.Error)
	}
	if !reflect.DeepEqual(got.Matches, want.Matches) || got.Total != want.Total {
		t.Fatalf("wire bound changed the ranking\ngot  %+v\nwant %+v", got.Matches, want.Matches)
	}

	sresp, err := http.Get(srv.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st api.StatsResponse
	decodeBody(t, sresp, &st)
	if st.Engine.LBSkipped == 0 {
		t.Error("stats: lb_skipped = 0 after a tight wire bound — the seed did no pruning")
	}
}

// TestV2QueryBoundRejected checks a malformed bound dies at the wire
// boundary as invalid_argument.
func TestV2QueryBoundRejected(t *testing.T) {
	srv, _ := newTestServer(t, engine.Config{Shards: 2, Index: engine.ScanAll})
	rng := rand.New(rand.NewSource(82))

	resp := postJSON(t, srv.URL+"/v1/trajectories", api.LoadRequest{
		Trajectories: []api.Trajectory{api.FromTraj(randWalk(rng, 10)), api.FromTraj(randWalk(rng, 10))},
	})
	resp.Body.Close()

	bad := -2.5
	var out api.QueryResponse
	resp = postJSON(t, srv.URL+"/v2/query", api.Query{Specs: []api.QuerySpec{
		{Query: api.FromTraj(randWalk(rng, 5)), K: 1, Bound: &bad},
	}})
	decodeBody(t, resp, &out)
	if e := out.Results[0].Error; e == nil || e.Code != api.CodeInvalidArgument {
		t.Fatalf("negative bound: got %v, want invalid_argument", e)
	}
}
