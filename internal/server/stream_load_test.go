package server

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"simsub/api"
	"simsub/client"
	"simsub/internal/engine"
	"simsub/internal/traj"
)

// TestLoadStream streams an NDJSON corpus through POST /v2/load/stream via
// the Go client and checks the ingest response, the engine contents, and
// that the loaded corpus is immediately searchable.
func TestLoadStream(t *testing.T) {
	ts, eng := newTestServer(t, engine.Config{Shards: 2, Index: engine.ScanAll})
	rng := rand.New(rand.NewSource(90))
	corpus := make([]traj.Trajectory, 700)
	for i := range corpus {
		corpus[i] = randWalk(rng, 10)
		corpus[i].ID = i
	}
	var buf bytes.Buffer
	if err := traj.WriteNDJSON(&buf, corpus); err != nil {
		t.Fatal(err)
	}

	c := client.New(ts.URL)
	resp, err := c.LoadStream(context.Background(), &buf)
	if err != nil {
		t.Fatalf("LoadStream: %v", err)
	}
	if resp.Loaded != len(corpus) || resp.FirstID != 0 || resp.Total != len(corpus) {
		t.Fatalf("ingest response %+v", resp)
	}
	if eng.Len() != len(corpus) {
		t.Fatalf("engine holds %d trajectories, want %d", eng.Len(), len(corpus))
	}

	q := api.QuerySpec{Query: api.FromTraj(randWalk(rng, 6)), K: 5}
	res := eng.QueryOne(context.Background(), q)
	if res.Error != nil || len(res.Matches) != 5 {
		t.Fatalf("query over streamed corpus: err=%v matches=%d", res.Error, len(res.Matches))
	}
}

// TestLoadStreamPartialError checks that a malformed NDJSON record fails
// the request with a typed error naming how many records were already
// committed — batches before the bad line stay loaded.
func TestLoadStreamPartialError(t *testing.T) {
	ts, eng := newTestServer(t, engine.Config{Shards: 2})
	body := `{"points":[[0,0,0],[1,1,1]]}
{"points":[[2,2,0],[3,3,1]]}
this is not json
`
	resp, err := http.Post(ts.URL+"/v2/load/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		t.Fatal("malformed NDJSON accepted")
	}
	var envelope struct {
		Error *api.Error `json:"error"`
	}
	decodeBody(t, resp, &envelope)
	if envelope.Error == nil || envelope.Error.Code != api.CodeInvalidArgument {
		t.Fatalf("error envelope %+v", envelope.Error)
	}
	// both valid records fit in one uncommitted batch, so nothing loaded
	if eng.Len() != 0 {
		t.Fatalf("engine holds %d trajectories after failed stream", eng.Len())
	}
}

// TestRecoveringGate drives the lifecycle a persistent node goes through
// on boot: while recovering, every data-path endpoint answers 503
// overloaded (so a router fails over), /healthz reports recovering, and
// /v2/stats — left open for observability — reports the state; flipping
// to ready restores normal service.
func TestRecoveringGate(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	h := New(eng, Options{})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	h.SetReady(false)
	h.SetRecovery(api.RecoveryInfo{Segments: 3, Records: 42, Replayed: 7})

	gated := []struct{ method, path, body string }{
		{http.MethodPost, "/v2/query", `{"queries":[]}`},
		{http.MethodPost, "/v2/query/stream", `{}`},
		{http.MethodGet, "/v2/trajectories/0", ""},
		{http.MethodPost, "/v1/trajectories", `{"trajectories":[]}`},
		{http.MethodPost, "/v2/load/stream", `{"points":[[0,0,0],[1,1,1]]}`},
		{http.MethodPost, "/v1/topk", `{}`},
	}
	for _, g := range gated {
		req, err := http.NewRequest(g.method, srv.URL+g.path, strings.NewReader(g.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Error *api.Error `json:"error"`
		}
		decodeBody(t, resp, &envelope)
		if resp.StatusCode != http.StatusServiceUnavailable ||
			envelope.Error == nil || envelope.Error.Code != api.CodeOverloaded {
			t.Errorf("%s %s while recovering: status %d, error %+v",
				g.method, g.path, resp.StatusCode, envelope.Error)
		}
	}
	if eng.Len() != 0 {
		t.Fatalf("a gated load still reached the engine: %d trajectories", eng.Len())
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	decodeBody(t, resp, &health)
	if resp.StatusCode != http.StatusServiceUnavailable || health["status"] != api.StateRecovering {
		t.Fatalf("healthz while recovering: status %d body %v", resp.StatusCode, health)
	}

	resp, err = http.Get(srv.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats api.StatsResponse
	decodeBody(t, resp, &stats)
	if resp.StatusCode != http.StatusOK || stats.State != api.StateRecovering {
		t.Fatalf("stats while recovering: status %d state %q", resp.StatusCode, stats.State)
	}
	if stats.Recovery == nil || stats.Recovery.Records != 42 {
		t.Fatalf("stats recovery info %+v", stats.Recovery)
	}

	h.SetReady(true)
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &health)
	if resp.StatusCode != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz after recovery: status %d body %v", resp.StatusCode, health)
	}
	resp, err = http.Get(srv.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &stats)
	if stats.State != api.StateReady {
		t.Fatalf("stats state after recovery: %q", stats.State)
	}
}
