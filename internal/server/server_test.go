package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"simsub/api"
	"simsub/internal/engine"
	"simsub/internal/geo"
	"simsub/internal/traj"
)

func newTestServer(t *testing.T, cfg engine.Config) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(cfg)
	ts := httptest.NewServer(New(eng, Options{}))
	t.Cleanup(ts.Close)
	return ts, eng
}

func randWalk(rng *rand.Rand, n int) traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64() * 0.3
		y += rng.NormFloat64() * 0.3
		pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
	}
	return traj.New(pts...)
}

func toWire(t traj.Trajectory) Trajectory {
	pts := make([][]float64, t.Len())
	for i, p := range t.Points {
		pts[i] = []float64{p.X, p.Y, p.T}
	}
	return Trajectory{Points: pts}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]string
	decodeBody(t, resp, &body)
	if body["status"] != "ok" {
		t.Fatalf("body %v", body)
	}
}

func TestLoadAndStats(t *testing.T) {
	ts, eng := newTestServer(t, engine.Config{Shards: 2})
	rng := rand.New(rand.NewSource(70))
	req := loadRequest{}
	for i := 0; i < 7; i++ {
		req.Trajectories = append(req.Trajectories, toWire(randWalk(rng, 10)))
	}
	resp := postJSON(t, ts.URL+"/v1/trajectories", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load status %d", resp.StatusCode)
	}
	var lr loadResponse
	decodeBody(t, resp, &lr)
	if lr.Loaded != 7 || lr.Total != 7 || len(lr.IDs) != 7 {
		t.Fatalf("load response %+v", lr)
	}
	if eng.Len() != 7 {
		t.Fatalf("engine holds %d trajectories", eng.Len())
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr api.StatsResponse
	decodeBody(t, resp, &sr)
	if sr.Engine.Trajectories != 7 || sr.Engine.Points != 70 || sr.Engine.Shards != 2 {
		t.Fatalf("stats %+v", sr.Engine)
	}
	if len(sr.Measures) == 0 {
		t.Fatal("stats list no measures")
	}
}

func TestTopKEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Shards: 3, CacheSize: 8, Index: engine.ScanAll})
	rng := rand.New(rand.NewSource(71))
	load := loadRequest{}
	for i := 0; i < 20; i++ {
		load.Trajectories = append(load.Trajectories, toWire(randWalk(rng, 12)))
	}
	postJSON(t, ts.URL+"/v1/trajectories", load).Body.Close()

	req := topkRequest{Query: toWire(randWalk(rng, 5)), K: 4, Measure: "dtw", Algorithm: "pss"}
	resp := postJSON(t, ts.URL+"/v1/topk", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk status %d", resp.StatusCode)
	}
	var tr topkResponse
	decodeBody(t, resp, &tr)
	if len(tr.Matches) != 4 || tr.Cached {
		t.Fatalf("topk response: %d matches cached=%v", len(tr.Matches), tr.Cached)
	}
	for i, m := range tr.Matches {
		if m.Start < 0 || m.End < m.Start || m.Dist < 0 || m.Sim <= 0 || m.Sim > 1 {
			t.Fatalf("match %d malformed: %+v", i, m)
		}
		if i > 0 && tr.Matches[i-1].Dist > m.Dist {
			t.Fatal("matches not ascending")
		}
	}

	// identical query → cache hit
	resp = postJSON(t, ts.URL+"/v1/topk", req)
	var tr2 topkResponse
	decodeBody(t, resp, &tr2)
	if !tr2.Cached {
		t.Fatal("second identical query not served from cache")
	}
}

func TestSearchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{})
	req := searchRequest{
		Data:    Trajectory{Points: [][]float64{{0, 0}, {1, 0}, {2, 0}, {3, 1}, {4, 2}}},
		Query:   Trajectory{Points: [][]float64{{2, 0}, {3, 1}}},
		Measure: "dtw", Algorithm: "exacts",
	}
	resp := postJSON(t, ts.URL+"/v1/search", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	var sr searchResponse
	decodeBody(t, resp, &sr)
	// the exact answer is the identical subtrajectory [2,3] at distance 0
	if sr.Start != 2 || sr.End != 3 || sr.Dist != 0 || sr.Sim != 1 {
		t.Fatalf("search response %+v", sr)
	}
}

func TestBadRequests(t *testing.T) {
	ts, eng := newTestServer(t, engine.Config{})
	eng.Add([]traj.Trajectory{randWalk(rand.New(rand.NewSource(73)), 8)})
	cases := []struct {
		name string
		path string
		body any
		want int
	}{
		{"empty load", "/v1/trajectories", loadRequest{}, http.StatusBadRequest},
		{"empty trajectory", "/v1/trajectories",
			loadRequest{Trajectories: []Trajectory{{}}}, http.StatusBadRequest},
		{"bad point arity", "/v1/trajectories",
			loadRequest{Trajectories: []Trajectory{{Points: [][]float64{{1}}}}}, http.StatusBadRequest},
		{"empty query", "/v1/topk", topkRequest{K: 1}, http.StatusBadRequest},
		{"unknown measure", "/v1/topk",
			topkRequest{Query: Trajectory{Points: [][]float64{{0, 0}, {1, 1}}}, K: 1, Measure: "nope"},
			http.StatusBadRequest},
		{"unknown algorithm", "/v1/search",
			searchRequest{
				Data:  Trajectory{Points: [][]float64{{0, 0}, {1, 1}}},
				Query: Trajectory{Points: [][]float64{{0, 0}}}, Algorithm: "nope"},
			http.StatusBadRequest},
		{"empty search data", "/v1/search",
			searchRequest{Query: Trajectory{Points: [][]float64{{0, 0}}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+tc.path, tc.body)
		var e api.ErrorResponse
		code := resp.StatusCode
		decodeBody(t, resp, &e)
		if code != tc.want || e.Err.Code != api.CodeInvalidArgument || e.Err.Message == "" {
			t.Errorf("%s: status %d (want %d), error %+v", tc.name, code, tc.want, e.Err)
		}
	}

	// malformed JSON
	resp, err := http.Post(ts.URL+"/v1/topk", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}

	// wrong method
	resp, err = http.Get(ts.URL + "/v1/topk")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/topk: status %d", resp.StatusCode)
	}
}

func TestTopKDefaults(t *testing.T) {
	ts, _ := newTestServer(t, engine.Config{Index: engine.ScanAll})
	rng := rand.New(rand.NewSource(72))
	load := loadRequest{}
	for i := 0; i < 15; i++ {
		load.Trajectories = append(load.Trajectories, toWire(randWalk(rng, 8)))
	}
	postJSON(t, ts.URL+"/v1/trajectories", load).Body.Close()
	// measure and algorithm default; k is required
	resp := postJSON(t, ts.URL+"/v1/topk", topkRequest{Query: toWire(randWalk(rng, 4)), K: 6})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var tr topkResponse
	decodeBody(t, resp, &tr)
	if len(tr.Matches) != 6 {
		t.Fatalf("%d matches with default measure/algorithm, want 6", len(tr.Matches))
	}

	// an omitted (or non-positive) k is a typed invalid_argument error, the
	// same shape /v2 returns — there is no silent default ranking size
	resp = postJSON(t, ts.URL+"/v1/topk", topkRequest{Query: toWire(randWalk(rng, 4))})
	var er api.ErrorResponse
	code := resp.StatusCode
	decodeBody(t, resp, &er)
	if code != http.StatusBadRequest || er.Err.Code != api.CodeInvalidArgument {
		t.Fatalf("omitted k: status %d, error %+v", code, er.Err)
	}

	// an absurd timeout_ms must clamp to MaxTimeout, not overflow into an
	// already-expired deadline
	resp = postJSON(t, ts.URL+"/v1/topk", topkRequest{
		Query: toWire(randWalk(rng, 4)), K: 3, TimeoutMS: 1 << 60,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("huge timeout_ms: status %d, want 200", resp.StatusCode)
	}
}
