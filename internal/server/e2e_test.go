package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"simsub/api"
	"simsub/internal/core"
	"simsub/internal/engine"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// TestEndToEnd is the acceptance scenario: load 1000 trajectories over
// /v1/trajectories, issue parallel /v1/topk requests under DTW and Fréchet,
// and check every answer is identical to core's Database.TopK on the same
// data.
func TestEndToEnd(t *testing.T) {
	const nTrajs = 1000
	rng := rand.New(rand.NewSource(80))
	data := make([]traj.Trajectory, nTrajs)
	for i := range data {
		data[i] = randWalk(rng, rng.Intn(24)+12)
	}
	db := core.NewDatabase(data, false)

	eng := engine.New(engine.Config{Shards: 8, CacheSize: 64, Index: engine.ScanAll})
	srv := httptest.NewServer(New(eng, Options{}))
	defer srv.Close()

	// bulk-load in a few batches, as a client would
	for lo := 0; lo < nTrajs; lo += 250 {
		req := loadRequest{}
		for _, tr := range data[lo : lo+250] {
			req.Trajectories = append(req.Trajectories, toWire(tr))
		}
		resp := postJSON(t, srv.URL+"/v1/trajectories", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("load batch at %d: status %d", lo, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if eng.Len() != nTrajs {
		t.Fatalf("engine holds %d trajectories, want %d", eng.Len(), nTrajs)
	}

	queries := make([]traj.Trajectory, 6)
	for i := range queries {
		queries[i] = randWalk(rng, 6)
	}

	type job struct {
		q       traj.Trajectory
		measure string
	}
	var jobs []job
	for _, measure := range []string{"dtw", "frechet"} {
		for _, q := range queries {
			jobs = append(jobs, job{q: q, measure: measure})
		}
	}
	var wg sync.WaitGroup
	failures := make(chan string, len(jobs))
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			resp := postJSON(t, srv.URL+"/v1/topk", topkRequest{
				Query: toWire(j.q), K: 5, Measure: j.measure, Algorithm: "pss",
			})
			if resp.StatusCode != http.StatusOK {
				failures <- "topk status not OK"
				return
			}
			var tr topkResponse
			decodeBody(t, resp, &tr)

			m, _ := sim.ByName(j.measure)
			alg, _ := core.AlgorithmFor("pss", m)
			want := db.TopK(alg, j.q, 5)
			if len(tr.Matches) != len(want) {
				failures <- "match count differs from Database.TopK"
				return
			}
			for i, g := range tr.Matches {
				w := want[i]
				if g.TrajID != w.TrajIndex || g.Start != w.Result.Interval.I ||
					g.End != w.Result.Interval.J || g.Dist != w.Result.Dist {
					failures <- "ranked answer differs from Database.TopK"
					return
				}
			}
		}(j)
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Fatal(f)
	}
}

// TestClientTimeoutCancelsSearch checks an in-flight top-k is cancelled
// cleanly when the client gives up: the request fails fast with a timeout
// status and the engine's in-flight gauge drains back to zero.
func TestClientTimeoutCancelsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	// large trajectories + ExactS make the search far slower than the
	// client's patience
	data := make([]traj.Trajectory, 64)
	for i := range data {
		data[i] = randWalk(rng, 600)
	}
	eng := engine.New(engine.Config{Shards: 4, Index: engine.ScanAll})
	srv := httptest.NewServer(New(eng, Options{}))
	defer srv.Close()
	eng.Add(data)

	q := toWire(randWalk(rng, 300))

	t.Run("server-side timeout_ms", func(t *testing.T) {
		resp := postJSON(t, srv.URL+"/v1/topk", topkRequest{
			Query: q, K: 3, Measure: "dtw", Algorithm: "exacts", TimeoutMS: 30,
		})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want %d", resp.StatusCode, http.StatusGatewayTimeout)
		}
	})

	t.Run("client disconnect", func(t *testing.T) {
		body, _ := json.Marshal(topkRequest{Query: q, K: 3, Measure: "dtw", Algorithm: "exacts"})
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/topk", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			t.Fatal("request succeeded despite client timeout")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("unexpected error: %v", err)
		}
	})

	// the abandoned searches must release their worker slots promptly
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if eng.Stats().InFlight == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("in-flight = %d, searches not cancelled", eng.Stats().InFlight)
}

// TestSearchConcurrencyBounded checks /v1/search cannot pile up unbounded
// background work: with a single search slot, a second request times out
// waiting while a long abandoned search still holds the slot.
func TestSearchConcurrencyBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	eng := engine.New(engine.Config{})
	srv := httptest.NewServer(New(eng, Options{MaxSearches: 1}))
	defer srv.Close()

	slow := searchRequest{
		Data:    toWire(randWalk(rng, 900)),
		Query:   toWire(randWalk(rng, 400)),
		Measure: "dtw", Algorithm: "exacts", TimeoutMS: 20,
	}
	// occupies the only slot long after its request times out
	resp := postJSON(t, srv.URL+"/v1/search", slow)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("first search: status %d, want 504", resp.StatusCode)
	}
	// a cheap search now has to wait for the slot and gives up: that is
	// the server refusing work at its capacity bound, reported as a typed
	// overloaded error (503), distinct from a search timeout (504)
	fast := searchRequest{
		Data:    toWire(randWalk(rng, 10)),
		Query:   toWire(randWalk(rng, 4)),
		Measure: "dtw", Algorithm: "exacts", TimeoutMS: 20,
	}
	resp = postJSON(t, srv.URL+"/v1/search", fast)
	var er api.ErrorResponse
	code := resp.StatusCode
	decodeBody(t, resp, &er)
	if code != http.StatusServiceUnavailable || er.Err.Code != api.CodeOverloaded {
		t.Fatalf("queued search: status %d error %+v, want 503 overloaded while slot is held", code, er.Err)
	}
}
