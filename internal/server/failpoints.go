package server

import (
	"net/http"

	"simsub/api"
	"simsub/internal/failpoint"
)

// FailpointsHandler serves the /v2/admin/failpoints endpoint shared by
// simsubd and simsubrouter: GET lists the armed fault sites, POST arms one
// (name + spec in the failpoint grammar), disarms one (spec "off"), or
// disarms all (clear_all). Both processes expose it only behind an
// explicit opt-in — see Options.EnableFailpoints.
func FailpointsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, failpointsResponse())
		case http.MethodPost:
			var req api.FailpointsRequest
			if !decode(w, r, &req) {
				return
			}
			if req.ClearAll {
				if req.Name != "" || req.Spec != "" {
					writeErr(w, api.Errorf(api.CodeInvalidArgument, "clear_all excludes name/spec"))
					return
				}
				failpoint.DisableAll()
			} else {
				if req.Name == "" {
					writeErr(w, api.Errorf(api.CodeInvalidArgument, "failpoint name is required"))
					return
				}
				if err := failpoint.Enable(req.Name, req.Spec); err != nil {
					writeErr(w, api.Errorf(api.CodeInvalidArgument, "%v", err))
					return
				}
			}
			writeJSON(w, http.StatusOK, failpointsResponse())
		default:
			writeErr(w, api.Errorf(api.CodeInvalidArgument, "method %s not allowed on /v2/admin/failpoints", r.Method))
		}
	})
}

// failpointsResponse snapshots the armed sites in wire form.
func failpointsResponse() api.FailpointsResponse {
	infos := failpoint.List()
	out := api.FailpointsResponse{Failpoints: make([]api.FailpointInfo, len(infos))}
	for i, fi := range infos {
		out.Failpoints[i] = api.FailpointInfo{Name: fi.Name, Spec: fi.Spec, Hits: fi.Hits}
	}
	return out
}
