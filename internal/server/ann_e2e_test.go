package server

import (
	"bytes"
	"encoding/base64"
	"math/rand"
	"net/http"
	"testing"

	"simsub/api"
	"simsub/internal/engine"
	"simsub/internal/t2vec"
	"simsub/internal/traj"
)

// Serving-path tests of the ANN prefilter and encoder admin: the encoder
// hot-swaps over /v2/admin/encoder exactly like the policy registry, the
// "ann" knob on /v2/query prefilters without changing the wire shape, and
// the recall/encoder telemetry lands in /v2/stats.

func encoderB64(t *testing.T, m *t2vec.Model) string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}

func TestAdminEncoderSwapAndANNQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	set := make([]traj.Trajectory, 300)
	for i := range set {
		set[i] = randWalk(rng, rng.Intn(16)+6)
	}
	q := randWalk(rng, 6)
	srv, eng := newTestServer(t, engine.Config{Shards: 3, Index: engine.ScanAll, CacheSize: 64})
	eng.Add(set)

	// no encoder yet: GET 404s, and an ann query is a typed rejection
	resp, err := http.Get(srv.URL + "/v2/admin/encoder")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET encoder before swap: status %d, want 404", resp.StatusCode)
	}
	res := queryV2(t, srv.URL, api.QuerySpec{
		Query: api.FromTraj(q), K: 5, Measure: "dtw",
		ANN: &api.ANNSpec{Candidates: 50},
	})
	if res.Error == nil || res.Error.Code != api.CodeInvalidArgument {
		t.Fatalf("ann query without encoder: %+v, want invalid_argument", res.Error)
	}

	// register an encoder over the wire
	resp = postJSON(t, srv.URL+"/v2/admin/encoder", api.EncoderSwapRequest{
		EncoderB64: encoderB64(t, t2vec.NewRandomModel(8, 5)),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("encoder swap: status %d", resp.StatusCode)
	}
	var info api.EncoderInfo
	decodeBody(t, resp, &info)
	if info.Dim != 8 || info.Fingerprint == "" {
		t.Fatalf("swap info = %+v", info)
	}

	// a full-budget ann query reranks the whole corpus: byte-identical to
	// the exact query on the same route
	exact := queryV2(t, srv.URL, api.QuerySpec{Query: api.FromTraj(q), K: 10, Measure: "dtw"})
	if exact.Error != nil {
		t.Fatal(exact.Error)
	}
	ann := queryV2(t, srv.URL, api.QuerySpec{
		Query: api.FromTraj(q), K: 10, Measure: "dtw",
		ANN: &api.ANNSpec{Candidates: len(set), Probes: 4},
	})
	if ann.Error != nil {
		t.Fatal(ann.Error)
	}
	if len(ann.Matches) != len(exact.Matches) {
		t.Fatalf("ann %d matches, exact %d", len(ann.Matches), len(exact.Matches))
	}
	for i := range exact.Matches {
		if ann.Matches[i] != exact.Matches[i] {
			t.Fatalf("rank %d: ann %+v, exact %+v", i, ann.Matches[i], exact.Matches[i])
		}
	}

	// the pure embedding ranking serves under measure t2vec
	emb := queryV2(t, srv.URL, api.QuerySpec{
		Query: api.FromTraj(q), K: 5, Measure: "t2vec", Algorithm: "embed",
	})
	if emb.Error != nil {
		t.Fatal(emb.Error)
	}
	if len(emb.Matches) != 5 {
		t.Fatalf("embed returned %d matches", len(emb.Matches))
	}

	// telemetry: the encoder description and ann counters are in /v2/stats
	resp, err = http.Get(srv.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats api.StatsResponse
	decodeBody(t, resp, &stats)
	if !stats.Engine.EncoderLoaded || stats.Engine.EncoderFingerprint != info.Fingerprint {
		t.Fatalf("stats encoder = %q loaded=%v, want %q", stats.Engine.EncoderFingerprint,
			stats.Engine.EncoderLoaded, info.Fingerprint)
	}
	if stats.Engine.ANNQueries == 0 {
		t.Error("stats ann_queries never moved")
	}

	// GET now describes the registered encoder
	resp, err = http.Get(srv.URL + "/v2/admin/encoder")
	if err != nil {
		t.Fatal(err)
	}
	var got api.EncoderInfo
	decodeBody(t, resp, &got)
	if got != info {
		t.Fatalf("GET encoder = %+v, want %+v", got, info)
	}
}

func TestAdminEncoderSwapRejectsBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, engine.Config{Shards: 1})
	for _, tc := range []struct {
		name   string
		body   api.EncoderSwapRequest
		status int
	}{
		{"neither field", api.EncoderSwapRequest{}, http.StatusBadRequest},
		{"both fields", api.EncoderSwapRequest{Path: "x", EncoderB64: "eA=="}, http.StatusBadRequest},
		{"missing file", api.EncoderSwapRequest{Path: "/nonexistent/encoder"}, http.StatusNotFound},
		{"bad base64", api.EncoderSwapRequest{EncoderB64: "!!!"}, http.StatusBadRequest},
		{"corrupt bytes", api.EncoderSwapRequest{EncoderB64: base64.StdEncoding.EncodeToString([]byte("junk"))}, http.StatusBadRequest},
	} {
		resp := postJSON(t, srv.URL+"/v2/admin/encoder", tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

func TestANNSpecValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	srv, eng := newTestServer(t, engine.Config{Shards: 1})
	set := make([]traj.Trajectory, 20)
	for i := range set {
		set[i] = randWalk(rng, 8)
	}
	eng.Add(set)
	if _, err := eng.SetEncoder(t2vec.NewRandomModel(4, 2)); err != nil {
		t.Fatal(err)
	}
	q := api.FromTraj(randWalk(rng, 5))
	for _, tc := range []struct {
		name string
		ann  *api.ANNSpec
	}{
		{"zero candidates", &api.ANNSpec{Candidates: 0}},
		{"negative candidates", &api.ANNSpec{Candidates: -3}},
		{"negative probes", &api.ANNSpec{Candidates: 5, Probes: -1}},
	} {
		res := queryV2(t, srv.URL, api.QuerySpec{Query: q, K: 3, Measure: "dtw", ANN: tc.ann})
		if res.Error == nil || res.Error.Code != api.CodeInvalidArgument {
			t.Errorf("%s: error %+v, want invalid_argument", tc.name, res.Error)
		}
	}
}
