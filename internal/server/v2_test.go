package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"simsub/api"
	"simsub/internal/engine"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// gatedMeasure is DTW behind a test-controlled gate: while armed, every
// Dist call after the first blocks until the gate opens. Paired with the
// one-Dist-per-candidate "simtra" algorithm it makes streaming order
// deterministic: exactly one candidate can finish, so the stream's first
// match must be delivered while the other ~999 candidates are still
// pending — no timing assumptions.
type gatedMeasure struct{ inner sim.Measure }

var gate struct {
	mu      sync.Mutex
	armed   bool
	passed  int
	release chan struct{}
}

func gateArm() {
	gate.mu.Lock()
	defer gate.mu.Unlock()
	gate.armed, gate.passed, gate.release = true, 0, make(chan struct{})
}

func gateOpen() {
	gate.mu.Lock()
	defer gate.mu.Unlock()
	if gate.armed {
		close(gate.release)
		gate.armed = false
	}
}

func (g gatedMeasure) Name() string { return "gatedtw" }

func (g gatedMeasure) Dist(t, q traj.Trajectory) float64 {
	gate.mu.Lock()
	var wait chan struct{}
	if gate.armed {
		gate.passed++
		if gate.passed > 1 {
			wait = gate.release
		}
	}
	gate.mu.Unlock()
	if wait != nil {
		<-wait
	}
	return g.inner.Dist(t, q)
}

func (g gatedMeasure) NewIncremental(t, q traj.Trajectory) sim.Incremental {
	return g.inner.NewIncremental(t, q)
}

func init() { sim.Register("gatedtw", func() sim.Measure { return gatedMeasure{inner: sim.DTW{}} }) }

// TestV2BatchMatchesV1Sequential is the acceptance scenario: a 16-spec
// /v2/query batch must return per-spec results byte-identical to 16
// sequential /v1/topk calls on the same store.
func TestV2BatchMatchesV1Sequential(t *testing.T) {
	const nTrajs = 1000
	rng := rand.New(rand.NewSource(85))
	ts, eng := newTestServer(t, engine.Config{Shards: 8, CacheSize: 64, Index: engine.ScanAll})
	data := make([]traj.Trajectory, nTrajs)
	for i := range data {
		data[i] = randWalk(rng, rng.Intn(16)+8)
	}
	eng.Add(data)

	specs := make([]api.QuerySpec, 16)
	for i := range specs {
		measure := "dtw"
		if i%2 == 1 {
			measure = "frechet"
		}
		specs[i] = api.QuerySpec{Query: toWire(randWalk(rng, 5)), K: 5, Measure: measure, Algorithm: "pss"}
	}

	// 16 sequential v1 calls
	v1Matches := make([][]api.Match, len(specs))
	for i, spec := range specs {
		resp := postJSON(t, ts.URL+"/v1/topk", topkRequest{
			Query: spec.Query, K: spec.K, Measure: spec.Measure, Algorithm: spec.Algorithm,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("v1 call %d: status %d", i, resp.StatusCode)
		}
		var tr topkResponse
		decodeBody(t, resp, &tr)
		v1Matches[i] = tr.Matches
	}

	// one v2 batch
	resp := postJSON(t, ts.URL+"/v2/query", api.Query{Specs: specs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 batch: status %d", resp.StatusCode)
	}
	var qr api.QueryResponse
	decodeBody(t, resp, &qr)
	if len(qr.Results) != len(specs) {
		t.Fatalf("v2 batch answered %d of %d specs", len(qr.Results), len(specs))
	}
	for i, res := range qr.Results {
		if res.Error != nil {
			t.Fatalf("spec %d failed: %v", i, res.Error)
		}
		got, _ := json.Marshal(res.Matches)
		want, _ := json.Marshal(v1Matches[i])
		if !bytes.Equal(got, want) {
			t.Fatalf("spec %d: batch ranking differs from sequential /v1/topk:\n got %s\nwant %s", i, got, want)
		}
		if res.Total != len(res.Matches) {
			t.Fatalf("spec %d: total %d for %d matches", i, res.Total, len(res.Matches))
		}
	}
}

// TestV2StreamFirstMatchBeforeSearchCompletes is the second acceptance
// scenario: on a 1000-trajectory store, /v2/query/stream must deliver its
// first NDJSON match while the search is still running. The gated measure
// lets exactly one candidate finish until the first line has been read and
// the engine's in-flight gauge inspected, so the assertion cannot race.
func TestV2StreamFirstMatchBeforeSearchCompletes(t *testing.T) {
	const nTrajs = 1000
	rng := rand.New(rand.NewSource(86))
	ts, eng := newTestServer(t, engine.Config{Shards: 4, Index: engine.ScanAll})
	data := make([]traj.Trajectory, nTrajs)
	for i := range data {
		data[i] = randWalk(rng, 8)
	}
	eng.Add(data)

	gateArm()
	defer gateOpen()
	body, _ := json.Marshal(api.StreamQuery{Spec: api.QuerySpec{
		Query: toWire(randWalk(rng, 4)), K: 5, Measure: "gatedtw", Algorithm: "simtra",
	}})
	resp, err := http.Post(ts.URL+"/v2/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	br := bufio.NewReader(resp.Body)
	first, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading first stream record: %v", err)
	}
	var ev api.StreamEvent
	if err := json.Unmarshal(first, &ev); err != nil || ev.Match == nil {
		t.Fatalf("first record %s is not a match (err=%v)", first, err)
	}
	// the first match has crossed the wire while 999 candidates are still
	// blocked inside the search: the full scan is provably incomplete
	if inflight := eng.Stats().InFlight; inflight < 1 {
		t.Fatalf("in-flight %d after first streamed match; search already finished", inflight)
	}

	gateOpen()
	matches, sawSummary := 1, false
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			break
		}
		var ev api.StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad stream record %s: %v", line, err)
		}
		switch {
		case ev.Match != nil:
			matches++
		case ev.Error != nil:
			t.Fatalf("stream failed: %v", ev.Error)
		case ev.Summary != nil:
			sawSummary = true
			if len(ev.Summary.Matches) != 5 || ev.Summary.Total != 5 {
				t.Fatalf("summary has %d matches, total %d, want 5", len(ev.Summary.Matches), ev.Summary.Total)
			}
			if ev.Summary.Emitted != matches {
				t.Fatalf("summary counts %d emissions, stream delivered %d", ev.Summary.Emitted, matches)
			}
		}
	}
	if !sawSummary {
		t.Fatal("stream ended without a summary record")
	}
}

// TestTypedErrorUniformity checks the satellite requirement: k ≤ 0,
// k > store size and unknown measure/algorithm names surface as the same
// typed invalid_argument shape from /v1, /v2 batch lanes and /v2 stream.
func TestTypedErrorUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	ts, eng := newTestServer(t, engine.Config{})
	eng.Add([]traj.Trajectory{randWalk(rng, 8), randWalk(rng, 8)})
	q := toWire(randWalk(rng, 4))

	cases := map[string]api.QuerySpec{
		"k zero":            {Query: q, K: 0},
		"k negative":        {Query: q, K: -3},
		"k over store":      {Query: q, K: 3},
		"unknown measure":   {Query: q, K: 1, Measure: "nope"},
		"unknown algorithm": {Query: q, K: 1, Algorithm: "nope"},
	}
	for name, spec := range cases {
		// v1: typed envelope with a 400 status
		resp := postJSON(t, ts.URL+"/v1/topk", topkRequest{
			Query: spec.Query, K: spec.K, Measure: spec.Measure, Algorithm: spec.Algorithm,
		})
		var er api.ErrorResponse
		code := resp.StatusCode
		decodeBody(t, resp, &er)
		if code != http.StatusBadRequest || er.Err.Code != api.CodeInvalidArgument {
			t.Errorf("%s via v1: status %d code %q", name, code, er.Err.Code)
		}

		// v2 batch: the same typed error inside the spec's result lane
		resp = postJSON(t, ts.URL+"/v2/query", api.Query{Specs: []api.QuerySpec{spec}})
		var qr api.QueryResponse
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s via v2 batch: status %d", name, resp.StatusCode)
			resp.Body.Close()
			continue
		}
		decodeBody(t, resp, &qr)
		if len(qr.Results) != 1 || qr.Results[0].Error == nil ||
			qr.Results[0].Error.Code != api.CodeInvalidArgument {
			t.Errorf("%s via v2 batch: %+v", name, qr.Results)
		}

		// v2 stream: the same typed envelope before any record is written
		resp = postJSON(t, ts.URL+"/v2/query/stream", api.StreamQuery{Spec: spec})
		var er2 api.ErrorResponse
		code = resp.StatusCode
		decodeBody(t, resp, &er2)
		if code != http.StatusBadRequest || er2.Err.Code != api.CodeInvalidArgument {
			t.Errorf("%s via v2 stream: status %d code %q", name, code, er2.Err.Code)
		}
	}

	// envelope-level batch errors
	resp := postJSON(t, ts.URL+"/v2/query", api.Query{})
	var er api.ErrorResponse
	code := resp.StatusCode
	decodeBody(t, resp, &er)
	if code != http.StatusBadRequest || er.Err.Code != api.CodeInvalidArgument {
		t.Errorf("empty batch: status %d code %q", code, er.Err.Code)
	}
}

// TestV2GetTrajectory round-trips a stored trajectory and checks unknown
// IDs surface as typed not_found errors.
func TestV2GetTrajectory(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	ts, eng := newTestServer(t, engine.Config{Shards: 3})
	stored := randWalk(rng, 9)
	ids, loadErr := eng.Add([]traj.Trajectory{stored})
	if loadErr != nil {
		t.Fatal(loadErr)
	}

	resp, err := http.Get(ts.URL + "/v2/trajectories/0")
	if err != nil {
		t.Fatal(err)
	}
	var rec api.TrajectoryRecord
	decodeBody(t, resp, &rec)
	if rec.ID != ids[0] || len(rec.Trajectory.Points) != stored.Len() {
		t.Fatalf("record %+v", rec)
	}
	back, aerr := rec.Trajectory.ToTraj()
	if aerr != nil || !back.Equal(stored) {
		t.Fatalf("round trip failed: %v", aerr)
	}

	for path, wantCode := range map[string]api.Code{
		"/v2/trajectories/7":  api.CodeNotFound,
		"/v2/trajectories/x":  api.CodeInvalidArgument,
		"/v2/trajectories/-1": api.CodeNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var er api.ErrorResponse
		decodeBody(t, resp, &er)
		if er.Err.Code != wantCode {
			t.Errorf("%s: code %q, want %q", path, er.Err.Code, wantCode)
		}
	}
}
