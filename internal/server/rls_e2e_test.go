package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"math/rand"
	"net/http"
	"sort"
	"testing"

	"simsub/api"
	"simsub/internal/core"
	"simsub/internal/engine"
	"simsub/internal/nn"
	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// Serving-path tests of the learned searches: /v2/query with
// algorithm "rls" must be byte-identical to direct core.RLS invocation,
// hot swaps through the admin endpoint must invalidate cached rankings,
// and unknown or unservable algorithm/measure names must fail uniformly as
// typed invalid_argument on every route.

// servePolicy is the server tests' constant-action policy constructor.
func servePolicy(action, k int, useSuffix, simplify bool) *rl.Policy {
	dim := rl.StateDim(useSuffix)
	net := nn.NewMLP([]int{dim, 2, 2 + k}, []nn.Activation{nn.ReLU, nn.Sigmoid}, rand.New(rand.NewSource(1)))
	for _, l := range net.Layers {
		for i := range l.W.W {
			l.W.W[i] = 0
		}
		for i := range l.B.W {
			l.B.W[i] = -5
		}
	}
	net.Layers[len(net.Layers)-1].B.W[action] = 5
	return &rl.Policy{Net: net, K: k, UseSuffix: useSuffix, SimplifyState: simplify}
}

func policyB64(t *testing.T, p *rl.Policy) string {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}

// directRLSMatches ranks direct core.RLS answers over the loaded set by
// the engine's global order and converts them to wire form.
func directRLSMatches(ts []traj.Trajectory, p *rl.Policy, q traj.Trajectory, k int) []api.Match {
	alg := core.RLS{M: sim.DTW{}, Policy: p}
	type row struct {
		id int
		r  core.Result
	}
	rows := make([]row, len(ts))
	for i, dt := range ts {
		rows[i] = row{id: i, r: alg.Search(dt, q)}
	}
	sort.Slice(rows, func(i, j int) bool {
		return core.RankBefore(rows[i].r.Dist, rows[i].id, rows[i].r.Interval,
			rows[j].r.Dist, rows[j].id, rows[j].r.Interval)
	})
	if k > len(rows) {
		k = len(rows)
	}
	out := make([]api.Match, k)
	for i, r := range rows[:k] {
		out[i] = api.Match{
			TrajID: r.id, Start: r.r.Interval.I, End: r.r.Interval.J,
			Dist: r.r.Dist, Sim: sim.Sim(r.r.Dist), Explored: r.r.Explored,
		}
	}
	return out
}

func queryV2(t *testing.T, url string, spec api.QuerySpec) api.QueryResult {
	t.Helper()
	resp := postJSON(t, url+"/v2/query", api.Query{Specs: []api.QuerySpec{spec}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v2/query status %d", resp.StatusCode)
	}
	var out api.QueryResponse
	decodeBody(t, resp, &out)
	if len(out.Results) != 1 {
		t.Fatalf("%d results", len(out.Results))
	}
	return out.Results[0]
}

func TestV2QueryRLSMatchesDirectCore(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	set := make([]traj.Trajectory, 1000)
	for i := range set {
		set[i] = randWalk(rng, rng.Intn(16)+6)
	}
	q := randWalk(rng, 6)

	srv, eng := newTestServer(t, engine.Config{Shards: 4, Index: engine.ScanAll})
	eng.Add(set)

	for _, tc := range []struct {
		algo   string
		policy *rl.Policy
	}{
		{"rls", servePolicy(0, 0, true, false)},
		{"rls-skip", servePolicy(2, 1, false, true)},
	} {
		if _, err := eng.SetPolicy(tc.policy); err != nil {
			t.Fatal(err)
		}
		res := queryV2(t, srv.URL, api.QuerySpec{
			Query: api.FromTraj(q), K: 10, Measure: "dtw", Algorithm: tc.algo,
		})
		if res.Error != nil {
			t.Fatalf("%s: %v", tc.algo, res.Error)
		}
		want := directRLSMatches(set, tc.policy, q, 10)
		if len(res.Matches) != len(want) {
			t.Fatalf("%s: %d matches, want %d", tc.algo, len(res.Matches), len(want))
		}
		for i := range want {
			if res.Matches[i] != want[i] {
				t.Fatalf("%s rank %d: got %+v, want %+v (served ranking differs from direct core.RLS)",
					tc.algo, i, res.Matches[i], want[i])
			}
		}
	}
}

func TestAdminPolicySwapInvalidatesServedCache(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	set := make([]traj.Trajectory, 200)
	for i := range set {
		set[i] = randWalk(rng, rng.Intn(16)+6)
	}
	q := randWalk(rng, 6)
	srv, eng := newTestServer(t, engine.Config{Shards: 3, Index: engine.ScanAll, CacheSize: 64})
	eng.Add(set)

	// no policy yet: GET is a typed not_found, queries are invalid_argument
	resp, err := http.Get(srv.URL + "/v2/admin/policy")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET policy with none loaded: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	never := servePolicy(0, 0, true, false)
	always := servePolicy(1, 0, true, false)
	resp = postJSON(t, srv.URL+"/v2/admin/policy", api.PolicySwapRequest{PolicyB64: policyB64(t, never)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap status %d", resp.StatusCode)
	}
	var info api.PolicyInfo
	decodeBody(t, resp, &info)
	if info.Name != "RLS" || info.Fingerprint == "" {
		t.Fatalf("swap info %+v", info)
	}

	spec := api.QuerySpec{Query: api.FromTraj(q), K: 8, Measure: "dtw", Algorithm: "rls"}
	if res := queryV2(t, srv.URL, spec); res.Error != nil || res.Cached {
		t.Fatalf("first query: %+v", res)
	}
	if res := queryV2(t, srv.URL, spec); res.Error != nil || !res.Cached {
		t.Fatalf("repeat query not served from cache: %+v", res)
	}

	// hot-swap to a different policy: the fingerprint changes, so the
	// cached old-policy ranking must be unreachable
	resp = postJSON(t, srv.URL+"/v2/admin/policy", api.PolicySwapRequest{PolicyB64: policyB64(t, always)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second swap status %d", resp.StatusCode)
	}
	var info2 api.PolicyInfo
	decodeBody(t, resp, &info2)
	if info2.Fingerprint == info.Fingerprint {
		t.Fatal("distinct policies share a fingerprint")
	}
	res := queryV2(t, srv.URL, spec)
	if res.Error != nil {
		t.Fatal(res.Error)
	}
	if res.Cached {
		t.Fatal("post-swap query served a stale-policy ranking from the cache")
	}
	want := directRLSMatches(set, always, q, 8)
	for i := range want {
		if res.Matches[i] != want[i] {
			t.Fatalf("post-swap rank %d: got %+v, want %+v", i, res.Matches[i], want[i])
		}
	}

	// stats reflect the registration and the served learned queries
	var stats api.StatsResponse
	sresp, err := http.Get(srv.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, sresp, &stats)
	if !stats.Engine.PolicyLoaded || stats.Engine.PolicyFingerprint != info2.Fingerprint {
		t.Fatalf("stats policy fields: %+v", stats.Engine)
	}
	if stats.Engine.RLSQueries < 3 {
		t.Fatalf("RLSQueries = %d, want >= 3", stats.Engine.RLSQueries)
	}
}

func TestAdminPolicySwapRejectsBadRequests(t *testing.T) {
	srv, _ := newTestServer(t, engine.Config{Shards: 1})
	cases := []struct {
		name   string
		body   api.PolicySwapRequest
		status int
	}{
		{"neither field", api.PolicySwapRequest{}, http.StatusBadRequest},
		{"both fields", api.PolicySwapRequest{Path: "x", PolicyB64: "eA=="}, http.StatusBadRequest},
		{"missing file", api.PolicySwapRequest{Path: "/nonexistent/policy"}, http.StatusNotFound},
		{"bad base64", api.PolicySwapRequest{PolicyB64: "!!!"}, http.StatusBadRequest},
		{"corrupt policy", api.PolicySwapRequest{PolicyB64: base64.StdEncoding.EncodeToString([]byte("nope"))}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, srv.URL+"/v2/admin/policy", c.body)
		var er api.ErrorResponse
		status := resp.StatusCode
		decodeBody(t, resp, &er)
		if status != c.status || er.Err.Code == "" {
			t.Errorf("%s: status %d (want %d), error %+v", c.name, status, c.status, er.Err)
		}
	}
}

// TestUnknownNamesUniformAcrossRoutes pins the satellite contract: unknown
// measure/algorithm strings — and the learned algorithms with no policy
// loaded — fail as typed invalid_argument envelopes with HTTP 400 on every
// query route, v1 and v2 alike.
func TestUnknownNamesUniformAcrossRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	srv, eng := newTestServer(t, engine.Config{Shards: 2})
	eng.Add([]traj.Trajectory{randWalk(rng, 8), randWalk(rng, 8)})
	wire := toWire(randWalk(rng, 4))

	type probe struct{ measure, algorithm string }
	probes := []probe{
		{"dtw", "nosuch-algorithm"},
		{"nosuch-measure", "pss"},
		{"dtw", "rls"},      // no policy loaded
		{"dtw", "rls-skip"}, // no policy loaded
	}
	for _, p := range probes {
		// /v1/topk: top-level typed envelope
		resp := postJSON(t, srv.URL+"/v1/topk", map[string]any{
			"query": wire, "k": 1, "measure": p.measure, "algorithm": p.algorithm,
		})
		var er api.ErrorResponse
		status := resp.StatusCode
		decodeBody(t, resp, &er)
		if status != http.StatusBadRequest || er.Err.Code != api.CodeInvalidArgument {
			t.Errorf("/v1/topk %v: status %d code %q", p, status, er.Err.Code)
		}

		// /v1/search: stateless pairwise route
		resp = postJSON(t, srv.URL+"/v1/search", map[string]any{
			"data": wire, "query": wire, "measure": p.measure, "algorithm": p.algorithm,
		})
		er = api.ErrorResponse{}
		status = resp.StatusCode
		decodeBody(t, resp, &er)
		if status != http.StatusBadRequest || er.Err.Code != api.CodeInvalidArgument {
			t.Errorf("/v1/search %v: status %d code %q", p, status, er.Err.Code)
		}

		// /v2/query: spec-level typed error inside the batch result
		res := queryV2(t, srv.URL, api.QuerySpec{Query: wire, K: 1, Measure: p.measure, Algorithm: p.algorithm})
		if res.Error == nil || res.Error.Code != api.CodeInvalidArgument {
			t.Errorf("/v2/query %v: error %+v", p, res.Error)
		}

		// /v2/query/stream: pre-stream failures use the ordinary envelope
		resp = postJSON(t, srv.URL+"/v2/query/stream", api.StreamQuery{
			Spec: api.QuerySpec{Query: wire, K: 1, Measure: p.measure, Algorithm: p.algorithm},
		})
		er = api.ErrorResponse{}
		status = resp.StatusCode
		decodeBody(t, resp, &er)
		if status != http.StatusBadRequest || er.Err.Code != api.CodeInvalidArgument {
			t.Errorf("/v2/query/stream %v: status %d code %q", p, status, er.Err.Code)
		}
	}
}

// TestRLSOverV1AndStreamRoutes proves the learned search serves through
// the whole surface once a policy is registered: /v1/topk, /v1/search and
// /v2/query/stream all accept algorithm "rls".
func TestRLSOverV1AndStreamRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	set := make([]traj.Trajectory, 50)
	for i := range set {
		set[i] = randWalk(rng, rng.Intn(12)+6)
	}
	q := randWalk(rng, 5)
	srv, eng := newTestServer(t, engine.Config{Shards: 2, Index: engine.ScanAll})
	eng.Add(set)
	p := servePolicy(0, 0, true, false)
	if _, err := eng.SetPolicy(p); err != nil {
		t.Fatal(err)
	}
	want := directRLSMatches(set, p, q, 5)

	resp := postJSON(t, srv.URL+"/v1/topk", map[string]any{
		"query": toWire(q), "k": 5, "measure": "dtw", "algorithm": "rls",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/topk status %d", resp.StatusCode)
	}
	var v1 struct {
		Matches []api.Match `json:"matches"`
	}
	decodeBody(t, resp, &v1)
	if len(v1.Matches) != len(want) {
		t.Fatalf("/v1/topk %d matches, want %d", len(v1.Matches), len(want))
	}
	for i := range want {
		if v1.Matches[i] != want[i] {
			t.Fatalf("/v1/topk rank %d: got %+v, want %+v", i, v1.Matches[i], want[i])
		}
	}

	resp = postJSON(t, srv.URL+"/v1/search", map[string]any{
		"data": toWire(set[0]), "query": toWire(q), "measure": "dtw", "algorithm": "rls",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/search status %d", resp.StatusCode)
	}
	var sr struct {
		Start int     `json:"start"`
		End   int     `json:"end"`
		Dist  float64 `json:"dist"`
	}
	decodeBody(t, resp, &sr)
	direct := core.RLS{M: sim.DTW{}, Policy: p}.Search(set[0], q)
	if sr.Start != direct.Interval.I || sr.End != direct.Interval.J || sr.Dist != direct.Dist {
		t.Fatalf("/v1/search = %+v, direct = %+v", sr, direct)
	}

	// stream: the trailing summary is the authoritative ranking
	body, err := json.Marshal(api.StreamQuery{Spec: api.QuerySpec{
		Query: api.FromTraj(q), K: 5, Measure: "dtw", Algorithm: "rls",
	}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost,
		srv.URL+"/v2/query/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var summary *api.StreamSummary
	dec := json.NewDecoder(resp.Body)
	for {
		var ev api.StreamEvent
		if err := dec.Decode(&ev); err != nil {
			break
		}
		if ev.Error != nil {
			t.Fatalf("stream error: %v", ev.Error)
		}
		if ev.Summary != nil {
			summary = ev.Summary
			break
		}
	}
	if summary == nil {
		t.Fatal("stream ended without a summary")
	}
	if len(summary.Matches) != len(want) {
		t.Fatalf("stream %d matches, want %d", len(summary.Matches), len(want))
	}
	for i := range want {
		if summary.Matches[i] != want[i] {
			t.Fatalf("stream rank %d: got %+v, want %+v", i, summary.Matches[i], want[i])
		}
	}
}
