package sim

import (
	"simsub/internal/geo"
	"simsub/internal/traj"
)

// Stream computes the distance between a growing point sequence and a fixed
// query, one pushed point at a time. It generalizes Incremental to point
// sequences that are not contiguous ranges of a stored trajectory — the
// state-simplification of RLS-Skip (§5.4) maintains the prefix similarity
// over only the non-skipped points, which is exactly a Stream.
//
// The first Push starts the sequence (cost Φini); each later Push costs
// Φinc for measures with native streaming support.
type Stream interface {
	// Push appends p to the sequence and returns the distance between the
	// sequence so far and the query.
	Push(p geo.Point) float64
	// Len returns the number of points pushed.
	Len() int
	// Reset empties the sequence so the stream can be reused.
	Reset()
}

// StreamMeasure is implemented by measures with native O(Φinc) streaming.
type StreamMeasure interface {
	Measure
	// NewStream returns a fresh stream against q.
	NewStream(q traj.Trajectory) Stream
}

// NewStream returns a streaming computer for m against q: the measure's
// native stream when it implements StreamMeasure, otherwise a buffering
// fallback that recomputes from scratch on every Push (cost Φ per Push).
func NewStream(m Measure, q traj.Trajectory) Stream {
	if sm, ok := m.(StreamMeasure); ok {
		return sm.NewStream(q)
	}
	return &bufferStream{m: m, q: q}
}

// bufferStream is the generic fallback: it accumulates points and calls
// Dist from scratch.
type bufferStream struct {
	m   Measure
	q   traj.Trajectory
	pts []geo.Point
}

func (s *bufferStream) Push(p geo.Point) float64 {
	s.pts = append(s.pts, p)
	return s.m.Dist(traj.Trajectory{Points: s.pts}, s.q)
}

func (s *bufferStream) Len() int { return len(s.pts) }

func (s *bufferStream) Reset() { s.pts = s.pts[:0] }

// dtwStream reuses the DTW row extension.
type dtwStream struct {
	q   traj.Trajectory
	row []float64
	n   int
}

// NewStream implements StreamMeasure.
func (DTW) NewStream(q traj.Trajectory) Stream {
	return &dtwStream{q: q, row: make([]float64, q.Len())}
}

func (s *dtwStream) Push(p geo.Point) float64 {
	m := s.q.Len()
	if s.n == 0 {
		acc := 0.0
		for j := 0; j < m; j++ {
			acc += geo.Dist(p, s.q.Pt(j))
			s.row[j] = acc
		}
	} else {
		dtwExtendRow(s.row, p, s.q)
	}
	s.n++
	return s.row[m-1]
}

func (s *dtwStream) Len() int { return s.n }

func (s *dtwStream) Reset() { s.n = 0 }

// frechetStream reuses the Fréchet row extension.
type frechetStream struct {
	q   traj.Trajectory
	row []float64
	n   int
}

// NewStream implements StreamMeasure.
func (Frechet) NewStream(q traj.Trajectory) Stream {
	return &frechetStream{q: q, row: make([]float64, q.Len())}
}

func (s *frechetStream) Push(p geo.Point) float64 {
	m := s.q.Len()
	if s.n == 0 {
		acc := 0.0
		for j := 0; j < m; j++ {
			d := geo.Dist(p, s.q.Pt(j))
			if d > acc {
				acc = d
			}
			s.row[j] = acc
		}
	} else {
		frechetExtendRow(s.row, p, s.q)
	}
	s.n++
	return s.row[m-1]
}

func (s *frechetStream) Len() int { return s.n }

func (s *frechetStream) Reset() { s.n = 0 }

// erpStream reuses the ERP row extension.
type erpStream struct {
	meas ERP
	q    traj.Trajectory
	row  []float64
	n    int
}

// NewStream implements StreamMeasure.
func (e ERP) NewStream(q traj.Trajectory) Stream {
	return &erpStream{meas: e, q: q}
}

func (s *erpStream) Push(p geo.Point) float64 {
	if s.n == 0 {
		if s.row == nil {
			s.row = make([]float64, s.q.Len()+1)
		}
		s.meas.baseRowInto(s.row, s.q)
	}
	s.meas.extendRow(s.row, p, s.q)
	s.n++
	return s.row[s.q.Len()]
}

func (s *erpStream) Len() int { return s.n }

func (s *erpStream) Reset() { s.n = 0 }

// edrStream reuses the EDR row extension.
type edrStream struct {
	meas EDR
	q    traj.Trajectory
	row  []float64
	n    int
}

// NewStream implements StreamMeasure.
func (e EDR) NewStream(q traj.Trajectory) Stream {
	return &edrStream{meas: e, q: q}
}

func (s *edrStream) Push(p geo.Point) float64 {
	m := s.q.Len()
	if s.n == 0 {
		s.row = make([]float64, m+1)
		for j := 0; j <= m; j++ {
			s.row[j] = float64(j)
		}
	}
	s.meas.extendRow(s.row, p, s.q)
	s.n++
	return s.row[m]
}

func (s *edrStream) Len() int { return s.n }

func (s *edrStream) Reset() { s.n = 0 }

// lcssStream reuses the LCSS row extension.
type lcssStream struct {
	meas LCSS
	q    traj.Trajectory
	row  []float64
	n    int
}

// NewStream implements StreamMeasure.
func (l LCSS) NewStream(q traj.Trajectory) Stream {
	return &lcssStream{meas: l, q: q}
}

func (s *lcssStream) Push(p geo.Point) float64 {
	m := s.q.Len()
	if s.n == 0 {
		s.row = make([]float64, m+1)
	}
	s.meas.extendRow(s.row, p, s.q)
	s.n++
	return s.meas.toDist(s.row[m], s.n, m)
}

func (s *lcssStream) Len() int { return s.n }

func (s *lcssStream) Reset() {
	s.n = 0
	for i := range s.row {
		s.row[i] = 0
	}
}
