package sim

import (
	"math"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

// This file generalizes the UCR-suite pruning machinery (previously private
// to core/competitors.go) into a measure-owned lower-bound cascade usable by
// every search process: given a candidate data trajectory T and a query Q, a
// SubtrajLB produces a provable lower bound on d(T[i,j], Q) over EVERY
// non-empty subtrajectory T[i,j]. A top-k scan whose running k-th-best
// distance is tau can therefore drop the whole candidate whenever the bound
// strictly exceeds tau: no subtrajectory of it — in particular none an
// algorithm could report — can enter the ranking, and ties at tau are kept
// because the comparison is strict.
//
// The cascade runs cheapest stage first and stops as soon as the running
// bound exceeds tau:
//
//	stage 1  O(1)  MBR-to-MBR gap between the precomputed trajectory MBRs
//	stage 2  O(m)  per-query-point distance to the candidate's MBR
//	               (the query-envelope LB_Keogh bound with the candidate
//	               collapsed to its MBR, valid for any subtrajectory)
//	stage 3  O(n)  LB_Kim-style endpoint refinement: the query's first and
//	               last points align with actual points of T, not its MBR
//
// Correctness arguments per measure are documented on each implementation;
// DESIGN.md carries the summary.

// SubtrajLowerBounder is an optional Measure capability: measures that can
// lower-bound all-subtrajectory distances implement it, and threshold-aware
// scans use it to skip candidates without running any DP.
type SubtrajLowerBounder interface {
	Measure
	// NewSubtrajLB precomputes per-query state (query MBR, per-point gap
	// costs, ...) reused across every candidate of a scan. The returned
	// SubtrajLB is single-goroutine.
	NewSubtrajLB(q traj.Trajectory) SubtrajLB
}

// SubtrajLB lower-bounds subtrajectory distances of candidates against one
// fixed query.
type SubtrajLB interface {
	// LowerBound returns a value no greater than d(T[i,j], Q) for every
	// non-empty subtrajectory T[i,j] of t; mbr must be MBR(t). The cascade
	// returns early once the running bound strictly exceeds tau, so the
	// result is only a "best effort maximal" bound — but always a valid
	// lower bound.
	LowerBound(t traj.Trajectory, mbr geo.Rect, tau float64) float64
}

// dtwLB lower-bounds DTW (and, by alignment-set inclusion, CDTW).
//
// Every DTW warping path pairs each query point q_j with at least one point
// of the subtrajectory, and distinct query points contribute distinct pairs,
// so DTW >= Σ_j d(q_j, P) for any point set P containing the subtrajectory:
// stage 1 uses P = MBR(t) collapsed against MBR(q) (m · rect gap), stage 2
// uses P = MBR(t) per point, and stage 3 replaces the first and last query
// points' terms with their exact minimum distance to the points of t (their
// alignment partners are real points of T, not MBR projections).
type dtwLB struct {
	q    traj.Trajectory
	qmbr geo.Rect
}

// NewSubtrajLB implements SubtrajLowerBounder.
func (DTW) NewSubtrajLB(q traj.Trajectory) SubtrajLB {
	return &dtwLB{q: q, qmbr: q.MBR()}
}

// NewSubtrajLB implements SubtrajLowerBounder. CDTW restricts DTW's
// alignment set, so its minimum can only be larger and every DTW lower
// bound is a CDTW lower bound.
func (CDTW) NewSubtrajLB(q traj.Trajectory) SubtrajLB {
	return DTW{}.NewSubtrajLB(q)
}

func (lb *dtwLB) LowerBound(t traj.Trajectory, mbr geo.Rect, tau float64) float64 {
	m := lb.q.Len()
	if m == 0 || t.Len() == 0 {
		return math.Inf(1)
	}
	// stage 1: O(1)
	if b := float64(m) * lb.qmbr.DistToRect(mbr); b > tau {
		return b
	}
	// stage 2: O(m), early exit once the partial sum (itself a valid
	// bound) clears tau
	sum := 0.0
	for j := 0; j < m; j++ {
		sum += mbr.DistToPoint(lb.q.Pt(j))
		if sum > tau {
			return sum
		}
	}
	// stage 3: O(n) endpoint refinement
	first, last := lb.q.Pt(0), lb.q.Pt(m-1)
	min0, minm := endpointMins(t, first, last)
	if m == 1 {
		return min0
	}
	refined := sum - mbr.DistToPoint(first) - mbr.DistToPoint(last) + min0 + minm
	if refined > sum {
		return refined
	}
	return sum
}

// endpointMins returns the minimum distances from the points of t to the
// query's first and last points — the LB_Kim-style stage shared by the DTW
// and Fréchet cascades.
func endpointMins(t traj.Trajectory, first, last geo.Point) (min0, minm float64) {
	min0, minm = math.Inf(1), math.Inf(1)
	for _, p := range t.Points {
		if d := geo.Dist(p, first); d < min0 {
			min0 = d
		}
		if d := geo.Dist(p, last); d < minm {
			minm = d
		}
	}
	return min0, minm
}

// frechetLB is the max-norm analogue of dtwLB: the discrete Fréchet
// distance is the maximum pair cost of the best coupling, and every
// coupling pairs each query point with a subtrajectory point, so
// Fréchet >= max_j d(q_j, MBR(t)), refined at the endpoints with exact
// minimum point distances.
type frechetLB struct {
	q    traj.Trajectory
	qmbr geo.Rect
}

// NewSubtrajLB implements SubtrajLowerBounder.
func (Frechet) NewSubtrajLB(q traj.Trajectory) SubtrajLB {
	return &frechetLB{q: q, qmbr: q.MBR()}
}

func (lb *frechetLB) LowerBound(t traj.Trajectory, mbr geo.Rect, tau float64) float64 {
	m := lb.q.Len()
	if m == 0 || t.Len() == 0 {
		return math.Inf(1)
	}
	// stage 1: O(1)
	if b := lb.qmbr.DistToRect(mbr); b > tau {
		return b
	}
	// stage 2: O(m)
	maxd := 0.0
	for j := 0; j < m; j++ {
		if d := mbr.DistToPoint(lb.q.Pt(j)); d > maxd {
			maxd = d
			if maxd > tau {
				return maxd
			}
		}
	}
	// stage 3: O(n) endpoint refinement
	min0, minm := endpointMins(t, lb.q.Pt(0), lb.q.Pt(m-1))
	if min0 > maxd {
		maxd = min0
	}
	if m > 1 && minm > maxd {
		maxd = minm
	}
	return maxd
}

// erpLB: every query point is consumed exactly once by an ERP edit script —
// matched against a subtrajectory point (cost >= d(q_j, MBR(t))) or deleted
// against the gap point (cost d(q_j, g)) — and data-side deletions only add
// non-negative cost, so ERP >= Σ_j min(d(q_j, MBR(t)), d(q_j, g)). The gap
// distances are per-query constants precomputed here.
type erpLB struct {
	q    traj.Trajectory
	gapD []float64
}

// NewSubtrajLB implements SubtrajLowerBounder.
func (e ERP) NewSubtrajLB(q traj.Trajectory) SubtrajLB {
	gapD := make([]float64, q.Len())
	for j := range gapD {
		gapD[j] = geo.Dist(q.Pt(j), e.Gap)
	}
	return &erpLB{q: q, gapD: gapD}
}

func (lb *erpLB) LowerBound(t traj.Trajectory, mbr geo.Rect, tau float64) float64 {
	m := lb.q.Len()
	if m == 0 || t.Len() == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for j := 0; j < m; j++ {
		d := mbr.DistToPoint(lb.q.Pt(j))
		if g := lb.gapD[j]; g < d {
			d = g
		}
		sum += d
		if sum > tau {
			return sum
		}
	}
	return sum
}

// edrLB: a query point can be substituted at cost 0 only when it matches a
// subtrajectory point within Eps per coordinate; a point whose Chebyshev
// distance to MBR(t) exceeds Eps can match nothing in t, and every query
// point is consumed exactly once, so each such point contributes at least 1
// edit. EDR >= count of unmatchable query points.
type edrLB struct {
	q   traj.Trajectory
	eps float64
}

// NewSubtrajLB implements SubtrajLowerBounder.
func (e EDR) NewSubtrajLB(q traj.Trajectory) SubtrajLB {
	return &edrLB{q: q, eps: e.Eps}
}

func (lb *edrLB) LowerBound(t traj.Trajectory, mbr geo.Rect, tau float64) float64 {
	m := lb.q.Len()
	if m == 0 || t.Len() == 0 {
		return math.Inf(1)
	}
	count := 0.0
	for j := 0; j < m; j++ {
		if mbr.ChebyshevDistToPoint(lb.q.Pt(j)) > lb.eps {
			count++
			if count > tau {
				return count
			}
		}
	}
	return count
}

// lcssLB: the LCSS dissimilarity 1 - lcss/min(|sub|, m) cannot be bounded
// away from 0 whenever any query point is matchable (a one-point
// subtrajectory matching it already scores 0), but when NO query point lies
// within Eps (Chebyshev) of MBR(t) the common subsequence is empty for
// every subtrajectory and the dissimilarity is exactly 1.
type lcssLB struct {
	q   traj.Trajectory
	eps float64
}

// NewSubtrajLB implements SubtrajLowerBounder.
func (l LCSS) NewSubtrajLB(q traj.Trajectory) SubtrajLB {
	return &lcssLB{q: q, eps: l.Eps}
}

func (lb *lcssLB) LowerBound(t traj.Trajectory, mbr geo.Rect, tau float64) float64 {
	m := lb.q.Len()
	if m == 0 || t.Len() == 0 {
		return math.Inf(1)
	}
	for j := 0; j < m; j++ {
		if mbr.ChebyshevDistToPoint(lb.q.Pt(j)) <= lb.eps {
			return 0
		}
	}
	return 1
}
