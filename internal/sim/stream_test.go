package sim

import (
	"math/rand"
	"testing"

	"simsub/internal/traj"
)

func TestStreamMatchesDist(t *testing.T) {
	// For every measure, pushing the points of a subsequence one at a time
	// must reproduce Dist of the buffered prefix — including after Reset.
	rng := rand.New(rand.NewSource(30))
	for _, m := range allMeasures() {
		t.Run(m.Name(), func(t *testing.T) {
			for trial := 0; trial < 5; trial++ {
				q := randTraj(rng, rng.Intn(6)+1)
				// a non-contiguous point sequence, as RLS-Skip produces
				src := randTraj(rng, 14)
				var picked []int
				for i := 0; i < src.Len(); i++ {
					if rng.Float64() < 0.6 {
						picked = append(picked, i)
					}
				}
				if len(picked) == 0 {
					picked = []int{0}
				}
				s := NewStream(m, q)
				for round := 0; round < 2; round++ {
					var prefix traj.Trajectory
					for _, idx := range picked {
						p := src.Pt(idx)
						got := s.Push(p)
						prefix.Points = append(prefix.Points, p)
						want := m.Dist(prefix, q)
						if !closeEnough(got, want) {
							t.Fatalf("round %d: stream dist after %d pushes = %v, want %v",
								round, len(prefix.Points), got, want)
						}
						if s.Len() != len(prefix.Points) {
							t.Fatalf("Len = %d, want %d", s.Len(), len(prefix.Points))
						}
					}
					s.Reset()
					if s.Len() != 0 {
						t.Fatal("Reset did not clear Len")
					}
				}
			}
		})
	}
}

func TestNativeStreamsAvailable(t *testing.T) {
	// the measures on the hot path must provide native streaming, not the
	// quadratic fallback
	for _, m := range []Measure{DTW{}, Frechet{}, ERP{}, EDR{Eps: 0.5}, LCSS{Eps: 0.5}} {
		if _, ok := m.(StreamMeasure); !ok {
			t.Errorf("%s should implement StreamMeasure", m.Name())
		}
	}
}

func TestBufferStreamFallback(t *testing.T) {
	// segment measures use the fallback; verify it still agrees with Dist
	q := traj.FromXY(0, 0, 1, 0, 2, 0)
	s := NewStream(EDS{}, q)
	pts := traj.FromXY(0, 1, 1, 1, 2, 1)
	var prefix traj.Trajectory
	for i := 0; i < pts.Len(); i++ {
		got := s.Push(pts.Pt(i))
		prefix.Points = append(prefix.Points, pts.Pt(i))
		want := (EDS{}).Dist(prefix, q)
		if !closeEnough(got, want) {
			t.Fatalf("fallback stream = %v, want %v", got, want)
		}
	}
}
