package sim

import (
	"math"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

func init() { Register("dtw", func() Measure { return DTW{} }) }

// DTW is the classical Dynamic Time Warping dissimilarity (Yi et al., ICDE
// 1998), Equation 1 of the paper:
//
//	D(i,j) = d(p_i,q_j) + min(D(i-1,j-1), D(i-1,j), D(i,j-1))
//
// with boundary rows/columns accumulating distances against the first point.
// Complexities: Φ = O(n·m), Φinc = Φini = O(m).
type DTW struct{}

// Name implements Measure.
func (DTW) Name() string { return "dtw" }

// Dist computes the DTW distance between t and q from scratch in O(n·m)
// time and O(m) space. Both trajectories must be non-empty; the distance of
// anything against an empty trajectory is +Inf.
func (DTW) Dist(t, q traj.Trajectory) float64 {
	n, m := t.Len(), q.Len()
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	row := getRow(m)
	defer putRow(row)
	// first data point: D(0,j) = sum_{k<=j} d(p0,qk)
	acc := 0.0
	for j := 0; j < m; j++ {
		acc += geo.Dist(t.Pt(0), q.Pt(j))
		row[j] = acc
	}
	for i := 1; i < n; i++ {
		dtwExtendRow(row, t.Pt(i), q)
	}
	return row[m-1]
}

// dtwExtendRow advances the DP by one data point in place: on entry row
// holds D(i-1, ·); on exit it holds D(i, ·).
func dtwExtendRow(row []float64, p geo.Point, q traj.Trajectory) {
	m := len(row)
	prevDiag := row[0] // D(i-1, 0)
	row[0] = geo.Dist(p, q.Pt(0)) + prevDiag
	for j := 1; j < m; j++ {
		prevUp := row[j] // D(i-1, j)
		best := prevDiag // D(i-1, j-1)
		if prevUp < best {
			best = prevUp
		}
		if row[j-1] < best { // D(i, j-1)
			best = row[j-1]
		}
		row[j] = geo.Dist(p, q.Pt(j)) + best
		prevDiag = prevUp
	}
}

// dtwExtendRowMin is dtwExtendRow additionally returning the minimum cell
// of the new row, the early-abandoning pivot: DP cells are a non-negative
// cost plus a minimum over earlier cells, so the row minimum never
// decreases as the data point index grows, and every future distance
// (a future row's last cell) is at least the current row minimum.
func dtwExtendRowMin(row []float64, p geo.Point, q traj.Trajectory) float64 {
	m := len(row)
	prevDiag := row[0]
	row[0] = geo.Dist(p, q.Pt(0)) + prevDiag
	rowMin := row[0]
	for j := 1; j < m; j++ {
		prevUp := row[j]
		best := prevDiag
		if prevUp < best {
			best = prevUp
		}
		if row[j-1] < best {
			best = row[j-1]
		}
		row[j] = geo.Dist(p, q.Pt(j)) + best
		if row[j] < rowMin {
			rowMin = row[j]
		}
		prevDiag = prevUp
	}
	return rowMin
}

// dtwInc is the incremental DTW computer: it keeps the last DP row (over
// query indices) and extends it by one data point per Extend call. The row
// is pool-backed; see pool.go for the ownership rules.
type dtwInc struct {
	t, q traj.Trajectory
	row  []float64
	end  int
}

// NewIncremental implements Measure.
func (DTW) NewIncremental(t, q traj.Trajectory) Incremental {
	return &dtwInc{t: t, q: q, row: getRow(q.Len())}
}

func (c *dtwInc) Init(i int) float64 {
	m := c.q.Len()
	if m == 0 {
		panic("sim: DTW incremental with empty query")
	}
	c.end = i
	acc := 0.0
	for j := 0; j < m; j++ {
		acc += geo.Dist(c.t.Pt(i), c.q.Pt(j))
		c.row[j] = acc
	}
	return c.row[m-1]
}

func (c *dtwInc) Extend() float64 {
	c.end++
	dtwExtendRow(c.row, c.t.Pt(c.end), c.q)
	return c.row[len(c.row)-1]
}

func (c *dtwInc) End() int { return c.end }

// ExtendAbandoning implements ThresholdIncremental; see dtwExtendRowMin for
// the monotone-row-minimum argument.
func (c *dtwInc) ExtendAbandoning(tau float64) (float64, bool) {
	c.end++
	rowMin := dtwExtendRowMin(c.row, c.t.Pt(c.end), c.q)
	if rowMin > tau {
		return rowMin, true
	}
	return c.row[len(c.row)-1], false
}

// Release implements Releaser.
func (c *dtwInc) Release() {
	putRow(c.row)
	c.row = nil
}

func init() { Register("cdtw", func() Measure { return CDTW{R: 0.25} }) }

// CDTW is DTW constrained to a Sakoe-Chiba band: data point p_i may only be
// aligned with query points q_j whose index satisfies
// |j·n/m - i| <= R·n (equivalently the paper's j ∈ [i-R·|T|, i+R·|T|] after
// rescaling the two index ranges onto each other). R ∈ [0,1]; R = 1 recovers
// unconstrained DTW. Cells outside the band are +Inf. This is the distance
// UCR and Spring are evaluated with in Figures 8 and 13.
type CDTW struct {
	// R is the relative band width in [0, 1].
	R float64
}

// Name implements Measure.
func (c CDTW) Name() string { return "cdtw" }

// Dist computes band-constrained DTW from scratch. Unreachable alignments
// yield +Inf.
func (c CDTW) Dist(t, q traj.Trajectory) float64 {
	n, m := t.Len(), q.Len()
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	w := c.bandWidth(n, m)
	inf := math.Inf(1)
	prev := getRow(m)
	cur := getRow(m)
	defer putRow(prev)
	defer putRow(cur)
	for j := range prev {
		prev[j] = inf
	}
	for j := range cur {
		cur[j] = inf
	}
	// Each buffer is +Inf outside the band of the row it last held
	// ([cLo,cHi] for cur, [pLo,pHi] for prev; empty to start). A new row
	// only needs the stale cells of its buffer's old band that the new
	// band does not overwrite reset to +Inf — O(w) per data point instead
	// of the former full O(m) clear.
	pLo, pHi := 0, -1
	cLo, cHi := 0, -1
	for i := 0; i < n; i++ {
		lo, hi := bandRange(i, n, m, w)
		for j := cLo; j <= cHi && j < lo; j++ {
			cur[j] = inf
		}
		for j := cHi; j >= cLo && j > hi; j-- {
			cur[j] = inf
		}
		for j := lo; j <= hi; j++ {
			d := geo.Dist(t.Pt(i), q.Pt(j))
			switch {
			case i == 0 && j == 0:
				cur[j] = d
			case i == 0:
				cur[j] = d + cur[j-1]
			case j == 0:
				cur[j] = d + prev[j]
			default:
				best := prev[j-1]
				if prev[j] < best {
					best = prev[j]
				}
				if cur[j-1] < best {
					best = cur[j-1]
				}
				cur[j] = d + best
			}
		}
		prev, cur = cur, prev
		cLo, cHi, pLo, pHi = pLo, pHi, lo, hi
	}
	return prev[m-1]
}

// bandWidth returns the absolute half-width of the band in query-index
// units: R scaled by the larger sequence length, minimum 1 so the diagonal
// is always reachable.
func (c CDTW) bandWidth(n, m int) int {
	l := n
	if m > l {
		l = m
	}
	w := int(math.Ceil(c.R * float64(l)))
	if w < 1 {
		w = 1
	}
	return w
}

// bandRange returns the inclusive query-index range reachable from data
// index i under half-width w, after mapping i onto the query index scale.
func bandRange(i, n, m, w int) (lo, hi int) {
	center := 0
	if n > 1 {
		center = i * (m - 1) / (n - 1)
	}
	lo, hi = center-w, center+w
	if lo < 0 {
		lo = 0
	}
	if hi > m-1 {
		hi = m - 1
	}
	return lo, hi
}

// cdtwInc satisfies the Incremental interface for CDTW. The Sakoe-Chiba band
// geometry depends on the final subtrajectory length (the band is laid along
// the rescaled diagonal), so band-constrained DTW cannot be extended in O(m)
// the way unconstrained DTW can: each Extend recomputes from scratch at cost
// Φ. CDTW is only used by the UCR/Spring comparison (Figures 8 and 13),
// which scores fixed-length windows from scratch with early abandoning and
// never relies on this computer being cheap.
type cdtwInc struct {
	meas  CDTW
	t, q  traj.Trajectory
	start int
	end   int
}

// NewIncremental implements Measure. See cdtwInc for the cost caveat.
func (c CDTW) NewIncremental(t, q traj.Trajectory) Incremental {
	return &cdtwInc{meas: c, t: t, q: q}
}

func (c *cdtwInc) Init(i int) float64 {
	if c.q.Len() == 0 {
		panic("sim: CDTW incremental with empty query")
	}
	c.start, c.end = i, i
	return c.meas.Dist(c.t.Sub(i, i), c.q)
}

func (c *cdtwInc) Extend() float64 {
	c.end++
	return c.meas.Dist(c.t.Sub(c.start, c.end), c.q)
}

func (c *cdtwInc) End() int { return c.end }
