package sim

import (
	"math"
	"math/rand"
	"testing"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

// FuzzDTWIncremental cross-checks incremental DTW against the from-scratch
// DP on fuzz-generated trajectory pairs.
func FuzzDTWIncremental(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(3))
	f.Add(int64(99), uint8(17), uint8(1))
	f.Add(int64(-7), uint8(2), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%20 + 1
		m := int(mRaw)%8 + 1
		mk := func(k int) traj.Trajectory {
			pts := make([]geo.Point, k)
			for i := range pts {
				pts[i] = geo.Point{X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
			}
			return traj.New(pts...)
		}
		data, q := mk(n), mk(m)
		inc := (DTW{}).NewIncremental(data, q)
		got := inc.Init(0)
		for j := 0; j < n; j++ {
			if j > 0 {
				got = inc.Extend()
			}
			want := (DTW{}).Dist(data.Sub(0, j), q)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("n=%d m=%d j=%d: incremental %v, scratch %v", n, m, j, got, want)
			}
		}
	})
}

// FuzzSuffixDistsReversal checks the PSS suffix identity on fuzz inputs:
// for DTW, reversed-suffix distances equal forward suffix distances.
func FuzzSuffixDistsReversal(f *testing.F) {
	f.Add(int64(3), uint8(9), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%15 + 1
		m := int(mRaw)%6 + 1
		mk := func(k int) traj.Trajectory {
			pts := make([]geo.Point, k)
			for i := range pts {
				pts[i] = geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
			}
			return traj.New(pts...)
		}
		data, q := mk(n), mk(m)
		suf := SuffixDists(DTW{}, data, q)
		for i := 0; i < n; i++ {
			want := (DTW{}).Dist(data.Sub(i, n-1), q)
			if math.Abs(suf[i]-want) > 1e-9 {
				t.Fatalf("suffix %d: %v vs %v", i, suf[i], want)
			}
		}
	})
}
