package sim

import (
	"math"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

func init() { Register("frechet", func() Measure { return Frechet{} }) }

// Frechet is the discrete Fréchet distance (Alt & Godau 1995), Equation 2 of
// the paper:
//
//	F(i,j) = max(d(p_i,q_j), min(F(i-1,j-1), F(i-1,j), F(i,j-1)))
//
// with boundary rows/columns taking running maxima against the first point.
// Complexities: Φ = O(n·m), Φinc = Φini = O(m).
type Frechet struct{}

// Name implements Measure.
func (Frechet) Name() string { return "frechet" }

// Dist computes the discrete Fréchet distance from scratch in O(n·m) time
// and O(m) space.
func (Frechet) Dist(t, q traj.Trajectory) float64 {
	n, m := t.Len(), q.Len()
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	row := getRow(m)
	defer putRow(row)
	acc := 0.0
	for j := 0; j < m; j++ {
		d := geo.Dist(t.Pt(0), q.Pt(j))
		if d > acc {
			acc = d
		}
		row[j] = acc
	}
	for i := 1; i < n; i++ {
		frechetExtendRow(row, t.Pt(i), q)
	}
	return row[m-1]
}

// frechetExtendRow advances the DP by one data point in place.
func frechetExtendRow(row []float64, p geo.Point, q traj.Trajectory) {
	m := len(row)
	prevDiag := row[0]
	d0 := geo.Dist(p, q.Pt(0))
	if d0 > prevDiag {
		row[0] = d0
	} else {
		row[0] = prevDiag
	}
	for j := 1; j < m; j++ {
		prevUp := row[j]
		best := prevDiag
		if prevUp < best {
			best = prevUp
		}
		if row[j-1] < best {
			best = row[j-1]
		}
		d := geo.Dist(p, q.Pt(j))
		if d > best {
			row[j] = d
		} else {
			row[j] = best
		}
		prevDiag = prevUp
	}
}

// frechetExtendRowMin is frechetExtendRow additionally returning the new
// row's minimum cell: every cell is max(cost, min of earlier cells), so the
// row minimum never decreases and lower-bounds all future distances.
func frechetExtendRowMin(row []float64, p geo.Point, q traj.Trajectory) float64 {
	m := len(row)
	prevDiag := row[0]
	d0 := geo.Dist(p, q.Pt(0))
	if d0 > prevDiag {
		row[0] = d0
	} else {
		row[0] = prevDiag
	}
	rowMin := row[0]
	for j := 1; j < m; j++ {
		prevUp := row[j]
		best := prevDiag
		if prevUp < best {
			best = prevUp
		}
		if row[j-1] < best {
			best = row[j-1]
		}
		d := geo.Dist(p, q.Pt(j))
		if d > best {
			row[j] = d
		} else {
			row[j] = best
		}
		if row[j] < rowMin {
			rowMin = row[j]
		}
		prevDiag = prevUp
	}
	return rowMin
}

type frechetInc struct {
	t, q traj.Trajectory
	row  []float64
	end  int
}

// NewIncremental implements Measure.
func (Frechet) NewIncremental(t, q traj.Trajectory) Incremental {
	return &frechetInc{t: t, q: q, row: getRow(q.Len())}
}

func (c *frechetInc) Init(i int) float64 {
	m := c.q.Len()
	if m == 0 {
		panic("sim: Frechet incremental with empty query")
	}
	c.end = i
	acc := 0.0
	for j := 0; j < m; j++ {
		d := geo.Dist(c.t.Pt(i), c.q.Pt(j))
		if d > acc {
			acc = d
		}
		c.row[j] = acc
	}
	return c.row[m-1]
}

func (c *frechetInc) Extend() float64 {
	c.end++
	frechetExtendRow(c.row, c.t.Pt(c.end), c.q)
	return c.row[len(c.row)-1]
}

func (c *frechetInc) End() int { return c.end }

// ExtendAbandoning implements ThresholdIncremental; see frechetExtendRowMin
// for the monotone-row-minimum argument.
func (c *frechetInc) ExtendAbandoning(tau float64) (float64, bool) {
	c.end++
	rowMin := frechetExtendRowMin(c.row, c.t.Pt(c.end), c.q)
	if rowMin > tau {
		return rowMin, true
	}
	return c.row[len(c.row)-1], false
}

// Release implements Releaser.
func (c *frechetInc) Release() {
	putRow(c.row)
	c.row = nil
}
