package sim

import (
	"sync"
	"testing"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

// The DP row pool is shared by every measure and every goroutine; this
// test hammers it from concurrent scans of all pooled kernels and checks
// the distances stay identical to a quiet single-goroutine run. Run under
// -race (CI does) it also proves rows are never shared while in use.

func poolTraj(seed, n int) traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := float64(seed%7), float64(seed%5)
	for i := range pts {
		x += float64((seed*31+i*17)%13)/13 - 0.5
		y += float64((seed*37+i*19)%11)/11 - 0.5
		pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
	}
	return traj.Trajectory{Points: pts}
}

func TestRowPoolConcurrentScans(t *testing.T) {
	measures := []Measure{DTW{}, CDTW{R: 0.25}, Frechet{}, ERP{}, EDR{Eps: 0.4}, LCSS{Eps: 0.4}}
	data := make([]traj.Trajectory, 24)
	for i := range data {
		data[i] = poolTraj(i+1, 20)
	}
	q := poolTraj(99, 8)

	// quiet reference values, one (measure, trajectory) pair at a time
	type key struct{ m, t int }
	want := map[key][]float64{}
	for mi, m := range measures {
		for ti, tr := range data {
			var ds []float64
			AllSubDists(m, tr, q, func(_, _ int, d float64) { ds = append(ds, d) })
			ds = append(ds, m.Dist(tr, q))
			want[key{mi, ti}] = ds
		}
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for mi, m := range measures {
					for ti, tr := range data {
						k := key{mi, ti}
						i := 0
						AllSubDists(m, tr, q, func(_, _ int, d float64) {
							if d != want[k][i] {
								select {
								case errs <- m.Name() + ": concurrent AllSubDists diverged":
								default:
								}
							}
							i++
						})
						if d := m.Dist(tr, q); d != want[k][len(want[k])-1] {
							select {
							case errs <- m.Name() + ": concurrent Dist diverged":
							default:
							}
						}
						// abandoning path: threshold kernels share the pool too
						inc := m.NewIncremental(tr, q)
						if tinc, ok := inc.(ThresholdIncremental); ok {
							tinc.Init(0)
							for j := 1; j < tr.Len(); j++ {
								if _, abandoned := tinc.ExtendAbandoning(want[k][0]); abandoned {
									break
								}
							}
						}
						Release(inc)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestReleaseReuse ensures a computer survives Init-reuse after pooled
// rows have been dirtied by other users.
func TestReleaseReuse(t *testing.T) {
	q := poolTraj(3, 9)
	tr := poolTraj(5, 15)
	for _, m := range []Measure{DTW{}, Frechet{}, ERP{}, EDR{Eps: 0.4}, LCSS{Eps: 0.4}} {
		inc := m.NewIncremental(tr, q)
		first := inc.Init(2)
		for j := 3; j < 10; j++ {
			inc.Extend()
		}
		// dirty the pool with unrelated work, then re-Init the same start
		for i := 0; i < 4; i++ {
			_ = m.Dist(poolTraj(i+7, 12), q)
		}
		again := inc.Init(2)
		if first != again {
			t.Errorf("%s: Init(2) = %v after reuse, want %v", m.Name(), again, first)
		}
		Release(inc)
	}
}
