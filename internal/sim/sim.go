// Package sim implements trajectory similarity measurements behind an
// abstract interface, mirroring §3.2 of the paper.
//
// All measures are expressed as *dissimilarities* (smaller is more similar).
// The paper's similarity Θ is obtained with Sim (Θ = 1/(1+d)), a monotone
// inversion, so maximizing Θ and minimizing d are interchangeable.
//
// Each measure provides, beyond a from-scratch distance (cost Φ), an
// Incremental computer that evaluates d(T[i,i],Tq) from scratch (cost Φini)
// and then d(T[i,j],Tq) from d(T[i,j-1],Tq) (cost Φinc). Table 1 of the
// paper summarizes the costs:
//
//	measure   Φ        Φinc   Φini
//	t2vec     O(n+m)   O(1)   O(1)
//	DTW       O(n·m)   O(m)   O(m)
//	Fréchet   O(n·m)   O(m)   O(m)
//
// Suffix similarities Θ(T[i,n]^R, Tq^R) are computed by running an
// Incremental over the reversed trajectories; SuffixDists wraps that.
package sim

import (
	"fmt"
	"sort"

	"simsub/internal/traj"
)

// Measure is an abstract trajectory dissimilarity measurement. Smaller
// distances mean more similar trajectories. Implementations must be safe for
// concurrent use by multiple goroutines.
type Measure interface {
	// Name returns the canonical lower-case name, e.g. "dtw".
	Name() string
	// Dist computes the dissimilarity between t and q from scratch (cost Φ).
	Dist(t, q traj.Trajectory) float64
	// NewIncremental returns a computer for distances between subtrajectories
	// of t that share a start point, and q. The computer is single-goroutine.
	NewIncremental(t, q traj.Trajectory) Incremental
}

// Incremental computes d(T[i,j], Q) for a fixed start i and increasing end j.
// Usage: Init(i) returns d(T[i,i],Q); each Extend advances j by one and
// returns d(T[i,j],Q). Extending past the end of T is a programming error
// and panics.
type Incremental interface {
	// Init begins a fresh scan at start index i (0-based) and returns
	// d(T[i,i], Q). Cost Φini.
	Init(i int) float64
	// Extend advances the end index by one and returns the new distance.
	// Cost Φinc.
	Extend() float64
	// End returns the current end index j (0-based).
	End() int
}

// ThresholdIncremental is an optional extension of Incremental for measures
// whose DP admits provable early abandoning: kernels whose row minimum can
// never decrease as the subtrajectory grows (DTW, Fréchet, ERP, EDR) or
// that can bound all remaining extensions (LCSS). Algorithms opt in by type
// assertion; the plain Incremental contract is unchanged.
type ThresholdIncremental interface {
	Incremental
	// ExtendAbandoning advances the end index by one like Extend. When
	// abandoned is false, d is exactly d(T[i,j], Q) for the new end j. When
	// abandoned is true, the computer has proven that d(T[i,j'], Q) > tau
	// strictly for the new end and EVERY later end j' of this start, d is a
	// lower bound on those distances, and the computer must be re-Init-ed
	// before further use.
	ExtendAbandoning(tau float64) (d float64, abandoned bool)
}

// Sim converts a dissimilarity into the paper's similarity Θ = 1/(1+d).
// It maps [0,∞) monotonically onto (0,1], with identical trajectories at 1.
func Sim(d float64) float64 { return 1 / (1 + d) }

// DistFromSim inverts Sim.
func DistFromSim(s float64) float64 { return 1/s - 1 }

// SuffixDists returns, for every start index i of t, the distance
// d(T[i,n-1]^R, Q^R) between the reversed suffix and the reversed query,
// computed incrementally in O(n·Φinc) total as in PSS (Algorithm 2, lines
// 2-3). The result is indexed by i (0-based): out[i] = d(T[i,n-1]^R, Q^R).
//
// For reversal-invariant measures (DTW, Fréchet) this equals d(T[i,n-1], Q);
// for others (e.g. t2vec) it is positively correlated, as the paper found
// empirically.
func SuffixDists(m Measure, t, q traj.Trajectory) []float64 {
	out := make([]float64, t.Len())
	if t.Len() == 0 {
		return out
	}
	return SuffixDistsInto(out, m, t.Reverse(), q.Reverse())
}

// SuffixDistsInto is SuffixDists with the reversals and the output buffer
// supplied by the caller: tr and qr must be the already-reversed data and
// query trajectories (stores precompute tr at insert time, scans reverse q
// once per query), and dst is reused when its capacity suffices. This is
// the scan hot path's allocation-free form.
func SuffixDistsInto(dst []float64, m Measure, tr, qr traj.Trajectory) []float64 {
	n := tr.Len()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	inc := m.NewIncremental(tr, qr)
	defer Release(inc)
	// reversed(T)[0..k] corresponds to suffix T[n-1-k .. n-1].
	dst[n-1] = inc.Init(0)
	for k := 1; k < n; k++ {
		dst[n-1-k] = inc.Extend()
	}
	return dst
}

// PrefixDists returns d(T[0,j], Q) for every end index j, computed
// incrementally in O(Φini + n·Φinc) total.
func PrefixDists(m Measure, t, q traj.Trajectory) []float64 {
	n := t.Len()
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	inc := m.NewIncremental(t, q)
	defer Release(inc)
	out[0] = inc.Init(0)
	for j := 1; j < n; j++ {
		out[j] = inc.Extend()
	}
	return out
}

// AllSubDists enumerates the distances of all n(n+1)/2 subtrajectories of t
// to q using the incremental strategy of ExactS, in O(n·(Φini + n·Φinc)).
// The callback receives (i, j, dist) for every 0 <= i <= j < n. It is the
// building block for exact search and for the MR/RR effectiveness metrics.
func AllSubDists(m Measure, t, q traj.Trajectory, fn func(i, j int, d float64)) {
	n := t.Len()
	if n == 0 {
		return
	}
	// one computer re-Init-ed per start (Init begins a fresh scan), so the
	// enumeration performs no per-start allocations
	inc := m.NewIncremental(t, q)
	defer Release(inc)
	for i := 0; i < n; i++ {
		fn(i, i, inc.Init(i))
		for j := i + 1; j < n; j++ {
			fn(i, j, inc.Extend())
		}
	}
}

// registry of constructors for ByName. Parameterized measures register
// reasonable defaults.
var registry = map[string]func() Measure{}

// Register installs a measure constructor under its canonical name.
// It panics on duplicates; registration happens at init time.
func Register(name string, fn func() Measure) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sim: duplicate measure %q", name))
	}
	registry[name] = fn
}

// ByName constructs a measure by canonical name. Names returns valid names.
func ByName(name string) (Measure, error) {
	fn, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("sim: unknown measure %q (have %v)", name, Names())
	}
	return fn(), nil
}

// Names lists registered measure names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
