package sim

import "sync"

// The scan hot path creates one incremental computer per (candidate
// trajectory, query) pair, and before this pool existed each computer
// allocated a fresh DP row. Over a thousand-trajectory store that is a
// thousand garbage rows per query per algorithm run. Rows now come from a
// shared sync.Pool and return to it through Release, so a steady-state scan
// performs no row allocations at all.
//
// Ownership rules (see DESIGN.md "Buffer pooling"):
//
//   - A row obtained with getRow belongs to exactly one incremental
//     computer until Release is called; Release must not be called while
//     the computer is still in use, and never twice.
//   - Pooled rows carry stale garbage. Every Init must fully overwrite (or
//     explicitly zero) the cells it will read.
//   - Releasing is optional: an unreleased row is ordinary garbage, so
//     forgetting Release degrades to the old allocation behavior instead of
//     corrupting anything.

// rowPool recycles float64 DP rows across incremental computers; boxPool
// recycles the *[]float64 boxes themselves (storing slices in a pool
// directly would allocate a header per Put). The two stay balanced: getRow
// moves a box from rowPool to boxPool, putRow moves one back — rowPool
// boxes always carry a row, boxPool boxes are always empty, so releasing
// several rows back-to-back never clobbers one with another.
var (
	rowPool = sync.Pool{New: func() any { return new([]float64) }}
	boxPool sync.Pool
)

// getRow returns a length-n float64 slice with arbitrary contents.
func getRow(n int) []float64 {
	boxed := rowPool.Get().(*[]float64)
	row := *boxed
	*boxed = nil
	boxPool.Put(boxed)
	if cap(row) < n {
		row = make([]float64, n)
	}
	return row[:n]
}

// putRow returns a row obtained from getRow to the pool.
func putRow(row []float64) {
	if cap(row) == 0 {
		return
	}
	boxed, _ := boxPool.Get().(*[]float64)
	if boxed == nil {
		boxed = new([]float64)
	}
	*boxed = row[:0]
	rowPool.Put(boxed)
}

// Releaser is implemented by incremental computers whose scratch buffers
// come from the package buffer pool. Release returns the buffers; the
// computer must not be used afterwards.
type Releaser interface {
	Release()
}

// Release returns inc's pooled buffers when it has any. Algorithms call it
// once they are done with a computer; it is safe on any Incremental.
func Release(inc Incremental) {
	if r, ok := inc.(Releaser); ok {
		r.Release()
	}
}
