package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

// refDTW is an independent reference implementation of DTW using full-matrix
// recursion with memoization, used to validate the rolling-row DP.
func refDTW(t, q traj.Trajectory) float64 {
	n, m := t.Len(), q.Len()
	memo := make(map[[2]int]float64)
	var rec func(i, j int) float64
	rec = func(i, j int) float64 {
		if v, ok := memo[[2]int{i, j}]; ok {
			return v
		}
		d := geo.Dist(t.Pt(i), q.Pt(j))
		var v float64
		switch {
		case i == 0 && j == 0:
			v = d
		case i == 0:
			v = d + rec(0, j-1)
		case j == 0:
			v = d + rec(i-1, 0)
		default:
			v = d + math.Min(rec(i-1, j-1), math.Min(rec(i-1, j), rec(i, j-1)))
		}
		memo[[2]int{i, j}] = v
		return v
	}
	return rec(n-1, m-1)
}

// refFrechet is a reference discrete Fréchet implementation.
func refFrechet(t, q traj.Trajectory) float64 {
	n, m := t.Len(), q.Len()
	memo := make(map[[2]int]float64)
	var rec func(i, j int) float64
	rec = func(i, j int) float64 {
		if v, ok := memo[[2]int{i, j}]; ok {
			return v
		}
		d := geo.Dist(t.Pt(i), q.Pt(j))
		var v float64
		switch {
		case i == 0 && j == 0:
			v = d
		case i == 0:
			v = math.Max(d, rec(0, j-1))
		case j == 0:
			v = math.Max(d, rec(i-1, 0))
		default:
			v = math.Max(d, math.Min(rec(i-1, j-1), math.Min(rec(i-1, j), rec(i, j-1))))
		}
		memo[[2]int{i, j}] = v
		return v
	}
	return rec(n-1, m-1)
}

func randTraj(rng *rand.Rand, n int) traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
	}
	return traj.New(pts...)
}

func allMeasures() []Measure {
	return []Measure{DTW{}, Frechet{}, ERP{}, EDR{Eps: 0.5}, LCSS{Eps: 0.5}, EDS{}, EDwP{}, CDTW{R: 0.5}}
}

// closeEnough treats a pair of +Inf values (unreachable band-constrained
// alignments) as equal.
func closeEnough(a, b float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= 1e-9
}

func TestDTWKnownValues(t *testing.T) {
	// T = (0,0),(1,0); Q = (0,0): D = d(p1,q1)+d(p2,q1) = 0+1 = 1
	a := traj.FromXY(0, 0, 1, 0)
	b := traj.FromXY(0, 0)
	if got := (DTW{}).Dist(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("DTW = %v, want 1", got)
	}
	// identical trajectories
	c := traj.FromXY(0, 0, 1, 1, 2, 0)
	if got := (DTW{}).Dist(c, c); got != 0 {
		t.Errorf("DTW self distance = %v, want 0", got)
	}
	// simple alignment: T=(0,0),(2,0) Q=(0,0),(1,0),(2,0):
	// p1-q1 (0) + min path ... aligned: p1:q1=0, p2:q2=1, p2:q3=0 => 1
	d1 := traj.FromXY(0, 0, 2, 0)
	d2 := traj.FromXY(0, 0, 1, 0, 2, 0)
	if got := (DTW{}).Dist(d1, d2); math.Abs(got-1) > 1e-12 {
		t.Errorf("DTW = %v, want 1", got)
	}
}

func TestDTWAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a := randTraj(rng, rng.Intn(12)+1)
		b := randTraj(rng, rng.Intn(12)+1)
		got := (DTW{}).Dist(a, b)
		want := refDTW(a, b)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: DTW = %v, reference = %v", trial, got, want)
		}
	}
}

func TestFrechetAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		a := randTraj(rng, rng.Intn(12)+1)
		b := randTraj(rng, rng.Intn(12)+1)
		got := (Frechet{}).Dist(a, b)
		want := refFrechet(a, b)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Frechet = %v, reference = %v", trial, got, want)
		}
	}
}

func TestFrechetKnownValues(t *testing.T) {
	// parallel lines at distance 2
	a := traj.FromXY(0, 0, 1, 0, 2, 0)
	b := traj.FromXY(0, 2, 1, 2, 2, 2)
	if got := (Frechet{}).Dist(a, b); math.Abs(got-2) > 1e-12 {
		t.Errorf("Frechet = %v, want 2", got)
	}
	if got := (Frechet{}).Dist(a, a); got != 0 {
		t.Errorf("Frechet self = %v, want 0", got)
	}
}

func TestIdentityDistanceZero(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := randTraj(rng, 10)
	for _, m := range allMeasures() {
		if got := m.Dist(tr, tr); math.Abs(got) > 1e-9 {
			t.Errorf("%s: self distance = %v, want 0", m.Name(), got)
		}
	}
}

func TestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		a := randTraj(rng, rng.Intn(10)+2)
		b := randTraj(rng, rng.Intn(10)+2)
		for _, m := range []Measure{DTW{}, Frechet{}, ERP{}, EDR{Eps: 0.5}, EDS{}, EDwP{}} {
			d1, d2 := m.Dist(a, b), m.Dist(b, a)
			if math.Abs(d1-d2) > 1e-9 {
				t.Errorf("%s not symmetric: %v vs %v", m.Name(), d1, d2)
			}
		}
	}
}

func TestReversalInvariance(t *testing.T) {
	// Paper §4.3: Θ(T^R, Tq^R) equals Θ(T, Tq) for DTW and Fréchet.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		a := randTraj(rng, rng.Intn(10)+1)
		b := randTraj(rng, rng.Intn(10)+1)
		for _, m := range []Measure{DTW{}, Frechet{}} {
			d1 := m.Dist(a, b)
			d2 := m.Dist(a.Reverse(), b.Reverse())
			if math.Abs(d1-d2) > 1e-9 {
				t.Errorf("%s: reversal changed distance %v -> %v", m.Name(), d1, d2)
			}
		}
	}
}

func TestIncrementalMatchesScratch(t *testing.T) {
	// The Incremental contract: Init(i) == Dist(T[i,i],Q), and after k
	// Extends the value equals Dist(T[i,i+k],Q). This validates Φini/Φinc
	// implementations for every measure.
	rng := rand.New(rand.NewSource(12))
	for _, m := range allMeasures() {
		t.Run(m.Name(), func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				data := randTraj(rng, rng.Intn(10)+3)
				q := randTraj(rng, rng.Intn(8)+1)
				n := data.Len()
				for i := 0; i < n; i++ {
					inc := m.NewIncremental(data, q)
					got := inc.Init(i)
					want := m.Dist(data.Sub(i, i), q)
					if !closeEnough(got, want) {
						t.Fatalf("%s Init(%d) = %v, want %v", m.Name(), i, got, want)
					}
					for j := i + 1; j < n; j++ {
						got = inc.Extend()
						want = m.Dist(data.Sub(i, j), q)
						if !closeEnough(got, want) {
							t.Fatalf("%s [%d,%d] incremental = %v, scratch = %v", m.Name(), i, j, got, want)
						}
						if inc.End() != j {
							t.Fatalf("%s End() = %d, want %d", m.Name(), inc.End(), j)
						}
					}
				}
			}
		})
	}
}

func TestSuffixDists(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := randTraj(rng, 9)
	q := randTraj(rng, 4)
	for _, m := range allMeasures() {
		got := SuffixDists(m, data, q)
		n := data.Len()
		if len(got) != n {
			t.Fatalf("%s: SuffixDists length %d, want %d", m.Name(), len(got), n)
		}
		for i := 0; i < n; i++ {
			want := m.Dist(data.Sub(i, n-1).Reverse(), q.Reverse())
			if !closeEnough(got[i], want) {
				t.Errorf("%s: SuffixDists[%d] = %v, want %v", m.Name(), i, got[i], want)
			}
		}
	}
}

func TestSuffixDistsEqualForwardForDTWFrechet(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	data := randTraj(rng, 8)
	q := randTraj(rng, 5)
	for _, m := range []Measure{DTW{}, Frechet{}} {
		got := SuffixDists(m, data, q)
		for i := 0; i < data.Len(); i++ {
			want := m.Dist(data.Sub(i, data.Len()-1), q)
			if math.Abs(got[i]-want) > 1e-9 {
				t.Errorf("%s: reversed suffix dist %v != forward %v at i=%d", m.Name(), got[i], want, i)
			}
		}
	}
}

func TestPrefixDists(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	data := randTraj(rng, 8)
	q := randTraj(rng, 5)
	m := DTW{}
	got := PrefixDists(m, data, q)
	for j := 0; j < data.Len(); j++ {
		want := m.Dist(data.Sub(0, j), q)
		if math.Abs(got[j]-want) > 1e-9 {
			t.Errorf("PrefixDists[%d] = %v, want %v", j, got[j], want)
		}
	}
}

func TestAllSubDists(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	data := randTraj(rng, 7)
	q := randTraj(rng, 4)
	m := Frechet{}
	seen := map[[2]int]float64{}
	AllSubDists(m, data, q, func(i, j int, d float64) {
		seen[[2]int{i, j}] = d
	})
	n := data.Len()
	if len(seen) != n*(n+1)/2 {
		t.Fatalf("AllSubDists visited %d pairs, want %d", len(seen), n*(n+1)/2)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			want := m.Dist(data.Sub(i, j), q)
			if math.Abs(seen[[2]int{i, j}]-want) > 1e-9 {
				t.Errorf("AllSubDists[%d,%d] = %v, want %v", i, j, seen[[2]int{i, j}], want)
			}
		}
	}
}

func TestSimConversion(t *testing.T) {
	if Sim(0) != 1 {
		t.Errorf("Sim(0) = %v, want 1", Sim(0))
	}
	if s := Sim(math.Inf(1)); s != 0 {
		t.Errorf("Sim(inf) = %v, want 0", s)
	}
	f := func(d float64) bool {
		d = math.Abs(d)
		if math.IsInf(d, 0) || math.IsNaN(d) {
			return true
		}
		s := Sim(d)
		if s <= 0 || s > 1 {
			return false
		}
		back := DistFromSim(s)
		return math.Abs(back-d) < 1e-6*(1+d)*(1+d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimMonotone(t *testing.T) {
	prev := Sim(0)
	for d := 0.1; d < 100; d += 0.7 {
		cur := Sim(d)
		if cur >= prev {
			t.Fatalf("Sim not strictly decreasing at d=%v", d)
		}
		prev = cur
	}
}

func TestERPTriangleInequality(t *testing.T) {
	// ERP is a metric; check the triangle inequality on random triples.
	rng := rand.New(rand.NewSource(17))
	m := ERP{}
	for trial := 0; trial < 30; trial++ {
		a := randTraj(rng, rng.Intn(6)+1)
		b := randTraj(rng, rng.Intn(6)+1)
		c := randTraj(rng, rng.Intn(6)+1)
		ab, bc, ac := m.Dist(a, b), m.Dist(b, c), m.Dist(a, c)
		if ac > ab+bc+1e-9 {
			t.Errorf("ERP triangle violated: d(a,c)=%v > %v", ac, ab+bc)
		}
	}
}

func TestLCSSRange(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	m := LCSS{Eps: 0.5}
	for trial := 0; trial < 30; trial++ {
		a := randTraj(rng, rng.Intn(8)+1)
		b := randTraj(rng, rng.Intn(8)+1)
		d := m.Dist(a, b)
		if d < -1e-12 || d > 1+1e-12 {
			t.Errorf("LCSS dist out of [0,1]: %v", d)
		}
	}
	// contained trajectory matches fully
	a := traj.FromXY(0, 0, 1, 1, 2, 2, 3, 3)
	b := traj.FromXY(1, 1, 2, 2)
	if d := m.Dist(a, b); d != 0 {
		t.Errorf("LCSS of contained subsequence = %v, want 0", d)
	}
}

func TestEDRCountsEdits(t *testing.T) {
	m := EDR{Eps: 0.1}
	a := traj.FromXY(0, 0, 1, 0, 2, 0)
	b := traj.FromXY(0, 0, 1, 0, 2, 0)
	if d := m.Dist(a, b); d != 0 {
		t.Errorf("EDR identical = %v, want 0", d)
	}
	// one point moved far: one substitution
	c := traj.FromXY(0, 0, 9, 9, 2, 0)
	if d := m.Dist(a, c); d != 1 {
		t.Errorf("EDR one substitution = %v, want 1", d)
	}
	// one extra point: one insertion
	e := traj.FromXY(0, 0, 1, 0, 2, 0, 3, 0)
	if d := m.Dist(a, e); d != 1 {
		t.Errorf("EDR one insertion = %v, want 1", d)
	}
}

func TestCDTWReducesToUnconstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 20; trial++ {
		a := randTraj(rng, rng.Intn(10)+1)
		b := randTraj(rng, rng.Intn(10)+1)
		full := (DTW{}).Dist(a, b)
		band := (CDTW{R: 1}).Dist(a, b)
		if math.Abs(full-band) > 1e-9 {
			t.Errorf("CDTW(R=1) = %v, DTW = %v", band, full)
		}
	}
}

func TestCDTWLowerBoundedByDTW(t *testing.T) {
	// Constraining the warping path can only increase the distance.
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 20; trial++ {
		a := randTraj(rng, rng.Intn(10)+2)
		b := randTraj(rng, rng.Intn(10)+2)
		full := (DTW{}).Dist(a, b)
		for _, r := range []float64{0, 0.1, 0.3, 0.6} {
			band := (CDTW{R: r}).Dist(a, b)
			if band < full-1e-9 {
				t.Errorf("CDTW(R=%v) = %v below DTW %v", r, band, full)
			}
		}
	}
}

func TestCDTWBandMonotoneInR(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randTraj(rng, 15)
	b := randTraj(rng, 12)
	prev := math.Inf(1)
	for _, r := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		d := (CDTW{R: r}).Dist(a, b)
		if d > prev+1e-9 {
			t.Errorf("CDTW not monotone: R=%v gives %v > previous %v", r, d, prev)
		}
		prev = d
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("expected at least 8 registered measures, got %v", names)
	}
	for _, n := range names {
		m, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if m.Name() != n {
			t.Errorf("ByName(%q).Name() = %q", n, m.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown measure")
	}
}

func TestEmptyTrajectoryDistances(t *testing.T) {
	a := traj.FromXY(0, 0, 1, 1)
	empty := traj.New()
	for _, m := range []Measure{DTW{}, Frechet{}, ERP{}, EDR{Eps: 0.5}, LCSS{Eps: 0.5}} {
		if d := m.Dist(a, empty); !math.IsInf(d, 1) {
			t.Errorf("%s vs empty = %v, want +Inf", m.Name(), d)
		}
		if d := m.Dist(empty, a); !math.IsInf(d, 1) {
			t.Errorf("%s empty vs a = %v, want +Inf", m.Name(), d)
		}
	}
}

func TestSegmentMeasureDegenerateFallback(t *testing.T) {
	single := traj.FromXY(1, 1)
	q := traj.FromXY(0, 0, 1, 0)
	for _, m := range []Measure{EDS{}, EDwP{}} {
		want := (DTW{}).Dist(single, q)
		if got := m.Dist(single, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("%s degenerate = %v, want DTW fallback %v", m.Name(), got, want)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate registration")
		}
	}()
	Register("dtw", func() Measure { return DTW{} })
}
