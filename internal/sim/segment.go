package sim

import (
	"simsub/internal/geo"
	"simsub/internal/traj"
)

// This file implements segment-matching measures in the spirit of
// EDS (Xie, SIGMOD 2014) and EDwP (Ranu et al., ICDE 2015), which the paper
// reviews in §2 as measurements the abstract Θ can be instantiated with.
//
// Both are edit distances over the segment sequences of the trajectories
// (a length-n trajectory has n-1 segments). The published EDwP additionally
// interpolates projection points dynamically; we use element-local gap costs
// instead so that the DP admits the O(m)-per-point incremental extension
// every measure in this package provides. The exact costs are documented on
// each type; DESIGN.md records this substitution.
//
// Trajectories with fewer than two points have no segments; both measures
// fall back to DTW for those degenerate inputs (this arises for the
// single-point Φini case of the Incremental contract).

func init() {
	Register("eds", func() Measure { return EDS{} })
	Register("edwp", func() Measure { return EDwP{} })
}

// segment is a directed trajectory segment.
type segment struct {
	a, b geo.Point
}

func (s segment) length() float64 { return geo.Dist(s.a, s.b) }

// segmentsOf returns the n-1 segments of t.
func segmentsOf(t traj.Trajectory) []segment {
	n := t.Len()
	if n < 2 {
		return nil
	}
	out := make([]segment, n-1)
	for i := 0; i < n-1; i++ {
		out[i] = segment{a: t.Pt(i), b: t.Pt(i + 1)}
	}
	return out
}

// segCosts abstracts the per-element costs of a segment edit distance.
type segCosts interface {
	rep(e, f segment) float64
	gap(e segment) float64
}

// segDist runs the edit-distance DP over segment sequences with the given
// costs, in O(|es|·|fs|) time and O(|fs|) space.
func segDist(cs segCosts, es, fs []segment) float64 {
	row := segBaseRow(cs, fs)
	for _, e := range es {
		segExtendRow(cs, row, e, fs)
	}
	return row[len(fs)]
}

// segBaseRow returns the DP row for an empty data prefix: inserting every
// query segment.
func segBaseRow(cs segCosts, fs []segment) []float64 {
	row := make([]float64, len(fs)+1)
	for j, f := range fs {
		row[j+1] = row[j] + cs.gap(f)
	}
	return row
}

// segExtendRow advances the DP by one data segment in place.
func segExtendRow(cs segCosts, row []float64, e segment, fs []segment) {
	prevDiag := row[0]
	row[0] += cs.gap(e)
	for j, f := range fs {
		prevUp := row[j+1]
		best := prevDiag + cs.rep(e, f)
		if v := prevUp + cs.gap(e); v < best {
			best = v
		}
		if v := row[j] + cs.gap(f); v < best {
			best = v
		}
		row[j+1] = best
		prevDiag = prevUp
	}
}

// EDS is a segment-based edit distance: replacing segment e with f costs the
// mean endpoint displacement (d(e.a,f.a)+d(e.b,f.b))/2, inserting or
// deleting a segment costs its length. Identical trajectories have
// distance 0.
type EDS struct{}

// Name implements Measure.
func (EDS) Name() string { return "eds" }

func (EDS) rep(e, f segment) float64 {
	return (geo.Dist(e.a, f.a) + geo.Dist(e.b, f.b)) / 2
}

func (EDS) gap(e segment) float64 { return e.length() }

// Dist computes EDS from scratch in O(n·m) time.
func (m EDS) Dist(t, q traj.Trajectory) float64 {
	if t.Len() < 2 || q.Len() < 2 {
		return DTW{}.Dist(t, q)
	}
	return segDist(m, segmentsOf(t), segmentsOf(q))
}

// NewIncremental implements Measure.
func (m EDS) NewIncremental(t, q traj.Trajectory) Incremental {
	return &segInc{cs: m, t: t, q: q, qsegs: segmentsOf(q)}
}

// EDwP is a segment-based edit distance with coverage-weighted replacement
// in the spirit of Ranu et al.: replacing e with f costs
// (d(e.a,f.a)+d(e.b,f.b))·(len(e)+len(f)), and a gap (insert/delete) of
// segment e costs len(e)². Longer mismatched stretches therefore dominate,
// matching EDwP's coverage intuition, while keeping costs element-local so
// the incremental contract holds (see the package comment on the published
// measure's dynamic interpolation).
type EDwP struct{}

// Name implements Measure.
func (EDwP) Name() string { return "edwp" }

func (EDwP) rep(e, f segment) float64 {
	return (geo.Dist(e.a, f.a) + geo.Dist(e.b, f.b)) * (e.length() + f.length())
}

func (EDwP) gap(e segment) float64 {
	l := e.length()
	return l * l
}

// Dist computes EDwP from scratch in O(n·m) time.
func (m EDwP) Dist(t, q traj.Trajectory) float64 {
	if t.Len() < 2 || q.Len() < 2 {
		return DTW{}.Dist(t, q)
	}
	return segDist(m, segmentsOf(t), segmentsOf(q))
}

// NewIncremental implements Measure.
func (m EDwP) NewIncremental(t, q traj.Trajectory) Incremental {
	return &segInc{cs: m, t: t, q: q, qsegs: segmentsOf(q)}
}

// segInc extends a segment edit distance one data point at a time. A
// subtrajectory of k points has k-1 segments, so Init (single point) uses the
// degenerate fallback and the first Extend builds the first segment row.
type segInc struct {
	cs    segCosts
	t, q  traj.Trajectory
	qsegs []segment
	row   []float64
	start int
	end   int
}

func (c *segInc) Init(i int) float64 {
	if c.q.Len() == 0 {
		panic("sim: segment incremental with empty query")
	}
	c.start, c.end = i, i
	c.row = nil
	return DTW{}.Dist(c.t.Sub(i, i), c.q)
}

func (c *segInc) Extend() float64 {
	c.end++
	if c.q.Len() < 2 {
		// query has no segments; fall back for every prefix
		return DTW{}.Dist(c.t.Sub(c.start, c.end), c.q)
	}
	if c.row == nil {
		c.row = segBaseRow(c.cs, c.qsegs)
	}
	seg := segment{a: c.t.Pt(c.end - 1), b: c.t.Pt(c.end)}
	segExtendRow(c.cs, c.row, seg, c.qsegs)
	return c.row[len(c.qsegs)]
}

func (c *segInc) End() int { return c.end }
