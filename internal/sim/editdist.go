package sim

import (
	"math"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

// This file implements the point-based edit-distance family reviewed in §2
// of the paper: ERP (Chen & Ng, VLDB 2004), EDR (Chen et al., SIGMOD 2005)
// and LCSS (Vlachos et al., ICDE 2002). They are listed by the paper as
// measurements the abstract Θ can be instantiated with; all expose the same
// Incremental contract with Φinc = Φini = O(m).

func init() {
	Register("erp", func() Measure { return ERP{} })
	Register("edr", func() Measure { return EDR{Eps: 0.25} })
	Register("lcss", func() Measure { return LCSS{Eps: 0.25} })
}

// ERP is the Edit distance with Real Penalty. Gaps are penalized by the
// distance to a fixed gap point Gap (the origin by default), which makes ERP
// a metric.
//
//	ERP(i,j) = min( ERP(i-1,j-1) + d(p_i,q_j),
//	                ERP(i-1,j)   + d(p_i,g),
//	                ERP(i,j-1)   + d(q_j,g) )
type ERP struct {
	// Gap is the reference point g; the zero value uses the origin.
	Gap geo.Point
}

// Name implements Measure.
func (ERP) Name() string { return "erp" }

// Dist computes ERP from scratch in O(n·m) time and O(m) space.
func (e ERP) Dist(t, q traj.Trajectory) float64 {
	n, m := t.Len(), q.Len()
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	row := getRow(m + 1)
	defer putRow(row)
	e.baseRowInto(row, q)
	for i := 0; i < n; i++ {
		e.extendRow(row, t.Pt(i), q)
	}
	return row[m]
}

// baseRowInto fills row with ERP(∅, q[0..j-1]) for j = 0..m: the cost of
// deleting the whole query prefix. row must have m+1 cells.
func (e ERP) baseRowInto(row []float64, q traj.Trajectory) {
	m := q.Len()
	row[0] = 0
	for j := 1; j <= m; j++ {
		row[j] = row[j-1] + geo.Dist(q.Pt(j-1), e.Gap)
	}
}

// extendRow advances the DP by one data point in place; row has m+1 cells
// with row[j] = ERP(prefix, q[0..j-1]).
func (e ERP) extendRow(row []float64, p geo.Point, q traj.Trajectory) {
	m := q.Len()
	gp := geo.Dist(p, e.Gap)
	prevDiag := row[0]
	row[0] += gp // delete p
	for j := 1; j <= m; j++ {
		prevUp := row[j]
		match := prevDiag + geo.Dist(p, q.Pt(j-1))
		delP := prevUp + gp
		delQ := row[j-1] + geo.Dist(q.Pt(j-1), e.Gap)
		best := match
		if delP < best {
			best = delP
		}
		if delQ < best {
			best = delQ
		}
		row[j] = best
		prevDiag = prevUp
	}
}

// extendRowMin is extendRow additionally returning the new row's minimum:
// every cell adds a non-negative cost to a minimum over earlier cells, so
// the row minimum never decreases and lower-bounds all future distances.
func (e ERP) extendRowMin(row []float64, p geo.Point, q traj.Trajectory) float64 {
	m := q.Len()
	gp := geo.Dist(p, e.Gap)
	prevDiag := row[0]
	row[0] += gp // delete p
	rowMin := row[0]
	for j := 1; j <= m; j++ {
		prevUp := row[j]
		match := prevDiag + geo.Dist(p, q.Pt(j-1))
		delP := prevUp + gp
		delQ := row[j-1] + geo.Dist(q.Pt(j-1), e.Gap)
		best := match
		if delP < best {
			best = delP
		}
		if delQ < best {
			best = delQ
		}
		row[j] = best
		if best < rowMin {
			rowMin = best
		}
		prevDiag = prevUp
	}
	return rowMin
}

type erpInc struct {
	meas ERP
	t, q traj.Trajectory
	row  []float64
	end  int
}

// NewIncremental implements Measure.
func (e ERP) NewIncremental(t, q traj.Trajectory) Incremental {
	return &erpInc{meas: e, t: t, q: q}
}

func (c *erpInc) Init(i int) float64 {
	if c.q.Len() == 0 {
		panic("sim: ERP incremental with empty query")
	}
	c.end = i
	if c.row == nil {
		c.row = getRow(c.q.Len() + 1)
	}
	c.meas.baseRowInto(c.row, c.q)
	c.meas.extendRow(c.row, c.t.Pt(i), c.q)
	return c.row[c.q.Len()]
}

func (c *erpInc) Extend() float64 {
	c.end++
	c.meas.extendRow(c.row, c.t.Pt(c.end), c.q)
	return c.row[c.q.Len()]
}

func (c *erpInc) End() int { return c.end }

// ExtendAbandoning implements ThresholdIncremental; see extendRowMin.
func (c *erpInc) ExtendAbandoning(tau float64) (float64, bool) {
	c.end++
	rowMin := c.meas.extendRowMin(c.row, c.t.Pt(c.end), c.q)
	if rowMin > tau {
		return rowMin, true
	}
	return c.row[c.q.Len()], false
}

// Release implements Releaser.
func (c *erpInc) Release() {
	putRow(c.row)
	c.row = nil
}

// EDR is the Edit Distance on Real sequence: points match (cost 0) when
// within Eps in both coordinates, otherwise substitution/insertion/deletion
// cost 1. The raw edit count is returned (the common normalized variant is
// raw/max(n,m); algorithms in this library only compare distances of
// subtrajectories against a fixed query, for which the raw count is the
// standard choice).
type EDR struct {
	// Eps is the matching tolerance per coordinate.
	Eps float64
}

// Name implements Measure.
func (EDR) Name() string { return "edr" }

// match applies EDR's per-coordinate tolerance test.
func (e EDR) match(p, q geo.Point) bool {
	return math.Abs(p.X-q.X) <= e.Eps && math.Abs(p.Y-q.Y) <= e.Eps
}

// Dist computes EDR from scratch in O(n·m) time and O(m) space.
func (e EDR) Dist(t, q traj.Trajectory) float64 {
	n, m := t.Len(), q.Len()
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	row := getRow(m + 1)
	defer putRow(row)
	for j := 0; j <= m; j++ {
		row[j] = float64(j)
	}
	for i := 0; i < n; i++ {
		e.extendRow(row, t.Pt(i), q)
	}
	return row[m]
}

func (e EDR) extendRow(row []float64, p geo.Point, q traj.Trajectory) {
	m := q.Len()
	prevDiag := row[0]
	row[0]++
	for j := 1; j <= m; j++ {
		prevUp := row[j]
		sub := prevDiag
		if !e.match(p, q.Pt(j-1)) {
			sub++
		}
		best := sub
		if prevUp+1 < best {
			best = prevUp + 1
		}
		if row[j-1]+1 < best {
			best = row[j-1] + 1
		}
		row[j] = best
		prevDiag = prevUp
	}
}

type edrInc struct {
	meas EDR
	t, q traj.Trajectory
	row  []float64
	end  int
}

// NewIncremental implements Measure.
func (e EDR) NewIncremental(t, q traj.Trajectory) Incremental {
	return &edrInc{meas: e, t: t, q: q}
}

// extendRowMin is extendRow additionally returning the new row's minimum:
// every cell adds a non-negative edit cost to a minimum over earlier cells,
// so the row minimum never decreases and lower-bounds all future distances.
func (e EDR) extendRowMin(row []float64, p geo.Point, q traj.Trajectory) float64 {
	m := q.Len()
	prevDiag := row[0]
	row[0]++
	rowMin := row[0]
	for j := 1; j <= m; j++ {
		prevUp := row[j]
		sub := prevDiag
		if !e.match(p, q.Pt(j-1)) {
			sub++
		}
		best := sub
		if prevUp+1 < best {
			best = prevUp + 1
		}
		if row[j-1]+1 < best {
			best = row[j-1] + 1
		}
		row[j] = best
		if best < rowMin {
			rowMin = best
		}
		prevDiag = prevUp
	}
	return rowMin
}

func (c *edrInc) Init(i int) float64 {
	m := c.q.Len()
	if m == 0 {
		panic("sim: EDR incremental with empty query")
	}
	c.end = i
	if c.row == nil {
		c.row = getRow(m + 1)
	}
	for j := 0; j <= m; j++ {
		c.row[j] = float64(j)
	}
	c.meas.extendRow(c.row, c.t.Pt(i), c.q)
	return c.row[m]
}

func (c *edrInc) Extend() float64 {
	c.end++
	c.meas.extendRow(c.row, c.t.Pt(c.end), c.q)
	return c.row[c.q.Len()]
}

func (c *edrInc) End() int { return c.end }

// ExtendAbandoning implements ThresholdIncremental; see extendRowMin.
func (c *edrInc) ExtendAbandoning(tau float64) (float64, bool) {
	c.end++
	rowMin := c.meas.extendRowMin(c.row, c.t.Pt(c.end), c.q)
	if rowMin > tau {
		return rowMin, true
	}
	return c.row[c.q.Len()], false
}

// Release implements Releaser.
func (c *edrInc) Release() {
	putRow(c.row)
	c.row = nil
}

// LCSS derives a dissimilarity from the Longest Common SubSequence: two
// points match when within Eps per coordinate, and
//
//	dist = 1 - LCSS(T,Q) / min(|T|,|Q|)
//
// which lies in [0,1] (0 when one trajectory matches inside the other).
type LCSS struct {
	// Eps is the matching tolerance per coordinate.
	Eps float64
}

// Name implements Measure.
func (LCSS) Name() string { return "lcss" }

func (l LCSS) match(p, q geo.Point) bool {
	return math.Abs(p.X-q.X) <= l.Eps && math.Abs(p.Y-q.Y) <= l.Eps
}

// Dist computes the LCSS dissimilarity from scratch in O(n·m) time.
func (l LCSS) Dist(t, q traj.Trajectory) float64 {
	n, m := t.Len(), q.Len()
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	row := getRow(m + 1)
	defer putRow(row)
	for j := range row {
		row[j] = 0
	}
	for i := 0; i < n; i++ {
		l.extendRow(row, t.Pt(i), q)
	}
	return l.toDist(row[m], n, m)
}

func (l LCSS) toDist(lcss float64, n, m int) float64 {
	den := n
	if m < den {
		den = m
	}
	return 1 - lcss/float64(den)
}

func (l LCSS) extendRow(row []float64, p geo.Point, q traj.Trajectory) {
	m := q.Len()
	prevDiag := row[0]
	for j := 1; j <= m; j++ {
		prevUp := row[j]
		var v float64
		if l.match(p, q.Pt(j-1)) {
			v = prevDiag + 1
		} else {
			v = prevUp
			if row[j-1] > v {
				v = row[j-1]
			}
		}
		row[j] = v
		prevDiag = prevUp
	}
}

type lcssInc struct {
	meas  LCSS
	t, q  traj.Trajectory
	row   []float64
	start int
	end   int
}

// NewIncremental implements Measure.
func (l LCSS) NewIncremental(t, q traj.Trajectory) Incremental {
	return &lcssInc{meas: l, t: t, q: q}
}

func (c *lcssInc) Init(i int) float64 {
	m := c.q.Len()
	if m == 0 {
		panic("sim: LCSS incremental with empty query")
	}
	c.start, c.end = i, i
	if c.row == nil {
		c.row = getRow(m + 1)
	}
	for j := range c.row {
		c.row[j] = 0
	}
	c.meas.extendRow(c.row, c.t.Pt(i), c.q)
	return c.meas.toDist(c.row[m], 1, m)
}

func (c *lcssInc) Extend() float64 {
	c.end++
	c.meas.extendRow(c.row, c.t.Pt(c.end), c.q)
	return c.meas.toDist(c.row[c.q.Len()], c.end-c.start+1, c.q.Len())
}

func (c *lcssInc) End() int { return c.end }

// ExtendAbandoning implements ThresholdIncremental. LCSS grows by at most
// one per added data point and is capped by both sequence lengths, so with
// L = LCSS(T[i,j],Q), R data points remaining after j, len = j-i+1 and
// mm = min(len+R, m), every future dissimilarity is at least
// 1 - min(L+R, mm)/mm; the ratio (L+e)/min(len+e, m) is non-decreasing in
// the number of added points e, so the bound at e = R is the minimum over
// all futures and the current value (e = 0) is itself above tau whenever
// the bound is.
func (c *lcssInc) ExtendAbandoning(tau float64) (float64, bool) {
	c.end++
	m := c.q.Len()
	c.meas.extendRow(c.row, c.t.Pt(c.end), c.q)
	length := c.end - c.start + 1
	d := c.meas.toDist(c.row[m], length, m)
	remaining := c.t.Len() - 1 - c.end
	mm := length + remaining
	if m < mm {
		mm = m
	}
	maxFuture := c.row[m] + float64(remaining)
	if float64(mm) < maxFuture {
		maxFuture = float64(mm)
	}
	if lb := 1 - maxFuture/float64(mm); lb > tau {
		return lb, true
	}
	return d, false
}

// Release implements Releaser.
func (c *lcssInc) Release() {
	putRow(c.row)
	c.row = nil
}
