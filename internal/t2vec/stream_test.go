package t2vec

import (
	"math"
	"math/rand"
	"testing"

	"simsub/internal/traj"
)

// The streaming encoder contract: pushing a point sequence one GRU step at
// a time must land on exactly the distances the batch encoder computes for
// the same prefixes — the stream is Φinc over the identical hidden state.

func TestStreamMatchesBatchPrefixes(t *testing.T) {
	m := NewRandomModel(8, 1)
	rng := rand.New(rand.NewSource(30))
	data := randWalk(rng, 14)
	q := randWalk(rng, 7)
	s := m.NewStream(q)
	for j := 0; j < data.Len(); j++ {
		got := s.Push(data.Points[j])
		want := m.Dist(data.Sub(0, j), q)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("stream prefix [0,%d] = %v, batch = %v", j, got, want)
		}
		if s.Len() != j+1 {
			t.Fatalf("Len after %d pushes = %d", j+1, s.Len())
		}
	}
}

func TestStreamResetReplaysIdentically(t *testing.T) {
	m := NewRandomModel(8, 2)
	rng := rand.New(rand.NewSource(31))
	data := randWalk(rng, 10)
	q := randWalk(rng, 5)
	s := m.NewStream(q)
	first := make([]float64, data.Len())
	for j := range data.Points {
		first[j] = s.Push(data.Points[j])
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	for j := range data.Points {
		if got := s.Push(data.Points[j]); got != first[j] {
			t.Fatalf("replay diverged at %d: %v != %v", j, got, first[j])
		}
	}
}

func TestStreamIndependentOfOtherStreams(t *testing.T) {
	// two concurrent streams over the same model must not share hidden
	// state: interleaved pushes still agree with the batch encoder
	m := NewRandomModel(8, 3)
	rng := rand.New(rand.NewSource(32))
	a := randWalk(rng, 9)
	b := randWalk(rng, 9)
	q := randWalk(rng, 6)
	sa, sb := m.NewStream(q), m.NewStream(q)
	for j := 0; j < 9; j++ {
		da := sa.Push(a.Points[j])
		db := sb.Push(b.Points[j])
		if want := m.Dist(a.Sub(0, j), q); math.Abs(da-want) > 1e-12 {
			t.Fatalf("stream a diverged at %d: %v != %v", j, da, want)
		}
		if want := m.Dist(b.Sub(0, j), q); math.Abs(db-want) > 1e-12 {
			t.Fatalf("stream b diverged at %d: %v != %v", j, db, want)
		}
	}
}

func TestStreamTokenModelParity(t *testing.T) {
	// the parity contract must hold for token-pipeline models too, whose
	// per-point feature is a learned cell embedding rather than coordinates
	rng := rand.New(rand.NewSource(33))
	corpus := make([]traj.Trajectory, 8)
	for i := range corpus {
		corpus[i] = randWalk(rng, 12)
	}
	m, _, err := Train(corpus, TrainConfig{Hidden: 6, Epochs: 1, TokenGrid: 6, EmbedDim: 4, Seed: 7})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	data, q := corpus[0], corpus[1]
	s := m.NewStream(q)
	for j := 0; j < data.Len(); j++ {
		got := s.Push(data.Points[j])
		want := m.Dist(data.Sub(0, j), q)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("token stream prefix [0,%d] = %v, batch = %v", j, got, want)
		}
	}
}
