// Package t2vec provides a data-driven trajectory similarity measure in the
// spirit of t2vec (Li et al., ICDE 2018), which the paper uses as one of its
// three instantiations of the abstract measurement Θ.
//
// The published t2vec is a GPU-trained RNN seq2seq model over discretized
// cell tokens. This reproduction (see DESIGN.md, substitutions) keeps the
// properties the SimSub algorithms actually rely on:
//
//   - a deterministic vector embedding of a trajectory computed by a
//     recurrent encoder in O(n) time (Φ = O(n+m));
//   - O(1) incremental extension: the embedding of T[i,j] follows from the
//     encoder hidden state of T[i,j-1] by a single GRU step (Φinc = O(1));
//   - O(1) distance between two embeddings (Euclidean).
//
// The encoder is a GRU over normalized point coordinates, trained as a
// sequence-to-sequence autoencoder (encoder → decoder reconstructing the
// input trajectory) with Adam, mirroring the encoder-decoder framework of
// the original.
package t2vec

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sync"

	"simsub/internal/geo"
	"simsub/internal/nn"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// DefaultHidden is the default embedding dimensionality.
const DefaultHidden = 16

func init() {
	// Register a deterministic default model so sim.ByName("t2vec") works for
	// CLI tools and quick experiments. Real experiments train a model with
	// Train and construct the measure explicitly.
	sim.Register("t2vec", func() sim.Measure {
		return NewRandomModel(DefaultHidden, 1)
	})
}

// Model is a trained t2vec-style trajectory encoder. It implements
// sim.Measure: the dissimilarity between two trajectories is the Euclidean
// distance between their embeddings. A Model is safe for concurrent use.
type Model struct {
	enc *nn.GRU
	// bounds maps raw coordinates into the unit square before encoding.
	bounds geo.Rect
	// grid > 0 switches to cell-token inputs (the published t2vec's
	// pipeline): points are discretized into a grid×grid lattice and the
	// GRU consumes a learned per-cell embedding instead of coordinates.
	grid int
	// emb is the grid²×InDim token-embedding table when grid > 0.
	emb *nn.Tensor

	// single-entry query-embedding cache. The SimSub algorithms compute
	// distances of many subtrajectories against one query trajectory; the
	// paper amortizes the O(m) query encoding across those computations
	// (§3.2). The cache keys on the query's underlying point storage.
	mu     sync.Mutex
	cacheQ []geo.Point
	cacheV []float64
}

// New wraps a trained encoder with the normalization bounds it was trained
// under.
func New(enc *nn.GRU, bounds geo.Rect) *Model {
	return &Model{enc: enc, bounds: bounds}
}

// NewRandomModel builds an untrained (randomly initialized, deterministic
// for a given seed) model. Untrained encoders still define a valid
// measure — random GRU projections preserve coarse locality — and are useful
// for tests and as a fallback when no trained model is available.
func NewRandomModel(hidden int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	return &Model{
		enc:    nn.NewGRU(2, hidden, rng),
		bounds: geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
	}
}

// Name implements sim.Measure.
func (m *Model) Name() string { return "t2vec" }

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.enc.HiddenDim }

// Encoder exposes the underlying GRU (for serialization and training).
func (m *Model) Encoder() *nn.GRU { return m.enc }

// Grid returns the token-grid resolution (0 for coordinate-input models).
func (m *Model) Grid() int { return m.grid }

// Bounds returns the normalization rectangle.
func (m *Model) Bounds() geo.Rect { return m.bounds }

// norm maps p into the unit square under the model bounds.
func (m *Model) norm(p geo.Point) (nx, ny float64) {
	w := m.bounds.MaxX - m.bounds.MinX
	h := m.bounds.MaxY - m.bounds.MinY
	nx, ny = 0.5, 0.5
	if w > 0 {
		nx = (p.X - m.bounds.MinX) / w
	}
	if h > 0 {
		ny = (p.Y - m.bounds.MinY) / h
	}
	return nx, ny
}

// Token returns the grid-cell token of p; -1 for coordinate-input models.
func (m *Model) Token(p geo.Point) int {
	if m.grid <= 0 {
		return -1
	}
	nx, ny := m.norm(p)
	cx := clampCell(int(nx*float64(m.grid)), m.grid)
	cy := clampCell(int(ny*float64(m.grid)), m.grid)
	return cy*m.grid + cx
}

func clampCell(c, cells int) int {
	if c < 0 {
		return 0
	}
	if c >= cells {
		return cells - 1
	}
	return c
}

// feature writes the GRU input features of p into dst (length enc.InDim):
// normalized coordinates, or the cell-token embedding for token models.
func (m *Model) feature(p geo.Point, dst []float64) {
	if m.grid > 0 {
		tok := m.Token(p)
		copy(dst, m.emb.W[tok*m.emb.Cols:(tok+1)*m.emb.Cols])
		return
	}
	dst[0], dst[1] = m.norm(p)
}

// Embed returns the embedding of t: the encoder hidden state after
// consuming all points. Cost O(n).
func (m *Model) Embed(t traj.Trajectory) []float64 {
	h := make([]float64, m.enc.HiddenDim)
	x := make([]float64, m.enc.InDim)
	for _, p := range t.Points {
		m.feature(p, x)
		m.enc.StepInfer(h, x, h)
	}
	return h
}

// QueryEmbedding returns the (cached) embedding of q. Together with Dim
// and Embed it satisfies core.Embedder, so the engine can store per-
// trajectory embeddings and rank by embedding distance without knowing the
// encoder's internals.
func (m *Model) QueryEmbedding(q traj.Trajectory) []float64 {
	return m.queryEmbedding(q)
}

// queryEmbedding returns the (cached) embedding of q.
func (m *Model) queryEmbedding(q traj.Trajectory) []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(q.Points) > 0 && len(m.cacheQ) == len(q.Points) && &m.cacheQ[0] == &q.Points[0] {
		return m.cacheV
	}
	v := m.Embed(q)
	m.cacheQ = q.Points
	m.cacheV = v
	return v
}

// Dist implements sim.Measure: Euclidean distance between embeddings.
func (m *Model) Dist(t, q traj.Trajectory) float64 {
	if t.Len() == 0 || q.Len() == 0 {
		return math.Inf(1)
	}
	return euclid(m.Embed(t), m.queryEmbedding(q))
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// inc is the O(1)-per-extension incremental computer: it carries the
// encoder hidden state of the current subtrajectory.
type inc struct {
	m    *Model
	t    traj.Trajectory
	qEmb []float64
	h    []float64
	x    []float64
	end  int
}

// NewIncremental implements sim.Measure. The query embedding is computed
// once (amortized per the paper's Φ analysis); Init costs one GRU step
// (Φini = O(1)) and each Extend one GRU step (Φinc = O(1)).
func (m *Model) NewIncremental(t, q traj.Trajectory) sim.Incremental {
	return &inc{
		m:    m,
		t:    t,
		qEmb: m.queryEmbedding(q),
		h:    make([]float64, m.enc.HiddenDim),
		x:    make([]float64, m.enc.InDim),
	}
}

func (c *inc) Init(i int) float64 {
	for j := range c.h {
		c.h[j] = 0
	}
	c.end = i
	c.m.feature(c.t.Pt(i), c.x)
	c.m.enc.StepInfer(c.h, c.x, c.h)
	return euclid(c.h, c.qEmb)
}

func (c *inc) Extend() float64 {
	c.end++
	c.m.feature(c.t.Pt(c.end), c.x)
	c.m.enc.StepInfer(c.h, c.x, c.h)
	return euclid(c.h, c.qEmb)
}

func (c *inc) End() int { return c.end }

// Save serializes the model (encoder weights, bounds and, for token
// models, the grid size and embedding table).
func (m *Model) Save(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "t2vec %d %g %g %g %g\n",
		m.grid, m.bounds.MinX, m.bounds.MinY, m.bounds.MaxX, m.bounds.MaxY); err != nil {
		return err
	}
	if m.grid > 0 {
		if _, err := fmt.Fprintf(w, "%d %d\n", m.emb.Rows, m.emb.Cols); err != nil {
			return err
		}
		for _, v := range m.emb.W {
			if _, err := fmt.Fprintf(w, "%g\n", v); err != nil {
				return err
			}
		}
	}
	return nn.SaveGRU(w, m.enc)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var b geo.Rect
	var tag string
	var grid int
	if _, err := fmt.Fscanf(r, "%s %d %g %g %g %g\n", &tag, &grid, &b.MinX, &b.MinY, &b.MaxX, &b.MaxY); err != nil {
		return nil, fmt.Errorf("t2vec: reading header: %w", err)
	}
	if tag != "t2vec" {
		return nil, fmt.Errorf("t2vec: bad header tag %q", tag)
	}
	var emb *nn.Tensor
	if grid > 0 {
		var rows, cols int
		if _, err := fmt.Fscanf(r, "%d %d\n", &rows, &cols); err != nil {
			return nil, fmt.Errorf("t2vec: reading embedding shape: %w", err)
		}
		emb = nn.NewTensor(rows, cols)
		for i := range emb.W {
			if _, err := fmt.Fscanf(r, "%g\n", &emb.W[i]); err != nil {
				return nil, fmt.Errorf("t2vec: reading embedding: %w", err)
			}
		}
	}
	enc, err := nn.LoadGRU(r)
	if err != nil {
		return nil, err
	}
	return &Model{enc: enc, bounds: b, grid: grid, emb: emb}, nil
}

// SaveFile writes the model to the named file.
func (m *Model) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return m.Save(f)
}

// LoadFile reads a model from the named file.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
