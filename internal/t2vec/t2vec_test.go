package t2vec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

func randWalk(rng *rand.Rand, n int) traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := rng.Float64(), rng.Float64()
	for i := range pts {
		x += rng.NormFloat64() * 0.02
		y += rng.NormFloat64() * 0.02
		pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
	}
	return traj.New(pts...)
}

func TestModelIdentityDistanceZero(t *testing.T) {
	m := NewRandomModel(8, 1)
	rng := rand.New(rand.NewSource(2))
	tr := randWalk(rng, 12)
	if d := m.Dist(tr, tr); math.Abs(d) > 1e-12 {
		t.Errorf("self distance = %v, want 0", d)
	}
}

func TestModelDeterministic(t *testing.T) {
	a := NewRandomModel(8, 7)
	b := NewRandomModel(8, 7)
	rng := rand.New(rand.NewSource(3))
	x := randWalk(rng, 10)
	y := randWalk(rng, 8)
	if da, db := a.Dist(x, y), b.Dist(x, y); da != db {
		t.Errorf("same seed models disagree: %v vs %v", da, db)
	}
	c := NewRandomModel(8, 8)
	if dc := c.Dist(x, y); dc == a.Dist(x, y) {
		t.Error("different seeds should give different measures (almost surely)")
	}
}

func TestModelSymmetric(t *testing.T) {
	m := NewRandomModel(8, 1)
	rng := rand.New(rand.NewSource(4))
	a := randWalk(rng, 9)
	b := randWalk(rng, 11)
	if d1, d2 := m.Dist(a, b), m.Dist(b, a); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("not symmetric: %v vs %v", d1, d2)
	}
}

func TestModelEmptyTrajectory(t *testing.T) {
	m := NewRandomModel(8, 1)
	a := traj.FromXY(0, 0, 1, 1)
	if d := m.Dist(a, traj.New()); !math.IsInf(d, 1) {
		t.Errorf("dist vs empty = %v, want +Inf", d)
	}
}

func TestIncrementalMatchesScratch(t *testing.T) {
	// The core t2vec contract from Table 1: the incremental computer
	// (one GRU step per point) must agree exactly with Embed-from-scratch.
	m := NewRandomModel(8, 1)
	rng := rand.New(rand.NewSource(5))
	data := randWalk(rng, 12)
	q := randWalk(rng, 6)
	n := data.Len()
	for i := 0; i < n; i++ {
		inc := m.NewIncremental(data, q)
		got := inc.Init(i)
		want := m.Dist(data.Sub(i, i), q)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("Init(%d) = %v, want %v", i, got, want)
		}
		for j := i + 1; j < n; j++ {
			got = inc.Extend()
			want = m.Dist(data.Sub(i, j), q)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("[%d,%d] incremental = %v, scratch = %v", i, j, got, want)
			}
			if inc.End() != j {
				t.Fatalf("End() = %d, want %d", i, j)
			}
		}
	}
}

func TestQueryEmbeddingCache(t *testing.T) {
	m := NewRandomModel(8, 1)
	rng := rand.New(rand.NewSource(6))
	q := randWalk(rng, 10)
	v1 := m.queryEmbedding(q)
	v2 := m.queryEmbedding(q)
	if &v1[0] != &v2[0] {
		t.Error("repeated query embedding should hit the cache")
	}
	other := randWalk(rng, 10)
	v3 := m.queryEmbedding(other)
	if &v3[0] == &v1[0] {
		t.Error("different query should miss the cache")
	}
}

func TestEmbedLocality(t *testing.T) {
	// A small perturbation of a trajectory should move its embedding less
	// than an unrelated trajectory does — random GRU projections preserve
	// coarse locality.
	m := NewRandomModel(16, 1)
	rng := rand.New(rand.NewSource(7))
	base := randWalk(rng, 20)
	near := base.Clone()
	for i := range near.Points {
		near.Points[i].X += 0.001
	}
	far := randWalk(rng, 20).Translate(0.5, 0.5)
	dNear := m.Dist(base, near)
	dFar := m.Dist(base, far)
	if dNear >= dFar {
		t.Errorf("locality violated: near %v >= far %v", dNear, dFar)
	}
}

func TestTrainReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	trajs := make([]traj.Trajectory, 30)
	for i := range trajs {
		trajs[i] = randWalk(rng, 15)
	}
	model, stats, err := Train(trajs, TrainConfig{Hidden: 8, Epochs: 8, Seed: 3})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if model == nil || len(stats.EpochLoss) != 8 {
		t.Fatalf("unexpected stats: %+v", stats)
	}
	first, last := stats.EpochLoss[0], stats.EpochLoss[len(stats.EpochLoss)-1]
	if !(last < first) {
		t.Errorf("training did not reduce loss: %v -> %v", first, last)
	}
}

func TestTrainEmptyInput(t *testing.T) {
	if _, _, err := Train(nil, TrainConfig{}); err == nil {
		t.Error("expected error training on no data")
	}
}

func TestTrainedModelStillSatisfiesIncrementalContract(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	trajs := make([]traj.Trajectory, 10)
	for i := range trajs {
		trajs[i] = randWalk(rng, 12)
	}
	model, _, err := Train(trajs, TrainConfig{Hidden: 6, Epochs: 2, Seed: 4})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	data, q := trajs[0], trajs[1]
	inc := model.NewIncremental(data, q)
	got := inc.Init(0)
	if want := model.Dist(data.Sub(0, 0), q); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Init = %v, want %v", got, want)
	}
	for j := 1; j < data.Len(); j++ {
		got = inc.Extend()
		if want := model.Dist(data.Sub(0, j), q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Extend to %d = %v, want %v", j, got, want)
		}
	}
}

func TestTokenModelTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	trajs := make([]traj.Trajectory, 25)
	for i := range trajs {
		trajs[i] = randWalk(rng, 15)
	}
	model, stats, err := Train(trajs, TrainConfig{
		Hidden: 8, Epochs: 6, Seed: 3, TokenGrid: 8, EmbedDim: 4,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if model.grid != 8 || model.emb == nil {
		t.Fatal("token model not configured")
	}
	first, last := stats.EpochLoss[0], stats.EpochLoss[len(stats.EpochLoss)-1]
	if !(last < first) {
		t.Errorf("token training did not reduce loss: %v -> %v", first, last)
	}
	// the incremental contract must hold for token models too
	data, q := trajs[0], trajs[1]
	inc := model.NewIncremental(data, q)
	got := inc.Init(0)
	if want := model.Dist(data.Sub(0, 0), q); math.Abs(got-want) > 1e-12 {
		t.Fatalf("token Init = %v, want %v", got, want)
	}
	for j := 1; j < data.Len(); j++ {
		got = inc.Extend()
		if want := model.Dist(data.Sub(0, j), q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("token incremental [0,%d] = %v, want %v", j, got, want)
		}
	}
}

func TestTokenAssignment(t *testing.T) {
	m, _, err := Train([]traj.Trajectory{randWalk(rand.New(rand.NewSource(21)), 10)},
		TrainConfig{Hidden: 4, Epochs: 1, TokenGrid: 4, EmbedDim: 3, Seed: 5})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	b := m.Bounds()
	corner := geo.Point{X: b.MinX, Y: b.MinY}
	if tok := m.Token(corner); tok != 0 {
		t.Errorf("min corner token = %d, want 0", tok)
	}
	far := geo.Point{X: b.MaxX + 100, Y: b.MaxY + 100}
	if tok := m.Token(far); tok != 15 {
		t.Errorf("outside point should clamp to last cell, got %d", tok)
	}
	// coordinate models report -1
	coord := NewRandomModel(4, 1)
	if tok := coord.Token(corner); tok != -1 {
		t.Errorf("coordinate model token = %d, want -1", tok)
	}
}

func TestTokenModelSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	trajs := make([]traj.Trajectory, 5)
	for i := range trajs {
		trajs[i] = randWalk(rng, 12)
	}
	m, _, err := Train(trajs, TrainConfig{Hidden: 4, Epochs: 1, TokenGrid: 4, EmbedDim: 3, Seed: 6})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	a, b := randWalk(rng, 8), randWalk(rng, 6)
	if d1, d2 := m.Dist(a, b), got.Dist(a, b); d1 != d2 {
		t.Errorf("token round trip changed distances: %v vs %v", d1, d2)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := NewRandomModel(8, 11)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	rng := rand.New(rand.NewSource(12))
	a, b := randWalk(rng, 10), randWalk(rng, 7)
	if d1, d2 := m.Dist(a, b), got.Dist(a, b); d1 != d2 {
		t.Errorf("round trip changed distances: %v vs %v", d1, d2)
	}
	if got.Dim() != 8 {
		t.Errorf("Dim = %d, want 8", got.Dim())
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := NewRandomModel(4, 13)
	path := t.TempDir() + "/t2vec.model"
	if err := m.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	tr := traj.FromXY(0.1, 0.2, 0.3, 0.4)
	q := traj.FromXY(0.5, 0.5)
	if m.Dist(tr, q) != got.Dist(tr, q) {
		t.Error("file round trip changed distances")
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("expected error for corrupt model data")
	}
}

func TestRegisteredWithSim(t *testing.T) {
	m, err := sim.ByName("t2vec")
	if err != nil {
		t.Fatalf("ByName(t2vec): %v", err)
	}
	if m.Name() != "t2vec" {
		t.Errorf("Name = %q", m.Name())
	}
	a := traj.FromXY(0.1, 0.1, 0.2, 0.2)
	if d := m.Dist(a, a); d != 0 {
		t.Errorf("registered t2vec self-dist = %v", d)
	}
}

func TestSuffixDistsWorksWithT2vec(t *testing.T) {
	// SuffixDists must agree with reversed-suffix scratch computation for
	// t2vec too (the values differ from forward distances, unlike DTW).
	m := NewRandomModel(8, 1)
	rng := rand.New(rand.NewSource(14))
	data := randWalk(rng, 9)
	q := randWalk(rng, 5)
	got := sim.SuffixDists(m, data, q)
	n := data.Len()
	for i := 0; i < n; i++ {
		want := m.Dist(data.Sub(i, n-1).Reverse(), q.Reverse())
		if math.Abs(got[i]-want) > 1e-9 {
			t.Errorf("SuffixDists[%d] = %v, want %v", i, got[i], want)
		}
	}
}
