package t2vec

import (
	"fmt"
	"math/rand"

	"simsub/internal/geo"
	"simsub/internal/nn"
	"simsub/internal/traj"
)

// TrainConfig controls seq2seq autoencoder training.
type TrainConfig struct {
	// Hidden is the embedding dimensionality (default DefaultHidden).
	Hidden int
	// LR is the Adam learning rate (default 0.001, as in the paper's setup).
	LR float64
	// Epochs is the number of passes over the training trajectories
	// (default 5).
	Epochs int
	// MaxLen truncates training trajectories for bounded BPTT (default 64).
	MaxLen int
	// TokenGrid, when > 0, discretizes points into a TokenGrid×TokenGrid
	// lattice and feeds learned per-cell embeddings to the GRU — the
	// published t2vec's token pipeline. 0 feeds normalized coordinates.
	TokenGrid int
	// EmbedDim is the token-embedding width when TokenGrid > 0 (default 8).
	EmbedDim int
	// Seed seeds all randomness (default 1).
	Seed int64
	// Verbose, when non-nil, receives one progress line per epoch.
	Verbose func(format string, args ...any)
}

func (c *TrainConfig) fill() {
	if c.Hidden == 0 {
		c.Hidden = DefaultHidden
	}
	if c.LR == 0 {
		c.LR = 0.001
	}
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.MaxLen == 0 {
		c.MaxLen = 64
	}
	if c.EmbedDim == 0 {
		c.EmbedDim = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// TrainStats reports training progress.
type TrainStats struct {
	// EpochLoss is the mean reconstruction MSE per epoch.
	EpochLoss []float64
	// Trajectories is the number of training trajectories used.
	Trajectories int
}

// Train fits a t2vec-style model on the given trajectories: a GRU encoder
// embeds each trajectory, and a GRU decoder with a linear output layer
// reconstructs the normalized point sequence from the embedding (teacher
// forcing). The reconstruction loss trains both networks (and, for token
// models, the cell-embedding table); only the encoder side is kept in the
// returned Model.
func Train(trajs []traj.Trajectory, cfg TrainConfig) (*Model, TrainStats, error) {
	cfg.fill()
	if len(trajs) == 0 {
		return nil, TrainStats{}, fmt.Errorf("t2vec: no training trajectories")
	}
	bounds := geo.EmptyRect()
	for _, t := range trajs {
		bounds = bounds.Union(t.MBR())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inDim := 2
	var emb *nn.Tensor
	if cfg.TokenGrid > 0 {
		inDim = cfg.EmbedDim
		emb = nn.NewTensor(cfg.TokenGrid*cfg.TokenGrid, cfg.EmbedDim)
		emb.InitXavier(rng)
	}
	enc := nn.NewGRU(inDim, cfg.Hidden, rng)
	dec := nn.NewGRU(inDim, cfg.Hidden, rng)
	out := nn.NewDense(cfg.Hidden, 2, nn.Linear, rng)

	model := &Model{enc: enc, bounds: bounds, grid: cfg.TokenGrid, emb: emb}
	params := append(append(nn.Params{}, enc.Params()...), dec.Params()...)
	params = append(params, out.Params()...)
	if emb != nil {
		params = append(params, emb)
	}
	opt := nn.NewAdam(params, cfg.LR)
	opt.Clip = 5

	stats := TrainStats{Trajectories: len(trajs)}
	order := rng.Perm(len(trajs))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochLoss float64
		var count int
		for _, idx := range order {
			t := trajs[idx]
			if t.Len() < 2 {
				continue
			}
			n := t.Len()
			if n > cfg.MaxLen {
				n = cfg.MaxLen
			}
			// inputs to the GRUs and coordinate targets for the decoder
			feats := make([][]float64, n)
			targets := make([][]float64, n)
			tokens := make([]int, n)
			for i := 0; i < n; i++ {
				f := make([]float64, inDim)
				model.feature(t.Pt(i), f)
				feats[i] = f
				nx, ny := model.norm(t.Pt(i))
				targets[i] = []float64{nx, ny}
				tokens[i] = model.Token(t.Pt(i))
			}
			// encode
			encRun := enc.NewRun(nil)
			for _, f := range feats {
				encRun.Step(f)
			}
			// decode with teacher forcing: input at step k is the true
			// input k-1 (a zero start token at k=0); target is the
			// normalized coordinates of point k.
			decRun := dec.NewRun(encRun.H())
			dH := make([][]float64, n)
			loss := 0.0
			start := make([]float64, inDim)
			for k := 0; k < n; k++ {
				in := start
				if k > 0 {
					in = feats[k-1]
				}
				h := decRun.Step(in)
				pred := out.Forward(h)
				l, dOut := nn.MSELoss(pred, targets[k])
				loss += l
				dH[k] = out.Backward(dOut)
			}
			var decDX [][]float64
			if emb != nil {
				decDX = make([][]float64, n)
			}
			dh0 := decRun.Backward(dH, decDX)
			// gradient reaches the encoder only through the final hidden state
			dHenc := make([][]float64, encRun.Steps())
			dHenc[encRun.Steps()-1] = dh0
			var encDX [][]float64
			if emb != nil {
				encDX = make([][]float64, encRun.Steps())
			}
			encRun.Backward(dHenc, encDX)
			if emb != nil {
				// route input gradients into the embedding rows: encoder
				// step k consumed token k; decoder step k consumed token
				// k-1 (step 0 consumed the zero start vector)
				for k := 0; k < n; k++ {
					accumEmbGrad(emb, tokens[k], encDX[k])
					if k+1 < n {
						accumEmbGrad(emb, tokens[k], decDX[k+1])
					}
				}
			}
			opt.Step()
			epochLoss += loss / float64(n)
			count++
		}
		if count > 0 {
			epochLoss /= float64(count)
		}
		stats.EpochLoss = append(stats.EpochLoss, epochLoss)
		if cfg.Verbose != nil {
			cfg.Verbose("t2vec epoch %d/%d: reconstruction loss %.6f", epoch+1, cfg.Epochs, epochLoss)
		}
	}
	return model, stats, nil
}

// accumEmbGrad adds an input gradient into the embedding row of a token.
func accumEmbGrad(emb *nn.Tensor, token int, dx []float64) {
	if dx == nil {
		return
	}
	g := emb.G[token*emb.Cols : (token+1)*emb.Cols]
	for i, v := range dx {
		g[i] += v
	}
}
