package t2vec

import (
	"math"

	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// stream carries the encoder hidden state of the pushed point sequence;
// each Push is a single GRU step (Φinc = O(1)).
type stream struct {
	m    *Model
	qEmb []float64
	h    []float64
	x    []float64
	n    int
}

// NewStream implements sim.StreamMeasure.
func (m *Model) NewStream(q traj.Trajectory) sim.Stream {
	return &stream{
		m:    m,
		qEmb: m.queryEmbedding(q),
		h:    make([]float64, m.enc.HiddenDim),
		x:    make([]float64, m.enc.InDim),
	}
}

func (s *stream) Push(p geo.Point) float64 {
	if s.n == 0 {
		for i := range s.h {
			s.h[i] = 0
		}
	}
	s.m.feature(p, s.x)
	s.m.enc.StepInfer(s.h, s.x, s.h)
	s.n++
	var d float64
	for i := range s.h {
		v := s.h[i] - s.qEmb[i]
		d += v * v
	}
	return math.Sqrt(d)
}

func (s *stream) Len() int { return s.n }

func (s *stream) Reset() { s.n = 0 }
