package bench

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"simsub/internal/engine"
	"simsub/internal/geo"
	"simsub/internal/traj"
)

// Serving-path throughput baselines: concurrent top-k QPS through the
// engine across shard counts, with the result cache off (every request
// recomputes) and on (requests drawn from a small working set of queries).
// Future PRs touching the serving path should compare against these.

func servingData(n, pts int, seed int64) []traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]traj.Trajectory, n)
	for i := range ts {
		p := make([]geo.Point, pts)
		x, y := rng.Float64()*10, rng.Float64()*10
		for j := range p {
			x += rng.NormFloat64() * 0.3
			y += rng.NormFloat64() * 0.3
			p[j] = geo.Point{X: x, Y: y, T: float64(j)}
		}
		ts[i] = traj.New(p...)
	}
	return ts
}

func benchEngineTopK(b *testing.B, shards, cacheSize int) {
	eng := engine.New(engine.Config{Shards: shards, CacheSize: cacheSize, Index: engine.ScanAll})
	eng.Add(servingData(400, 24, 7))
	queries := servingData(32, 8, 8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(9))
		for pb.Next() {
			q := queries[rng.Intn(len(queries))]
			_, _, err := eng.TopK(context.Background(), engine.Query{
				Q: q, K: 10, Measure: "dtw", Algorithm: "pss",
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
}

func BenchmarkEngineTopK(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		for _, cache := range []struct {
			name string
			size int
		}{{"cache=off", 0}, {"cache=on", 256}} {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, cache.name), func(b *testing.B) {
				benchEngineTopK(b, shards, cache.size)
			})
		}
	}
}
