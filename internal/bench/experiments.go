package bench

import (
	"fmt"
	"time"

	"simsub/internal/core"
	"simsub/internal/dataset"
	"simsub/internal/metrics"
	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// algoSet builds the approximate-algorithm lineup of Figure 3 for a measure:
// SizeS(ξ=5), PSS, POS, POS-D(5), RLS, RLS-Skip(k=3).
func (s *Suite) algoSet(kind dataset.Kind, measure string, m sim.Measure) ([]core.Algorithm, error) {
	rlsPolicy, _, err := s.Policy(kind, measure, 0, false)
	if err != nil {
		return nil, err
	}
	skipPolicy, _, err := s.Policy(kind, measure, 3, false)
	if err != nil {
		return nil, err
	}
	return []core.Algorithm{
		core.SizeS{M: m, Xi: 5},
		core.PSS{M: m},
		core.POS{M: m},
		core.POSD{M: m, D: 5},
		core.RLS{M: m, Policy: rlsPolicy},
		core.RLS{M: m, Policy: skipPolicy},
	}, nil
}

// effectivenessOver scores algorithms over pairs, returning per-algorithm
// mean effectiveness and mean per-pair search time.
func effectivenessOver(m sim.Measure, pairs []dataset.Pair, algs []core.Algorithm) ([]metrics.Effectiveness, []float64) {
	aggs := make([]metrics.Agg, len(algs))
	timers := make([]metrics.Timer, len(algs))
	rs := make([]core.Result, len(algs))
	for _, p := range pairs {
		for i, a := range algs {
			i, a := i, a
			timers[i].Time(func() { rs[i] = a.Search(p.Data, p.Query) })
		}
		es := metrics.EvaluateMany(m, p.Data, p.Query, rs)
		for i := range es {
			aggs[i].Add(es[i])
		}
	}
	means := make([]metrics.Effectiveness, len(algs))
	times := make([]float64, len(algs))
	for i := range algs {
		means[i] = aggs[i].Mean()
		times[i] = timers[i].MeanMs()
	}
	return means, times
}

// Fig3Effectiveness regenerates one panel of Figure 3: AR, MR and RR of
// every approximate algorithm for the dataset and measure.
func (s *Suite) Fig3Effectiveness(kind dataset.Kind, measure string) (Table, error) {
	m, err := s.Measure(kind, measure)
	if err != nil {
		return Table{}, err
	}
	algs, err := s.algoSet(kind, measure, m)
	if err != nil {
		return Table{}, err
	}
	pairs := s.EffectivenessPairs(kind)
	means, times := effectivenessOver(m, pairs, algs)
	t := Table{
		Title:  fmt.Sprintf("Figure 3: effectiveness on %s (%s), %d pairs", kind, measure, len(pairs)),
		Header: []string{"algorithm", "AR", "MR", "RR", "time"},
	}
	for i, a := range algs {
		t.AddRow(a.Name(), f3(means[i].AR), f1(means[i].MR), pct(means[i].RR), ms(times[i]))
	}
	return t, nil
}

// Fig4Efficiency regenerates one panel of Figures 4/10: top-k query time
// against database size, with or without the R-tree index.
func (s *Suite) Fig4Efficiency(kind dataset.Kind, measure string, withIndex bool) (Table, error) {
	m, err := s.Measure(kind, measure)
	if err != nil {
		return Table{}, err
	}
	algs, err := s.algoSet(kind, measure, m)
	if err != nil {
		return Table{}, err
	}
	algs = append([]core.Algorithm{core.ExactS{M: m}}, algs...)
	full := s.Dataset(kind)
	idxLabel := "no index"
	if withIndex {
		idxLabel = "R-tree index"
	}
	t := Table{
		Title:  fmt.Sprintf("Figure 4: efficiency on %s (%s), %s, top-%d", kind, measure, idxLabel, s.Opts.TopK),
		Header: append([]string{"points"}, algoNames(algs)...),
	}
	queries := dataset.Pairs(full, s.Opts.EffQueries, 2, s.Opts.MaxQueryLen, s.Opts.Seed+29)
	seen := map[int]bool{}
	for _, size := range s.Opts.DBSizes {
		if size > len(full) {
			size = len(full)
		}
		if seen[size] {
			continue // several configured sizes clamped to the dataset size
		}
		seen[size] = true
		db := core.NewDatabase(full[:size], withIndex)
		row := []string{fmt.Sprintf("%d", dataset.TotalPoints(full[:size]))}
		for _, a := range algs {
			start := time.Now()
			for _, qp := range queries {
				db.TopK(a, qp.Query, s.Opts.TopK)
			}
			elapsed := time.Since(start).Seconds() * 1000 / float64(len(queries))
			row = append(row, ms(elapsed))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "cell = mean wall-clock per top-k query")
	return t, nil
}

func algoNames(algs []core.Algorithm) []string {
	out := make([]string, len(algs))
	for i, a := range algs {
		out[i] = a.Name()
	}
	return out
}

// Fig5QueryLenEffectiveness regenerates Figures 5/11: effectiveness per
// query-length group G1..G4.
func (s *Suite) Fig5QueryLenEffectiveness(kind dataset.Kind, measure string) (Table, error) {
	m, err := s.Measure(kind, measure)
	if err != nil {
		return Table{}, err
	}
	algs, err := s.algoSet(kind, measure, m)
	if err != nil {
		return Table{}, err
	}
	ts := s.Dataset(kind)
	t := Table{
		Title:  fmt.Sprintf("Figure 5: RR by query length on %s (%s)", kind, measure),
		Header: append([]string{"group"}, algoNames(algs)...),
	}
	perGroup := s.Opts.Pairs / 2
	if perGroup < 5 {
		perGroup = 5
	}
	for _, g := range dataset.PaperGroups() {
		pairs := dataset.GroupPairs(ts, g, perGroup, s.Opts.Seed+31)
		if len(pairs) == 0 {
			t.AddRow(g.Name, "n/a")
			continue
		}
		means, _ := effectivenessOver(m, pairs, algs)
		row := []string{fmt.Sprintf("%s[%d,%d)", g.Name, g.Lo, g.Hi)}
		for i := range algs {
			row = append(row, pct(means[i].RR))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig6QueryLenEfficiency regenerates Figure 6: mean per-pair search time per
// query-length group.
func (s *Suite) Fig6QueryLenEfficiency(kind dataset.Kind, measure string) (Table, error) {
	m, err := s.Measure(kind, measure)
	if err != nil {
		return Table{}, err
	}
	algs, err := s.algoSet(kind, measure, m)
	if err != nil {
		return Table{}, err
	}
	ts := s.Dataset(kind)
	t := Table{
		Title:  fmt.Sprintf("Figure 6: search time by query length on %s (%s)", kind, measure),
		Header: append([]string{"group"}, algoNames(algs)...),
	}
	perGroup := s.Opts.Pairs
	for _, g := range dataset.PaperGroups() {
		pairs := dataset.GroupPairs(ts, g, perGroup, s.Opts.Seed+37)
		if len(pairs) == 0 {
			t.AddRow(g.Name, "n/a")
			continue
		}
		row := []string{fmt.Sprintf("%s[%d,%d)", g.Name, g.Lo, g.Hi)}
		for _, a := range algs {
			var tm metrics.Timer
			for _, p := range pairs {
				p := p
				tm.Time(func() { a.Search(p.Data, p.Query) })
			}
			row = append(row, ms(tm.MeanMs()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table5SkipK regenerates Table 5: the effect of the skip parameter k on
// RLS-Skip (AR, MR, RR, time, fraction of skipped points).
func (s *Suite) Table5SkipK(kind dataset.Kind, measure string, ks []int) (Table, error) {
	m, err := s.Measure(kind, measure)
	if err != nil {
		return Table{}, err
	}
	if len(ks) == 0 {
		ks = []int{0, 1, 2, 3, 4, 5}
	}
	pairs := s.EffectivenessPairs(kind)
	t := Table{
		Title:  fmt.Sprintf("Table 5: effect of skipping steps k on %s (%s)", kind, measure),
		Header: []string{"k", "AR", "MR", "RR", "time", "skip pts"},
	}
	for _, k := range ks {
		p, _, err := s.Policy(kind, measure, k, false)
		if err != nil {
			return Table{}, err
		}
		alg := core.RLS{M: m, Policy: p}
		var agg metrics.Agg
		var tm metrics.Timer
		var skipSum float64
		var r core.Result
		for _, pair := range pairs {
			pair := pair
			tm.Time(func() { r = alg.Search(pair.Data, pair.Query) })
			agg.Add(metrics.Evaluate(m, pair.Data, pair.Query, r))
			skipSum += core.SkippedFraction(m, p, pair.Data, pair.Query)
		}
		mean := agg.Mean()
		t.AddRow(fmt.Sprintf("%d", k), f3(mean.AR), f1(mean.MR), pct(mean.RR),
			ms(tm.MeanMs()), pct(skipSum/float64(len(pairs))))
	}
	return t, nil
}

// Fig7SizeSXi regenerates Figures 7/12: the effect of SizeS's soft margin ξ
// on effectiveness and time, with ExactS as the reference row.
func (s *Suite) Fig7SizeSXi(kind dataset.Kind, measure string, xis []int) (Table, error) {
	m, err := s.Measure(kind, measure)
	if err != nil {
		return Table{}, err
	}
	if len(xis) == 0 {
		xis = []int{0, 1, 2, 4, 8, 16}
	}
	pairs := s.EffectivenessPairs(kind)
	t := Table{
		Title:  fmt.Sprintf("Figure 7: effect of soft margin xi for SizeS on %s (%s)", kind, measure),
		Header: []string{"xi", "AR", "MR", "RR", "time"},
	}
	algs := make([]core.Algorithm, 0, len(xis)+1)
	for _, xi := range xis {
		algs = append(algs, core.SizeS{M: m, Xi: xi})
	}
	algs = append(algs, core.ExactS{M: m})
	means, times := effectivenessOver(m, pairs, algs)
	for i, xi := range xis {
		t.AddRow(fmt.Sprintf("%d", xi), f3(means[i].AR), f1(means[i].MR), pct(means[i].RR), ms(times[i]))
	}
	last := len(algs) - 1
	t.AddRow("ExactS", f3(means[last].AR), f1(means[last].MR), pct(means[last].RR), ms(times[last]))
	return t, nil
}

// Table6SimTra regenerates Table 6: whole-trajectory similarity search
// (SimTra) against SimSub (RLS) across datasets and measures.
func (s *Suite) Table6SimTra(kinds []dataset.Kind) (Table, error) {
	if len(kinds) == 0 {
		kinds = []dataset.Kind{dataset.Porto, dataset.Harbin, dataset.Sports}
	}
	t := Table{
		Title:  "Table 6: SimTra vs SimSub (RLS)",
		Header: []string{"dataset", "measure", "problem", "AR", "MR", "RR", "time"},
	}
	for _, kind := range kinds {
		for _, mn := range MeasureNames() {
			m, err := s.Measure(kind, mn)
			if err != nil {
				return Table{}, err
			}
			p, _, err := s.Policy(kind, mn, 0, false)
			if err != nil {
				return Table{}, err
			}
			pairs := s.EffectivenessPairs(kind)
			algs := []core.Algorithm{core.SimTra{M: m}, core.RLS{M: m, Policy: p}}
			means, times := effectivenessOver(m, pairs, algs)
			labels := []string{"SimTra", "SimSub"}
			for i := range algs {
				t.AddRow(kind.String(), mn, labels[i],
					f3(means[i].AR), f1(means[i].MR), pct(means[i].RR), ms(times[i]))
			}
		}
	}
	return t, nil
}

// Fig8UCRSpring regenerates Figures 8/13: UCR and Spring under varying band
// width R, against RLS-Skip+ (suffix dropped, k=3).
func (s *Suite) Fig8UCRSpring(kind dataset.Kind, bands []float64) (Table, error) {
	m := sim.DTW{} // UCR and Spring are DTW-specific
	if len(bands) == 0 {
		bands = []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	}
	p, _, err := s.Policy(kind, "dtw", 3, true)
	if err != nil {
		return Table{}, err
	}
	pairs := s.EffectivenessPairs(kind)
	t := Table{
		Title:  fmt.Sprintf("Figure 8: UCR and Spring vs RLS-Skip+ on %s (DTW)", kind),
		Header: []string{"method", "R", "AR", "MR", "RR", "time"},
	}
	addRow := func(label, r string, alg core.Algorithm) {
		means, times := effectivenessOver(m, pairs, []core.Algorithm{alg})
		t.AddRow(label, r, f3(means[0].AR), f1(means[0].MR), pct(means[0].RR), ms(times[0]))
	}
	addRow("RLS-Skip+", "-", core.RLS{M: m, Policy: p})
	for _, r := range bands {
		addRow("UCR", f3(r), core.UCR{Band: r})
	}
	for _, r := range bands {
		addRow("Spring", f3(r), core.Spring{Band: r})
	}
	return t, nil
}

// Fig9RandomS regenerates Figures 9/14: Random-S under varying sample size,
// against RLS-Skip.
func (s *Suite) Fig9RandomS(kind dataset.Kind, sizes []int) (Table, error) {
	m := sim.DTW{}
	if len(sizes) == 0 {
		sizes = []int{10, 20, 50, 100}
	}
	p, _, err := s.Policy(kind, "dtw", 3, false)
	if err != nil {
		return Table{}, err
	}
	pairs := s.EffectivenessPairs(kind)
	t := Table{
		Title:  fmt.Sprintf("Figure 9: Random-S vs RLS-Skip on %s (DTW)", kind),
		Header: []string{"method", "samples", "AR", "MR", "RR", "time"},
	}
	algs := []core.Algorithm{core.RLS{M: m, Policy: p}}
	labels := []string{"RLS-Skip"}
	params := []string{"-"}
	for _, sz := range sizes {
		algs = append(algs, core.RandomS{M: m, Samples: sz, Seed: s.Opts.Seed})
		labels = append(labels, "Random-S")
		params = append(params, fmt.Sprintf("%d", sz))
	}
	means, times := effectivenessOver(m, pairs, algs)
	for i := range algs {
		t.AddRow(labels[i], params[i], f3(means[i].AR), f1(means[i].MR), pct(means[i].RR), ms(times[i]))
	}
	return t, nil
}

// Table7TrainingTime regenerates Table 7: DQN training time for RLS and
// RLS-Skip per dataset and measure (at the suite's scaled-down episode
// count).
func (s *Suite) Table7TrainingTime(kinds []dataset.Kind) (Table, error) {
	if len(kinds) == 0 {
		kinds = []dataset.Kind{dataset.Porto, dataset.Harbin, dataset.Sports}
	}
	t := Table{
		Title:  "Table 7: policy training time",
		Header: []string{"dataset", "measure", "RLS", "RLS-Skip"},
		Notes: []string{
			fmt.Sprintf("%d episodes per policy (paper trains on 25k pairs for hours)", s.Opts.Episodes),
		},
	}
	for _, kind := range kinds {
		for _, mn := range MeasureNames() {
			_, d0, err := s.Policy(kind, mn, 0, false)
			if err != nil {
				return Table{}, err
			}
			_, d3, err := s.Policy(kind, mn, 3, false)
			if err != nil {
				return Table{}, err
			}
			t.AddRow(kind.String(), mn, d0.Round(time.Millisecond).String(), d3.Round(time.Millisecond).String())
		}
	}
	return t, nil
}

// AblationDelay sweeps POS-D's delay parameter D (a DESIGN.md ablation).
func (s *Suite) AblationDelay(kind dataset.Kind, measure string, ds []int) (Table, error) {
	m, err := s.Measure(kind, measure)
	if err != nil {
		return Table{}, err
	}
	if len(ds) == 0 {
		ds = []int{0, 1, 3, 5, 7, 10}
	}
	pairs := s.EffectivenessPairs(kind)
	algs := make([]core.Algorithm, len(ds))
	for i, d := range ds {
		algs[i] = core.POSD{M: m, D: d}
	}
	means, times := effectivenessOver(m, pairs, algs)
	t := Table{
		Title:  fmt.Sprintf("Ablation: POS-D delay on %s (%s)", kind, measure),
		Header: []string{"D", "AR", "MR", "RR", "time"},
	}
	for i, d := range ds {
		t.AddRow(fmt.Sprintf("%d", d), f3(means[i].AR), f1(means[i].MR), pct(means[i].RR), ms(times[i]))
	}
	return t, nil
}

// AblationIncremental contrasts ExactS's incremental similarity maintenance
// with recomputation from scratch, validating the Φinc analysis of §4.1.
func (s *Suite) AblationIncremental(kind dataset.Kind, measure string) (Table, error) {
	m, err := s.Measure(kind, measure)
	if err != nil {
		return Table{}, err
	}
	pairs := s.EffectivenessPairs(kind)
	var incT, scratchT metrics.Timer
	for _, p := range pairs {
		p := p
		incT.Time(func() { (core.ExactS{M: m}).Search(p.Data, p.Query) })
		scratchT.Time(func() { exactFromScratch(m, p.Data, p.Query) })
	}
	t := Table{
		Title:  fmt.Sprintf("Ablation: incremental vs from-scratch ExactS on %s (%s)", kind, measure),
		Header: []string{"variant", "time"},
	}
	t.AddRow("incremental (Alg. 1)", ms(incT.MeanMs()))
	t.AddRow("from scratch", ms(scratchT.MeanMs()))
	return t, nil
}

// exactFromScratch is the strawman exact search recomputing every
// subtrajectory distance from scratch: O(n²·Φ).
func exactFromScratch(m sim.Measure, t, q traj.Trajectory) core.Result {
	n := t.Len()
	best := core.Result{Dist: float64(1<<62) * 1e18}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if d := m.Dist(t.Sub(i, j), q); d < best.Dist {
				best.Dist = d
				best.Interval = traj.Interval{I: i, J: j}
			}
		}
	}
	return best
}

// AblationSkipState contrasts RLS-Skip's simplified state maintenance with
// full-state maintenance at the same skip policy (§5.4's design argument).
func (s *Suite) AblationSkipState(kind dataset.Kind, measure string) (Table, error) {
	m, err := s.Measure(kind, measure)
	if err != nil {
		return Table{}, err
	}
	p, _, err := s.Policy(kind, measure, 3, false)
	if err != nil {
		return Table{}, err
	}
	full := *p
	full.SimplifyState = false
	pairs := s.EffectivenessPairs(kind)
	algs := []core.Algorithm{
		core.RLS{M: m, Policy: p},
		core.RLS{M: m, Policy: &full},
	}
	means, times := effectivenessOver(m, pairs, algs)
	t := Table{
		Title:  fmt.Sprintf("Ablation: RLS-Skip state maintenance on %s (%s)", kind, measure),
		Header: []string{"state", "AR", "MR", "RR", "time"},
	}
	labels := []string{"simplified (paper §5.4)", "full"}
	for i := range algs {
		t.AddRow(labels[i], f3(means[i].AR), f1(means[i].MR), pct(means[i].RR), ms(times[i]))
	}
	return t, nil
}

// FutureWorkCDTW explores the constrained DTW distance for SimSub, the
// measurement the paper's conclusion names as future work. CDTW has no
// O(m) incremental extension (the band depends on the subtrajectory
// length), so the table contrasts ExactS and SizeS under CDTW with the
// unconstrained-DTW baseline: the effectiveness gap shows how much the
// band changes the answer, the time gap what the missing Φinc costs.
func (s *Suite) FutureWorkCDTW(kind dataset.Kind, r float64) (Table, error) {
	pairs := s.EffectivenessPairs(kind)
	if len(pairs) > 10 {
		pairs = pairs[:10] // CDTW's Φinc = Φ makes enumeration expensive
	}
	t := Table{
		Title:  fmt.Sprintf("Future work: constrained DTW (R=%.2f) on %s", r, kind),
		Header: []string{"measure", "algorithm", "AR", "MR", "RR", "time"},
		Notes:  []string{"CDTW has no O(m) incremental extension; ExactS pays Φ per step"},
	}
	for _, mrow := range []struct {
		name string
		m    sim.Measure
	}{{"dtw", sim.DTW{}}, {"cdtw", sim.CDTW{R: r}}} {
		algs := []core.Algorithm{
			core.ExactS{M: mrow.m},
			core.SizeS{M: mrow.m, Xi: 5},
		}
		means, times := effectivenessOver(mrow.m, pairs, algs)
		for i, a := range algs {
			t.AddRow(mrow.name, a.Name(), f3(means[i].AR), f1(means[i].MR), pct(means[i].RR), ms(times[i]))
		}
	}
	return t, nil
}

// policyFor exposes suite policies to external callers (the public API and
// examples) without re-training.
func (s *Suite) PolicyFor(kind dataset.Kind, measure string, k int) (*rl.Policy, error) {
	p, _, err := s.Policy(kind, measure, k, false)
	return p, err
}
