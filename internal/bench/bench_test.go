package bench

import (
	"strings"
	"testing"

	"simsub/internal/dataset"
)

// tinySuite returns a suite scaled for fast unit testing.
func tinySuite() *Suite {
	return NewSuite(Options{
		Pairs:       6,
		DatasetN:    40,
		DBSizes:     []int{10, 20},
		EffQueries:  2,
		TopK:        5,
		Episodes:    15,
		TrainPool:   10,
		T2vecEpochs: 1,
		MaxQueryLen: 12,
		Seed:        1,
	})
}

func TestTableFormat(t *testing.T) {
	tb := Table{Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.Notes = append(tb.Notes, "hello")
	out := tb.Format()
	for _, want := range []string{"== demo ==", "a", "bb", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestSuiteDatasetCaching(t *testing.T) {
	s := tinySuite()
	a := s.Dataset(dataset.Porto)
	b := s.Dataset(dataset.Porto)
	if &a[0] != &b[0] {
		t.Error("dataset not cached")
	}
	if len(a) != 40 {
		t.Errorf("dataset size %d", len(a))
	}
}

func TestSuiteMeasures(t *testing.T) {
	s := tinySuite()
	for _, name := range MeasureNames() {
		m, err := s.Measure(dataset.Porto, name)
		if err != nil {
			t.Fatalf("Measure(%s): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("measure name %q, want %q", m.Name(), name)
		}
	}
	if _, err := s.Measure(dataset.Porto, "nope"); err == nil {
		t.Error("expected error for unknown measure")
	}
	// t2vec model cached per dataset
	m1, _ := s.Measure(dataset.Porto, "t2vec")
	m2, _ := s.Measure(dataset.Porto, "t2vec")
	if m1 != m2 {
		t.Error("t2vec model not cached")
	}
}

func TestSuitePolicyCaching(t *testing.T) {
	s := tinySuite()
	p1, d1, err := s.Policy(dataset.Porto, "dtw", 0, false)
	if err != nil {
		t.Fatalf("Policy: %v", err)
	}
	p2, d2, err := s.Policy(dataset.Porto, "dtw", 0, false)
	if err != nil {
		t.Fatalf("Policy: %v", err)
	}
	if p1 != p2 || d1 != d2 {
		t.Error("policy not cached")
	}
	if p1.K != 0 || !p1.UseSuffix {
		t.Errorf("policy shape %+v", p1)
	}
	// t2vec policies drop the suffix component
	pt, _, err := s.Policy(dataset.Porto, "t2vec", 0, false)
	if err != nil {
		t.Fatalf("Policy t2vec: %v", err)
	}
	if pt.UseSuffix {
		t.Error("t2vec policy should not use the suffix component")
	}
}

func TestFig3Effectiveness(t *testing.T) {
	s := tinySuite()
	tb, err := s.Fig3Effectiveness(dataset.Porto, "dtw")
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("got %d algorithm rows, want 6:\n%s", len(tb.Rows), tb.Format())
	}
	names := []string{"SizeS", "PSS", "POS", "POS-D", "RLS", "RLS-Skip"}
	for i, row := range tb.Rows {
		if row[0] != names[i] {
			t.Errorf("row %d is %q, want %q", i, row[0], names[i])
		}
	}
}

func TestFig4Efficiency(t *testing.T) {
	s := tinySuite()
	for _, withIndex := range []bool{false, true} {
		tb, err := s.Fig4Efficiency(dataset.Porto, "dtw", withIndex)
		if err != nil {
			t.Fatalf("Fig4(index=%v): %v", withIndex, err)
		}
		if len(tb.Rows) != len(s.Opts.DBSizes) {
			t.Errorf("got %d size rows, want %d", len(tb.Rows), len(s.Opts.DBSizes))
		}
		// ExactS column plus the six approximate algorithms
		if len(tb.Header) != 8 {
			t.Errorf("header %v", tb.Header)
		}
	}
}

func TestFig5AndFig6(t *testing.T) {
	// length groups need long trajectories; use Harbin (mean 120)
	s := tinySuite()
	s.Opts.MaxQueryLen = 90
	tb5, err := s.Fig5QueryLenEffectiveness(dataset.Harbin, "dtw")
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(tb5.Rows) != 4 {
		t.Errorf("Fig5 rows %d, want 4 groups", len(tb5.Rows))
	}
	tb6, err := s.Fig6QueryLenEfficiency(dataset.Harbin, "dtw")
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(tb6.Rows) != 4 {
		t.Errorf("Fig6 rows %d, want 4 groups", len(tb6.Rows))
	}
}

func TestTable5SkipK(t *testing.T) {
	s := tinySuite()
	tb, err := s.Table5SkipK(dataset.Porto, "dtw", []int{0, 2})
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows %d, want 2", len(tb.Rows))
	}
	if tb.Rows[0][0] != "0" || tb.Rows[1][0] != "2" {
		t.Errorf("k column wrong: %v", tb.Rows)
	}
}

func TestFig7SizeSXi(t *testing.T) {
	s := tinySuite()
	tb, err := s.Fig7SizeSXi(dataset.Porto, "dtw", []int{0, 2, 4})
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	// three xi rows plus the ExactS reference
	if len(tb.Rows) != 4 {
		t.Fatalf("rows %d, want 4", len(tb.Rows))
	}
	if tb.Rows[3][0] != "ExactS" {
		t.Errorf("last row %v, want ExactS reference", tb.Rows[3])
	}
}

func TestTable6SimTra(t *testing.T) {
	s := tinySuite()
	tb, err := s.Table6SimTra([]dataset.Kind{dataset.Porto})
	if err != nil {
		t.Fatalf("Table6: %v", err)
	}
	// one dataset × three measures × two problems
	if len(tb.Rows) != 6 {
		t.Fatalf("rows %d, want 6", len(tb.Rows))
	}
}

func TestFig8UCRSpring(t *testing.T) {
	s := tinySuite()
	tb, err := s.Fig8UCRSpring(dataset.Porto, []float64{0.2, 1})
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	// RLS-Skip+ row plus 2 UCR rows plus 2 Spring rows
	if len(tb.Rows) != 5 {
		t.Fatalf("rows %d, want 5:\n%s", len(tb.Rows), tb.Format())
	}
	if tb.Rows[0][0] != "RLS-Skip+" {
		t.Errorf("first row %v", tb.Rows[0])
	}
}

func TestFig9RandomS(t *testing.T) {
	s := tinySuite()
	tb, err := s.Fig9RandomS(dataset.Porto, []int{5, 20})
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d, want 3", len(tb.Rows))
	}
}

func TestTable7TrainingTime(t *testing.T) {
	s := tinySuite()
	tb, err := s.Table7TrainingTime([]dataset.Kind{dataset.Porto})
	if err != nil {
		t.Fatalf("Table7: %v", err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d, want 3 measures", len(tb.Rows))
	}
}

func TestFutureWorkCDTW(t *testing.T) {
	s := tinySuite()
	tb, err := s.FutureWorkCDTW(dataset.Porto, 0.25)
	if err != nil {
		t.Fatalf("FutureWorkCDTW: %v", err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows %d, want 4:\n%s", len(tb.Rows), tb.Format())
	}
}

func TestAblations(t *testing.T) {
	s := tinySuite()
	if tb, err := s.AblationDelay(dataset.Porto, "dtw", []int{0, 5}); err != nil || len(tb.Rows) != 2 {
		t.Errorf("AblationDelay: %v rows=%d", err, len(tb.Rows))
	}
	if tb, err := s.AblationIncremental(dataset.Porto, "dtw"); err != nil || len(tb.Rows) != 2 {
		t.Errorf("AblationIncremental: %v", err)
	}
	if tb, err := s.AblationSkipState(dataset.Porto, "dtw"); err != nil || len(tb.Rows) != 2 {
		t.Errorf("AblationSkipState: %v", err)
	}
}
