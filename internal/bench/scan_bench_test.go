package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"

	"simsub/internal/core"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// Scan hot-path benchmarks: pruned (threshold pipeline) versus unpruned
// top-k scans over a 1000-trajectory store, k=10. Besides the usual
// testing.B metrics, every run records ns/op, allocs/op and prune ratios
// into BENCH_scan.json (override the path with BENCH_SCAN_OUT) so CI can
// diff the hot path machine-readably:
//
//	go test ./internal/bench -run '^$' -bench BenchmarkScan -benchtime 1x

type scanBenchResult struct {
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	Candidates     int64   `json:"candidates"`
	LBSkipped      int64   `json:"lb_skipped"`
	EarlyAbandoned int64   `json:"early_abandoned"`
	PruneRatio     float64 `json:"prune_ratio"`
}

var (
	scanMu      sync.Mutex
	scanResults = map[string]scanBenchResult{}
)

// unprunedScanTopK is the pre-threshold-pipeline scan: every candidate
// fully searched, heap-selected.
func unprunedScanTopK(db *core.Database, alg core.Algorithm, q traj.Trajectory, k int) []core.Match {
	var all []core.Match
	_ = db.ScanFilteredCtx(context.Background(), alg, q, nil, func(m core.Match) error {
		all = append(all, m)
		return nil
	})
	sort.Slice(all, func(i, j int) bool {
		return core.RankBefore(all[i].Result.Dist, all[i].TrajIndex, all[i].Result.Interval,
			all[j].Result.Dist, all[j].TrajIndex, all[j].Result.Interval)
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func benchScan(b *testing.B, measure, algorithm string, pruned bool) {
	m, err := sim.ByName(measure)
	if err != nil {
		b.Fatal(err)
	}
	alg, ok := core.AlgorithmFor(algorithm, m)
	if !ok {
		b.Fatalf("unknown algorithm %q", algorithm)
	}
	db := core.NewDatabase(servingData(1000, 24, 7), false)
	q := servingData(1, 9, 8)[0]
	const k = 10

	var st core.PruneStats
	var m0, m1 runtime.MemStats
	b.ReportAllocs()
	runtime.GC()
	runtime.ReadMemStats(&m0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pruned {
			if _, err := db.TopKPrunedCtx(context.Background(), alg, q, k, nil, nil, &st); err != nil {
				b.Fatal(err)
			}
		} else {
			unprunedScanTopK(db, alg, q, k)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&m1)

	res := scanBenchResult{
		NsPerOp:        float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		AllocsPerOp:    float64(m1.Mallocs-m0.Mallocs) / float64(b.N),
		Candidates:     st.Candidates,
		LBSkipped:      st.LBSkipped,
		EarlyAbandoned: st.Abandoned,
	}
	if st.Candidates > 0 {
		res.PruneRatio = float64(st.LBSkipped+st.Abandoned) / float64(st.Candidates)
		b.ReportMetric(res.PruneRatio, "pruned/cand")
	}
	mode := "unpruned"
	if pruned {
		mode = "pruned"
	}
	scanMu.Lock()
	scanResults[fmt.Sprintf("%s/%s/%s", measure, algorithm, mode)] = res
	scanMu.Unlock()
}

func BenchmarkScan(b *testing.B) {
	for _, tc := range []struct{ measure, algorithm string }{
		{"dtw", "exacts"}, {"dtw", "pss"}, {"frechet", "exacts"}, {"edr", "pss"},
	} {
		for _, mode := range []string{"unpruned", "pruned"} {
			b.Run(fmt.Sprintf("%s/%s/%s", tc.measure, tc.algorithm, mode), func(b *testing.B) {
				benchScan(b, tc.measure, tc.algorithm, mode == "pruned")
			})
		}
	}
}

// writeScanJSON dumps the collected scan benchmark results; called from
// TestMain so a single file covers every sub-benchmark of the run.
func writeScanJSON() {
	scanMu.Lock()
	defer scanMu.Unlock()
	if len(scanResults) == 0 {
		return
	}
	path := os.Getenv("BENCH_SCAN_OUT")
	if path == "" {
		path = "BENCH_scan.json"
	}
	data, err := json.MarshalIndent(scanResults, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal scan results: %v\n", err)
		return
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", path, err)
		return
	}
	fmt.Printf("scan benchmark results written to %s\n", path)
}

func TestMain(m *testing.M) {
	code := m.Run()
	writeScanJSON()
	writeRLSJSON()
	writeIngestJSON()
	writeANNJSON()
	os.Exit(code)
}
