package bench

import (
	"fmt"
	"sync"
	"time"

	"simsub/internal/dataset"
	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/t2vec"
	"simsub/internal/traj"
)

// Options scales the experiment suite. The paper runs 10,000 pairs over
// millions of trajectories on a GPU server; the defaults here are
// laptop-scale and every knob can be raised toward paper scale.
type Options struct {
	// Pairs is the number of (data, query) pairs per effectiveness
	// experiment (paper: 10,000; default 30).
	Pairs int
	// DatasetN is the number of trajectories generated per dataset
	// (default 150).
	DatasetN int
	// DBSizes are the database sizes (in trajectories) of the efficiency
	// sweep (default 50, 100, 200, 400).
	DBSizes []int
	// EffQueries is the number of queries averaged per efficiency point
	// (paper: 10; default 3).
	EffQueries int
	// TopK is the k of the efficiency top-k query (paper: 50).
	TopK int
	// Episodes is the DQN training episode count per policy (default 150).
	Episodes int
	// TrainPool is the number of trajectories in each RL training pool
	// (default 60).
	TrainPool int
	// T2vecEpochs trains the t2vec encoder (default 3).
	T2vecEpochs int
	// MaxQueryLen clips query trajectories in effectiveness pairs to keep
	// exact-ranking evaluation affordable (0 = no clipping; default 40).
	MaxQueryLen int
	// Seed seeds everything (default 1).
	Seed int64
	// Verbose, when non-nil, receives progress lines.
	Verbose func(format string, args ...any)
}

func (o *Options) fill() {
	if o.Pairs == 0 {
		o.Pairs = 30
	}
	if o.DatasetN == 0 {
		o.DatasetN = 150
	}
	if len(o.DBSizes) == 0 {
		o.DBSizes = []int{50, 100, 200, 400}
	}
	if o.EffQueries == 0 {
		o.EffQueries = 3
	}
	if o.TopK == 0 {
		o.TopK = 50
	}
	if o.Episodes == 0 {
		o.Episodes = 150
	}
	if o.TrainPool == 0 {
		o.TrainPool = 60
	}
	if o.T2vecEpochs == 0 {
		o.T2vecEpochs = 3
	}
	if o.MaxQueryLen == 0 {
		o.MaxQueryLen = 40
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Suite caches datasets, trained t2vec models and trained DQN policies
// across experiments. It is safe for concurrent use.
type Suite struct {
	Opts Options

	mu        sync.Mutex
	datasets  map[dataset.Kind][]traj.Trajectory
	t2vecs    map[dataset.Kind]*t2vec.Model
	policies  map[policyKey]*rl.Policy
	trainTime map[policyKey]time.Duration
}

type policyKey struct {
	kind      dataset.Kind
	measure   string
	k         int
	useSuffix bool
}

// NewSuite builds a suite with the given options (zero values filled with
// defaults).
func NewSuite(opts Options) *Suite {
	opts.fill()
	return &Suite{
		Opts:      opts,
		datasets:  map[dataset.Kind][]traj.Trajectory{},
		t2vecs:    map[dataset.Kind]*t2vec.Model{},
		policies:  map[policyKey]*rl.Policy{},
		trainTime: map[policyKey]time.Duration{},
	}
}

func (s *Suite) logf(format string, args ...any) {
	if s.Opts.Verbose != nil {
		s.Opts.Verbose(format, args...)
	}
}

// Dataset returns (generating once) the synthetic database for a kind.
func (s *Suite) Dataset(kind dataset.Kind) []traj.Trajectory {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ts, ok := s.datasets[kind]; ok {
		return ts
	}
	s.logf("generating %s dataset (%d trajectories)", kind, s.Opts.DatasetN)
	ts := dataset.Generate(dataset.Config{Kind: kind, N: s.Opts.DatasetN, Seed: s.Opts.Seed})
	s.datasets[kind] = ts
	return ts
}

// MeasureNames lists the three measures of the paper's evaluation.
func MeasureNames() []string { return []string{"t2vec", "dtw", "frechet"} }

// Measure returns the measure instance for a dataset: DTW and Fréchet are
// stateless; t2vec is trained once per dataset on its trajectories.
func (s *Suite) Measure(kind dataset.Kind, name string) (sim.Measure, error) {
	switch name {
	case "dtw":
		return sim.DTW{}, nil
	case "frechet":
		return sim.Frechet{}, nil
	case "t2vec":
		return s.t2vecModel(kind)
	}
	return nil, fmt.Errorf("bench: unknown measure %q", name)
}

func (s *Suite) t2vecModel(kind dataset.Kind) (*t2vec.Model, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.t2vecs[kind]; ok {
		return m, nil
	}
	ts, ok := s.datasets[kind]
	if !ok {
		ts = dataset.Generate(dataset.Config{Kind: kind, N: s.Opts.DatasetN, Seed: s.Opts.Seed})
		s.datasets[kind] = ts
	}
	train := ts
	if len(train) > 100 {
		train = train[:100]
	}
	s.logf("training t2vec on %s (%d trajectories, %d epochs)", kind, len(train), s.Opts.T2vecEpochs)
	m, _, err := t2vec.Train(train, t2vec.TrainConfig{
		Hidden: 16, Epochs: s.Opts.T2vecEpochs, Seed: s.Opts.Seed, MaxLen: 48,
	})
	if err != nil {
		return nil, err
	}
	s.t2vecs[kind] = m
	return m, nil
}

// UseSuffixFor mirrors the paper's configuration: the Θsuf state component
// is dropped for t2vec (§6.1) because reversed-suffix similarity is only
// approximate there.
func UseSuffixFor(measure string) bool { return measure != "t2vec" }

// Policy returns (training once) a DQN policy for the dataset, measure and
// skip parameter k. useSuffix follows UseSuffixFor unless overridden with
// forceNoSuffix (for RLS-Skip+).
func (s *Suite) Policy(kind dataset.Kind, measure string, k int, forceNoSuffix bool) (*rl.Policy, time.Duration, error) {
	useSuffix := UseSuffixFor(measure) && !forceNoSuffix
	key := policyKey{kind: kind, measure: measure, k: k, useSuffix: useSuffix}
	s.mu.Lock()
	if p, ok := s.policies[key]; ok {
		d := s.trainTime[key]
		s.mu.Unlock()
		return p, d, nil
	}
	s.mu.Unlock()

	m, err := s.Measure(kind, measure)
	if err != nil {
		return nil, 0, err
	}
	ts := s.Dataset(kind)
	pool := s.Opts.TrainPool
	if pool > len(ts) {
		pool = len(ts)
	}
	pairs := dataset.Pairs(ts, pool, 0, s.Opts.MaxQueryLen, s.Opts.Seed+int64(100*k))
	data := make([]traj.Trajectory, len(pairs))
	queries := make([]traj.Trajectory, len(pairs))
	for i, p := range pairs {
		data[i] = p.Data
		queries[i] = p.Query
	}
	s.logf("training policy %s/%s k=%d suffix=%v (%d episodes)", kind, measure, k, useSuffix, s.Opts.Episodes)
	p, stats, err := rl.Train(data, queries, m, rl.Config{
		K:             k,
		UseSuffix:     useSuffix,
		SimplifyState: k > 0,
		Episodes:      s.Opts.Episodes,
		Seed:          s.Opts.Seed + int64(k) + 7,
	})
	if err != nil {
		return nil, 0, err
	}
	s.mu.Lock()
	s.policies[key] = p
	s.trainTime[key] = stats.Duration
	s.mu.Unlock()
	return p, stats.Duration, nil
}

// EffectivenessPairs returns the evaluation pairs for a dataset.
func (s *Suite) EffectivenessPairs(kind dataset.Kind) []dataset.Pair {
	return dataset.Pairs(s.Dataset(kind), s.Opts.Pairs, 2, s.Opts.MaxQueryLen, s.Opts.Seed+13)
}
