// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§6 and Appendix D) on the synthetic
// datasets, at configurable scale. DESIGN.md maps each experiment id to the
// function here that produces it.
package bench

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes carry caveats (scaling, substitutions) printed under the table.
	Notes []string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Format renders the table as aligned monospaced text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f3 formats a float with 3 decimals; f1 with 1; pct as a percentage.
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func ms(v float64) string  { return fmt.Sprintf("%.2fms", v) }
