package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"simsub/internal/core"
	"simsub/internal/dataset"
	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// Learned-search serving benchmarks: RLS / RLS-Skip versus the best
// heuristic splitting search (PSS) on the same 1000-trajectory store at
// k=10 — the paper's efficiency-versus-effectiveness trade (Tables 4–5) at
// the serving layer. Every run records latency plus accuracy against the
// exact ranking (approximation ratio, mean rank, skipped-point fraction)
// into BENCH_rls.json (override with BENCH_RLS_OUT):
//
//	go test ./internal/bench -run '^$' -bench BenchmarkRLS -benchtime 1x

type rlsBenchResult struct {
	NsPerOp float64 `json:"ns_per_op"`
	// ApproxRatio is the mean over ranking positions of the algorithm's
	// exact re-scored distance divided by the exact ranking's distance at
	// the same position (1.0 = exact-quality answers).
	ApproxRatio float64 `json:"approx_ratio"`
	// MeanRank is the mean 1-based position of the algorithm's ranked
	// trajectories within the exact top-k (absent trajectories count as
	// k+1; 5.5 is perfect for k=10).
	MeanRank float64 `json:"mean_rank"`
	// SkippedFraction is the mean fraction of data points never scanned
	// (skip policies only).
	SkippedFraction float64 `json:"skipped_fraction"`
}

var (
	rlsMu      sync.Mutex
	rlsResults = map[string]rlsBenchResult{}

	rlsPolicyOnce sync.Once
	rlsPolicies   map[string]*rl.Policy
)

// benchPolicies trains tiny policies once per benchmark run: enough
// episodes to exercise the full train → serve path, few enough to keep the
// smoke run fast.
func benchPolicies(b *testing.B) map[string]*rl.Policy {
	rlsPolicyOnce.Do(func() {
		pool := servingData(60, 24, 11)
		ps := dataset.Pairs(pool, 30, 0, 10, 12)
		datas := make([]traj.Trajectory, len(ps))
		queries := make([]traj.Trajectory, len(ps))
		for i, p := range ps {
			datas[i] = p.Data
			queries[i] = p.Query
		}
		rlsPolicies = map[string]*rl.Policy{}
		// Full state maintenance (SimplifyState=false) on both policies:
		// tracked distances are then genuine subtrajectory distances, which
		// is what makes the candidate-level lower-bound cascade sound for
		// the learned scans (see core.RLS.NewThresholdSearch) — the cascade,
		// not the per-decision cost, dominates serving latency. The training
		// seeds are the best of a small sweep on this workload: candidate
		// quality decides how fast the scan threshold tightens, so seed
		// selection is a serving-latency knob, not just an accuracy one.
		for name, cfg := range map[string]rl.Config{
			"rls":      {K: 0, UseSuffix: true, Episodes: 30, Seed: 7},
			"rls-skip": {K: 3, UseSuffix: true, Episodes: 30, Seed: 107},
		} {
			p, _, err := rl.Train(datas, queries, sim.DTW{}, cfg)
			if err != nil {
				b.Fatalf("training %s policy: %v", name, err)
			}
			rlsPolicies[name] = p
		}
	})
	return rlsPolicies
}

// rlsAccuracy scores an algorithm's ranking against the exact one with
// the same scorer the engine's sampled telemetry uses
// (core.ScoreApproxQuality), so BENCH_rls.json and GET /v2/stats can
// never diverge on what the quality numbers mean.
func rlsAccuracy(db *core.Database, alg core.Algorithm, m sim.Measure, q traj.Trajectory, k int) (ratio, meanRank, skipped float64) {
	ranked := func(ms []core.Match) []core.RankedAnswer {
		out := make([]core.RankedAnswer, len(ms))
		for i, a := range ms {
			out[i] = core.RankedAnswer{ID: a.TrajIndex, T: db.Traj(a.TrajIndex), R: a.Result}
		}
		return out
	}
	var policy *rl.Policy
	if rls, ok := alg.(core.RLS); ok {
		policy = rls.Policy
	}
	res, ok := core.ScoreApproxQuality(m, policy, q,
		ranked(db.TopK(alg, q, k)), ranked(db.TopK(core.ExactS{M: m}, q, k)))
	if !ok {
		return 0, 0, 0
	}
	return res.ApproxRatio, res.MeanRank, res.SkippedFraction
}

// benchRLS times one serving configuration: the pruned top-k scan with the
// algorithm's batched lane path when lanes >= 2 (TopKPrunedBatchCtx falls
// back to the sequential scan below that), recording allocs/op alongside
// latency and accuracy.
func benchRLS(b *testing.B, name string, alg core.Algorithm, lanes int) {
	m := sim.DTW{}
	db := core.NewDatabase(servingData(1000, 24, 7), false)
	q := servingData(1, 9, 8)[0]
	const k = 10

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.TopKPrunedBatchCtx(context.Background(), alg, q, k, nil, nil, nil, lanes); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	res := rlsBenchResult{NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N)}
	res.ApproxRatio, res.MeanRank, res.SkippedFraction = rlsAccuracy(db, alg, m, q, k)
	b.ReportMetric(res.ApproxRatio, "approx_ratio")
	rlsMu.Lock()
	rlsResults[name] = res
	rlsMu.Unlock()
}

// benchTable compiles the named policy onto the serving action table
// (resolution 64: at most 2^18 cells, compiled in milliseconds).
func benchTable(b *testing.B, p *rl.Policy) *rl.TablePolicy {
	table, err := rl.Compile(p, 64)
	if err != nil {
		b.Fatalf("compiling policy table: %v", err)
	}
	return table
}

// BenchmarkRLS measures the learned searches in their serving
// configurations against PSS. The headline entries ("rls", "rls-skip")
// use the engine's default scan settings with the compiled table policy —
// the -policy-compile serving path, which runs the fused sequential table
// walk regardless of the lane count; the "-net" entries serve the same
// policies from the network, swept across lane widths to expose what
// lockstep batching alone buys.
func BenchmarkRLS(b *testing.B) {
	pols := benchPolicies(b)
	b.Run("rls", func(b *testing.B) {
		benchRLS(b, "rls", core.RLS{M: sim.DTW{}, Policy: pols["rls"], Table: benchTable(b, pols["rls"])}, 64)
	})
	b.Run("rls-skip", func(b *testing.B) {
		benchRLS(b, "rls-skip", core.RLS{M: sim.DTW{}, Policy: pols["rls-skip"], Table: benchTable(b, pols["rls-skip"])}, 64)
	})
	for _, lanes := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("rls-skip-net/lanes=%d", lanes), func(b *testing.B) {
			benchRLS(b, fmt.Sprintf("rls-skip-net-lanes%d", lanes), core.RLS{M: sim.DTW{}, Policy: pols["rls-skip"]}, lanes)
		})
	}
	b.Run("pss", func(b *testing.B) {
		benchRLS(b, "pss", core.PSS{M: sim.DTW{}}, 1)
	})
}

// writeRLSJSON dumps the collected learned-search benchmark results;
// called from TestMain alongside writeScanJSON.
func writeRLSJSON() {
	rlsMu.Lock()
	defer rlsMu.Unlock()
	if len(rlsResults) == 0 {
		return
	}
	path := os.Getenv("BENCH_RLS_OUT")
	if path == "" {
		path = "BENCH_rls.json"
	}
	data, err := json.MarshalIndent(rlsResults, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal rls results: %v\n", err)
		return
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", path, err)
		return
	}
	fmt.Printf("rls benchmark results written to %s\n", path)
}
