package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"simsub/internal/ann"
	"simsub/internal/core"
	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/t2vec"
	"simsub/internal/traj"
)

// ANN-prefilter serving benchmarks: the embedding-index CandidateSource
// versus the exhaustive spatial enumeration on the same 1000-trajectory
// store at k=10. The prefilter trades a coarse LSH probe for a bounded
// rerank budget; every run records the candidate fraction actually scanned
// and recall@10 against the exhaustive ranking alongside latency, into
// BENCH_ann.json (override with BENCH_ANN_OUT):
//
//	go test ./internal/bench -run '^$' -bench BenchmarkANN -benchtime 1x

type annBenchResult struct {
	NsPerOp float64 `json:"ns_per_op"`
	// CandidateFraction is the share of the corpus the prefilter handed to
	// the exact rerank (1.0 for the exhaustive baseline).
	CandidateFraction float64 `json:"candidate_fraction"`
	// RecallAt10 is the overlap of the run's top-10 with the exhaustive
	// top-10 on the same measure, averaged over the query set.
	RecallAt10 float64 `json:"recall_at_10"`
}

var (
	annMu      sync.Mutex
	annResults = map[string]annBenchResult{}
)

// annBenchIndex embeds the corpus once and builds the multi-probe LSH over
// it — the same Build/Search pair the engine wires behind Query.ANN. The
// 16-dim encoder and 25% candidate budget are the smallest configuration
// that holds recall@10 >= 0.95 on this workload; 8 dims lands near 0.65.
func annBenchIndex(data []traj.Trajectory, m *t2vec.Model) *ann.Index {
	vecs := make([][]float64, len(data))
	for i, tr := range data {
		vecs[i] = m.Embed(tr)
	}
	return ann.Build(vecs, m.Dim(), ann.Config{})
}

// annRecall measures top-10 set overlap between a source-scanned ranking
// and the exhaustive one, averaged over a handful of held-out queries.
func annRecall(b *testing.B, db *core.Database, alg core.Algorithm, src core.CandidateSource, k int) float64 {
	var sum float64
	const queries = 5
	for qi := 0; qi < queries; qi++ {
		q := servingData(1, 9, 100+int64(qi))[0]
		exact, err := db.TopKPrunedCtx(context.Background(), alg, q, k, nil, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		got, err := db.TopKPrunedSourceCtx(context.Background(), alg, q, k, nil, nil, nil, src)
		if err != nil {
			b.Fatal(err)
		}
		want := make(map[int]bool, len(exact))
		for _, mt := range exact {
			want[mt.TrajIndex] = true
		}
		hit := 0
		for _, mt := range got {
			if want[mt.TrajIndex] {
				hit++
			}
		}
		if len(exact) > 0 {
			sum += float64(hit) / float64(len(exact))
		}
	}
	return sum / queries
}

// benchANN times one serving configuration of the pruned top-k scan under
// the given candidate source (nil = the exhaustive spatial enumeration).
func benchANN(b *testing.B, name string, src core.CandidateSource, fraction float64) {
	db := core.NewDatabase(servingData(1000, 24, 7), false)
	alg := core.ExactS{M: sim.DTW{}}
	q := servingData(1, 9, 100)[0]
	const k = 10

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.TopKPrunedSourceCtx(context.Background(), alg, q, k, nil, nil, nil, src); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()

	res := annBenchResult{
		NsPerOp:           float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		CandidateFraction: fraction,
		RecallAt10:        1,
	}
	if src != nil {
		res.RecallAt10 = annRecall(b, db, alg, src, k)
	}
	b.ReportMetric(res.RecallAt10, "recall@10")
	annMu.Lock()
	annResults[name] = res
	annMu.Unlock()
}

// BenchmarkANN measures the exhaustive scan against the ann-prefiltered
// one at a 25% candidate budget — the acceptance configuration: recall@10
// stays >= 0.95 while the exact cascade sees a quarter of the corpus.
func BenchmarkANN(b *testing.B) {
	data := servingData(1000, 24, 7)
	m := t2vec.NewRandomModel(16, 1)
	ix := annBenchIndex(data, m)
	const budget, probes = 250, 2
	src := core.CandidateSourceFunc(func(q traj.Trajectory, _ *geo.Rect) []int {
		return ix.Search(m.QueryEmbedding(q), budget, probes)
	})

	b.Run("exhaustive", func(b *testing.B) {
		benchANN(b, "exhaustive", nil, 1)
	})
	b.Run("ann", func(b *testing.B) {
		benchANN(b, "ann", src, float64(budget)/float64(len(data)))
	})
}

// writeANNJSON dumps the collected ann benchmark results; called from
// TestMain alongside writeScanJSON.
func writeANNJSON() {
	annMu.Lock()
	defer annMu.Unlock()
	if len(annResults) == 0 {
		return
	}
	path := os.Getenv("BENCH_ANN_OUT")
	if path == "" {
		path = "BENCH_ann.json"
	}
	data, err := json.MarshalIndent(annResults, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal ann results: %v\n", err)
		return
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", path, err)
		return
	}
	fmt.Printf("ann benchmark results written to %s\n", path)
}
