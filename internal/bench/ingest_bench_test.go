package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"

	"simsub/internal/engine"
	"simsub/internal/server"
	"simsub/internal/storage"
	"simsub/internal/traj"
)

// Ingest and recovery benchmarks for the persistent segment store: how
// fast a corpus streams through POST /v2/load/stream into a durable store,
// and how long a cold boot takes to replay it. Results land in
// BENCH_ingest.json (override with BENCH_INGEST_OUT); the corpus size
// defaults to 100k trajectories and follows BENCH_INGEST_N:
//
//	go test ./internal/bench -run '^$' -bench 'BenchmarkIngest|BenchmarkRecover' -benchtime 1x

type ingestBenchResult struct {
	Records       int     `json:"records"`
	Points        int     `json:"points"`
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	Replayed      int     `json:"replayed,omitempty"`
	Snapshotted   int     `json:"snapshotted,omitempty"`
}

var (
	ingestMu      sync.Mutex
	ingestResults = map[string]ingestBenchResult{}
)

func ingestN() int {
	if s := os.Getenv("BENCH_INGEST_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 100_000
}

const ingestPts = 10

// ingestCorpus memoizes the NDJSON encoding so BenchmarkIngest iterations
// measure ingest, not corpus generation.
var ingestCorpus = sync.OnceValue(func() []byte {
	ts := servingData(ingestN(), ingestPts, 11)
	var buf bytes.Buffer
	if err := traj.WriteNDJSON(&buf, ts); err != nil {
		panic(err)
	}
	return buf.Bytes()
})

// BenchmarkIngest streams the NDJSON corpus through the full HTTP ingest
// path — JSON decode, validation, durable append, shard insert — into an
// engine backed by a fresh persistent store.
func BenchmarkIngest(b *testing.B) {
	corpus := ingestCorpus()
	n := ingestN()
	b.SetBytes(int64(len(corpus)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, _, err := storage.Open(b.TempDir(), storage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		eng := engine.New(engine.Config{Shards: 4})
		if err := eng.AttachStore(st); err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(server.New(eng, server.Options{}))
		b.StartTimer()

		resp, err := srv.Client().Post(srv.URL+"/v2/load/stream", "application/x-ndjson", bytes.NewReader(corpus))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("stream load status %d", resp.StatusCode)
		}

		b.StopTimer()
		srv.Close()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	secs := b.Elapsed().Seconds() / float64(b.N)
	rps := float64(n) / secs
	b.ReportMetric(rps, "records/s")
	ingestMu.Lock()
	ingestResults["stream_load"] = ingestBenchResult{
		Records: n, Points: n * ingestPts, Seconds: secs, RecordsPerSec: rps,
	}
	ingestMu.Unlock()
}

// BenchmarkRecover measures the cold-boot path at the same scale: open the
// segment log, load the newest snapshot, replay the tail, and attach the
// corpus to a fresh engine. The store is written the way a crashed node
// leaves it — snapshot covering roughly half the corpus, the rest
// replayed from the log.
func BenchmarkRecover(b *testing.B) {
	n := ingestN()
	ts := servingData(n, ingestPts, 11)
	dir := b.TempDir()
	st, _, err := storage.Open(dir, storage.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Append(ts[:n/2]); err != nil {
		b.Fatal(err)
	}
	if err := st.Snapshot(); err != nil {
		b.Fatal(err)
	}
	if _, err := st.Append(ts[n/2:]); err != nil {
		b.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		b.Fatal(err)
	}
	// abandoned without Close: recovery must replay the post-snapshot tail

	var last *storage.RecoveryStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, rs, err := storage.Open(dir, storage.Options{})
		if err != nil {
			b.Fatal(err)
		}
		eng := engine.New(engine.Config{Shards: 4})
		if err := eng.AttachStore(st); err != nil {
			b.Fatal(err)
		}
		if eng.Len() != n {
			b.Fatalf("recovered %d trajectories, want %d", eng.Len(), n)
		}
		last = rs
		b.StopTimer()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	secs := b.Elapsed().Seconds() / float64(b.N)
	rps := float64(n) / secs
	b.ReportMetric(rps, "records/s")
	ingestMu.Lock()
	ingestResults["recover"] = ingestBenchResult{
		Records: n, Points: n * ingestPts, Seconds: secs, RecordsPerSec: rps,
		Replayed: last.Replayed, Snapshotted: last.SnapshotRecords,
	}
	ingestMu.Unlock()
}

// writeIngestJSON dumps the collected ingest benchmark results; called
// from TestMain alongside writeScanJSON.
func writeIngestJSON() {
	ingestMu.Lock()
	defer ingestMu.Unlock()
	if len(ingestResults) == 0 {
		return
	}
	path := os.Getenv("BENCH_INGEST_OUT")
	if path == "" {
		path = "BENCH_ingest.json"
	}
	data, err := json.MarshalIndent(ingestResults, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal ingest results: %v\n", err)
		return
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", path, err)
		return
	}
	fmt.Printf("ingest benchmark results written to %s\n", path)
}
