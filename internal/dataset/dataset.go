// Package dataset synthesizes trajectory databases that stand in for the
// paper's three real datasets (§6.1), which are not redistributable:
//
//	Porto  — 1.7M taxi trajectories, uniform 15 s sampling, mean length ~60
//	Harbin — 1.2M taxi trajectories, non-uniform sampling, mean length ~120
//	Sports — 0.2M soccer player/ball trajectories, 10 Hz, mean length ~170
//
// Each generator reproduces the distinguishing statistics the SimSub
// algorithms are sensitive to — length distribution, sampling regularity
// and spatial structure (road-grid movement for the taxi datasets, smooth
// correlated motion on a bounded pitch for Sports) — inside the unit
// square. DESIGN.md records the substitution rationale. All generation is
// deterministic for a given seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

// Kind selects a dataset family.
type Kind int

// The three dataset families of §6.1.
const (
	Porto Kind = iota
	Harbin
	Sports
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Porto:
		return "Porto"
	case Harbin:
		return "Harbin"
	case Sports:
		return "Sports"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindByName parses a dataset name (case-sensitive, as printed by String).
func KindByName(name string) (Kind, error) {
	switch name {
	case "Porto", "porto":
		return Porto, nil
	case "Harbin", "harbin":
		return Harbin, nil
	case "Sports", "sports":
		return Sports, nil
	}
	return 0, fmt.Errorf("dataset: unknown kind %q", name)
}

// MeanLen returns the family's mean trajectory length.
func (k Kind) MeanLen() int {
	switch k {
	case Harbin:
		return 120
	case Sports:
		return 170
	default:
		return 60
	}
}

// Config controls generation.
type Config struct {
	// Kind selects the dataset family.
	Kind Kind
	// N is the number of trajectories.
	N int
	// Seed seeds the generator (0 uses 1).
	Seed int64
	// MinLen/MaxLen bound trajectory lengths; zero values use the family's
	// defaults (mean length ±50%).
	MinLen, MaxLen int
}

func (c *Config) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	mean := c.Kind.MeanLen()
	if c.MinLen == 0 {
		c.MinLen = mean / 2
	}
	if c.MaxLen == 0 {
		c.MaxLen = mean * 3 / 2
	}
	if c.MinLen < 1 {
		c.MinLen = 1
	}
	if c.MaxLen < c.MinLen {
		c.MaxLen = c.MinLen
	}
}

// Generate synthesizes a trajectory database per the configuration.
// Trajectory IDs are assigned 0..N-1.
func Generate(cfg Config) []traj.Trajectory {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]traj.Trajectory, cfg.N)
	for i := range out {
		n := cfg.MinLen
		if cfg.MaxLen > cfg.MinLen {
			n += rng.Intn(cfg.MaxLen - cfg.MinLen + 1)
		}
		var t traj.Trajectory
		switch cfg.Kind {
		case Harbin:
			t = genRoad(rng, n, 15, true)
		case Sports:
			t = genField(rng, n, 0.1)
		default:
			t = genRoad(rng, n, 15, false)
		}
		t.ID = i
		out[i] = t
	}
	return out
}

// roadGridCells is the granularity of the synthetic road network.
const roadGridCells = 64

// genRoad simulates taxi movement on a Manhattan-style road grid inside the
// unit square: the vehicle travels along axis-aligned streets at a jittered
// speed, turning at intersections with some probability. With nonUniform,
// sampling intervals are log-normal (Harbin's irregular GPS reports);
// otherwise they are a fixed interval seconds apart (Porto's 15 s).
func genRoad(rng *rand.Rand, n int, interval float64, nonUniform bool) traj.Trajectory {
	cell := 1.0 / roadGridCells
	// start at a random intersection
	x := float64(rng.Intn(roadGridCells)) * cell
	y := float64(rng.Intn(roadGridCells)) * cell
	// heading: 0 +x, 1 +y, 2 -x, 3 -y
	heading := rng.Intn(4)
	speed := 0.002 + rng.Float64()*0.004 // cells per second, in unit space
	pts := make([]geo.Point, 0, n)
	now := rng.Float64() * 1e6
	for len(pts) < n {
		pts = append(pts, geo.Point{X: x, Y: y, T: now})
		dt := interval
		if nonUniform {
			// log-normal around the interval: occasional long gaps
			dt = interval * math.Exp(rng.NormFloat64()*0.6)
		}
		now += dt
		dist := speed * dt * (0.8 + 0.4*rng.Float64())
		for dist > 0 {
			// distance to the next intersection along the heading
			var toNext float64
			switch heading {
			case 0:
				toNext = cell - math.Mod(x, cell)
			case 1:
				toNext = cell - math.Mod(y, cell)
			case 2:
				toNext = math.Mod(x, cell)
				if toNext == 0 {
					toNext = cell
				}
			default:
				toNext = math.Mod(y, cell)
				if toNext == 0 {
					toNext = cell
				}
			}
			step := math.Min(dist, toNext)
			switch heading {
			case 0:
				x += step
			case 1:
				y += step
			case 2:
				x -= step
			default:
				y -= step
			}
			dist -= step
			atIntersection := step == toNext
			// reflect at the boundary, else maybe turn at intersections
			if x <= 0 || x >= 1 || y <= 0 || y >= 1 {
				x = math.Min(1, math.Max(0, x))
				y = math.Min(1, math.Max(0, y))
				heading = (heading + 2) % 4
			} else if atIntersection && rng.Float64() < 0.35 {
				if rng.Float64() < 0.5 {
					heading = (heading + 1) % 4
				} else {
					heading = (heading + 3) % 4
				}
			}
		}
	}
	return traj.New(pts...)
}

// genField simulates smooth player/ball movement on a bounded pitch with an
// Ornstein-Uhlenbeck velocity process sampled every dt seconds, reflected
// at the pitch boundary.
func genField(rng *rand.Rand, n int, dt float64) traj.Trajectory {
	x, y := rng.Float64(), rng.Float64()
	vx, vy := 0.0, 0.0
	const (
		theta = 0.8  // mean reversion of velocity
		sigma = 0.05 // velocity noise, unit space per second
	)
	pts := make([]geo.Point, 0, n)
	now := rng.Float64() * 1e4
	for len(pts) < n {
		pts = append(pts, geo.Point{X: x, Y: y, T: now})
		vx += -theta*vx*dt + sigma*math.Sqrt(dt)*rng.NormFloat64()
		vy += -theta*vy*dt + sigma*math.Sqrt(dt)*rng.NormFloat64()
		x += vx * dt
		y += vy * dt
		if x < 0 {
			x, vx = -x, -vx
		}
		if x > 1 {
			x, vx = 2-x, -vx
		}
		if y < 0 {
			y, vy = -y, -vy
		}
		if y > 1 {
			y, vy = 2-y, -vy
		}
		now += dt
	}
	return traj.New(pts...)
}

// Pair is one effectiveness-experiment unit: a data trajectory and a query
// trajectory (§6.2(1) samples 10,000 such pairs).
type Pair struct {
	Data, Query traj.Trajectory
}

// Pairs samples count (data, query) pairs from the database uniformly,
// without pairing a trajectory with itself. Queries are clipped to
// [minQLen, maxQLen] points (0 disables clipping).
func Pairs(ts []traj.Trajectory, count int, minQLen, maxQLen int, seed int64) []Pair {
	if len(ts) < 2 || count <= 0 {
		return nil
	}
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pair, 0, count)
	for len(out) < count {
		di := rng.Intn(len(ts))
		qi := rng.Intn(len(ts))
		if di == qi {
			continue
		}
		q := ts[qi]
		if maxQLen > 0 && q.Len() > maxQLen {
			start := rng.Intn(q.Len() - maxQLen + 1)
			q = q.Sub(start, start+maxQLen-1)
		}
		if minQLen > 0 && q.Len() < minQLen {
			continue
		}
		out = append(out, Pair{Data: ts[di], Query: q})
	}
	return out
}

// LengthGroup is a half-open query-length range [Lo, Hi).
type LengthGroup struct {
	Name   string
	Lo, Hi int
}

// PaperGroups returns the four query-length groups of §6.2(5):
// G1=[30,45), G2=[45,60), G3=[60,75), G4=[75,90).
func PaperGroups() []LengthGroup {
	return []LengthGroup{
		{Name: "G1", Lo: 30, Hi: 45},
		{Name: "G2", Lo: 45, Hi: 60},
		{Name: "G3", Lo: 60, Hi: 75},
		{Name: "G4", Lo: 75, Hi: 90},
	}
}

// GroupPairs samples pairs whose query length falls in the group, clipping
// queries from sampled trajectories when needed.
func GroupPairs(ts []traj.Trajectory, g LengthGroup, count int, seed int64) []Pair {
	if len(ts) < 2 || count <= 0 {
		return nil
	}
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pair, 0, count)
	attempts := 0
	for len(out) < count && attempts < count*1000 {
		attempts++
		di := rng.Intn(len(ts))
		qi := rng.Intn(len(ts))
		if di == qi {
			continue
		}
		q := ts[qi]
		want := g.Lo + rng.Intn(g.Hi-g.Lo)
		if q.Len() < want {
			continue
		}
		start := rng.Intn(q.Len() - want + 1)
		out = append(out, Pair{Data: ts[di], Query: q.Sub(start, start+want-1)})
	}
	return out
}

// TotalPoints sums the point counts of a database (the x-axis of the
// efficiency figures).
func TotalPoints(ts []traj.Trajectory) int {
	n := 0
	for _, t := range ts {
		n += t.Len()
	}
	return n
}
