package dataset

import (
	"math"
	"testing"
)

func TestGenerateCountsAndIDs(t *testing.T) {
	for _, kind := range []Kind{Porto, Harbin, Sports} {
		ts := Generate(Config{Kind: kind, N: 50, Seed: 1})
		if len(ts) != 50 {
			t.Fatalf("%v: got %d trajectories", kind, len(ts))
		}
		for i, tr := range ts {
			if tr.ID != i {
				t.Errorf("%v: trajectory %d has ID %d", kind, i, tr.ID)
			}
			if tr.Len() == 0 {
				t.Errorf("%v: empty trajectory %d", kind, i)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Kind: Porto, N: 10, Seed: 42})
	b := Generate(Config{Kind: Porto, N: 10, Seed: 42})
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("trajectory %d differs across same-seed runs", i)
		}
	}
	c := Generate(Config{Kind: Porto, N: 10, Seed: 43})
	if a[0].Equal(c[0]) {
		t.Error("different seeds should differ (almost surely)")
	}
}

func TestGenerateLengthDistribution(t *testing.T) {
	for _, kind := range []Kind{Porto, Harbin, Sports} {
		ts := Generate(Config{Kind: kind, N: 200, Seed: 2})
		mean := 0.0
		lo, hi := kind.MeanLen()/2, kind.MeanLen()*3/2
		for _, tr := range ts {
			if tr.Len() < lo || tr.Len() > hi {
				t.Fatalf("%v: length %d outside [%d,%d]", kind, tr.Len(), lo, hi)
			}
			mean += float64(tr.Len())
		}
		mean /= float64(len(ts))
		want := float64(kind.MeanLen())
		if math.Abs(mean-want) > want*0.15 {
			t.Errorf("%v: mean length %.1f, want about %.0f", kind, mean, want)
		}
	}
}

func TestGenerateInsideUnitSquare(t *testing.T) {
	for _, kind := range []Kind{Porto, Harbin, Sports} {
		ts := Generate(Config{Kind: kind, N: 30, Seed: 3})
		for _, tr := range ts {
			for _, p := range tr.Points {
				if p.X < -1e-9 || p.X > 1+1e-9 || p.Y < -1e-9 || p.Y > 1+1e-9 {
					t.Fatalf("%v: point %v outside unit square", kind, p)
				}
			}
		}
	}
}

func TestTimestampsIncrease(t *testing.T) {
	for _, kind := range []Kind{Porto, Harbin, Sports} {
		ts := Generate(Config{Kind: kind, N: 10, Seed: 4})
		for _, tr := range ts {
			for i := 1; i < tr.Len(); i++ {
				if tr.Pt(i).T <= tr.Pt(i-1).T {
					t.Fatalf("%v: timestamps not increasing at %d", kind, i)
				}
			}
		}
	}
}

func TestHarbinSamplingIsNonUniform(t *testing.T) {
	porto := Generate(Config{Kind: Porto, N: 20, Seed: 5})
	harbin := Generate(Config{Kind: Harbin, N: 20, Seed: 5})
	// coefficient of variation of sampling intervals
	cvFor := func(kindTs []float64) float64 {
		n := len(kindTs)
		if n < 2 {
			return 0
		}
		var mean float64
		for _, v := range kindTs {
			mean += v
		}
		mean /= float64(n)
		var varr float64
		for _, v := range kindTs {
			varr += (v - mean) * (v - mean)
		}
		return math.Sqrt(varr/float64(n)) / mean
	}
	var portoIv, harbinIv []float64
	for _, tr := range porto {
		for i := 1; i < tr.Len(); i++ {
			portoIv = append(portoIv, tr.Pt(i).T-tr.Pt(i-1).T)
		}
	}
	for _, tr := range harbin {
		for i := 1; i < tr.Len(); i++ {
			harbinIv = append(harbinIv, tr.Pt(i).T-tr.Pt(i-1).T)
		}
	}
	if cvPorto, cvHarbin := cvFor(portoIv), cvFor(harbinIv); cvHarbin < 3*cvPorto+0.1 {
		t.Errorf("Harbin interval CV %.3f should far exceed Porto's %.3f", cvHarbin, cvPorto)
	}
}

func TestKindHelpers(t *testing.T) {
	for _, c := range []struct {
		name string
		kind Kind
	}{{"Porto", Porto}, {"harbin", Harbin}, {"Sports", Sports}} {
		k, err := KindByName(c.name)
		if err != nil || k != c.kind {
			t.Errorf("KindByName(%q) = %v, %v", c.name, k, err)
		}
	}
	if _, err := KindByName("mars"); err == nil {
		t.Error("expected error for unknown dataset")
	}
	if Porto.String() != "Porto" || Harbin.String() != "Harbin" || Sports.String() != "Sports" {
		t.Error("String names wrong")
	}
}

func TestPairs(t *testing.T) {
	ts := Generate(Config{Kind: Porto, N: 30, Seed: 6})
	pairs := Pairs(ts, 50, 0, 0, 7)
	if len(pairs) != 50 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	for _, p := range pairs {
		if p.Data.ID == p.Query.ID {
			t.Error("pair uses the same trajectory twice")
		}
	}
	// query clipping
	clipped := Pairs(ts, 20, 5, 10, 8)
	for _, p := range clipped {
		if p.Query.Len() < 5 || p.Query.Len() > 10 {
			t.Errorf("query length %d outside [5,10]", p.Query.Len())
		}
	}
	// deterministic
	again := Pairs(ts, 50, 0, 0, 7)
	for i := range pairs {
		if !pairs[i].Data.Equal(again[i].Data) || !pairs[i].Query.Equal(again[i].Query) {
			t.Fatal("Pairs not deterministic for fixed seed")
		}
	}
	if Pairs(ts[:1], 5, 0, 0, 1) != nil {
		t.Error("need at least 2 trajectories")
	}
}

func TestGroupPairs(t *testing.T) {
	ts := Generate(Config{Kind: Harbin, N: 50, Seed: 9})
	for _, g := range PaperGroups() {
		pairs := GroupPairs(ts, g, 20, 10)
		if len(pairs) == 0 {
			t.Fatalf("%s: no pairs generated", g.Name)
		}
		for _, p := range pairs {
			if p.Query.Len() < g.Lo || p.Query.Len() >= g.Hi {
				t.Errorf("%s: query length %d outside [%d,%d)", g.Name, p.Query.Len(), g.Lo, g.Hi)
			}
		}
	}
}

func TestTotalPoints(t *testing.T) {
	ts := Generate(Config{Kind: Porto, N: 10, Seed: 11})
	want := 0
	for _, tr := range ts {
		want += tr.Len()
	}
	if got := TotalPoints(ts); got != want {
		t.Errorf("TotalPoints = %d, want %d", got, want)
	}
}
