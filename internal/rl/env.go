// Package rl implements the reinforcement-learning machinery of §5: the
// Markov decision process that models trajectory splitting (§5.1), deep
// Q-network training with experience replay (Algorithm 3, §5.2), and the
// greedy policies used by the RLS and RLS-Skip search algorithms
// (§5.3–5.4).
package rl

import (
	"math"

	"simsub/internal/sim"
	"simsub/internal/traj"
)

// SplitEnv is the trajectory-splitting MDP of §5.1.
//
// A state is the triplet (Θbest, Θpre, Θsuf) of similarities (Θ = 1/(1+d)):
// the best similarity seen so far, the similarity of the running prefix
// T[h,t], and the similarity of the reversed suffix T[t,n]^R against the
// reversed query. Actions are 0 (no split), 1 (split at the current point)
// and, when K > 0, action 1+j meaning "skip j points" for j = 1..K (§5.4).
// The reward of a transition is the increase of Θbest.
//
// With SimplifyState (RLS-Skip's state maintenance), skipped points are
// excluded from the prefix similarity — the prefix is streamed over scanned
// points only, a simplification of the true subtrajectory (§5.4). The
// reported best interval still spans the full index range.
type SplitEnv struct {
	m    sim.Measure
	t, q traj.Trajectory
	// UseSuffix includes Θsuf in states and candidate answers; the paper
	// drops it for t2vec (§6.1) and for RLS-Skip+ (§6.2(9)).
	useSuffix bool
	// simplifyState excludes skipped points from prefix maintenance.
	simplifyState bool

	suf      []float64 // suffix dists per start index (when useSuffix)
	stream   sim.Stream
	pos      int // index of the point currently scanned
	h        int // start of the current segment
	done     bool
	dPre     float64
	dBest    float64
	best     traj.Interval
	explored int
	scanned  int // points whose prefix state was advanced (never skipped)
}

// EnvConfig configures a SplitEnv.
type EnvConfig struct {
	// UseSuffix includes the Θsuf component (default true for DTW/Fréchet
	// in the paper; false for t2vec).
	UseSuffix bool
	// SimplifyState enables RLS-Skip's skipped-point state simplification.
	SimplifyState bool
}

// NewSplitEnv builds the MDP for one (data, query) pair and observes the
// first state. The data and query trajectories must be non-empty.
func NewSplitEnv(m sim.Measure, t, q traj.Trajectory, cfg EnvConfig) *SplitEnv {
	e := &SplitEnv{
		m: m, t: t, q: q,
		useSuffix:     cfg.UseSuffix,
		simplifyState: cfg.SimplifyState,
	}
	e.Reset()
	return e
}

// Reset restarts the episode on the same trajectory pair.
func (e *SplitEnv) Reset() {
	e.pos, e.h = 0, 0
	e.done = false
	e.dBest = math.Inf(1)
	e.best = traj.Interval{}
	e.explored = 0
	e.scanned = 0
	if e.useSuffix {
		if e.suf == nil {
			e.suf = sim.SuffixDists(e.m, e.t, e.q)
			e.explored += e.t.Len()
		}
	}
	if e.stream == nil {
		e.stream = sim.NewStream(e.m, e.q)
	} else {
		e.stream.Reset()
	}
	e.dPre = e.stream.Push(e.t.Pt(0))
	e.explored++
	e.scanned++
}

// NewScanEnv builds an environment bound to a measure and query but no data
// trajectory yet: the reusable form for scan loops, which Rebind it at each
// candidate instead of allocating a fresh environment (and prefix stream)
// per trajectory. The environment is unusable until the first Rebind.
func NewScanEnv(m sim.Measure, q traj.Trajectory, cfg EnvConfig) *SplitEnv {
	return &SplitEnv{
		m: m, q: q,
		useSuffix:     cfg.UseSuffix,
		simplifyState: cfg.SimplifyState,
	}
}

// Rebind retargets the environment at a new data trajectory against the
// same measure and query, reusing the prefix stream and, with suf == nil,
// rederiving suffix distances in place. A non-nil suf supplies them
// precomputed (len == t.Len(), e.g. via sim.SuffixDistsInto over a stored
// reversal); either way Explored accounts for them exactly as a fresh
// NewSplitEnv would, so results stay comparable across the two paths. The
// caller keeps ownership of suf until the next Rebind or Reset.
func (e *SplitEnv) Rebind(t traj.Trajectory, suf []float64) {
	e.t = t
	e.suf = suf
	e.Reset()
	if e.useSuffix && suf != nil {
		e.explored += t.Len()
	}
}

// StateDim returns the state vector width: 3 with the suffix component,
// 2 without.
func (e *SplitEnv) StateDim() int { return StateDim(e.useSuffix) }

// StateDim returns the MDP state width for the given suffix setting.
func StateDim(useSuffix bool) int {
	if useSuffix {
		return 3
	}
	return 2
}

// State returns the current state vector (Θbest, Θpre[, Θsuf]).
func (e *SplitEnv) State() []float64 {
	return e.StateInto(make([]float64, e.StateDim()))
}

// StateInto writes the current state vector (Θbest, Θpre[, Θsuf]) into dst,
// which must hold at least StateDim values, and returns dst truncated to
// the state width. It is the zero-allocation form of State for the serving
// hot path, where a state is produced per scanned point.
func (e *SplitEnv) StateInto(dst []float64) []float64 {
	dst = dst[:e.StateDim()]
	dst[0] = bestSim(e.dBest)
	dst[1] = sim.Sim(e.dPre)
	if e.useSuffix {
		dst[2] = sim.Sim(e.suf[e.pos])
	}
	return dst
}

// bestSim maps the best distance to Θbest, with the paper's initial value 0
// when nothing has been recorded yet.
func bestSim(d float64) float64 {
	if math.IsInf(d, 1) {
		return 0
	}
	return sim.Sim(d)
}

// NumActions returns 2 + k for skip parameter k.
func (e *SplitEnv) NumActions(k int) int { return 2 + k }

// Done reports whether the episode has ended (the last point was acted on).
func (e *SplitEnv) Done() bool { return e.done }

// Best returns the best interval and its tracked distance.
func (e *SplitEnv) Best() (traj.Interval, float64) { return e.best, e.dBest }

// Explored returns the number of similarity evaluations performed.
func (e *SplitEnv) Explored() int { return e.explored }

// Pos returns the index of the point currently scanned.
func (e *SplitEnv) Pos() int { return e.pos }

// Scanned returns the number of data points whose prefix state the walk
// advanced — the complement of the points a skip policy jumped over (the
// paper's "Skip Pts" accounting, Table 5). Intermediate points streamed to
// maintain unsimplified state do not count: they were examined, but the
// policy never acted on them, matching SkippedFraction's historical
// definition.
func (e *SplitEnv) Scanned() int { return e.scanned }

// Step applies an action at the current point and advances the scan,
// returning the reward (the increase of Θbest, §5.1). Action semantics:
// 0 = no split, 1 = split at the current point, 1+j = skip j points.
// Calling Step after the episode is done panics.
func (e *SplitEnv) Step(action int) float64 {
	prevBest := bestSim(e.dBest)
	e.advance(action)
	return bestSim(e.dBest) - prevBest
}

// advance is Step without the reward computation: the serving paths take
// greedy actions and never read rewards, so they skip the two extra Θbest
// conversions per scanned point that training needs.
func (e *SplitEnv) advance(action int) {
	if e.done {
		panic("rl: Step on finished episode")
	}
	n := e.t.Len()

	// candidate subtrajectories visible in the current state (line 14 of
	// Algorithm 3): the running prefix T[h,pos] and, when enabled, the
	// suffix T[pos, n-1]
	if e.dPre < e.dBest {
		e.dBest = e.dPre
		e.best = traj.Interval{I: e.h, J: e.pos}
	}
	if e.useSuffix && e.suf[e.pos] < e.dBest {
		e.dBest = e.suf[e.pos]
		e.best = traj.Interval{I: e.pos, J: n - 1}
	}

	split := action == 1
	skip := 0
	if action >= 2 {
		skip = action - 1
	}
	if split {
		e.h = e.pos + 1
	}

	next := e.pos + 1 + skip
	if next > n-1 {
		if e.pos+1 > n-1 {
			e.done = true
			return
		}
		next = n - 1 // a skip never jumps past the final point unscanned
	}

	// maintain the prefix similarity for the next scanned point
	if split && e.h == next {
		// fresh segment starting at the next point
		e.stream.Reset()
	} else if split {
		// split followed by a skip: the new segment starts at h but the
		// next scanned point is past it; stream the intermediate points
		// unless the state is simplified
		e.stream.Reset()
		if !e.simplifyState {
			for i := e.h; i < next; i++ {
				e.stream.Push(e.t.Pt(i))
				e.explored++
			}
		}
	} else if skip > 0 && !e.simplifyState {
		for i := e.pos + 1; i < next; i++ {
			e.stream.Push(e.t.Pt(i))
			e.explored++
		}
	}
	e.dPre = e.stream.Push(e.t.Pt(next))
	e.explored++
	e.scanned++
	e.pos = next
}

// WalkTable drives the episode to completion with greedy actions served
// from the compiled table, fused into one loop: the state components are
// quantized straight into the table's grid (the same cell mapping
// TablePolicy.Action applies, so the action sequence is identical to
// walking a tableActor) with no per-step actor dispatch and no reward
// bookkeeping. The Θbest cell is recomputed only when the best distance
// improves, which it does at most a handful of times per episode. This is
// the serving fast path for table-backed searches — a table has no
// inference worth batching, so the fused sequential walk is how both the
// one-shot and the scan paths run it.
func (e *SplitEnv) WalkTable(tb *TablePolicy) {
	res := tb.Resolution
	n := e.t.Len()
	dPrev := math.NaN() // != any distance, so the first step computes the cell
	c0 := 0
	if e.useSuffix {
		for !e.done {
			if e.dBest != dPrev {
				dPrev = e.dBest
				c0 = tb.cell(bestSim(dPrev)) * res
			}
			idx := (c0+tb.cell(sim.Sim(e.dPre)))*res + tb.cell(sim.Sim(e.suf[e.pos]))
			if a := int(tb.Actions[idx]); a != 0 || e.pos+1 >= n {
				e.advance(a)
				continue
			}
			// no-split mid-scan, by far the most frequent step: advance's
			// action-0 path inlined (record the visible candidates, push
			// the next point)
			if e.dPre < e.dBest {
				e.dBest = e.dPre
				e.best = traj.Interval{I: e.h, J: e.pos}
			}
			if e.suf[e.pos] < e.dBest {
				e.dBest = e.suf[e.pos]
				e.best = traj.Interval{I: e.pos, J: n - 1}
			}
			e.pos++
			e.dPre = e.stream.Push(e.t.Pt(e.pos))
			e.explored++
			e.scanned++
		}
		return
	}
	for !e.done {
		if e.dBest != dPrev {
			dPrev = e.dBest
			c0 = tb.cell(bestSim(dPrev)) * res
		}
		if a := int(tb.Actions[c0+tb.cell(sim.Sim(e.dPre))]); a != 0 || e.pos+1 >= n {
			e.advance(a)
			continue
		}
		if e.dPre < e.dBest {
			e.dBest = e.dPre
			e.best = traj.Interval{I: e.h, J: e.pos}
		}
		e.pos++
		e.dPre = e.stream.Push(e.t.Pt(e.pos))
		e.explored++
		e.scanned++
	}
}

// FinishGreedy consumes the rest of the episode taking "no split" actions;
// used by tests and by baselines that stop deciding.
func (e *SplitEnv) FinishGreedy() {
	for !e.done {
		e.Step(0)
	}
}
