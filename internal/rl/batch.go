package rl

import (
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// This file is the cross-candidate lockstep batcher: the classic
// inference-serving restructuring applied to the splitting MDP. A top-k
// scan walks one MDP per candidate trajectory, and every walk queries the
// same policy — so instead of routing each walk's tiny state vector through
// a scalar forward pass (a mat-vec per scanned point, allocating per step),
// the runner advances up to `width` walks simultaneously: it gathers their
// states into one packed row-major matrix, takes a single batched forward
// pass (one blocked mat-mat per layer with a fused argmax), scatters the
// greedy actions back, steps every environment, and compacts finished
// lanes out of the batch so a freed lane immediately takes the next
// candidate.
//
// Correctness: a walk's action sequence depends only on its own state
// trajectory, the Actor is deterministic per state row (batched inference
// is bit-identical to scalar inference), and walks never interact — so
// every walk produces exactly the interval, distance, explored and scanned
// counts of a sequential SplitEnv walk, regardless of batch width or of
// which candidates happen to share a batch.

// Walk is one finished lockstep walk: the candidate's tag plus what the
// equivalent sequential walk would have reported.
type Walk struct {
	// Tag is the caller-chosen candidate identifier passed to Add.
	Tag int
	// Best is the best interval the walk exposed; Dist its tracked
	// distance.
	Best traj.Interval
	Dist float64
	// Explored counts similarity evaluations, Scanned the points the
	// prefix state advanced over — both identical to a sequential walk's.
	Explored int
	Scanned  int
}

// ActorSource mints per-scan Actors: implemented by *Policy (network
// inference) and *TablePolicy (compiled lookup).
type ActorSource interface {
	NewActor() Actor
	StateDim() int
}

// lane is one in-flight walk plus its reusable buffers.
type lane struct {
	env *SplitEnv
	suf []float64
	tag int
}

// BatchRunner advances many split-MDP walks in lockstep against one query.
// It is single-goroutine and must be Released after the scan; a fresh
// runner per (query, goroutine) is the intended shape, mirroring
// ThresholdSearch.
type BatchRunner struct {
	m     sim.Measure
	q     traj.Trajectory
	qRev  traj.Trajectory
	cfg   EnvConfig
	actor Actor
	width int
	dim   int

	lanes   []*lane
	idle    []*lane
	states  []float64
	actions []int
	out     []Walk
}

// NewBatchRunner builds a lockstep runner of the given width (clamped to at
// least 1) for walks of src's policy against q. The reversed query is
// derived once; per-candidate suffix state reuses stored reversals via Add.
func NewBatchRunner(m sim.Measure, q traj.Trajectory, cfg EnvConfig, src ActorSource, width int) *BatchRunner {
	if width < 1 {
		width = 1
	}
	r := &BatchRunner{
		m:       m,
		q:       q,
		cfg:     cfg,
		actor:   src.NewActor(),
		width:   width,
		dim:     src.StateDim(),
		states:  make([]float64, width*src.StateDim()),
		actions: make([]int, width),
	}
	if cfg.UseSuffix {
		r.qRev = q.Reverse()
	}
	return r
}

// Add starts a walk over the non-empty data trajectory t, tagged tag. rev,
// when it matches t's length, is t's precomputed reversal (core.TrajMeta);
// otherwise t is reversed here. If every lane is busy, lockstep rounds run
// until at least one walk finishes. The returned walks (possibly none) are
// valid until the next Add or Flush call.
func (r *BatchRunner) Add(tag int, t, rev traj.Trajectory) []Walk {
	r.out = r.out[:0]
	for len(r.lanes) >= r.width {
		r.round()
	}
	var ln *lane
	if n := len(r.idle); n > 0 {
		ln = r.idle[n-1]
		r.idle = r.idle[:n-1]
	} else {
		ln = &lane{env: NewScanEnv(r.m, r.q, r.cfg)}
	}
	ln.tag = tag
	var suf []float64
	if r.cfg.UseSuffix {
		tr := rev
		if tr.Len() != t.Len() {
			tr = t.Reverse() // defensive: zero-value meta
		}
		ln.suf = sim.SuffixDistsInto(ln.suf, r.m, tr, r.qRev)
		suf = ln.suf
	}
	ln.env.Rebind(t, suf)
	r.lanes = append(r.lanes, ln)
	return r.out
}

// Flush runs every in-flight walk to completion and returns them; the
// returned slice is valid until the next Add or Flush call.
func (r *BatchRunner) Flush() []Walk {
	r.out = r.out[:0]
	for len(r.lanes) > 0 {
		r.round()
	}
	return r.out
}

// Pending returns the number of in-flight walks.
func (r *BatchRunner) Pending() int { return len(r.lanes) }

// Release returns the runner's actor scratch to its pool; the runner is
// unusable afterwards.
func (r *BatchRunner) Release() { r.actor.Release() }

// round advances every active lane by one action: gather states, one
// batched greedy evaluation, scatter and step, then compact finished lanes
// (appending their walks to r.out) so the batch stays dense.
func (r *BatchRunner) round() {
	b := len(r.lanes)
	for i, ln := range r.lanes {
		ln.env.StateInto(r.states[i*r.dim : (i+1)*r.dim])
	}
	r.actor.Actions(r.states[:b*r.dim], b, r.actions[:b])
	w := 0
	for i, ln := range r.lanes {
		ln.env.Step(r.actions[i])
		if ln.env.Done() {
			iv, d := ln.env.Best()
			r.out = append(r.out, Walk{
				Tag:      ln.tag,
				Best:     iv,
				Dist:     d,
				Explored: ln.env.Explored(),
				Scanned:  ln.env.Scanned(),
			})
			r.idle = append(r.idle, ln)
		} else {
			r.lanes[w] = ln
			w++
		}
	}
	r.lanes = r.lanes[:w]
}
