package rl

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"simsub/internal/nn"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// randomPolicy builds a policy with the DQN's random weight initialization:
// its actions vary with the state, exercising the lockstep machinery far
// harder than a constant policy would.
func randomPolicy(seed int64, k int, useSuffix, simplify bool) *Policy {
	dim := StateDim(useSuffix)
	net := nn.NewMLP([]int{dim, 8, 2 + k}, []nn.Activation{nn.ReLU, nn.Sigmoid}, rand.New(rand.NewSource(seed)))
	return &Policy{Net: net, K: k, UseSuffix: useSuffix, SimplifyState: simplify}
}

// sequentialWalk runs one scalar-path walk, returning what a batched lane
// must reproduce exactly.
func sequentialWalk(m sim.Measure, p *Policy, t, q traj.Trajectory) Walk {
	env := NewSplitEnv(m, t, q, EnvConfig{UseSuffix: p.UseSuffix, SimplifyState: p.SimplifyState})
	for !env.Done() {
		env.Step(p.Action(env.State()))
	}
	iv, d := env.Best()
	return Walk{Best: iv, Dist: d, Explored: env.Explored(), Scanned: env.Scanned()}
}

func TestBatchRunnerMatchesSequentialWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := sim.DTW{}
	policies := []*Policy{
		randomPolicy(1, 0, true, false), // RLS
		randomPolicy(2, 3, true, true),  // RLS-Skip
		randomPolicy(3, 3, false, true), // RLS-Skip+
		constantPolicy(1, 0, true),      // always-split
	}
	for pi, p := range policies {
		q := randTraj(rng, 5)
		cands := make([]traj.Trajectory, 40)
		for i := range cands {
			cands[i] = randTraj(rng, rng.Intn(25)+1)
		}
		want := make([]Walk, len(cands))
		for i, c := range cands {
			want[i] = sequentialWalk(m, p, c, q)
		}
		for _, width := range []int{1, 7, 64} {
			r := NewBatchRunner(m, q, EnvConfig{UseSuffix: p.UseSuffix, SimplifyState: p.SimplifyState}, p, width)
			got := make(map[int]Walk, len(cands))
			collect := func(ws []Walk) {
				for _, w := range ws {
					if _, dup := got[w.Tag]; dup {
						t.Fatalf("policy %d width %d: tag %d delivered twice", pi, width, w.Tag)
					}
					got[w.Tag] = w
				}
			}
			for i, c := range cands {
				collect(r.Add(i, c, c.Reverse()))
			}
			collect(r.Flush())
			r.Release()
			if len(got) != len(cands) {
				t.Fatalf("policy %d width %d: %d walks delivered, want %d", pi, width, len(got), len(cands))
			}
			for i, w := range want {
				g := got[i]
				// bit-identical distance, same interval and counters: a
				// batched lane must be indistinguishable from the scalar walk
				if g.Best != w.Best || g.Dist != w.Dist || g.Explored != w.Explored || g.Scanned != w.Scanned {
					t.Fatalf("policy %d width %d cand %d: batched %+v != sequential %+v", pi, width, i, g, w)
				}
			}
		}
	}
}

func TestBatchRunnerZeroMetaReversal(t *testing.T) {
	// a zero-value reversal (no TrajMeta) must fall back to reversing
	// locally, not corrupt suffix state
	rng := rand.New(rand.NewSource(5))
	m := sim.Frechet{}
	p := randomPolicy(7, 2, true, true)
	q := randTraj(rng, 4)
	c := randTraj(rng, 12)
	want := sequentialWalk(m, p, c, q)
	r := NewBatchRunner(m, q, EnvConfig{UseSuffix: true, SimplifyState: true}, p, 4)
	defer r.Release()
	r.Add(0, c, traj.Trajectory{})
	ws := r.Flush()
	if len(ws) != 1 {
		t.Fatalf("%d walks, want 1", len(ws))
	}
	if g := ws[0]; g.Best != want.Best || g.Dist != want.Dist || g.Explored != want.Explored {
		t.Fatalf("zero-meta walk %+v != sequential %+v", ws[0], want)
	}
}

func TestStateIntoMatchesState(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, cfg := range []EnvConfig{{UseSuffix: true}, {UseSuffix: false}, {UseSuffix: true, SimplifyState: true}} {
		env := NewSplitEnv(sim.DTW{}, randTraj(rng, 15), randTraj(rng, 4), cfg)
		var dst [3]float64
		for !env.Done() {
			got := env.StateInto(dst[:])
			want := env.State()
			if len(got) != len(want) {
				t.Fatalf("cfg %+v: StateInto len %d != State len %d", cfg, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cfg %+v comp %d: StateInto %v != State %v", cfg, i, got[i], want[i])
				}
			}
			env.Step(rng.Intn(2))
		}
	}
}

func TestRebindMatchesFreshEnv(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := sim.DTW{}
	q := randTraj(rng, 4)
	qRev := q.Reverse()
	for _, cfg := range []EnvConfig{{UseSuffix: true}, {UseSuffix: false}, {UseSuffix: true, SimplifyState: true}} {
		reused := NewScanEnv(m, q, cfg)
		var suf []float64
		for trial := 0; trial < 10; trial++ {
			c := randTraj(rng, rng.Intn(12)+1)
			if cfg.UseSuffix {
				suf = sim.SuffixDistsInto(suf, m, c.Reverse(), qRev)
				reused.Rebind(c, suf)
			} else {
				reused.Rebind(c, nil)
			}
			fresh := NewSplitEnv(m, c, q, cfg)
			actions := make([]int, 0, 16)
			for !fresh.Done() {
				a := rng.Intn(3)
				actions = append(actions, a)
				fresh.Step(a)
			}
			for _, a := range actions {
				reused.Step(a)
			}
			if !reused.Done() {
				t.Fatalf("cfg %+v: rebound env not done after the fresh env's action sequence", cfg)
			}
			fi, fd := fresh.Best()
			ri, rd := reused.Best()
			if fi != ri || fd != rd || fresh.Explored() != reused.Explored() || fresh.Scanned() != reused.Scanned() {
				t.Fatalf("cfg %+v trial %d: rebound (%v, %v, %d, %d) != fresh (%v, %v, %d, %d)",
					cfg, trial, ri, rd, reused.Explored(), reused.Scanned(), fi, fd, fresh.Explored(), fresh.Scanned())
			}
		}
	}
}

func TestCompileTableMatchesNetworkAtCenters(t *testing.T) {
	p := randomPolicy(11, 2, true, true)
	table, err := Compile(p, 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if table.K != p.K || table.UseSuffix != p.UseSuffix || table.SimplifyState != p.SimplifyState {
		t.Fatalf("table shape %+v does not mirror policy", table)
	}
	// every cell center must agree with the network by construction
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		state := make([]float64, table.StateDim())
		for d := range state {
			cell := rng.Intn(8)
			state[d] = (float64(cell) + 0.5) / 8
		}
		if got, want := table.Action(state), p.Action(state); got != want {
			t.Fatalf("center %v: table action %d != network action %d", state, got, want)
		}
	}
	if table.Divergence < 0 || table.Divergence > 1 {
		t.Fatalf("divergence %v outside [0, 1]", table.Divergence)
	}
}

func TestCompileConstantPolicyZeroDivergence(t *testing.T) {
	// a constant policy's greedy surface is flat: every probe agrees
	table, err := Compile(constantPolicy(1, 2, true), 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if table.Divergence != 0 {
		t.Fatalf("constant policy compiled with divergence %v, want 0", table.Divergence)
	}
	for i, a := range table.Actions {
		if a != 1 {
			t.Fatalf("cell %d holds action %d, want 1", i, a)
		}
	}
}

func TestCompileRefusals(t *testing.T) {
	p := randomPolicy(13, 0, true, false)
	cases := []struct {
		name string
		p    *Policy
		res  int
	}{
		{"nil policy", nil, 8},
		{"resolution below minimum", p, 1},
		{"grid too large", p, 1 << 10}, // (2^10)^3 cells > MaxTableCells
	}
	for _, c := range cases {
		_, err := Compile(c.p, c.res)
		var perr *PolicyError
		if err == nil || !errors.As(err, &perr) {
			t.Fatalf("%s: Compile err = %v, want *PolicyError", c.name, err)
		}
	}
	// non-finite weights are refused through Validate
	bad := randomPolicy(14, 0, false, false)
	bad.Net.Layers[0].W.W[0] = math.NaN()
	if _, err := Compile(bad, 8); err == nil {
		t.Fatal("Compile accepted a NaN-weight policy")
	}
}

func TestTableActionClampsHostileStates(t *testing.T) {
	table, err := Compile(randomPolicy(15, 1, true, true), 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	na := table.NumActions()
	for _, state := range [][]float64{
		{math.NaN(), 0.5, 0.5},
		{-1, 2, 0.5},
		{math.Inf(1), math.Inf(-1), math.NaN()},
		{1, 1, 1},
	} {
		a := table.Action(state)
		if a < 0 || a >= na {
			t.Fatalf("state %v: action %d outside [0, %d)", state, a, na)
		}
	}
}

func TestTableFingerprintSensitivity(t *testing.T) {
	p := randomPolicy(16, 2, true, true)
	t1, err := Compile(p, 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	t2, err := Compile(p, 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if t1.Fingerprint() != t2.Fingerprint() {
		t.Fatal("identical compiles produced different fingerprints")
	}
	t3, err := Compile(p, 16)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if t1.Fingerprint() == t3.Fingerprint() {
		t.Fatal("different resolutions share a fingerprint")
	}
	mut := *t1
	mut.Actions = append([]uint8(nil), t1.Actions...)
	mut.Actions[0] ^= 1
	if mut.Fingerprint() == t1.Fingerprint() {
		t.Fatal("flipping a cell action did not change the fingerprint")
	}
}

func TestBatchRunnerTableMatchesNetWhenFaithful(t *testing.T) {
	// with a constant policy the compiled table is exactly the network's
	// greedy surface, so table-served walks must equal net-served walks
	rng := rand.New(rand.NewSource(17))
	m := sim.DTW{}
	p := constantPolicy(1, 2, true)
	p.SimplifyState = true
	table, err := Compile(p, 4)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	q := randTraj(rng, 4)
	cfg := EnvConfig{UseSuffix: true, SimplifyState: true}
	for i := 0; i < 10; i++ {
		c := randTraj(rng, rng.Intn(15)+1)
		rn := NewBatchRunner(m, q, cfg, p, 4)
		rn.Add(0, c, c.Reverse())
		wsNet := append([]Walk(nil), rn.Flush()...)
		rn.Release()
		rt := NewBatchRunner(m, q, cfg, table, 4)
		rt.Add(0, c, c.Reverse())
		wsTab := append([]Walk(nil), rt.Flush()...)
		rt.Release()
		if len(wsNet) != 1 || len(wsTab) != 1 || wsNet[0] != wsTab[0] {
			t.Fatalf("cand %d: net walk %+v != table walk %+v", i, wsNet, wsTab)
		}
	}
}

// TestWalkTableMatchesActorWalk pins the fused table walk to the
// actor-driven reference: for state-dependent tables of every MDP shape,
// WalkTable must take exactly the action sequence a tableActor would, so
// the walks agree on everything they report.
func TestWalkTableMatchesActorWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	m := sim.DTW{}
	for pi, p := range []*Policy{
		randomPolicy(11, 0, true, false),
		randomPolicy(12, 3, true, false),
		randomPolicy(13, 3, true, true),
		randomPolicy(14, 3, false, true),
	} {
		table, err := Compile(p, 8)
		if err != nil {
			t.Fatalf("policy %d: Compile: %v", pi, err)
		}
		q := randTraj(rng, 5)
		cfg := EnvConfig{UseSuffix: p.UseSuffix, SimplifyState: p.SimplifyState}
		for i := 0; i < 20; i++ {
			c := randTraj(rng, rng.Intn(25)+1)

			ref := NewSplitEnv(m, c, q, cfg)
			actor := table.NewActor()
			state := make([]float64, ref.StateDim())
			action := make([]int, 1)
			for !ref.Done() {
				ref.StateInto(state)
				actor.Actions(state, 1, action)
				ref.Step(action[0])
			}
			actor.Release()

			fused := NewSplitEnv(m, c, q, cfg)
			fused.WalkTable(table)

			ivRef, dRef := ref.Best()
			ivFus, dFus := fused.Best()
			if ivRef != ivFus || dRef != dFus ||
				ref.Explored() != fused.Explored() || ref.Scanned() != fused.Scanned() {
				t.Fatalf("policy %d cand %d: fused walk (%v, %v, %d, %d) != actor walk (%v, %v, %d, %d)",
					pi, i, ivFus, dFus, fused.Explored(), fused.Scanned(),
					ivRef, dRef, ref.Explored(), ref.Scanned())
			}
		}
	}
}
