package rl

import (
	"fmt"
	"io"
	"os"

	"simsub/internal/nn"
)

// Policy is a greedy policy over a learned Q function: for a state s it
// takes arg max_a Q(s, a; θ) (§5.3). It also records the MDP shape it was
// trained for, so search algorithms can reconstruct matching environments.
type Policy struct {
	// Net is the trained main network Q(s, a; θ).
	Net *nn.MLP
	// K is the number of skip actions the policy was trained with.
	K int
	// UseSuffix records whether states include the Θsuf component.
	UseSuffix bool
	// SimplifyState records whether prefix state maintenance excludes
	// skipped points.
	SimplifyState bool
}

// Action returns the greedy action for the state. It is safe for
// concurrent use (inference does not touch the training caches).
func (p *Policy) Action(state []float64) int {
	return argmax(p.Net.Infer(state))
}

// NumActions returns the policy's action-space size.
func (p *Policy) NumActions() int { return 2 + p.K }

// Save serializes the policy (metadata header plus network weights).
func (p *Policy) Save(w io.Writer) error {
	suffix, simplify := 0, 0
	if p.UseSuffix {
		suffix = 1
	}
	if p.SimplifyState {
		simplify = 1
	}
	if _, err := fmt.Fprintf(w, "rlspolicy %d %d %d\n", p.K, suffix, simplify); err != nil {
		return err
	}
	return nn.SaveMLP(w, p.Net)
}

// Load reads a policy written by Save.
func Load(r io.Reader) (*Policy, error) {
	var tag string
	var k, suffix, simplify int
	if _, err := fmt.Fscanf(r, "%s %d %d %d\n", &tag, &k, &suffix, &simplify); err != nil {
		return nil, fmt.Errorf("rl: reading policy header: %w", err)
	}
	if tag != "rlspolicy" {
		return nil, fmt.Errorf("rl: bad policy header tag %q", tag)
	}
	net, err := nn.LoadMLP(r)
	if err != nil {
		return nil, err
	}
	p := &Policy{Net: net, K: k, UseSuffix: suffix == 1, SimplifyState: simplify == 1}
	if net.In() != StateDim(p.UseSuffix) {
		return nil, fmt.Errorf("rl: network input %d inconsistent with suffix flag", net.In())
	}
	if net.Out() != p.NumActions() {
		return nil, fmt.Errorf("rl: network output %d inconsistent with k=%d", net.Out(), k)
	}
	return p, nil
}

// SaveFile writes the policy to the named file.
func (p *Policy) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return p.Save(f)
}

// LoadFile reads a policy from the named file.
func LoadFile(path string) (*Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
