package rl

import (
	"fmt"
	"io"
	"math"
	"os"

	"simsub/internal/nn"
)

// Policy is a greedy policy over a learned Q function: for a state s it
// takes arg max_a Q(s, a; θ) (§5.3). It also records the MDP shape it was
// trained for, so search algorithms can reconstruct matching environments.
type Policy struct {
	// Net is the trained main network Q(s, a; θ).
	Net *nn.MLP
	// K is the number of skip actions the policy was trained with.
	K int
	// UseSuffix records whether states include the Θsuf component.
	UseSuffix bool
	// SimplifyState records whether prefix state maintenance excludes
	// skipped points.
	SimplifyState bool
}

// Action returns the greedy action for the state. It is safe for
// concurrent use (inference does not touch the training caches).
func (p *Policy) Action(state []float64) int {
	return argmax(p.Net.Infer(state))
}

// NumActions returns the policy's action-space size.
func (p *Policy) NumActions() int { return 2 + p.K }

// StateDim returns the width of the states the policy consumes.
func (p *Policy) StateDim() int { return StateDim(p.UseSuffix) }

// Actor is a greedy decision source a search walk (or a batch of walks in
// lockstep) draws actions from: the Q network behind a Policy, or a
// compiled TablePolicy. An Actor obtained from NewActor is single-
// goroutine — it owns reusable inference scratch — and must be Released
// when the scan ends; concurrent scans create one per worker.
type Actor interface {
	// Actions writes the greedy action for each of b packed dim-wide state
	// rows into out[:b]. For a fixed state row the result is deterministic
	// and independent of b and of the row's position — the property that
	// makes batched lockstep walks byte-identical to sequential ones.
	Actions(states []float64, b int, out []int)
	// Release returns pooled scratch; the actor is unusable afterwards.
	Release()
}

// netActor serves greedy actions from the policy network via the batched
// zero-allocation inference path.
type netActor struct {
	net *nn.MLP
	s   *nn.InferScratch
}

// NewActor returns a single-goroutine Actor over the policy network.
func (p *Policy) NewActor() Actor {
	return &netActor{net: p.Net, s: nn.NewInferScratch()}
}

func (a *netActor) Actions(states []float64, b int, out []int) {
	a.net.InferBatchArgmax(a.s, states, b, out)
}

func (a *netActor) Release() { a.s.Release() }

// MaxSkipActions bounds the skip-action count K a policy may declare. The
// paper uses single-digit K; the bound exists so a corrupted or hostile
// policy file cannot declare an absurd action space.
const MaxSkipActions = 64

// PolicyError reports an invalid or internally inconsistent policy — a
// corrupted file, a network whose shape does not match the declared MDP, or
// non-finite weights. It is the typed error of Load and Policy.Validate, so
// callers can distinguish bad policies from I/O failures with errors.As.
type PolicyError struct {
	// Reason says what is wrong, for humans.
	Reason string
}

// Error implements the error interface.
func (e *PolicyError) Error() string { return "rl: invalid policy: " + e.Reason }

func policyErrf(format string, args ...any) error {
	return &PolicyError{Reason: fmt.Sprintf(format, args...)}
}

// Validate checks that the policy is safe to serve: the network exists, K
// is within [0, MaxSkipActions], the input width matches the declared state
// shape, the output width equals the 2+K action space (so Action can never
// return an out-of-range action), and every weight is finite. It returns a
// *PolicyError describing the first violation, or nil.
func (p *Policy) Validate() error {
	if p == nil {
		return policyErrf("nil policy")
	}
	if p.Net == nil || len(p.Net.Layers) == 0 {
		return policyErrf("policy has no network")
	}
	if p.K < 0 {
		return policyErrf("negative skip-action count k=%d", p.K)
	}
	if p.K > MaxSkipActions {
		return policyErrf("skip-action count k=%d exceeds the maximum %d", p.K, MaxSkipActions)
	}
	if in, want := p.Net.In(), StateDim(p.UseSuffix); in != want {
		return policyErrf("network input width %d inconsistent with suffix flag (want %d)", in, want)
	}
	if out, want := p.Net.Out(), p.NumActions(); out != want {
		return policyErrf("network output width %d inconsistent with k=%d (want %d)", out, p.K, want)
	}
	for li, l := range p.Net.Layers {
		for _, ps := range []*nn.Tensor{l.W, l.B} {
			for _, w := range ps.W {
				if math.IsNaN(w) || math.IsInf(w, 0) {
					return policyErrf("layer %d has a non-finite parameter", li)
				}
			}
		}
	}
	return nil
}

// Save serializes the policy (metadata header plus network weights).
func (p *Policy) Save(w io.Writer) error {
	suffix, simplify := 0, 0
	if p.UseSuffix {
		suffix = 1
	}
	if p.SimplifyState {
		simplify = 1
	}
	if _, err := fmt.Fprintf(w, "rlspolicy %d %d %d\n", p.K, suffix, simplify); err != nil {
		return err
	}
	return nn.SaveMLP(w, p.Net)
}

// Load reads a policy written by Save. The file is untrusted input: the
// header's K and flag fields, the network's input/output widths and the
// finiteness of every weight are all validated against the declared MDP
// shape before the policy is returned, so a corrupted or hostile file
// surfaces as a *PolicyError here instead of out-of-range actions (or NaN
// rankings) at query time.
func Load(r io.Reader) (*Policy, error) {
	var tag string
	var k, suffix, simplify int
	if _, err := fmt.Fscanf(r, "%s %d %d %d\n", &tag, &k, &suffix, &simplify); err != nil {
		return nil, policyErrf("reading policy header: %v", err)
	}
	if tag != "rlspolicy" {
		return nil, policyErrf("bad policy header tag %q", tag)
	}
	if suffix != 0 && suffix != 1 {
		return nil, policyErrf("suffix flag %d is not 0 or 1", suffix)
	}
	if simplify != 0 && simplify != 1 {
		return nil, policyErrf("simplify flag %d is not 0 or 1", simplify)
	}
	if k < 0 || k > MaxSkipActions {
		return nil, policyErrf("skip-action count k=%d outside [0, %d]", k, MaxSkipActions)
	}
	net, err := nn.LoadMLP(r)
	if err != nil {
		return nil, policyErrf("%v", err)
	}
	p := &Policy{Net: net, K: k, UseSuffix: suffix == 1, SimplifyState: simplify == 1}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// SaveFile writes the policy to the named file.
func (p *Policy) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return p.Save(f)
}

// LoadFile reads a policy from the named file.
func LoadFile(path string) (*Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
