package rl

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"simsub/internal/geo"
	"simsub/internal/nn"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

func randTraj(rng *rand.Rand, n int) traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
	}
	return traj.New(pts...)
}

// constantPolicy returns a policy whose network always prefers the given
// action, regardless of state: zero weights with a strong output bias.
func constantPolicy(action, k int, useSuffix bool) *Policy {
	dim := StateDim(useSuffix)
	actions := 2 + k
	net := nn.NewMLP([]int{dim, 2, actions}, []nn.Activation{nn.ReLU, nn.Sigmoid}, rand.New(rand.NewSource(1)))
	for _, l := range net.Layers {
		for i := range l.W.W {
			l.W.W[i] = 0
		}
		for i := range l.B.W {
			l.B.W[i] = -5
		}
	}
	out := net.Layers[len(net.Layers)-1]
	out.B.W[action] = 5
	return &Policy{Net: net, K: k, UseSuffix: useSuffix}
}

func TestEnvRewardTelescopes(t *testing.T) {
	// §5.1: the undiscounted return equals the final Θbest (initial Θbest
	// is 0), for any action sequence.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		data := randTraj(rng, rng.Intn(15)+1)
		q := randTraj(rng, rng.Intn(5)+1)
		for _, cfg := range []EnvConfig{
			{UseSuffix: true},
			{UseSuffix: false},
			{UseSuffix: true, SimplifyState: true},
		} {
			env := NewSplitEnv(sim.DTW{}, data, q, cfg)
			total := 0.0
			k := 2
			for !env.Done() {
				total += env.Step(rng.Intn(2 + k))
			}
			_, dBest := env.Best()
			if math.Abs(total-bestSim(dBest)) > 1e-9 {
				t.Fatalf("cfg %+v: return %v != final Θbest %v", cfg, total, bestSim(dBest))
			}
		}
	}
}

func TestEnvNoSplitTracksPrefixAndSuffixMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randTraj(rng, 10)
	q := randTraj(rng, 4)
	m := sim.DTW{}
	env := NewSplitEnv(m, data, q, EnvConfig{UseSuffix: true})
	for !env.Done() {
		env.Step(0)
	}
	_, dBest := env.Best()
	// without splits, candidates are prefixes T[0,i] and suffixes T[i,n-1]
	want := math.Inf(1)
	n := data.Len()
	for i := 0; i < n; i++ {
		if d := m.Dist(data.Sub(0, i), q); d < want {
			want = d
		}
		if d := m.Dist(data.Sub(i, n-1), q); d < want { // DTW reversal-invariant
			want = d
		}
	}
	if math.Abs(dBest-want) > 1e-9 {
		t.Errorf("no-split best %v, want %v", dBest, want)
	}
}

func TestEnvAlwaysSplitScansSinglePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := randTraj(rng, 8)
	q := randTraj(rng, 3)
	m := sim.DTW{}
	env := NewSplitEnv(m, data, q, EnvConfig{UseSuffix: false})
	for !env.Done() {
		env.Step(1)
	}
	_, dBest := env.Best()
	want := math.Inf(1)
	for i := 0; i < data.Len(); i++ {
		if d := m.Dist(data.Sub(i, i), q); d < want {
			want = d
		}
	}
	if math.Abs(dBest-want) > 1e-9 {
		t.Errorf("always-split best %v, want min single-point %v", dBest, want)
	}
}

func TestEnvStateShape(t *testing.T) {
	data := traj.FromXY(0, 0, 1, 0, 2, 0)
	q := traj.FromXY(0, 0)
	with := NewSplitEnv(sim.DTW{}, data, q, EnvConfig{UseSuffix: true})
	if got := len(with.State()); got != 3 || with.StateDim() != 3 {
		t.Errorf("suffix state width = %d, want 3", got)
	}
	without := NewSplitEnv(sim.DTW{}, data, q, EnvConfig{UseSuffix: false})
	if got := len(without.State()); got != 2 || without.StateDim() != 2 {
		t.Errorf("no-suffix state width = %d, want 2", got)
	}
	// initial state: Θbest = 0, Θpre = Sim(d(T[0,0], q))
	s := with.State()
	if s[0] != 0 {
		t.Errorf("initial Θbest = %v, want 0", s[0])
	}
	wantPre := sim.Sim((sim.DTW{}).Dist(data.Sub(0, 0), q))
	if math.Abs(s[1]-wantPre) > 1e-12 {
		t.Errorf("initial Θpre = %v, want %v", s[1], wantPre)
	}
}

func TestEnvSkipAdvancesPosition(t *testing.T) {
	data := traj.FromXY(0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0)
	q := traj.FromXY(0, 0)
	env := NewSplitEnv(sim.DTW{}, data, q, EnvConfig{UseSuffix: false, SimplifyState: true})
	if env.Pos() != 0 {
		t.Fatalf("initial pos = %d", env.Pos())
	}
	env.Step(3) // skip 2 points: scan p3 next (index 3)
	if env.Pos() != 3 {
		t.Errorf("pos after skip-2 = %d, want 3", env.Pos())
	}
	env.Step(2) // skip 1: next would be 5
	if env.Pos() != 5 {
		t.Errorf("pos after skip-1 = %d, want 5", env.Pos())
	}
	if env.Done() {
		t.Error("episode should not be done until the final point is acted on")
	}
	env.Step(0)
	if !env.Done() {
		t.Error("acting on the final point should finish the episode")
	}
}

func TestEnvSkipClampsToFinalPoint(t *testing.T) {
	data := traj.FromXY(0, 0, 1, 0, 2, 0)
	q := traj.FromXY(0, 0)
	env := NewSplitEnv(sim.DTW{}, data, q, EnvConfig{})
	env.Step(5) // huge skip: clamps to the last point rather than past it
	if env.Pos() != 2 || env.Done() {
		t.Errorf("pos = %d done = %v, want pos 2 not done", env.Pos(), env.Done())
	}
}

func TestEnvSimplifiedStatePrefixExcludesSkipped(t *testing.T) {
	// with SimplifyState, after skipping point 1 the prefix at point 2 is
	// the two-point sequence <p0, p2>, not T[0,2]
	data := traj.FromXY(0, 0, 100, 100, 2, 0)
	q := traj.FromXY(0, 0, 2, 0)
	m := sim.DTW{}
	env := NewSplitEnv(m, data, q, EnvConfig{UseSuffix: false, SimplifyState: true})
	env.Step(2) // skip p1
	simplified := traj.New(geo.Point{X: 0, Y: 0}, geo.Point{X: 2, Y: 0})
	wantPre := sim.Sim(m.Dist(simplified, q))
	if got := env.State()[1]; math.Abs(got-wantPre) > 1e-9 {
		t.Errorf("simplified Θpre = %v, want %v", got, wantPre)
	}
	// without simplification the skipped point is streamed through
	env2 := NewSplitEnv(m, data, q, EnvConfig{UseSuffix: false, SimplifyState: false})
	env2.Step(2)
	wantFull := sim.Sim(m.Dist(data.Sub(0, 2), q))
	if got := env2.State()[1]; math.Abs(got-wantFull) > 1e-9 {
		t.Errorf("full Θpre = %v, want %v", got, wantFull)
	}
}

func TestEnvStepAfterDonePanics(t *testing.T) {
	data := traj.FromXY(0, 0)
	q := traj.FromXY(0, 0)
	env := NewSplitEnv(sim.DTW{}, data, q, EnvConfig{})
	env.Step(0)
	if !env.Done() {
		t.Fatal("single-point episode should finish after one step")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic stepping a finished episode")
		}
	}()
	env.Step(0)
}

func TestEnvResetRestoresInitialState(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randTraj(rng, 8)
	q := randTraj(rng, 3)
	env := NewSplitEnv(sim.DTW{}, data, q, EnvConfig{UseSuffix: true})
	first := env.State()
	env.FinishGreedy()
	env.Reset()
	second := env.State()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("state after Reset differs: %v vs %v", first, second)
		}
	}
	if env.Done() || env.Pos() != 0 {
		t.Error("Reset did not rewind the episode")
	}
}

func TestReplayMemoryWrapAround(t *testing.T) {
	m := newReplayMemory(4)
	for i := 0; i < 10; i++ {
		m.add(experience{reward: float64(i)})
	}
	if m.size() != 4 {
		t.Fatalf("size = %d, want 4", m.size())
	}
	// only the last 4 rewards (6..9) should remain
	seen := map[float64]bool{}
	for _, e := range m.buf {
		seen[e.reward] = true
	}
	for r := range seen {
		if r < 6 {
			t.Errorf("stale experience %v survived wrap-around", r)
		}
	}
	rng := rand.New(rand.NewSource(6))
	batch := m.sample(rng, 8, nil)
	if len(batch) != 8 {
		t.Errorf("sample returned %d, want 8", len(batch))
	}
}

func TestTrainSmoke(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]traj.Trajectory, 10)
	queries := make([]traj.Trajectory, 10)
	for i := range data {
		data[i] = randTraj(rng, 12)
		queries[i] = randTraj(rng, 4)
	}
	p, stats, err := Train(data, queries, sim.DTW{}, Config{
		Episodes: 30, Seed: 3, UseSuffix: true,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if p == nil || p.K != 0 || !p.UseSuffix {
		t.Fatalf("unexpected policy %+v", p)
	}
	if len(stats.EpisodeReward) != 30 || stats.Steps == 0 || stats.Duration <= 0 {
		t.Errorf("unexpected stats %+v", stats)
	}
	if p.Net.In() != 3 || p.Net.Out() != 2 {
		t.Errorf("network shape %dx%d, want 3x2", p.Net.In(), p.Net.Out())
	}
	// the policy must produce legal actions
	for trial := 0; trial < 10; trial++ {
		a := p.Action([]float64{rng.Float64(), rng.Float64(), rng.Float64()})
		if a < 0 || a >= 2 {
			t.Fatalf("illegal action %d", a)
		}
	}
}

func TestTrainSkipConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := make([]traj.Trajectory, 5)
	queries := make([]traj.Trajectory, 5)
	for i := range data {
		data[i] = randTraj(rng, 10)
		queries[i] = randTraj(rng, 3)
	}
	p, _, err := Train(data, queries, sim.DTW{}, Config{
		Episodes: 10, Seed: 4, K: 3, UseSuffix: true, SimplifyState: true,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if p.K != 3 || !p.SimplifyState || p.NumActions() != 5 {
		t.Errorf("policy %+v", p)
	}
	if p.Net.Out() != 5 {
		t.Errorf("network out = %d, want 5", p.Net.Out())
	}
}

func TestTrainDoubleDQN(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]traj.Trajectory, 6)
	queries := make([]traj.Trajectory, 6)
	for i := range data {
		data[i] = randTraj(rng, 10)
		queries[i] = randTraj(rng, 3)
	}
	p, stats, err := Train(data, queries, sim.DTW{}, Config{
		Episodes: 15, Seed: 11, UseSuffix: true, DoubleDQN: true,
	})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if p == nil || len(stats.EpisodeReward) != 15 {
		t.Fatalf("unexpected result %v %+v", p, stats)
	}
	// double and vanilla training with the same seed should diverge
	// (different bootstrap targets)
	v, _, err := Train(data, queries, sim.DTW{}, Config{
		Episodes: 15, Seed: 11, UseSuffix: true,
	})
	if err != nil {
		t.Fatalf("Train vanilla: %v", err)
	}
	same := true
	for i, w := range p.Net.Params() {
		vw := v.Net.Params()[i]
		for j := range w.W {
			if w.W[j] != vw.W[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("DoubleDQN had no effect on training")
	}
}

func TestTrainEmptyInputs(t *testing.T) {
	if _, _, err := Train(nil, nil, sim.DTW{}, Config{}); err == nil {
		t.Error("expected error for empty training sets")
	}
}

func TestPolicySaveLoadRoundTrip(t *testing.T) {
	p := constantPolicy(1, 3, true)
	p.SimplifyState = true
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.K != 3 || !got.UseSuffix || !got.SimplifyState {
		t.Errorf("metadata lost: %+v", got)
	}
	state := []float64{0.1, 0.2, 0.3}
	if got.Action(state) != p.Action(state) {
		t.Error("round-tripped policy decides differently")
	}
}

func TestPolicyLoadCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("expected error on corrupt policy data")
	}
}

func TestPolicyFileRoundTrip(t *testing.T) {
	p := constantPolicy(0, 0, false)
	path := t.TempDir() + "/policy.bin"
	if err := p.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.K != 0 || got.UseSuffix {
		t.Errorf("metadata %+v", got)
	}
}

func TestConstantPolicyActions(t *testing.T) {
	for action := 0; action < 4; action++ {
		p := constantPolicy(action, 2, true)
		state := []float64{0.5, 0.5, 0.5}
		if got := p.Action(state); got != action {
			t.Errorf("constant policy returns %d, want %d", got, action)
		}
	}
}

func TestMeanRecentReward(t *testing.T) {
	s := TrainStats{EpisodeReward: []float64{1, 2, 3, 4}}
	if got := s.MeanRecentReward(2); got != 3.5 {
		t.Errorf("MeanRecentReward(2) = %v, want 3.5", got)
	}
	if got := s.MeanRecentReward(100); got != 2.5 {
		t.Errorf("MeanRecentReward(100) = %v, want 2.5", got)
	}
	if got := (TrainStats{}).MeanRecentReward(5); got != 0 {
		t.Errorf("empty MeanRecentReward = %v, want 0", got)
	}
}

// mangleHeader re-serializes a valid policy with a forged header line, so
// each header-validation branch of Load can be exercised in isolation.
func mangleHeader(t *testing.T, p *Policy, header string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	raw := buf.Bytes()
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		t.Fatal("no header line")
	}
	return append([]byte(header+"\n"), raw[nl+1:]...)
}

func TestPolicyLoadRejectsInsaneHeaders(t *testing.T) {
	p := constantPolicy(1, 3, true)
	cases := []struct {
		name, header string
	}{
		{"bad tag", "notapolicy 3 1 0"},
		{"negative k", "rlspolicy -1 1 0"},
		{"huge k", "rlspolicy 4096 1 0"},
		{"bad suffix flag", "rlspolicy 3 2 0"},
		{"bad simplify flag", "rlspolicy 3 1 7"},
		{"k mismatching net output", "rlspolicy 5 1 0"},
		{"suffix flag mismatching net input", "rlspolicy 3 0 0"},
	}
	for _, c := range cases {
		_, err := Load(bytes.NewReader(mangleHeader(t, p, c.header)))
		if err == nil {
			t.Errorf("%s: Load accepted header %q", c.name, c.header)
			continue
		}
		var pe *PolicyError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a *PolicyError", c.name, err)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := (*Policy)(nil).Validate(); err == nil {
		t.Error("nil policy validated")
	}
	if err := (&Policy{}).Validate(); err == nil {
		t.Error("netless policy validated")
	}
	ok := constantPolicy(0, 2, true)
	if err := ok.Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	bad := constantPolicy(0, 2, true)
	bad.K = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative K validated")
	}
	bad = constantPolicy(0, 2, true)
	bad.K = MaxSkipActions + 1
	if err := bad.Validate(); err == nil {
		t.Error("oversized K validated")
	}
	bad = constantPolicy(0, 2, true)
	bad.UseSuffix = false // net input stays 3, StateDim says 2
	if err := bad.Validate(); err == nil {
		t.Error("suffix-flag/net-input mismatch validated")
	}
	bad = constantPolicy(0, 2, true)
	bad.Net.Layers[0].W.W[0] = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN weight validated")
	}
	bad = constantPolicy(0, 2, true)
	bad.Net.Layers[0].B.W[0] = math.Inf(1)
	if err := bad.Validate(); err == nil {
		t.Error("Inf bias validated")
	}
}

func TestPolicyLoadRejectsNonFiniteWeights(t *testing.T) {
	p := constantPolicy(0, 1, false)
	p.Net.Layers[0].W.W[0] = math.NaN()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	_, err := Load(&buf)
	if err == nil {
		t.Fatal("Load accepted a NaN weight")
	}
	var pe *PolicyError
	if !errors.As(err, &pe) {
		t.Errorf("error %v is not a *PolicyError", err)
	}
}
