package rl

import (
	"encoding/binary"
	"hash/fnv"

	"simsub/internal/nn"
)

// This file is the distilled table-lookup policy: the DQN state space is
// only 2–3 similarity components, each bounded in [0, 1] (Θ = 1/(1+d), with
// Θbest = 0 before any candidate is recorded), so the greedy policy can be
// compiled onto a dense grid once and served as an O(1) array lookup — no
// matrix products at query time at all. Compilation validates the table
// against the network it distills (the fidelity contract of DESIGN.md):
// every cell is probed at its corners as well as its center, and the
// fraction of probes whose network action disagrees with the cell's stored
// action is reported as the divergence rate, so an operator opting in via
// -policy-compile sees exactly how faithful the compiled surface is before
// it serves traffic.

// Table-compilation bounds. MinTableResolution keeps cells from being so
// coarse the table is a different policy; MaxTableCells caps the memory of
// a compile request (actions are one byte per cell).
const (
	MinTableResolution = 2
	MaxTableCells      = 1 << 24
)

// TablePolicy is a compiled greedy policy: the state hypercube [0,1]^dim
// quantized at Resolution cells per dimension, with the network's greedy
// action precomputed for every cell center. It carries the same MDP shape
// metadata as the Policy it was compiled from, serves actions without
// allocation, and is safe for concurrent use (the table is immutable).
type TablePolicy struct {
	// K, UseSuffix, SimplifyState mirror the source Policy's MDP shape.
	K             int
	UseSuffix     bool
	SimplifyState bool
	// Resolution is the number of grid cells per state dimension.
	Resolution int
	// Actions holds the greedy action per cell, row-major over the state
	// dimensions (first dimension varies slowest).
	Actions []uint8
	// Divergence is the action-divergence rate measured at compile time:
	// the fraction of validation probes (cell corners and centers) where
	// the network's greedy action differs from the table's.
	Divergence float64
}

// StateDim returns the width of the states the table consumes.
func (t *TablePolicy) StateDim() int { return StateDim(t.UseSuffix) }

// NumActions returns the action-space size.
func (t *TablePolicy) NumActions() int { return 2 + t.K }

// cell maps one state component to its grid cell index, clamping values
// outside [0, 1] (Θ components cannot leave it, but a hostile state must
// not index out of bounds).
func (t *TablePolicy) cell(v float64) int {
	if !(v > 0) { // also catches NaN
		return 0
	}
	c := int(v * float64(t.Resolution))
	if c >= t.Resolution {
		c = t.Resolution - 1
	}
	return c
}

// Action returns the table's greedy action for the state.
func (t *TablePolicy) Action(state []float64) int {
	idx := 0
	for _, v := range state[:t.StateDim()] {
		idx = idx*t.Resolution + t.cell(v)
	}
	return int(t.Actions[idx])
}

// NewActor returns an Actor over the table. The table is stateless at
// serve time, so the actor is the table itself and Release is a no-op.
func (t *TablePolicy) NewActor() Actor { return tableActor{t} }

type tableActor struct{ t *TablePolicy }

func (a tableActor) Actions(states []float64, b int, out []int) {
	dim := a.t.StateDim()
	for i := 0; i < b; i++ {
		out[i] = a.t.Action(states[i*dim : (i+1)*dim])
	}
}

func (tableActor) Release() {}

// Fingerprint content-hashes the table (shape metadata plus every cell
// action), so two tables answer queries identically whenever their
// fingerprints match. The engine folds it into its policy fingerprint:
// compiling, recompiling at another resolution, or dropping the table all
// change the serving fingerprint, keeping hot-swap cache invalidation
// sound.
func (t *TablePolicy) Fingerprint() uint64 {
	h := fnv.New64a()
	var hdr [40]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(t.K))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(t.Resolution))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(boolBit(t.UseSuffix)))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(boolBit(t.SimplifyState)))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(t.StateDim()))
	h.Write(hdr[:])
	h.Write(t.Actions)
	return h.Sum64()
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Compile distills a policy's greedy surface onto a dense grid with the
// given per-dimension resolution. It refuses ill-shaped input with a
// *PolicyError before touching the network: an invalid policy (nil,
// inconsistent shape, non-finite weights — Policy.Validate's checks), a
// resolution below MinTableResolution, or a grid exceeding MaxTableCells.
// Every cell's action is the network's greedy action at the cell center,
// computed through the batched inference path; validation then probes each
// cell's corners too and reports the divergence rate on the returned
// table. Compile never modifies p.
func Compile(p *Policy, resolution int) (*TablePolicy, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if resolution < MinTableResolution {
		return nil, policyErrf("table resolution %d below the minimum %d", resolution, MinTableResolution)
	}
	dim := p.StateDim()
	cells := 1
	for d := 0; d < dim; d++ {
		if cells > MaxTableCells/resolution {
			return nil, policyErrf("table of %d^%d cells exceeds the maximum %d", resolution, dim, MaxTableCells)
		}
		cells *= resolution
	}
	t := &TablePolicy{
		K:             p.K,
		UseSuffix:     p.UseSuffix,
		SimplifyState: p.SimplifyState,
		Resolution:    resolution,
		Actions:       make([]uint8, cells),
	}

	scratch := nn.NewInferScratch()
	defer scratch.Release()
	// Fill: one batched argmax pass per slab of cell centers.
	const slab = 4096
	states := make([]float64, slab*dim)
	actions := make([]int, slab)
	coord := make([]int, dim)
	for base := 0; base < cells; base += slab {
		b := min(slab, cells-base)
		for i := 0; i < b; i++ {
			cellCoords(base+i, resolution, coord)
			for d := 0; d < dim; d++ {
				states[i*dim+d] = (float64(coord[d]) + 0.5) / float64(resolution)
			}
		}
		p.Net.InferBatchArgmax(scratch, states[:b*dim], b, actions)
		for i := 0; i < b; i++ {
			t.Actions[base+i] = uint8(actions[i])
		}
	}

	// Validate: probe every cell at its 2^dim corners (nudged inside the
	// cell so the probe indexes back to it) and count network/table action
	// disagreements. Deterministic, so the reported rate is reproducible.
	corners := 1 << dim
	probes := 0
	diverged := 0
	probeStates := make([]float64, slab*dim)
	probeActions := make([]int, slab)
	pending := 0
	pendingCell := make([]int, slab)
	flush := func() {
		if pending == 0 {
			return
		}
		p.Net.InferBatchArgmax(scratch, probeStates[:pending*dim], pending, probeActions)
		for i := 0; i < pending; i++ {
			if uint8(probeActions[i]) != t.Actions[pendingCell[i]] {
				diverged++
			}
		}
		probes += pending
		pending = 0
	}
	inset := 1.0 / (16 * float64(resolution)) // keep corner probes inside their cell
	for c := 0; c < cells; c++ {
		cellCoords(c, resolution, coord)
		for k := 0; k < corners; k++ {
			for d := 0; d < dim; d++ {
				lo := float64(coord[d]) / float64(resolution)
				hi := float64(coord[d]+1) / float64(resolution)
				if k&(1<<d) == 0 {
					probeStates[pending*dim+d] = lo + inset
				} else {
					probeStates[pending*dim+d] = hi - inset
				}
			}
			pendingCell[pending] = c
			pending++
			if pending == slab {
				flush()
			}
		}
	}
	flush()
	if probes > 0 {
		t.Divergence = float64(diverged) / float64(probes)
	}
	return t, nil
}

// cellCoords decodes a row-major cell index into per-dimension coordinates.
func cellCoords(idx, resolution int, coord []int) {
	for d := len(coord) - 1; d >= 0; d-- {
		coord[d] = idx % resolution
		idx /= resolution
	}
}
