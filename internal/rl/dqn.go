package rl

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"simsub/internal/nn"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// Config holds the MDP and DQN hyperparameters. Zero values take the
// defaults of §6.1: a 2-layer feed-forward network with 20 ReLU units and a
// sigmoid output of width 2+k, replay memory 2000, Adam at 0.001, ε-greedy
// with minimum 0.05 and decay 0.99 per episode, discount γ = 0.95.
type Config struct {
	// K is the number of skip actions: 0 trains an RLS policy, k > 0 an
	// RLS-Skip policy (the paper defaults to k = 3).
	K int
	// UseSuffix includes Θsuf in the state (dropped for t2vec and for
	// RLS-Skip+).
	UseSuffix bool
	// SimplifyState enables RLS-Skip's skipped-point state simplification.
	// Ignored when K == 0.
	SimplifyState bool
	// Hidden is the width of the hidden layer (default 20).
	Hidden int
	// Gamma is the reward discount (default 0.95).
	Gamma float64
	// EpsMin and EpsDecay control ε-greedy exploration (defaults 0.05,
	// 0.99); ε starts at 1 and decays per episode.
	EpsMin, EpsDecay float64
	// ReplayCap is the replay memory capacity (default 2000).
	ReplayCap int
	// BatchSize is the minibatch size per gradient step (default 32).
	BatchSize int
	// LR is the Adam learning rate (default 0.001).
	LR float64
	// Episodes is the number of training episodes (default 200).
	Episodes int
	// DoubleDQN, when set, selects the bootstrap action with the main
	// network and evaluates it with the target network (van Hasselt et
	// al.), reducing the overestimation bias of vanilla DQN. An extension
	// beyond the paper, off by default.
	DoubleDQN bool
	// Seed seeds all randomness (default 1).
	Seed int64
	// Verbose, when non-nil, receives progress lines.
	Verbose func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Hidden == 0 {
		c.Hidden = 20
	}
	if c.Gamma == 0 {
		c.Gamma = 0.95
	}
	if c.EpsMin == 0 {
		c.EpsMin = 0.05
	}
	if c.EpsDecay == 0 {
		c.EpsDecay = 0.99
	}
	if c.ReplayCap == 0 {
		c.ReplayCap = 2000
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.001
	}
	if c.Episodes == 0 {
		c.Episodes = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// experience is one replay-memory transition (s, a, r, s', done).
type experience struct {
	state     []float64
	action    int
	reward    float64
	nextState []float64
	done      bool
}

// replayMemory is the fixed-capacity experience pool of §5.2 with uniform
// sampling, breaking the correlation of consecutive transitions.
type replayMemory struct {
	buf  []experience
	next int
	full bool
}

func newReplayMemory(capacity int) *replayMemory {
	return &replayMemory{buf: make([]experience, capacity)}
}

func (r *replayMemory) add(e experience) {
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

func (r *replayMemory) size() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// sample draws k experiences uniformly with replacement.
func (r *replayMemory) sample(rng *rand.Rand, k int, out []experience) []experience {
	n := r.size()
	out = out[:0]
	for i := 0; i < k; i++ {
		out = append(out, r.buf[rng.Intn(n)])
	}
	return out
}

// TrainStats summarizes a DQN training run.
type TrainStats struct {
	// EpisodeReward is the undiscounted return (final Θbest) per episode.
	EpisodeReward []float64
	// Steps is the total number of environment steps taken.
	Steps int
	// Duration is the wall-clock training time.
	Duration time.Duration
}

// MeanRecentReward averages the last k episode rewards (all when k exceeds
// the episode count).
func (s TrainStats) MeanRecentReward(k int) float64 {
	n := len(s.EpisodeReward)
	if n == 0 {
		return 0
	}
	if k > n {
		k = n
	}
	var sum float64
	for _, r := range s.EpisodeReward[n-k:] {
		sum += r
	}
	return sum / float64(k)
}

// Train runs Algorithm 3: deep Q-network learning with experience replay
// over episodes that each sample a (data, query) trajectory pair uniformly.
// It returns the greedy policy for the learned Q function.
func Train(data, queries []traj.Trajectory, m sim.Measure, cfg Config) (*Policy, TrainStats, error) {
	cfg.fill()
	if len(data) == 0 || len(queries) == 0 {
		return nil, TrainStats{}, fmt.Errorf("rl: empty training data (%d data, %d queries)", len(data), len(queries))
	}
	start := time.Now()
	rng := rand.New(rand.NewSource(cfg.Seed))
	stateDim := StateDim(cfg.UseSuffix)
	actions := 2 + cfg.K
	// main and target networks (lines 2-3): 20 ReLU units then sigmoid
	// outputs, one per action (§6.1)
	qNet := nn.NewMLP([]int{stateDim, cfg.Hidden, actions}, []nn.Activation{nn.ReLU, nn.Sigmoid}, rng)
	target := qNet.Clone()
	opt := nn.NewAdam(qNet.Params(), cfg.LR)
	opt.Clip = 1
	memory := newReplayMemory(cfg.ReplayCap)
	batch := make([]experience, 0, cfg.BatchSize)

	stats := TrainStats{}
	eps := 1.0
	for ep := 0; ep < cfg.Episodes; ep++ {
		// line 5: sample a data and a query trajectory uniformly
		t := data[rng.Intn(len(data))]
		q := queries[rng.Intn(len(queries))]
		if t.Len() == 0 || q.Len() == 0 {
			continue
		}
		env := NewSplitEnv(m, t, q, EnvConfig{
			UseSuffix:     cfg.UseSuffix,
			SimplifyState: cfg.SimplifyState && cfg.K > 0,
		})
		state := env.State()
		for !env.Done() {
			// line 10: ε-greedy action selection on the main network
			var action int
			if rng.Float64() < eps {
				action = rng.Intn(actions)
			} else {
				action = argmax(qNet.Forward(state))
			}
			reward := env.Step(action)
			stats.Steps++
			done := env.Done()
			var nextState []float64
			if !done {
				nextState = env.State()
			}
			// line 21: store the experience
			memory.add(experience{state: state, action: action, reward: reward, nextState: nextState, done: done})
			// lines 22-23: minibatch gradient step on Equation 3
			if memory.size() >= cfg.BatchSize {
				batch = memory.sample(rng, cfg.BatchSize, batch)
				trainBatch(qNet, target, batch, cfg.Gamma, cfg.DoubleDQN, opt)
			}
			if !done {
				state = nextState
			}
		}
		_, dBest := env.Best()
		stats.EpisodeReward = append(stats.EpisodeReward, bestSim(dBest))
		// line 25: synchronize the target network each episode
		target.Params().CopyFrom(qNet.Params())
		if eps > cfg.EpsMin {
			eps *= cfg.EpsDecay
			if eps < cfg.EpsMin {
				eps = cfg.EpsMin
			}
		}
		if cfg.Verbose != nil && (ep+1)%50 == 0 {
			cfg.Verbose("rl: episode %d/%d eps=%.3f recent reward=%.4f",
				ep+1, cfg.Episodes, eps, stats.MeanRecentReward(50))
		}
	}
	stats.Duration = time.Since(start)
	return &Policy{
		Net:           qNet,
		K:             cfg.K,
		UseSuffix:     cfg.UseSuffix,
		SimplifyState: cfg.SimplifyState && cfg.K > 0,
	}, stats, nil
}

// trainBatch performs one gradient step on the DQN loss (Equation 3) over a
// minibatch. With double enabled, the bootstrap uses the main network for
// action selection and the target network for evaluation.
func trainBatch(qNet, target *nn.MLP, batch []experience, gamma float64, double bool, opt *nn.Adam) {
	for _, e := range batch {
		y := e.reward
		if !e.done {
			if double {
				a := argmax(qNet.Infer(e.nextState))
				y += gamma * target.Infer(e.nextState)[a]
			} else {
				y += gamma * maxOf(target.Infer(e.nextState))
			}
		}
		out := qNet.Forward(e.state)
		grad := make([]float64, len(out))
		grad[e.action] = out[e.action] - y // d/dQ of ½(Q-y)²
		qNet.Backward(grad)
	}
	opt.Step()
}

func argmax(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

func maxOf(v []float64) float64 {
	best := math.Inf(-1)
	for _, x := range v {
		if x > best {
			best = x
		}
	}
	return best
}
