package core

import (
	"container/heap"
	"math"

	"simsub/internal/sim"
	"simsub/internal/traj"
)

// This file implements the top-k generalization sketched in §3.1: instead
// of the single most similar subtrajectory, return the k most similar ones.
// The paper notes the extension is straightforward — "maintaining the k
// most similar subtrajectories and updating them when a subtrajectory that
// is more similar than the kth most similar subtrajectory" is found — and
// that is what resultHeap does for both the exact enumeration and the
// splitting-based search processes.

// resultHeap is a bounded max-heap on distance: it retains the k smallest
// results seen. Overlapping intervals are allowed unless distinct is set,
// in which case an incoming interval replaces an overlapping held one only
// when strictly better, keeping the answer set spatially diverse.
type resultHeap struct {
	k        int
	distinct bool
	items    []Result
}

// Len, Less, Swap, Push and Pop implement heap.Interface (max-heap).
func (h *resultHeap) Len() int           { return len(h.items) }
func (h *resultHeap) Less(i, j int) bool { return h.items[i].Dist > h.items[j].Dist }
func (h *resultHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *resultHeap) Push(x any)         { h.items = append(h.items, x.(Result)) }
func (h *resultHeap) Pop() any {
	old := h.items
	n := len(old)
	out := old[n-1]
	h.items = old[:n-1]
	return out
}

// offer considers a candidate for the top-k set.
func (h *resultHeap) offer(r Result) {
	if h.distinct {
		for i := range h.items {
			if overlaps(h.items[i].Interval, r.Interval) {
				if r.Dist < h.items[i].Dist {
					h.items[i] = r
					heap.Fix(h, i)
				}
				return
			}
		}
	}
	if len(h.items) < h.k {
		heap.Push(h, r)
		return
	}
	if r.Dist < h.items[0].Dist {
		h.items[0] = r
		heap.Fix(h, 0)
	}
}

// sorted drains the heap into ascending-distance order.
func (h *resultHeap) sorted() []Result {
	out := make([]Result, len(h.items))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result)
	}
	return out
}

func overlaps(a, b traj.Interval) bool { return a.I <= b.J && b.I <= a.J }

// threshold returns the heap's current k-th best distance, +Inf while it
// is not yet full. An offer can only change the heap when its distance is
// strictly below this (a full heap replaces on strict <, and a distinct-
// mode overlap replacement needs to beat the held item, whose distance is
// at most the root's), so evaluations provably above it are skippable
// without changing the final ranking.
func (h *resultHeap) threshold() float64 {
	if h.k > 0 && len(h.items) == h.k {
		return h.items[0].Dist
	}
	return math.Inf(1)
}

// TopKExact returns the k most similar subtrajectories of t to q in
// ascending distance order, by exact enumeration with incremental
// computation — the same O(n·(Φini + n·Φinc)) cost as ExactS. With
// distinct, overlapping answers are collapsed to the best representative,
// which is usually what applications (e.g. play retrieval) want.
// Once the heap fills, inner scans abandon through sim.ThresholdIncremental
// against its k-th-best distance: the skipped evaluations are provably
// strictly worse than every retained result, so the ranking is byte-
// identical to the full enumeration.
func TopKExact(m sim.Measure, t, q traj.Trajectory, k int, distinct bool) []Result {
	h := &resultHeap{k: k, distinct: distinct}
	n := t.Len()
	if n == 0 || k <= 0 {
		return h.sorted()
	}
	inc := m.NewIncremental(t, q)
	defer sim.Release(inc)
	tinc, _ := inc.(sim.ThresholdIncremental)
	for i := 0; i < n; i++ {
		h.offer(Result{Interval: traj.Interval{I: i, J: i}, Dist: inc.Init(i)})
		for j := i + 1; j < n; j++ {
			var d float64
			if tinc != nil {
				var abandoned bool
				d, abandoned = tinc.ExtendAbandoning(h.threshold())
				if abandoned {
					break
				}
			} else {
				d = inc.Extend()
			}
			h.offer(Result{Interval: traj.Interval{I: i, J: j}, Dist: d})
		}
	}
	return h.sorted()
}

// TopKSplit runs the PSS splitting process (Algorithm 2) while maintaining
// the k best candidate subtrajectories it exposes, in the same
// O(n1·Φini + n·Φinc) time as PSS. Candidates are the prefixes and
// suffixes the scan evaluates, so like PSS it is approximate.
func TopKSplit(m sim.Measure, t, q traj.Trajectory, k int, distinct bool) []Result {
	n := t.Len()
	if n == 0 {
		return nil
	}
	suf := sim.SuffixDists(m, t, q)
	h := &resultHeap{k: k, distinct: distinct}
	bestDist := math.Inf(1)
	start := 0
	inc := m.NewIncremental(t, q)
	defer sim.Release(inc)
	var dPre float64
	for i := 0; i < n; i++ {
		if i == start {
			dPre = inc.Init(i)
		} else {
			dPre = inc.Extend()
		}
		h.offer(Result{Interval: traj.Interval{I: start, J: i}, Dist: dPre})
		h.offer(Result{Interval: traj.Interval{I: i, J: n - 1}, Dist: suf[i]})
		if math.Min(dPre, suf[i]) < bestDist {
			bestDist = math.Min(dPre, suf[i])
			start = i + 1
		}
	}
	return h.sorted()
}
