package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"simsub/internal/index"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// Database is a collection of data trajectories with an optional MBR R-tree
// for pruning (§6.2(4)): a query first discards every trajectory whose MBR
// does not intersect the query's MBR. The paper notes this pruning can in
// principle drop the true best subtrajectory but rarely does in practice
// (and never did for DTW/Fréchet in its experiments).
type Database struct {
	trajs []traj.Trajectory
	tree  *index.RTree
	grid  *index.GridIndex
}

// IndexKind selects the pruning structure of a Database.
type IndexKind int

// Index kinds: none, the MBR R-tree of §6.2(4), or the inverted grid file
// alternative mentioned in §3.1.
const (
	NoIndex IndexKind = iota
	RTreeIndex
	GridFileIndex
)

// NewDatabase builds a database; withIndex controls whether the R-tree is
// constructed (bulk-loaded, fan-out 32).
func NewDatabase(ts []traj.Trajectory, withIndex bool) *Database {
	kind := NoIndex
	if withIndex {
		kind = RTreeIndex
	}
	return NewDatabaseIndexed(ts, kind)
}

// NewDatabaseIndexed builds a database with the chosen index kind.
func NewDatabaseIndexed(ts []traj.Trajectory, kind IndexKind) *Database {
	db := &Database{trajs: ts}
	switch kind {
	case RTreeIndex:
		entries := make([]index.Entry, len(ts))
		for i, t := range ts {
			entries[i] = index.Entry{Rect: t.MBR(), Ref: i}
		}
		db.tree = index.BulkLoad(entries, 32)
	case GridFileIndex:
		db.grid = index.NewGridIndex(ts, 32)
	}
	return db
}

// Len returns the number of data trajectories.
func (db *Database) Len() int { return len(db.trajs) }

// Traj returns the i-th data trajectory.
func (db *Database) Traj(i int) traj.Trajectory { return db.trajs[i] }

// HasIndex reports whether a pruning index was built.
func (db *Database) HasIndex() bool { return db.tree != nil || db.grid != nil }

// Candidates returns the indices of trajectories surviving index pruning
// for the query (all indices when no index was built).
func (db *Database) Candidates(q traj.Trajectory) []int {
	switch {
	case db.tree != nil:
		return db.tree.Search(q.MBR(), nil)
	case db.grid != nil:
		return db.grid.Candidates(q)
	default:
		out := make([]int, len(db.trajs))
		for i := range out {
			out[i] = i
		}
		return out
	}
}

// Match is one ranked answer of a top-k query.
type Match struct {
	// TrajIndex is the position of the data trajectory in the database.
	TrajIndex int
	// Result locates the subtrajectory within that trajectory.
	Result Result
}

// TopK runs the algorithm over every candidate trajectory and returns the k
// best matches ordered by ascending distance. With the index enabled,
// candidates are limited to MBR-intersecting trajectories.
func (db *Database) TopK(alg Algorithm, q traj.Trajectory, k int) []Match {
	cands := db.Candidates(q)
	matches := make([]Match, 0, len(cands))
	for _, ci := range cands {
		t := db.trajs[ci]
		if t.Len() == 0 {
			continue
		}
		matches = append(matches, Match{TrajIndex: ci, Result: alg.Search(t, q)})
	}
	sort.Slice(matches, func(i, j int) bool {
		return matches[i].Result.Dist < matches[j].Result.Dist
	})
	if k < len(matches) {
		matches = matches[:k]
	}
	return matches
}

// TopKParallel is TopK with the per-trajectory searches fanned out over
// workers goroutines (0 = GOMAXPROCS). The algorithm and measure must be
// safe for concurrent use; every algorithm and measure in this library is.
func (db *Database) TopKParallel(alg Algorithm, q traj.Trajectory, k, workers int) []Match {
	cands := db.Candidates(q)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		return db.TopK(alg, q, k)
	}
	matches := make([]Match, len(cands))
	valid := make([]bool, len(cands))
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				t := db.trajs[cands[i]]
				if t.Len() == 0 {
					continue
				}
				matches[i] = Match{TrajIndex: cands[i], Result: alg.Search(t, q)}
				valid[i] = true
			}
		}()
	}
	wg.Wait()
	out := matches[:0]
	for i := range matches {
		if valid[i] {
			out = append(out, matches[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Result.Dist < out[j].Result.Dist })
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Best returns the single best match (TopK with k = 1); ok is false when
// the database holds no candidates.
func (db *Database) Best(alg Algorithm, q traj.Trajectory) (Match, bool) {
	top := db.TopK(alg, q, 1)
	if len(top) == 0 {
		return Match{}, false
	}
	return top[0], true
}

// AlgorithmFor builds the named algorithm over a measure with reasonable
// defaults. Names: exacts, sizes, pss, pos, pos-d, spring, ucr, random-s,
// simtra. RLS variants require a policy and are constructed directly.
func AlgorithmFor(name string, m sim.Measure) (Algorithm, bool) {
	switch name {
	case "exacts":
		return ExactS{M: m}, true
	case "sizes":
		return SizeS{M: m, Xi: 5}, true
	case "pss":
		return PSS{M: m}, true
	case "pos":
		return POS{M: m}, true
	case "pos-d", "posd":
		return POSD{M: m, D: 5}, true
	case "spring":
		return Spring{}, true
	case "ucr":
		return UCR{Band: 1}, true
	case "random-s", "randoms":
		return RandomS{M: m, Samples: 50}, true
	case "simtra":
		return SimTra{M: m}, true
	}
	return nil, false
}
