package core

import (
	"container/heap"
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"simsub/internal/geo"
	"simsub/internal/index"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// Backend supplies a Database's trajectories and their precomputed scan
// metadata (TrajMeta: point count, MBR, reversal). The in-memory default is
// built by the NewDatabase* constructors; persistent backends (package
// internal/storage) serve mmap'd on-disk points and snapshot-restored
// metadata through the same interface, so the zero-allocation scan path is
// oblivious to where the points live. Backends must be immutable once a
// Database is built over them, and Traj/Meta must be safe for concurrent
// use.
type Backend interface {
	// Len returns the number of trajectories.
	Len() int
	// Traj returns the i-th trajectory. The points may be backed by an
	// mmap'd file and must be treated as read-only.
	Traj(i int) traj.Trajectory
	// Meta returns the i-th trajectory's precomputed scan metadata.
	Meta(i int) TrajMeta
}

// memBackend is the in-memory default Backend: trajectories plus metadata
// derived once at construction.
type memBackend struct {
	trajs []traj.Trajectory
	metas []TrajMeta
}

func (b *memBackend) Len() int                   { return len(b.trajs) }
func (b *memBackend) Traj(i int) traj.Trajectory { return b.trajs[i] }
func (b *memBackend) Meta(i int) TrajMeta        { return b.metas[i] }

// NewMemBackend builds the in-memory Backend: per-trajectory MBRs and
// reversals are derived once, here, so the scan hot path never re-derives
// them. When metas is non-nil it must be parallel to ts and is adopted
// as-is (the caller — a persistent store restoring a snapshot — already
// owns the derivation).
func NewMemBackend(ts []traj.Trajectory, metas []TrajMeta) Backend {
	if metas == nil {
		metas = make([]TrajMeta, len(ts))
		for i, t := range ts {
			metas[i] = DeriveMeta(t)
		}
	}
	return &memBackend{trajs: ts, metas: metas}
}

// DeriveMeta computes a trajectory's scan metadata from scratch: the
// insert-time derivation the snapshot path exists to skip.
func DeriveMeta(t traj.Trajectory) TrajMeta {
	return TrajMeta{N: t.Len(), MBR: t.MBR(), Rev: t.Reverse()}
}

// Database is a collection of data trajectories with an optional MBR R-tree
// for pruning (§6.2(4)): a query first discards every trajectory whose MBR
// does not intersect the query's MBR. The paper notes this pruning can in
// principle drop the true best subtrajectory but rarely does in practice
// (and never did for DTW/Fréchet in its experiments).
//
// The trajectories live behind a pluggable Backend: in-memory by default,
// or a persistent segment store serving mmap'd points.
type Database struct {
	be   Backend
	tree *index.RTree
	grid *index.GridIndex
}

// IndexKind selects the pruning structure of a Database.
type IndexKind int

// Index kinds: none, the MBR R-tree of §6.2(4), or the inverted grid file
// alternative mentioned in §3.1.
const (
	NoIndex IndexKind = iota
	RTreeIndex
	GridFileIndex
)

// NewDatabase builds a database; withIndex controls whether the R-tree is
// constructed (bulk-loaded, fan-out 32).
func NewDatabase(ts []traj.Trajectory, withIndex bool) *Database {
	kind := NoIndex
	if withIndex {
		kind = RTreeIndex
	}
	return NewDatabaseIndexed(ts, kind)
}

// NewDatabaseIndexed builds a database with the chosen index kind over the
// in-memory backend (insert-time metadata derived here, once).
func NewDatabaseIndexed(ts []traj.Trajectory, kind IndexKind) *Database {
	return NewDatabaseBackend(NewMemBackend(ts, nil), kind)
}

// NewDatabaseBackend builds a database over an externally owned Backend —
// the pluggable-storage entry point. The backend's metadata feeds the index
// build and the filter pushdown, so a backend restoring snapshot metadata
// pays no per-point derivation here.
func NewDatabaseBackend(be Backend, kind IndexKind) *Database {
	db := &Database{be: be}
	switch kind {
	case RTreeIndex:
		entries := make([]index.Entry, be.Len())
		for i := range entries {
			entries[i] = index.Entry{Rect: be.Meta(i).MBR, Ref: i}
		}
		db.tree = index.BulkLoad(entries, 32)
	case GridFileIndex:
		ts := make([]traj.Trajectory, be.Len())
		for i := range ts {
			ts[i] = be.Traj(i)
		}
		db.grid = index.NewGridIndex(ts, 32)
	}
	return db
}

// Len returns the number of data trajectories.
func (db *Database) Len() int { return db.be.Len() }

// Traj returns the i-th data trajectory.
func (db *Database) Traj(i int) traj.Trajectory { return db.be.Traj(i) }

// Meta returns the i-th trajectory's precomputed scan metadata.
func (db *Database) Meta(i int) TrajMeta { return db.be.Meta(i) }

// HasIndex reports whether a pruning index was built.
func (db *Database) HasIndex() bool { return db.tree != nil || db.grid != nil }

// Candidates returns the indices of trajectories surviving index pruning
// for the query (all indices when no index was built).
func (db *Database) Candidates(q traj.Trajectory) []int {
	switch {
	case db.tree != nil:
		return db.tree.Search(q.MBR(), nil)
	case db.grid != nil:
		return db.grid.Candidates(q)
	default:
		out := make([]int, db.be.Len())
		for i := range out {
			out[i] = i
		}
		return out
	}
}

// CandidatesFiltered returns Candidates(q) restricted to trajectories
// whose MBR intersects filter; a nil filter means no restriction. This is
// the pushdown target for a query's spatial constraint: the similarity
// pruning and the region constraint compose into one candidate set before
// any distance is computed.
func (db *Database) CandidatesFiltered(q traj.Trajectory, filter *geo.Rect) []int {
	cands := db.Candidates(q)
	if filter == nil {
		return cands
	}
	out := cands[:0]
	for _, ci := range cands {
		if db.be.Meta(ci).MBR.Intersects(*filter) {
			out = append(out, ci)
		}
	}
	return out
}

// Match is one ranked answer of a top-k query.
type Match struct {
	// TrajIndex is the position of the data trajectory in the database.
	TrajIndex int
	// Result locates the subtrajectory within that trajectory.
	Result Result
}

// RankBefore is the canonical total order of top-k answers: ascending
// distance, with deterministic tie-breaking by trajectory identifier and
// interval so that serial, parallel and sharded searches agree on
// equal-distance matches. Every ranking in this package and the engine's
// per-shard merge must use it.
func RankBefore(d1 float64, id1 int, iv1 traj.Interval, d2 float64, id2 int, iv2 traj.Interval) bool {
	if d1 != d2 {
		return d1 < d2
	}
	if id1 != id2 {
		return id1 < id2
	}
	if iv1.I != iv2.I {
		return iv1.I < iv2.I
	}
	return iv1.J < iv2.J
}

func matchLess(a, b Match) bool {
	return RankBefore(a.Result.Dist, a.TrajIndex, a.Result.Interval,
		b.Result.Dist, b.TrajIndex, b.Result.Interval)
}

// topKHeap is a bounded max-heap of the k best matches seen so far: the
// worst retained match sits at the root and is evicted when a better one
// arrives, giving O(n log k) top-k selection instead of sorting all n.
type topKHeap struct {
	k  int
	ms []Match
}

func (h *topKHeap) Len() int           { return len(h.ms) }
func (h *topKHeap) Less(i, j int) bool { return matchLess(h.ms[j], h.ms[i]) }
func (h *topKHeap) Swap(i, j int)      { h.ms[i], h.ms[j] = h.ms[j], h.ms[i] }
func (h *topKHeap) Push(x any)         { h.ms = append(h.ms, x.(Match)) }
func (h *topKHeap) Pop() any           { m := h.ms[len(h.ms)-1]; h.ms = h.ms[:len(h.ms)-1]; return m }
func (h *topKHeap) offer(m Match) {
	switch {
	case h.k <= 0:
	case len(h.ms) < h.k:
		heap.Push(h, m)
	case matchLess(m, h.ms[0]):
		h.ms[0] = m
		heap.Fix(h, 0)
	}
}

// sorted drains the heap into an ascending slice.
func (h *topKHeap) sorted() []Match {
	out := make([]Match, len(h.ms))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Match)
	}
	return out
}

// TopK runs the algorithm over every candidate trajectory and returns the k
// best matches ordered by ascending distance. With the index enabled,
// candidates are limited to MBR-intersecting trajectories.
func (db *Database) TopK(alg Algorithm, q traj.Trajectory, k int) []Match {
	out, _ := db.TopKCtx(context.Background(), alg, q, k)
	return out
}

// TopKCtx is TopK with cancellation: the context is checked between
// per-trajectory searches, so a server can abandon a long-running query.
// A single trajectory search is not interruptible once started. On
// cancellation it returns (nil, ctx.Err()).
func (db *Database) TopKCtx(ctx context.Context, alg Algorithm, q traj.Trajectory, k int) ([]Match, error) {
	return db.TopKFilteredCtx(ctx, alg, q, k, nil)
}

// TopKFilteredCtx is TopKCtx restricted to trajectories whose MBR
// intersects filter (nil = unrestricted). It prunes against its own
// running k-th-best distance (see prune.go); the ranking is byte-identical
// to the unpruned scan's.
func (db *Database) TopKFilteredCtx(ctx context.Context, alg Algorithm, q traj.Trajectory, k int, filter *geo.Rect) ([]Match, error) {
	return db.TopKPrunedCtx(ctx, alg, q, k, filter, nil, nil)
}

// ScanFilteredCtx runs the algorithm over every pruned (and, with a
// non-nil filter, region-restricted) candidate, invoking fn with each
// per-trajectory match in candidate order on the calling goroutine. An fn
// error aborts the scan and is returned. It is the streaming primitive
// under TopKFilteredCtx and the engine's incremental match delivery.
func (db *Database) ScanFilteredCtx(ctx context.Context, alg Algorithm, q traj.Trajectory, filter *geo.Rect, fn func(Match) error) error {
	for _, ci := range db.CandidatesFiltered(q, filter) {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := db.be.Traj(ci)
		if t.Len() == 0 {
			continue
		}
		if err := fn(Match{TrajIndex: ci, Result: alg.Search(t, q)}); err != nil {
			return err
		}
	}
	return nil
}

// TopKParallel is TopK with the per-trajectory searches fanned out over
// workers goroutines (0 = GOMAXPROCS). The algorithm and measure must be
// safe for concurrent use; every algorithm and measure in this library is.
func (db *Database) TopKParallel(alg Algorithm, q traj.Trajectory, k, workers int) []Match {
	out, _ := db.TopKParallelCtx(context.Background(), alg, q, k, workers)
	return out
}

// TopKParallelCtx is TopKParallel with cancellation: every worker checks
// the context before starting each per-trajectory search and stops early
// when it is done. On cancellation it returns (nil, ctx.Err()).
//
// Workers share the running global k-th-best distance (a SharedKth, see
// prune.go), so each per-trajectory search prunes against the best bound
// any worker has established; pruned candidates are exactly those provably
// outside the final top-k, keeping the ranking byte-identical.
func (db *Database) TopKParallelCtx(ctx context.Context, alg Algorithm, q traj.Trajectory, k, workers int) ([]Match, error) {
	cands := db.Candidates(q)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		return db.TopKCtx(ctx, alg, q, k)
	}
	ts, threshold := alg.(ThresholdSearcher)
	var shared *SharedKth
	if threshold {
		shared = NewSharedKth(k)
	}
	matches := make([]Match, len(cands))
	valid := make([]bool, len(cands))
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var search ThresholdSearch
			if threshold {
				search = ts.NewThresholdSearch(q)
				defer search.Release()
			}
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				t := db.be.Traj(cands[i])
				if t.Len() == 0 {
					continue
				}
				var r Result
				if threshold {
					var pruned Pruned
					r, pruned = search.Search(t, db.Meta(cands[i]), shared.Threshold())
					if pruned != NotPruned {
						continue
					}
					shared.Offer(r.Dist)
				} else {
					r = alg.Search(t, q)
				}
				matches[i] = Match{TrajIndex: cands[i], Result: r}
				valid[i] = true
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h := topKHeap{k: k}
	for i := range matches {
		if valid[i] {
			h.offer(matches[i])
		}
	}
	return h.sorted(), nil
}

// Best returns the single best match (TopK with k = 1); ok is false when
// the database holds no candidates.
func (db *Database) Best(alg Algorithm, q traj.Trajectory) (Match, bool) {
	top := db.TopK(alg, q, 1)
	if len(top) == 0 {
		return Match{}, false
	}
	return top[0], true
}

// AlgorithmFor builds the named algorithm over a measure with reasonable
// defaults. Names: exacts, sizes, pss, pos, pos-d, spring, ucr, random-s,
// simtra. RLS variants require a policy and are constructed directly.
func AlgorithmFor(name string, m sim.Measure) (Algorithm, bool) {
	switch name {
	case "exacts":
		return ExactS{M: m}, true
	case "sizes":
		return SizeS{M: m, Xi: 5}, true
	case "pss":
		return PSS{M: m}, true
	case "pos":
		return POS{M: m}, true
	case "pos-d", "posd":
		return POSD{M: m, D: 5}, true
	case "spring":
		return Spring{}, true
	case "ucr":
		return UCR{Band: 1}, true
	case "random-s", "randoms":
		return RandomS{M: m, Samples: 50}, true
	case "simtra":
		return SimTra{M: m}, true
	}
	return nil, false
}
