// Package core implements the SimSub search algorithms of the paper:
//
//	§4.1  ExactS   — exact search over all n(n+1)/2 subtrajectories
//	§4.2  SizeS    — size-restricted approximate search (parameter ξ)
//	§4.3  PSS      — prefix-suffix splitting search (Algorithm 2)
//	§4.3  POS      — prefix-only splitting search
//	§4.3  POS-D    — prefix-only splitting with delay D
//	§5.3  RLS      — reinforcement-learning splitting search
//	§5.4  RLS-Skip — RLS with skip actions and state simplification
//	§6.1  competitors: Spring, UCR (adapted), Random-S, SimTra
//
// Every algorithm solves Problem 1: given a data trajectory T and a query
// trajectory Tq, return a subtrajectory T[i,j] with small dissimilarity
// d(T[i,j], Tq) under an abstract measure (package sim). Exact algorithms
// minimize it exactly; the others approximate.
package core

import (
	"math"

	"simsub/internal/sim"
	"simsub/internal/traj"
)

// Result is the outcome of a SimSub search over one data trajectory.
type Result struct {
	// Interval is the returned subtrajectory range of the data trajectory.
	Interval traj.Interval
	// Dist is the dissimilarity the algorithm attributes to the interval.
	// For splitting algorithms with simplified state maintenance
	// (RLS-Skip) this can differ from the exact measure value; use
	// ExactDist to re-score.
	Dist float64
	// Explored counts the subtrajectory similarity evaluations performed,
	// an implementation-independent cost proxy.
	Explored int
	// Scanned, for policy-walk searches (RLS family), counts the data
	// points whose prefix state the walk advanced — the complement of the
	// points a skip policy jumped over. Zero for algorithms that do not
	// walk a policy; quality scoring falls back to a fresh policy walk
	// then (see ScoreApproxQuality).
	Scanned int
}

// Algorithm is a SimSub search algorithm bound to a similarity measure.
type Algorithm interface {
	// Name returns the algorithm's display name, e.g. "PSS".
	Name() string
	// Search returns a subtrajectory of t similar to q. Both trajectories
	// must be non-empty.
	Search(t, q traj.Trajectory) Result
}

// ExactDist re-scores a result's interval with the measure, returning the
// exact dissimilarity of the returned subtrajectory.
func ExactDist(m sim.Measure, t, q traj.Trajectory, r Result) float64 {
	if !r.Interval.Valid(t.Len()) {
		return math.Inf(1)
	}
	return m.Dist(t.Sub(r.Interval.I, r.Interval.J), q)
}

// ExactS is the exact algorithm (Algorithm 1): it enumerates every
// subtrajectory with the incremental strategy, in O(n·(Φini + n·Φinc))
// time — O(n²·m) for DTW/Fréchet, O(n²) for t2vec.
type ExactS struct {
	M sim.Measure
}

// Name implements Algorithm.
func (ExactS) Name() string { return "ExactS" }

// Search implements Algorithm.
func (a ExactS) Search(t, q traj.Trajectory) Result {
	n := t.Len()
	best := Result{Dist: math.Inf(1)}
	if n == 0 {
		return best
	}
	// one computer re-Init-ed per start, so the enumeration performs no
	// per-start allocations (Init begins a fresh scan)
	inc := a.M.NewIncremental(t, q)
	defer sim.Release(inc)
	for i := 0; i < n; i++ {
		d := inc.Init(i)
		best.Explored++
		if d < best.Dist {
			best.Dist = d
			best.Interval = traj.Interval{I: i, J: i}
		}
		for j := i + 1; j < n; j++ {
			d = inc.Extend()
			best.Explored++
			if d < best.Dist {
				best.Dist = d
				best.Interval = traj.Interval{I: i, J: j}
			}
		}
	}
	return best
}

// SizeS is the size-restricted approximate algorithm (§4.2): it considers
// only subtrajectories whose length lies within [m-ξ, m+ξ], in
// O(n·(Φini + (m+ξ)·Φinc)) time. ξ trades efficiency for effectiveness;
// Appendix A constructs inputs where its answer is arbitrarily bad.
type SizeS struct {
	M sim.Measure
	// Xi is the soft margin ξ ≥ 0 on subtrajectory size.
	Xi int
}

// Name implements Algorithm.
func (SizeS) Name() string { return "SizeS" }

// Search implements Algorithm.
func (a SizeS) Search(t, q traj.Trajectory) Result {
	n, m := t.Len(), q.Len()
	lo := m - a.Xi
	if lo < 1 {
		lo = 1
	}
	hi := m + a.Xi
	best := Result{Dist: math.Inf(1)}
	if lo > n {
		// no subtrajectory satisfies the size constraint (the query exceeds
		// the data trajectory by more than ξ); the whole trajectory is the
		// closest-sized candidate
		return Result{
			Interval: traj.Interval{I: 0, J: n - 1},
			Dist:     a.M.Dist(t, q),
			Explored: 1,
		}
	}
	inc := a.M.NewIncremental(t, q)
	defer sim.Release(inc)
	for i := 0; i < n; i++ {
		if i+lo-1 >= n {
			break // even the shortest allowed subtrajectory no longer fits
		}
		d := inc.Init(i)
		best.Explored++
		if lo == 1 && d < best.Dist {
			best.Dist = d
			best.Interval = traj.Interval{I: i, J: i}
		}
		for j := i + 1; j < n && j-i+1 <= hi; j++ {
			d = inc.Extend()
			best.Explored++
			if j-i+1 >= lo && d < best.Dist {
				best.Dist = d
				best.Interval = traj.Interval{I: i, J: j}
			}
		}
	}
	return best
}

// PSS is the Prefix-Suffix Search (Algorithm 2): scanning p_1..p_n, it
// splits whenever the current prefix T[h,i] or suffix T[i,n] improves on the
// best subtrajectory found so far. Suffix distances are computed over
// reversed trajectories, incrementally, which is exact for DTW/Fréchet and
// positively correlated for t2vec (§4.3). Time O(n1·Φini + n·Φinc).
type PSS struct {
	M sim.Measure
}

// Name implements Algorithm.
func (PSS) Name() string { return "PSS" }

// Search implements Algorithm.
func (a PSS) Search(t, q traj.Trajectory) Result {
	suf := sim.SuffixDists(a.M, t, q) // lines 2-3 of Algorithm 2
	return pssScan(a.M, t, q, suf)
}

// pssScan is the prefix scan of Algorithm 2 over precomputed suffix
// distances; the threshold-aware search path shares it, supplying suffix
// state built from the store's cached reversals.
func pssScan(m sim.Measure, t, q traj.Trajectory, suf []float64) Result {
	n := t.Len()
	best := Result{Dist: math.Inf(1)}
	best.Explored = n // the suffix computations
	if n == 0 {
		return best
	}
	inc := m.NewIncremental(t, q)
	defer sim.Release(inc)
	h := 0
	var dPre float64
	for i := 0; i < n; i++ {
		if i == h {
			dPre = inc.Init(i)
		} else {
			dPre = inc.Extend()
		}
		best.Explored++
		dSuf := suf[i]
		if math.Min(dPre, dSuf) < best.Dist {
			if dPre <= dSuf {
				best.Dist = dPre
				best.Interval = traj.Interval{I: h, J: i}
			} else {
				best.Dist = dSuf
				best.Interval = traj.Interval{I: i, J: n - 1}
			}
			h = i + 1 // split at p_i
		}
	}
	return best
}

// POS is the Prefix-Only Search (§4.3): PSS without the suffix component,
// saving its computation at the cost of a smaller candidate space.
type POS struct {
	M sim.Measure
}

// Name implements Algorithm.
func (POS) Name() string { return "POS" }

// Search implements Algorithm.
func (a POS) Search(t, q traj.Trajectory) Result {
	return posSearch(a.M, t, q, 0)
}

// POSD is POS with delay (§4.3): when a prefix improves on the best known
// subtrajectory, it keeps scanning up to D more points and splits at the
// point whose prefix is the most similar.
type POSD struct {
	M sim.Measure
	// D is the number of extra points examined before committing to a
	// split. The paper uses D = 5.
	D int
}

// Name implements Algorithm.
func (POSD) Name() string { return "POS-D" }

// Search implements Algorithm.
func (a POSD) Search(t, q traj.Trajectory) Result {
	return posSearch(a.M, t, q, a.D)
}

// posSearch implements POS (delay == 0) and POS-D (delay > 0).
func posSearch(m sim.Measure, t, q traj.Trajectory, delay int) Result {
	n := t.Len()
	best := Result{Dist: math.Inf(1)}
	if n == 0 {
		return best
	}
	inc := m.NewIncremental(t, q)
	defer sim.Release(inc)
	h := 0
	var dPre float64
	for i := 0; i < n; i++ {
		if i == h {
			dPre = inc.Init(i)
		} else {
			dPre = inc.Extend()
		}
		best.Explored++
		if dPre < best.Dist {
			// candidate split found at i; with delay, examine up to D more
			// prefixes and commit to the best of them
			bestJ, bestD := i, dPre
			for d := 1; d <= delay && i+d < n; d++ {
				ext := inc.Extend()
				best.Explored++
				if ext < bestD {
					bestJ, bestD = i+d, ext
				}
			}
			best.Dist = bestD
			best.Interval = traj.Interval{I: h, J: bestJ}
			h = bestJ + 1
			i = bestJ // resume scanning after the split point
		}
	}
	return best
}
