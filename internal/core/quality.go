package core

import (
	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// This file is the shared scorer of the paper's serving-quality
// measurements (Tables 4–5) for the approximate searches: the engine's
// sampled telemetry (engine.sampleQuality) and the offline benchmark
// (internal/bench BenchmarkRLS) both call ScoreApproxQuality, so the two
// surfaces can never diverge on what "approximation ratio" means.

// RankedAnswer is one entry of a ranking handed to ScoreApproxQuality: an
// opaque trajectory identifier (consistent between the approximate and
// exact rankings), the trajectory itself, and the search result.
type RankedAnswer struct {
	ID int
	T  traj.Trajectory
	R  Result
}

// ApproxQuality aggregates one ranking comparison.
type ApproxQuality struct {
	// ApproxRatio is the mean over ranking positions of the approximate
	// answer's exact re-scored distance divided by the exact ranking's
	// distance at the same position (positions whose exact distance is 0
	// contribute 1 when the re-scored distance is also 0, and are dropped
	// otherwise — the ratio is undefined against a 0-distance exact
	// answer). 1.0 means exact-quality answers. Meaningful only when
	// RatioPositions > 0.
	ApproxRatio float64
	// RatioPositions counts the positions ApproxRatio averages over; 0
	// means every position had a 0-distance exact answer the approximate
	// search missed, leaving the ratio undefined.
	RatioPositions int
	// MeanRank is the mean 1-based position of each approximate answer's
	// trajectory within the exact ranking, counting absent trajectories as
	// len(exact)+1.
	MeanRank float64
	// SkippedFraction is the mean fraction of data points the policy never
	// scanned across the approximate ranking's trajectories (0 unless a
	// skip policy was supplied).
	SkippedFraction float64
}

// ScoreApproxQuality compares an approximate ranking against the exact
// ranking computed over the same candidates, query and k. p, when non-nil
// with skip actions, additionally prices the skipped-point fraction: an
// answer whose Result carries the serving walk's Scanned count is priced
// from it directly (the serving and scoring walks are the same policy
// walk, so the counts agree by construction), and only answers without one
// — rankings produced outside the search paths — cost a fresh policy walk.
// ok is false when either ranking is empty; MeanRank and SkippedFraction
// are always valid when ok, while ApproxRatio is valid only when
// RatioPositions > 0.
func ScoreApproxQuality(m sim.Measure, p *rl.Policy, q traj.Trajectory, approx, exact []RankedAnswer) (ApproxQuality, bool) {
	if len(approx) == 0 || len(exact) == 0 {
		return ApproxQuality{}, false
	}
	rankOf := make(map[int]int, len(exact))
	for i, e := range exact {
		rankOf[e.ID] = i + 1
	}
	var ratioSum, rankSum, skipSum float64
	ratios := 0
	for i, a := range approx {
		if i < len(exact) {
			re := ExactDist(m, a.T, q, a.R)
			switch ed := exact[i].R.Dist; {
			case ed > 0:
				ratioSum += re / ed
				ratios++
			case re == 0:
				ratioSum++
				ratios++
			}
		}
		if r, ok := rankOf[a.ID]; ok {
			rankSum += float64(r)
		} else {
			rankSum += float64(len(exact) + 1)
		}
		if p != nil && p.K > 0 {
			if a.R.Scanned > 0 {
				skipSum += skippedFractionOf(a.R.Scanned, a.T.Len())
			} else {
				skipSum += SkippedFraction(m, p, a.T, q)
			}
		}
	}
	out := ApproxQuality{
		RatioPositions:  ratios,
		MeanRank:        rankSum / float64(len(approx)),
		SkippedFraction: skipSum / float64(len(approx)),
	}
	if ratios > 0 {
		out.ApproxRatio = ratioSum / float64(ratios)
	}
	return out, true
}
