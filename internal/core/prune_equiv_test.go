package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// Equivalence tests for the threshold pipeline: across measures,
// algorithms and filters, the pruned scan must produce rankings
// byte-identical to the unpruned reference over a 1000-trajectory store.

func equivData(n, pts int, seed int64) []traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]traj.Trajectory, n)
	for i := range ts {
		p := make([]geo.Point, pts)
		x, y := rng.Float64()*20, rng.Float64()*20
		for j := range p {
			x += rng.NormFloat64() * 0.3
			y += rng.NormFloat64() * 0.3
			p[j] = geo.Point{X: x, Y: y, T: float64(j)}
		}
		ts[i] = traj.Trajectory{ID: i, Points: p}
	}
	return ts
}

// unprunedTopK is the reference ranking: the plain per-candidate scan
// (ScanFilteredCtx calls Algorithm.Search directly, no thresholds) sorted
// by the canonical order.
func unprunedTopK(t *testing.T, db *Database, alg Algorithm, q traj.Trajectory, k int, filter *geo.Rect) []Match {
	t.Helper()
	var all []Match
	if err := db.ScanFilteredCtx(context.Background(), alg, q, filter, func(m Match) error {
		all = append(all, m)
		return nil
	}); err != nil {
		t.Fatalf("reference scan: %v", err)
	}
	sort.Slice(all, func(i, j int) bool { return matchLess(all[i], all[j]) })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestPrunedScanEquivalence(t *testing.T) {
	const k = 10
	data := equivData(1000, 24, 11)
	db := NewDatabase(data, false)
	queries := equivData(3, 9, 12)
	filter := &geo.Rect{MinX: 0, MinY: 0, MaxX: 14, MaxY: 14}

	measures := []sim.Measure{
		sim.DTW{}, sim.CDTW{R: 0.25}, sim.Frechet{}, sim.EDR{Eps: 0.4}, sim.LCSS{Eps: 0.4},
	}
	algs := func(m sim.Measure) []Algorithm {
		return []Algorithm{ExactS{M: m}, SizeS{M: m, Xi: 4}, PSS{M: m}, POS{M: m}, POSD{M: m, D: 5}}
	}

	var total PruneStats
	for _, m := range measures {
		// ExactS over CDTW recomputes the band DP from scratch per
		// extension; keep its share of the matrix affordable
		for _, alg := range algs(m) {
			for _, f := range []*geo.Rect{nil, filter} {
				name := fmt.Sprintf("%s/%s/filter=%v", m.Name(), alg.Name(), f != nil)
				for qi, q := range queries {
					if m.Name() == "cdtw" && alg.Name() == "ExactS" && qi > 0 {
						break
					}
					want := unprunedTopK(t, db, alg, q, k, f)
					var st PruneStats
					got, err := db.TopKPrunedCtx(context.Background(), alg, q, k, f, nil, &st)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s q%d: got %d matches, want %d", name, qi, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Errorf("%s q%d rank %d: pruned %+v, unpruned %+v", name, qi, i, got[i], want[i])
						}
					}
					total.Add(st)
				}
			}
		}
	}
	if total.LBSkipped == 0 {
		t.Error("lower-bound cascade never skipped a candidate across the whole matrix")
	}
	if total.Abandoned == 0 {
		t.Error("no search was ever abandoned across the whole matrix")
	}
	t.Logf("prune stats: %+v (scored %.1f%%)", total,
		100*float64(total.Scored)/float64(total.Candidates))
}

// TestPrunedScanSharedThreshold drives the same equivalence through the
// parallel path, whose workers share the global k-th-best atomically.
func TestPrunedScanSharedThreshold(t *testing.T) {
	const k = 10
	data := equivData(1000, 24, 21)
	db := NewDatabase(data, false)
	q := equivData(1, 9, 22)[0]
	for _, m := range []sim.Measure{sim.DTW{}, sim.Frechet{}} {
		alg := ExactS{M: m}
		want := unprunedTopK(t, db, alg, q, k, nil)
		for run := 0; run < 3; run++ {
			got, err := db.TopKParallelCtx(context.Background(), alg, q, k, 8)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s run %d: got %d matches, want %d", m.Name(), run, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s run %d rank %d: parallel pruned %+v, want %+v", m.Name(), run, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTopKExactPrunedEquivalence checks the natively pruned TopKExact (and
// TopKSplit over cached-reversal suffix state) against seed-faithful
// references, distinct on and off.
func TestTopKExactPrunedEquivalence(t *testing.T) {
	data := equivData(40, 30, 31)
	q := equivData(1, 10, 32)[0]
	measures := []sim.Measure{sim.DTW{}, sim.Frechet{}, sim.EDR{Eps: 0.4}, sim.LCSS{Eps: 0.4}, sim.ERP{}}
	for _, m := range measures {
		for _, distinct := range []bool{false, true} {
			for _, tr := range data[:8] {
				// reference: the unpruned full enumeration feeding the
				// same heap
				ref := &resultHeap{k: 5, distinct: distinct}
				sim.AllSubDists(m, tr, q, func(i, j int, d float64) {
					ref.offer(Result{Interval: traj.Interval{I: i, J: j}, Dist: d})
				})
				want := ref.sorted()
				got := TopKExact(m, tr, q, 5, distinct)
				if len(got) != len(want) {
					t.Fatalf("%s distinct=%v: got %d results, want %d", m.Name(), distinct, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s distinct=%v rank %d: %+v, want %+v", m.Name(), distinct, i, got[i], want[i])
					}
				}
				// TopKSplit: candidates are the PSS scan's prefixes and
				// suffixes; its answers must match a from-first-principles
				// rerun of that scan
				gotSplit := TopKSplit(m, tr, q, 5, distinct)
				refSplit := &resultHeap{k: 5, distinct: distinct}
				suf := sim.SuffixDists(m, tr, q)
				bestDist, start := 1e308, 0
				var inc sim.Incremental
				var dPre float64
				for i := 0; i < tr.Len(); i++ {
					if i == start {
						inc = m.NewIncremental(tr, q)
						dPre = inc.Init(i)
					} else {
						dPre = inc.Extend()
					}
					refSplit.offer(Result{Interval: traj.Interval{I: start, J: i}, Dist: dPre})
					refSplit.offer(Result{Interval: traj.Interval{I: i, J: tr.Len() - 1}, Dist: suf[i]})
					minD := dPre
					if suf[i] < minD {
						minD = suf[i]
					}
					if minD < bestDist {
						bestDist = minD
						start = i + 1
					}
				}
				wantSplit := refSplit.sorted()
				if len(gotSplit) != len(wantSplit) {
					t.Fatalf("%s distinct=%v TopKSplit: got %d, want %d", m.Name(), distinct, len(gotSplit), len(wantSplit))
				}
				for i := range gotSplit {
					if gotSplit[i] != wantSplit[i] {
						t.Errorf("%s distinct=%v TopKSplit rank %d: %+v, want %+v", m.Name(), distinct, i, gotSplit[i], wantSplit[i])
					}
				}
			}
		}
	}
}

// TestSharedKth exercises the shared-threshold heap directly.
func TestSharedKth(t *testing.T) {
	s := NewSharedKth(3)
	if got := s.Threshold(); !(got > 1e308) {
		t.Fatalf("empty threshold = %v, want +Inf", got)
	}
	s.Offer(5)
	s.Offer(3)
	if got := s.Threshold(); !(got > 1e308) {
		t.Fatalf("threshold before full = %v, want +Inf", got)
	}
	s.Offer(9)
	if got := s.Threshold(); got != 9 {
		t.Fatalf("threshold = %v, want 9", got)
	}
	s.Offer(1) // evicts 9
	if got := s.Threshold(); got != 5 {
		t.Fatalf("threshold = %v, want 5", got)
	}
	s.Offer(100) // no-op
	if got := s.Threshold(); got != 5 {
		t.Fatalf("threshold after worse offer = %v, want 5", got)
	}
	s.Offer(2)
	if got := s.Threshold(); got != 3 {
		t.Fatalf("threshold = %v, want 3", got)
	}
}
