package core

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// Equivalence tests for the CandidateSource refactor: handing a scan the
// explicit SpatialSource must be byte-identical to the nil source (the
// built-in enumeration), and a subset source's ranking must be exactly the
// direct scoring of the candidates it returned — the exact cascade reranks
// whatever it is given, no more and no less.

func TestSpatialSourceEquivalence(t *testing.T) {
	const k = 10
	data := equivData(300, 20, 41)
	db := NewDatabase(data, true)
	queries := equivData(2, 8, 42)
	filter := &geo.Rect{MinX: 0, MinY: 0, MaxX: 14, MaxY: 14}

	measures := []sim.Measure{sim.DTW{}, sim.Frechet{}, sim.EDR{Eps: 0.4}}
	algs := func(m sim.Measure) []Algorithm {
		return []Algorithm{ExactS{M: m}, PSS{M: m}, POS{M: m}}
	}
	for _, m := range measures {
		for _, alg := range algs(m) {
			for _, f := range []*geo.Rect{nil, filter} {
				name := fmt.Sprintf("%s/%s/filter=%v", m.Name(), alg.Name(), f != nil)
				for qi, q := range queries {
					want, err := db.TopKPrunedCtx(context.Background(), alg, q, k, f, nil, nil)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					got, err := db.TopKPrunedSourceCtx(context.Background(), alg, q, k, f, nil, nil, db.SpatialSource())
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s q%d: got %d matches, want %d", name, qi, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Errorf("%s q%d rank %d: spatial source %+v, nil source %+v", name, qi, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// subsetRank is the reference for an approximate source: score exactly the
// given candidates with the plain per-candidate search and rank them.
func subsetRank(alg Algorithm, data []traj.Trajectory, cands []int, q traj.Trajectory, k int) []Match {
	var all []Match
	for _, ci := range cands {
		r := alg.Search(data[ci], q)
		all = append(all, Match{TrajIndex: ci, Result: r})
	}
	sort.Slice(all, func(i, j int) bool { return matchLess(all[i], all[j]) })
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestSubsetSourceRanksExactlyItsCandidates(t *testing.T) {
	const k = 5
	data := equivData(200, 18, 51)
	db := NewDatabase(data, false)
	q := equivData(1, 8, 52)[0]

	// every third trajectory: a fixed coarse subset standing in for an ANN
	// prefilter's output
	var subset []int
	for i := 0; i < len(data); i += 3 {
		subset = append(subset, i)
	}
	src := CandidateSourceFunc(func(traj.Trajectory, *geo.Rect) []int { return subset })

	for _, m := range []sim.Measure{sim.DTW{}, sim.Frechet{}} {
		for _, alg := range []Algorithm{ExactS{M: m}, PSS{M: m}} {
			want := subsetRank(alg, data, subset, q, k)
			var st PruneStats
			got, err := db.TopKPrunedSourceCtx(context.Background(), alg, q, k, nil, nil, &st, src)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s/%s: got %d matches, want %d", m.Name(), alg.Name(), len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s/%s rank %d: source scan %+v, direct scoring %+v", m.Name(), alg.Name(), i, got[i], want[i])
				}
			}
			if st.Candidates != int64(len(subset)) {
				t.Errorf("%s/%s: scanned %d candidates, source returned %d", m.Name(), alg.Name(), st.Candidates, len(subset))
			}
		}
	}
}

func TestSourceThreadedThroughBatchAndStream(t *testing.T) {
	const k = 5
	data := equivData(150, 18, 61)
	db := NewDatabase(data, false)
	q := equivData(1, 8, 62)[0]
	var subset []int
	for i := 0; i < len(data); i += 4 {
		subset = append(subset, i)
	}
	src := CandidateSourceFunc(func(traj.Trajectory, *geo.Rect) []int { return subset })
	alg := ExactS{M: sim.DTW{}}
	want := subsetRank(alg, data, subset, q, k)

	got, err := db.TopKPrunedBatchSourceCtx(context.Background(), alg, q, k, nil, nil, nil, src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch: got %d matches, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("batch rank %d: %+v, want %+v", i, got[i], want[i])
		}
	}

	// the streaming scan sees exactly the subset too: collect and re-rank
	var streamed []Match
	err = db.ScanPrunedSourceCtx(context.Background(), alg, q, nil, nil, nil, src, func(m Match) error {
		streamed = append(streamed, m)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, m := range streamed {
		seen[m.TrajIndex] = true
	}
	for id := range seen {
		if id%4 != 0 {
			t.Errorf("stream scanned trajectory %d outside the source's subset", id)
		}
	}
}
