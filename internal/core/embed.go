package core

import (
	"math"

	"simsub/internal/traj"
)

// Embedder maps trajectories and queries into a shared vector space in
// which Euclidean distance approximates trajectory similarity. It is the
// core-side view of a learned encoder (internal/t2vec's Model satisfies
// it): the engine embeds every trajectory at insert, stores the vector in
// TrajMeta.Emb, and builds its approximate candidate index over those
// vectors. Implementations must be safe for concurrent use.
type Embedder interface {
	// Dim is the embedding dimensionality.
	Dim() int
	// Embed returns the trajectory's embedding (length Dim).
	Embed(t traj.Trajectory) []float64
	// QueryEmbedding returns the query's embedding, possibly served from a
	// per-query cache.
	QueryEmbedding(q traj.Trajectory) []float64
}

// EuclidVec is the Euclidean distance between two equal-length vectors;
// +Inf when the lengths differ (an embedding from a different encoder must
// never compare as close).
func EuclidVec(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// EmbedRank is the pure embedding ranking: every data trajectory scores as
// the Euclidean distance between its embedding and the query's, and the
// reported match is always the whole trajectory. It is the serving surface
// of measure "t2vec" — no DP, no subtrajectory enumeration, O(n) encoding
// per trajectory and O(1) when the scan metadata already carries the
// vector (TrajMeta.Emb, populated by the engine's registered encoder).
type EmbedRank struct {
	E Embedder
}

// Name implements Algorithm.
func (EmbedRank) Name() string { return "EmbedRank" }

// Search implements Algorithm: whole-trajectory embedding distance.
func (a EmbedRank) Search(t, q traj.Trajectory) Result {
	r := Result{Dist: math.Inf(1), Explored: 1}
	if t.Len() == 0 {
		return r
	}
	r.Interval = traj.Interval{I: 0, J: t.Len() - 1}
	if a.E == nil {
		return r
	}
	r.Dist = EuclidVec(a.E.Embed(t), a.E.QueryEmbedding(q))
	return r
}

// NewThresholdSearch implements ThresholdSearcher: the query embeds once
// per scan, and candidates whose stored embedding matches the encoder's
// dimensionality skip re-encoding entirely.
func (a EmbedRank) NewThresholdSearch(q traj.Trajectory) ThresholdSearch {
	s := &embedRankSearch{e: a.E}
	if a.E != nil {
		s.qEmb = a.E.QueryEmbedding(q)
	}
	return s
}

type embedRankSearch struct {
	e    Embedder
	qEmb []float64
}

func (s *embedRankSearch) Search(t traj.Trajectory, meta TrajMeta, tau float64) (Result, Pruned) {
	r := Result{Dist: math.Inf(1), Explored: 1}
	if t.Len() == 0 {
		return r, PrunedAbandon
	}
	r.Interval = traj.Interval{I: 0, J: t.Len() - 1}
	if s.e != nil {
		emb := meta.Emb
		if len(emb) != s.e.Dim() {
			emb = s.e.Embed(t)
		}
		r.Dist = EuclidVec(emb, s.qEmb)
	}
	if r.Dist > tau {
		return r, PrunedAbandon
	}
	return r, NotPruned
}

func (s *embedRankSearch) Release() {}
