package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"simsub/internal/geo"
	"simsub/internal/nn"
	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// constPolicy builds a policy that always takes the given action.
func constPolicy(action, k int, useSuffix, simplify bool) *rl.Policy {
	dim := rl.StateDim(useSuffix)
	actions := 2 + k
	net := nn.NewMLP([]int{dim, 2, actions}, []nn.Activation{nn.ReLU, nn.Sigmoid}, rand.New(rand.NewSource(1)))
	for _, l := range net.Layers {
		for i := range l.W.W {
			l.W.W[i] = 0
		}
		for i := range l.B.W {
			l.B.W[i] = -5
		}
	}
	net.Layers[len(net.Layers)-1].B.W[action] = 5
	return &rl.Policy{Net: net, K: k, UseSuffix: useSuffix, SimplifyState: simplify}
}

func TestRLSNames(t *testing.T) {
	cases := []struct {
		p    *rl.Policy
		want string
	}{
		{constPolicy(0, 0, true, false), "RLS"},
		{constPolicy(0, 3, true, true), "RLS-Skip"},
		{constPolicy(0, 3, false, true), "RLS-Skip+"},
	}
	for _, c := range cases {
		if got := (RLS{M: sim.DTW{}, Policy: c.p}).Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestRLSNeverSplitEqualsPrefixSuffixScan(t *testing.T) {
	// a never-split policy scans one growing prefix plus all suffixes; the
	// result must be the minimum over those candidates
	rng := rand.New(rand.NewSource(20))
	m := sim.DTW{}
	for trial := 0; trial < 10; trial++ {
		data := randTraj(rng, rng.Intn(12)+2)
		q := randTraj(rng, rng.Intn(5)+1)
		got := (RLS{M: m, Policy: constPolicy(0, 0, true, false)}).Search(data, q)
		want := math.Inf(1)
		n := data.Len()
		for i := 0; i < n; i++ {
			if d := m.Dist(data.Sub(0, i), q); d < want {
				want = d
			}
			if d := m.Dist(data.Sub(i, n-1), q); d < want {
				want = d
			}
		}
		if math.Abs(got.Dist-want) > 1e-9 {
			t.Fatalf("trial %d: never-split RLS %v, want %v", trial, got.Dist, want)
		}
	}
}

func TestRLSAlwaysSplitEqualsPointScan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := sim.DTW{}
	data := randTraj(rng, 10)
	q := randTraj(rng, 4)
	got := (RLS{M: m, Policy: constPolicy(1, 0, false, false)}).Search(data, q)
	want := math.Inf(1)
	for i := 0; i < data.Len(); i++ {
		if d := m.Dist(data.Sub(i, i), q); d < want {
			want = d
		}
	}
	if math.Abs(got.Dist-want) > 1e-9 {
		t.Errorf("always-split RLS %v, want %v", got.Dist, want)
	}
}

func TestRLSValidResults(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := make([]traj.Trajectory, 8)
	queries := make([]traj.Trajectory, 8)
	for i := range data {
		data[i] = randTraj(rng, 15)
		queries[i] = randTraj(rng, 5)
	}
	p, _, err := rl.Train(data, queries, sim.DTW{}, rl.Config{Episodes: 25, Seed: 5, UseSuffix: true})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	alg := RLS{M: sim.DTW{}, Policy: p}
	exact := ExactS{M: sim.DTW{}}
	for trial := 0; trial < 10; trial++ {
		d := randTraj(rng, rng.Intn(15)+2)
		q := randTraj(rng, rng.Intn(5)+1)
		got := alg.Search(d, q)
		if !got.Interval.Valid(d.Len()) {
			t.Fatalf("invalid interval %v for n=%d", got.Interval, d.Len())
		}
		if ex := exact.Search(d, q); got.Dist < ex.Dist-1e-9 {
			t.Fatalf("RLS dist %v beats exact %v", got.Dist, ex.Dist)
		}
	}
}

func TestRLSSkipSearchAndSkippedFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	data := randTraj(rng, 40)
	q := randTraj(rng, 6)
	// constant skip-1 policy (action 2 with k=1): every step skips one point
	p := constPolicy(2, 1, false, true)
	got := (RLS{M: sim.DTW{}, Policy: p}).Search(data, q)
	if !got.Interval.Valid(data.Len()) {
		t.Fatalf("invalid interval %v", got.Interval)
	}
	frac := SkippedFraction(sim.DTW{}, p, data, q)
	// skipping every other point leaves about half unscanned
	if frac < 0.3 || frac > 0.6 {
		t.Errorf("skipped fraction = %v, want about 0.5", frac)
	}
	// a never-skip policy skips nothing
	if f0 := SkippedFraction(sim.DTW{}, constPolicy(0, 1, false, true), data, q); f0 != 0 {
		t.Errorf("never-skip policy skipped %v", f0)
	}
}

func TestRLSSkipFasterThanRLSOnExplored(t *testing.T) {
	// with state simplification, a skipping policy performs fewer
	// similarity evaluations than a non-skipping one
	rng := rand.New(rand.NewSource(24))
	data := randTraj(rng, 60)
	q := randTraj(rng, 8)
	noSkip := (RLS{M: sim.DTW{}, Policy: constPolicy(0, 3, false, true)}).Search(data, q)
	skip := (RLS{M: sim.DTW{}, Policy: constPolicy(4, 3, false, true)}).Search(data, q) // skip 3 each step
	if skip.Explored >= noSkip.Explored {
		t.Errorf("skipping explored %d, non-skipping %d", skip.Explored, noSkip.Explored)
	}
}

func TestRLSWalkthroughShape(t *testing.T) {
	// Table 4 walk-through shape: a skip policy on a 5-point trajectory with
	// k=1 visits p1, may skip p3, and finishes at p5; the returned interval
	// is valid and its tracked distance matches a real subtrajectory's
	// distance under full-state maintenance.
	data := traj.FromXY(0, 0, 1, 0, 2, 0, 3, 0, 4, 0)
	q := traj.FromXY(1, 0, 2, 0, 3, 0)
	p := constPolicy(2, 1, true, false) // always skip 1, full state
	got := (RLS{M: sim.DTW{}, Policy: p}).Search(data, q)
	if !got.Interval.Valid(5) {
		t.Fatalf("invalid interval %v", got.Interval)
	}
	re := ExactDist(sim.DTW{}, data, q, got)
	if math.Abs(re-got.Dist) > 1e-9 {
		t.Errorf("full-state RLS-Skip tracked dist %v but interval scores %v", got.Dist, re)
	}
}

func TestRLSTrainedBeatsNeverSplitOnStructuredData(t *testing.T) {
	// construct pairs where the query matches a strict interior segment, so
	// splitting is necessary for a good answer; a trained policy should do
	// at least as well as the never-split baseline on average
	rng := rand.New(rand.NewSource(25))
	make2 := func() (traj.Trajectory, traj.Trajectory) {
		q := randTraj(rng, 5)
		pre := randTraj(rng, 5).Translate(30, 30)
		post := randTraj(rng, 5).Translate(-30, -30)
		pts := append(append(append([]geo.Point{}, pre.Points...), q.Points...), post.Points...)
		return traj.New(pts...), q
	}
	var data, queries []traj.Trajectory
	for i := 0; i < 20; i++ {
		d, q := make2()
		data = append(data, d)
		queries = append(queries, q)
	}
	p, _, err := rl.Train(data, queries, sim.DTW{}, rl.Config{Episodes: 120, Seed: 6, UseSuffix: true})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	trained := RLS{M: sim.DTW{}, Policy: p}
	never := RLS{M: sim.DTW{}, Policy: constPolicy(0, 0, true, false)}
	var sumTrained, sumNever float64
	for i := 0; i < 20; i++ {
		d, q := make2()
		sumTrained += trained.Search(d, q).Dist
		sumNever += never.Search(d, q).Dist
	}
	if sumTrained > sumNever*1.05 {
		t.Errorf("trained policy (%v) notably worse than never-split baseline (%v)", sumTrained, sumNever)
	}
}

func TestRLSSearchGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	data := randTraj(rng, 8)
	q := randTraj(rng, 3)
	p := constPolicy(0, 0, true, false)
	cases := []struct {
		name string
		alg  RLS
		t, q traj.Trajectory
	}{
		{"nil policy", RLS{M: sim.DTW{}}, data, q},
		{"netless policy", RLS{M: sim.DTW{}, Policy: &rl.Policy{}}, data, q},
		{"empty data", RLS{M: sim.DTW{}, Policy: p}, traj.Trajectory{}, q},
		{"empty query", RLS{M: sim.DTW{}, Policy: p}, data, traj.Trajectory{}},
	}
	for _, c := range cases {
		got := c.alg.Search(c.t, c.q) // must not panic
		if !math.IsInf(got.Dist, 1) || got.Explored != 0 {
			t.Errorf("%s: Search = %+v, want empty Inf result", c.name, got)
		}
	}
	// Name on a nil policy must not panic either
	if got := (RLS{M: sim.DTW{}}).Name(); got != "RLS" {
		t.Errorf("nil-policy Name = %q", got)
	}
}

func TestSkippedFractionGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	data := randTraj(rng, 8)
	q := randTraj(rng, 3)
	if f := SkippedFraction(sim.DTW{}, nil, data, q); f != 0 {
		t.Errorf("nil policy skipped %v", f)
	}
	if f := SkippedFraction(sim.DTW{}, constPolicy(2, 1, false, true), traj.Trajectory{}, q); f != 0 {
		t.Errorf("empty data skipped %v", f)
	}
	if f := SkippedFraction(sim.DTW{}, constPolicy(2, 1, false, true), data, traj.Trajectory{}); f != 0 {
		t.Errorf("empty query skipped %v", f)
	}
}

// TestRLSThresholdScanMatchesUnpruned is the approximate-path counterpart
// of the pruned≡unpruned equivalence matrix: a TopKPrunedCtx ranking must
// be byte-identical to ranking every candidate's direct RLS.Search result.
// Full-state policies may skip candidates through the lower-bound cascade
// (their tracked distances are genuine subtrajectory distances, which the
// cascade bounds from below); simplified-state policies must not touch it.
func TestRLSThresholdScanMatchesUnpruned(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	ts := make([]traj.Trajectory, 60)
	for i := range ts {
		ts[i] = randTraj(rng, rng.Intn(18)+4)
	}
	q := randTraj(rng, 5)
	for _, p := range []*rl.Policy{
		constPolicy(0, 0, true, false),  // RLS, never split
		constPolicy(1, 0, true, false),  // RLS, always split
		constPolicy(2, 1, false, true),  // RLS-Skip, skip 1, simplified state
		constPolicy(3, 2, false, false), // skip 2, full state
	} {
		alg := RLS{M: sim.DTW{}, Policy: p}
		if _, ok := Algorithm(alg).(ThresholdSearcher); !ok {
			t.Fatal("RLS does not implement ThresholdSearcher")
		}
		db := NewDatabase(ts, false)
		for _, k := range []int{1, 5, 20} {
			var st PruneStats
			got, err := db.TopKPrunedCtx(context.Background(), alg, q, k, nil, NewSharedKth(k), &st)
			if err != nil {
				t.Fatal(err)
			}
			// reference: direct per-trajectory invocation, ranked
			h := topKHeap{k: k}
			for i, dt := range ts {
				h.offer(Match{TrajIndex: i, Result: alg.Search(dt, q)})
			}
			want := h.sorted()
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: got %d matches, want %d", alg.Name(), k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s k=%d rank %d: got %+v, want %+v", alg.Name(), k, i, got[i], want[i])
				}
			}
			if p.SimplifyState && st.LBSkipped != 0 {
				t.Errorf("%s: simplified-state scan used the lower-bound cascade (%d LB skips)", alg.Name(), st.LBSkipped)
			}
		}
	}
}

func TestScoreApproxQualityUndefinedRatio(t *testing.T) {
	// when every position's exact answer has distance 0 and the approximate
	// answer missed it, the ratio is undefined but rank/skip still score
	data := traj.FromXY(0, 0, 1, 0, 2, 0)
	q := traj.FromXY(0, 0, 1, 0)
	approx := []RankedAnswer{{ID: 7, T: data, R: Result{Interval: traj.Interval{I: 1, J: 2}, Dist: 1}}}
	exact := []RankedAnswer{{ID: 7, T: data, R: Result{Interval: traj.Interval{I: 0, J: 1}, Dist: 0}}}
	res, ok := ScoreApproxQuality(sim.DTW{}, nil, q, approx, exact)
	if !ok {
		t.Fatal("comparison with non-empty rankings reported not ok")
	}
	if res.RatioPositions != 0 {
		t.Errorf("RatioPositions = %d, want 0", res.RatioPositions)
	}
	if res.MeanRank != 1 {
		t.Errorf("MeanRank = %v, want 1", res.MeanRank)
	}

	// a 0-distance exact answer the approximate search also hit scores 1
	approx[0].R = exact[0].R
	res, ok = ScoreApproxQuality(sim.DTW{}, nil, q, approx, exact)
	if !ok || res.RatioPositions != 1 || res.ApproxRatio != 1 {
		t.Errorf("matched zero-distance position: %+v ok=%v, want ratio 1 over 1 position", res, ok)
	}

	// empty rankings are not scorable
	if _, ok := ScoreApproxQuality(sim.DTW{}, nil, q, nil, exact); ok {
		t.Error("empty approximate ranking scored")
	}
}
