package core

import (
	"simsub/internal/geo"
	"simsub/internal/traj"
)

// CandidateSource generates the candidate set a scan iterates: the indices
// of data trajectories worth handing to the per-trajectory search, in scan
// order. The Database's own spatial enumeration (index pruning composed
// with the region filter, see CandidatesFiltered) is the built-in source;
// an approximate source — the engine's embedding index — returns a coarse
// subset instead, and the exact cascade reranks it unchanged: lower bounds,
// early abandoning and the SharedKth threshold all operate per candidate,
// so they neither know nor care how the candidate list was produced.
//
// Contract: a source must honor the region filter (never return a
// trajectory whose MBR misses a non-nil filter), must return each index at
// most once, and the returned slice is owned by the caller until the next
// Candidates call. Exactness is NOT part of the contract — a source that
// omits trajectories yields a ranking over the candidates it returned,
// which for an approximate source is the point (prefilter coarsely, rerank
// exactly). Only the nil/spatial source guarantees rankings byte-identical
// to the unpruned scan.
type CandidateSource interface {
	Candidates(q traj.Trajectory, filter *geo.Rect) []int
}

// CandidateSourceFunc adapts a function to a CandidateSource.
type CandidateSourceFunc func(q traj.Trajectory, filter *geo.Rect) []int

// Candidates implements CandidateSource.
func (f CandidateSourceFunc) Candidates(q traj.Trajectory, filter *geo.Rect) []int {
	return f(q, filter)
}

// SpatialSource returns the Database's built-in enumeration — index pruning
// composed with the region filter — as a CandidateSource. It is what every
// scan uses when handed a nil source.
func (db *Database) SpatialSource() CandidateSource {
	return CandidateSourceFunc(db.CandidatesFiltered)
}

// candidatesFrom resolves the scan's candidate list: the source when one is
// supplied, the spatial enumeration otherwise.
func (db *Database) candidatesFrom(src CandidateSource, q traj.Trajectory, filter *geo.Rect) []int {
	if src == nil {
		return db.CandidatesFiltered(q, filter)
	}
	return src.Candidates(q, filter)
}
