package core

// Property-based tests (testing/quick) over randomly generated problem
// instances: invariants every algorithm must satisfy regardless of input.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"simsub/internal/sim"
	"simsub/internal/traj"
)

// genInstance derives a (data, query) pair from quick-generated seeds.
func genInstance(seed int64, nRaw, mRaw uint8) (traj.Trajectory, traj.Trajectory) {
	rng := rand.New(rand.NewSource(seed))
	n := int(nRaw)%18 + 2
	m := int(mRaw)%6 + 1
	return randTraj(rng, n), randTraj(rng, m)
}

func TestPropertyApproximateNeverBeatsExact(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		data, q := genInstance(seed, nRaw, mRaw)
		exact := (ExactS{M: sim.DTW{}}).Search(data, q)
		for _, a := range []Algorithm{
			SizeS{M: sim.DTW{}, Xi: 2},
			PSS{M: sim.DTW{}},
			POS{M: sim.DTW{}},
			POSD{M: sim.DTW{}, D: 3},
			RandomS{M: sim.DTW{}, Samples: 5, Seed: seed ^ 0x5f},
			SimTra{M: sim.DTW{}},
		} {
			r := a.Search(data, q)
			if r.Dist < exact.Dist-1e-9 || !r.Interval.Valid(data.Len()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyReportedDistMatchesInterval(t *testing.T) {
	// for algorithms with exact state maintenance, the reported distance
	// must equal the measure's distance of the reported interval
	f := func(seed int64, nRaw, mRaw uint8) bool {
		data, q := genInstance(seed, nRaw, mRaw)
		for _, a := range []Algorithm{
			ExactS{M: sim.Frechet{}},
			SizeS{M: sim.Frechet{}, Xi: 3},
			PSS{M: sim.Frechet{}},
			POS{M: sim.Frechet{}},
		} {
			r := a.Search(data, q)
			re := ExactDist(sim.Frechet{}, data, q, r)
			if math.Abs(re-r.Dist) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertySpringEqualsExactUnderDTW(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		data, q := genInstance(seed, nRaw, mRaw)
		spring := (Spring{}).Search(data, q)
		exact := (ExactS{M: sim.DTW{}}).Search(data, q)
		return math.Abs(spring.Dist-exact.Dist) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTopKPrefixOfLargerK(t *testing.T) {
	// the top-k list must be a prefix (by distance) of the top-(k+j) list
	f := func(seed int64, nRaw, mRaw uint8) bool {
		data, q := genInstance(seed, nRaw, mRaw)
		small := TopKExact(sim.DTW{}, data, q, 3, false)
		large := TopKExact(sim.DTW{}, data, q, 6, false)
		if len(small) > len(large) {
			return false
		}
		for i := range small {
			if math.Abs(small[i].Dist-large[i].Dist) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUCRWindowLength(t *testing.T) {
	// UCR answers always have exactly the query's length (clipped by n)
	f := func(seed int64, nRaw, mRaw uint8) bool {
		data, q := genInstance(seed, nRaw, mRaw)
		r := (UCR{Band: 0.5}).Search(data, q)
		want := q.Len()
		if data.Len() < want {
			want = data.Len()
		}
		return r.Interval.Valid(data.Len()) && r.Interval.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDatabaseTopKMonotone(t *testing.T) {
	// growing k never changes the head of the result list
	f := func(seed int64, countRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(countRaw)%10 + 3
		ts := make([]traj.Trajectory, count)
		for i := range ts {
			ts[i] = randTraj(rng, rng.Intn(10)+2)
		}
		db := NewDatabase(ts, false)
		q := randTraj(rng, 3)
		top2 := db.TopK(PSS{M: sim.DTW{}}, q, 2)
		top5 := db.TopK(PSS{M: sim.DTW{}}, q, 5)
		for i := range top2 {
			if top2[i].Result.Dist != top5[i].Result.Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
