package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"simsub/internal/geo"
	"simsub/internal/nn"
	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// noisyPolicy builds a policy with random (DQN-initialization) weights: its
// actions depend on the state, so batched lanes diverge from each other and
// the lockstep machinery is exercised much harder than by a constant policy.
func noisyPolicy(seed int64, k int, useSuffix, simplify bool) *rl.Policy {
	dim := rl.StateDim(useSuffix)
	net := nn.NewMLP([]int{dim, 8, 2 + k}, []nn.Activation{nn.ReLU, nn.Sigmoid}, rand.New(rand.NewSource(seed)))
	return &rl.Policy{Net: net, K: k, UseSuffix: useSuffix, SimplifyState: simplify}
}

// TestBatchScanEquivalence is the batched counterpart of the pruned≡unpruned
// matrix: across measures, policies (network- and table-served), lane widths
// and spatial filters, TopKPrunedBatchCtx must return rankings byte-identical
// to the sequential TopKPrunedCtx — out-of-order completion must be
// invisible in the answer.
func TestBatchScanEquivalence(t *testing.T) {
	data := equivData(300, 18, 41)
	db := NewDatabase(data, false)
	q := equivData(1, 6, 42)[0]
	filter := &geo.Rect{MinX: 0, MinY: 0, MaxX: 14, MaxY: 14}

	table, err := rl.Compile(noisyPolicy(7, 2, true, true), 8)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	algs := func(m sim.Measure) []RLS {
		return []RLS{
			{M: m, Policy: constPolicy(1, 0, true, false)}, // RLS, always split
			{M: m, Policy: noisyPolicy(3, 3, true, true)},  // RLS-Skip
			{M: m, Policy: noisyPolicy(4, 3, false, true)}, // RLS-Skip+
			{M: m, Table: table},                           // compiled table serving
		}
	}
	const k = 10
	for _, m := range []sim.Measure{sim.DTW{}, sim.Frechet{}} {
		for ai, alg := range algs(m) {
			if _, ok := Algorithm(alg).(BatchThresholdSearcher); !ok {
				t.Fatal("RLS does not implement BatchThresholdSearcher")
			}
			for _, f := range []*geo.Rect{nil, filter} {
				want, err := db.TopKPrunedCtx(context.Background(), alg, q, k, f, NewSharedKth(k), nil)
				if err != nil {
					t.Fatal(err)
				}
				for _, lanes := range []int{1, 7, 64} {
					var st PruneStats
					got, err := db.TopKPrunedBatchCtx(context.Background(), alg, q, k, f, NewSharedKth(k), &st, lanes)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s/%s alg%d lanes=%d filter=%v: %d matches, want %d",
							m.Name(), alg.Name(), ai, lanes, f != nil, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s/%s alg%d lanes=%d filter=%v rank %d: batched %+v != sequential %+v",
								m.Name(), alg.Name(), ai, lanes, f != nil, i, got[i], want[i])
						}
					}
					if lanes >= 2 && st.Candidates == 0 {
						t.Fatalf("%s/%s: batched scan saw no candidates", m.Name(), alg.Name())
					}
				}
				// the serving walk records its scanned-point count, so quality
				// sampling can price skips without a policy re-walk
				for _, mt := range want {
					if mt.Result.Scanned <= 0 {
						t.Fatalf("%s/%s: match %+v has no Scanned count", m.Name(), alg.Name(), mt)
					}
				}
			}
		}
	}
}

// TestBatchScanMidScanThreshold seeds the shared k-th-best with a finite tau
// before the scan starts — the cross-shard case where a sibling has already
// found matches — and checks the batched completion-time post-filter still
// reproduces the sequential ranking. The seed values are uniform, so the
// external threshold component is constant through the scan and the ranking
// is order-independent: exactly the k best results at distance <= tau.
func TestBatchScanMidScanThreshold(t *testing.T) {
	data := equivData(200, 16, 51)
	db := NewDatabase(data, false)
	q := equivData(1, 6, 52)[0]
	const k = 8
	alg := RLS{M: sim.DTW{}, Policy: noisyPolicy(9, 2, true, true)}

	// pick tau at the median completed distance so the post-filter really
	// suppresses about half of the candidates mid-scan
	probe, err := db.TopKPrunedCtx(context.Background(), alg, q, len(data), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tau := probe[len(probe)/2].Result.Dist
	if math.IsInf(tau, 1) {
		t.Fatal("probe scan produced no finite distances")
	}
	seeded := func() *SharedKth {
		s := NewSharedKth(k)
		for i := 0; i < k; i++ {
			s.Offer(tau)
		}
		return s
	}

	var stSeq PruneStats
	want, err := db.TopKPrunedCtx(context.Background(), alg, q, k, nil, seeded(), &stSeq)
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range want {
		if mt.Result.Dist > tau {
			t.Fatalf("sequential scan retained %+v beyond the seeded tau %v", mt, tau)
		}
	}
	for _, lanes := range []int{7, 64} {
		var st PruneStats
		got, err := db.TopKPrunedBatchCtx(context.Background(), alg, q, k, nil, seeded(), &st, lanes)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("lanes=%d: %d matches, want %d", lanes, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("lanes=%d rank %d: batched %+v != sequential %+v", lanes, i, got[i], want[i])
			}
		}
		if st.Abandoned == 0 {
			t.Errorf("lanes=%d: seeded tau never suppressed a completed walk", lanes)
		}
	}
}

// TestBatchScanDegenerate drives the batched entry points through the guard
// paths: a policy-less algorithm, an empty query and a cancelled context.
func TestBatchScanDegenerate(t *testing.T) {
	data := equivData(20, 10, 61)
	db := NewDatabase(data, false)
	q := equivData(1, 5, 62)[0]

	// no policy: every candidate completes with an infinite distance, same
	// as the sequential degenerate path
	for _, alg := range []RLS{{M: sim.DTW{}}, {M: sim.DTW{}, Policy: &rl.Policy{}}} {
		got, err := db.TopKPrunedBatchCtx(context.Background(), alg, q, 5, nil, nil, nil, 16)
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.TopKPrunedCtx(context.Background(), alg, q, 5, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("degenerate: %d matches, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("degenerate rank %d: %+v != %+v", i, got[i], want[i])
			}
		}
	}

	// empty query: same degenerate contract
	alg := RLS{M: sim.DTW{}, Policy: constPolicy(1, 0, true, false)}
	got, err := db.TopKPrunedBatchCtx(context.Background(), alg, traj.Trajectory{}, 5, nil, nil, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range got {
		if !math.IsInf(mt.Result.Dist, 1) {
			t.Fatalf("empty query produced a finite match %+v", mt)
		}
	}

	// cancelled context: the scan must stop with the context's error
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.TopKPrunedBatchCtx(ctx, alg, q, 5, nil, nil, nil, 16); err == nil {
		t.Fatal("cancelled context did not abort the batched scan")
	}

	// lanes < 2 falls back to the sequential scan and still answers
	if _, err := db.TopKPrunedBatchCtx(context.Background(), alg, q, 5, nil, nil, nil, 1); err != nil {
		t.Fatal(err)
	}
}
