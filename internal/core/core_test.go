package core

import (
	"math"
	"math/rand"
	"testing"

	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

func randTraj(rng *rand.Rand, n int) traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
	}
	return traj.New(pts...)
}

// bruteBest finds the exact best subtrajectory by scoring every candidate
// from scratch — the independent oracle for all algorithm tests.
func bruteBest(m sim.Measure, t, q traj.Trajectory) (traj.Interval, float64) {
	n := t.Len()
	best := math.Inf(1)
	var iv traj.Interval
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			d := m.Dist(t.Sub(i, j), q)
			if d < best {
				best = d
				iv = traj.Interval{I: i, J: j}
			}
		}
	}
	return iv, best
}

func coreMeasures() []sim.Measure {
	return []sim.Measure{sim.DTW{}, sim.Frechet{}, sim.ERP{}}
}

func TestExactSMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range coreMeasures() {
		for trial := 0; trial < 10; trial++ {
			data := randTraj(rng, rng.Intn(12)+2)
			q := randTraj(rng, rng.Intn(6)+1)
			got := (ExactS{M: m}).Search(data, q)
			_, want := bruteBest(m, data, q)
			if math.Abs(got.Dist-want) > 1e-9 {
				t.Fatalf("%s: ExactS dist %v, brute force %v", m.Name(), got.Dist, want)
			}
			// the reported interval must actually achieve the distance
			re := m.Dist(data.Sub(got.Interval.I, got.Interval.J), q)
			if math.Abs(re-got.Dist) > 1e-9 {
				t.Fatalf("%s: interval %v scores %v, reported %v", m.Name(), got.Interval, re, got.Dist)
			}
			if got.Explored != data.Len()*(data.Len()+1)/2 {
				t.Errorf("%s: explored %d, want all %d", m.Name(), got.Explored, data.Len()*(data.Len()+1)/2)
			}
		}
	}
}

func TestExactSFindsEmbeddedQuery(t *testing.T) {
	// embed the query verbatim inside a longer trajectory: exact search must
	// find it with distance 0
	rng := rand.New(rand.NewSource(2))
	q := randTraj(rng, 5)
	prefix := randTraj(rng, 4).Translate(50, 50)
	suffix := randTraj(rng, 6).Translate(-50, -50)
	pts := append(append(append([]geo.Point{}, prefix.Points...), q.Points...), suffix.Points...)
	data := traj.New(pts...)
	got := (ExactS{M: sim.DTW{}}).Search(data, q)
	if got.Dist > 1e-9 {
		t.Fatalf("embedded query not found: dist %v at %v", got.Dist, got.Interval)
	}
	if got.Interval.I != 4 || got.Interval.J != 8 {
		// distance 0 can also be achieved by stuttered alignments; accept
		// any interval scoring 0 but report the canonical one if different
		if d := sim.DTW.Dist(sim.DTW{}, data.Sub(got.Interval.I, got.Interval.J), q); d > 1e-9 {
			t.Fatalf("returned interval %v does not score 0", got.Interval)
		}
	}
}

func TestSizeSRespectsSizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randTraj(rng, 20)
	q := randTraj(rng, 6)
	for _, xi := range []int{0, 2, 5} {
		got := (SizeS{M: sim.DTW{}, Xi: xi}).Search(data, q)
		size := got.Interval.Len()
		lo, hi := q.Len()-xi, q.Len()+xi
		if lo < 1 {
			lo = 1
		}
		if size < lo || size > hi {
			t.Errorf("xi=%d: returned size %d outside [%d,%d]", xi, size, lo, hi)
		}
	}
}

// naiveSizeS is an oracle computing the best subtrajectory of size within
// [m-xi, m+xi] from scratch, with SizeS's documented whole-trajectory
// fallback when the constraint is unsatisfiable.
func naiveSizeS(m sim.Measure, t, q traj.Trajectory, xi int) float64 {
	n := t.Len()
	lo, hi := q.Len()-xi, q.Len()+xi
	if lo < 1 {
		lo = 1
	}
	if lo > n {
		return m.Dist(t, q)
	}
	best := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if size := j - i + 1; size < lo || size > hi {
				continue
			}
			if d := m.Dist(t.Sub(i, j), q); d < best {
				best = d
			}
		}
	}
	return best
}

func TestSizeSMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		data := randTraj(rng, rng.Intn(15)+3)
		q := randTraj(rng, rng.Intn(5)+2)
		for _, xi := range []int{0, 1, 3} {
			got := (SizeS{M: sim.DTW{}, Xi: xi}).Search(data, q)
			want := naiveSizeS(sim.DTW{}, data, q, xi)
			if math.Abs(got.Dist-want) > 1e-9 {
				t.Fatalf("trial %d xi=%d: SizeS %v, oracle %v", trial, xi, got.Dist, want)
			}
		}
	}
}

func TestSizeSWithLargeXiEqualsExactS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randTraj(rng, 12)
	q := randTraj(rng, 4)
	exact := (ExactS{M: sim.DTW{}}).Search(data, q)
	sized := (SizeS{M: sim.DTW{}, Xi: data.Len()}).Search(data, q)
	if math.Abs(exact.Dist-sized.Dist) > 1e-9 {
		t.Errorf("SizeS with xi=n should equal ExactS: %v vs %v", sized.Dist, exact.Dist)
	}
}

// naivePSS re-implements Algorithm 2 with from-scratch distance
// computations, as an independent oracle for the incremental version.
func naivePSS(m sim.Measure, t, q traj.Trajectory) (traj.Interval, float64) {
	n := t.Len()
	h := 0
	best := math.Inf(1)
	var iv traj.Interval
	qr := q.Reverse()
	for i := 0; i < n; i++ {
		dPre := m.Dist(t.Sub(h, i), q)
		dSuf := m.Dist(t.Sub(i, n-1).Reverse(), qr)
		if math.Min(dPre, dSuf) < best {
			if dPre <= dSuf {
				best = dPre
				iv = traj.Interval{I: h, J: i}
			} else {
				best = dSuf
				iv = traj.Interval{I: i, J: n - 1}
			}
			h = i + 1
		}
	}
	return iv, best
}

func TestPSSMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, m := range coreMeasures() {
		for trial := 0; trial < 15; trial++ {
			data := randTraj(rng, rng.Intn(15)+2)
			q := randTraj(rng, rng.Intn(6)+1)
			got := (PSS{M: m}).Search(data, q)
			wantIv, wantD := naivePSS(m, data, q)
			if math.Abs(got.Dist-wantD) > 1e-9 || got.Interval != wantIv {
				t.Fatalf("%s trial %d: PSS %v@%v, naive %v@%v",
					m.Name(), trial, got.Dist, got.Interval, wantD, wantIv)
			}
		}
	}
}

// naivePOS re-implements POS/POS-D with from-scratch computations.
func naivePOS(m sim.Measure, t, q traj.Trajectory, delay int) (traj.Interval, float64) {
	n := t.Len()
	h := 0
	best := math.Inf(1)
	var iv traj.Interval
	for i := 0; i < n; i++ {
		dPre := m.Dist(t.Sub(h, i), q)
		if dPre < best {
			bestJ, bestD := i, dPre
			for d := 1; d <= delay && i+d < n; d++ {
				ext := m.Dist(t.Sub(h, i+d), q)
				if ext < bestD {
					bestJ, bestD = i+d, ext
				}
			}
			best = bestD
			iv = traj.Interval{I: h, J: bestJ}
			h = bestJ + 1
			i = bestJ
		}
	}
	return iv, best
}

func TestPOSMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range coreMeasures() {
		for trial := 0; trial < 15; trial++ {
			data := randTraj(rng, rng.Intn(15)+2)
			q := randTraj(rng, rng.Intn(6)+1)
			got := (POS{M: m}).Search(data, q)
			wantIv, wantD := naivePOS(m, data, q, 0)
			if math.Abs(got.Dist-wantD) > 1e-9 || got.Interval != wantIv {
				t.Fatalf("%s trial %d: POS %v@%v, naive %v@%v",
					m.Name(), trial, got.Dist, got.Interval, wantD, wantIv)
			}
		}
	}
}

func TestPOSDMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		data := randTraj(rng, rng.Intn(15)+2)
		q := randTraj(rng, rng.Intn(6)+1)
		for _, d := range []int{1, 3, 5} {
			got := (POSD{M: sim.DTW{}, D: d}).Search(data, q)
			wantIv, wantD := naivePOS(sim.DTW{}, data, q, d)
			if math.Abs(got.Dist-wantD) > 1e-9 || got.Interval != wantIv {
				t.Fatalf("trial %d D=%d: POS-D %v@%v, naive %v@%v",
					trial, d, got.Dist, got.Interval, wantD, wantIv)
			}
		}
	}
}

func TestSplittingAlgorithmsNeverBeatExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		data := randTraj(rng, rng.Intn(15)+2)
		q := randTraj(rng, rng.Intn(6)+1)
		exact := (ExactS{M: sim.DTW{}}).Search(data, q)
		for _, a := range []Algorithm{
			PSS{M: sim.DTW{}},
			POS{M: sim.DTW{}},
			POSD{M: sim.DTW{}, D: 5},
			SizeS{M: sim.DTW{}, Xi: 3},
		} {
			got := a.Search(data, q)
			if got.Dist < exact.Dist-1e-9 {
				t.Errorf("%s returned %v better than exact %v", a.Name(), got.Dist, exact.Dist)
			}
			if !got.Interval.Valid(data.Len()) {
				t.Errorf("%s returned invalid interval %v", a.Name(), got.Interval)
			}
		}
	}
}

func TestPSSAdversarial(t *testing.T) {
	// Appendix B, Case 1: T = <p'1, p'2, p1..pn, p'3> with p'1=(-d/2,0),
	// p'2=(-d,0), pi=(0,0), p'3=(d,0) and Tq = <(0,eps)>. PSS splits at p'1
	// and never again, returning <p'1>, while the optimum is any <pi>.
	const d = 100.0
	const eps = 1e-3
	const n = 10
	pts := []geo.Point{{X: -d / 2}, {X: -d}}
	for i := 0; i < n; i++ {
		pts = append(pts, geo.Point{})
	}
	pts = append(pts, geo.Point{X: d})
	data := traj.New(pts...)
	q := traj.New(geo.Point{X: 0, Y: eps})

	exact := (ExactS{M: sim.DTW{}}).Search(data, q)
	if math.Abs(exact.Dist-eps) > 1e-9 {
		t.Fatalf("exact dist = %v, want %v", exact.Dist, eps)
	}
	pss := (PSS{M: sim.DTW{}}).Search(data, q)
	if pss.Interval != (traj.Interval{I: 0, J: 0}) {
		t.Fatalf("PSS interval = %v, want [0,0] per Appendix B", pss.Interval)
	}
	if ratio := pss.Dist / exact.Dist; ratio < 100 {
		t.Errorf("adversarial AR = %v, expected arbitrarily large", ratio)
	}
	// POS and POS-D behave identically on this input (Appendix B, Case 2)
	for _, a := range []Algorithm{POS{M: sim.DTW{}}, POSD{M: sim.DTW{}, D: 5}} {
		got := a.Search(data, q)
		if got.Interval != (traj.Interval{I: 0, J: 0}) {
			t.Errorf("%s interval = %v, want [0,0]", a.Name(), got.Interval)
		}
	}
}

func TestSizeSAdversarial(t *testing.T) {
	// Appendix A flavor: the optimal subtrajectory is a single point but
	// SizeS with xi=0 must return a length-m window, which can be
	// arbitrarily worse.
	data := traj.FromXY(0, 0, 100, 0, 0.001, 0, -100, 0, 50, 50)
	q := traj.FromXY(0, 0, 0, 0, 0, 0) // m = 3, best single point is p3
	exact := (ExactS{M: sim.DTW{}}).Search(data, q)
	sized := (SizeS{M: sim.DTW{}, Xi: 0}).Search(data, q)
	if sized.Interval.Len() != 3 {
		t.Fatalf("SizeS xi=0 returned size %d, want exactly m=3", sized.Interval.Len())
	}
	if sized.Dist < 10*exact.Dist {
		t.Errorf("expected SizeS to be much worse: exact %v, SizeS %v", exact.Dist, sized.Dist)
	}
}

func TestSpringMatchesExactDTW(t *testing.T) {
	// SPRING is exact for DTW subsequence matching: its distance must equal
	// ExactS under DTW (intervals may differ on ties).
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		data := randTraj(rng, rng.Intn(20)+2)
		q := randTraj(rng, rng.Intn(6)+1)
		spring := (Spring{}).Search(data, q)
		exact := (ExactS{M: sim.DTW{}}).Search(data, q)
		if math.Abs(spring.Dist-exact.Dist) > 1e-9 {
			t.Fatalf("trial %d: Spring %v, ExactS %v", trial, spring.Dist, exact.Dist)
		}
		// the returned interval must achieve the distance
		re := (sim.DTW{}).Dist(data.Sub(spring.Interval.I, spring.Interval.J), q)
		if math.Abs(re-spring.Dist) > 1e-9 {
			t.Fatalf("trial %d: Spring interval %v scores %v, reported %v",
				trial, spring.Interval, re, spring.Dist)
		}
	}
}

func TestSpringBandDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := randTraj(rng, 25)
	q := randTraj(rng, 8)
	exact := (ExactS{M: sim.DTW{}}).Search(data, q)
	for _, r := range []float64{0.1, 0.3, 0.6, 1} {
		got := (Spring{Band: r}).Search(data, q)
		if got.Dist < exact.Dist-1e-9 {
			t.Errorf("Spring band %v beat exact: %v < %v", r, got.Dist, exact.Dist)
		}
		if !got.Interval.Valid(data.Len()) {
			t.Errorf("Spring band %v returned invalid interval", r)
		}
	}
}

// bruteUCR is the oracle for UCR: minimum banded DTW over all windows of
// length exactly m.
func bruteUCR(t, q traj.Trajectory, band float64) float64 {
	n, m := t.Len(), q.Len()
	w := int(math.Ceil(band * float64(m)))
	if w < 1 {
		w = 1
	}
	if w > m {
		w = m
	}
	best := math.Inf(1)
	for s := 0; s+m <= n; s++ {
		d := bandDTWEarlyAbandon(t.Points[s:s+m], q, w, math.Inf(1))
		if d < best {
			best = d
		}
	}
	return best
}

func TestUCRMatchesWindowOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		data := randTraj(rng, rng.Intn(30)+10)
		q := randTraj(rng, rng.Intn(6)+3)
		for _, r := range []float64{0.1, 0.5, 1} {
			got := (UCR{Band: r}).Search(data, q)
			want := bruteUCR(data, q, r)
			if math.Abs(got.Dist-want) > 1e-9 {
				t.Fatalf("trial %d R=%v: UCR %v, oracle %v", trial, r, got.Dist, want)
			}
			if got.Interval.Len() != q.Len() {
				t.Fatalf("UCR returned size %d, want m=%d", got.Interval.Len(), q.Len())
			}
		}
	}
}

func TestUCRPruningActuallyFires(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := randTraj(rng, 300)
	q := randTraj(rng, 12)
	counters := &UCRCounters{}
	(UCR{Band: 0.3, Counters: counters}).Search(data, q)
	if counters.Windows != data.Len()-q.Len()+1 {
		t.Errorf("windows = %d, want %d", counters.Windows, data.Len()-q.Len()+1)
	}
	pruned := counters.PrunedKim + counters.PrunedKeogh + counters.PrunedKeoghRev + counters.AbandonedDTW
	if pruned == 0 {
		t.Error("expected at least one window pruned by the cascade")
	}
	if counters.FullDTW+pruned != counters.Windows {
		t.Errorf("counter accounting broken: %+v", counters)
	}
}

func TestUCRShortTrajectory(t *testing.T) {
	data := traj.FromXY(0, 0, 1, 1)
	q := traj.FromXY(0, 0, 1, 1, 2, 2)
	got := (UCR{Band: 1}).Search(data, q)
	if got.Interval != (traj.Interval{I: 0, J: 1}) {
		t.Errorf("short trajectory interval = %v", got.Interval)
	}
}

func TestSlidingMBR(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 2, Y: 1}, {X: -1, Y: 3}, {X: 4, Y: -2}, {X: 1, Y: 1}}
	w := 1
	got := slidingMBR(pts, w)
	for j := range pts {
		lo, hi := j-w, j+w
		if lo < 0 {
			lo = 0
		}
		if hi > len(pts)-1 {
			hi = len(pts) - 1
		}
		want := geo.MBR(pts[lo : hi+1])
		if got[j] != want {
			t.Errorf("slidingMBR[%d] = %v, want %v", j, got[j], want)
		}
	}
}

func TestSlidingMBRLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts := randTraj(rng, 200).Points
	for _, w := range []int{1, 5, 50, 300} {
		got := slidingMBR(pts, w)
		for j := 0; j < len(pts); j += 17 {
			lo, hi := j-w, j+w
			if lo < 0 {
				lo = 0
			}
			if hi > len(pts)-1 {
				hi = len(pts) - 1
			}
			want := geo.MBR(pts[lo : hi+1])
			if got[j] != want {
				t.Fatalf("w=%d: slidingMBR[%d] = %v, want %v", w, j, got[j], want)
			}
		}
	}
}

func TestUnrankSubCoversAllPairs(t *testing.T) {
	for _, n := range []int{1, 2, 5, 9} {
		total := n * (n + 1) / 2
		seen := map[[2]int]bool{}
		for k := 0; k < total; k++ {
			i, j := unrankSub(k, n)
			if i < 0 || j < i || j >= n {
				t.Fatalf("n=%d k=%d: invalid pair (%d,%d)", n, k, i, j)
			}
			if seen[[2]int{i, j}] {
				t.Fatalf("n=%d: duplicate pair (%d,%d)", n, i, j)
			}
			seen[[2]int{i, j}] = true
		}
		if len(seen) != total {
			t.Fatalf("n=%d: covered %d pairs, want %d", n, len(seen), total)
		}
	}
}

func TestRandomS(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	data := randTraj(rng, 15)
	q := randTraj(rng, 5)
	exact := (ExactS{M: sim.DTW{}}).Search(data, q)
	total := data.Len() * (data.Len() + 1) / 2
	// sampling more than the population (with replacement) almost surely
	// gets close to exact; sampling 1 cannot beat exact
	small := (RandomS{M: sim.DTW{}, Samples: 1, Seed: 7}).Search(data, q)
	if small.Dist < exact.Dist-1e-9 {
		t.Errorf("Random-S beat exact: %v < %v", small.Dist, exact.Dist)
	}
	if small.Explored != 1 {
		t.Errorf("explored = %d, want 1", small.Explored)
	}
	big := (RandomS{M: sim.DTW{}, Samples: total * 20, Seed: 7}).Search(data, q)
	if big.Dist > exact.Dist+1e-9 && big.Dist/exact.Dist > 1.5 {
		t.Errorf("Random-S with heavy sampling far from exact: %v vs %v", big.Dist, exact.Dist)
	}
	// deterministic given the seed
	again := (RandomS{M: sim.DTW{}, Samples: total * 20, Seed: 7}).Search(data, q)
	if again.Dist != big.Dist || again.Interval != big.Interval {
		t.Error("Random-S is not deterministic for a fixed seed")
	}
}

func TestSimTra(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	data := randTraj(rng, 10)
	q := randTraj(rng, 4)
	got := (SimTra{M: sim.DTW{}}).Search(data, q)
	if got.Interval != (traj.Interval{I: 0, J: 9}) {
		t.Errorf("SimTra interval = %v, want whole trajectory", got.Interval)
	}
	if want := (sim.DTW{}).Dist(data, q); math.Abs(got.Dist-want) > 1e-12 {
		t.Errorf("SimTra dist = %v, want %v", got.Dist, want)
	}
}

func TestExactDist(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	data := randTraj(rng, 8)
	q := randTraj(rng, 3)
	r := Result{Interval: traj.Interval{I: 2, J: 5}}
	want := (sim.DTW{}).Dist(data.Sub(2, 5), q)
	if got := ExactDist(sim.DTW{}, data, q, r); math.Abs(got-want) > 1e-12 {
		t.Errorf("ExactDist = %v, want %v", got, want)
	}
	bad := Result{Interval: traj.Interval{I: 5, J: 2}}
	if got := ExactDist(sim.DTW{}, data, q, bad); !math.IsInf(got, 1) {
		t.Errorf("ExactDist of invalid interval = %v, want +Inf", got)
	}
}

func TestAlgorithmNames(t *testing.T) {
	cases := map[string]Algorithm{
		"ExactS":   ExactS{},
		"SizeS":    SizeS{},
		"PSS":      PSS{},
		"POS":      POS{},
		"POS-D":    POSD{},
		"Spring":   Spring{},
		"UCR":      UCR{},
		"Random-S": RandomS{},
		"SimTra":   SimTra{},
	}
	for want, a := range cases {
		if got := a.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestSizeSQueryLongerThanData(t *testing.T) {
	// when m - xi > n no subtrajectory satisfies the size constraint; SizeS
	// must still return a valid, correctly scored interval (the whole
	// trajectory) rather than an unevaluated zero value
	data := traj.FromXY(0, 0, 1, 0)
	q := traj.FromXY(0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0)
	got := (SizeS{M: sim.DTW{}, Xi: 1}).Search(data, q)
	if got.Interval != (traj.Interval{I: 0, J: 1}) {
		t.Fatalf("interval = %v, want whole trajectory", got.Interval)
	}
	want := (sim.DTW{}).Dist(data, q)
	if math.Abs(got.Dist-want) > 1e-12 {
		t.Errorf("dist = %v, want %v", got.Dist, want)
	}
}
