package core

import (
	"context"
	"math"

	"simsub/internal/geo"
	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// This file is the batched scan pipeline: the lane-feeding counterpart of
// the sequential threshold scan for searches whose per-candidate work is
// dominated by policy inference. The scan loop feeds candidates into a
// fixed number of lanes; the search advances all in-flight walks in
// lockstep (one batched inference per round — rl.BatchRunner) and hands
// back results as walks complete, in completion order rather than candidate
// order.
//
// Why out-of-order delivery keeps rankings byte-identical: the top-k heap
// retains the k best matches under the strict total order RankBefore, so
// its final contents are a function of the match SET, not the offer order.
// A candidate is dropped only against a provable bound that beats the
// current threshold — the lower-bound cascade before feeding (full-state
// policies only, see the RLS note in rls.go) or the completed distance at
// delivery — and the current threshold is an upper bound on the final k-th
// best, so a dropped match could never be retained by any offer order. The
// batched scan therefore returns exactly the sequential scan's ranking;
// only the PruneStats counters (how many candidates were LB-skipped vs.
// scored vs. suppressed) may differ, since the batched path reads the
// threshold at feed time for the cascade but at completion time for the
// post-filter, while in-flight lanes delay its tightening.

// BatchResult is one completed search of a batched scan: the caller-chosen
// candidate tag and the walk's result.
type BatchResult struct {
	Tag int
	R   Result
}

// BatchThresholdSearcher is a ThresholdSearcher that can also run its
// per-candidate searches in lockstep lanes. NewBatchThresholdSearch mirrors
// NewThresholdSearch: per-query state, single-goroutine, released after the
// scan.
type BatchThresholdSearcher interface {
	ThresholdSearcher
	NewBatchThresholdSearch(q traj.Trajectory, lanes int) BatchThresholdSearch
}

// BatchThresholdSearch is the lane-feeding form of ThresholdSearch. Feed
// enqueues one candidate and returns any searches that completed while
// making room for it; Drain completes every in-flight search. Returned
// slices are valid until the next Feed or Drain call. The threshold
// post-filter is the scan loop's job — results come back unfiltered, so
// the loop can apply the freshest threshold at completion time; PrunesLB
// is the candidate-level gate the loop consults before feeding, mirroring
// the sequential path's lower-bound cascade (false when the search cannot
// prove anything about this candidate).
type BatchThresholdSearch interface {
	Feed(t traj.Trajectory, meta TrajMeta, tag int) []BatchResult
	PrunesLB(t traj.Trajectory, meta TrajMeta, tau float64) bool
	Drain() []BatchResult
	Release()
}

// NewBatchThresholdSearch implements BatchThresholdSearcher for the learned
// searches: candidates are walked in lockstep lanes by an rl.BatchRunner
// over the policy network. Lockstep lanes exist to amortize network
// inference into one mat-mat pass per round; a compiled table has no
// inference to amortize, and keeping walks in flight only delays threshold
// tightening, so table-backed searches run each candidate synchronously
// through the fused sequential walk instead (same lane-feeding interface,
// one completed result per Feed).
func (a RLS) NewBatchThresholdSearch(q traj.Trajectory, lanes int) BatchThresholdSearch {
	_, useSuffix, simplify, ok := a.params()
	if !ok || q.Len() == 0 {
		return &rlsBatchSearch{} // degenerate: every candidate reports an infinite distance
	}
	if a.Table != nil {
		seq, _ := a.NewThresholdSearch(q).(*rlsThresholdSearch)
		return &rlsSeqBatchSearch{s: seq}
	}
	s := &rlsBatchSearch{}
	if !simplify {
		// full-state policies report genuine subtrajectory distances, so the
		// lower-bound cascade is sound — see the NewThresholdSearch comment
		s.lb = lbFor(a.M, q)
	}
	s.runner = rl.NewBatchRunner(a.M, q, rl.EnvConfig{
		UseSuffix:     useSuffix,
		SimplifyState: simplify,
	}, a.src(), lanes)
	return s
}

// rlsSeqBatchSearch adapts the sequential threshold search to the
// lane-feeding interface for table-backed policies: Feed completes the
// candidate's walk before returning, so delivery order equals feed order
// and the scan's pruning behavior is exactly the sequential path's.
type rlsSeqBatchSearch struct {
	s   *rlsThresholdSearch
	out [1]BatchResult
}

func (b *rlsSeqBatchSearch) PrunesLB(t traj.Trajectory, meta TrajMeta, tau float64) bool {
	return lbPrunes(b.s.lb, t, meta, tau)
}

func (b *rlsSeqBatchSearch) Feed(t traj.Trajectory, meta TrajMeta, tag int) []BatchResult {
	b.out[0] = BatchResult{Tag: tag, R: b.s.search(t, meta)}
	return b.out[:1]
}

func (b *rlsSeqBatchSearch) Drain() []BatchResult { return nil }

func (b *rlsSeqBatchSearch) Release() { b.s.Release() }

type rlsBatchSearch struct {
	runner *rl.BatchRunner
	lb     sim.SubtrajLB
	out    []BatchResult
}

func (s *rlsBatchSearch) PrunesLB(t traj.Trajectory, meta TrajMeta, tau float64) bool {
	return lbPrunes(s.lb, t, meta, tau)
}

// convert re-shapes finished walks into BatchResults in the search's
// reusable buffer.
func (s *rlsBatchSearch) convert(walks []rl.Walk) []BatchResult {
	s.out = s.out[:0]
	for _, w := range walks {
		s.out = append(s.out, BatchResult{Tag: w.Tag, R: Result{
			Interval: w.Best,
			Dist:     w.Dist,
			Explored: w.Explored,
			Scanned:  w.Scanned,
		}})
	}
	return s.out
}

func (s *rlsBatchSearch) Feed(t traj.Trajectory, meta TrajMeta, tag int) []BatchResult {
	if s.runner == nil || t.Len() == 0 {
		s.out = s.out[:0]
		return append(s.out, BatchResult{Tag: tag, R: Result{Dist: math.Inf(1)}})
	}
	return s.convert(s.runner.Add(tag, t, meta.Rev))
}

func (s *rlsBatchSearch) Drain() []BatchResult {
	if s.runner == nil {
		return nil
	}
	return s.convert(s.runner.Flush())
}

func (s *rlsBatchSearch) Release() {
	if s.runner != nil {
		s.runner.Release()
	}
}

// TopKPrunedBatchCtx is TopKPrunedCtx with the per-candidate searches run
// through the algorithm's batched lane path when it has one: candidates
// are fed into `lanes` lockstep lanes and their completed results offered
// to the heap in completion order, with the threshold applied as a
// post-filter at completion time. The returned ranking is byte-identical
// to TopKPrunedCtx's (see the file comment); PruneStats counters may
// differ. Algorithms without a batched path — or lanes < 2 — fall back to
// the sequential scan.
func (db *Database) TopKPrunedBatchCtx(ctx context.Context, alg Algorithm, q traj.Trajectory, k int, filter *geo.Rect, shared *SharedKth, st *PruneStats, lanes int) ([]Match, error) {
	return db.TopKPrunedBatchSourceCtx(ctx, alg, q, k, filter, shared, st, nil, lanes)
}

// TopKPrunedBatchSourceCtx is TopKPrunedBatchCtx over src's candidates
// (nil = the spatial enumeration); see TopKPrunedSourceCtx for the
// approximate-source semantics.
func (db *Database) TopKPrunedBatchSourceCtx(ctx context.Context, alg Algorithm, q traj.Trajectory, k int, filter *geo.Rect, shared *SharedKth, st *PruneStats, src CandidateSource, lanes int) ([]Match, error) {
	bs, ok := alg.(BatchThresholdSearcher)
	if !ok || lanes < 2 {
		return db.TopKPrunedSourceCtx(ctx, alg, q, k, filter, shared, st, src)
	}
	if st == nil {
		st = &PruneStats{}
	}
	h := topKHeap{k: k}
	var extern Thresholder
	if shared != nil {
		extern = shared
	}
	th := heapThresholder{h: &h, extern: extern}
	search := bs.NewBatchThresholdSearch(q, lanes)
	defer search.Release()
	deliver := func(rs []BatchResult) {
		for _, br := range rs {
			if br.R.Dist > th.Threshold() {
				st.Abandoned++
				continue
			}
			st.Scored++
			h.offer(Match{TrajIndex: br.Tag, Result: br.R})
			if shared != nil {
				shared.Offer(br.R.Dist)
			}
		}
	}
	for _, ci := range db.candidatesFrom(src, q, filter) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t := db.be.Traj(ci)
		if t.Len() == 0 {
			continue
		}
		st.Candidates++
		meta := db.Meta(ci)
		if search.PrunesLB(t, meta, th.Threshold()) {
			st.LBSkipped++
			continue
		}
		deliver(search.Feed(t, meta, ci))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	deliver(search.Drain())
	return h.sorted(), nil
}
