package core

import (
	"context"
	"math/rand"
	"testing"

	"simsub/internal/sim"
	"simsub/internal/traj"
)

func TestTopKParallelKZero(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	db := NewDatabase(smallDB(rng, 10), false)
	q := randTraj(rng, 4)
	if got := db.TopKParallel(ExactS{M: sim.DTW{}}, q, 0, 4); len(got) != 0 {
		t.Fatalf("k=0: got %d matches, want 0", len(got))
	}
	if got := db.TopKParallel(ExactS{M: sim.DTW{}}, q, -3, 4); len(got) != 0 {
		t.Fatalf("k=-3: got %d matches, want 0", len(got))
	}
}

func TestTopKParallelEmptyDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	db := NewDatabase(nil, false)
	q := randTraj(rng, 4)
	if got := db.TopKParallel(ExactS{M: sim.DTW{}}, q, 5, 8); len(got) != 0 {
		t.Fatalf("empty db: got %d matches, want 0", len(got))
	}
}

func TestTopKParallelMoreWorkersThanCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	ts := smallDB(rng, 3)
	db := NewDatabase(ts, false)
	q := randTraj(rng, 4)
	alg := ExactS{M: sim.DTW{}}
	seq := db.TopK(alg, q, 3)
	par := db.TopKParallel(alg, q, 3, 64)
	if len(par) != len(seq) {
		t.Fatalf("got %d matches, want %d", len(par), len(seq))
	}
	for i := range seq {
		if par[i] != seq[i] {
			t.Errorf("rank %d: parallel %+v != sequential %+v", i, par[i], seq[i])
		}
	}
}

func TestTopKParallelAllEmptyTrajectories(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ts := []traj.Trajectory{traj.New(), traj.New(), traj.New(), traj.New()}
	db := NewDatabase(ts, false)
	q := randTraj(rng, 4)
	if got := db.TopKParallel(ExactS{M: sim.DTW{}}, q, 5, 2); len(got) != 0 {
		t.Fatalf("all-empty db: got %d matches, want 0", len(got))
	}
	// mixed: empty trajectories are skipped, the rest still ranked
	ts = append(ts, randTraj(rng, 8), randTraj(rng, 8))
	db = NewDatabase(ts, false)
	got := db.TopKParallel(ExactS{M: sim.DTW{}}, q, 5, 3)
	if len(got) != 2 {
		t.Fatalf("mixed db: got %d matches, want 2", len(got))
	}
}

func TestTopKCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	db := NewDatabase(smallDB(rng, 20), false)
	q := randTraj(rng, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.TopKCtx(ctx, ExactS{M: sim.DTW{}}, q, 5); err != context.Canceled {
		t.Fatalf("TopKCtx err = %v, want context.Canceled", err)
	}
	if _, err := db.TopKParallelCtx(ctx, ExactS{M: sim.DTW{}}, q, 5, 4); err != context.Canceled {
		t.Fatalf("TopKParallelCtx err = %v, want context.Canceled", err)
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	// identical trajectories produce identical distances; the ranking must
	// fall back to trajectory index so serial and parallel agree
	rng := rand.New(rand.NewSource(55))
	base := randTraj(rng, 10)
	ts := make([]traj.Trajectory, 8)
	for i := range ts {
		ts[i] = base.Clone()
		ts[i].ID = i
	}
	db := NewDatabase(ts, false)
	q := randTraj(rng, 4)
	alg := PSS{M: sim.DTW{}}
	seq := db.TopK(alg, q, 4)
	for trial := 0; trial < 5; trial++ {
		par := db.TopKParallel(alg, q, 4, 4)
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("trial %d rank %d: parallel %+v != sequential %+v", trial, i, par[i], seq[i])
			}
		}
	}
}
