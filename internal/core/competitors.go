package core

import (
	"math"
	"math/rand"

	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// This file implements the competitor methods of §6.1: Spring, UCR
// (adapted per Appendix C), Random-S and SimTra.

// Spring is the SPRING algorithm (Sakurai et al., ICDE 2007): dynamic
// programming for DTW subsequence matching with a star-padded prefix, which
// finds the subsequence of T minimizing DTW against Q in O(n·m) time. It is
// specific to the DTW distance.
//
// Band, in (0,1], restricts alignment the way Figure 8 does: query point q_j
// may only align with data point p_i when the subsequence-local index of p_i
// is within Band·m of j (the start pointer each DP cell already carries
// supplies the local index). Band = 1 is the unconstrained algorithm.
type Spring struct {
	// Band is the relative Sakoe-Chiba width R; values <= 0 or >= 1 mean
	// unconstrained.
	Band float64
}

// Name implements Algorithm.
func (Spring) Name() string { return "Spring" }

// Search implements Algorithm.
func (a Spring) Search(t, q traj.Trajectory) Result {
	n, m := t.Len(), q.Len()
	inf := math.Inf(1)
	banded := a.Band > 0 && a.Band < 1
	w := 0
	if banded {
		w = int(math.Ceil(a.Band * float64(m)))
		if w < 1 {
			w = 1
		}
	}
	// d[j], s[j]: DTW value and start index of the best warping path ending
	// at (current i, j). Star padding: a path may start fresh at any i with
	// prefix cost 0, i.e. the virtual column j=-1 is always 0.
	d := make([]float64, m)
	s := make([]int, m)
	prevD := make([]float64, m)
	prevS := make([]int, m)
	for j := range prevD {
		prevD[j] = inf
	}
	best := Result{Dist: inf}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			cost := geo.Dist(t.Pt(i), q.Pt(j))
			var v float64
			var st int
			if j == 0 {
				// fresh start beats any continuation with cost >= 0
				v, st = 0, i
				if prevD[0] < v { // pure vertical continuation (repeat q_0)
					v, st = prevD[0], prevS[0]
				}
			} else {
				v, st = prevD[j-1], prevS[j-1] // diagonal
				if prevD[j] < v {
					v, st = prevD[j], prevS[j] // vertical
				}
				if d[j-1] < v {
					v, st = d[j-1], s[j-1] // horizontal
				}
			}
			v += cost
			if banded && !math.IsInf(v, 1) {
				local := i - st
				if abs(local-j) > w {
					v = inf
				}
			}
			d[j], s[j] = v, st
		}
		best.Explored++
		if d[m-1] < best.Dist {
			best.Dist = d[m-1]
			best.Interval = traj.Interval{I: s[m-1], J: i}
		}
		d, prevD = prevD, d
		s, prevS = prevS, s
	}
	return best
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// UCR is the UCR-suite subsequence search (Rakthanmanon et al., KDD 2012)
// adapted to trajectories per Appendix C of the paper. It scores only the
// n-m+1 windows of length exactly m under band-constrained DTW, pruning
// with a cascade of lower bounds:
//
//	LB_KimFL (O(1) endpoints) → LB_Keogh over the query envelope with
//	reordered early abandoning → reversed LB_Keogh over the data envelope →
//	early-abandoning banded DTW.
//
// The just-in-time Z-normalization of the original suite does not apply to
// two-dimensional trajectories (Appendix C) and is omitted.
type UCR struct {
	// Band is the relative Sakoe-Chiba width R in [0,1].
	Band float64
	// Counters, when non-nil, receives pruning statistics.
	Counters *UCRCounters
}

// UCRCounters tallies where the pruning cascade disposed of each window.
type UCRCounters struct {
	Windows        int
	PrunedKim      int
	PrunedKeogh    int
	PrunedKeoghRev int
	AbandonedDTW   int
	FullDTW        int
}

// Name implements Algorithm.
func (UCR) Name() string { return "UCR" }

// Search implements Algorithm. When t is shorter than q, the whole
// trajectory is the only candidate.
func (a UCR) Search(t, q traj.Trajectory) Result {
	n, m := t.Len(), q.Len()
	if n <= m {
		return Result{
			Interval: traj.Interval{I: 0, J: n - 1},
			Dist:     bandDTWEarlyAbandon(t.Points, q, a.bandWidth(m), math.Inf(1)),
			Explored: 1,
		}
	}
	w := a.bandWidth(m)
	qEnv := slidingMBR(q.Points, w)
	tEnv := slidingMBR(t.Points, w)
	order := keoghOrder(q)
	best := Result{Dist: math.Inf(1)}
	for s := 0; s+m <= n; s++ {
		win := t.Points[s : s+m]
		if a.Counters != nil {
			a.Counters.Windows++
		}
		// LB_KimFL: first/last point distances are unavoidable costs
		lbKim := geo.Dist(win[0], q.Pt(0)) + geo.Dist(win[m-1], q.Pt(m-1))
		if lbKim > best.Dist {
			if a.Counters != nil {
				a.Counters.PrunedKim++
			}
			continue
		}
		// LB_Keogh against the query envelope, reordered, early abandoned
		if lbKeogh(win, qEnv, order, best.Dist) > best.Dist {
			if a.Counters != nil {
				a.Counters.PrunedKeogh++
			}
			continue
		}
		// reversed LB_Keogh: roles swapped, window envelope vs query points
		if lbKeoghRev(q, tEnv[s:s+m], order, best.Dist) > best.Dist {
			if a.Counters != nil {
				a.Counters.PrunedKeoghRev++
			}
			continue
		}
		d := bandDTWEarlyAbandon(win, q, w, best.Dist)
		best.Explored++
		if math.IsInf(d, 1) {
			if a.Counters != nil {
				a.Counters.AbandonedDTW++
			}
			continue
		}
		if a.Counters != nil {
			a.Counters.FullDTW++
		}
		if d < best.Dist {
			best.Dist = d
			best.Interval = traj.Interval{I: s, J: s + m - 1}
		}
	}
	if math.IsInf(best.Dist, 1) && n >= m {
		// every window was abandoned against an infinite bsf only when the
		// band made alignments unreachable; fall back to the first window
		best.Interval = traj.Interval{I: 0, J: m - 1}
		best.Dist = bandDTWEarlyAbandon(t.Points[0:m], q, w, math.Inf(1))
	}
	return best
}

func (a UCR) bandWidth(m int) int {
	w := int(math.Ceil(a.Band * float64(m)))
	if w < 1 {
		w = 1
	}
	if w > m {
		w = m
	}
	return w
}

// slidingMBR returns, for each index j, the MBR of pts[j-w .. j+w]
// (clamped), computed in O(n) with monotonic deques — the 2-D analogue of
// the UCR suite's streaming envelope.
func slidingMBR(pts []geo.Point, w int) []geo.Rect {
	n := len(pts)
	out := make([]geo.Rect, n)
	minX := newSlidingExtreme(n, func(a, b float64) bool { return a <= b })
	maxX := newSlidingExtreme(n, func(a, b float64) bool { return a >= b })
	minY := newSlidingExtreme(n, func(a, b float64) bool { return a <= b })
	maxY := newSlidingExtreme(n, func(a, b float64) bool { return a >= b })
	hi := -1
	for j := 0; j < n; j++ {
		lo := j - w
		if lo < 0 {
			lo = 0
		}
		for hi < j+w && hi < n-1 {
			hi++
			minX.push(hi, pts[hi].X)
			maxX.push(hi, pts[hi].X)
			minY.push(hi, pts[hi].Y)
			maxY.push(hi, pts[hi].Y)
		}
		minX.evict(lo)
		maxX.evict(lo)
		minY.evict(lo)
		maxY.evict(lo)
		out[j] = geo.Rect{MinX: minX.front(), MinY: minY.front(), MaxX: maxX.front(), MaxY: maxY.front()}
	}
	return out
}

// slidingExtreme is a monotonic deque for sliding-window min/max.
type slidingExtreme struct {
	idx    []int
	val    []float64
	head   int
	better func(a, b float64) bool
}

func newSlidingExtreme(capacity int, better func(a, b float64) bool) *slidingExtreme {
	return &slidingExtreme{
		idx:    make([]int, 0, capacity),
		val:    make([]float64, 0, capacity),
		better: better,
	}
}

func (s *slidingExtreme) push(i int, v float64) {
	for len(s.val) > s.head && s.better(v, s.val[len(s.val)-1]) {
		s.val = s.val[:len(s.val)-1]
		s.idx = s.idx[:len(s.idx)-1]
	}
	s.idx = append(s.idx, i)
	s.val = append(s.val, v)
}

func (s *slidingExtreme) evict(lo int) {
	for s.head < len(s.idx) && s.idx[s.head] < lo {
		s.head++
	}
}

func (s *slidingExtreme) front() float64 { return s.val[s.head] }

// keoghOrder returns query indices sorted by decreasing distance from the
// dataset centroid proxy (the query's own centroid): the adaptation of the
// UCR suite's reordering heuristic (Appendix C sorts by distance to the
// y-axis; we use the centroid, which is translation-invariant). Points far
// from the centroid tend to contribute large envelope distances first,
// making early abandonment trigger sooner.
func keoghOrder(q traj.Trajectory) []int {
	m := q.Len()
	var cx, cy float64
	for _, p := range q.Points {
		cx += p.X
		cy += p.Y
	}
	cx /= float64(m)
	cy /= float64(m)
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	key := make([]float64, m)
	for i, p := range q.Points {
		key[i] = geo.SqDist(p, geo.Point{X: cx, Y: cy})
	}
	// insertion sort by decreasing key (m is small)
	for i := 1; i < m; i++ {
		j := i
		for j > 0 && key[order[j-1]] < key[order[j]] {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	return order
}

// lbKeogh accumulates Σ d(win[j], env[j]) in the given order, abandoning as
// soon as the partial sum exceeds bsf.
func lbKeogh(win []geo.Point, env []geo.Rect, order []int, bsf float64) float64 {
	var lb float64
	for _, j := range order {
		lb += env[j].DistToPoint(win[j])
		if lb > bsf {
			return lb
		}
	}
	return lb
}

// lbKeoghRev is lbKeogh with the roles reversed: query points against the
// data envelope.
func lbKeoghRev(q traj.Trajectory, env []geo.Rect, order []int, bsf float64) float64 {
	var lb float64
	for _, j := range order {
		lb += env[j].DistToPoint(q.Pt(j))
		if lb > bsf {
			return lb
		}
	}
	return lb
}

// bandDTWEarlyAbandon computes Sakoe-Chiba banded DTW between win and q
// (equal-scale band |i-j| <= w), abandoning with +Inf once every cell of a
// row exceeds bsf (no completion can then beat bsf, since costs only grow).
func bandDTWEarlyAbandon(win []geo.Point, q traj.Trajectory, w int, bsf float64) float64 {
	n, m := len(win), q.Len()
	inf := math.Inf(1)
	row := make([]float64, m)
	for j := range row {
		row[j] = inf
	}
	for i := 0; i < n; i++ {
		lo, hi := i-w, i+w
		if n != m {
			// rescale the band anchor for unequal lengths
			c := 0
			if n > 1 {
				c = i * (m - 1) / (n - 1)
			}
			lo, hi = c-w, c+w
		}
		if lo < 0 {
			lo = 0
		}
		if hi > m-1 {
			hi = m - 1
		}
		prevDiag := inf
		rowMin := inf
		for j := 0; j <= hi; j++ {
			cur := row[j]
			if j < lo {
				prevDiag = cur
				row[j] = inf
				continue
			}
			var best float64
			switch {
			case i == 0 && j == 0:
				best = 0
			case i == 0:
				best = row[j-1] // horizontal within first data point
			case j == 0:
				best = cur // vertical
			default:
				best = prevDiag
				if cur < best {
					best = cur
				}
				if row[j-1] < best {
					best = row[j-1]
				}
			}
			v := inf
			if !math.IsInf(best, 1) {
				v = best + geo.Dist(win[i], q.Pt(j))
			}
			prevDiag = cur
			row[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		for j := hi + 1; j < m; j++ {
			row[j] = inf
		}
		if rowMin > bsf {
			return inf // early abandon: monotone costs cannot recover
		}
	}
	return row[m-1]
}

// RandomS samples subtrajectories uniformly at random and returns the best,
// the Random-S baseline of §6.1/Figure 9. Distances are computed from
// scratch: the sampled subtrajectories share no structure that incremental
// computation could exploit.
type RandomS struct {
	M sim.Measure
	// Samples is the number of subtrajectories drawn.
	Samples int
	// Seed seeds the sampler; 0 uses a fixed default.
	Seed int64
}

// Name implements Algorithm.
func (RandomS) Name() string { return "Random-S" }

// Search implements Algorithm.
func (a RandomS) Search(t, q traj.Trajectory) Result {
	n := t.Len()
	total := n * (n + 1) / 2
	seed := a.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	best := Result{Dist: math.Inf(1)}
	for s := 0; s < a.Samples; s++ {
		// uniform over all n(n+1)/2 subtrajectories: draw a flat index and
		// unrank it to (i, j)
		k := rng.Intn(total)
		i, j := unrankSub(k, n)
		d := a.M.Dist(t.Sub(i, j), q)
		best.Explored++
		if d < best.Dist {
			best.Dist = d
			best.Interval = traj.Interval{I: i, J: j}
		}
	}
	return best
}

// unrankSub maps a flat index k in [0, n(n+1)/2) to the k-th subtrajectory
// (i, j), enumerating by start index: start 0 owns n intervals, start 1 owns
// n-1, and so on.
func unrankSub(k, n int) (i, j int) {
	i = 0
	remaining := n
	for k >= remaining {
		k -= remaining
		remaining--
		i++
	}
	return i, i + k
}

// SimTra treats the whole data trajectory as the answer: the similar
// trajectory search baseline of Table 6, which the paper contrasts with
// SimSub to show whole-trajectory search is a poor subtrajectory proxy.
type SimTra struct {
	M sim.Measure
}

// Name implements Algorithm.
func (SimTra) Name() string { return "SimTra" }

// Search implements Algorithm.
func (a SimTra) Search(t, q traj.Trajectory) Result {
	return Result{
		Interval: traj.Interval{I: 0, J: t.Len() - 1},
		Dist:     a.M.Dist(t, q),
		Explored: 1,
	}
}
