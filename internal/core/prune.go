package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// This file is the best-so-far threshold pipeline: the running k-th-best
// distance of a top-k scan flows down into each per-trajectory search,
// where it prunes at three levels —
//
//	candidate  the measure's lower-bound cascade (sim.SubtrajLowerBounder)
//	           drops a trajectory before any DP runs;
//	kernel     sim.ThresholdIncremental abandons a DP scan once no
//	           extension can beat the threshold;
//	result     a completed search whose best distance exceeds the
//	           threshold is suppressed instead of offered.
//
// Correctness invariant (see DESIGN.md): pruning only ever uses STRICT
// comparisons against provable lower bounds of what the unpruned search
// would report. The running k-th-best distance never increases, so a
// candidate pruned against a stale (larger) threshold is pruned a
// fortiori, and equal-distance candidates — which deterministic
// tie-breaking may rank into the top-k — are never pruned. Rankings are
// therefore byte-identical to the unpruned scan. Threshold-aware exact
// searches report Explored as the logical candidate count of the unpruned
// enumeration (a deterministic value); the physical work saved is exposed
// through PruneStats instead.

// TrajMeta is per-trajectory metadata precomputed at insert time and handed
// to threshold-aware searches, so the scan hot path neither re-derives MBRs
// nor re-allocates reversals.
type TrajMeta struct {
	// N is the trajectory's point count.
	N int
	// MBR is the trajectory's minimum bounding rectangle.
	MBR geo.Rect
	// Rev is the reversed trajectory (suffix-state scans run over it).
	Rev traj.Trajectory
	// Emb is the trajectory's embedding under the engine's registered
	// encoder, or nil/empty when no encoder is registered. Its length must
	// equal the encoder's Dim; consumers treat a mismatched length as
	// "not embedded" (a stale vector from a swapped-out encoder must never
	// be compared).
	Emb []float64
}

// Thresholder yields a scan's current best-so-far bound: the running
// k-th-best distance, +Inf until k matches have been retained. It must be
// safe for concurrent use.
type Thresholder interface {
	Threshold() float64
}

// NoThreshold is the Thresholder that never prunes.
var NoThreshold Thresholder = infThresholder{}

type infThresholder struct{}

func (infThresholder) Threshold() float64 { return math.Inf(1) }

// PruneStats counts the pruning outcomes of one scan. Candidates is every
// non-empty trajectory considered after index/filter pruning; each is
// either LB-skipped (lower-bound cascade, no DP), abandoned (DP started but
// nothing beat the threshold), or scored (a match reached the heap offer).
type PruneStats struct {
	Candidates int64
	LBSkipped  int64
	Abandoned  int64
	Scored     int64
}

// Add accumulates o into s.
func (s *PruneStats) Add(o PruneStats) {
	s.Candidates += o.Candidates
	s.LBSkipped += o.LBSkipped
	s.Abandoned += o.Abandoned
	s.Scored += o.Scored
}

// Pruned reports how a threshold-aware search disposed of a candidate.
type Pruned uint8

// Candidate outcomes of ThresholdSearch.Search.
const (
	// NotPruned: the search completed and its Result is the exact answer
	// the unpruned Search would have returned.
	NotPruned Pruned = iota
	// PrunedLB: the lower-bound cascade proved every subtrajectory's
	// distance strictly exceeds tau before any DP ran.
	PrunedLB
	// PrunedAbandon: the search ran but everything it could report has
	// distance strictly greater than tau; the Result is meaningless.
	PrunedAbandon
)

// ThresholdSearcher is an Algorithm that can exploit a best-so-far
// threshold. NewThresholdSearch returns per-query search state — the
// measure's lower-bound cascade, the reversed query, pooled scratch —
// reused across every candidate of a scan. The returned ThresholdSearch is
// single-goroutine; concurrent scans create one per worker.
type ThresholdSearcher interface {
	Algorithm
	NewThresholdSearch(q traj.Trajectory) ThresholdSearch
}

// ThresholdSearch is the per-query form of a threshold-aware search.
type ThresholdSearch interface {
	// Search is Algorithm.Search with pruning against tau. When the
	// returned outcome is NotPruned, Result is byte-identical (interval
	// and distance; Explored is the deterministic logical count) to the
	// unpruned Search. Otherwise every subtrajectory the unpruned search
	// could have reported has distance strictly greater than tau and the
	// Result must be discarded. meta must describe t (Database.Meta).
	Search(t traj.Trajectory, meta TrajMeta, tau float64) (Result, Pruned)
	// Release returns pooled scratch; the search is unusable afterwards.
	Release()
}

// lbFor builds the measure's per-query lower-bound cascade when it has one.
func lbFor(m sim.Measure, q traj.Trajectory) sim.SubtrajLB {
	if b, ok := m.(sim.SubtrajLowerBounder); ok {
		return b.NewSubtrajLB(q)
	}
	return nil
}

// lbPrunes reports whether the cascade proves every subtrajectory of t is
// strictly farther than tau.
func lbPrunes(lb sim.SubtrajLB, t traj.Trajectory, meta TrajMeta, tau float64) bool {
	if lb == nil || math.IsInf(tau, 1) {
		return false
	}
	mbr := meta.MBR
	if meta.N != t.Len() {
		// defensive: zero-value meta falls back to a fresh MBR
		mbr = t.MBR()
	}
	return lb.LowerBound(t, mbr, tau) > tau
}

// exactThresholdSearch implements ThresholdSearch for ExactS: the full
// enumeration with the lower-bound cascade in front and early-abandoning
// inner scans. Per start index i, abandoning skips only evaluations the
// kernel proved strictly worse than min(local best, tau), so the first
// minimizer — interval tie-breaking included — is exactly the unpruned
// one whenever the trajectory's true best is within tau.
type exactThresholdSearch struct {
	m  sim.Measure
	q  traj.Trajectory
	lb sim.SubtrajLB
}

// NewThresholdSearch implements ThresholdSearcher.
func (a ExactS) NewThresholdSearch(q traj.Trajectory) ThresholdSearch {
	return &exactThresholdSearch{m: a.M, q: q, lb: lbFor(a.M, q)}
}

func (s *exactThresholdSearch) Search(t traj.Trajectory, meta TrajMeta, tau float64) (Result, Pruned) {
	if lbPrunes(s.lb, t, meta, tau) {
		return Result{}, PrunedLB
	}
	n := t.Len()
	best := Result{Dist: math.Inf(1)}
	inc := s.m.NewIncremental(t, s.q)
	defer sim.Release(inc)
	tinc, _ := inc.(sim.ThresholdIncremental)
	for i := 0; i < n; i++ {
		d := inc.Init(i)
		if d < best.Dist {
			best.Dist = d
			best.Interval = traj.Interval{I: i, J: i}
		}
		bsf := math.Min(best.Dist, tau)
		for j := i + 1; j < n; j++ {
			if tinc != nil {
				var abandoned bool
				d, abandoned = tinc.ExtendAbandoning(bsf)
				if abandoned {
					break
				}
			} else {
				d = inc.Extend()
			}
			if d < best.Dist {
				best.Dist = d
				best.Interval = traj.Interval{I: i, J: j}
				bsf = math.Min(best.Dist, tau)
			}
		}
	}
	// the logical candidate count, not the evaluations performed — see the
	// determinism note in the file comment
	best.Explored = n * (n + 1) / 2
	if best.Dist > tau {
		return best, PrunedAbandon
	}
	return best, NotPruned
}

func (s *exactThresholdSearch) Release() {}

// sizeThresholdSearch is exactThresholdSearch restricted to SizeS's
// [m-ξ, m+ξ] length window.
type sizeThresholdSearch struct {
	m  sim.Measure
	xi int
	q  traj.Trajectory
	lb sim.SubtrajLB
}

// NewThresholdSearch implements ThresholdSearcher.
func (a SizeS) NewThresholdSearch(q traj.Trajectory) ThresholdSearch {
	return &sizeThresholdSearch{m: a.M, xi: a.Xi, q: q, lb: lbFor(a.M, q)}
}

func (s *sizeThresholdSearch) Search(t traj.Trajectory, meta TrajMeta, tau float64) (Result, Pruned) {
	if lbPrunes(s.lb, t, meta, tau) {
		return Result{}, PrunedLB
	}
	n, m := t.Len(), s.q.Len()
	lo := m - s.xi
	if lo < 1 {
		lo = 1
	}
	hi := m + s.xi
	if lo > n {
		// whole-trajectory fallback, exactly as the unpruned search
		r := Result{
			Interval: traj.Interval{I: 0, J: n - 1},
			Dist:     s.m.Dist(t, s.q),
			Explored: 1,
		}
		if r.Dist > tau {
			return r, PrunedAbandon
		}
		return r, NotPruned
	}
	best := Result{Dist: math.Inf(1)}
	inc := s.m.NewIncremental(t, s.q)
	defer sim.Release(inc)
	tinc, _ := inc.(sim.ThresholdIncremental)
	explored := 0
	for i := 0; i < n; i++ {
		if i+lo-1 >= n {
			break
		}
		d := inc.Init(i)
		explored++
		if lo == 1 && d < best.Dist {
			best.Dist = d
			best.Interval = traj.Interval{I: i, J: i}
		}
		bsf := math.Min(best.Dist, tau)
		// the unpruned search evaluates j up to min(n-1, i+hi-1); count
		// them all so Explored stays the deterministic logical size
		top := i + hi - 1
		if top > n-1 {
			top = n - 1
		}
		explored += top - i
		for j := i + 1; j <= top; j++ {
			if tinc != nil {
				var abandoned bool
				d, abandoned = tinc.ExtendAbandoning(bsf)
				if abandoned {
					break
				}
			} else {
				d = inc.Extend()
			}
			if j-i+1 >= lo && d < best.Dist {
				best.Dist = d
				best.Interval = traj.Interval{I: i, J: j}
				bsf = math.Min(best.Dist, tau)
			}
		}
	}
	best.Explored = explored
	if best.Dist > tau {
		return best, PrunedAbandon
	}
	return best, NotPruned
}

func (s *sizeThresholdSearch) Release() {}

// splitThresholdSearch implements ThresholdSearch for the splitting family
// (PSS, POS, POS-D). Splitting decisions depend on every prefix/suffix
// value the scan sees, so the inner DP cannot abandon without changing the
// answer; the threshold instead gates the whole candidate through the
// lower-bound cascade — valid because every split the algorithms report is
// a genuine subtrajectory, whose distance the cascade bounds from below —
// and suppresses completed results beyond tau. Suffix state reuses the
// store's precomputed reversal, the reversed query computed once per scan,
// and a scratch buffer reused across candidates.
type splitThresholdSearch struct {
	m      sim.Measure
	suffix bool // PSS: scan suffixes as well as prefixes
	delay  int  // POS-D split delay
	q      traj.Trajectory
	qRev   traj.Trajectory
	lb     sim.SubtrajLB
	suf    []float64
}

// NewThresholdSearch implements ThresholdSearcher.
func (a PSS) NewThresholdSearch(q traj.Trajectory) ThresholdSearch {
	return &splitThresholdSearch{m: a.M, suffix: true, q: q, qRev: q.Reverse(), lb: lbFor(a.M, q)}
}

// NewThresholdSearch implements ThresholdSearcher.
func (a POS) NewThresholdSearch(q traj.Trajectory) ThresholdSearch {
	return &splitThresholdSearch{m: a.M, q: q, lb: lbFor(a.M, q)}
}

// NewThresholdSearch implements ThresholdSearcher.
func (a POSD) NewThresholdSearch(q traj.Trajectory) ThresholdSearch {
	return &splitThresholdSearch{m: a.M, delay: a.D, q: q, lb: lbFor(a.M, q)}
}

func (s *splitThresholdSearch) Search(t traj.Trajectory, meta TrajMeta, tau float64) (Result, Pruned) {
	if lbPrunes(s.lb, t, meta, tau) {
		return Result{}, PrunedLB
	}
	var r Result
	if s.suffix {
		tr := meta.Rev
		if tr.Len() != t.Len() {
			tr = t.Reverse() // defensive: zero-value meta
		}
		s.suf = sim.SuffixDistsInto(s.suf, s.m, tr, s.qRev)
		r = pssScan(s.m, t, s.q, s.suf)
	} else {
		r = posSearch(s.m, t, s.q, s.delay)
	}
	if r.Dist > tau {
		return r, PrunedAbandon
	}
	return r, NotPruned
}

func (s *splitThresholdSearch) Release() {}

// heapThresholder folds a scan's own top-k heap root together with an
// optional external (engine-global) threshold.
type heapThresholder struct {
	h      *topKHeap
	extern Thresholder
}

func (ht *heapThresholder) Threshold() float64 {
	tau := math.Inf(1)
	if ht.extern != nil {
		tau = ht.extern.Threshold()
	}
	if ht.h.k > 0 && len(ht.h.ms) == ht.h.k {
		if r := ht.h.ms[0].Result.Dist; r < tau {
			tau = r
		}
	}
	return tau
}

// SharedKth is the engine-global best-so-far: a bounded max-heap of the k
// smallest distances offered so far across every shard worker, publishing
// its k-th-best through an atomic so scan loops read it without locking.
// An optional external seed (Seed) caps the published threshold from the
// start, so a caller that already knows an upper bound of the final k-th
// best — a distributed coordinator propagating its running global bound —
// lets the scan prune before its own heap fills. The zero value is
// unusable; use NewSharedKth.
type SharedKth struct {
	mu    sync.Mutex
	k     int
	seed  float64
	dists []float64
	bits  atomic.Uint64
}

// NewSharedKth builds a SharedKth for rankings of size k.
func NewSharedKth(k int) *SharedKth {
	s := &SharedKth{k: k, seed: math.Inf(1)}
	s.bits.Store(math.Float64bits(math.Inf(1)))
	return s
}

// Seed tightens the published threshold with an externally known upper
// bound of the final k-th-best distance. Seeding preserves the pruning
// invariant only if d really is such an upper bound: every pruning
// comparison stays strict, so matches at exactly the bound survive, but
// matches strictly beyond it may be dropped. Seeding never raises the
// threshold; NaN seeds are ignored.
func (s *SharedKth) Seed(d float64) {
	if s.k <= 0 || math.IsNaN(d) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if d < s.seed {
		s.seed = d
		s.publish()
	}
}

// publish stores min(seed, own k-th best) into the atomic. Callers hold mu.
func (s *SharedKth) publish() {
	v := s.seed
	if len(s.dists) == s.k && s.dists[0] < v {
		v = s.dists[0]
	}
	s.bits.Store(math.Float64bits(v))
}

// Offer feeds one match distance into the shared top-k.
func (s *SharedKth) Offer(d float64) {
	if s.k <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case len(s.dists) < s.k:
		s.dists = append(s.dists, d)
		s.up(len(s.dists) - 1)
	case d < s.dists[0]:
		s.dists[0] = d
		s.down(0)
	default:
		return
	}
	if len(s.dists) == s.k {
		s.publish()
	}
}

// Threshold implements Thresholder: the current k-th best distance, +Inf
// until k offers have arrived.
func (s *SharedKth) Threshold() float64 {
	return math.Float64frombits(s.bits.Load())
}

func (s *SharedKth) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.dists[p] >= s.dists[i] {
			break
		}
		s.dists[p], s.dists[i] = s.dists[i], s.dists[p]
		i = p
	}
}

func (s *SharedKth) down(i int) {
	n := len(s.dists)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && s.dists[l] > s.dists[big] {
			big = l
		}
		if r < n && s.dists[r] > s.dists[big] {
			big = r
		}
		if big == i {
			return
		}
		s.dists[i], s.dists[big] = s.dists[big], s.dists[i]
		i = big
	}
}

// ScanPrunedCtx is ScanFilteredCtx with the threshold pipeline: candidates
// whose lower bound beats the threshold are skipped, per-trajectory
// searches abandon against it, and fn only sees matches that could still
// enter a top-k whose k-th-best distance is th.Threshold(). Algorithms
// that do not implement ThresholdSearcher are scanned unpruned. st, when
// non-nil, receives the scan's pruning counters; it is not synchronized.
func (db *Database) ScanPrunedCtx(ctx context.Context, alg Algorithm, q traj.Trajectory, filter *geo.Rect, th Thresholder, st *PruneStats, fn func(Match) error) error {
	return db.ScanPrunedSourceCtx(ctx, alg, q, filter, th, st, nil, fn)
}

// ScanPrunedSourceCtx is ScanPrunedCtx with the candidate enumeration
// swapped for src (nil = the Database's spatial enumeration, making it
// exactly ScanPrunedCtx). The threshold pipeline is identical whatever the
// source: each candidate the source yields flows through the lower-bound
// cascade, the abandoning search and the result post-filter unchanged.
func (db *Database) ScanPrunedSourceCtx(ctx context.Context, alg Algorithm, q traj.Trajectory, filter *geo.Rect, th Thresholder, st *PruneStats, src CandidateSource, fn func(Match) error) error {
	if st == nil {
		st = &PruneStats{}
	}
	if th == nil {
		th = NoThreshold
	}
	ts, ok := alg.(ThresholdSearcher)
	if !ok {
		for _, ci := range db.candidatesFrom(src, q, filter) {
			if err := ctx.Err(); err != nil {
				return err
			}
			t := db.be.Traj(ci)
			if t.Len() == 0 {
				continue
			}
			st.Candidates++
			st.Scored++
			if err := fn(Match{TrajIndex: ci, Result: alg.Search(t, q)}); err != nil {
				return err
			}
		}
		return nil
	}
	search := ts.NewThresholdSearch(q)
	defer search.Release()
	for _, ci := range db.candidatesFrom(src, q, filter) {
		if err := ctx.Err(); err != nil {
			return err
		}
		t := db.be.Traj(ci)
		if t.Len() == 0 {
			continue
		}
		st.Candidates++
		r, pruned := search.Search(t, db.Meta(ci), th.Threshold())
		switch pruned {
		case PrunedLB:
			st.LBSkipped++
			continue
		case PrunedAbandon:
			st.Abandoned++
			continue
		}
		st.Scored++
		if err := fn(Match{TrajIndex: ci, Result: r}); err != nil {
			return err
		}
	}
	return nil
}

// TopKPrunedCtx is TopKFilteredCtx with the threshold pipeline: the scan
// prunes against its own running k-th best, tightened by the global
// k-th-best published through shared when non-nil (the engine passes one
// SharedKth across all shard workers). Every scored match is offered to
// shared so concurrent scans tighten each other. The ranking is
// byte-identical to the unpruned scan's.
func (db *Database) TopKPrunedCtx(ctx context.Context, alg Algorithm, q traj.Trajectory, k int, filter *geo.Rect, shared *SharedKth, st *PruneStats) ([]Match, error) {
	return db.TopKPrunedSourceCtx(ctx, alg, q, k, filter, shared, st, nil)
}

// TopKPrunedSourceCtx is TopKPrunedCtx over src's candidates (nil = the
// spatial enumeration). With an approximate source the result is the exact
// top-k OF THE CANDIDATES THE SOURCE RETURNED — every retained match
// carries the same exact distance the spatial scan would have computed for
// it, but trajectories the source omitted are simply absent.
func (db *Database) TopKPrunedSourceCtx(ctx context.Context, alg Algorithm, q traj.Trajectory, k int, filter *geo.Rect, shared *SharedKth, st *PruneStats, src CandidateSource) ([]Match, error) {
	h := topKHeap{k: k}
	var extern Thresholder
	if shared != nil {
		extern = shared
	}
	th := heapThresholder{h: &h, extern: extern}
	if err := db.ScanPrunedSourceCtx(ctx, alg, q, filter, &th, st, src, func(m Match) error {
		h.offer(m)
		if shared != nil {
			shared.Offer(m.Result.Dist)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return h.sorted(), nil
}
