package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"simsub/internal/sim"
	"simsub/internal/traj"
)

// bruteTopK enumerates all subtrajectory distances and returns the k
// smallest (with overlaps allowed).
func bruteTopK(m sim.Measure, t, q traj.Trajectory, k int) []float64 {
	var all []float64
	n := t.Len()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			all = append(all, m.Dist(t.Sub(i, j), q))
		}
	}
	sort.Float64s(all)
	if k < len(all) {
		all = all[:k]
	}
	return all
}

func TestTopKExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 10; trial++ {
		data := randTraj(rng, rng.Intn(10)+3)
		q := randTraj(rng, rng.Intn(4)+1)
		for _, k := range []int{1, 3, 7} {
			got := TopKExact(sim.DTW{}, data, q, k, false)
			want := bruteTopK(sim.DTW{}, data, q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i]) > 1e-9 {
					t.Fatalf("k=%d rank %d: %v, want %v", k, i, got[i].Dist, want[i])
				}
			}
		}
	}
}

func TestTopKExactSortedAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := randTraj(rng, 12)
	q := randTraj(rng, 4)
	got := TopKExact(sim.DTW{}, data, q, 5, false)
	for i := range got {
		if !got[i].Interval.Valid(data.Len()) {
			t.Fatalf("invalid interval %v", got[i].Interval)
		}
		if i > 0 && got[i-1].Dist > got[i].Dist {
			t.Fatal("results not sorted")
		}
		re := sim.DTW{}.Dist(data.Sub(got[i].Interval.I, got[i].Interval.J), q)
		if math.Abs(re-got[i].Dist) > 1e-9 {
			t.Fatalf("interval %v scores %v, reported %v", got[i].Interval, re, got[i].Dist)
		}
	}
}

func TestTopKExactDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := randTraj(rng, 12)
	q := randTraj(rng, 4)
	got := TopKExact(sim.DTW{}, data, q, 4, true)
	for i := range got {
		for j := i + 1; j < len(got); j++ {
			if overlaps(got[i].Interval, got[j].Interval) {
				t.Fatalf("distinct results overlap: %v and %v", got[i].Interval, got[j].Interval)
			}
		}
	}
	// rank 1 must still be the exact optimum
	exact := (ExactS{M: sim.DTW{}}).Search(data, q)
	if math.Abs(got[0].Dist-exact.Dist) > 1e-9 {
		t.Errorf("distinct top-1 %v, exact %v", got[0].Dist, exact.Dist)
	}
}

func TestTopKSplitConsistentWithPSS(t *testing.T) {
	// the split-based top-k's rank-1 answer is at least as good as PSS's
	// (it retains every candidate PSS scores, plus the non-splitting ones)
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		data := randTraj(rng, rng.Intn(12)+2)
		q := randTraj(rng, rng.Intn(4)+1)
		topk := TopKSplit(sim.DTW{}, data, q, 3, false)
		if len(topk) == 0 {
			t.Fatal("no results")
		}
		pss := (PSS{M: sim.DTW{}}).Search(data, q)
		if topk[0].Dist > pss.Dist+1e-9 {
			t.Fatalf("trial %d: TopKSplit best %v worse than PSS %v", trial, topk[0].Dist, pss.Dist)
		}
		for i := 1; i < len(topk); i++ {
			if topk[i-1].Dist > topk[i].Dist {
				t.Fatal("not sorted")
			}
		}
	}
}

func TestTopKSplitEmpty(t *testing.T) {
	if got := TopKSplit(sim.DTW{}, traj.New(), traj.FromXY(0, 0), 3, false); got != nil {
		t.Errorf("empty trajectory should yield nil, got %v", got)
	}
}

func TestTopKFewerCandidatesThanK(t *testing.T) {
	data := traj.FromXY(0, 0, 1, 0)
	q := traj.FromXY(0, 0)
	got := TopKExact(sim.DTW{}, data, q, 10, false)
	if len(got) != 3 { // 2 singles + 1 pair
		t.Errorf("got %d results, want all 3", len(got))
	}
}

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b traj.Interval
		want bool
	}{
		{traj.Interval{I: 0, J: 2}, traj.Interval{I: 2, J: 4}, true},
		{traj.Interval{I: 0, J: 2}, traj.Interval{I: 3, J: 4}, false},
		{traj.Interval{I: 1, J: 5}, traj.Interval{I: 2, J: 3}, true},
	}
	for _, c := range cases {
		if got := overlaps(c.a, c.b); got != c.want {
			t.Errorf("overlaps(%v,%v) = %v", c.a, c.b, got)
		}
		if got := overlaps(c.b, c.a); got != c.want {
			t.Errorf("overlaps not symmetric for %v,%v", c.a, c.b)
		}
	}
}
