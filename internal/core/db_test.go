package core

import (
	"math/rand"
	"sort"
	"testing"

	"simsub/internal/sim"
	"simsub/internal/traj"
)

func smallDB(rng *rand.Rand, n int) []traj.Trajectory {
	ts := make([]traj.Trajectory, n)
	for i := range ts {
		ts[i] = randTraj(rng, rng.Intn(15)+5)
		ts[i].ID = i
	}
	return ts
}

func TestTopKOrderingAndSize(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	ts := smallDB(rng, 20)
	db := NewDatabase(ts, false)
	q := randTraj(rng, 5)
	top := db.TopK(ExactS{M: sim.DTW{}}, q, 5)
	if len(top) != 5 {
		t.Fatalf("got %d matches", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Result.Dist > top[i].Result.Dist {
			t.Fatal("matches not sorted by distance")
		}
	}
	// k larger than the database returns everything
	all := db.TopK(ExactS{M: sim.DTW{}}, q, 100)
	if len(all) != 20 {
		t.Errorf("got %d matches, want 20", len(all))
	}
}

func TestTopKMatchesBruteRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ts := smallDB(rng, 15)
	db := NewDatabase(ts, false)
	q := randTraj(rng, 4)
	alg := ExactS{M: sim.DTW{}}
	top := db.TopK(alg, q, 3)
	// independent ranking
	dists := make([]float64, len(ts))
	for i, tr := range ts {
		dists[i] = alg.Search(tr, q).Dist
	}
	sort.Float64s(dists)
	for i := 0; i < 3; i++ {
		if top[i].Result.Dist != dists[i] {
			t.Errorf("rank %d: %v, want %v", i, top[i].Result.Dist, dists[i])
		}
	}
}

func TestIndexPruningConsistency(t *testing.T) {
	// spatially clustered database: indexed and unindexed search agree on
	// the best match whenever the best trajectory's MBR overlaps the query's
	rng := rand.New(rand.NewSource(32))
	ts := smallDB(rng, 30)
	plain := NewDatabase(ts, false)
	indexed := NewDatabase(ts, true)
	if !indexed.HasIndex() || plain.HasIndex() {
		t.Fatal("index flags wrong")
	}
	q := ts[7].Sub(1, 3) // query overlapping trajectory 7
	alg := ExactS{M: sim.DTW{}}
	bestPlain, ok1 := plain.Best(alg, q)
	bestIdx, ok2 := indexed.Best(alg, q)
	if !ok1 || !ok2 {
		t.Fatal("no matches found")
	}
	if bestIdx.Result.Dist > bestPlain.Result.Dist+1e-9 {
		// pruning may only lose candidates whose MBR misses the query;
		// the best here overlaps by construction
		t.Errorf("indexed best %v worse than plain %v", bestIdx.Result.Dist, bestPlain.Result.Dist)
	}
}

func TestCandidatesWithoutIndexIsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ts := smallDB(rng, 10)
	db := NewDatabase(ts, false)
	c := db.Candidates(randTraj(rng, 3))
	if len(c) != 10 {
		t.Errorf("got %d candidates", len(c))
	}
}

func TestCandidatesWithIndexPrunes(t *testing.T) {
	// two far-apart clusters: a query in one cluster must prune the other
	rng := rand.New(rand.NewSource(34))
	var ts []traj.Trajectory
	for i := 0; i < 10; i++ {
		ts = append(ts, randTraj(rng, 8)) // cluster around origin-ish
	}
	for i := 0; i < 10; i++ {
		ts = append(ts, randTraj(rng, 8).Translate(1e6, 1e6))
	}
	db := NewDatabase(ts, true)
	q := randTraj(rng, 4)
	c := db.Candidates(q)
	if len(c) == 0 || len(c) > 15 {
		t.Errorf("pruning ineffective: %d candidates of 20", len(c))
	}
	for _, ci := range c {
		if ci >= 10 {
			t.Errorf("far-cluster trajectory %d not pruned", ci)
		}
	}
}

func TestTopKParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	ts := smallDB(rng, 40)
	db := NewDatabase(ts, false)
	q := randTraj(rng, 5)
	alg := PSS{M: sim.DTW{}}
	seq := db.TopK(alg, q, 10)
	for _, workers := range []int{0, 1, 2, 8} {
		par := db.TopKParallel(alg, q, 10, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d matches, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Result.Dist != seq[i].Result.Dist {
				t.Fatalf("workers=%d rank %d: %v vs %v", workers, i, par[i].Result.Dist, seq[i].Result.Dist)
			}
		}
	}
}

func TestGridIndexedDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ts := smallDB(rng, 30)
	db := NewDatabaseIndexed(ts, GridFileIndex)
	if !db.HasIndex() {
		t.Fatal("grid index not built")
	}
	q := ts[5].Sub(1, 4)
	top := db.TopK(ExactS{M: sim.DTW{}}, q, 3)
	if len(top) == 0 {
		t.Fatal("no matches through grid index")
	}
	// the source trajectory must survive grid pruning and rank first with
	// distance 0
	if top[0].Result.Dist > 1e-9 {
		t.Errorf("best grid-pruned match dist %v, want 0", top[0].Result.Dist)
	}
}

func TestBestEmptyDatabase(t *testing.T) {
	db := NewDatabase(nil, false)
	if _, ok := db.Best(ExactS{M: sim.DTW{}}, traj.FromXY(0, 0)); ok {
		t.Error("empty database should return no match")
	}
	if db.Len() != 0 {
		t.Error("Len should be 0")
	}
}

func TestAlgorithmFor(t *testing.T) {
	names := []string{"exacts", "sizes", "pss", "pos", "pos-d", "spring", "ucr", "random-s", "simtra"}
	for _, n := range names {
		a, ok := AlgorithmFor(n, sim.DTW{})
		if !ok || a == nil {
			t.Errorf("AlgorithmFor(%q) failed", n)
		}
	}
	if _, ok := AlgorithmFor("nope", sim.DTW{}); ok {
		t.Error("unknown algorithm should fail")
	}
}

func TestDatabaseTrajAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	ts := smallDB(rng, 5)
	db := NewDatabase(ts, true)
	for i := range ts {
		if !db.Traj(i).Equal(ts[i]) {
			t.Errorf("Traj(%d) mismatched", i)
		}
	}
}
