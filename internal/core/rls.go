package core

import (
	"math"

	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// RLS is the reinforcement-learning based search (§5.3): a splitting-based
// search that drives the split decisions with a DQN-learned policy instead
// of PSS's hand-crafted heuristic. When the policy was trained with skip
// actions (K > 0) the same type realizes RLS-Skip (§5.4); the paper's
// RLS-Skip+ is a K > 0 policy trained with UseSuffix = false.
//
// Time complexity matches PSS: O(n1·Φini + n·Φinc), with the O(1) policy
// network evaluation replacing PSS's comparisons; skipping reduces the
// constant further by not maintaining state at skipped points.
type RLS struct {
	M      sim.Measure
	Policy *rl.Policy
	// Table, when non-nil, serves actions from a compiled table policy
	// (rl.Compile) instead of the network: an O(1) array lookup per
	// decision. The table carries its own MDP shape, which takes
	// precedence over Policy's, so a table-only RLS is valid; when both
	// are set the caller (the engine's policy registry) is responsible
	// for the table having been compiled from this policy.
	Table *rl.TablePolicy
}

// params resolves the MDP shape the search walks: the table's when one is
// installed, else the policy's. ok is false when neither source is usable.
func (a RLS) params() (k int, useSuffix, simplify, ok bool) {
	switch {
	case a.Table != nil:
		return a.Table.K, a.Table.UseSuffix, a.Table.SimplifyState, true
	case a.Policy != nil && a.Policy.Net != nil:
		return a.Policy.K, a.Policy.UseSuffix, a.Policy.SimplifyState, true
	}
	return 0, false, false, false
}

// src returns the action source matching params.
func (a RLS) src() rl.ActorSource {
	if a.Table != nil {
		return a.Table
	}
	return a.Policy
}

// Name implements Algorithm: "RLS" for split-only policies, "RLS-Skip" for
// policies with skip actions, with a "+" suffix when Θsuf is dropped.
func (a RLS) Name() string {
	name := "RLS"
	if k, useSuffix, _, ok := a.params(); ok && k > 0 {
		name = "RLS-Skip"
		if !useSuffix {
			name += "+"
		}
	}
	return name
}

// Search implements Algorithm: it walks the splitting MDP taking greedy
// actions and returns the best subtrajectory the walk exposes. A missing
// policy or an empty trajectory on either side yields the empty result
// (infinite distance, zero interval) instead of panicking, matching
// ExactS's behavior on an empty data trajectory.
func (a RLS) Search(t, q traj.Trajectory) Result {
	_, useSuffix, simplify, ok := a.params()
	if !ok || t.Len() == 0 || q.Len() == 0 {
		return Result{Dist: math.Inf(1)}
	}
	env := rl.NewSplitEnv(a.M, t, q, rl.EnvConfig{
		UseSuffix:     useSuffix,
		SimplifyState: simplify,
	})
	if a.Table != nil {
		env.WalkTable(a.Table)
	} else {
		actor := a.src().NewActor()
		defer actor.Release()
		walk(env, actor)
	}
	iv, d := env.Best()
	return Result{Interval: iv, Dist: d, Explored: env.Explored(), Scanned: env.Scanned()}
}

// walk drives one environment to completion with greedy actions, without
// allocating per step.
func walk(env *rl.SplitEnv, actor rl.Actor) {
	var state [3]float64
	var action [1]int
	dim := env.StateDim()
	for !env.Done() {
		env.StateInto(state[:dim])
		actor.Actions(state[:dim], 1, action[:])
		env.Step(action[0])
	}
}

// NewThresholdSearch implements ThresholdSearcher for the learned searches.
//
// Whether the candidate-level lower-bound cascade applies depends on the
// policy's state maintenance. With FULL state every interval the walk
// reports is a genuine subtrajectory whose tracked distance is the true
// measure value, so — exactly as for the split family — the cascade's
// bound is below anything the walk could report, and a candidate whose
// bound beats tau can be skipped without touching the ranking. With
// SIMPLIFIED state the tracked distance ignores skipped points and can
// undercut the exact value (even the exact optimum), so the cascade could
// prune a candidate whose tracked answer would have entered the ranking;
// the threshold then acts purely as a post-filter — the walk always runs,
// and a completed result strictly beyond tau is suppressed, which is
// exactly what the top-k heap would do. Either way rankings stay
// byte-identical to an unpruned RLS scan.
//
// The per-query state mirrors splitThresholdSearch: the reversed query and
// a suffix scratch reused across candidates (fed from the store's
// precomputed reversals), plus one environment and one actor Rebind-ed at
// each candidate, so the sequential scan path performs no per-candidate
// allocation either.
func (a RLS) NewThresholdSearch(q traj.Trajectory) ThresholdSearch {
	s := &rlsThresholdSearch{}
	_, useSuffix, simplify, ok := a.params()
	if !ok || q.Len() == 0 {
		return s // degenerate: every candidate reports an infinite distance
	}
	s.m = a.M
	s.useSuffix = useSuffix
	if useSuffix {
		s.qRev = q.Reverse()
	}
	if !simplify {
		s.lb = lbFor(a.M, q)
	}
	s.env = rl.NewScanEnv(a.M, q, rl.EnvConfig{UseSuffix: useSuffix, SimplifyState: simplify})
	if a.Table != nil {
		s.table = a.Table
	} else {
		s.actor = a.src().NewActor()
	}
	return s
}

type rlsThresholdSearch struct {
	m         sim.Measure
	useSuffix bool
	qRev      traj.Trajectory
	lb        sim.SubtrajLB // non-nil only for full-state policies
	env       *rl.SplitEnv
	table     *rl.TablePolicy // serve from the fused table walk when set
	actor     rl.Actor        // network actor otherwise
	suf       []float64
}

func (s *rlsThresholdSearch) Search(t traj.Trajectory, meta TrajMeta, tau float64) (Result, Pruned) {
	if lbPrunes(s.lb, t, meta, tau) {
		return Result{}, PrunedLB
	}
	r := s.search(t, meta)
	if r.Dist > tau {
		return r, PrunedAbandon
	}
	return r, NotPruned
}

func (s *rlsThresholdSearch) search(t traj.Trajectory, meta TrajMeta) Result {
	if s.env == nil || t.Len() == 0 {
		return Result{Dist: math.Inf(1)}
	}
	var suf []float64
	if s.useSuffix {
		tr := meta.Rev
		if tr.Len() != t.Len() {
			tr = t.Reverse() // defensive: zero-value meta
		}
		s.suf = sim.SuffixDistsInto(s.suf, s.m, tr, s.qRev)
		suf = s.suf
	}
	s.env.Rebind(t, suf)
	if s.table != nil {
		s.env.WalkTable(s.table)
	} else {
		walk(s.env, s.actor)
	}
	iv, d := s.env.Best()
	return Result{Interval: iv, Dist: d, Explored: s.env.Explored(), Scanned: s.env.Scanned()}
}

func (s *rlsThresholdSearch) Release() {
	if s.actor != nil {
		s.actor.Release()
	}
}

// SkippedFraction runs the policy over the pair and reports the fraction of
// data points never scanned (Table 5's "Skip Pts" column). A nil policy or
// an empty trajectory on either side skips nothing. Serving paths record
// the same count on Result.Scanned as a byproduct of the search walk;
// this re-walk exists for callers holding only a (policy, pair).
func SkippedFraction(m sim.Measure, p *rl.Policy, t, q traj.Trajectory) float64 {
	r := RLS{M: m, Policy: p}.Search(t, q)
	return skippedFractionOf(r.Scanned, t.Len())
}

// skippedFractionOf converts a walk's scanned-point count into the skipped
// fraction of an n-point trajectory; a zero count (non-walk result) or an
// empty trajectory skips nothing.
func skippedFractionOf(scanned, n int) float64 {
	if scanned <= 0 || n <= 0 || scanned >= n {
		return 0
	}
	return float64(n-scanned) / float64(n)
}
