package core

import (
	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// RLS is the reinforcement-learning based search (§5.3): a splitting-based
// search that drives the split decisions with a DQN-learned policy instead
// of PSS's hand-crafted heuristic. When the policy was trained with skip
// actions (K > 0) the same type realizes RLS-Skip (§5.4); the paper's
// RLS-Skip+ is a K > 0 policy trained with UseSuffix = false.
//
// Time complexity matches PSS: O(n1·Φini + n·Φinc), with the O(1) policy
// network evaluation replacing PSS's comparisons; skipping reduces the
// constant further by not maintaining state at skipped points.
type RLS struct {
	M      sim.Measure
	Policy *rl.Policy
}

// Name implements Algorithm: "RLS" for split-only policies, "RLS-Skip" for
// policies with skip actions, with a "+" suffix when Θsuf is dropped.
func (a RLS) Name() string {
	name := "RLS"
	if a.Policy != nil && a.Policy.K > 0 {
		name = "RLS-Skip"
		if !a.Policy.UseSuffix {
			name += "+"
		}
	}
	return name
}

// Search implements Algorithm: it walks the splitting MDP taking greedy
// policy actions and returns the best subtrajectory the walk exposes.
func (a RLS) Search(t, q traj.Trajectory) Result {
	env := rl.NewSplitEnv(a.M, t, q, rl.EnvConfig{
		UseSuffix:     a.Policy.UseSuffix,
		SimplifyState: a.Policy.SimplifyState,
	})
	for !env.Done() {
		env.Step(a.Policy.Action(env.State()))
	}
	iv, d := env.Best()
	return Result{Interval: iv, Dist: d, Explored: env.Explored()}
}

// SkippedFraction runs the policy over the pair and reports the fraction of
// data points never scanned (Table 5's "Skip Pts" column).
func SkippedFraction(m sim.Measure, p *rl.Policy, t, q traj.Trajectory) float64 {
	if t.Len() == 0 {
		return 0
	}
	env := rl.NewSplitEnv(m, t, q, rl.EnvConfig{
		UseSuffix:     p.UseSuffix,
		SimplifyState: p.SimplifyState,
	})
	scanned := 1 // the first point is always scanned
	for !env.Done() {
		before := env.Pos()
		env.Step(p.Action(env.State()))
		if !env.Done() && env.Pos() > before {
			scanned++
		}
	}
	skipped := t.Len() - scanned
	if skipped < 0 {
		skipped = 0
	}
	return float64(skipped) / float64(t.Len())
}
