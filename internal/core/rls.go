package core

import (
	"math"

	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// RLS is the reinforcement-learning based search (§5.3): a splitting-based
// search that drives the split decisions with a DQN-learned policy instead
// of PSS's hand-crafted heuristic. When the policy was trained with skip
// actions (K > 0) the same type realizes RLS-Skip (§5.4); the paper's
// RLS-Skip+ is a K > 0 policy trained with UseSuffix = false.
//
// Time complexity matches PSS: O(n1·Φini + n·Φinc), with the O(1) policy
// network evaluation replacing PSS's comparisons; skipping reduces the
// constant further by not maintaining state at skipped points.
type RLS struct {
	M      sim.Measure
	Policy *rl.Policy
}

// Name implements Algorithm: "RLS" for split-only policies, "RLS-Skip" for
// policies with skip actions, with a "+" suffix when Θsuf is dropped.
func (a RLS) Name() string {
	name := "RLS"
	if a.Policy != nil && a.Policy.K > 0 {
		name = "RLS-Skip"
		if !a.Policy.UseSuffix {
			name += "+"
		}
	}
	return name
}

// Search implements Algorithm: it walks the splitting MDP taking greedy
// policy actions and returns the best subtrajectory the walk exposes.
// A nil policy or an empty trajectory on either side yields the empty
// result (infinite distance, zero interval) instead of panicking, matching
// ExactS's behavior on an empty data trajectory.
func (a RLS) Search(t, q traj.Trajectory) Result {
	if a.Policy == nil || a.Policy.Net == nil || t.Len() == 0 || q.Len() == 0 {
		return Result{Dist: math.Inf(1)}
	}
	env := rl.NewSplitEnv(a.M, t, q, rl.EnvConfig{
		UseSuffix:     a.Policy.UseSuffix,
		SimplifyState: a.Policy.SimplifyState,
	})
	for !env.Done() {
		env.Step(a.Policy.Action(env.State()))
	}
	iv, d := env.Best()
	return Result{Interval: iv, Dist: d, Explored: env.Explored()}
}

// NewThresholdSearch implements ThresholdSearcher for the learned searches.
// RLS is approximate: with simplified state maintenance its tracked
// distances can undercut the exact measure value, so the exact-only
// lower-bound cascade (which bounds true subtrajectory distances) could
// prune a candidate whose tracked answer would have entered the ranking.
// The threshold therefore acts purely as a post-filter — the walk always
// runs, and a completed result strictly beyond tau is suppressed, which is
// exactly what the top-k heap would do. Rankings stay byte-identical to an
// unpruned RLS scan.
func (a RLS) NewThresholdSearch(q traj.Trajectory) ThresholdSearch {
	return &rlsThresholdSearch{a: a, q: q}
}

type rlsThresholdSearch struct {
	a RLS
	q traj.Trajectory
}

func (s *rlsThresholdSearch) Search(t traj.Trajectory, meta TrajMeta, tau float64) (Result, Pruned) {
	r := s.a.Search(t, s.q)
	if r.Dist > tau {
		return r, PrunedAbandon
	}
	return r, NotPruned
}

func (s *rlsThresholdSearch) Release() {}

// SkippedFraction runs the policy over the pair and reports the fraction of
// data points never scanned (Table 5's "Skip Pts" column). A nil policy or
// an empty trajectory on either side skips nothing.
func SkippedFraction(m sim.Measure, p *rl.Policy, t, q traj.Trajectory) float64 {
	if p == nil || p.Net == nil || t.Len() == 0 || q.Len() == 0 {
		return 0
	}
	env := rl.NewSplitEnv(m, t, q, rl.EnvConfig{
		UseSuffix:     p.UseSuffix,
		SimplifyState: p.SimplifyState,
	})
	scanned := 1 // the first point is always scanned
	for !env.Done() {
		before := env.Pos()
		env.Step(p.Action(env.State()))
		if !env.Done() && env.Pos() > before {
			scanned++
		}
	}
	skipped := t.Len() - scanned
	if skipped < 0 {
		skipped = 0
	}
	return float64(skipped) / float64(t.Len())
}
