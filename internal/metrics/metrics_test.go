package metrics

import (
	"math"
	"math/rand"
	"testing"

	"simsub/internal/core"
	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

func randTraj(rng *rand.Rand, n int) traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
	}
	return traj.New(pts...)
}

func TestExactResultScoresPerfectly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		data := randTraj(rng, rng.Intn(12)+2)
		q := randTraj(rng, rng.Intn(5)+1)
		r := (core.ExactS{M: sim.DTW{}}).Search(data, q)
		e := Evaluate(sim.DTW{}, data, q, r)
		if math.Abs(e.AR-1) > 1e-9 {
			t.Errorf("exact AR = %v, want 1", e.AR)
		}
		if e.MR != 1 {
			t.Errorf("exact MR = %v, want 1", e.MR)
		}
		if want := 1 / float64(data.NumSubtrajectories()); math.Abs(e.RR-want) > 1e-12 {
			t.Errorf("exact RR = %v, want %v", e.RR, want)
		}
	}
}

func TestEvaluateKnownRanking(t *testing.T) {
	// data on a line, query at origin: subtrajectory {p0} at distance 0 is
	// rank 1; returning {p1} must rank below every subtrajectory that is
	// strictly closer
	data := traj.FromXY(0, 0, 1, 0, 2, 0)
	q := traj.FromXY(0, 0)
	r := core.Result{Interval: traj.Interval{I: 1, J: 1}} // dist 1
	e := Evaluate(sim.DTW{}, data, q, r)
	// dists: [0,0]=0, [0,1]=1, [0,2]=3, [1,1]=1, [1,2]=3, [2,2]=2
	// strictly smaller than 1: only 0 → rank 2
	if e.MR != 2 {
		t.Errorf("MR = %v, want 2", e.MR)
	}
	if want := 2.0 / 6.0; math.Abs(e.RR-want) > 1e-12 {
		t.Errorf("RR = %v, want %v", e.RR, want)
	}
	if !math.IsInf(e.AR, 1) && e.AR < 1e6 {
		t.Errorf("AR with zero exact distance should be huge, got %v", e.AR)
	}
}

func TestEvaluateApproxNeverBelowOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		data := randTraj(rng, rng.Intn(12)+2)
		q := randTraj(rng, rng.Intn(5)+1)
		for _, a := range []core.Algorithm{
			core.PSS{M: sim.DTW{}},
			core.POS{M: sim.DTW{}},
			core.SizeS{M: sim.DTW{}, Xi: 2},
		} {
			e := Evaluate(sim.DTW{}, data, q, a.Search(data, q))
			if e.AR < 1-1e-9 {
				t.Errorf("%s: AR = %v < 1", a.Name(), e.AR)
			}
			if e.MR < 1 || e.RR <= 0 || e.RR > 1 {
				t.Errorf("%s: MR=%v RR=%v out of range", a.Name(), e.MR, e.RR)
			}
		}
	}
}

func TestEvaluateUsesActualInterval(t *testing.T) {
	// a Result whose claimed Dist disagrees with its interval must be
	// evaluated on the interval
	data := traj.FromXY(0, 0, 5, 0)
	q := traj.FromXY(0, 0)
	r := core.Result{Interval: traj.Interval{I: 1, J: 1}, Dist: 0 /* lie */}
	e := Evaluate(sim.DTW{}, data, q, r)
	if e.MR != 2 {
		t.Errorf("MR = %v: evaluation trusted the lied distance", e.MR)
	}
}

func TestEvaluateManyAgreesWithEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		data := randTraj(rng, rng.Intn(10)+3)
		q := randTraj(rng, rng.Intn(4)+1)
		algs := []core.Algorithm{
			core.ExactS{M: sim.DTW{}},
			core.PSS{M: sim.DTW{}},
			core.SizeS{M: sim.DTW{}, Xi: 1},
		}
		rs := make([]core.Result, len(algs))
		for i, a := range algs {
			rs[i] = a.Search(data, q)
		}
		many := EvaluateMany(sim.DTW{}, data, q, rs)
		for i, r := range rs {
			one := Evaluate(sim.DTW{}, data, q, r)
			if math.Abs(many[i].AR-one.AR) > 1e-9 && !(math.IsInf(many[i].AR, 1) && math.IsInf(one.AR, 1)) ||
				many[i].MR != one.MR || math.Abs(many[i].RR-one.RR) > 1e-12 {
				t.Fatalf("trial %d result %d: EvaluateMany %+v vs Evaluate %+v", trial, i, many[i], one)
			}
		}
	}
}

func TestAgg(t *testing.T) {
	var a Agg
	if m := a.Mean(); m.AR != 0 || m.MR != 0 || m.RR != 0 {
		t.Errorf("empty mean = %+v", m)
	}
	a.Add(Effectiveness{AR: 1, MR: 2, RR: 0.1})
	a.Add(Effectiveness{AR: 3, MR: 4, RR: 0.3})
	m := a.Mean()
	if m.AR != 2 || m.MR != 3 || math.Abs(m.RR-0.2) > 1e-12 {
		t.Errorf("mean = %+v", m)
	}
	if a.Count != 2 {
		t.Errorf("count = %d", a.Count)
	}
	// infinite AR clamps rather than poisoning the mean
	a.Add(Effectiveness{AR: math.Inf(1), MR: 1, RR: 0.1})
	if m := a.Mean(); math.IsInf(m.AR, 1) || math.IsNaN(m.AR) {
		t.Errorf("clamping failed: %v", m.AR)
	}
}

func TestAggStd(t *testing.T) {
	var a Agg
	if s := a.Std(); s.AR != 0 || s.MR != 0 {
		t.Error("empty std should be zero")
	}
	a.Add(Effectiveness{AR: 1, MR: 2, RR: 0.2})
	if s := a.Std(); s.AR != 0 {
		t.Error("single-sample std should be zero")
	}
	a.Add(Effectiveness{AR: 3, MR: 6, RR: 0.6})
	s := a.Std()
	// population std of {1,3} is 1, of {2,6} is 2, of {0.2,0.6} is 0.2
	if math.Abs(s.AR-1) > 1e-12 || math.Abs(s.MR-2) > 1e-12 || math.Abs(s.RR-0.2) > 1e-12 {
		t.Errorf("std = %+v", s)
	}
	// constant samples have zero std
	var b Agg
	for i := 0; i < 5; i++ {
		b.Add(Effectiveness{AR: 1.5, MR: 3, RR: 0.1})
	}
	if s := b.Std(); s.AR > 1e-9 || s.MR > 1e-9 || s.RR > 1e-9 {
		t.Errorf("constant std = %+v", s)
	}
}

func TestTimer(t *testing.T) {
	var tm Timer
	tm.Time(func() {})
	tm.Time(func() {})
	if tm.Total() < 0 {
		t.Error("negative total")
	}
	if tm.MeanMs() < 0 {
		t.Error("negative mean")
	}
	var empty Timer
	if empty.MeanMs() != 0 {
		t.Error("empty timer mean should be 0")
	}
}
