// Package metrics implements the paper's effectiveness metrics (§6.1):
//
//	AR — approximation ratio: dissimilarity of the returned subtrajectory
//	     over that of the exact optimum (≥ 1, smaller is better);
//	MR — mean rank: the returned subtrajectory's rank among all n(n+1)/2
//	     subtrajectories ordered by dissimilarity;
//	RR — relative rank: MR normalized by the number of subtrajectories.
//
// Evaluating MR/RR requires the full exact ranking, so evaluation costs one
// ExactS enumeration per pair; the incremental strategy keeps that at
// O(n·(Φini + n·Φinc)).
package metrics

import (
	"math"
	"time"

	"simsub/internal/core"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// Effectiveness holds the three per-query quality metrics.
type Effectiveness struct {
	AR float64
	MR float64
	RR float64
}

// arEps regularizes AR when the exact optimum has distance 0.
const arEps = 1e-12

// Evaluate scores an approximate result against the exact enumeration for
// one (data, query) pair. The returned subtrajectory is re-scored with the
// measure, so algorithms whose tracked distance is approximate (RLS-Skip's
// simplified state) are judged on what they actually return.
func Evaluate(m sim.Measure, t, q traj.Trajectory, r core.Result) Effectiveness {
	dApprox := core.ExactDist(m, t, q, r)
	var dExact float64 = math.Inf(1)
	rank := 1
	sim.AllSubDists(m, t, q, func(i, j int, d float64) {
		if d < dExact {
			dExact = d
		}
		if d < dApprox {
			rank++
		}
	})
	total := t.NumSubtrajectories()
	return Effectiveness{
		AR: (dApprox + arEps) / (dExact + arEps),
		MR: float64(rank),
		RR: float64(rank) / float64(total),
	}
}

// EvaluateMany scores several results for the same (data, query) pair with
// a single exact enumeration, which dominates evaluation cost. Entry i of
// the returned slice corresponds to rs[i].
func EvaluateMany(m sim.Measure, t, q traj.Trajectory, rs []core.Result) []Effectiveness {
	dApprox := make([]float64, len(rs))
	ranks := make([]int, len(rs))
	for i, r := range rs {
		dApprox[i] = core.ExactDist(m, t, q, r)
		ranks[i] = 1
	}
	dExact := math.Inf(1)
	sim.AllSubDists(m, t, q, func(_, _ int, d float64) {
		if d < dExact {
			dExact = d
		}
		for i := range dApprox {
			if d < dApprox[i] {
				ranks[i]++
			}
		}
	})
	total := float64(t.NumSubtrajectories())
	out := make([]Effectiveness, len(rs))
	for i := range rs {
		out[i] = Effectiveness{
			AR: (dApprox[i] + arEps) / (dExact + arEps),
			MR: float64(ranks[i]),
			RR: float64(ranks[i]) / total,
		}
	}
	return out
}

// Agg accumulates per-pair effectiveness results, tracking means and
// standard deviations (Figure 9 of the paper reports both).
type Agg struct {
	sumAR, sumMR, sumRR float64
	sqAR, sqMR, sqRR    float64
	// Count is the number of accumulated evaluations.
	Count int
}

// Add accumulates one evaluation. Infinite ARs (degenerate exact optima)
// are clamped to keep means meaningful; they are rare and noted by callers.
func (a *Agg) Add(e Effectiveness) {
	ar := e.AR
	if math.IsInf(ar, 1) || ar > 1e6 {
		ar = 1e6
	}
	a.sumAR += ar
	a.sumMR += e.MR
	a.sumRR += e.RR
	a.sqAR += ar * ar
	a.sqMR += e.MR * e.MR
	a.sqRR += e.RR * e.RR
	a.Count++
}

// Mean returns the component-wise means; zero values when empty.
func (a *Agg) Mean() Effectiveness {
	if a.Count == 0 {
		return Effectiveness{}
	}
	n := float64(a.Count)
	return Effectiveness{AR: a.sumAR / n, MR: a.sumMR / n, RR: a.sumRR / n}
}

// Std returns the component-wise population standard deviations; zero
// values when fewer than two samples were added.
func (a *Agg) Std() Effectiveness {
	if a.Count < 2 {
		return Effectiveness{}
	}
	n := float64(a.Count)
	std := func(sum, sq float64) float64 {
		v := sq/n - (sum/n)*(sum/n)
		if v < 0 { // numerical noise
			v = 0
		}
		return math.Sqrt(v)
	}
	return Effectiveness{
		AR: std(a.sumAR, a.sqAR),
		MR: std(a.sumMR, a.sqMR),
		RR: std(a.sumRR, a.sqRR),
	}
}

// Timer measures accumulated wall-clock time across repeated sections.
type Timer struct {
	total time.Duration
	n     int
}

// Time runs fn and adds its duration.
func (t *Timer) Time(fn func()) {
	start := time.Now()
	fn()
	t.total += time.Since(start)
	t.n++
}

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return t.total }

// MeanMs returns the mean duration per timed section in milliseconds.
func (t *Timer) MeanMs() float64 {
	if t.n == 0 {
		return 0
	}
	return float64(t.total.Microseconds()) / float64(t.n) / 1000
}
