// Package index provides the Bounding Box R-tree index of §6.2(4): data
// trajectories are indexed by their MBRs, and a query prunes every
// trajectory whose MBR does not intersect the query trajectory's MBR
// (following the Torch and seed-guided-metric-learning systems the paper
// cites).
//
// The tree supports both one-shot STR bulk loading (Leutenegger et al.) for
// static databases and dynamic insertion with quadratic splits for growing
// ones.
package index

import (
	"math"
	"sort"

	"simsub/internal/geo"
)

// Entry is an indexed item: a bounding rectangle with an opaque integer
// reference (typically a trajectory ID or slice offset).
type Entry struct {
	Rect geo.Rect
	Ref  int
}

// node is an R-tree node; leaves hold entries, internal nodes hold children.
type node struct {
	rect     geo.Rect
	leaf     bool
	entries  []Entry
	children []*node
}

// RTree is an in-memory R-tree over rectangles.
type RTree struct {
	root    *node
	maxFill int
	minFill int
	size    int
}

// New creates an empty R-tree with the given maximum node fan-out
// (minimum 4; a typical value is 16-64).
func New(maxFill int) *RTree {
	if maxFill < 4 {
		maxFill = 4
	}
	return &RTree{
		root:    &node{leaf: true, rect: geo.EmptyRect()},
		maxFill: maxFill,
		minFill: maxFill * 2 / 5,
	}
}

// Len returns the number of indexed entries.
func (t *RTree) Len() int { return t.size }

// Bounds returns the MBR of everything indexed.
func (t *RTree) Bounds() geo.Rect { return t.root.rect }

// BulkLoad builds an R-tree from the entries with Sort-Tile-Recursive
// packing: entries are sorted by center x, partitioned into vertical slices,
// each slice sorted by center y and cut into full leaves. This yields a
// well-packed tree in O(n log n).
func BulkLoad(entries []Entry, maxFill int) *RTree {
	t := New(maxFill)
	if len(entries) == 0 {
		return t
	}
	es := make([]Entry, len(entries))
	copy(es, entries)
	t.size = len(es)

	// leaf level
	leafCount := (len(es) + maxFill - 1) / maxFill
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perSlice := sliceCount * maxFill
	sort.Slice(es, func(i, j int) bool {
		return es[i].Rect.Center().X < es[j].Rect.Center().X
	})
	var leaves []*node
	for s := 0; s < len(es); s += perSlice {
		hi := s + perSlice
		if hi > len(es) {
			hi = len(es)
		}
		slice := es[s:hi]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for o := 0; o < len(slice); o += maxFill {
			e := o + maxFill
			if e > len(slice) {
				e = len(slice)
			}
			leaf := &node{leaf: true, entries: append([]Entry(nil), slice[o:e]...)}
			leaf.recomputeRect()
			leaves = append(leaves, leaf)
		}
	}
	// pack upper levels the same way until one root remains
	level := leaves
	for len(level) > 1 {
		parentCount := (len(level) + maxFill - 1) / maxFill
		sliceCount := int(math.Ceil(math.Sqrt(float64(parentCount))))
		perSlice := sliceCount * maxFill
		sort.Slice(level, func(i, j int) bool {
			return level[i].rect.Center().X < level[j].rect.Center().X
		})
		var parents []*node
		for s := 0; s < len(level); s += perSlice {
			hi := s + perSlice
			if hi > len(level) {
				hi = len(level)
			}
			slice := level[s:hi]
			sort.Slice(slice, func(i, j int) bool {
				return slice[i].rect.Center().Y < slice[j].rect.Center().Y
			})
			for o := 0; o < len(slice); o += maxFill {
				e := o + maxFill
				if e > len(slice) {
					e = len(slice)
				}
				p := &node{children: append([]*node(nil), slice[o:e]...)}
				p.recomputeRect()
				parents = append(parents, p)
			}
		}
		level = parents
	}
	t.root = level[0]
	return t
}

func (n *node) recomputeRect() {
	r := geo.EmptyRect()
	if n.leaf {
		for _, e := range n.entries {
			r = r.Union(e.Rect)
		}
	} else {
		for _, c := range n.children {
			r = r.Union(c.rect)
		}
	}
	n.rect = r
}

// Insert adds an entry, splitting overflowing nodes with the quadratic
// split heuristic (Guttman).
func (t *RTree) Insert(e Entry) {
	t.size++
	split := t.insert(t.root, e)
	if split != nil {
		// grow the tree: new root over old root and the split sibling
		old := t.root
		t.root = &node{children: []*node{old, split}}
		t.root.recomputeRect()
	}
}

// insert descends to the best leaf; a non-nil return is a new sibling from
// a split that the caller must adopt.
func (t *RTree) insert(n *node, e Entry) *node {
	n.rect = n.rect.Union(e.Rect)
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxFill {
			return t.splitLeaf(n)
		}
		return nil
	}
	best := t.chooseChild(n, e.Rect)
	if split := t.insert(best, e); split != nil {
		n.children = append(n.children, split)
		if len(n.children) > t.maxFill {
			return t.splitInternal(n)
		}
	}
	return nil
}

// chooseChild picks the child needing least area enlargement (ties by area).
func (t *RTree) chooseChild(n *node, r geo.Rect) *node {
	var best *node
	bestGrow, bestArea := math.Inf(1), math.Inf(1)
	for _, c := range n.children {
		grow := c.rect.Enlargement(r)
		area := c.rect.Area()
		if grow < bestGrow || (grow == bestGrow && area < bestArea) {
			best, bestGrow, bestArea = c, grow, area
		}
	}
	return best
}

// splitLeaf splits an overflowing leaf with the quadratic heuristic and
// returns the new sibling.
func (t *RTree) splitLeaf(n *node) *node {
	rects := make([]geo.Rect, len(n.entries))
	for i, e := range n.entries {
		rects[i] = e.Rect
	}
	g1, g2 := quadraticSplit(rects, t.minFill)
	sib := &node{leaf: true}
	e1 := make([]Entry, 0, len(g1))
	for _, i := range g1 {
		e1 = append(e1, n.entries[i])
	}
	for _, i := range g2 {
		sib.entries = append(sib.entries, n.entries[i])
	}
	n.entries = e1
	n.recomputeRect()
	sib.recomputeRect()
	return sib
}

// splitInternal splits an overflowing internal node.
func (t *RTree) splitInternal(n *node) *node {
	rects := make([]geo.Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.rect
	}
	g1, g2 := quadraticSplit(rects, t.minFill)
	sib := &node{}
	c1 := make([]*node, 0, len(g1))
	for _, i := range g1 {
		c1 = append(c1, n.children[i])
	}
	for _, i := range g2 {
		sib.children = append(sib.children, n.children[i])
	}
	n.children = c1
	n.recomputeRect()
	sib.recomputeRect()
	return sib
}

// quadraticSplit partitions rect indices into two groups per Guttman's
// quadratic heuristic: seed with the pair wasting the most area, then
// assign each remaining rect to the group whose MBR grows least, forcing
// assignment when a group must absorb the rest to reach minFill.
func quadraticSplit(rects []geo.Rect, minFill int) (g1, g2 []int) {
	n := len(rects)
	// pick seeds
	worst := -math.MaxFloat64
	s1, s2 := 0, 1
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			waste := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	g1 = append(g1, s1)
	g2 = append(g2, s2)
	r1, r2 := rects[s1], rects[s2]
	for i := 0; i < n; i++ {
		if i == s1 || i == s2 {
			continue
		}
		remaining := n - len(g1) - len(g2) - 1
		switch {
		case len(g1)+remaining+1 <= minFill:
			g1 = append(g1, i)
			r1 = r1.Union(rects[i])
			continue
		case len(g2)+remaining+1 <= minFill:
			g2 = append(g2, i)
			r2 = r2.Union(rects[i])
			continue
		}
		d1 := r1.Enlargement(rects[i])
		d2 := r2.Enlargement(rects[i])
		if d1 < d2 || (d1 == d2 && r1.Area() <= r2.Area()) {
			g1 = append(g1, i)
			r1 = r1.Union(rects[i])
		} else {
			g2 = append(g2, i)
			r2 = r2.Union(rects[i])
		}
	}
	return g1, g2
}

// Search appends to out the refs of all entries whose rectangles intersect
// r, and returns the result. Order is unspecified.
func (t *RTree) Search(r geo.Rect, out []int) []int {
	return searchNode(t.root, r, out)
}

func searchNode(n *node, r geo.Rect, out []int) []int {
	if !n.rect.Intersects(r) {
		return out
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Rect.Intersects(r) {
				out = append(out, e.Ref)
			}
		}
		return out
	}
	for _, c := range n.children {
		out = searchNode(c, r, out)
	}
	return out
}

// Depth returns the height of the tree (1 for a lone leaf root).
func (t *RTree) Depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		d++
	}
	return d
}
