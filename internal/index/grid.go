package index

import (
	"sort"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

// GridIndex is the inverted-file style index the paper mentions alongside
// the R-tree (§3.1): space is cut into a uniform grid, each cell keeps the
// posting list of trajectories passing through it, and a query's candidate
// set is every trajectory sharing at least one cell with the query — a
// tighter filter than MBR intersection for long, thin trajectories.
type GridIndex struct {
	bounds geo.Rect
	cells  int // cells per axis
	post   map[int][]int
}

// NewGridIndex builds an inverted grid index over the trajectories with
// cells² uniform cells covering their joint bounding rectangle.
func NewGridIndex(ts []traj.Trajectory, cells int) *GridIndex {
	if cells < 1 {
		cells = 1
	}
	bounds := geo.EmptyRect()
	for _, t := range ts {
		bounds = bounds.Union(t.MBR())
	}
	g := &GridIndex{bounds: bounds, cells: cells, post: map[int][]int{}}
	for ref, t := range ts {
		g.addTrajectory(ref, t)
	}
	return g
}

// addTrajectory inserts one trajectory's cells, deduplicating consecutive
// repeats (points cluster in cells).
func (g *GridIndex) addTrajectory(ref int, t traj.Trajectory) {
	last := -1
	for _, p := range t.Points {
		c := g.cellOf(p)
		if c == last {
			continue
		}
		last = c
		lst := g.post[c]
		if len(lst) > 0 && lst[len(lst)-1] == ref {
			continue // revisited the cell later in the same trajectory
		}
		g.post[c] = append(lst, ref)
	}
}

// cellOf maps a point to its flat cell id (points outside the build bounds
// clamp to the border cells).
func (g *GridIndex) cellOf(p geo.Point) int {
	w := g.bounds.MaxX - g.bounds.MinX
	h := g.bounds.MaxY - g.bounds.MinY
	cx, cy := 0, 0
	if w > 0 {
		cx = int(float64(g.cells) * (p.X - g.bounds.MinX) / w)
	}
	if h > 0 {
		cy = int(float64(g.cells) * (p.Y - g.bounds.MinY) / h)
	}
	cx = clampCell(cx, g.cells)
	cy = clampCell(cy, g.cells)
	return cy*g.cells + cx
}

func clampCell(c, cells int) int {
	if c < 0 {
		return 0
	}
	if c >= cells {
		return cells - 1
	}
	return c
}

// Candidates returns the refs of trajectories sharing at least one grid
// cell with q, in ascending order without duplicates.
func (g *GridIndex) Candidates(q traj.Trajectory) []int {
	seen := map[int]bool{}
	var out []int
	last := -1
	for _, p := range q.Points {
		c := g.cellOf(p)
		if c == last {
			continue
		}
		last = c
		for _, ref := range g.post[c] {
			if !seen[ref] {
				seen[ref] = true
				out = append(out, ref)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Cells returns the number of non-empty cells (for diagnostics and tests).
func (g *GridIndex) Cells() int { return len(g.post) }
