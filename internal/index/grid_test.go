package index

import (
	"math/rand"
	"testing"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

func gridTrajs(seed int64, n, length int, spread float64) []traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]traj.Trajectory, n)
	for i := range out {
		pts := make([]geo.Point, length)
		x, y := rng.Float64()*spread, rng.Float64()*spread
		for j := range pts {
			x += rng.NormFloat64() * 0.01
			y += rng.NormFloat64() * 0.01
			pts[j] = geo.Point{X: x, Y: y, T: float64(j)}
		}
		out[i] = traj.Trajectory{ID: i, Points: pts}
	}
	return out
}

func TestGridCandidatesIncludeSharedCellTrajectories(t *testing.T) {
	ts := gridTrajs(1, 50, 20, 1)
	g := NewGridIndex(ts, 16)
	// a subsegment of trajectory 7 must find trajectory 7
	q := ts[7].Sub(3, 10)
	cands := g.Candidates(q)
	found := false
	for _, c := range cands {
		if c == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("query over trajectory 7's own points did not return it")
	}
}

func TestGridCandidatesSorted(t *testing.T) {
	ts := gridTrajs(2, 80, 15, 0.5)
	g := NewGridIndex(ts, 8)
	cands := g.Candidates(ts[0])
	for i := 1; i < len(cands); i++ {
		if cands[i-1] >= cands[i] {
			t.Fatal("candidates not strictly sorted / deduplicated")
		}
	}
}

func TestGridPrunesDistantClusters(t *testing.T) {
	near := gridTrajs(3, 20, 15, 0.2)
	far := gridTrajs(4, 20, 15, 0.2)
	for i := range far {
		far[i] = far[i].Translate(100, 100)
		far[i].ID = 20 + i
	}
	all := append(append([]traj.Trajectory{}, near...), far...)
	g := NewGridIndex(all, 32)
	cands := g.Candidates(near[0])
	for _, c := range cands {
		if c >= 20 {
			t.Fatalf("far trajectory %d not pruned", c)
		}
	}
	if len(cands) == 0 {
		t.Fatal("no candidates at all")
	}
}

func TestGridCandidatesSoundness(t *testing.T) {
	// every trajectory sharing a cell with the query must be returned:
	// verify against a brute-force cell comparison
	ts := gridTrajs(5, 40, 12, 0.3)
	g := NewGridIndex(ts, 8)
	q := ts[13]
	got := map[int]bool{}
	for _, c := range g.Candidates(q) {
		got[c] = true
	}
	qCells := map[int]bool{}
	for _, p := range q.Points {
		qCells[g.cellOf(p)] = true
	}
	for ref, tr := range ts {
		shares := false
		for _, p := range tr.Points {
			if qCells[g.cellOf(p)] {
				shares = true
				break
			}
		}
		if shares && !got[ref] {
			t.Fatalf("trajectory %d shares a cell but was not returned", ref)
		}
		if !shares && got[ref] {
			t.Fatalf("trajectory %d shares no cell but was returned", ref)
		}
	}
}

func TestGridDegenerate(t *testing.T) {
	// all points identical: a single cell, everything is a candidate
	pts := []geo.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}
	ts := []traj.Trajectory{{ID: 0, Points: pts}, {ID: 1, Points: pts}}
	g := NewGridIndex(ts, 16)
	if cands := g.Candidates(ts[0]); len(cands) != 2 {
		t.Errorf("degenerate grid candidates = %v", cands)
	}
	if g.Cells() != 1 {
		t.Errorf("cells = %d, want 1", g.Cells())
	}
	// empty build
	empty := NewGridIndex(nil, 4)
	if cands := empty.Candidates(ts[0]); len(cands) != 0 {
		t.Errorf("empty grid returned %v", cands)
	}
}
