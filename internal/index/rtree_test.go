package index

import (
	"math/rand"
	"sort"
	"testing"

	"simsub/internal/geo"
)

func randomEntries(seed int64, n int) []Entry {
	rng := rand.New(rand.NewSource(seed))
	es := make([]Entry, n)
	for i := range es {
		x, y := rng.Float64()*100, rng.Float64()*100
		w, h := rng.Float64()*5, rng.Float64()*5
		es[i] = Entry{Rect: geo.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}, Ref: i}
	}
	return es
}

// bruteSearch is the oracle: linear scan.
func bruteSearch(es []Entry, r geo.Rect) []int {
	var out []int
	for _, e := range es {
		if e.Rect.Intersects(r) {
			out = append(out, e.Ref)
		}
	}
	sort.Ints(out)
	return out
}

func sortedSearch(t *RTree, r geo.Rect) []int {
	got := t.Search(r, nil)
	sort.Ints(got)
	return got
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBulkLoadSearchMatchesBruteForce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 500} {
		es := randomEntries(int64(n)+1, n)
		tree := BulkLoad(es, 16)
		if tree.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tree.Len())
		}
		rng := rand.New(rand.NewSource(99))
		for q := 0; q < 30; q++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			r := geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*30, MaxY: y + rng.Float64()*30}
			got := sortedSearch(tree, r)
			want := bruteSearch(es, r)
			if !equalInts(got, want) {
				t.Fatalf("n=%d query %v: got %v, want %v", n, r, got, want)
			}
		}
	}
}

func TestInsertSearchMatchesBruteForce(t *testing.T) {
	es := randomEntries(7, 300)
	tree := New(8)
	for _, e := range es {
		tree.Insert(e)
	}
	if tree.Len() != len(es) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(es))
	}
	rng := rand.New(rand.NewSource(100))
	for q := 0; q < 30; q++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		r := geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*40, MaxY: y + rng.Float64()*40}
		got := sortedSearch(tree, r)
		want := bruteSearch(es, r)
		if !equalInts(got, want) {
			t.Fatalf("query %v: got %d refs, want %d", r, len(got), len(want))
		}
	}
}

func TestMixedBulkAndInsert(t *testing.T) {
	es := randomEntries(8, 200)
	tree := BulkLoad(es[:100], 16)
	for _, e := range es[100:] {
		tree.Insert(e)
	}
	got := sortedSearch(tree, geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100})
	want := bruteSearch(es, geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100})
	if !equalInts(got, want) {
		t.Fatalf("full-cover query: got %d, want %d", len(got), len(want))
	}
}

func TestSearchEmptyTree(t *testing.T) {
	tree := New(16)
	if got := tree.Search(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, nil); len(got) != 0 {
		t.Errorf("empty tree returned %v", got)
	}
	if !tree.Bounds().IsEmpty() {
		t.Error("empty tree should have empty bounds")
	}
}

func TestSearchDisjointRect(t *testing.T) {
	es := randomEntries(9, 50)
	tree := BulkLoad(es, 8)
	if got := tree.Search(geo.Rect{MinX: 500, MinY: 500, MaxX: 600, MaxY: 600}, nil); len(got) != 0 {
		t.Errorf("disjoint query returned %v", got)
	}
}

func TestTreeDepthGrowsLogarithmically(t *testing.T) {
	tree := New(8)
	for i := 0; i < 1000; i++ {
		x := float64(i % 37)
		y := float64(i % 53)
		tree.Insert(Entry{Rect: geo.Rect{MinX: x, MinY: y, MaxX: x + 1, MaxY: y + 1}, Ref: i})
	}
	if d := tree.Depth(); d < 2 || d > 8 {
		t.Errorf("depth = %d after 1000 inserts with fan-out 8", d)
	}
	bulk := BulkLoad(randomEntries(10, 1000), 16)
	if d := bulk.Depth(); d < 2 || d > 4 {
		t.Errorf("bulk depth = %d, want tight packing", d)
	}
}

func TestBoundsCoverEverything(t *testing.T) {
	es := randomEntries(11, 120)
	tree := New(8)
	for _, e := range es {
		tree.Insert(e)
	}
	b := tree.Bounds()
	for _, e := range es {
		if !b.ContainsRect(e.Rect) {
			t.Fatalf("bounds %v do not contain %v", b, e.Rect)
		}
	}
}

func TestSearchReuseBuffer(t *testing.T) {
	es := randomEntries(12, 100)
	tree := BulkLoad(es, 16)
	buf := make([]int, 0, 128)
	r := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	out := tree.Search(r, buf[:0])
	if len(out) != 100 {
		t.Errorf("got %d results", len(out))
	}
}
