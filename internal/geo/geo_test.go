package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{X: 1, Y: 2}, Point{X: 1, Y: 2}, 0},
		{"unit x", Point{}, Point{X: 1}, 1},
		{"unit y", Point{}, Point{Y: 1}, 1},
		{"3-4-5", Point{}, Point{X: 3, Y: 4}, 5},
		{"negative coords", Point{X: -1, Y: -1}, Point{X: 2, Y: 3}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Dist(tc.p, tc.q); !almostEq(got, tc.want) {
				t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
		})
	}
}

func TestDistIgnoresTime(t *testing.T) {
	p := Point{X: 1, Y: 1, T: 0}
	q := Point{X: 1, Y: 1, T: 99}
	if d := Dist(p, q); d != 0 {
		t.Errorf("Dist with differing timestamps = %v, want 0", d)
	}
}

func TestSqDistConsistentWithDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// keep magnitudes sane to avoid overflow in the quick-generated values
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e6)
		}
		p := Point{X: clamp(ax), Y: clamp(ay)}
		q := Point{X: clamp(bx), Y: clamp(by)}
		d := Dist(p, q)
		return almostEq(d*d, SqDist(p, q)) || math.Abs(d*d-SqDist(p, q)) < 1e-6*SqDist(p, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a := Point{X: 0, Y: 0, T: 0}
	b := Point{X: 10, Y: 20, T: 5}
	mid := Lerp(a, b, 0.5)
	if !almostEq(mid.X, 5) || !almostEq(mid.Y, 10) || !almostEq(mid.T, 2.5) {
		t.Errorf("Lerp midpoint = %v", mid)
	}
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp(0) = %v, want %v", got, a)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp(1) = %v, want %v", got, b)
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if e.Area() != 0 {
		t.Errorf("empty area = %v", e.Area())
	}
	r := Rect{0, 0, 1, 1}
	if got := e.Union(r); got != r {
		t.Errorf("empty.Union(r) = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r.Union(empty) = %v, want %v", got, r)
	}
	if e.Intersects(r) {
		t.Error("empty rect should not intersect anything")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 5}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{X: 5, Y: 2}, true},
		{Point{X: 0, Y: 0}, true},  // boundary
		{Point{X: 10, Y: 5}, true}, // boundary
		{Point{X: -0.1, Y: 2}, false},
		{Point{X: 5, Y: 5.1}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{1, 1, 3, 3}, true},
		{Rect{2, 2, 3, 3}, true}, // touching corner counts
		{Rect{3, 3, 4, 4}, false},
		{Rect{0.5, 0.5, 1.5, 1.5}, true}, // contained
		{Rect{-1, 0, -0.1, 2}, false},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("intersects not symmetric for %v", c.b)
		}
	}
}

func TestRectUnionProperties(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		norm := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1000)
		}
		r1 := MBR([]Point{{X: norm(ax), Y: norm(ay)}, {X: norm(bx), Y: norm(by)}})
		r2 := MBR([]Point{{X: norm(cx), Y: norm(cy)}, {X: norm(dx), Y: norm(dy)}})
		u := r1.Union(r2)
		// union contains both operands and is commutative
		return u.ContainsRect(r1) && u.ContainsRect(r2) && u == r2.Union(r1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectEnlargement(t *testing.T) {
	r := Rect{0, 0, 1, 1}
	if g := r.Enlargement(Rect{0.2, 0.2, 0.8, 0.8}); !almostEq(g, 0) {
		t.Errorf("enlargement of contained rect = %v, want 0", g)
	}
	if g := r.Enlargement(Rect{0, 0, 2, 1}); !almostEq(g, 1) {
		t.Errorf("enlargement = %v, want 1", g)
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{X: 1, Y: 1}, 0},   // inside
		{Point{X: 2, Y: 2}, 0},   // boundary
		{Point{X: 5, Y: 2}, 3},   // right side
		{Point{X: 1, Y: -2}, 2},  // below
		{Point{X: 5, Y: 6}, 5},   // corner 3-4-5
		{Point{X: -3, Y: -4}, 5}, // opposite corner
	}
	for _, c := range cases {
		if got := r.DistToPoint(c.p); !almostEq(got, c.want) {
			t.Errorf("DistToPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMBR(t *testing.T) {
	pts := []Point{{X: 3, Y: 1}, {X: -1, Y: 4}, {X: 2, Y: 2}}
	want := Rect{-1, 1, 3, 4}
	if got := MBR(pts); got != want {
		t.Errorf("MBR = %v, want %v", got, want)
	}
	if !MBR(nil).IsEmpty() {
		t.Error("MBR of no points should be empty")
	}
}

func TestRectExpandAndCenter(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	e := r.Expand(1)
	want := Rect{-1, -1, 5, 3}
	if e != want {
		t.Errorf("Expand = %v, want %v", e, want)
	}
	c := r.Center()
	if !almostEq(c.X, 2) || !almostEq(c.Y, 1) {
		t.Errorf("Center = %v", c)
	}
}

func TestPointSegDist(t *testing.T) {
	a, b := Point{X: 0, Y: 0}, Point{X: 10, Y: 0}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{X: 5, Y: 3}, 3},  // perpendicular to interior
		{Point{X: -3, Y: 4}, 5}, // beyond a
		{Point{X: 13, Y: 4}, 5}, // beyond b
		{Point{X: 5, Y: 0}, 0},  // on segment
	}
	for _, c := range cases {
		if got := PointSegDist(c.p, a, b); !almostEq(got, c.want) {
			t.Errorf("PointSegDist(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// degenerate segment reduces to point distance
	if got := PointSegDist(Point{X: 3, Y: 4}, a, a); !almostEq(got, 5) {
		t.Errorf("degenerate PointSegDist = %v, want 5", got)
	}
}

func TestRectMargin(t *testing.T) {
	r := Rect{0, 0, 3, 2}
	if got := r.Margin(); !almostEq(got, 5) {
		t.Errorf("Margin = %v, want 5", got)
	}
	if got := EmptyRect().Margin(); got != 0 {
		t.Errorf("empty Margin = %v, want 0", got)
	}
}
