// Package geo provides the planar-geometry substrate used throughout the
// SimSub library: points, Euclidean distances, minimum bounding rectangles
// (MBRs) and segment operations.
//
// All coordinates are float64 and live in an abstract planar space. Datasets
// normalize real-world coordinates into this space before search.
package geo

import (
	"fmt"
	"math"
)

// Point is a timestamped planar location. T is a timestamp in seconds; it is
// carried through the system but only segment-based measures (EDwP, EDS) and
// the dataset generators consult it.
type Point struct {
	X, Y float64
	T    float64
}

// Dist returns the Euclidean distance between p and q, ignoring timestamps.
func Dist(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// SqDist returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred primitive in hot loops that only
// compare distances.
func SqDist(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates between p and q with parameter t in [0,1].
// Timestamps are interpolated as well.
func Lerp(p, q Point, t float64) Point {
	return Point{
		X: p.X + (q.X-p.X)*t,
		Y: p.Y + (q.Y-p.Y)*t,
		T: p.T + (q.T-p.T)*t,
	}
}

// Rect is an axis-aligned rectangle (a minimum bounding rectangle when
// derived from data). A Rect is valid when MinX <= MaxX and MinY <= MaxY.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the identity element for Union: a rectangle that
// contains nothing and unions to the other operand.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether r is the empty rectangle (contains no points).
func (r Rect) IsEmpty() bool {
	return r.MinX > r.MaxX || r.MinY > r.MaxY
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Extend returns the smallest rectangle containing r and p.
func (r Rect) Extend(p Point) Rect {
	return r.Union(Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
}

// Area returns the area of r; empty rectangles have area 0.
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Margin returns the half-perimeter of r, used by R-tree split heuristics.
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) + (r.MaxY - r.MinY)
}

// Enlargement returns the area growth of r if it were extended to contain s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Center returns the geometric center of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Expand grows r by d on every side. Negative d shrinks it.
func (r Rect) Expand(d float64) Rect {
	if r.IsEmpty() {
		return r
	}
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// DistToPoint returns the minimum Euclidean distance from p to r
// (0 when p is inside r). This is the d(p, MBR(·)) primitive the adapted
// UCR LB_Keogh lower bound uses.
func (r Rect) DistToPoint(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	dx := 0.0
	if p.X < r.MinX {
		dx = r.MinX - p.X
	} else if p.X > r.MaxX {
		dx = p.X - r.MaxX
	}
	dy := 0.0
	if p.Y < r.MinY {
		dy = r.MinY - p.Y
	} else if p.Y > r.MaxY {
		dy = p.Y - r.MaxY
	}
	return math.Sqrt(dx*dx + dy*dy)
}

// DistToRect returns the minimum Euclidean distance between any point of r
// and any point of s (0 when they intersect). It is the O(1) first stage of
// the subtrajectory lower-bound cascade: with precomputed MBRs it bounds
// every point-to-point distance between the two trajectories from below.
func (r Rect) DistToRect(s Rect) float64 {
	if r.IsEmpty() || s.IsEmpty() {
		return math.Inf(1)
	}
	dx := 0.0
	if s.MaxX < r.MinX {
		dx = r.MinX - s.MaxX
	} else if s.MinX > r.MaxX {
		dx = s.MinX - r.MaxX
	}
	dy := 0.0
	if s.MaxY < r.MinY {
		dy = r.MinY - s.MaxY
	} else if s.MinY > r.MaxY {
		dy = s.MinY - r.MaxY
	}
	return math.Sqrt(dx*dx + dy*dy)
}

// ChebyshevDistToPoint returns the minimum per-axis (L∞) distance from p to
// r: max of the horizontal and vertical gaps, 0 when p is inside r. A point
// can match a trajectory point under an EDR/LCSS tolerance eps only when its
// Chebyshev distance to the trajectory's MBR is at most eps.
func (r Rect) ChebyshevDistToPoint(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	dx := 0.0
	if p.X < r.MinX {
		dx = r.MinX - p.X
	} else if p.X > r.MaxX {
		dx = p.X - r.MaxX
	}
	dy := 0.0
	if p.Y < r.MinY {
		dy = r.MinY - p.Y
	} else if p.Y > r.MaxY {
		dy = p.Y - r.MaxY
	}
	if dy > dx {
		return dy
	}
	return dx
}

// String implements fmt.Stringer for diagnostics.
func (r Rect) String() string {
	return fmt.Sprintf("Rect[%.4g,%.4g - %.4g,%.4g]", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// MBR returns the minimum bounding rectangle of the given points.
func MBR(pts []Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.Extend(p)
	}
	return r
}

// PointSegDist returns the minimum distance from point p to the segment ab.
func PointSegDist(p, a, b Point) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	l2 := abx*abx + aby*aby
	if l2 == 0 {
		return Dist(p, a)
	}
	t := ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return Dist(p, Point{X: a.X + t*abx, Y: a.Y + t*aby})
}

// SegLen returns the Euclidean length of the segment ab.
func SegLen(a, b Point) float64 { return Dist(a, b) }
