package engine

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"simsub/internal/geo"
	"simsub/internal/traj"
)

// cacheKey identifies one full (unpaged) top-k ranking. The generation
// counter is bumped on every bulk load, so results computed against an
// older store version become unreachable and age out of the LRU instead of
// being served stale. Every spec dimension that changes the ranking is
// part of the key — measure/algorithm names and their parameter overrides,
// k, the spatial filter, distinct collapsing, and for the learned searches
// the fingerprint of the policy that computed the ranking — while
// offset/limit are deliberately absent: pages are windows over the cached
// full ranking, so every page of a query hits the same entry.
//
// The policy fingerprint makes hot swaps cache-correct without any
// locking: a query pins the policy it resolved, so a ranking that raced a
// swap is keyed under the old fingerprint, which no post-swap lookup can
// construct — the cache can never serve a ranking computed under a policy
// other than the currently registered one.
type cacheKey struct {
	gen       uint64
	measure   string
	algo      string
	k         int
	params    Params
	filter    geo.Rect
	hasFilter bool
	distinct  bool
	// bound/hasBound key the wire-propagated k-th-best bound: a bounded
	// query's ranking may legitimately omit matches beyond the bound, so
	// it must never be served to a query with a different (or no) bound.
	bound    float64
	hasBound bool
	policy   uint64
	// ANN-prefiltered rankings depend on the candidate budget, the probe
	// width and the encoder that embedded the corpus, so all three are
	// keyed; encoder is the encoder fingerprint (0 = no prefilter),
	// playing the same role for hot encoder swaps as the policy
	// fingerprint does for policy swaps.
	encoder   uint64
	annCands  int
	annProbes int
	digest    uint64
}

// cacheKeyFor derives the ranking's cache key from the query spec, the
// fingerprint of the resolved policy (0 for non-learned algorithms) and
// the fingerprint of the encoder behind the ANN prefilter (0 without one).
func (e *Engine) cacheKeyFor(q Query, policyFP, encoderFP uint64) cacheKey {
	key := cacheKey{
		gen:      e.gen.Load(),
		measure:  q.Measure,
		algo:     q.Algorithm,
		k:        q.K,
		params:   q.Params,
		distinct: q.Distinct,
		policy:   policyFP,
		encoder:  encoderFP,
		digest:   digest(q.Q),
	}
	if q.ANN != nil {
		key.annCands, key.annProbes = q.ANN.Candidates, q.ANN.Probes
	}
	if q.Filter != nil {
		key.hasFilter, key.filter = true, *q.Filter
	}
	if q.Bound != nil {
		key.hasBound, key.bound = true, *q.Bound
	}
	return key
}

// digest fingerprints a query trajectory with FNV-1a over the raw bits of
// its coordinates and timestamps.
func digest(t traj.Trajectory) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range t.Points {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.X))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.Y))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.T))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// resultCache is a mutex-guarded LRU of top-k answers. Cached match slices
// are shared between hits and must be treated as read-only by callers.
// Entries keep the query trajectory itself: the 64-bit digest routes the
// lookup, the point-wise comparison on hit makes a collision (constructible
// for FNV against untrusted queries) a miss instead of a wrong answer.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[cacheKey]*list.Element
}

type cacheEntry struct {
	key   cacheKey
	query traj.Trajectory
	val   []Match
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{cap: capacity, ll: list.New(), items: make(map[cacheKey]*list.Element)}
}

func (c *resultCache) get(k cacheKey, q traj.Trajectory) ([]Match, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok || !el.Value.(*cacheEntry).query.Equal(q) {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *resultCache) put(k cacheKey, q traj.Trajectory, v []Match) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		ent := el.Value.(*cacheEntry)
		ent.query = q
		ent.val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, query: q, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// purge drops every entry. Called on bulk loads: the generation bump makes
// old entries unreachable anyway, so purging frees their LRU slots rather
// than letting dead entries crowd out fresh answers.
func (c *resultCache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}
