package engine

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"simsub/api"
	"simsub/internal/core"
	"simsub/internal/nn"
	"simsub/internal/rl"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// testPolicy builds a deterministic constant-action policy, the same
// construction as core's RLS tests: zeroed weights and a bias bump on the
// chosen action.
func testPolicy(action, k int, useSuffix, simplify bool) *rl.Policy {
	dim := rl.StateDim(useSuffix)
	net := nn.NewMLP([]int{dim, 2, 2 + k}, []nn.Activation{nn.ReLU, nn.Sigmoid}, rand.New(rand.NewSource(1)))
	for _, l := range net.Layers {
		for i := range l.W.W {
			l.W.W[i] = 0
		}
		for i := range l.B.W {
			l.B.W[i] = -5
		}
	}
	net.Layers[len(net.Layers)-1].B.W[action] = 5
	return &rl.Policy{Net: net, K: k, UseSuffix: useSuffix, SimplifyState: simplify}
}

func wantInvalidArgument(t *testing.T, err error, context string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: no error", context)
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeInvalidArgument {
		t.Fatalf("%s: error %v is not a typed invalid_argument", context, err)
	}
}

func TestSetPolicyValidates(t *testing.T) {
	e := New(Config{Shards: 2})
	if _, err := e.SetPolicy(nil); err == nil {
		t.Error("nil policy registered")
	} else {
		wantInvalidArgument(t, err, "nil policy")
	}
	bad := testPolicy(0, 1, false, true)
	bad.K = -3
	_, err := e.SetPolicy(bad)
	wantInvalidArgument(t, err, "negative-K policy")
	if _, ok := e.Policy(); ok {
		t.Fatal("rejected swap left a policy registered")
	}

	info, err := e.SetPolicy(testPolicy(0, 2, false, true))
	if err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	if info.Name != "RLS-Skip+" || info.K != 2 || info.Fingerprint == "" {
		t.Errorf("info = %+v", info)
	}
	got, ok := e.Policy()
	if !ok || got != info {
		t.Errorf("Policy() = %+v, %v; want %+v", got, ok, info)
	}
}

func TestRLSResolutionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	e := New(Config{Shards: 2})
	e.Add(randSet(rng, 10))
	q := Query{Q: randTraj(rng, 5), K: 3, Measure: "dtw", Algorithm: "rls"}

	// no policy loaded: both learned names are typed invalid_argument
	for _, algo := range []string{"rls", "rls-skip"} {
		q.Algorithm = algo
		_, _, err := e.TopK(context.Background(), q)
		wantInvalidArgument(t, err, "no-policy "+algo)
	}
	// package-level resolution can never bind a policy
	_, err := ResolveQuery("dtw", "rls", Params{})
	wantInvalidArgument(t, err, "package-level rls")

	// kind mismatches: a split-only policy cannot serve "rls-skip" and a
	// skip policy cannot serve "rls"
	if _, err := e.SetPolicy(testPolicy(0, 0, true, false)); err != nil {
		t.Fatal(err)
	}
	q.Algorithm = "rls-skip"
	_, _, err = e.TopK(context.Background(), q)
	wantInvalidArgument(t, err, "rls-skip with split-only policy")
	if _, err := e.SetPolicy(testPolicy(0, 3, true, true)); err != nil {
		t.Fatal(err)
	}
	q.Algorithm = "rls"
	_, _, err = e.TopK(context.Background(), q)
	wantInvalidArgument(t, err, "rls with skip policy")

	// parameter scoping holds for the learned searches too
	q.Algorithm = "rls-skip"
	q.Params = Params{POSDelay: 3}
	_, _, err = e.TopK(context.Background(), q)
	wantInvalidArgument(t, err, "pos_delay on rls-skip")
}

// directRLS ranks every trajectory's direct core.RLS answer by the global
// ranking order — the flat reference an engine with ScanAll shards must
// reproduce byte-identically.
func directRLS(ts []traj.Trajectory, alg core.RLS, q traj.Trajectory, k int) []Match {
	all := make([]Match, 0, len(ts))
	for id, dt := range ts {
		all = append(all, Match{TrajID: id, Result: alg.Search(dt, q)})
	}
	sort.Slice(all, func(i, j int) bool {
		return core.RankBefore(all[i].Result.Dist, all[i].TrajID, all[i].Result.Interval,
			all[j].Result.Dist, all[j].TrajID, all[j].Result.Interval)
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func TestEngineRLSMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ts := randSet(rng, 50)
	q := randTraj(rng, 6)
	for _, tc := range []struct {
		algo   string
		policy *rl.Policy
	}{
		{"rls", testPolicy(0, 0, true, false)},
		{"rls", testPolicy(1, 0, true, false)},
		{"rls-skip", testPolicy(2, 2, false, true)},
	} {
		for _, shards := range []int{1, 4} {
			e := New(Config{Shards: shards, Index: ScanAll})
			e.Add(ts)
			if _, err := e.SetPolicy(tc.policy); err != nil {
				t.Fatal(err)
			}
			got, cached, err := e.TopK(context.Background(), Query{
				Q: q, K: 10, Measure: "dtw", Algorithm: tc.algo,
			})
			if err != nil {
				t.Fatal(err)
			}
			if cached {
				t.Fatal("first query reported cached")
			}
			want := directRLS(ts, core.RLS{M: mustMeasure(t, "dtw"), Policy: tc.policy}, q, 10)
			if len(got) != len(want) {
				t.Fatalf("%s shards=%d: %d matches, want %d", tc.algo, shards, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s shards=%d rank %d: got %+v, want %+v", tc.algo, shards, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPolicySwapInvalidatesCache(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	ts := randSet(rng, 40)
	q := randTraj(rng, 6)
	e := New(Config{Shards: 3, Index: ScanAll, CacheSize: 64})
	e.Add(ts)

	never := testPolicy(0, 0, true, false)  // never split
	always := testPolicy(1, 0, true, false) // always split: very different rankings
	if _, err := e.SetPolicy(never); err != nil {
		t.Fatal(err)
	}
	spec := Query{Q: q, K: 8, Measure: "dtw", Algorithm: "rls"}
	first, cached, err := e.TopK(context.Background(), spec)
	if err != nil || cached {
		t.Fatalf("first query: cached=%v err=%v", cached, err)
	}
	_, cached, err = e.TopK(context.Background(), spec)
	if err != nil || !cached {
		t.Fatalf("repeat query: cached=%v err=%v, want a cache hit", cached, err)
	}

	if _, err := e.SetPolicy(always); err != nil {
		t.Fatal(err)
	}
	swapped, cached, err := e.TopK(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("post-swap query served from cache: stale-policy ranking")
	}
	want := directRLS(ts, core.RLS{M: mustMeasure(t, "dtw"), Policy: always}, q, 8)
	for i := range swapped {
		if swapped[i] != want[i] {
			t.Fatalf("post-swap rank %d: got %+v, want %+v", i, swapped[i], want[i])
		}
	}
	// sanity: the two policies actually disagree, so the test proves a swap
	// changes answers rather than comparing identical rankings
	same := len(first) == len(swapped)
	if same {
		for i := range first {
			if first[i] != swapped[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("never-split and always-split rankings coincide; test is vacuous")
	}

	// swapping back must not resurrect the original entry either: the purge
	// freed it and the generation of trust is the fingerprint
	if _, err := e.SetPolicy(never); err != nil {
		t.Fatal(err)
	}
	back, cached, err := e.TopK(context.Background(), spec)
	if err != nil || cached {
		t.Fatalf("swap-back query: cached=%v err=%v", cached, err)
	}
	for i := range back {
		if back[i] != first[i] {
			t.Fatalf("swap-back rank %d: got %+v, want %+v", i, back[i], first[i])
		}
	}
}

// TestConcurrentPolicySwap hammers queries and swaps concurrently: every
// returned ranking must equal one of the two policies' direct rankings
// (never a mixture), with no races under -race.
func TestConcurrentPolicySwap(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ts := randSet(rng, 30)
	q := randTraj(rng, 5)
	e := New(Config{Shards: 2, Index: ScanAll, CacheSize: 32})
	e.Add(ts)

	pols := []*rl.Policy{testPolicy(0, 0, true, false), testPolicy(1, 0, true, false)}
	m := mustMeasure(t, "dtw")
	wants := make([][]Match, len(pols))
	for i, p := range pols {
		wants[i] = directRLS(ts, core.RLS{M: m, Policy: p}, q, 5)
	}
	if _, err := e.SetPolicy(pols[0]); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.SetPolicy(pols[i%2]); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()
	var queriers sync.WaitGroup
	for w := 0; w < 4; w++ {
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			for i := 0; i < 50; i++ {
				got, _, err := e.TopK(context.Background(), Query{Q: q, K: 5, Measure: "dtw", Algorithm: "rls"})
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if !matchesEqual(got, wants[0]) && !matchesEqual(got, wants[1]) {
					t.Errorf("ranking matches neither policy: %+v", got)
					return
				}
			}
		}()
	}
	queriers.Wait()
	close(stop)
	swapper.Wait()
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQualitySampling(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	ts := randSet(rng, 40)
	e := New(Config{Shards: 2, Index: ScanAll, QualitySample: 1})
	e.Add(ts)
	if _, err := e.SetPolicy(testPolicy(2, 1, false, true)); err != nil { // skip policy
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		q := Query{Q: randTraj(rng, 5), K: 5, Measure: "dtw", Algorithm: "rls-skip"}
		if _, _, err := e.TopK(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.RLSQueries != 3 {
		t.Errorf("RLSQueries = %d, want 3", st.RLSQueries)
	}
	if st.QualitySamples != 3 {
		t.Errorf("QualitySamples = %d, want 3", st.QualitySamples)
	}
	if st.ApproxRatio < 1-1e-9 {
		t.Errorf("ApproxRatio = %v, want >= 1 (approximate cannot beat exact)", st.ApproxRatio)
	}
	if st.MeanRank < 1 || st.MeanRank > 6 {
		t.Errorf("MeanRank = %v, want within [1, k+1]", st.MeanRank)
	}
	if st.SkippedFraction <= 0 || st.SkippedFraction >= 1 {
		t.Errorf("SkippedFraction = %v, want in (0, 1) for a constant-skip policy", st.SkippedFraction)
	}
	if !st.PolicyLoaded || st.PolicyName != "RLS-Skip+" || st.PolicyFingerprint == "" {
		t.Errorf("policy stats = %+v", st)
	}

	// sampling off: counters must not move
	e2 := New(Config{Shards: 2, Index: ScanAll})
	e2.Add(ts)
	if _, err := e2.SetPolicy(testPolicy(0, 0, true, false)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e2.TopK(context.Background(), Query{Q: randTraj(rng, 5), K: 5, Measure: "dtw", Algorithm: "rls"}); err != nil {
		t.Fatal(err)
	}
	if st := e2.Stats(); st.QualitySamples != 0 {
		t.Errorf("QualitySamples = %d with sampling disabled", st.QualitySamples)
	}
}

func mustMeasure(t *testing.T, name string) sim.Measure {
	t.Helper()
	m, err := sim.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
