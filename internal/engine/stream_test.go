package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// TestTopKStreamMatchesTopK checks the streaming search's final ranking is
// identical to the blocking TopK for the same query, and that every final
// match was provisionally emitted on its way in.
func TestTopKStreamMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	ts := randSet(rng, 60)
	e := New(Config{Shards: 4, Index: ScanAll})
	e.Add(ts)
	q := Query{Q: randTraj(rng, 6), K: 8, Measure: "dtw", Algorithm: "pss"}

	want, _, err := e.TopK(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []Match
	got, cached, err := e.TopKStream(context.Background(), q, func(m Match) error {
		emitted = append(emitted, m)
		return nil
	})
	if err != nil || cached {
		t.Fatalf("stream: cached=%v err=%v", cached, err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream ranking has %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream rank %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	// every final answer must have streamed out when it entered the top-k
	inEmitted := map[Match]bool{}
	for _, m := range emitted {
		inEmitted[m] = true
	}
	for _, m := range want {
		if !inEmitted[m] {
			t.Fatalf("final match %+v was never emitted", m)
		}
	}
	if len(emitted) < len(want) {
		t.Fatalf("only %d provisional emissions for a %d-deep final ranking", len(emitted), len(want))
	}
}

// TestTopKStreamCacheHit checks a stream served from the LRU emits exactly
// the final page and reports cached.
func TestTopKStreamCacheHit(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	e := New(Config{Shards: 4, Index: ScanAll, CacheSize: 8})
	e.Add(randSet(rng, 30))
	q := Query{Q: randTraj(rng, 5), K: 6, Measure: "dtw", Algorithm: "pss"}

	if _, _, err := e.TopK(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	var emitted []Match
	got, cached, err := e.TopKStream(context.Background(), q, func(m Match) error {
		emitted = append(emitted, m)
		return nil
	})
	if err != nil || !cached {
		t.Fatalf("cached stream: cached=%v err=%v", cached, err)
	}
	if len(emitted) != len(got) {
		t.Fatalf("cache hit emitted %d matches for a %d-match page", len(emitted), len(got))
	}
	for i := range got {
		if emitted[i] != got[i] {
			t.Fatalf("cache-hit emission %d differs from the page", i)
		}
	}
}

// TestTopKStreamEmitError checks an emit failure aborts the search and
// surfaces unchanged.
func TestTopKStreamEmitError(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	e := New(Config{Shards: 4, Index: ScanAll})
	e.Add(randSet(rng, 40))
	boom := errors.New("client went away")
	_, _, err := e.TopKStream(context.Background(),
		Query{Q: randTraj(rng, 5), K: 5, Measure: "dtw", Algorithm: "pss"},
		func(Match) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want the emit error", err)
	}
	if inflight := e.Stats().InFlight; inflight != 0 {
		t.Fatalf("in-flight = %d after aborted stream", inflight)
	}
}
