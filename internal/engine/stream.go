package engine

import (
	"container/heap"
	"context"
	"math"
	"sync"
	"sync/atomic"

	"slices"

	"simsub/api"
	"simsub/internal/core"
	"simsub/internal/failpoint"
)

// publishedKth exposes the stream collector's running global k-th-best
// distance to the shard scanners: the collector (single goroutine, owner of
// the authoritative heap) stores it after every heap change, the scanners
// read it lock-free before each candidate. A wire-propagated bound caps the
// published threshold from the start (see Query.Bound); it is fixed before
// the scanners launch, so reads need no synchronization. It implements
// core.Thresholder.
type publishedKth struct {
	bits  atomic.Uint64
	bound float64
}

// newPublishedKth builds the publisher, initially at bound (+Inf when the
// query carries none).
func newPublishedKth(bound float64) *publishedKth {
	p := &publishedKth{bound: bound}
	p.bits.Store(math.Float64bits(bound))
	return p
}

func (p *publishedKth) set(d float64) {
	if d > p.bound {
		d = p.bound
	}
	p.bits.Store(math.Float64bits(d))
}

// Threshold implements core.Thresholder.
func (p *publishedKth) Threshold() float64 { return math.Float64frombits(p.bits.Load()) }

// streamHeap is a bounded max-heap of the k best matches seen so far,
// ordered by core.RankBefore with the global trajectory ID as identifier —
// the streaming counterpart of core's per-shard topKHeap. Because shards
// order equal-distance matches by shard-local index and global IDs are
// assigned round-robin, the final sorted drain matches mergeTopK's ranking
// exactly.
type streamHeap struct {
	k  int
	ms []Match
}

func rankBefore(a, b Match) bool {
	return core.RankBefore(a.Result.Dist, a.TrajID, a.Result.Interval,
		b.Result.Dist, b.TrajID, b.Result.Interval)
}

func (h *streamHeap) Len() int           { return len(h.ms) }
func (h *streamHeap) Less(i, j int) bool { return rankBefore(h.ms[j], h.ms[i]) }
func (h *streamHeap) Swap(i, j int)      { h.ms[i], h.ms[j] = h.ms[j], h.ms[i] }
func (h *streamHeap) Push(x any)         { h.ms = append(h.ms, x.(Match)) }
func (h *streamHeap) Pop() any {
	m := h.ms[len(h.ms)-1]
	h.ms = h.ms[:len(h.ms)-1]
	return m
}

// offer reports whether m entered the running top-k.
func (h *streamHeap) offer(m Match) bool {
	switch {
	case h.k <= 0:
		return false
	case len(h.ms) < h.k:
		heap.Push(h, m)
		return true
	case rankBefore(m, h.ms[0]):
		h.ms[0] = m
		heap.Fix(h, 0)
		return true
	}
	return false
}

// sorted drains the heap into an ascending ranking.
func (h *streamHeap) sorted() []Match {
	out := make([]Match, len(h.ms))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Match)
	}
	return out
}

// TopKStream answers q like TopK but delivers provisional matches while
// the scan is still running: emit is invoked — always from a single
// goroutine — for every match that enters the running global top-k, so the
// first answers reach the caller long before the last shard finishes. The
// returned slice is the authoritative final ranking, identical to TopK's
// answer for the same query; a provisionally emitted match may be absent
// from it if later candidates displaced it. An emit error aborts the
// search and is returned unchanged. On a cache hit the final page is
// emitted match by match before the call returns.
func (e *Engine) TopKStream(ctx context.Context, q Query, emit func(Match) error) (matches []Match, cached bool, err error) {
	_, page, cached, _, err := e.topKStream(ctx, q, emit)
	return page, cached, err
}

// topKStream is TopKStream also returning the full (unpaged) ranking and
// the degradation marker when the overload-resilience plan substituted a
// cheaper algorithm.
func (e *Engine) topKStream(ctx context.Context, q Query, emit func(Match) error) (full, page []Match, cached bool, deg *api.Degraded, err error) {
	if aerr := e.validateQuery(q); aerr != nil {
		return nil, nil, false, nil, aerr
	}
	alg, policyFP, err := e.resolveAlg(q.Measure, q.Algorithm, q.Params)
	if err != nil {
		return nil, nil, false, nil, err
	}
	ent, aerr := e.annCheck(q)
	if aerr != nil {
		return nil, nil, false, nil, aerr
	}
	var encFP uint64
	if ent != nil {
		encFP = ent.fp
		e.annQueries.Add(1)
	}
	e.queries.Add(1)
	if _, ok := alg.(core.RLS); ok {
		e.rlsQueries.Add(1)
	}
	e.inflight.Add(1)
	defer e.inflight.Add(-1)

	var key cacheKey
	cacheGet := func() (f, p []Match, hit bool, herr error) {
		ms, ok := e.cache.get(key, q.Q)
		if !ok {
			return nil, nil, false, nil
		}
		e.hits.Add(1)
		page := pageOf(ms, q.Offset, q.Limit)
		for _, m := range page {
			if err := emit(m); err != nil {
				return nil, nil, true, err
			}
		}
		return ms, page, true, nil
	}
	if e.cache != nil {
		key = e.cacheKeyFor(q, policyFP, encFP)
		if f, p, hit, herr := cacheGet(); hit {
			return f, p, herr == nil, nil, herr
		}
		e.misses.Add(1)
	}

	rel, deg, aerr := e.planAdmit(ctx, &q)
	if aerr != nil {
		return nil, nil, false, nil, aerr
	}
	defer rel()
	if deg != nil {
		// the plan substituted a cheaper algorithm: rebind it and retry the
		// cache under the rewritten query's key
		alg, policyFP, err = e.resolveAlg(q.Measure, q.Algorithm, q.Params)
		if err != nil {
			return nil, nil, false, nil, err
		}
		if e.cache != nil {
			key = e.cacheKeyFor(q, policyFP, encFP)
			if f, p, hit, herr := cacheGet(); hit {
				if herr != nil {
					return nil, nil, false, nil, herr
				}
				return f, p, true, deg, nil
			}
		}
	}

	// Shard scanners funnel every candidate's match into one channel; the
	// collector (this goroutine) maintains the running global top-k and
	// emits each match the moment it enters — no per-shard completion
	// barrier between a candidate being searched and its match streaming
	// out.
	scanCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan Match, 64)
	bound := math.Inf(1)
	if q.Bound != nil {
		bound = *q.Bound
	}
	kth := newPublishedKth(bound)
	// the ANN prefilter state, shared by every shard scanner (see scatter)
	var annq *annQuery
	if q.ANN != nil && ent != nil {
		annq = e.annQueryFor(ent, q)
	}
	stats := make([]core.PruneStats, len(e.shards))
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i, s := range e.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			select {
			case e.sem <- struct{}{}:
				defer func() { <-e.sem }()
			case <-scanCtx.Done():
				errs[i] = scanCtx.Err()
				return
			}
			if ferr := failpoint.InjectCtx(scanCtx, "engine/scan"); ferr != nil {
				errs[i] = ferr
				return
			}
			db, ix := s.view()
			if db == nil {
				return
			}
			var src core.CandidateSource
			if annq != nil && ix != nil {
				src = annSource{db: db, ix: ix, q: annq}
			}
			errs[i] = db.ScanPrunedSourceCtx(scanCtx, alg, q.Q, q.Filter, kth, &stats[i], src, func(m core.Match) error {
				gm := Match{TrajID: db.Traj(m.TrajIndex).ID, Result: m.Result}
				select {
				case ch <- gm:
					return nil
				case <-scanCtx.Done():
					return scanCtx.Err()
				}
			})
		}(i, s)
	}
	go func() { wg.Wait(); close(ch) }()

	h := streamHeap{k: q.K}
	var emitErr error
	for m := range ch {
		if emitErr != nil {
			continue // drain so the cancelled shard senders can exit
		}
		if h.offer(m) {
			if len(h.ms) == h.k {
				kth.set(h.ms[0].Result.Dist)
			}
			if err := emit(m); err != nil {
				emitErr = err
				cancel()
			}
		}
	}
	if emitErr != nil {
		return nil, nil, false, nil, emitErr
	}
	for _, serr := range errs {
		if serr != nil {
			return nil, nil, false, nil, serr
		}
	}
	var prune core.PruneStats
	for i := range stats {
		prune.Add(stats[i])
	}
	e.recordPrune(prune)
	merged := h.sorted()
	if q.Distinct {
		merged = e.collapseDuplicates(merged)
	}
	// same stable-store condition as topK — see the seqlock in Add
	if e.cache != nil && key.gen%2 == 0 && e.gen.Load() == key.gen {
		e.cache.put(key, q.Q, slices.Clone(merged))
	}
	return merged, pageOf(merged, q.Offset, q.Limit), false, deg, nil
}
