package engine

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"simsub/internal/core"
	"simsub/internal/nn"
	"simsub/internal/rl"
)

// statePolicy builds a policy with random (DQN-initialization) weights, so
// its actions depend on the state and batched lanes genuinely diverge.
func statePolicy(seed int64, k int, useSuffix, simplify bool) *rl.Policy {
	dim := rl.StateDim(useSuffix)
	net := nn.NewMLP([]int{dim, 8, 2 + k}, []nn.Activation{nn.ReLU, nn.Sigmoid}, rand.New(rand.NewSource(seed)))
	return &rl.Policy{Net: net, K: k, UseSuffix: useSuffix, SimplifyState: simplify}
}

// TestEngineBatchedMatchesSequential is the serving-level equivalence
// matrix: the engine's scatter over batched lockstep shard scans must return
// the same ranking as the sequential configuration and as the flat direct
// reference, across shard counts, lane widths and policy kinds.
func TestEngineBatchedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	ts := randSet(rng, 60)
	q := randTraj(rng, 6)
	for _, tc := range []struct {
		algo   string
		policy *rl.Policy
	}{
		{"rls", statePolicy(1, 0, true, false)},
		{"rls-skip", statePolicy(2, 3, true, true)},
		{"rls-skip", statePolicy(3, 3, false, true)},
	} {
		want := directRLS(ts, core.RLS{M: mustMeasure(t, "dtw"), Policy: tc.policy}, q, 10)
		for _, shards := range []int{1, 3} {
			for _, lanes := range []int{1, 7, 64} {
				e := New(Config{Shards: shards, Index: ScanAll, BatchLanes: lanes})
				e.Add(ts)
				if _, err := e.SetPolicy(tc.policy); err != nil {
					t.Fatal(err)
				}
				got, _, err := e.TopK(context.Background(), Query{
					Q: q, K: 10, Measure: "dtw", Algorithm: tc.algo,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !matchesEqual(got, want) {
					t.Fatalf("%s shards=%d lanes=%d: batched ranking diverges from direct reference\ngot  %+v\nwant %+v",
						tc.algo, shards, lanes, got, want)
				}
			}
		}
	}
}

// TestSetPolicyCompiledServesTable registers a compiled table policy and
// checks the whole serving contract: the info and stats surfaces report the
// table, queries answer through it byte-identically to a direct table-backed
// search, and compiling (or recompiling) shifts the serving fingerprint so
// cached network-path rankings cannot be served from the table path.
func TestSetPolicyCompiledServesTable(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	ts := randSet(rng, 40)
	q := randTraj(rng, 5)
	p := statePolicy(4, 2, true, true)
	e := New(Config{Shards: 2, Index: ScanAll, CacheSize: 32})
	e.Add(ts)

	plain, err := e.SetPolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Compiled || plain.CompiledFingerprint != "" {
		t.Fatalf("uncompiled registration reports a table: %+v", plain)
	}
	spec := Query{Q: q, K: 8, Measure: "dtw", Algorithm: "rls-skip"}
	if _, cached, err := e.TopK(context.Background(), spec); err != nil || cached {
		t.Fatalf("first query: cached=%v err=%v", cached, err)
	}
	if _, cached, err := e.TopK(context.Background(), spec); err != nil || !cached {
		t.Fatalf("repeat query: cached=%v err=%v, want a cache hit", cached, err)
	}

	info, err := e.SetPolicyCompiled(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Compiled || info.CompileResolution != 8 || info.CompiledFingerprint == "" {
		t.Fatalf("compiled registration info = %+v", info)
	}
	if info.Fingerprint == plain.Fingerprint {
		t.Fatal("compiling the table did not change the serving fingerprint")
	}
	st := e.Stats()
	if !st.PolicyCompiled || st.PolicyCompileResolution != 8 ||
		st.PolicyCompiledFingerprint != info.CompiledFingerprint ||
		st.PolicyCompileDivergence != info.CompileDivergence {
		t.Fatalf("stats do not mirror the compiled registration: %+v", st)
	}

	// the network-path cache entry is unreachable now: the query recomputes
	// through the table and matches a direct table-backed search
	got, cached, err := e.TopK(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("post-compile query served a network-path ranking from cache")
	}
	table, err := rl.Compile(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := directRLS(ts, core.RLS{M: mustMeasure(t, "dtw"), Policy: p, Table: table}, q, 8)
	if !matchesEqual(got, want) {
		t.Fatalf("table-served ranking diverges from direct table search\ngot  %+v\nwant %+v", got, want)
	}

	// recompiling at another resolution moves the fingerprint again
	re, err := e.SetPolicyCompiled(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	if re.Fingerprint == info.Fingerprint {
		t.Fatal("recompiling at another resolution kept the serving fingerprint")
	}
	// and a failed compile leaves the current registration untouched
	if _, err := e.SetPolicyCompiled(p, 1); err == nil {
		t.Fatal("resolution below the minimum compiled")
	} else {
		wantInvalidArgument(t, err, "resolution below minimum")
	}
	if cur, ok := e.Policy(); !ok || cur != re {
		t.Fatalf("failed compile disturbed the registration: %+v ok=%v", cur, ok)
	}
}

// TestConcurrentCompiledPolicySwap hammers batched queries against swaps
// that alternate the same policy between network and compiled-table serving:
// every ranking must equal the policy's direct answer (the table is exact
// for a constant policy), with no races under -race.
func TestConcurrentCompiledPolicySwap(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ts := randSet(rng, 30)
	q := randTraj(rng, 5)
	e := New(Config{Shards: 2, Index: ScanAll, CacheSize: 32, BatchLanes: 8})
	e.Add(ts)

	pols := []*rl.Policy{testPolicy(0, 0, true, false), testPolicy(1, 0, true, false)}
	m := mustMeasure(t, "dtw")
	wants := make([][]Match, len(pols))
	for i, p := range pols {
		wants[i] = directRLS(ts, core.RLS{M: m, Policy: p}, q, 5)
	}
	if _, err := e.SetPolicy(pols[0]); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// alternate policy AND serving mode: table one round, network
			// the next (a constant policy's table is exact, so the answer
			// set stays two-valued)
			res := 0
			if i%2 == 0 {
				res = 8
			}
			if _, err := e.SetPolicyCompiled(pols[i%2], res); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()
	var queriers sync.WaitGroup
	for w := 0; w < 4; w++ {
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			for i := 0; i < 50; i++ {
				got, _, err := e.TopK(context.Background(), Query{Q: q, K: 5, Measure: "dtw", Algorithm: "rls"})
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if !matchesEqual(got, wants[0]) && !matchesEqual(got, wants[1]) {
					t.Errorf("ranking matches neither policy: %+v", got)
					return
				}
			}
		}()
	}
	queriers.Wait()
	close(stop)
	swapper.Wait()
}
