package engine

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"simsub/api"
	"simsub/internal/ann"
	"simsub/internal/core"
	"simsub/internal/geo"
	"simsub/internal/t2vec"
	"simsub/internal/traj"
)

// This file is the encoder registry: the serving home of the t2vec
// embedding stack, structured exactly like the policy registry (policy.go).
// An engine holds at most one trajectory encoder, loaded at construction
// (cmd/simsubd -encoder) or hot-swapped at runtime (POST /v2/admin/encoder
// → SetEncoder). The encoder powers two query surfaces:
//
//   - measure "t2vec" + algorithm "embed": pure embedding ranking
//     (core.EmbedRank) — every data trajectory scored by the Euclidean
//     distance of its stored embedding to the query's, no DP at all;
//   - the ann prefilter on any measure: the per-shard LSH index proposes a
//     coarse candidate set by embedding distance (Query.ANN) and the exact
//     lower-bound cascade reranks it, so retained matches carry distances
//     byte-identical to scoring those candidates directly.
//
// Swap correctness mirrors the policy registry: the encoder pointer is
// read once per query, the fingerprint is folded into the result-cache key
// (cacheKey.encoder / the fp slot for "embed"), and SetEncoder bumps the
// store-generation seqlock while it re-embeds, so a ranking that raced a
// swap can never enter the cache.

// encoderEntry pins one immutable (model, fingerprint) pair.
type encoderEntry struct {
	model *t2vec.Model
	fp    uint64
}

// EncoderInfo describes the engine's currently registered encoder.
type EncoderInfo struct {
	// Dim is the embedding dimensionality.
	Dim int
	// Grid is the token-grid resolution (0 for coordinate-input encoders).
	Grid int
	// Fingerprint is the hex content hash of the serialized encoder; it
	// changes on every swap and is part of the result-cache key. The
	// router verifies fleet-wide agreement on it after a broadcast swap.
	Fingerprint string
}

// EncoderFingerprint content-hashes an encoder (FNV-1a over its serialized
// form): two encoders embed identically whenever their fingerprints match,
// so the fingerprint is a sound cache-key component and a sound
// skip-re-encoding check during recovery.
func EncoderFingerprint(m *t2vec.Model) (uint64, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return h.Sum64(), nil
}

func encoderInfoFor(ent *encoderEntry) EncoderInfo {
	return EncoderInfo{
		Dim:         ent.model.Dim(),
		Grid:        ent.model.Grid(),
		Fingerprint: fmt.Sprintf("%016x", ent.fp),
	}
}

// SetEncoder validates and registers a trajectory encoder, making the
// "embed" algorithm and the ann prefilter servable, then re-embeds every
// stored trajectory under it and rebuilds each shard's LSH index. With a
// persistent store attached the fresh embeddings are recorded against it,
// so the next snapshot persists them and recovery under the same encoder
// skips re-encoding. Swapping purges the result cache. Invalid encoders
// are rejected with a typed invalid_argument error and leave the current
// registration untouched.
func (e *Engine) SetEncoder(m *t2vec.Model) (EncoderInfo, error) {
	if m == nil {
		return EncoderInfo{}, api.Errorf(api.CodeInvalidArgument, "nil encoder")
	}
	if m.Dim() <= 0 {
		return EncoderInfo{}, api.Errorf(api.CodeInvalidArgument, "encoder has embedding dimension %d, want > 0", m.Dim())
	}
	fp, err := EncoderFingerprint(m)
	if err != nil {
		return EncoderInfo{}, api.Errorf(api.CodeInvalidArgument, "fingerprinting encoder: %v", err)
	}
	ent := &encoderEntry{model: m, fp: fp}
	e.addMu.Lock()
	defer e.addMu.Unlock()
	// seqlock: queries racing the swap observe a changed generation and
	// skip the cache put — see the matching check in topK
	e.gen.Add(1)
	defer e.gen.Add(1)
	e.encoder.Store(ent)
	st := e.store.Load()
	nshards := len(e.shards)
	for si, s := range e.shards {
		embs := s.reembed(ent)
		if st != nil {
			for li, emb := range embs {
				st.SetEmbedding(li*nshards+si, fp, emb)
			}
		}
	}
	e.cache.purge()
	return encoderInfoFor(ent), nil
}

// Encoder returns the registered encoder's description; ok is false when
// none is loaded.
func (e *Engine) Encoder() (EncoderInfo, bool) {
	ent := e.encoder.Load()
	if ent == nil {
		return EncoderInfo{}, false
	}
	return encoderInfoFor(ent), true
}

// EncoderModel returns the registered encoder model itself (nil when none
// is loaded); the admin surface uses it to re-serialize the encoder for
// broadcast.
func (e *Engine) EncoderModel() *t2vec.Model {
	ent := e.encoder.Load()
	if ent == nil {
		return nil
	}
	return ent.model
}

// annQuery is the per-query ANN prefilter state handed to each shard: the
// query embedding (computed once), the per-shard candidate budget and the
// multi-probe width.
type annQuery struct {
	qEmb   []float64
	want   int
	probes int
}

// annQueryFor derives the per-shard prefilter state, splitting the query's
// total candidate budget evenly across shards (rounding up, so the global
// budget is a floor — every shard contributes, mirroring how the exact
// scan's top-k merge draws from every shard).
func (e *Engine) annQueryFor(ent *encoderEntry, q Query) *annQuery {
	n := len(e.shards)
	return &annQuery{
		qEmb:   ent.model.QueryEmbedding(q.Q),
		want:   (q.ANN.Candidates + n - 1) / n,
		probes: q.ANN.Probes,
	}
}

// annSource adapts one shard's LSH index to core.CandidateSource: the
// index proposes its embedding-nearest `want` members, restricted to the
// query's region filter. The exact cascade downstream reranks whatever
// comes back, so the only approximation is which trajectories are absent.
type annSource struct {
	db *core.Database
	ix *ann.Index
	q  *annQuery
}

func (s annSource) Candidates(q traj.Trajectory, filter *geo.Rect) []int {
	ids := s.ix.Search(s.q.qEmb, s.q.want, s.q.probes)
	if filter == nil {
		return ids
	}
	out := ids[:0]
	for _, ci := range ids {
		if s.db.Meta(ci).MBR.Intersects(*filter) {
			out = append(out, ci)
		}
	}
	return out
}

// annCheck resolves the encoder entry an ANN-prefiltered query needs; nil
// entry (with nil error) for queries without the prefilter.
func (e *Engine) annCheck(q Query) (*encoderEntry, *api.Error) {
	if q.ANN == nil {
		return nil, nil
	}
	ent := e.encoder.Load()
	if ent == nil {
		return nil, api.Errorf(api.CodeInvalidArgument,
			"ann prefilter requires a registered encoder (start with -encoder or POST /v2/admin/encoder)")
	}
	return ent, nil
}

// recallTracker accumulates the sampled ANN recall telemetry: for a
// sampled fraction of ANN-prefiltered queries the engine reruns the same
// search without the prefilter and records the top-k overlap (recall@k).
type recallTracker struct {
	mu        sync.Mutex
	rng       *rand.Rand
	samples   int64
	recallSum float64
}

// sampled rolls the per-query sampling decision at the given rate.
func (t *recallTracker) sampled(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(1))
	}
	return t.rng.Float64() < rate
}

func (t *recallTracker) record(recall float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples++
	t.recallSum += recall
}

func (t *recallTracker) snapshot() (samples int64, mean float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.samples > 0 {
		mean = t.recallSum / float64(t.samples)
	}
	return t.samples, mean
}

// sampleRecall scores one served ANN-prefiltered ranking against the
// exhaustive-candidate ranking of the same algorithm (for algorithm
// "exacts" this is literally recall@k vs ExactS): the fraction of the
// exact top-k's trajectory IDs the prefiltered ranking retained. The same
// generation checks as sampleQuality drop samples that raced a load, so a
// mixed-snapshot comparison never poisons the lifetime aggregate.
func (e *Engine) sampleRecall(ctx context.Context, q Query, alg core.Algorithm, approx []Match, gen uint64) {
	if gen%2 != 0 || e.gen.Load() != gen {
		return
	}
	exactQ := q
	exactQ.ANN = nil
	exact, _, err := e.scatter(ctx, alg, exactQ)
	if err != nil || e.gen.Load() != gen {
		return
	}
	if len(exact) == 0 {
		e.recall.record(1)
		return
	}
	in := make(map[int]bool, len(approx))
	for _, m := range approx {
		in[m.TrajID] = true
	}
	hit := 0
	for _, m := range exact {
		if in[m.TrajID] {
			hit++
		}
	}
	e.recall.record(float64(hit) / float64(len(exact)))
}
