package engine

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"simsub/api"
)

// Wire-propagated bound seeding (QuerySpec.Bound): a trusted upper bound
// on the final global k-th-best must seed the shared threshold without
// changing the ranking — the distributed coordinator's correctness rests
// on both halves.

// TestBoundSeedsThresholdKeepsRanking checks a query carrying its own
// exact k-th-best distance as the bound returns the byte-identical
// ranking, and that the seed does real pruning work (lb_skipped > 0 on a
// fresh engine, at least as much as the unseeded scan).
func TestBoundSeedsThresholdKeepsRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ts := pruneData(400, 12, 72)
	q := randTraj(rng, 6)

	for _, algo := range []string{"exacts", "pss"} {
		spec := api.QuerySpec{Query: api.FromTraj(q), K: 20, Algorithm: algo}

		baseline := New(Config{Shards: 4, Index: ScanAll})
		baseline.Add(ts)
		want := baseline.QueryOne(context.Background(), spec)
		if want.Error != nil {
			t.Fatalf("%s: unbounded query failed: %v", algo, want.Error)
		}
		if len(want.Matches) != spec.K {
			t.Fatalf("%s: unbounded ranking has %d matches, want %d", algo, len(want.Matches), spec.K)
		}
		kth := want.Matches[len(want.Matches)-1].Dist

		bounded := New(Config{Shards: 4, Index: ScanAll})
		bounded.Add(ts)
		bspec := spec
		bspec.Bound = &kth
		got := bounded.QueryOne(context.Background(), bspec)
		if got.Error != nil {
			t.Fatalf("%s: bounded query failed: %v", algo, got.Error)
		}
		if !reflect.DeepEqual(got.Matches, want.Matches) || got.Total != want.Total {
			t.Fatalf("%s: bound changed the ranking\ngot  %+v\nwant %+v", algo, got.Matches, want.Matches)
		}
		bst, ust := bounded.Stats(), baseline.Stats()
		if bst.LBSkipped == 0 {
			t.Errorf("%s: seeded bound skipped no candidates", algo)
		}
		if bst.LBSkipped < ust.LBSkipped {
			t.Errorf("%s: seeded scan skipped %d candidates, unseeded skipped %d — the seed must not lose pruning",
				algo, bst.LBSkipped, ust.LBSkipped)
		}
	}
}

// TestBoundRejected checks the wire boundary: a non-finite or negative
// bound is a typed invalid_argument, not a poisoned threshold.
func TestBoundRejected(t *testing.T) {
	eng := New(Config{Shards: 2, Index: ScanAll})
	eng.Add(pruneData(30, 10, 73))
	rng := rand.New(rand.NewSource(74))
	for _, b := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		bound := b
		res := eng.QueryOne(context.Background(), api.QuerySpec{
			Query: api.FromTraj(randTraj(rng, 5)), K: 3, Bound: &bound,
		})
		if res.Error == nil || res.Error.Code != api.CodeInvalidArgument {
			t.Errorf("bound %v: got %v, want invalid_argument", b, res.Error)
		}
	}
}

// TestBoundKeysResultCache checks a bounded ranking is never served to a
// differently-bounded (or unbounded) query: an overly tight bound
// legitimately truncates the ranking, and that truncation must not leak
// through the LRU.
func TestBoundKeysResultCache(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	ts := pruneData(120, 10, 76)
	q := randTraj(rng, 6)
	spec := api.QuerySpec{Query: api.FromTraj(q), K: 10}

	eng := New(Config{Shards: 2, Index: ScanAll, CacheSize: 16})
	eng.Add(ts)
	tight := 0.0
	tspec := spec
	tspec.Bound = &tight
	truncated := eng.QueryOne(context.Background(), tspec)
	if truncated.Error != nil {
		t.Fatalf("tight-bound query failed: %v", truncated.Error)
	}

	full := eng.QueryOne(context.Background(), spec)
	if full.Error != nil {
		t.Fatalf("unbounded query failed: %v", full.Error)
	}
	if full.Cached {
		t.Fatal("unbounded query was served from the bounded query's cache entry")
	}
	if len(full.Matches) != spec.K {
		t.Fatalf("unbounded ranking has %d matches, want %d (bounded truncation leaked?)", len(full.Matches), spec.K)
	}
	if len(truncated.Matches) >= len(full.Matches) {
		t.Fatalf("bound 0 did not truncate (%d vs %d matches) — the cache-isolation check proves nothing",
			len(truncated.Matches), len(full.Matches))
	}
}
