package engine

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"simsub/api"
	"simsub/internal/storage"
	"simsub/internal/traj"
)

// buildCrashedStore writes ts into a fresh store under dir the way a live
// node would — batched appends with a metadata snapshot midway — and then
// abandons the store WITHOUT Close, as a kill -9 would: no final snapshot,
// no fsync of the active segment. The returned store must not be used.
func buildCrashedStore(t *testing.T, dir string, ts []traj.Trajectory) {
	t.Helper()
	st, _, err := storage.Open(dir, storage.Options{SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 100
	for i := 0; i < len(ts); i += batch {
		end := min(i+batch, len(ts))
		if _, err := st.Append(ts[i:end]); err != nil {
			t.Fatal(err)
		}
		if end == 6*batch { // a snapshot partway through the corpus
			if err := st.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// no Close: the crash leaves whatever the page cache holds
}

func storeFiles(t *testing.T, dir, pattern string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	return names
}

// TestEngineAttachStoreRoundTrip drives the durable write path the way
// simsubd does: attach an empty store, load through Engine.Add (which
// appends to the log before making trajectories searchable), shut down
// cleanly, then recover into a fresh engine and check the corpus and a
// ranking survived intact.
func TestEngineAttachStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ts := randSet(rng, 200)
	q := randTraj(rng, 7)
	spec := api.QuerySpec{Query: api.FromTraj(q), K: 10}
	dir := t.TempDir()

	st, rs, err := storage.Open(dir, storage.Options{SegmentBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Records != 0 {
		t.Fatalf("fresh dir recovered %d records", rs.Records)
	}
	e := New(Config{Shards: 3, Index: ScanAll})
	if err := e.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	ids, err := e.Add(ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("engine assigned id %d at position %d; store ids must stay dense", id, i)
		}
	}
	want := e.QueryOne(context.Background(), spec)
	if want.Error != nil {
		t.Fatal(want.Error)
	}
	if err := st.Close(); err != nil { // graceful shutdown: final snapshot + fsync
		t.Fatal(err)
	}

	st2, rs2, err := storage.Open(dir, storage.Options{SegmentBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rs2.Records != len(ts) {
		t.Fatalf("recovered %d records, want %d", rs2.Records, len(ts))
	}
	if rs2.Replayed != 0 {
		t.Errorf("clean shutdown still replayed %d records; the final snapshot should cover everything", rs2.Replayed)
	}
	e2 := New(Config{Shards: 3, Index: ScanAll})
	if err := e2.AttachStore(st2); err != nil {
		t.Fatal(err)
	}
	if e2.Len() != len(ts) {
		t.Fatalf("recovered engine holds %d trajectories, want %d", e2.Len(), len(ts))
	}
	got := e2.QueryOne(context.Background(), spec)
	if got.Error != nil {
		t.Fatal(got.Error)
	}
	if got.Total != want.Total || !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Fatalf("recovered ranking diverges:\n got: %+v\nwant: %+v", got.Matches, want.Matches)
	}

	// attaching to a non-empty engine or double-attaching must be rejected
	if err := e2.AttachStore(st2); err == nil {
		t.Error("double AttachStore accepted")
	}
}

// TestCrashRecoveryRankingsByteIdentical is the durability property test:
// whatever prefix of the corpus survives a crash — torn tail record, torn
// snapshot, missing snapshot — the recovered engine must serve rankings
// byte-identical to a never-crashed in-memory engine holding that same
// prefix, across dtw/frechet × exacts/pss.
func TestCrashRecoveryRankingsByteIdentical(t *testing.T) {
	const nTraj = 1000
	rng := rand.New(rand.NewSource(70))
	ts := randSet(rng, nTraj)
	queries := []traj.Trajectory{randTraj(rng, 6), randTraj(rng, 9)}

	// corrupt mutates the crashed store's files; it returns a short note
	// checked against the recovery stats.
	type scenario struct {
		name    string
		corrupt func(t *testing.T, dir string, rng *rand.Rand)
		check   func(t *testing.T, rs *storage.RecoveryStats, n int)
	}
	scenarios := []scenario{
		{
			name: "torn-tail-record",
			corrupt: func(t *testing.T, dir string, rng *rand.Rand) {
				segs := storeFiles(t, dir, "seg-*.log")
				last := segs[len(segs)-1]
				info, err := os.Stat(last)
				if err != nil {
					t.Fatal(err)
				}
				// cut the active segment at an arbitrary byte offset
				off := rng.Int63n(info.Size())
				if err := os.Truncate(last, off); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, rs *storage.RecoveryStats, n int) {
				if n == nTraj && rs.TornTailTruncations == 0 {
					t.Error("cut segment recovered the full corpus with no truncation recorded")
				}
			},
		},
		{
			name: "torn-snapshot",
			corrupt: func(t *testing.T, dir string, rng *rand.Rand) {
				snaps := storeFiles(t, dir, "snap-*.snap")
				if len(snaps) == 0 {
					t.Fatal("crashed store wrote no snapshot")
				}
				last := snaps[len(snaps)-1]
				info, err := os.Stat(last)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(last, info.Size()/2); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, rs *storage.RecoveryStats, n int) {
				if rs.SnapshotsDiscarded == 0 {
					t.Error("torn snapshot not discarded")
				}
				if n != nTraj {
					t.Errorf("log was intact but only %d of %d records recovered", n, nTraj)
				}
			},
		},
		{
			name: "missing-snapshot",
			corrupt: func(t *testing.T, dir string, rng *rand.Rand) {
				for _, snap := range storeFiles(t, dir, "snap-*.snap") {
					if err := os.Remove(snap); err != nil {
						t.Fatal(err)
					}
				}
			},
			check: func(t *testing.T, rs *storage.RecoveryStats, n int) {
				if rs.Replayed != nTraj {
					t.Errorf("replayed %d records, want all %d", rs.Replayed, nTraj)
				}
				if n != nTraj {
					t.Errorf("log was intact but only %d of %d records recovered", n, nTraj)
				}
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			buildCrashedStore(t, dir, ts)
			sc.corrupt(t, dir, rng)

			st, rs, err := storage.Open(dir, storage.Options{SegmentBytes: 64 << 10})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer st.Close()
			n := st.Len()
			sc.check(t, rs, n)
			if n == 0 {
				t.Fatal("recovery kept nothing")
			}

			recovered := New(Config{Shards: 3, Index: ScanAll})
			if err := recovered.AttachStore(st); err != nil {
				t.Fatal(err)
			}
			fresh := New(Config{Shards: 3, Index: ScanAll})
			if _, err := fresh.Add(ts[:n]); err != nil {
				t.Fatal(err)
			}

			for _, measure := range []string{"dtw", "frechet"} {
				for _, algo := range []string{"exacts", "pss"} {
					for qi, q := range queries {
						spec := api.QuerySpec{
							Query: api.FromTraj(q), K: 10,
							Measure: measure, Algorithm: algo,
						}
						got := recovered.QueryOne(context.Background(), spec)
						want := fresh.QueryOne(context.Background(), spec)
						if got.Error != nil || want.Error != nil {
							t.Fatalf("%s/%s q%d: errors %v / %v", measure, algo, qi, got.Error, want.Error)
						}
						if got.Total != want.Total || !reflect.DeepEqual(got.Matches, want.Matches) {
							t.Errorf("%s/%s q%d: recovered ranking diverges from never-crashed engine\n got: %+v\nwant: %+v",
								measure, algo, qi, got.Matches, want.Matches)
						}
					}
				}
			}
		})
	}
}
