package engine

import (
	"context"
	"math"
	"sync"
	"time"

	"simsub/api"
	"simsub/internal/core"
	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

// This file adapts the engine onto the api package's versioned wire types:
// *Engine satisfies api.Searcher (batched queries) and api.StreamSearcher
// (incremental match delivery), the same interfaces the HTTP client
// implements, so in-process and remote search are interchangeable.

var (
	_ api.Searcher       = (*Engine)(nil)
	_ api.StreamSearcher = (*Engine)(nil)
)

// QueryFromSpec validates a wire spec and converts it into an engine
// query, filling in the default measure and algorithm names.
func QueryFromSpec(spec api.QuerySpec) (Query, *api.Error) {
	spec = spec.WithDefaults()
	t, aerr := spec.Query.ToTraj()
	if aerr != nil {
		return Query{}, aerr
	}
	var filter *geo.Rect
	if spec.Filter != nil {
		if aerr := spec.Filter.Validate(); aerr != nil {
			return Query{}, aerr
		}
		r := spec.Filter.Geo()
		filter = &r
	}
	if aerr := spec.ValidateBound(); aerr != nil {
		return Query{}, aerr
	}
	if aerr := spec.ValidateANN(); aerr != nil {
		return Query{}, aerr
	}
	var ann *ANNParams
	if spec.ANN != nil {
		ann = &ANNParams{Candidates: spec.ANN.Candidates, Probes: spec.ANN.Probes}
	}
	return Query{
		Q:         t,
		K:         spec.K,
		Measure:   spec.Measure,
		Algorithm: spec.Algorithm,
		Params: Params{
			EDREps:   spec.EDREps,
			LCSSEps:  spec.LCSSEps,
			CDTWBand: spec.CDTWBand,
			POSDelay: spec.POSDelay,
		},
		Bound:         spec.Bound,
		ANN:           ann,
		Filter:        filter,
		AllowDegraded: spec.AllowDegraded,
		Distinct:      spec.Distinct,
		Offset:        spec.Offset,
		Limit:         spec.Limit,
	}, nil
}

// MatchToAPI converts an engine match to wire form.
func MatchToAPI(m Match) api.Match {
	return api.Match{
		TrajID:   m.TrajID,
		Start:    m.Result.Interval.I,
		End:      m.Result.Interval.J,
		Dist:     m.Result.Dist,
		Sim:      sim.Sim(m.Result.Dist),
		Explored: m.Result.Explored,
	}
}

// MatchFromAPI converts a wire match back to engine form (the inverse of
// MatchToAPI up to the derived Sim field). The distributed coordinator uses
// it to run per-node wire rankings through MergeTopK.
func MatchFromAPI(m api.Match) Match {
	return Match{
		TrajID: m.TrajID,
		Result: core.Result{
			Interval: traj.Interval{I: m.Start, J: m.End},
			Dist:     m.Dist,
			Explored: m.Explored,
		},
	}
}

// MatchesToAPI converts a ranking to wire form (never nil, so JSON
// renders an empty array rather than null).
func MatchesToAPI(ms []Match) []api.Match {
	out := make([]api.Match, len(ms))
	for i, m := range ms {
		out[i] = MatchToAPI(m)
	}
	return out
}

func tookMS(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// timeoutContext tightens ctx by ms milliseconds when positive. The
// comparison-free clamp keeps an absurd ms from overflowing the duration
// multiply into an already-expired deadline.
func timeoutContext(ctx context.Context, ms int) (context.Context, context.CancelFunc) {
	if ms <= 0 {
		return context.WithCancel(ctx)
	}
	maxMS := int(math.MaxInt64 / int64(time.Millisecond))
	if ms > maxMS {
		ms = maxMS
	}
	return context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
}

// QueryOne answers a single spec; failures land in the result's Error
// field as typed errors, mirroring one lane of a batch.
func (e *Engine) QueryOne(ctx context.Context, spec api.QuerySpec) api.QueryResult {
	start := time.Now()
	q, aerr := QueryFromSpec(spec)
	if aerr != nil {
		return api.QueryResult{Error: aerr, TookMS: tookMS(start)}
	}
	full, page, cached, deg, err := e.topK(ctx, q)
	if err != nil {
		return api.QueryResult{Error: api.FromError(err), TookMS: tookMS(start)}
	}
	return api.QueryResult{
		Matches:  MatchesToAPI(page),
		Total:    len(full),
		Cached:   cached,
		Degraded: deg,
		TookMS:   tookMS(start),
	}
}

// Query implements api.Searcher: the batch's specs are answered
// concurrently — the per-shard tasks of all specs share the engine's
// bounded worker pool, so a big batch amortizes dispatch without
// overcommitting the machine. Results[i] answers Specs[i]; a failed spec
// carries its typed error without failing the batch. The whole batch is
// bounded by TimeoutMS when positive.
func (e *Engine) Query(ctx context.Context, req api.Query) (*api.QueryResponse, error) {
	if len(req.Specs) == 0 {
		return nil, api.Errorf(api.CodeInvalidArgument, "query batch has no specs")
	}
	ctx, cancel := timeoutContext(ctx, req.TimeoutMS)
	defer cancel()
	start := time.Now()
	results := make([]api.QueryResult, len(req.Specs))
	var wg sync.WaitGroup
	for i, spec := range req.Specs {
		wg.Add(1)
		go func(i int, spec api.QuerySpec) {
			defer wg.Done()
			results[i] = e.QueryOne(ctx, spec)
		}(i, spec)
	}
	wg.Wait()
	return &api.QueryResponse{Results: results, TookMS: tookMS(start)}, nil
}

// QueryStream implements api.StreamSearcher: emit receives every
// provisional match as it enters the running top-k (single-goroutine,
// in order of entry), and the returned summary carries the authoritative
// final ranking. An emit error aborts the search and is returned.
func (e *Engine) QueryStream(ctx context.Context, spec api.QuerySpec, emit func(api.Match) error) (*api.StreamSummary, error) {
	start := time.Now()
	q, aerr := QueryFromSpec(spec)
	if aerr != nil {
		return nil, aerr
	}
	emitted := 0
	full, page, cached, deg, err := e.topKStream(ctx, q, func(m Match) error {
		emitted++
		return emit(MatchToAPI(m))
	})
	if err != nil {
		return nil, api.FromError(err)
	}
	return &api.StreamSummary{
		Matches:  MatchesToAPI(page),
		Total:    len(full),
		Cached:   cached,
		Emitted:  emitted,
		Degraded: deg,
		TookMS:   tookMS(start),
	}, nil
}
