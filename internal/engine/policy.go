package engine

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"simsub/api"
	"simsub/internal/core"
	"simsub/internal/rl"
)

// This file is the policy registry: the serving home of the paper's learned
// searches (RLS §5.3, RLS-Skip/RLS-Skip+ §5.4). An engine holds at most one
// DQN splitting policy, loaded at construction (cmd/simsubd -policy) or
// hot-swapped at runtime (POST /v2/admin/policy → SetPolicy). Queries
// naming algorithm "rls" / "rls-skip" resolve against the registered
// policy; with none loaded they fail as typed invalid_argument errors at
// the wire boundary.
//
// Swap correctness: the policy pointer is read once per query, so a search
// never mixes two policies, and the policy's fingerprint is part of the
// result-cache key (see cacheKey), so a ranking computed under an old
// policy can never be served after a swap — even to a query that raced the
// swap, because its cache entry lands under the old fingerprint, which no
// post-swap lookup can construct.

// policyEntry pins one immutable (policy, optional compiled table,
// fingerprint) triple.
type policyEntry struct {
	p *rl.Policy
	// table, when non-nil, serves the compiled table-lookup path
	// (rl.Compile) for this policy; queries then take O(1) array lookups
	// instead of network forward passes.
	table *rl.TablePolicy
	// fp is the serving fingerprint: the policy's content hash, folded
	// with the table's own fingerprint when one is compiled — so swapping
	// the policy, compiling a table, recompiling at another resolution and
	// dropping the table each invalidate cached rankings.
	fp uint64
}

// PolicyInfo describes the engine's currently registered policy.
type PolicyInfo struct {
	// Name is the algorithm realized by the policy: "RLS", "RLS-Skip" or
	// "RLS-Skip+".
	Name string
	// K is the policy's skip-action count (0 for plain RLS).
	K int
	// UseSuffix reports whether states carry the Θsuf component.
	UseSuffix bool
	// SimplifyState reports RLS-Skip's skipped-point state simplification.
	SimplifyState bool
	// Fingerprint is the hex form of the serving fingerprint (the policy's
	// content hash, folded with the compiled table's when one is
	// installed); it changes on every swap or recompile and is part of the
	// result-cache key.
	Fingerprint string
	// Compiled reports whether a compiled table policy is serving actions;
	// the remaining fields are meaningful only then.
	Compiled bool
	// CompileResolution is the table's per-dimension grid resolution.
	CompileResolution int
	// CompileDivergence is the action-divergence rate measured at compile
	// time: the fraction of validation probes where the network's greedy
	// action differs from the table's.
	CompileDivergence float64
	// CompiledFingerprint is the hex content hash of the table itself.
	CompiledFingerprint string
}

// PolicyFingerprint content-hashes a policy (FNV-1a over its serialized
// form): two policies answer queries identically whenever their
// fingerprints match, so the fingerprint is a sound cache-key component.
func PolicyFingerprint(p *rl.Policy) (uint64, error) {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return 0, err
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return h.Sum64(), nil
}

// combinedFingerprint folds the base policy hash with the compiled table's
// into the serving fingerprint.
func combinedFingerprint(base, table uint64) uint64 {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], base)
	binary.LittleEndian.PutUint64(b[8:], table)
	h := fnv.New64a()
	h.Write(b[:])
	return h.Sum64()
}

// policyInfoFor derives the user-facing description of a registered entry.
func policyInfoFor(ent *policyEntry) PolicyInfo {
	info := PolicyInfo{
		Name:          core.RLS{Policy: ent.p, Table: ent.table}.Name(),
		K:             ent.p.K,
		UseSuffix:     ent.p.UseSuffix,
		SimplifyState: ent.p.SimplifyState,
		Fingerprint:   fmt.Sprintf("%016x", ent.fp),
	}
	if ent.table != nil {
		info.Compiled = true
		info.CompileResolution = ent.table.Resolution
		info.CompileDivergence = ent.table.Divergence
		info.CompiledFingerprint = fmt.Sprintf("%016x", ent.table.Fingerprint())
	}
	return info
}

// SetPolicy validates and registers a policy, making the "rls"/"rls-skip"
// algorithms servable, and returns its description. Swapping purges the
// result cache: old-policy rankings are unreachable anyway (the fingerprint
// keys them), so purging frees their LRU slots. Invalid policies are
// rejected with a typed invalid_argument error and leave the current
// registration untouched. Safe for concurrent use with in-flight queries:
// each query pins the policy pointer it resolved.
func (e *Engine) SetPolicy(p *rl.Policy) (PolicyInfo, error) {
	return e.SetPolicyCompiled(p, 0)
}

// SetPolicyCompiled is SetPolicy with the compiled-table serving path
// opted in: with resolution > 0 the policy's greedy surface is distilled
// onto a resolution^dim table (rl.Compile) registered alongside it, so
// "rls"/"rls-skip" queries take O(1) action lookups instead of network
// forward passes. Compilation failures — resolution out of bounds, a grid
// too large, an invalid policy — are typed invalid_argument errors leaving
// the current registration untouched. resolution 0 registers the plain
// network-serving policy.
func (e *Engine) SetPolicyCompiled(p *rl.Policy, resolution int) (PolicyInfo, error) {
	if p == nil {
		return PolicyInfo{}, api.Errorf(api.CodeInvalidArgument, "nil policy")
	}
	if err := p.Validate(); err != nil {
		return PolicyInfo{}, api.Errorf(api.CodeInvalidArgument, "%v", err)
	}
	fp, err := PolicyFingerprint(p)
	if err != nil {
		return PolicyInfo{}, api.Errorf(api.CodeInvalidArgument, "fingerprinting policy: %v", err)
	}
	ent := &policyEntry{p: p, fp: fp}
	if resolution > 0 {
		table, err := rl.Compile(p, resolution)
		if err != nil {
			return PolicyInfo{}, api.Errorf(api.CodeInvalidArgument, "compiling policy table: %v", err)
		}
		ent.table = table
		ent.fp = combinedFingerprint(fp, table.Fingerprint())
	}
	e.policy.Store(ent)
	e.cache.purge()
	return policyInfoFor(ent), nil
}

// Policy returns the registered policy's description; ok is false when none
// is loaded.
func (e *Engine) Policy() (PolicyInfo, bool) {
	ent := e.policy.Load()
	if ent == nil {
		return PolicyInfo{}, false
	}
	return policyInfoFor(ent), true
}

// isRLSAlgorithm reports whether the name selects the learned searches,
// which resolve against the policy registry rather than core.AlgorithmFor.
func isRLSAlgorithm(name string) bool {
	return name == "rls" || name == "rls-skip"
}

// resolveAlg builds the measure and algorithm a query names. For the
// heuristic algorithms it defers to ResolveQuery; for "rls"/"rls-skip" it
// binds the registered policy (typed invalid_argument when none is loaded
// or the loaded policy's kind does not match the requested name) and
// returns the policy fingerprint for the cache key (0 for non-learned
// algorithms).
func (e *Engine) resolveAlg(measure, algorithm string, p Params) (core.Algorithm, uint64, error) {
	if algorithm == "embed" {
		// pure embedding ranking: binds the registered encoder the same way
		// the learned searches bind the registered policy, with the encoder
		// fingerprint in the fingerprint slot of the cache key
		if measure != "t2vec" {
			return nil, 0, api.Errorf(api.CodeInvalidArgument,
				"algorithm \"embed\" ranks by encoder embeddings and requires measure \"t2vec\", got %q", measure)
		}
		if _, err := measureFor(measure, p); err != nil {
			return nil, 0, err
		}
		if p.POSDelay != 0 {
			return nil, 0, api.Errorf(api.CodeInvalidArgument, "pos_delay set but algorithm is \"embed\", not \"pos-d\"")
		}
		ent := e.encoder.Load()
		if ent == nil {
			return nil, 0, api.Errorf(api.CodeInvalidArgument,
				"algorithm \"embed\" requires a registered encoder (start with -encoder or POST /v2/admin/encoder)")
		}
		return core.EmbedRank{E: ent.model}, ent.fp, nil
	}
	if !isRLSAlgorithm(algorithm) {
		alg, err := ResolveQuery(measure, algorithm, p)
		return alg, 0, err
	}
	m, err := measureFor(measure, p)
	if err != nil {
		return nil, 0, err
	}
	if p.POSDelay != 0 {
		return nil, 0, api.Errorf(api.CodeInvalidArgument, "pos_delay set but algorithm is %q, not \"pos-d\"", algorithm)
	}
	ent := e.policy.Load()
	if ent == nil {
		return nil, 0, api.Errorf(api.CodeInvalidArgument,
			"algorithm %q requires a loaded policy (start with -policy or POST /v2/admin/policy)", algorithm)
	}
	if algorithm == "rls" && ent.p.K > 0 {
		return nil, 0, api.Errorf(api.CodeInvalidArgument,
			"algorithm \"rls\" requested but the loaded policy has %d skip actions; use \"rls-skip\"", ent.p.K)
	}
	if algorithm == "rls-skip" && ent.p.K == 0 {
		return nil, 0, api.Errorf(api.CodeInvalidArgument,
			"algorithm \"rls-skip\" requested but the loaded policy has no skip actions; use \"rls\"")
	}
	return core.RLS{M: m, Policy: ent.p, Table: ent.table}, ent.fp, nil
}

// ResolveAlgorithm is the exported form of resolveAlg: the named measure
// and algorithm with per-query parameter overrides, resolving the learned
// searches against the engine's policy registry. The server's stateless
// /v1/search uses it so every route rejects unknown or unservable names
// with the same typed invalid_argument errors.
func (e *Engine) ResolveAlgorithm(measure, algorithm string, p Params) (core.Algorithm, error) {
	alg, _, err := e.resolveAlg(measure, algorithm, p)
	return alg, err
}

// qualityTracker accumulates the sampled serving-quality aggregates the
// paper reports for the learned searches (Tables 4–5): the approximation
// ratio and rank of approximate rankings against the exact ranking, and the
// skipped-point fraction of skip policies.
type qualityTracker struct {
	mu           sync.Mutex
	rng          *rand.Rand
	samples      int64
	ratioSum     float64
	ratioSamples int64
	rankSum      float64
	skipSum      float64
	skipSamples  int64
}

// sampled rolls the per-query sampling decision at the given rate.
func (t *qualityTracker) sampled(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(1))
	}
	return t.rng.Float64() < rate
}

func (t *qualityTracker) record(q core.ApproxQuality, hasSkip bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples++
	t.rankSum += q.MeanRank
	// the ratio is undefined when every sampled position had a 0-distance
	// exact answer the approximate search missed; such samples still count
	// for rank/skip but not toward the ratio mean
	if q.RatioPositions > 0 {
		t.ratioSamples++
		t.ratioSum += q.ApproxRatio
	}
	if hasSkip {
		t.skipSamples++
		t.skipSum += q.SkippedFraction
	}
}

func (t *qualityTracker) snapshot() (samples int64, ratioMean, rankMean, skipMean float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	samples = t.samples
	if t.ratioSamples > 0 {
		ratioMean = t.ratioSum / float64(t.ratioSamples)
	}
	if t.samples > 0 {
		rankMean = t.rankSum / float64(t.samples)
	}
	if t.skipSamples > 0 {
		skipMean = t.skipSum / float64(t.skipSamples)
	}
	return
}

// rankedAnswers converts engine matches to the shared scorer's form,
// dropping matches whose trajectory is no longer resolvable.
func (e *Engine) rankedAnswers(ms []Match) []core.RankedAnswer {
	out := make([]core.RankedAnswer, 0, len(ms))
	for _, m := range ms {
		t, ok := e.Traj(m.TrajID)
		if !ok {
			continue
		}
		out = append(out, core.RankedAnswer{ID: m.TrajID, T: t, R: m.Result})
	}
	return out
}

// sampleQuality scores one served approximate ranking (pre-distinct, so
// it compares like against like) with core.ScoreApproxQuality: an ExactS
// rescan over the same filter and k supplies the exact reference, then the
// approximation ratio, mean rank and skipped-point fraction (Tables 4–5)
// feed the engine's quality aggregates.
//
// Cost: one exact scan over the query's candidates, plus — for skip
// policies — one policy walk per ranked match; hence the QualitySample
// knob. The rescan's pruning work is deliberately not folded into the
// engine's serving counters. gen is the store generation observed before
// the approximate scan: if it was odd (a load was in flight) or the store
// moved by the time the exact rescan finishes, the two rankings may come
// from different snapshots and the sample is dropped rather than poisoning
// the lifetime aggregates.
func (e *Engine) sampleQuality(ctx context.Context, q Query, rls core.RLS, approx []Match, gen uint64) {
	if len(approx) == 0 {
		return
	}
	// checked before the rescan (don't pay for a doomed sample) and again
	// after (a load may complete mid-rescan)
	if gen%2 != 0 || e.gen.Load() != gen {
		return
	}
	exact, _, err := e.scatter(ctx, core.ExactS{M: rls.M}, q)
	if err != nil {
		return
	}
	if e.gen.Load() != gen {
		return
	}
	res, ok := core.ScoreApproxQuality(rls.M, rls.Policy, q.Q,
		e.rankedAnswers(approx), e.rankedAnswers(exact))
	if !ok {
		return
	}
	e.quality.record(res, rls.Policy.K > 0)
}
