package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"simsub/internal/core"
	"simsub/internal/geo"
	"simsub/internal/traj"
)

// Engine-level equivalence: the sharded scan with the shared atomic
// threshold must rank byte-identically to an unpruned flat scan, across
// measures × algorithms × distinct × filter, on a 1000-trajectory store.

func pruneData(n, pts int, seed int64) []traj.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]traj.Trajectory, n)
	for i := range ts {
		p := make([]geo.Point, pts)
		x, y := rng.Float64()*20, rng.Float64()*20
		for j := range p {
			x += rng.NormFloat64() * 0.3
			y += rng.NormFloat64() * 0.3
			p[j] = geo.Point{X: x, Y: y, T: float64(j)}
		}
		ts[i] = traj.New(p...)
	}
	return ts
}

// flatUnprunedTopK builds the reference ranking over the flat store: the
// plain unpruned per-candidate scan, canonically sorted, optionally
// distinct-collapsed the way the engine collapses (best representative per
// matched subtrajectory content).
func flatUnprunedTopK(t *testing.T, data []traj.Trajectory, alg core.Algorithm, q traj.Trajectory, k int, filter *geo.Rect, distinct bool) []Match {
	t.Helper()
	db := core.NewDatabase(data, false)
	var all []core.Match
	if err := db.ScanFilteredCtx(context.Background(), alg, q, filter, func(m core.Match) error {
		all = append(all, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(all, func(i, j int) bool {
		return core.RankBefore(all[i].Result.Dist, all[i].TrajIndex, all[i].Result.Interval,
			all[j].Result.Dist, all[j].TrajIndex, all[j].Result.Interval)
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]Match, 0, k)
	for _, m := range all[:k] {
		out = append(out, Match{TrajID: m.TrajIndex, Result: m.Result})
	}
	if !distinct {
		return out
	}
	var kept []Match
	var seen []traj.Trajectory
next:
	for _, m := range out {
		sub := data[m.TrajID].Sub(m.Result.Interval.I, m.Result.Interval.J)
		for _, prev := range seen {
			if prev.Equal(sub) {
				continue next
			}
		}
		seen = append(seen, sub)
		kept = append(kept, m)
	}
	return kept
}

func TestEnginePrunedEquivalence(t *testing.T) {
	data := pruneData(900, 24, 41)
	// duplicate some content so distinct collapsing has work to do
	for i := 0; i < 100; i++ {
		data = append(data, traj.New(data[i].Points...))
	}
	e := New(Config{Shards: 4, Index: ScanAll})
	e.Add(data)
	q := pruneData(1, 9, 42)[0]
	filter := &geo.Rect{MinX: 0, MinY: 0, MaxX: 14, MaxY: 14}

	for _, tc := range []struct{ measure, algorithm string }{
		{"dtw", "exacts"}, {"dtw", "pss"}, {"cdtw", "pss"},
		{"frechet", "pos-d"}, {"edr", "sizes"}, {"lcss", "pos"},
	} {
		for _, distinct := range []bool{false, true} {
			for _, f := range []*geo.Rect{nil, filter} {
				name := fmt.Sprintf("%s/%s/distinct=%v/filter=%v", tc.measure, tc.algorithm, distinct, f != nil)
				alg, err := ResolveNames(tc.measure, tc.algorithm)
				if err != nil {
					t.Fatal(err)
				}
				want := flatUnprunedTopK(t, data, alg, q, 10, f, distinct)
				got, _, err := e.TopK(context.Background(), Query{
					Q: q, K: 10, Measure: tc.measure, Algorithm: tc.algorithm,
					Distinct: distinct, Filter: f,
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s: got %d matches, want %d", name, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%s rank %d: engine %+v, reference %+v", name, i, got[i], want[i])
					}
				}
			}
		}
	}

	st := e.Stats()
	if st.CandidatesSeen == 0 {
		t.Error("stats: CandidatesSeen = 0 after pruned scans")
	}
	if st.LBSkipped == 0 {
		t.Error("stats: LBSkipped = 0; lower-bound cascade never fired")
	}
	if st.LBSkipped+st.EarlyAbandoned > st.CandidatesSeen {
		t.Errorf("stats inconsistent: %+v", st)
	}
	t.Logf("engine prune stats: seen=%d lb_skipped=%d abandoned=%d",
		st.CandidatesSeen, st.LBSkipped, st.EarlyAbandoned)
}

// TestStreamPrunedEquivalence: the streaming scan shares the collector's
// published threshold; its final ranking must match TopK's.
func TestStreamPrunedEquivalence(t *testing.T) {
	e := New(Config{Shards: 4, Index: ScanAll})
	e.Add(pruneData(1000, 24, 51))
	q := pruneData(1, 9, 52)[0]
	for _, tc := range []struct{ measure, algorithm string }{
		{"dtw", "exacts"}, {"frechet", "pss"},
	} {
		qq := Query{Q: q, K: 10, Measure: tc.measure, Algorithm: tc.algorithm}
		want, _, err := e.TopK(context.Background(), qq)
		if err != nil {
			t.Fatal(err)
		}
		emitted := 0
		got, _, err := e.TopKStream(context.Background(), qq, func(Match) error {
			emitted++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if emitted < len(got) {
			t.Errorf("%s/%s: emitted %d provisional matches for a %d-deep ranking",
				tc.measure, tc.algorithm, emitted, len(got))
		}
		if len(got) != len(want) {
			t.Fatalf("%s/%s: stream %d matches, topk %d", tc.measure, tc.algorithm, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s/%s rank %d: stream %+v, topk %+v", tc.measure, tc.algorithm, i, got[i], want[i])
			}
		}
	}
}
