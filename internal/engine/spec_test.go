package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"simsub/api"
	"simsub/internal/core"
	"simsub/internal/geo"
	"simsub/internal/sim"
)

// TestEngineFilterPushdown checks the spatial filter's semantics against a
// first-principles reference: with scan-all shards, the filtered ranking
// must equal the unfiltered full ranking restricted to trajectories whose
// MBR intersects the filter, truncated to k.
func TestEngineFilterPushdown(t *testing.T) {
	for _, kind := range []IndexKind{ScanAll, RTree} {
		rng := rand.New(rand.NewSource(90))
		ts := randSet(rng, 40)
		e := New(Config{Shards: 4, Index: kind})
		e.Add(ts)
		q := randTraj(rng, 6)
		filter := geo.Rect{MinX: 2, MinY: 2, MaxX: 9, MaxY: 9}

		got, _, err := e.TopK(context.Background(), Query{
			Q: q, K: 10, Measure: "dtw", Algorithm: "pss", Filter: &filter,
		})
		if err != nil {
			t.Fatalf("index %v: filtered TopK: %v", kind, err)
		}
		// every answer must come from a filter-intersecting trajectory
		for _, m := range got {
			tr, _ := e.Traj(m.TrajID)
			if !tr.MBR().Intersects(filter) {
				t.Fatalf("index %v: match %d violates the filter", kind, m.TrajID)
			}
		}
		if kind != ScanAll {
			continue // similarity pruning makes the flat reference inexact
		}
		full, _, err := e.TopK(context.Background(), Query{
			Q: q, K: e.Len(), Measure: "dtw", Algorithm: "pss",
		})
		if err != nil {
			t.Fatal(err)
		}
		var want []Match
		for _, m := range full {
			tr, _ := e.Traj(m.TrajID)
			if tr.MBR().Intersects(filter) {
				want = append(want, m)
			}
		}
		if len(want) > 10 {
			want = want[:10]
		}
		if len(got) != len(want) {
			t.Fatalf("filtered ranking has %d matches, want %d", len(got), len(want))
		}
		if len(want) == 0 {
			t.Fatal("degenerate test: filter excluded everything")
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("filtered rank %d: %+v, want %+v", i, got[i], want[i])
			}
		}
	}
}

// TestEngineDistinct loads the same data twice (distinct global IDs, equal
// points) and checks distinct collapsing keeps exactly one representative
// per duplicated answer.
func TestEngineDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	ts := randSet(rng, 12)
	e := New(Config{Shards: 4, Index: ScanAll})
	e.Add(ts)
	e.Add(ts) // duplicate load: 24 stored trajectories, 12 distinct contents
	q := randTraj(rng, 5)

	plain, _, err := e.TopK(context.Background(), Query{Q: q, K: 24, Measure: "dtw", Algorithm: "exacts"})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 24 {
		t.Fatalf("unfiltered ranking has %d matches, want 24", len(plain))
	}

	got, _, err := e.TopK(context.Background(), Query{
		Q: q, K: 24, Measure: "dtw", Algorithm: "exacts", Distinct: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("distinct ranking has %d matches, want 12", len(got))
	}
	// distinct must equal the plain ranking with duplicate contents
	// dropped, preserving rank order
	var want []Match
	seen := map[string]bool{}
	for _, m := range plain {
		tr, _ := e.Traj(m.TrajID)
		key := fmt.Sprintf("%v", tr.Sub(m.Result.Interval.I, m.Result.Interval.J).Points)
		if seen[key] {
			continue
		}
		seen[key] = true
		want = append(want, m)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinct rank %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestEnginePaging checks offset/limit windows over one ranking, including
// pages served from the cache.
func TestEnginePaging(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	e := New(Config{Shards: 4, Index: ScanAll, CacheSize: 8})
	e.Add(randSet(rng, 30))
	q := randTraj(rng, 5)
	base := Query{Q: q, K: 10, Measure: "dtw", Algorithm: "pss"}

	full, cached, err := e.TopK(context.Background(), base)
	if err != nil || cached || len(full) != 10 {
		t.Fatalf("full ranking: %d matches cached=%v err=%v", len(full), cached, err)
	}
	cases := []struct {
		offset, limit int
		want          []Match
	}{
		{0, 0, full},
		{3, 4, full[3:7]},
		{3, 0, full[3:]},
		{0, 25, full},
		{9, 5, full[9:]},
		{10, 5, nil},
		{100, 0, nil},
	}
	for _, tc := range cases {
		pq := base
		pq.Offset, pq.Limit = tc.offset, tc.limit
		got, cached, err := e.TopK(context.Background(), pq)
		if err != nil {
			t.Fatalf("offset=%d limit=%d: %v", tc.offset, tc.limit, err)
		}
		// every page after the first call is a window over the one cached
		// full ranking
		if !cached {
			t.Errorf("offset=%d limit=%d: not served from cache", tc.offset, tc.limit)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("offset=%d limit=%d: %d matches, want %d", tc.offset, tc.limit, len(got), len(tc.want))
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Fatalf("offset=%d limit=%d rank %d differs", tc.offset, tc.limit, i)
			}
		}
	}
}

// TestEngineQueryParams checks per-query parameter overrides change the
// search exactly as constructing the parameterized measure/algorithm
// directly would.
func TestEngineQueryParams(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	ts := randSet(rng, 20)
	e := New(Config{Shards: 4, Index: ScanAll})
	e.Add(ts)
	db := core.NewDatabase(ts, false)
	q := randTraj(rng, 5)

	check := func(name string, eq Query, alg core.Algorithm) {
		t.Helper()
		got, _, err := e.TopK(context.Background(), eq)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := db.TopK(alg, q, eq.K)
		if len(got) != len(want) {
			t.Fatalf("%s: %d matches, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i].TrajID != want[i].TrajIndex || got[i].Result != want[i].Result {
				t.Fatalf("%s: rank %d is %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}

	check("edr eps",
		Query{Q: q, K: 5, Measure: "edr", Algorithm: "exacts", Params: Params{EDREps: 0.7}},
		core.ExactS{M: sim.EDR{Eps: 0.7}})
	check("lcss eps",
		Query{Q: q, K: 5, Measure: "lcss", Algorithm: "exacts", Params: Params{LCSSEps: 0.4}},
		core.ExactS{M: sim.LCSS{Eps: 0.4}})
	check("cdtw band",
		Query{Q: q, K: 5, Measure: "cdtw", Algorithm: "exacts", Params: Params{CDTWBand: 0.5}},
		core.ExactS{M: sim.CDTW{R: 0.5}})
	check("pos-d delay",
		Query{Q: q, K: 5, Measure: "dtw", Algorithm: "pos-d", Params: Params{POSDelay: 9}},
		core.POSD{M: sim.DTW{}, D: 9})

	// parameter overrides must key the cache: same names, different eps
	// must not collide
	ce := New(Config{Shards: 2, Index: ScanAll, CacheSize: 8})
	ce.Add(ts)
	a, _, _ := ce.TopK(context.Background(), Query{Q: q, K: 3, Measure: "edr", Algorithm: "exacts", Params: Params{EDREps: 0.7}})
	b, cached, _ := ce.TopK(context.Background(), Query{Q: q, K: 3, Measure: "edr", Algorithm: "exacts", Params: Params{EDREps: 0.1}})
	if cached {
		t.Fatal("different edr_eps served from the same cache entry")
	}
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].Result.Dist != b[i].Result.Dist {
				same = false
				break
			}
		}
		if same {
			t.Log("warning: eps 0.7 and 0.1 produced identical distances; weak data")
		}
	}
}

// TestEngineBatchQuery exercises the api.Searcher adapter: per-spec
// results in order, error isolation, and agreement with direct TopK.
func TestEngineBatchQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	ts := randSet(rng, 25)
	e := New(Config{Shards: 4, Index: ScanAll})
	e.Add(ts)

	specs := make([]api.QuerySpec, 0, 6)
	queries := make([]Query, 0, 6)
	for i := 0; i < 5; i++ {
		q := randTraj(rng, 4+i)
		specs = append(specs, api.QuerySpec{Query: api.FromTraj(q), K: 4, Measure: "dtw"})
		queries = append(queries, Query{Q: q, K: 4, Measure: "dtw", Algorithm: "pss"})
	}
	specs = append(specs, api.QuerySpec{Query: specs[0].Query, K: 0}) // invalid lane

	resp, err := e.Query(context.Background(), api.Query{Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(specs) {
		t.Fatalf("%d results for %d specs", len(resp.Results), len(specs))
	}
	for i, q := range queries {
		res := resp.Results[i]
		if res.Error != nil {
			t.Fatalf("spec %d failed: %v", i, res.Error)
		}
		want, _, err := e.TopK(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != len(want) || res.Total != len(want) {
			t.Fatalf("spec %d: %d matches total %d, want %d", i, len(res.Matches), res.Total, len(want))
		}
		for j, m := range res.Matches {
			if m != MatchToAPI(want[j]) {
				t.Fatalf("spec %d rank %d: %+v, want %+v", i, j, m, MatchToAPI(want[j]))
			}
		}
	}
	bad := resp.Results[len(specs)-1]
	if bad.Error == nil || bad.Error.Code != api.CodeInvalidArgument || len(bad.Matches) != 0 {
		t.Fatalf("invalid lane: %+v, want isolated invalid_argument", bad)
	}

	if _, err := e.Query(context.Background(), api.Query{}); api.FromError(err).Code != api.CodeInvalidArgument {
		t.Fatalf("empty batch: %v, want invalid_argument", err)
	}
}
