package engine

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"simsub/api"
	"simsub/internal/core"
	"simsub/internal/geo"
	"simsub/internal/sim"
	"simsub/internal/traj"
)

func randTraj(rng *rand.Rand, n int) traj.Trajectory {
	pts := make([]geo.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64() * 0.3
		y += rng.NormFloat64() * 0.3
		pts[i] = geo.Point{X: x, Y: y, T: float64(i)}
	}
	return traj.New(pts...)
}

func randSet(rng *rand.Rand, n int) []traj.Trajectory {
	ts := make([]traj.Trajectory, n)
	for i := range ts {
		ts[i] = randTraj(rng, rng.Intn(20)+8)
	}
	return ts
}

// TestEngineMatchesDatabase loads the same trajectories into a sharded
// engine and a flat core.Database with matching pruning semantics and
// checks the rankings coincide across shard counts (the shard-merge
// correctness test). Scan and R-tree prune per trajectory, so a flat
// reference exists; the grid's cell geometry depends on shard-local
// bounds, so its results are validated structurally instead.
func TestEngineMatchesDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	ts := randSet(rng, 60)
	q := randTraj(rng, 6)
	for _, measure := range []string{"dtw", "frechet"} {
		m, err := sim.ByName(measure)
		if err != nil {
			t.Fatal(err)
		}
		alg, _ := core.AlgorithmFor("exacts", m)
		for _, kind := range []IndexKind{ScanAll, RTree} {
			db := core.NewDatabaseIndexed(ts, kind.coreKind())
			want, err := db.TopKCtx(context.Background(), alg, q, 10)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 3, 8} {
				e := New(Config{Shards: shards, Index: kind})
				e.Add(ts)
				got, cached, err := e.TopK(context.Background(), Query{
					Q: q, K: 10, Measure: measure, Algorithm: "exacts",
				})
				if err != nil {
					t.Fatal(err)
				}
				if cached {
					t.Fatal("fresh engine reported a cache hit")
				}
				if len(got) != len(want) {
					t.Fatalf("shards=%d kind=%d: %d matches, want %d", shards, kind, len(got), len(want))
				}
				for i := range want {
					// engine IDs are assigned densely in Add order, so they
					// equal the database's trajectory indices
					if got[i].TrajID != want[i].TrajIndex || got[i].Result != want[i].Result {
						t.Errorf("shards=%d kind=%d rank %d: got {%d %+v}, want {%d %+v}",
							shards, kind, i, got[i].TrajID, got[i].Result, want[i].TrajIndex, want[i].Result)
					}
				}
			}
		}
	}
}

// TestEngineGridIndex checks the grid-sharded engine returns correctly
// scored, ascending, deduplicated matches (exact set equality with a flat
// database is not guaranteed because each shard grids its own bounds).
func TestEngineGridIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	ts := randSet(rng, 40)
	e := New(Config{Shards: 4, Index: Grid})
	e.Add(ts)
	q := randTraj(rng, 6)
	m, _ := sim.ByName("dtw")
	got, _, err := e.TopK(context.Background(), Query{Q: q, K: 8, Measure: "dtw", Algorithm: "exacts"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i, g := range got {
		if i > 0 && got[i-1].Result.Dist > g.Result.Dist {
			t.Fatal("grid matches not ascending")
		}
		if seen[g.TrajID] {
			t.Fatalf("trajectory %d ranked twice", g.TrajID)
		}
		seen[g.TrajID] = true
		tr, ok := e.Traj(g.TrajID)
		if !ok {
			t.Fatalf("match names unknown trajectory %d", g.TrajID)
		}
		iv := g.Result.Interval
		if want := m.Dist(tr.Sub(iv.I, iv.J), q); want != g.Result.Dist {
			t.Fatalf("match %d: dist %v, recomputed %v", i, g.Result.Dist, want)
		}
	}
}

func TestEngineCacheHitAndInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ts := randSet(rng, 30)
	e := New(Config{Shards: 4, CacheSize: 8})
	e.Add(ts)
	q := Query{Q: randTraj(rng, 5), K: 5, Measure: "dtw", Algorithm: "pss"}

	first, cached, err := e.TopK(context.Background(), q)
	if err != nil || cached {
		t.Fatalf("first query: cached=%v err=%v", cached, err)
	}
	second, cached, err := e.TopK(context.Background(), q)
	if err != nil || !cached {
		t.Fatalf("second query: cached=%v err=%v, want a hit", cached, err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("cached answer differs from computed answer")
		}
	}
	st := e.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.Queries != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 2 queries", st)
	}

	// loading more data bumps the generation and purges dead entries: the
	// same query must recompute and the cache must report empty
	e.Add(randSet(rng, 8))
	if n := e.Stats().CacheEntries; n != 0 {
		t.Fatalf("cache holds %d entries after load, want 0 (purged)", n)
	}
	if _, cached, err = e.TopK(context.Background(), q); err != nil || cached {
		t.Fatalf("post-load query: cached=%v err=%v, want a recompute", cached, err)
	}

	// different k is a different cache entry
	q2 := q
	q2.K = 3
	if _, cached, err = e.TopK(context.Background(), q2); err != nil || cached {
		t.Fatalf("different-k query: cached=%v err=%v, want a miss", cached, err)
	}
}

func TestEngineCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	e := New(Config{Shards: 2, CacheSize: 2})
	e.Add(randSet(rng, 10))
	queries := []Query{
		{Q: randTraj(rng, 5), K: 3, Measure: "dtw", Algorithm: "pss"},
		{Q: randTraj(rng, 5), K: 3, Measure: "dtw", Algorithm: "pss"},
		{Q: randTraj(rng, 5), K: 3, Measure: "dtw", Algorithm: "pss"},
	}
	for _, q := range queries {
		if _, _, err := e.TopK(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want capacity 2", n)
	}
	// the oldest entry was evicted, the newest two still hit
	if _, cached, _ := e.TopK(context.Background(), queries[0]); cached {
		t.Fatal("evicted entry still hit")
	}
	if _, cached, _ := e.TopK(context.Background(), queries[2]); !cached {
		t.Fatal("recent entry missed")
	}
}

func TestEngineCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	e := New(Config{Shards: 4})
	e.Add(randSet(rng, 40))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.TopK(ctx, Query{Q: randTraj(rng, 5), K: 5, Measure: "dtw", Algorithm: "exacts"}); err == nil {
		t.Fatal("cancelled TopK returned no error")
	}
	if inflight := e.Stats().InFlight; inflight != 0 {
		t.Fatalf("in-flight = %d after cancellation, want 0", inflight)
	}
}

func TestEngineErrors(t *testing.T) {
	e := New(Config{})
	rng := rand.New(rand.NewSource(64))
	if _, _, err := e.TopK(context.Background(), Query{Q: traj.New(), K: 3, Measure: "dtw", Algorithm: "pss"}); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, _, err := e.TopK(context.Background(), Query{Q: randTraj(rng, 5), K: 3, Measure: "nope", Algorithm: "pss"}); err == nil {
		t.Fatal("unknown measure accepted")
	}
	if _, _, err := e.TopK(context.Background(), Query{Q: randTraj(rng, 5), K: 3, Measure: "dtw", Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// Spring and UCR compute DTW regardless of the requested measure: any
	// other pairing would return mislabeled distances and must be rejected
	for _, algo := range []string{"spring", "ucr"} {
		if _, _, err := e.TopK(context.Background(), Query{Q: randTraj(rng, 5), K: 3, Measure: "frechet", Algorithm: algo}); err == nil {
			t.Fatalf("%s accepted with a non-DTW measure", algo)
		}
		if _, err := ResolveNames("dtw", algo); err != nil {
			t.Fatalf("%s rejected with dtw: %v", algo, err)
		}
	}
	// k-validation is uniform: k ≤ 0, k > store size and unknown names all
	// surface as the same typed invalid_argument error shape
	e.Add(randSet(rng, 4))
	for name, q := range map[string]Query{
		"k zero":            {Q: randTraj(rng, 5), K: 0, Measure: "dtw", Algorithm: "pss"},
		"k negative":        {Q: randTraj(rng, 5), K: -2, Measure: "dtw", Algorithm: "pss"},
		"k over store":      {Q: randTraj(rng, 5), K: 5, Measure: "dtw", Algorithm: "pss"},
		"unknown measure":   {Q: randTraj(rng, 5), K: 2, Measure: "nope", Algorithm: "pss"},
		"unknown algorithm": {Q: randTraj(rng, 5), K: 2, Measure: "dtw", Algorithm: "nope"},
		"NaN coordinate": {Q: traj.New(geo.Point{X: math.NaN(), Y: 0}, geo.Point{X: 1, Y: 1}),
			K: 2, Measure: "dtw", Algorithm: "pss"},
		"bad offset":      {Q: randTraj(rng, 5), K: 2, Offset: -1, Measure: "dtw", Algorithm: "pss"},
		"bad limit":       {Q: randTraj(rng, 5), K: 2, Limit: -1, Measure: "dtw", Algorithm: "pss"},
		"misdirected eps": {Q: randTraj(rng, 5), K: 2, Measure: "dtw", Algorithm: "pss", Params: Params{EDREps: 0.5}},
		"misdirected delay": {Q: randTraj(rng, 5), K: 2, Measure: "dtw", Algorithm: "pss",
			Params: Params{POSDelay: 3}},
		"band out of range": {Q: randTraj(rng, 5), K: 2, Measure: "cdtw", Algorithm: "pss",
			Params: Params{CDTWBand: 1.5}},
	} {
		_, _, err := e.TopK(context.Background(), q)
		var ae *api.Error
		if !errors.As(err, &ae) || ae.Code != api.CodeInvalidArgument {
			t.Errorf("%s: err=%v, want typed invalid_argument", name, err)
		}
	}
}

func TestEngineTrajLookup(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	ts := randSet(rng, 23)
	e := New(Config{Shards: 4})
	ids, err := e.Add(ts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(ts) || e.Len() != len(ts) {
		t.Fatalf("ids=%d len=%d, want %d", len(ids), e.Len(), len(ts))
	}
	for i, id := range ids {
		got, ok := e.Traj(id)
		if !ok || !got.Equal(ts[i]) {
			t.Fatalf("Traj(%d): ok=%v, mismatch=%v", id, ok, !got.Equal(ts[i]))
		}
	}
	if _, ok := e.Traj(len(ts)); ok {
		t.Fatal("out-of-range ID resolved")
	}
	if _, ok := e.Traj(-1); ok {
		t.Fatal("negative ID resolved")
	}
}

// TestEngineConcurrentQueries hammers one engine from many goroutines while
// verifying every answer against a reference database.
func TestEngineConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	ts := randSet(rng, 50)
	db := core.NewDatabase(ts, false)
	e := New(Config{Shards: 4, Workers: 4, CacheSize: 16, Index: ScanAll})
	e.Add(ts)
	queries := make([]traj.Trajectory, 8)
	for i := range queries {
		queries[i] = randTraj(rng, 5)
	}
	m, _ := sim.ByName("dtw")
	alg, _ := core.AlgorithmFor("pss", m)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				q := queries[(g+rep)%len(queries)]
				got, _, err := e.TopK(context.Background(), Query{Q: q, K: 5, Measure: "dtw", Algorithm: "pss"})
				if err != nil {
					errs <- err.Error()
					return
				}
				want := db.TopK(alg, q, 5)
				if len(got) != len(want) {
					errs <- "length mismatch"
					return
				}
				for i := range want {
					if got[i].TrajID != want[i].TrajIndex || got[i].Result != want[i].Result {
						errs <- "ranking mismatch"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
