package engine

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"simsub/api"
)

// This file is the engine's overload-resilience layer: adaptive admission
// control in front of the scatter path (a CoDel-style bounded queue with
// measured queue wait and load shedding by query cost class), and a
// per-(measure, algorithm) cost model that predicts whether a query can
// finish inside its remaining deadline budget so hopeless requests are
// rejected EARLY — with a typed deadline_exceeded — instead of holding a
// slot until they time out.

// queryClass is the admission cost class of a query. Expensive classes are
// shed first under overload: an unbounded exact scan holds worker slots
// for orders of magnitude longer than a pruned or learned scan, so
// shedding one exact scan frees as much capacity as shedding many cheap
// ones.
type queryClass int

const (
	classCheap queryClass = iota
	classExpensive
)

// classOf maps an algorithm name to its admission class. The exhaustive
// searches enumerate every subtrajectory with no threshold to abandon
// against mid-candidate, so they are the expensive class; everything else
// (pruned exacts, splitting heuristics, learned searches) stays cheap.
func classOf(algorithm string) queryClass {
	switch algorithm {
	case "exacts", "sizes":
		return classExpensive
	}
	return classCheap
}

// degradeChain lists the graceful-degradation fallbacks of an algorithm in
// preference order. Only the exhaustive exact scans degrade: PSS keeps the
// ranking exact (the paper's spliting-based search is provably equivalent)
// at a fraction of the cost, and the compiled learned policy is the last
// resort when even PSS cannot fit the budget.
func degradeChain(algorithm string) []string {
	switch algorithm {
	case "exacts", "sizes":
		return []string{"pss", "rls-skip"}
	}
	return nil
}

// ewma is a lock-free exponentially weighted moving average.
type ewma struct {
	bits    atomic.Uint64
	samples atomic.Int64
}

const ewmaAlpha = 0.3

func (e *ewma) observe(v float64) {
	e.samples.Add(1)
	for {
		old := e.bits.Load()
		cur := math.Float64frombits(old)
		next := v
		if old != 0 {
			next = cur + ewmaAlpha*(v-cur)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (e *ewma) value() (float64, int64) {
	return math.Float64frombits(e.bits.Load()), e.samples.Load()
}

// costModel predicts a query's uncached scan wall time from the observed
// per-trajectory cost of past scans under the same (measure, algorithm)
// pair, so the prediction tracks corpus growth.
type costModel struct {
	mu    sync.Mutex
	perNs map[string]*ewma // measure "/" algorithm -> ns per stored trajectory
}

// costMinSamples is how many observations a pair needs before its
// prediction is trusted: a cold server admits everything.
const costMinSamples = 2

func (c *costModel) tracker(measure, algorithm string) *ewma {
	key := measure + "/" + algorithm
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.perNs == nil {
		c.perNs = map[string]*ewma{}
	}
	t := c.perNs[key]
	if t == nil {
		t = &ewma{}
		c.perNs[key] = t
	}
	return t
}

// observe folds one finished uncached scan over n trajectories into the
// model.
func (c *costModel) observe(measure, algorithm string, n int, wall time.Duration) {
	if n <= 0 || wall <= 0 {
		return
	}
	c.tracker(measure, algorithm).observe(float64(wall) / float64(n))
}

// estimate predicts the scan wall time over n trajectories; known is false
// until the pair has enough observations to trust.
func (c *costModel) estimate(measure, algorithm string, n int) (time.Duration, bool) {
	perNs, samples := c.tracker(measure, algorithm).value()
	if samples < costMinSamples {
		return 0, false
	}
	return time.Duration(perNs * float64(n)), true
}

// admitter is the CoDel-style admission controller: a bounded wait queue
// in front of a fixed number of concurrent-query slots. Every queued
// acquisition measures its queue wait; if the MINIMUM wait over an
// interval stays above the target, the queue has standing (not burst)
// backlog — the CoDel insight — and the admitter flips to shedding, where
// expensive-class queries are rejected immediately with a Retry-After
// hint derived from the observed drain rate. Cheap queries keep queueing
// until the queue itself is full, which rejects everything.
type admitter struct {
	slots      chan struct{}
	queueLimit int64
	target     time.Duration
	interval   time.Duration

	queued   atomic.Int64
	shedding atomic.Bool

	mu          sync.Mutex
	intervalEnd time.Time
	minWait     time.Duration
	sawSample   bool

	waitEWMA    ewma // smoothed queue wait, ns
	serviceEWMA ewma // smoothed per-query slot hold, ns

	shed          atomic.Int64
	shedExpensive atomic.Int64
}

func newAdmitter(slots, queueLimit int, target, interval time.Duration) *admitter {
	return &admitter{
		slots:      make(chan struct{}, slots),
		queueLimit: int64(queueLimit),
		target:     target,
		interval:   interval,
	}
}

// note folds one measured queue wait into the CoDel interval state and
// flips the shedding flag at interval boundaries.
func (a *admitter) note(wait time.Duration) {
	a.waitEWMA.observe(float64(wait))
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.intervalEnd.IsZero() {
		a.intervalEnd = now.Add(a.interval)
	}
	if now.After(a.intervalEnd) {
		// decide on the finished interval: standing backlog iff the best
		// observed wait never dipped under the target
		a.shedding.Store(a.sawSample && a.minWait > a.target)
		a.intervalEnd = now.Add(a.interval)
		a.sawSample = false
	}
	if !a.sawSample || wait < a.minWait {
		a.minWait, a.sawSample = wait, true
	}
}

// retryAfter estimates when a rejected caller should come back: the
// current backlog divided by the observed drain rate, clamped to a sane
// window.
func (a *admitter) retryAfter() time.Duration {
	service, samples := a.serviceEWMA.value()
	queued := a.queued.Load()
	est := 100 * time.Millisecond
	if samples > 0 {
		est = time.Duration(service * float64(queued+1) / float64(cap(a.slots)))
	}
	return min(max(est, 50*time.Millisecond), 5*time.Second)
}

// overloadedErr builds the typed shed rejection with its Retry-After hint.
func (a *admitter) overloadedErr(class queryClass, why string) *api.Error {
	a.shed.Add(1)
	if class == classExpensive {
		a.shedExpensive.Add(1)
	}
	ae := api.Errorf(api.CodeOverloaded, "admission: %s", why)
	ae.RetryAfterMS = int(a.retryAfter().Milliseconds())
	if ae.RetryAfterMS <= 0 {
		ae.RetryAfterMS = 1
	}
	return ae
}

// acquire admits one query of the given class, blocking in the bounded
// queue when every slot is busy. It returns a release func on success and
// a typed rejection (overloaded with Retry-After, or the caller's own
// cancellation) otherwise.
func (a *admitter) acquire(ctx context.Context, class queryClass) (func(), *api.Error) {
	// fast path: a free slot means no queue and no shedding evidence
	select {
	case a.slots <- struct{}{}:
		a.note(0)
		return a.releaseFn(), nil
	default:
	}
	if a.shedding.Load() && class == classExpensive {
		return nil, a.overloadedErr(class, "shedding expensive scans under sustained queueing")
	}
	if a.queued.Load() >= a.queueLimit {
		return nil, a.overloadedErr(class, "admission queue is full")
	}
	a.queued.Add(1)
	start := time.Now()
	select {
	case a.slots <- struct{}{}:
		a.queued.Add(-1)
		a.note(time.Since(start))
		return a.releaseFn(), nil
	case <-ctx.Done():
		a.queued.Add(-1)
		if ctx.Err() == context.Canceled {
			return nil, api.Errorf(api.CodeCanceled, "caller went away while queued for admission")
		}
		// the request's whole budget drained in the queue: that is
		// overload, not a search timeout
		return nil, a.overloadedErr(class, "no query slot within the request deadline")
	}
}

func (a *admitter) releaseFn() func() {
	start := time.Now()
	return func() {
		a.serviceEWMA.observe(float64(time.Since(start)))
		<-a.slots
	}
}

// queueWait returns the smoothed queue wait.
func (a *admitter) queueWait() time.Duration {
	v, _ := a.waitEWMA.value()
	return time.Duration(v)
}

// servable reports whether the query could be answered by the given
// algorithm instead of its own: resolution must succeed (the learned
// fallback needs a loaded policy of the right kind).
func (e *Engine) servable(q Query, algorithm string) bool {
	_, _, err := e.resolveAlg(q.Measure, algorithm, q.Params)
	return err == nil
}

// budgetFallback picks the first degradation fallback that is servable and
// whose predicted cost fits the remaining budget (unknown costs are given
// the benefit of the doubt); "" when none qualifies.
func (e *Engine) budgetFallback(q Query, remaining time.Duration, n int) string {
	for _, fb := range degradeChain(q.Algorithm) {
		if !e.servable(q, fb) {
			continue
		}
		if est, known := e.cost.estimate(q.Measure, fb, n); known && est > remaining {
			continue
		}
		return fb
	}
	return ""
}

// degradeTarget is the overload-path fallback: the first servable entry of
// the degradation chain, with no cost check — anything on the chain is
// cheaper than the exhaustive scan being shed.
func (e *Engine) degradeTarget(q Query) string {
	for _, fb := range degradeChain(q.Algorithm) {
		if e.servable(q, fb) {
			return fb
		}
	}
	return ""
}

// planAdmit is the overload-resilience pre-flight run on every uncached
// query, in order: the deadline-budget check (predicted scan time vs the
// remaining budget minus the merge reserve, rejecting EARLY with
// deadline_exceeded), graceful degradation under the caller's explicit
// opt-in, and admission through the CoDel controller. On success it may
// have rewritten q.Algorithm to a cheaper fallback; it returns the slot
// release func and the degradation marker for the response.
func (e *Engine) planAdmit(ctx context.Context, q *Query) (func(), *api.Degraded, *api.Error) {
	var deg *api.Degraded
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl) - e.cfg.MergeReserve
		if remaining <= 0 {
			e.deadlineRejects.Add(1)
			return nil, nil, api.Errorf(api.CodeDeadlineExceeded,
				"remaining deadline budget is inside the %v merge reserve", e.cfg.MergeReserve)
		}
		n := e.Len()
		if est, known := e.cost.estimate(q.Measure, q.Algorithm, n); known && est > remaining {
			fb := ""
			if q.AllowDegraded {
				fb = e.budgetFallback(*q, remaining, n)
			}
			if fb == "" {
				e.deadlineRejects.Add(1)
				return nil, nil, api.Errorf(api.CodeDeadlineExceeded,
					"predicted %q scan time %v exceeds the remaining budget %v; retry with a larger deadline, or opt into allow_degraded",
					q.Algorithm, est.Round(time.Millisecond), remaining.Round(time.Millisecond))
			}
			deg = &api.Degraded{Reason: api.DegradedBudget, From: q.Algorithm, To: fb}
			q.Algorithm = fb
		}
	}
	rel, aerr := e.adm.acquire(ctx, classOf(q.Algorithm))
	if aerr != nil && aerr.Code == api.CodeOverloaded && q.AllowDegraded && classOf(q.Algorithm) == classExpensive {
		// shed as an exhaustive scan, but the caller would rather have a
		// cheaper answer than an error: retry once in the cheap class
		if fb := e.degradeTarget(*q); fb != "" {
			deg = &api.Degraded{Reason: api.DegradedOverload, From: q.Algorithm, To: fb}
			q.Algorithm = fb
			rel, aerr = e.adm.acquire(ctx, classOf(q.Algorithm))
		}
	}
	if aerr != nil {
		return nil, nil, aerr
	}
	if deg != nil {
		e.degradedQueries.Add(1)
	}
	return rel, deg, nil
}

// Shedding reports whether the admission controller is currently load
// shedding. The server consults it to shed stream loads first: bulk
// ingestion is the most deferrable work in the system.
func (e *Engine) Shedding() bool { return e.adm.shedding.Load() }

// RetryAfterHint estimates when a shed caller should retry, derived from
// the admission queue's observed drain rate.
func (e *Engine) RetryAfterHint() time.Duration { return e.adm.retryAfter() }
