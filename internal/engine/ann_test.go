package engine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"simsub/api"
	"simsub/internal/storage"
	"simsub/internal/t2vec"
	"simsub/internal/traj"
)

// Tests for the ANN prefilter and the encoder registry: the embedding
// index is a coarse CandidateSource whose survivors are reranked by the
// unchanged exact cascade, the encoder hot-swaps through the same
// fingerprint/cache machinery as the policy registry, and persisted
// embeddings let recovery skip re-encoding.

func annEngine(t *testing.T, shards, n int, seed int64) (*Engine, []traj.Trajectory) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ts := randSet(rng, n)
	e := New(Config{Shards: shards, Index: ScanAll, CacheSize: 64})
	if _, err := e.SetEncoder(t2vec.NewRandomModel(8, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(ts); err != nil {
		t.Fatal(err)
	}
	return e, ts
}

func TestANNRequiresEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	e := New(Config{Shards: 2})
	if _, err := e.Add(randSet(rng, 20)); err != nil {
		t.Fatal(err)
	}
	_, _, err := e.TopK(context.Background(), Query{
		Q: randTraj(rng, 6), K: 3, Measure: "dtw", Algorithm: "exacts",
		ANN: &ANNParams{Candidates: 10, Probes: 2},
	})
	if err == nil {
		t.Fatal("ann query accepted without an encoder")
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeInvalidArgument {
		t.Fatalf("error = %v, want typed invalid_argument", err)
	}
}

func TestANNFullBudgetMatchesExact(t *testing.T) {
	// a candidate budget covering the whole corpus must reproduce the exact
	// ranking byte-for-byte: the prefilter falls back to a full scan when
	// the buckets cannot fill the budget, and the rerank is the same
	// threshold pipeline either way
	e, ts := annEngine(t, 3, 80, 81)
	rng := rand.New(rand.NewSource(82))
	q := randTraj(rng, 6)
	for _, measure := range []string{"dtw", "frechet"} {
		want, _, err := e.TopK(context.Background(), Query{
			Q: q, K: 10, Measure: measure, Algorithm: "exacts",
		})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := e.TopK(context.Background(), Query{
			Q: q, K: 10, Measure: measure, Algorithm: "exacts",
			ANN: &ANNParams{Candidates: len(ts), Probes: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: full-budget ann ranking diverges from exact:\n got %+v\nwant %+v", measure, got, want)
		}
	}
}

func TestANNPrefilterScansFewerCandidates(t *testing.T) {
	e, ts := annEngine(t, 2, 200, 83)
	rng := rand.New(rand.NewSource(84))
	q := randTraj(rng, 6)
	before := e.Stats().CandidatesSeen
	if _, _, err := e.TopK(context.Background(), Query{
		Q: q, K: 5, Measure: "dtw", Algorithm: "exacts",
		ANN: &ANNParams{Candidates: 20, Probes: 2},
	}); err != nil {
		t.Fatal(err)
	}
	seen := e.Stats().CandidatesSeen - before
	if seen > int64(len(ts)/2) {
		t.Errorf("ann prefilter scanned %d of %d candidates; want a coarse subset", seen, len(ts))
	}
	if seen == 0 {
		t.Error("ann prefilter scanned no candidates at all")
	}
	if e.Stats().ANNQueries == 0 {
		t.Error("ann_queries counter never moved")
	}
}

func TestEmbedAlgorithm(t *testing.T) {
	e, _ := annEngine(t, 2, 50, 85)
	rng := rand.New(rand.NewSource(86))
	q := randTraj(rng, 6)
	ms, _, err := e.TopK(context.Background(), Query{Q: q, K: 5, Measure: "t2vec", Algorithm: "embed"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("embed ranking has %d matches, want 5", len(ms))
	}
	// embed is pinned to t2vec
	if _, _, err := e.TopK(context.Background(), Query{Q: q, K: 5, Measure: "dtw", Algorithm: "embed"}); err == nil {
		t.Error("embed accepted under measure dtw")
	}
	// and requires a registered encoder
	bare := New(Config{Shards: 1})
	if _, err := bare.Add(randSet(rng, 10)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bare.TopK(context.Background(), Query{Q: q, K: 2, Measure: "t2vec", Algorithm: "embed"}); err == nil {
		t.Error("embed accepted without an encoder")
	}
}

func TestEncoderSwapChangesFingerprintAndCacheKey(t *testing.T) {
	e, ts := annEngine(t, 2, 60, 87)
	rng := rand.New(rand.NewSource(88))
	q := Query{
		Q: randTraj(rng, 6), K: 5, Measure: "dtw", Algorithm: "exacts",
		ANN: &ANNParams{Candidates: len(ts), Probes: 4},
	}
	info1, ok := e.Encoder()
	if !ok {
		t.Fatal("encoder not registered")
	}
	if _, _, err := e.TopK(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if _, cached, err := e.TopK(context.Background(), q); err != nil || !cached {
		t.Fatalf("repeat ann query not served from cache (cached=%v err=%v)", cached, err)
	}

	info2, err := e.SetEncoder(t2vec.NewRandomModel(8, 99))
	if err != nil {
		t.Fatal(err)
	}
	if info1.Fingerprint == info2.Fingerprint {
		t.Fatal("different encoders share a fingerprint")
	}
	// the swap re-embedded the corpus and purged the cache: the same query
	// must be recomputed under the new encoder, never served stale
	if _, cached, err := e.TopK(context.Background(), q); err != nil {
		t.Fatal(err)
	} else if cached {
		t.Error("post-swap ann query served from the pre-swap cache")
	}
	st := e.Stats()
	if !st.EncoderLoaded || st.EncoderFingerprint != info2.Fingerprint {
		t.Errorf("stats report encoder %q loaded=%v, want %q", st.EncoderFingerprint, st.EncoderLoaded, info2.Fingerprint)
	}
}

func TestRecallTelemetry(t *testing.T) {
	e, ts := annEngine(t, 2, 120, 89)
	e.cfg.RecallSample = 1 // sample every uncached ann query
	rng := rand.New(rand.NewSource(90))
	for i := 0; i < 5; i++ {
		if _, _, err := e.TopK(context.Background(), Query{
			Q: randTraj(rng, 6), K: 5, Measure: "dtw", Algorithm: "exacts",
			ANN: &ANNParams{Candidates: len(ts) / 2, Probes: 2},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.RecallSamples == 0 {
		t.Fatal("no recall samples recorded at sample rate 1")
	}
	if st.MeanRecall < 0 || st.MeanRecall > 1 {
		t.Fatalf("mean recall %v outside [0,1]", st.MeanRecall)
	}
}

func TestEmbeddingPersistenceReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	ts := randSet(rng, 80)
	q := randTraj(rng, 6)
	dir := t.TempDir()
	enc := t2vec.NewRandomModel(8, 7)

	st, _, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Shards: 2, Index: ScanAll})
	if _, err := e.SetEncoder(enc); err != nil {
		t.Fatal(err)
	}
	if err := e.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Add(ts); err != nil {
		t.Fatal(err)
	}
	annq := Query{
		Q: q, K: 5, Measure: "dtw", Algorithm: "exacts",
		ANN: &ANNParams{Candidates: len(ts), Probes: 4},
	}
	want, _, err := e.TopK(context.Background(), annq)
	if err != nil {
		t.Fatal(err)
	}
	if st.EmbeddingCount() != len(ts) {
		t.Fatalf("store holds %d embeddings, want %d", st.EmbeddingCount(), len(ts))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// recover with the same encoder registered BEFORE the attach, the way
	// simsubd -encoder boots: the snapshot's embeddings carry the matching
	// fingerprint and are reused instead of re-encoded
	st2, _, err := storage.Open(dir, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if fp, ok := st2.EmbeddingInfo(); !ok {
		t.Fatal("recovered store lost its embeddings")
	} else if wantFP, _ := EncoderFingerprint(enc); fp != wantFP {
		t.Fatalf("recovered embedding fingerprint %x, want %x", fp, wantFP)
	}
	e2 := New(Config{Shards: 2, Index: ScanAll})
	if _, err := e2.SetEncoder(enc); err != nil {
		t.Fatal(err)
	}
	if err := e2.AttachStore(st2); err != nil {
		t.Fatal(err)
	}
	got, _, err := e2.TopK(context.Background(), annq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered ann ranking diverges:\n got %+v\nwant %+v", got, want)
	}
}
