package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"simsub/api"
)

// --- admitter unit tests ---

func TestAdmitterFastPath(t *testing.T) {
	a := newAdmitter(2, 8, 5*time.Millisecond, 100*time.Millisecond)
	rel, aerr := a.acquire(context.Background(), classCheap)
	if aerr != nil {
		t.Fatalf("acquire: %v", aerr)
	}
	rel()
	if a.shed.Load() != 0 {
		t.Fatal("fast-path acquire counted as shed")
	}
}

func TestAdmitterQueueFullRejectsAllClasses(t *testing.T) {
	a := newAdmitter(1, 0, 5*time.Millisecond, 100*time.Millisecond)
	rel, aerr := a.acquire(context.Background(), classCheap)
	if aerr != nil {
		t.Fatalf("first acquire: %v", aerr)
	}
	defer rel()
	// slot busy, queue limit 0: every class is rejected immediately
	for _, class := range []queryClass{classCheap, classExpensive} {
		_, aerr := a.acquire(context.Background(), class)
		if aerr == nil || aerr.Code != api.CodeOverloaded {
			t.Fatalf("class %d: got %v, want overloaded", class, aerr)
		}
		if aerr.RetryAfterMS <= 0 {
			t.Fatalf("overloaded rejection carries no Retry-After hint: %+v", aerr)
		}
	}
	if a.shed.Load() != 2 || a.shedExpensive.Load() != 1 {
		t.Fatalf("shed=%d shedExpensive=%d, want 2/1", a.shed.Load(), a.shedExpensive.Load())
	}
}

func TestAdmitterCoDelFlipsShedding(t *testing.T) {
	a := newAdmitter(1, 8, time.Millisecond, 10*time.Millisecond)
	a.note(20 * time.Millisecond) // opens the interval
	time.Sleep(15 * time.Millisecond)
	a.note(20 * time.Millisecond) // closes it: min wait 20ms > 1ms target
	if !a.shedding.Load() {
		t.Fatal("standing queue wait above target did not flip shedding")
	}
	a.note(0) // a zero wait in the new interval...
	time.Sleep(15 * time.Millisecond)
	a.note(0) // ...clears shedding at the next boundary
	if a.shedding.Load() {
		t.Fatal("shedding did not clear after waits dropped to zero")
	}
}

func TestAdmitterSheddingRejectsExpensiveKeepsCheap(t *testing.T) {
	a := newAdmitter(1, 8, 5*time.Millisecond, 100*time.Millisecond)
	rel, aerr := a.acquire(context.Background(), classCheap)
	if aerr != nil {
		t.Fatalf("first acquire: %v", aerr)
	}
	a.shedding.Store(true)

	if _, aerr := a.acquire(context.Background(), classExpensive); aerr == nil || aerr.Code != api.CodeOverloaded {
		t.Fatalf("expensive under shedding: got %v, want overloaded", aerr)
	}

	// a cheap query queues instead and is admitted once the slot frees
	done := make(chan *api.Error, 1)
	go func() {
		rel2, aerr := a.acquire(context.Background(), classCheap)
		if aerr == nil {
			rel2()
		}
		done <- aerr
	}()
	time.Sleep(10 * time.Millisecond)
	rel()
	if aerr := <-done; aerr != nil {
		t.Fatalf("cheap under shedding: %v, want queued admission", aerr)
	}
}

// --- cost model ---

func TestCostModelNeedsSamples(t *testing.T) {
	var c costModel
	if _, known := c.estimate("dtw", "exacts", 100); known {
		t.Fatal("cold model claimed a known estimate")
	}
	c.observe("dtw", "exacts", 100, time.Millisecond)
	if _, known := c.estimate("dtw", "exacts", 100); known {
		t.Fatal("one sample should not be trusted")
	}
	c.observe("dtw", "exacts", 100, time.Millisecond)
	est, known := c.estimate("dtw", "exacts", 200)
	if !known {
		t.Fatal("two samples should be trusted")
	}
	// 1ms per 100 trajectories -> ~2ms per 200
	if est < time.Millisecond || est > 4*time.Millisecond {
		t.Fatalf("estimate = %v, want ~2ms", est)
	}
}

// --- engine-level deadline budget and degradation ---

func seededEngine(t *testing.T) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	e := New(Config{Shards: 2, CacheSize: 0})
	if _, err := e.Add(randSet(rng, 30)); err != nil {
		t.Fatal(err)
	}
	return e
}

// forceCost plants a per-trajectory cost so estimates become "known"
// without running real scans.
func forceCost(e *Engine, measure, algorithm string, perTraj time.Duration) {
	e.cost.observe(measure, algorithm, 1, perTraj)
	e.cost.observe(measure, algorithm, 1, perTraj)
}

func TestDeadlineBudgetRejectsEarly(t *testing.T) {
	e := seededEngine(t)
	// pretend exacts costs 1s per trajectory: no budget fits 30s of work
	forceCost(e, "dtw", "exacts", time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	_, _, err := e.TopK(ctx, Query{Q: randTraj(rand.New(rand.NewSource(1)), 5), K: 3, Measure: "dtw", Algorithm: "exacts"})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeDeadlineExceeded {
		t.Fatalf("got %v, want typed deadline_exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("rejection was not early: the query burned its budget")
	}
	if got := e.Stats().DeadlineRejects; got != 1 {
		t.Fatalf("DeadlineRejects = %d, want 1", got)
	}
}

func TestBudgetDegradesWithOptIn(t *testing.T) {
	e := seededEngine(t)
	forceCost(e, "dtw", "exacts", time.Second) // exacts cannot fit
	forceCost(e, "dtw", "pss", time.Nanosecond)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	q := Query{Q: randTraj(rand.New(rand.NewSource(2)), 5), K: 3, Measure: "dtw", Algorithm: "exacts", AllowDegraded: true}
	full, _, _, deg, err := e.topK(ctx, q)
	if err != nil {
		t.Fatalf("topK: %v", err)
	}
	if deg == nil || deg.Reason != api.DegradedBudget || deg.From != "exacts" || deg.To != "pss" {
		t.Fatalf("Degraded = %+v, want budget exacts->pss", deg)
	}
	if len(full) == 0 {
		t.Fatal("degraded query answered no matches")
	}
	if got := e.Stats().DegradedQueries; got != 1 {
		t.Fatalf("DegradedQueries = %d, want 1", got)
	}
}

func TestNeverDegradedWithoutOptIn(t *testing.T) {
	e := seededEngine(t)
	forceCost(e, "dtw", "exacts", time.Second)
	forceCost(e, "dtw", "pss", time.Nanosecond)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	q := Query{Q: randTraj(rand.New(rand.NewSource(2)), 5), K: 3, Measure: "dtw", Algorithm: "exacts"}
	_, _, _, deg, err := e.topK(ctx, q)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeDeadlineExceeded {
		t.Fatalf("without opt-in: got %v, want deadline_exceeded (never a silent fallback)", err)
	}
	if deg != nil {
		t.Fatalf("degraded without opt-in: %+v", deg)
	}
}

func TestOverloadDegradesExpensiveWithOptIn(t *testing.T) {
	e := New(Config{Shards: 2, CacheSize: 0, QuerySlots: 1})
	rng := rand.New(rand.NewSource(8))
	if _, err := e.Add(randSet(rng, 20)); err != nil {
		t.Fatal(err)
	}
	// hold the only slot and force the shedding state
	rel, aerr := e.adm.acquire(context.Background(), classCheap)
	if aerr != nil {
		t.Fatalf("holding slot: %v", aerr)
	}
	e.adm.shedding.Store(true)
	go func() {
		time.Sleep(30 * time.Millisecond)
		rel() // the degraded (cheap-class) retry drains from the queue
	}()

	spec := api.QuerySpec{Query: api.FromTraj(randTraj(rng, 5)), K: 3, Measure: "dtw", Algorithm: "exacts", AllowDegraded: true}
	res := e.QueryOne(context.Background(), spec)
	if res.Error != nil {
		t.Fatalf("QueryOne: %v", res.Error)
	}
	if res.Degraded == nil || res.Degraded.Reason != api.DegradedOverload || res.Degraded.To != "pss" {
		t.Fatalf("Degraded = %+v, want overload ->pss", res.Degraded)
	}

	// without the opt-in the same overload is a typed rejection
	e.adm.shedding.Store(true)
	rel2, aerr := e.adm.acquire(context.Background(), classCheap)
	if aerr != nil {
		t.Fatalf("re-holding slot: %v", aerr)
	}
	defer rel2()
	spec.AllowDegraded = false
	res = e.QueryOne(context.Background(), spec)
	if res.Error == nil || res.Error.Code != api.CodeOverloaded {
		t.Fatalf("without opt-in under shedding: got %+v, want overloaded", res.Error)
	}
	if res.Error.RetryAfterMS <= 0 {
		t.Fatalf("overloaded rejection carries no Retry-After hint: %+v", res.Error)
	}
}
